// The Nest scheduling policy (paper §3).
//
// Nest keeps two sets of cores. The *primary nest* holds cores in active use;
// the *reserve nest* (bounded by R_max) holds cores that were recently useful
// or were just handed over by CFS and have not yet proved themselves. Core
// selection searches primary → reserve → CFS; management moves cores between
// the nests:
//   * reserve hit          → promote to primary
//   * CFS fallback hit     → add to reserve (if it has room)
//   * idle for P_remove    → eligible for compaction; demoted to reserve (or
//                            dropped) when a task next touches it
//   * task exits, core idle→ demote to reserve immediately
//   * impatient task       → skip primary; the chosen core goes straight to
//                            primary, growing the nest
// Additional mechanisms: a 2-deep placement history attaches a task to a core
// it used twice in a row (§3.3); the idle loop warm-spins on primary cores
// for up to S_max ticks (§3.2); wakeups fall back to a fully work-conserving
// CFS scan (§3.4); and placement reservations close the select/enqueue race
// (§3.4). Every feature has a kill switch for the paper's ablations.

#ifndef NESTSIM_SRC_NEST_NEST_POLICY_H_
#define NESTSIM_SRC_NEST_NEST_POLICY_H_

#include <vector>

#include "src/cfs/cfs_policy.h"
#include "src/kernel/kernel.h"
#include "src/kernel/policy.h"

namespace nestsim {

// Paper Table 1 defaults; scaled variants drive the ablation study.
struct NestParams {
  int p_remove_ticks = 2;  // idle ticks before a primary core may be compacted
  int r_max = 5;           // reserve-nest capacity
  int r_impatient = 2;     // failed previous-core attempts before impatience
  int s_max_ticks = 2;     // warm-spin duration in the idle loop

  // Feature switches (ablation).
  bool enable_reserve = true;
  bool enable_compaction = true;
  bool enable_spin = true;
  bool enable_attach = true;
  bool enable_impatience = true;
  bool enable_wake_work_conservation = true;
  bool enable_placement_reservation = true;
};

class NestPolicy : public SchedulerPolicy {
 public:
  NestPolicy() = default;
  explicit NestPolicy(NestParams params) : params_(params) {}

  void Attach(Kernel* kernel) override;
  const char* name() const override { return "nest"; }

  int SelectCpuFork(Task& child, int parent_cpu) override;
  int SelectCpuWake(Task& task, const WakeContext& ctx) override;
  void OnTaskEnqueued(Task& task, int cpu) override;
  void OnTaskExit(Task& task, int cpu) override;
  int IdleSpinTicks(int cpu) override;
  void OnTick() override;
  // A failed core leaves both nests immediately; a repaired one re-earns its
  // membership through the normal promotion paths (src/fault/).
  void OnCpuOffline(int cpu) override;
  bool UsesPlacementReservation() const override {
    return params_.enable_placement_reservation;
  }
  int NestMembership(int cpu) const override {
    return cores_[cpu].in_primary ? 2 : (cores_[cpu].in_reserve ? 1 : 0);
  }

  const NestParams& params() const { return params_; }

  // Introspection for tests and metrics.
  bool InPrimary(int cpu) const { return cores_[cpu].in_primary; }
  bool InReserve(int cpu) const { return cores_[cpu].in_reserve; }
  bool CompactionEligible(int cpu) const { return cores_[cpu].compaction_eligible; }
  int PrimarySize() const;
  int ReserveSize() const { return reserve_size_; }

 protected:
  // Subclass seam: NestCachePolicy (src/nest/nest_cache_policy.h) reuses the
  // membership management and searches, re-anchors selection toward a warm
  // LLC, and overrides the fallbacks to expand onto cache-cheap cores.
  struct CoreInfo {
    bool in_primary = false;
    bool in_reserve = false;
    bool compaction_eligible = false;
    SimTime last_used = 0;
  };

  // Shared fork/wake selection once the per-path preliminaries are done.
  // Virtual so NestCachePolicy can interleave its warm-die-restricted passes
  // with the standard primary → reserve → CFS ladder.
  virtual int SelectCommon(Task& task, int anchor_cpu, bool is_fork, const WakeContext& ctx);

  // Searches the primary nest for an idle unclaimed core: same die as
  // `anchor` first, then the other dies; numerical order from `anchor`.
  // Demotes compaction-eligible cores it touches along the way. With
  // `anchor_die_only` the off-die pass is skipped entirely.
  int SearchPrimary(int anchor, bool anchor_die_only = false);
  // Searches the reserve nest, starting from the fixed core (root_cpu),
  // anchored die first; `anchor_die_only` skips the off-die pass.
  int SearchReserve(int anchor, bool anchor_die_only = false);

  // Virtual so NestCachePolicy can make nest *expansion* migration-cost
  // aware: when the nests are full, the CFS-chosen core is the one that
  // joins a nest, and a cache-aware policy prefers it on a warm die.
  virtual int CfsFallbackFork(Task& child, int parent_cpu);
  virtual int CfsFallbackWake(Task& task, const WakeContext& ctx);

  void AddToPrimary(int cpu);
  void AddToReserve(int cpu);  // respects r_max; may drop the core instead
  void RemoveFromPrimary(int cpu);
  void RemoveFromReserve(int cpu);
  void DemoteFromPrimary(int cpu);  // to reserve, or out entirely
  void MarkUsed(int cpu);

  NestParams params_;
  CfsPolicy cfs_;
  std::vector<CoreInfo> cores_;
  // Reused by SearchPrimary/SearchReserve for the deferred off-die pass;
  // member to avoid a per-search allocation.
  std::vector<int> offdie_scratch_;
  int reserve_size_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_NEST_NEST_POLICY_H_
