#include "src/nest/nest_predict_policy.h"

namespace nestsim {

int NestPredictPolicy::SelectCommon(Task& task, int anchor_cpu, bool is_fork,
                                    const WakeContext& ctx) {
  if (model_ != nullptr && !model_->empty()) {
    const int predicted = model_->Predict(is_fork, task.prev_cpu, kernel_->runnable_tasks());
    // Models are machine-agnostic files; a prediction outside this machine's
    // CPU range (or for a busy/claimed/offline core) simply does not apply.
    if (predicted >= 0 && predicted < static_cast<int>(cores_.size()) &&
        kernel_->CpuIdleUnclaimed(predicted)) {
      task.placement_path = PlacementPath::kNestPredicted;
      AddToPrimary(predicted);
      MarkUsed(predicted);
      return predicted;
    }
  }
  return NestPolicy::SelectCommon(task, anchor_cpu, is_fork, ctx);
}

}  // namespace nestsim
