#include "src/nest/nest_policy.h"

#include <cassert>

namespace nestsim {

void NestPolicy::Attach(Kernel* kernel) {
  SchedulerPolicy::Attach(kernel);
  cfs_.Attach(kernel);
  cores_.assign(kernel->topology().num_cpus(), CoreInfo{});
}

int NestPolicy::PrimarySize() const {
  int count = 0;
  for (const CoreInfo& core : cores_) {
    count += core.in_primary ? 1 : 0;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Nest membership management
// ---------------------------------------------------------------------------

void NestPolicy::AddToPrimary(int cpu) {
  if (cores_[cpu].in_reserve) {
    RemoveFromReserve(cpu);
  }
  const bool was_primary = cores_[cpu].in_primary;
  cores_[cpu].in_primary = true;
  cores_[cpu].compaction_eligible = false;
  if (!was_primary) {
    kernel_->NotifyNestEvent(NestEventKind::kPromote, cpu);
  }
}

void NestPolicy::AddToReserve(int cpu) {
  if (cores_[cpu].in_primary || cores_[cpu].in_reserve) {
    return;
  }
  if (!params_.enable_reserve) {
    return;
  }
  if (reserve_size_ >= params_.r_max) {
    // Reserve full: the core joins no nest (§3.1).
    kernel_->NotifyNestEvent(NestEventKind::kReserveFull, cpu);
    return;
  }
  cores_[cpu].in_reserve = true;
  ++reserve_size_;
  kernel_->NotifyNestEvent(NestEventKind::kReserveAdd, cpu);
}

void NestPolicy::RemoveFromPrimary(int cpu) {
  assert(cores_[cpu].in_primary);
  cores_[cpu].in_primary = false;
  cores_[cpu].compaction_eligible = false;
}

void NestPolicy::RemoveFromReserve(int cpu) {
  assert(cores_[cpu].in_reserve);
  cores_[cpu].in_reserve = false;
  --reserve_size_;
}

void NestPolicy::DemoteFromPrimary(int cpu) {
  RemoveFromPrimary(cpu);
  AddToReserve(cpu);  // drops the core when the reserve is full or disabled
}

void NestPolicy::MarkUsed(int cpu) {
  cores_[cpu].last_used = kernel_->engine().Now();
  cores_[cpu].compaction_eligible = false;
}

void NestPolicy::OnTaskEnqueued(Task& task, int cpu) {
  (void)task;
  if (cores_[cpu].in_primary || cores_[cpu].in_reserve) {
    MarkUsed(cpu);
  }
}

void NestPolicy::OnTaskExit(Task& task, int cpu) {
  (void)task;
  // A task terminated and left the core idle: the core is no longer useful
  // and is demoted immediately (§3.1).
  if (cores_[cpu].in_primary && kernel_->CpuIdle(cpu)) {
    kernel_->NotifyNestEvent(NestEventKind::kDemote, cpu);
    DemoteFromPrimary(cpu);
  }
}

void NestPolicy::OnCpuOffline(int cpu) {
  if (cores_[cpu].in_primary) {
    kernel_->NotifyNestEvent(NestEventKind::kDemote, cpu);
    RemoveFromPrimary(cpu);
  }
  if (cores_[cpu].in_reserve) {
    RemoveFromReserve(cpu);
  }
}

int NestPolicy::IdleSpinTicks(int cpu) {
  if (!params_.enable_spin || !cores_[cpu].in_primary) {
    return 0;
  }
  return params_.s_max_ticks;
}

void NestPolicy::OnTick() {
  if (!params_.enable_compaction) {
    return;
  }
  const SimTime now = kernel_->engine().Now();
  const SimDuration limit = params_.p_remove_ticks * kTickPeriod;
  for (int cpu = 0; cpu < static_cast<int>(cores_.size()); ++cpu) {
    CoreInfo& core = cores_[cpu];
    if (core.in_primary && !core.compaction_eligible && kernel_->CpuIdle(cpu) &&
        now - core.last_used >= limit) {
      core.compaction_eligible = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Nest searches
// ---------------------------------------------------------------------------

int NestPolicy::SearchPrimary(int anchor, bool anchor_die_only) {
  const Topology& topo = kernel_->topology();
  const int anchor_die = topo.SocketOf(anchor);
  const int num_cpus = topo.num_cpus();

  // Visit order (§3.1): the anchor's die first, then everything else; each
  // group in numerical order starting from the anchor. A single wrapped
  // traversal handles the on-die group inline and defers off-die cpus to a
  // scratch list — identical visit order, half the scanning. Deferral is
  // sound because the on-die side effects (compaction demotes) only mutate
  // the visited core, and deferred cores are re-examined at their turn.
  offdie_scratch_.clear();
  for (int i = 0; i < num_cpus; ++i) {
    const int cpu = anchor + i < num_cpus ? anchor + i : anchor + i - num_cpus;
    if (topo.SocketOf(cpu) != anchor_die) {
      if (!anchor_die_only && cores_[cpu].in_primary) {
        offdie_scratch_.push_back(cpu);
      }
      continue;
    }
    CoreInfo& core = cores_[cpu];
    if (!core.in_primary) {
      continue;
    }
    if (core.compaction_eligible) {
      // A task touched an expired core: compaction happens now (§3.1).
      kernel_->NotifyNestEvent(NestEventKind::kCompact, cpu);
      DemoteFromPrimary(cpu);
      continue;
    }
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  for (int cpu : offdie_scratch_) {
    CoreInfo& core = cores_[cpu];
    if (!core.in_primary) {  // re-check: unchanged by on-die demotes, but cheap
      continue;
    }
    if (core.compaction_eligible) {
      kernel_->NotifyNestEvent(NestEventKind::kCompact, cpu);
      DemoteFromPrimary(cpu);
      continue;
    }
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  return -1;
}

int NestPolicy::SearchReserve(int anchor, bool anchor_die_only) {
  if (!params_.enable_reserve || reserve_size_ == 0) {
    return -1;
  }
  const Topology& topo = kernel_->topology();
  const int anchor_die = topo.SocketOf(anchor);
  const int num_cpus = topo.num_cpus();
  // The reserve search starts from a fixed core — the one where Nest was
  // started — to limit dispersal (§3.1).
  const int fixed = kernel_->root_cpu() >= 0 ? kernel_->root_cpu() : 0;

  // Same single-traversal structure as SearchPrimary; the reserve scan has
  // no side effects at all, so deferring off-die cpus is trivially exact.
  offdie_scratch_.clear();
  for (int i = 0; i < num_cpus; ++i) {
    const int cpu = fixed + i < num_cpus ? fixed + i : fixed + i - num_cpus;
    if (!cores_[cpu].in_reserve) {
      continue;
    }
    if (topo.SocketOf(cpu) != anchor_die) {
      if (!anchor_die_only) {
        offdie_scratch_.push_back(cpu);
      }
      continue;
    }
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  for (int cpu : offdie_scratch_) {
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  return -1;
}

int NestPolicy::CfsFallbackFork(Task& child, int parent_cpu) {
  return cfs_.ForkPath(child, parent_cpu);
}

int NestPolicy::CfsFallbackWake(Task& task, const WakeContext& ctx) {
  return cfs_.WakePath(task, ctx, params_.enable_wake_work_conservation);
}

// ---------------------------------------------------------------------------
// Core selection
// ---------------------------------------------------------------------------

int NestPolicy::SelectCommon(Task& task, int anchor_cpu, bool is_fork, const WakeContext& ctx) {
  int chosen = SearchPrimary(anchor_cpu);
  if (chosen >= 0) {
    task.placement_path = PlacementPath::kNestPrimary;
    MarkUsed(chosen);
    return chosen;
  }
  chosen = SearchReserve(anchor_cpu);
  if (chosen >= 0) {
    // Promotion: a reserve hit proves the nest needs to grow (§3.1).
    task.placement_path = PlacementPath::kNestReserve;
    RemoveFromReserve(chosen);
    AddToPrimary(chosen);
    MarkUsed(chosen);
    return chosen;
  }
  chosen = is_fork ? CfsFallbackFork(task, anchor_cpu) : CfsFallbackWake(task, ctx);
  task.placement_path = PlacementPath::kNestCfsFallback;
  // CFS can hand back a failed core (the kernel redirects the enqueue); such
  // a core must not enter a nest.
  if (kernel_->CpuOnline(chosen)) {
    if (params_.enable_reserve) {
      AddToReserve(chosen);
    } else {
      // Ablation without a reserve: CFS-chosen cores must join the primary
      // directly, or the nest could never grow.
      AddToPrimary(chosen);
    }
    MarkUsed(chosen);
  }
  return chosen;
}

int NestPolicy::SelectCpuFork(Task& child, int parent_cpu) {
  WakeContext unused;
  return SelectCommon(child, parent_cpu, /*is_fork=*/true, unused);
}

int NestPolicy::SelectCpuWake(Task& task, const WakeContext& ctx) {
  const int anchor = task.prev_cpu >= 0 ? task.prev_cpu : ctx.waker_cpu;

  // Impatience bookkeeping (§3.1): count consecutive wakeups that found the
  // previous core occupied.
  const bool prev_busy = task.prev_cpu >= 0 && !kernel_->CpuIdle(task.prev_cpu);
  if (prev_busy) {
    ++task.impatience;
  } else {
    task.impatience = 0;
  }

  if (params_.enable_impatience && task.impatience >= params_.r_impatient) {
    // Skip the primary nest entirely; the chosen core goes straight into the
    // primary nest to expand it, and the counter resets (§3.1).
    task.impatience = 0;
    task.placement_path = PlacementPath::kNestImpatient;
    int chosen = SearchReserve(anchor);
    if (chosen >= 0) {
      RemoveFromReserve(chosen);
    } else {
      chosen = CfsFallbackWake(task, ctx);
    }
    if (kernel_->CpuOnline(chosen)) {
      AddToPrimary(chosen);
      MarkUsed(chosen);
    }
    return chosen;
  }

  // Attachment (§3.3): a task that ran twice in a row on the same core goes
  // back there first, and may even reclaim a compaction-eligible core.
  if (params_.enable_attach && task.prev_cpu >= 0 && task.prev_cpu == task.prev_prev_cpu) {
    const int attached = task.prev_cpu;
    if (cores_[attached].in_primary && kernel_->CpuIdleUnclaimed(attached)) {
      task.placement_path = PlacementPath::kNestAttached;
      MarkUsed(attached);
      return attached;
    }
  }

  // Favouring of the previously used core (§5.4): an idle previous core is
  // taken even when it is outside the nests — this is what keeps
  // one-task-per-core gangs (NAS) on their original cores instead of
  // shuffling them through the primary nest. A core that keeps being used
  // this way is, by definition, in use: it joins the primary nest, so other
  // placements (and the warm spin) can benefit from it.
  if (params_.enable_attach && task.prev_cpu >= 0 && kernel_->CpuIdleUnclaimed(task.prev_cpu)) {
    task.placement_path = PlacementPath::kNestPrevCore;
    AddToPrimary(task.prev_cpu);
    MarkUsed(task.prev_cpu);
    return task.prev_cpu;
  }

  return SelectCommon(task, anchor, /*is_fork=*/false, ctx);
}

}  // namespace nestsim
