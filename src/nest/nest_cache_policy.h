// The cache-aware Nest variant (ROADMAP item 3; docs/MODEL.md §5).
//
// Nest's concentration is frequency-driven: tasks go back to warm — highly
// clocked — cores. NestCache adds the second locality axis, LLC affinity
// (src/hw/cache_model.h): it reads the per-task LLC warmth the kernel
// maintains and biases every decision that plain Nest makes die-blind:
//
//   * warm anchoring — a task warm on some LLC (warmth at or above
//     warm_bias_threshold) searches the nests *on that die only* before the
//     standard ladder may scatter it across the interconnect: an on-die
//     primary hit, or an on-die reserve hit that plain Nest would have
//     passed over in favour of an off-die primary core, is a kNestCacheWarm
//     placement and avoids the cross-LLC refill;
//   * cost-aware expansion — when both nests are full and CFS must pick the
//     core that will join a nest, an idle unclaimed CPU on the task's
//     warmest LLC is preferred over whatever CFS would scatter to;
//   * compaction grace — primary cores on the die where the nest is
//     concentrated get extra idle ticks before they become compaction
//     eligible, so momentary dips don't evict the die everyone is warm on.
//
// With all three switches off, NestCachePolicy makes bit-identical decisions
// to NestPolicy (the behaviour-invariance tests pin this); its only residue
// is that the kernel tracks warmth (WantsCacheWarmth), which is free of
// behavioural effects while the cache model's knobs are neutral.

#ifndef NESTSIM_SRC_NEST_NEST_CACHE_POLICY_H_
#define NESTSIM_SRC_NEST_NEST_CACHE_POLICY_H_

#include "src/nest/nest_policy.h"

namespace nestsim {

struct NestCacheParams {
  // Minimum warmth on some LLC before the warm-anchor bias redirects a wake
  // search there. Shares the [0, 1] warmth scale with
  // CacheParams::warm_threshold but is a separate knob: placement bias and
  // counter classification sweep independently in the ablation.
  double warm_bias_threshold = 0.5;

  // Extra idle ticks (on top of NestParams::p_remove_ticks) before a primary
  // core on the nest's dominant die becomes compaction eligible.
  int compaction_grace_ticks = 2;

  // Feature switches (ablation). All three off degenerates to plain Nest.
  bool enable_warm_anchor = true;
  bool enable_cost_aware_expansion = true;
  bool enable_compaction_grace = true;
};

class NestCachePolicy : public NestPolicy {
 public:
  NestCachePolicy(NestParams nest, NestCacheParams cache)
      : NestPolicy(nest), cache_params_(cache) {}

  const char* name() const override { return "nest_cache"; }
  bool WantsCacheWarmth() const override { return true; }

  void OnTick() override;

  const NestCacheParams& cache_params() const { return cache_params_; }

 protected:
  int SelectCommon(Task& task, int anchor_cpu, bool is_fork, const WakeContext& ctx) override;
  int CfsFallbackFork(Task& child, int parent_cpu) override;
  int CfsFallbackWake(Task& task, const WakeContext& ctx) override;

 private:
  // The socket where `task` is warmest, with its warmth decayed to now; -1
  // when warmth is untracked or everywhere zero.
  int WarmestLlc(const Task& task, double* warmth) const;

  // Cost-aware expansion: the lowest-numbered idle unclaimed CPU on the
  // task's warmest LLC, or -1 when there is none (or the warmth is zero).
  int WarmExpansionCpu(const Task& task) const;

  NestCacheParams cache_params_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_NEST_NEST_CACHE_POLICY_H_
