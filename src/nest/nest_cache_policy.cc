#include "src/nest/nest_cache_policy.h"

namespace nestsim {

int NestCachePolicy::WarmestLlc(const Task& task, double* warmth) const {
  *warmth = 0.0;
  if (task.llc_warmth.empty()) {
    return -1;
  }
  const SimTime now = kernel_->engine().Now();
  int best = -1;
  double best_warmth = 0.0;
  for (size_t socket = 0; socket < task.llc_warmth.size(); ++socket) {
    const double w = task.llc_warmth[socket].ValueAt(now);
    // Strict > keeps ties on the lowest socket, deterministically.
    if (w > best_warmth) {
      best_warmth = w;
      best = static_cast<int>(socket);
    }
  }
  *warmth = best_warmth;
  return best;
}

int NestCachePolicy::WarmExpansionCpu(const Task& task) const {
  double warmth = 0.0;
  const int warm = WarmestLlc(task, &warmth);
  if (warm < 0) {
    return -1;
  }
  for (const int cpu : kernel_->topology().CpusOnSocket(warm)) {
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  return -1;
}

int NestCachePolicy::SelectCommon(Task& task, int anchor_cpu, bool is_fork,
                                  const WakeContext& ctx) {
  // Warm anchoring: a task warm enough on some LLC searches the nests on
  // that die only, *before* the standard ladder is allowed to scatter it
  // off-die. The decisive case is the on-die reserve hit: plain Nest ranks
  // every primary core — even across the interconnect — above the reserve,
  // so a warm task whose die has a free reserve core but no free primary
  // core would pay a cross-LLC refill; here it stays home instead.
  if (cache_params_.enable_warm_anchor && !task.llc_warmth.empty()) {
    double warmth = 0.0;
    const int warm = WarmestLlc(task, &warmth);
    if (warm >= 0 && warmth >= cache_params_.warm_bias_threshold) {
      const int warm_anchor = kernel_->topology().SocketOf(anchor_cpu) == warm
                                  ? anchor_cpu
                                  : kernel_->topology().CpusOnSocket(warm).front();
      int chosen = SearchPrimary(warm_anchor, /*anchor_die_only=*/true);
      if (chosen >= 0) {
        task.placement_path = PlacementPath::kNestCacheWarm;
        MarkUsed(chosen);
        return chosen;
      }
      chosen = SearchReserve(warm_anchor, /*anchor_die_only=*/true);
      if (chosen >= 0) {
        // Same promotion a reserve hit earns in the standard ladder.
        task.placement_path = PlacementPath::kNestCacheWarm;
        RemoveFromReserve(chosen);
        AddToPrimary(chosen);
        MarkUsed(chosen);
        return chosen;
      }
      // Nothing free on the warm die: the refill is unavoidable, so defer to
      // the standard work-conserving ladder (it rescans the warm die first;
      // the second pass is cheap and side-effect free after this one).
    }
  }
  return NestPolicy::SelectCommon(task, anchor_cpu, is_fork, ctx);
}

int NestCachePolicy::CfsFallbackFork(Task& child, int parent_cpu) {
  if (cache_params_.enable_cost_aware_expansion) {
    const int cpu = WarmExpansionCpu(child);
    if (cpu >= 0) {
      return cpu;
    }
  }
  return NestPolicy::CfsFallbackFork(child, parent_cpu);
}

int NestCachePolicy::CfsFallbackWake(Task& task, const WakeContext& ctx) {
  if (cache_params_.enable_cost_aware_expansion) {
    const int cpu = WarmExpansionCpu(task);
    if (cpu >= 0) {
      return cpu;
    }
  }
  return NestPolicy::CfsFallbackWake(task, ctx);
}

void NestCachePolicy::OnTick() {
  if (!cache_params_.enable_compaction_grace || cache_params_.compaction_grace_ticks == 0) {
    NestPolicy::OnTick();
    return;
  }
  if (!params_.enable_compaction) {
    return;
  }
  // Same marking pass as NestPolicy::OnTick, but primary cores on the
  // dominant die — where the nest, and therefore everyone's LLC warmth, is
  // concentrated — get a longer leash before compaction can evict them.
  int dominant = -1;
  int dominant_count = 0;
  const Topology& topo = kernel_->topology();
  for (int socket = 0; socket < topo.num_sockets(); ++socket) {
    int count = 0;
    for (const int cpu : topo.CpusOnSocket(socket)) {
      count += cores_[cpu].in_primary ? 1 : 0;
    }
    if (count > dominant_count) {  // ties keep the lowest socket
      dominant_count = count;
      dominant = socket;
    }
  }
  const SimTime now = kernel_->engine().Now();
  const SimDuration base_limit = params_.p_remove_ticks * kTickPeriod;
  const SimDuration graced_limit =
      (params_.p_remove_ticks + cache_params_.compaction_grace_ticks) * kTickPeriod;
  for (int cpu = 0; cpu < static_cast<int>(cores_.size()); ++cpu) {
    CoreInfo& core = cores_[cpu];
    const SimDuration limit = topo.SocketOf(cpu) == dominant ? graced_limit : base_limit;
    if (core.in_primary && !core.compaction_eligible && kernel_->CpuIdle(cpu) &&
        now - core.last_used >= limit) {
      core.compaction_eligible = true;
    }
  }
}

}  // namespace nestsim
