// Budget-aware Nest (docs/FAULTS.md).
//
// Under a per-socket power budget, plain Nest and the budget governor fight
// each other: the nest keeps every primary core warm, the socket stays near
// its cap, and the governor throttles *all* of them — the whole nest slows
// down. NestBudgetPolicy resolves the fight by shrinking the warm mask
// instead: while a socket is over budget the policy stops growing its nest
// (reserve hits are used but not promoted, CFS-fallback cores are not
// adopted) and each tick demotes the least-recently-used idle primary core on
// a throttled socket. Work packs onto fewer cores which then run closer to
// full frequency — trading queueing for clock speed, which is the right trade
// whenever the budget, not the work, is the binding constraint.
//
// Reuses NestPolicy's membership management and searches through the
// SelectCommon seam; behaves exactly like NestPolicy when no socket is
// throttled (and the `budget` governor never throttles when budget_w == 0).

#ifndef NESTSIM_SRC_NEST_NEST_BUDGET_POLICY_H_
#define NESTSIM_SRC_NEST_NEST_BUDGET_POLICY_H_

#include "src/nest/nest_policy.h"

namespace nestsim {

struct NestBudgetParams {
  // The primary nest never shrinks below this many cores, no matter how far
  // over budget the socket is — the machine must keep making progress.
  int min_primary = 1;
};

class NestBudgetPolicy : public NestPolicy {
 public:
  NestBudgetPolicy() = default;
  explicit NestBudgetPolicy(NestParams params) : NestPolicy(params) {}
  NestBudgetPolicy(NestParams params, NestBudgetParams budget)
      : NestPolicy(params), budget_params_(budget) {}

  const char* name() const override { return "nest_budget"; }

  // Base compaction plus one demotion per throttled socket per tick.
  void OnTick() override;

  // While the anchor's socket is throttled, the §5.4 previous-core favouring
  // honours the previous core only if it is still in the (shrunk) primary
  // mask — a demoted core stays demoted instead of being resurrected into
  // the primary, which would undo every demotion one wake later.
  int SelectCpuWake(Task& task, const WakeContext& ctx) override;

  const NestBudgetParams& budget_params() const { return budget_params_; }

 protected:
  int SelectCommon(Task& task, int anchor_cpu, bool is_fork, const WakeContext& ctx) override;

 private:
  bool SocketThrottled(int cpu) const {
    return kernel_->governor().ThrottledOnSocket(kernel_->topology().SocketOf(cpu));
  }

  NestBudgetParams budget_params_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_NEST_NEST_BUDGET_POLICY_H_
