#include "src/nest/nest_oracle_policy.h"

namespace nestsim {

int NestOraclePolicy::PoolSize() const {
  if (plan_ == nullptr) {
    return 0;
  }
  const int size = plan_->PoolSizeAt(kernel_->engine().Now());
  if (size <= 0) {
    return 0;
  }
  const int num_cpus = kernel_->topology().num_cpus();
  const int widened = size + margin_;
  return widened < num_cpus ? widened : num_cpus;
}

bool NestOraclePolicy::InPool(int cpu) const {
  if (!kernel_->CpuOnline(cpu)) {
    return false;
  }
  const int pool = PoolSize();
  if (pool <= 0) {
    return false;
  }
  // The pool is the first `pool` *online* CPUs in index order.
  int rank = 0;
  for (int c = 0; c < cpu; ++c) {
    if (kernel_->CpuOnline(c)) {
      ++rank;
    }
  }
  return rank < pool;
}

int NestOraclePolicy::SearchPool() const {
  const int pool = PoolSize();
  if (pool <= 0) {
    return -1;
  }
  const int num_cpus = kernel_->topology().num_cpus();
  int seen = 0;
  for (int cpu = 0; cpu < num_cpus && seen < pool; ++cpu) {
    if (!kernel_->CpuOnline(cpu)) {
      continue;
    }
    ++seen;
    if (kernel_->CpuIdleUnclaimed(cpu)) {
      return cpu;
    }
  }
  return -1;
}

int NestOraclePolicy::SelectCpuFork(Task& child, int parent_cpu) {
  const int chosen = SearchPool();
  if (chosen >= 0) {
    child.placement_path = PlacementPath::kNestOracleWarm;
    return chosen;
  }
  const int fallback = cfs_.ForkPath(child, parent_cpu);
  child.placement_path = PlacementPath::kNestCfsFallback;
  return fallback;
}

int NestOraclePolicy::SelectCpuWake(Task& task, const WakeContext& ctx) {
  // Previous-core affinity inside the pool keeps the same locality benefit
  // Nest's attachment paths provide (§3.3).
  if (task.prev_cpu >= 0 && InPool(task.prev_cpu) && kernel_->CpuIdleUnclaimed(task.prev_cpu)) {
    task.placement_path = PlacementPath::kNestOracleWarm;
    return task.prev_cpu;
  }
  const int chosen = SearchPool();
  if (chosen >= 0) {
    task.placement_path = PlacementPath::kNestOracleWarm;
    return chosen;
  }
  const int fallback = cfs_.WakePath(task, ctx, params_.enable_wake_work_conservation);
  task.placement_path = PlacementPath::kNestCfsFallback;
  return fallback;
}

}  // namespace nestsim
