// Nest with a learned placement bias (src/predict/).
//
// NestPredictPolicy consults an offline-trained table model before the
// standard primary → reserve → CFS ladder: when the model names a CPU for
// the current (fork/wake, prev_cpu, runnable) key and that CPU is idle and
// unclaimed, the task goes there directly and the core is pulled into the
// primary nest — the prediction *biases* the nest search, it never overrides
// the work-conservation fallbacks. With a null or empty model every decision
// falls through to the base class, so the policy is bit-identical to plain
// Nest (pinned by tests and the fuzz differential).

#ifndef NESTSIM_SRC_NEST_NEST_PREDICT_POLICY_H_
#define NESTSIM_SRC_NEST_NEST_PREDICT_POLICY_H_

#include <memory>
#include <utility>

#include "src/nest/nest_policy.h"
#include "src/predict/model.h"

namespace nestsim {

class NestPredictPolicy : public NestPolicy {
 public:
  NestPredictPolicy(NestParams params, std::shared_ptr<const TableModel> model)
      : NestPolicy(params), model_(std::move(model)) {}

  const char* name() const override { return "nest_predict"; }

  const TableModel* model() const { return model_.get(); }

 protected:
  int SelectCommon(Task& task, int anchor_cpu, bool is_fork, const WakeContext& ctx) override;

 private:
  std::shared_ptr<const TableModel> model_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_NEST_NEST_PREDICT_POLICY_H_
