#include "src/nest/nest_budget_policy.h"

namespace nestsim {

int NestBudgetPolicy::SelectCommon(Task& task, int anchor_cpu, bool is_fork,
                                   const WakeContext& ctx) {
  if (!SocketThrottled(anchor_cpu)) {
    return NestPolicy::SelectCommon(task, anchor_cpu, is_fork, ctx);
  }
  // The anchor's socket is over budget: place inside the existing warm mask
  // but never grow it. The ladder is the same primary → reserve → CFS, minus
  // every membership change the base ladder would make.
  int chosen = SearchPrimary(anchor_cpu);
  if (chosen >= 0) {
    task.placement_path = PlacementPath::kNestPrimary;
    MarkUsed(chosen);
    return chosen;
  }
  chosen = SearchReserve(anchor_cpu);
  if (chosen >= 0) {
    // The reserve core runs the task but stays in the reserve — promotion
    // would widen the warm mask the governor is trying to narrow.
    task.placement_path = PlacementPath::kNestReserve;
    MarkUsed(chosen);
    return chosen;
  }
  // Warm mask saturated: stack behind the shallowest primary queue on the
  // anchor's socket rather than waking an overflow core. One fewer active
  // core saves the throttled socket more power than the queueing delay costs
  // it — this is the cap actually narrowing the nest instead of slowing it.
  const Topology& topo = kernel_->topology();
  const int socket = topo.SocketOf(anchor_cpu);
  int best = -1;
  int best_depth = 0;
  for (int cpu = 0; cpu < static_cast<int>(cores_.size()); ++cpu) {
    if (!cores_[cpu].in_primary || topo.SocketOf(cpu) != socket) {
      continue;
    }
    const int depth = kernel_->rq(cpu).QueuedCount() + (kernel_->CpuIdle(cpu) ? 0 : 1);
    if (best < 0 || depth < best_depth) {
      best = cpu;
      best_depth = depth;
    }
  }
  if (best >= 0) {
    task.placement_path = PlacementPath::kNestPrimary;
    MarkUsed(best);
    return best;
  }
  chosen = is_fork ? CfsFallbackFork(task, anchor_cpu) : CfsFallbackWake(task, ctx);
  task.placement_path = PlacementPath::kNestCfsFallback;
  // No reserve adoption either: the overflow core serves this one placement
  // and cools back down.
  return chosen;
}

int NestBudgetPolicy::SelectCpuWake(Task& task, const WakeContext& ctx) {
  const int anchor = task.prev_cpu >= 0 ? task.prev_cpu : ctx.waker_cpu;
  if (!SocketThrottled(anchor)) {
    return NestPolicy::SelectCpuWake(task, ctx);
  }
  // Throttled: take the previous core only while it remains in the shrunk
  // primary mask. Skipping the base class's attach/prev-core ladder here is
  // what makes demotions stick — its §5.4 path re-adopts any idle previous
  // core into the primary, growing the mask right back.
  if (task.prev_cpu >= 0 && cores_[task.prev_cpu].in_primary &&
      kernel_->CpuIdleUnclaimed(task.prev_cpu)) {
    task.placement_path = PlacementPath::kNestPrevCore;
    MarkUsed(task.prev_cpu);
    return task.prev_cpu;
  }
  return SelectCommon(task, anchor, /*is_fork=*/false, ctx);
}

void NestBudgetPolicy::OnTick() {
  NestPolicy::OnTick();
  const Governor& gov = kernel_->governor();
  if (gov.BudgetWatts() <= 0.0) {
    return;
  }
  // Active shrink: per throttled socket, demote the least-recently-used idle
  // primary core. One per socket per tick keeps the shrink gradual enough
  // for the power reading (which decays with PELT) to catch up.
  const Topology& topo = kernel_->topology();
  for (int socket = 0; socket < topo.num_sockets(); ++socket) {
    if (!gov.ThrottledOnSocket(socket)) {
      continue;
    }
    if (PrimarySize() <= budget_params_.min_primary) {
      return;
    }
    int victim = -1;
    SimTime oldest = 0;
    for (int cpu = 0; cpu < static_cast<int>(cores_.size()); ++cpu) {
      if (!cores_[cpu].in_primary || topo.SocketOf(cpu) != socket || !kernel_->CpuIdle(cpu)) {
        continue;
      }
      if (victim < 0 || cores_[cpu].last_used < oldest) {
        victim = cpu;
        oldest = cores_[cpu].last_used;
      }
    }
    if (victim >= 0) {
      kernel_->NotifyNestEvent(NestEventKind::kDemote, victim);
      DemoteFromPrimary(victim);
    }
  }
}

}  // namespace nestsim
