// The oracle warm-pool policy (headroom bound, src/predict/).
//
// NestOracle replaces Nest's reactive nest management with hindsight: a
// recorded first run of the identical experiment (src/predict/oracle.h)
// tells it the peak concurrent demand in every time window, and the policy
// keeps exactly that many cores — the lowest-numbered online CPUs — warm.
// Placement prefers the task's previous core when it is in the pool, then
// the lowest-numbered idle pool core; anything else falls back to the fully
// work-conserving CFS scan, so the oracle never sacrifices work conservation
// for warmth. Pool cores warm-spin like Nest primaries (§3.2) and placements
// use the §3.4 reservation. RunExperiment supplies the plan via the two-pass
// protocol in src/core/experiment.cc; without a plan the pool is empty and
// every placement is a CFS fallback.

#ifndef NESTSIM_SRC_NEST_NEST_ORACLE_POLICY_H_
#define NESTSIM_SRC_NEST_NEST_ORACLE_POLICY_H_

#include <memory>
#include <utility>

#include "src/cfs/cfs_policy.h"
#include "src/kernel/kernel.h"
#include "src/kernel/policy.h"
#include "src/nest/nest_policy.h"
#include "src/predict/oracle.h"

namespace nestsim {

class NestOraclePolicy : public SchedulerPolicy {
 public:
  NestOraclePolicy(NestParams params, std::shared_ptr<const OraclePlan> plan, int margin)
      : params_(params), plan_(std::move(plan)), margin_(margin) {}

  void Attach(Kernel* kernel) override {
    SchedulerPolicy::Attach(kernel);
    cfs_.Attach(kernel);
  }

  const char* name() const override { return "nest_oracle"; }

  int SelectCpuFork(Task& child, int parent_cpu) override;
  int SelectCpuWake(Task& task, const WakeContext& ctx) override;

  int IdleSpinTicks(int cpu) override {
    return params_.enable_spin && InPool(cpu) ? params_.s_max_ticks : 0;
  }

  bool UsesPlacementReservation() const override {
    return params_.enable_placement_reservation;
  }

  int NestMembership(int cpu) const override { return InPool(cpu) ? 2 : 0; }

  // The current warm-pool width (replayed demand + margin); introspection
  // for tests.
  int PoolSize() const;

  // Whether `cpu` is one of the first PoolSize() online CPUs.
  bool InPool(int cpu) const;

 private:
  // Lowest-numbered idle unclaimed pool CPU, or -1.
  int SearchPool() const;

  NestParams params_;
  CfsPolicy cfs_;
  std::shared_ptr<const OraclePlan> plan_;
  int margin_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_NEST_NEST_ORACLE_POLICY_H_
