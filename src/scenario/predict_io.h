// Strict loading of serialized table models (src/predict/model.h).
//
// The on-disk form is TableModel::ToJson() — a single JSON object with the
// model name, a format version, and the sorted bucket list (documented in
// docs/PREDICTION.md). Parsing lives here rather than in src/predict/ so the
// model file gets the same SpecReader treatment as scenario files: unknown
// keys, bad types, and out-of-range values are all reported with their JSON
// path, and nothing below the scenario layer grows a JSON dependency.

#ifndef NESTSIM_SRC_SCENARIO_PREDICT_IO_H_
#define NESTSIM_SRC_SCENARIO_PREDICT_IO_H_

#include <string>

#include "src/predict/model.h"
#include "src/scenario/scenario.h"

namespace nestsim {

// Parses one serialized model object. `file_label` prefixes error paths.
// Returns false (with err populated) on any validation problem; *out is then
// left empty.
bool ParseTableModel(const JsonValue& root, const std::string& file_label, TableModel* out,
                     ScenarioError* err);

// Reads `path`, JSON-parses it, and runs ParseTableModel.
bool LoadTableModelFile(const std::string& path, TableModel* out, ScenarioError* err);

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_PREDICT_IO_H_
