#include "src/scenario/decision_export.h"

#include "src/hw/machine_spec.h"

namespace nestsim {

bool CollectDecisionTraces(const Scenario& scenario, const ScenarioRunOptions& options,
                           DecisionExportResult* out, ScenarioError* err) {
  *out = DecisionExportResult{};
  if (scenario.has_cluster) {
    err->Add(scenario.name,
             "cluster scenarios cannot export decision traces (the cluster runner "
             "builds its own per-machine stacks)");
    return false;
  }

  ScenarioRun run;
  if (!ExpandScenario(scenario, options, &run, err)) {
    return false;
  }

  out->labels.reserve(run.jobs.size());
  out->traces.reserve(run.jobs.size());
  for (Job& job : run.jobs) {
    const MachineSpec& spec = MachineByName(job.config.machine);
    const int cpus = spec.num_sockets * spec.physical_cores_per_socket * spec.threads_per_core;
    if (cpus > out->num_cpus) {
      out->num_cpus = cpus;
    }
    auto trace = std::make_shared<DecisionTrace>();
    job.config.predict.decision_trace = trace;
    out->labels.push_back(DecisionLabels{job.config.machine, job.workload, job.variant});
    out->traces.push_back(std::move(trace));
  }

  ExecuteScenario(&run);
  for (size_t i = 0; i < run.outcomes.size(); ++i) {
    const JobOutcome& outcome = run.outcomes[i];
    if (!outcome.ok()) {
      err->Add(scenario.name, "job " + out->labels[i].machine + " x " + out->labels[i].row +
                                  " x " + out->labels[i].variant + " " +
                                  JobStatusName(outcome.status) +
                                  (outcome.message.empty() ? "" : ": " + outcome.message));
    }
  }
  return err->ok();
}

std::vector<DecisionRow> FlattenDecisions(const DecisionExportResult& result) {
  std::vector<DecisionRow> rows;
  for (const std::shared_ptr<DecisionTrace>& trace : result.traces) {
    rows.insert(rows.end(), trace->rows.begin(), trace->rows.end());
  }
  return rows;
}

std::string SerializeDecisions(const DecisionExportResult& result, bool jsonl) {
  std::string out;
  if (!jsonl) {
    out += DecisionCsvHeader(result.num_cpus);
    out += '\n';
  }
  uint64_t decision = 0;
  for (size_t j = 0; j < result.traces.size(); ++j) {
    for (const DecisionRow& row : result.traces[j]->rows) {
      out += jsonl ? DecisionJsonlRow(row, decision, result.labels[j], result.num_cpus)
                   : DecisionCsvRow(row, decision, result.labels[j], result.num_cpus);
      out += '\n';
      ++decision;
    }
  }
  return out;
}

}  // namespace nestsim
