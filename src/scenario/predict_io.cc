#include "src/scenario/predict_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <tuple>

namespace nestsim {

namespace {

// One "counts" entry: a [cpu, count] pair. CPU indices are bounded by the
// widest machine the config layer accepts (4096, matching nest.r_max), count
// must be a positive integer.
bool ParseCountPair(const JsonValue& v, const std::string& path, TableModelBucket* bucket,
                    ScenarioError* err) {
  if (!v.is_array() || v.items.size() != 2) {
    err->Add(path, "counts entries must be [cpu, count] pairs");
    return false;
  }
  const JsonValue& cpu = v.items[0];
  const JsonValue& count = v.items[1];
  if (!cpu.is_number() || std::floor(cpu.number) != cpu.number || cpu.number < 0 ||
      cpu.number > 4095) {
    err->Add(path, "counts cpu must be an integer in [0, 4095]");
    return false;
  }
  if (!count.is_number() || std::floor(count.number) != count.number || count.number < 1 ||
      count.number > 9.007199254740992e15) {
    err->Add(path, "counts count must be a positive integer (< 2^53)");
    return false;
  }
  bucket->counts.emplace_back(static_cast<int>(cpu.number),
                              static_cast<uint64_t>(count.number));
  return true;
}

bool ParseBucket(const JsonValue& v, const std::string& path, TableModelBucket* bucket,
                 ScenarioError* err) {
  SpecReader reader(v, path, *err);
  std::string kind;
  if (reader.TakeEnum("kind", &kind, {"fork", "wake"}, /*required=*/true)) {
    bucket->kind = kind == "fork" ? 0 : 1;
  }
  bucket->prev_cpu = -1;
  reader.TakeInt("prev_cpu", &bucket->prev_cpu, -1, 4095);
  bucket->runnable = 0;
  reader.TakeInt("runnable", &bucket->runnable, 0, kRunnableBucketMax);
  const JsonValue* counts = reader.Take("counts");
  if (counts == nullptr || !counts->is_array() || counts->items.empty()) {
    reader.AddError("missing or empty \"counts\" (non-empty array of [cpu, count] pairs)");
  } else {
    for (size_t i = 0; i < counts->items.size(); ++i) {
      ParseCountPair(counts->items[i], path + "/counts[" + std::to_string(i) + "]", bucket, err);
    }
    // The canonical form is sorted with unique CPUs; requiring it keeps
    // parse(ToJson(m)) == m exact and rejects hand-edited ambiguity.
    for (size_t i = 1; i < bucket->counts.size(); ++i) {
      if (bucket->counts[i - 1].first >= bucket->counts[i].first) {
        reader.AddError("\"counts\" must be sorted by cpu with no duplicates");
        break;
      }
    }
  }
  reader.Finish();
  return err->ok();
}

}  // namespace

bool ParseTableModel(const JsonValue& root, const std::string& file_label, TableModel* out,
                     ScenarioError* err) {
  *out = TableModel{};
  SpecReader reader(root, file_label, *err);

  std::string model;
  if (reader.TakeString("model", &model, /*required=*/true) && model != "nest-predict-table") {
    reader.AddError("\"model\" must be \"nest-predict-table\", got \"" + model + "\"");
  }
  int version = 0;
  const JsonValue* v = reader.Take("version");
  if (v == nullptr || !v->is_number() || v->number != 1.0) {
    reader.AddError("\"version\" must be the integer 1");
  } else {
    version = 1;
  }
  (void)version;

  std::vector<TableModelBucket> buckets;
  const JsonValue* bucket_list = reader.Take("buckets");
  if (bucket_list == nullptr || !bucket_list->is_array()) {
    reader.AddError("missing \"buckets\" (array of bucket objects; may be empty)");
  } else {
    for (size_t i = 0; i < bucket_list->items.size(); ++i) {
      TableModelBucket bucket;
      ParseBucket(bucket_list->items[i], file_label + "/buckets[" + std::to_string(i) + "]",
                  &bucket, err);
      buckets.push_back(std::move(bucket));
    }
    for (size_t i = 1; i < buckets.size(); ++i) {
      const TableModelBucket& a = buckets[i - 1];
      const TableModelBucket& b = buckets[i];
      if (std::tie(a.kind, a.prev_cpu, a.runnable) >= std::tie(b.kind, b.prev_cpu, b.runnable)) {
        err->Add(file_label,
                 "\"buckets\" must be sorted by (kind, prev_cpu, runnable) with no duplicates");
        break;
      }
    }
  }
  reader.Finish();

  if (!err->ok()) {
    return false;
  }
  out->set_buckets(std::move(buckets));
  return true;
}

bool LoadTableModelFile(const std::string& path, TableModel* out, ScenarioError* err) {
  std::ifstream in(path);
  if (!in) {
    err->Add(path, "cannot open model file");
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue root;
  std::string json_error;
  if (!JsonParse(text.str(), &root, &json_error)) {
    err->Add(path, "invalid JSON: " + json_error);
    return false;
  }
  const size_t slash = path.find_last_of('/');
  const std::string label = slash == std::string::npos ? path : path.substr(slash + 1);
  return ParseTableModel(root, label, out, err);
}

}  // namespace nestsim
