// String-keyed registries behind the scenario engine: machines, scheduler
// policies, governors, and the workload families of src/workloads.
//
// The scenario parser validates spec files against these lists (so error
// messages can name every alternative) and the runner builds Workload
// instances through the family builders.

#ifndef NESTSIM_SRC_SCENARIO_REGISTRY_H_
#define NESTSIM_SRC_SCENARIO_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/workload.h"
#include "src/scenario/scenario.h"

namespace nestsim {

// One workload family ("configure", "dacapo", "nas", "phoronix", "server",
// "requests", "hackbench", "schbench", "multi").
struct WorkloadFamily {
  std::string name;
  std::string summary;  // one-liner for nestsim_run --list

  // Named presets usable as parameterless rows ("gcc", "h2", "bt", ...).
  std::vector<std::string> presets;
  // Named row groups ("all"; phoronix adds "fig13" and "table4").
  std::vector<std::pair<std::string, std::vector<std::string>>> groups;

  // True when `row` names a preset this family can build without params
  // (phoronix additionally accepts "synthetic-<i>").
  std::function<bool(const std::string& row)> is_preset;

  // Builds the model for one row. `params` is the row's params object, or
  // nullptr for a preset row. Problems are reported through `err` under
  // `path` and nullptr is returned.
  std::function<std::unique_ptr<Workload>(const std::string& row, const JsonValue* params,
                                          const std::string& path, ScenarioError& err)>
      build;

  // The group's rows, or empty when `group` is not one of `groups`.
  const std::vector<std::string>* FindGroup(const std::string& group) const;
};

// Every family, in registry order.
const std::vector<WorkloadFamily>& WorkloadFamilies();
const WorkloadFamily* FindWorkloadFamily(const std::string& name);
std::vector<std::string> WorkloadFamilyNames();

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_REGISTRY_H_
