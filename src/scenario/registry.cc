#include "src/scenario/registry.h"

#include <cstdlib>

#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"
#include "src/workloads/micro.h"
#include "src/workloads/multi.h"
#include "src/workloads/nas.h"
#include "src/workloads/phoronix.h"
#include "src/workloads/requests.h"
#include "src/workloads/server.h"

namespace nestsim {

const std::vector<std::string>* WorkloadFamily::FindGroup(const std::string& group) const {
  for (const auto& [name, rows] : groups) {
    if (name == group) {
      return &rows;
    }
  }
  return nullptr;
}

namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& n : names) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

// "synthetic-<i>" → i, or -1. Used by the phoronix family for Table 4's
// synthetic population.
int SyntheticIndex(const std::string& row) {
  const std::string prefix = "synthetic-";
  if (row.size() <= prefix.size() || row.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  const std::string digits = row.substr(prefix.size());
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return -1;
    }
  }
  return std::atoi(digits.c_str());
}

// Guards a builder body: true when `err` grew since `before` (the row is
// invalid and the builder must return nullptr).
bool Grew(const ScenarioError& err, size_t before) { return err.errors.size() != before; }

// Reads an optional "preset" param naming the spec to start from.
template <typename SpecT>
void TakePresetBase(SpecReader& reader, const std::vector<std::string>& presets,
                    SpecT (*factory)(const std::string&), SpecT* spec) {
  std::string preset;
  if (reader.TakeString("preset", &preset)) {
    if (Contains(presets, preset)) {
      *spec = factory(preset);
    } else {
      reader.AddError("unknown preset \"" + preset + "\" (known: " + JoinNames(presets) + ")");
    }
  }
}

std::unique_ptr<Workload> BuildConfigure(const std::string& row, const JsonValue* params,
                                         const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  ConfigureSpec spec;
  const auto names = ConfigureWorkload::PackageNames();
  if (Contains(names, row)) {
    spec = ConfigureWorkload::PackageSpec(row);
  } else if (params == nullptr) {
    err.Add(path, "\"" + row + "\" is not a configure package (known: " + JoinNames(names) +
                      "); custom rows need \"params\"");
    return nullptr;
  }
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    TakePresetBase(reader, names, &ConfigureWorkload::PackageSpec, &spec);
    spec.package = row;
    reader.TakeInt("num_tests", &spec.num_tests, 1, 1000000);
    reader.TakeDouble("parent_overhead_ms", &spec.parent_overhead_ms, 0.0, 1e4);
    reader.TakeDouble("post_fork_overhead_ms", &spec.post_fork_overhead_ms, 0.0, 1e4);
    reader.TakeDouble("child_work_ms", &spec.child_work_ms, 0.0, 1e5);
    reader.TakeDouble("child_sigma", &spec.child_sigma, 0.0, 4.0);
    reader.TakeDouble("pipeline_prob", &spec.pipeline_prob, 0.0, 1.0);
    reader.TakeDouble("concurrent_prob", &spec.concurrent_prob, 0.0, 1.0);
    reader.TakeDouble("long_test_prob", &spec.long_test_prob, 0.0, 1.0);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<ConfigureWorkload>(spec);
}

std::unique_ptr<Workload> BuildDacapo(const std::string& row, const JsonValue* params,
                                      const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  DacapoSpec spec;
  const auto names = DacapoWorkload::AppNames();
  if (Contains(names, row)) {
    spec = DacapoWorkload::AppSpec(row);
  } else if (params == nullptr) {
    err.Add(path, "\"" + row + "\" is not a dacapo application (known: " + JoinNames(names) +
                      "); custom rows need \"params\"");
    return nullptr;
  }
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    TakePresetBase(reader, names, &DacapoWorkload::AppSpec, &spec);
    spec.app = row;
    reader.TakeInt("workers", &spec.workers, 0, 100000);
    reader.TakeDouble("compute_ms", &spec.compute_ms, 0.0, 1e5);
    reader.TakeDouble("sigma", &spec.sigma, 0.0, 4.0);
    reader.TakeDouble("sleep_ms", &spec.sleep_ms, 0.0, 1e5);
    reader.TakeInt("iterations", &spec.iterations, 1, 1000000);
    reader.TakeDouble("lock_fraction", &spec.lock_fraction, 0.0, 1.0);
    reader.TakeInt("lock_tokens", &spec.lock_tokens, 0, 100000);
    reader.TakeBool("churn", &spec.churn);
    reader.TakeInt("churn_batches", &spec.churn_batches, 0, 100000);
    reader.TakeInt("churn_iterations", &spec.churn_iterations, 1, 1000000);
    reader.TakeInt("aux_threads", &spec.aux_threads, 0, 100000);
    reader.TakeDouble("aux_compute_ms", &spec.aux_compute_ms, 0.0, 1e5);
    reader.TakeDouble("aux_period_ms", &spec.aux_period_ms, 1e-3, 1e6);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<DacapoWorkload>(spec);
}

std::unique_ptr<Workload> BuildNas(const std::string& row, const JsonValue* params,
                                   const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  NasSpec spec;
  const auto names = NasWorkload::KernelNames();
  if (Contains(names, row)) {
    spec = NasWorkload::KernelSpec(row);
  } else if (params == nullptr) {
    err.Add(path, "\"" + row + "\" is not a NAS kernel (known: " + JoinNames(names) +
                      "); custom rows need \"params\"");
    return nullptr;
  }
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    TakePresetBase(reader, names, &NasWorkload::KernelSpec, &spec);
    spec.kernel_name = row;
    reader.TakeDouble("iter_compute_ms", &spec.iter_compute_ms, 0.0, 1e5);
    reader.TakeInt("iterations", &spec.iterations, 1, 1000000);
    reader.TakeDouble("jitter", &spec.jitter, 0.0, 1.0);
    reader.TakeInt("threads", &spec.threads, 0, 100000);
    reader.TakeDouble("serial_setup_ms", &spec.serial_setup_ms, 0.0, 1e6);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<NasWorkload>(spec);
}

std::unique_ptr<Workload> BuildPhoronix(const std::string& row, const JsonValue* params,
                                        const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  PhoronixSpec spec;
  const auto names = PhoronixWorkload::Figure13TestNames();
  const int synthetic = SyntheticIndex(row);
  if (Contains(names, row)) {
    spec = PhoronixWorkload::TestSpec(row);
  } else if (synthetic >= 0) {
    spec = PhoronixWorkload::SyntheticSpec(synthetic);
  } else if (params == nullptr) {
    err.Add(path, "\"" + row + "\" is not a phoronix test (known: " + JoinNames(names) +
                      ", synthetic-<i>); custom rows need \"params\"");
    return nullptr;
  }
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    TakePresetBase(reader, names, &PhoronixWorkload::TestSpec, &spec);
    spec.test = row;
    std::string style;
    if (reader.TakeEnum("style", &style,
                        {"pool", "openmp", "pipeline", "full_parallel", "serial_bursts"})) {
      spec.style = style == "pool"            ? PhoronixStyle::kPool
                   : style == "openmp"        ? PhoronixStyle::kOpenMp
                   : style == "pipeline"      ? PhoronixStyle::kPipeline
                   : style == "full_parallel" ? PhoronixStyle::kFullParallel
                                              : PhoronixStyle::kSerialBursts;
    }
    reader.TakeInt("threads", &spec.threads, 0, 100000);
    reader.TakeDouble("item_ms", &spec.item_ms, 0.0, 1e5);
    reader.TakeDouble("sigma", &spec.sigma, 0.0, 4.0);
    reader.TakeInt("items", &spec.items, 1, 1000000);
    reader.TakeDouble("gap_ms", &spec.gap_ms, 0.0, 1e5);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<PhoronixWorkload>(spec);
}

std::unique_ptr<Workload> BuildServer(const std::string& row, const JsonValue* params,
                                      const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  ServerSpec spec;
  const auto names = ServerWorkload::TestNames();
  if (Contains(names, row)) {
    spec = ServerWorkload::TestSpec(row);
  } else if (params == nullptr) {
    err.Add(path, "\"" + row + "\" is not a server test (known: " + JoinNames(names) +
                      "); custom rows need \"params\"");
    return nullptr;
  }
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    TakePresetBase(reader, names, &ServerWorkload::TestSpec, &spec);
    spec.name = row;
    std::string style;
    if (reader.TakeEnum("style", &style, {"thread_per_request", "event_loop", "key_value_store"})) {
      spec.style = style == "thread_per_request" ? ServerStyle::kThreadPerRequest
                   : style == "event_loop"       ? ServerStyle::kEventLoop
                                                 : ServerStyle::kKeyValueStore;
    }
    reader.TakeInt("workers", &spec.workers, 1, 100000);
    reader.TakeInt("clients", &spec.clients, 1, 100000);
    reader.TakeInt("requests_per_client", &spec.requests_per_client, 1, 1000000);
    reader.TakeDouble("service_ms", &spec.service_ms, 0.0, 1e5);
    reader.TakeDouble("service_sigma", &spec.service_sigma, 0.0, 4.0);
    reader.TakeDouble("io_pause_ms", &spec.io_pause_ms, 0.0, 1e5);
    reader.TakeDouble("client_think_ms", &spec.client_think_ms, 0.0, 1e5);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<ServerWorkload>(spec);
}

std::unique_ptr<Workload> BuildRequests(const std::string& row, const JsonValue* params,
                                        const std::string& path, ScenarioError& err) {
  const size_t before = err.errors.size();
  RequestSpec spec;
  spec.name = row;
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    reader.TakeDouble("rate_per_s", &spec.rate_per_s, 1e-3, 1e6);
    std::string arrivals;
    if (reader.TakeEnum("arrivals", &arrivals, {"poisson", "bursty"})) {
      ArrivalKindFromName(arrivals, &spec.arrivals);
    }
    reader.TakeDouble("duration_s", &spec.duration_s, 1e-3, 1e4);
    reader.TakeDouble("burst_every_s", &spec.burst_every_s, 1e-3, 1e4);
    reader.TakeDouble("burst_len_s", &spec.burst_len_s, 1e-3, 1e4);
    reader.TakeDouble("burst_factor", &spec.burst_factor, 1.0, 1e3);
    reader.TakeDouble("service_ms", &spec.service_ms, 0.0, 1e5);
    reader.TakeDouble("service_sigma", &spec.service_sigma, 0.0, 4.0);
    reader.TakeDouble("io_pause_ms", &spec.io_pause_ms, 0.0, 1e5);
    reader.TakeInt("fanout", &spec.fanout, 0, 64);
    reader.TakeDouble("fanout_service_ms", &spec.fanout_service_ms, 0.0, 1e5);
    reader.TakeDouble("diurnal_depth", &spec.diurnal_depth, 0.0, 1.0);
    reader.TakeDouble("diurnal_period_s", &spec.diurnal_period_s, 1e-3, 1e4);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<RequestWorkload>(spec);
}

std::unique_ptr<Workload> BuildHackbench(const std::string& row, const JsonValue* params,
                                         const std::string& path, ScenarioError& err) {
  (void)row;
  const size_t before = err.errors.size();
  HackbenchSpec spec;
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    reader.TakeInt("groups", &spec.groups, 1, 10000);
    reader.TakeInt("fan", &spec.fan, 1, 10000);
    reader.TakeInt("loops", &spec.loops, 1, 1000000);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<HackbenchWorkload>(spec);
}

std::unique_ptr<Workload> BuildSchbench(const std::string& row, const JsonValue* params,
                                        const std::string& path, ScenarioError& err) {
  (void)row;
  const size_t before = err.errors.size();
  SchbenchSpec spec;
  if (params != nullptr) {
    SpecReader reader(*params, path, err);
    reader.TakeInt("message_threads", &spec.message_threads, 1, 10000);
    reader.TakeInt("workers_per_thread", &spec.workers_per_thread, 1, 10000);
    reader.TakeInt("rounds", &spec.rounds, 1, 1000000);
    reader.TakeDouble("work_ms", &spec.work_ms, 0.0, 1e5);
    reader.Finish();
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return std::make_unique<SchbenchWorkload>(spec);
}

std::unique_ptr<Workload> BuildMulti(const std::string& row, const JsonValue* params,
                                     const std::string& path, ScenarioError& err) {
  (void)row;
  const size_t before = err.errors.size();
  if (params == nullptr) {
    err.Add(path, "family \"multi\" needs \"params\" with a \"members\" array");
    return nullptr;
  }
  SpecReader reader(*params, path, err);
  const JsonValue* members = reader.Take("members");
  reader.Finish();
  if (members == nullptr || !members->is_array() || members->items.size() < 2) {
    err.Add(path, "\"members\" must be an array of at least two member objects");
    return nullptr;
  }
  auto multi = std::make_unique<MultiAppWorkload>();
  for (size_t i = 0; i < members->items.size(); ++i) {
    const std::string mpath = path + "/members[" + std::to_string(i) + "]";
    SpecReader member_reader(members->items[i], mpath, err);
    std::string family_name;
    member_reader.TakeString("family", &family_name, /*required=*/true);
    std::string preset;
    const bool has_preset = member_reader.TakeString("preset", &preset);
    const JsonValue* member_params = member_reader.Take("params");
    member_reader.Finish();
    if (family_name == "multi") {
      err.Add(mpath, "members cannot nest another \"multi\"");
      continue;
    }
    const WorkloadFamily* family = FindWorkloadFamily(family_name);
    if (family == nullptr) {
      if (!family_name.empty()) {
        err.Add(mpath, "unknown workload family \"" + family_name +
                           "\" (known: " + JoinNames(WorkloadFamilyNames()) + ")");
      }
      continue;
    }
    if (member_params != nullptr && !member_params->is_object()) {
      err.Add(mpath, std::string("\"params\" must be an object, got ") +
                         JsonTypeName(member_params->type));
      continue;
    }
    const std::string member_row = has_preset ? preset : family_name;
    std::unique_ptr<Workload> member =
        family->build(member_row, member_params, mpath, err);
    if (member != nullptr) {
      multi->Add(std::move(member));
    }
  }
  if (Grew(err, before)) {
    return nullptr;
  }
  return multi;
}

std::vector<WorkloadFamily> MakeFamilies() {
  std::vector<WorkloadFamily> families;

  {
    WorkloadFamily f;
    f.name = "configure";
    f.summary = "software-configure scripts: fork-dense probe tasks (Figs. 2-7)";
    f.presets = ConfigureWorkload::PackageNames();
    f.groups = {{"all", f.presets}};
    f.is_preset = [presets = f.presets](const std::string& row) { return Contains(presets, row); };
    f.build = BuildConfigure;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "dacapo";
    f.summary = "DaCapo-style Java applications: workers, locks, churn, GC gangs (Figs. 8-11)";
    f.presets = DacapoWorkload::AppNames();
    f.groups = {{"all", f.presets}};
    f.is_preset = [presets = f.presets](const std::string& row) { return Contains(presets, row); };
    f.build = BuildDacapo;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "nas";
    f.summary = "NAS-style HPC kernels: one barriered worker per CPU (Fig. 12)";
    f.presets = NasWorkload::KernelNames();
    f.groups = {{"all", f.presets}};
    f.is_preset = [presets = f.presets](const std::string& row) { return Contains(presets, row); };
    f.build = BuildNas;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "phoronix";
    f.summary = "Phoronix-multicore styles: pool/openmp/pipeline/... (Fig. 13, Table 4)";
    f.presets = PhoronixWorkload::Figure13TestNames();
    std::vector<std::string> table4;
    table4.reserve(222);
    for (int i = 0; i < 222; ++i) {
      table4.push_back(i < static_cast<int>(f.presets.size()) ? f.presets[i]
                                                              : "synthetic-" + std::to_string(i));
    }
    f.groups = {{"all", f.presets}, {"fig13", f.presets}, {"table4", std::move(table4)}};
    f.is_preset = [presets = f.presets](const std::string& row) {
      return Contains(presets, row) || SyntheticIndex(row) >= 0;
    };
    f.build = BuildPhoronix;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "server";
    f.summary = "request/response services under closed-loop clients (§5.6)";
    f.presets = ServerWorkload::TestNames();
    f.groups = {{"all", f.presets}};
    f.is_preset = [presets = f.presets](const std::string& row) { return Contains(presets, row); };
    f.build = BuildServer;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "requests";
    f.summary = "open-loop request traffic: Poisson/bursty arrivals, tail latency (cluster)";
    f.is_preset = [](const std::string& row) { return row == "requests"; };
    f.build = BuildRequests;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "hackbench";
    f.summary = "wakeup-dominated messaging stress (hackbench -g -l)";
    f.is_preset = [](const std::string& row) { return row == "hackbench"; };
    f.build = BuildHackbench;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "schbench";
    f.summary = "tail wakeup-latency benchmark (message threads + workers)";
    f.is_preset = [](const std::string& row) { return row == "schbench"; };
    f.build = BuildSchbench;
    families.push_back(std::move(f));
  }
  {
    WorkloadFamily f;
    f.name = "multi";
    f.summary = "composition: several members run concurrently, tagged per member";
    f.is_preset = [](const std::string& row) {
      (void)row;
      return false;  // always needs params.members
    };
    f.build = BuildMulti;
    families.push_back(std::move(f));
  }
  return families;
}

}  // namespace

const std::vector<WorkloadFamily>& WorkloadFamilies() {
  static const std::vector<WorkloadFamily>* families =
      new std::vector<WorkloadFamily>(MakeFamilies());
  return *families;
}

const WorkloadFamily* FindWorkloadFamily(const std::string& name) {
  for (const WorkloadFamily& f : WorkloadFamilies()) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

std::vector<std::string> WorkloadFamilyNames() {
  std::vector<std::string> names;
  for (const WorkloadFamily& f : WorkloadFamilies()) {
    names.push_back(f.name);
  }
  return names;
}

}  // namespace nestsim
