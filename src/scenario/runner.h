// Expands a parsed Scenario into campaign jobs, executes them on the worker
// pool, and prints the paper-style tables.
//
// Expansion order is machine → row → variant → sweep point (innermost), with
// one workload model per (machine, row) shared across variants and sweep
// points — exactly GridCampaign's order, so a sweepless scenario produces the
// same job stream (and byte-identical tables and JSONL) as the hand-written
// grid bench it replaces.

#ifndef NESTSIM_SRC_SCENARIO_RUNNER_H_
#define NESTSIM_SRC_SCENARIO_RUNNER_H_

#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/scenario/scenario.h"

namespace nestsim {

struct ScenarioRunOptions {
  // --reps: replaces the resolved repetition count when > 0. Without it the
  // count is RepetitionsFromEnv(scenario.repetitions) — NESTSIM_REPS wins.
  int repetitions_override = 0;

  // --base-seed: replaces scenario.base_seed.
  bool has_base_seed = false;
  uint64_t base_seed = 1;

  // --timeout: replaces scenario.timeout_s when >= 0.
  double timeout_override_s = -1.0;

  // --parallel: replaces every job's config.parallel.workers when >= 0.
  // Results are byte-identical at any worker count (docs/PARALLEL.md), so
  // this composes with --check-baseline: the same goldens must pass at any
  // setting.
  int parallel_workers = -1;

  // Worker pool / JSONL sink; defaults honour NESTSIM_JOBS and NESTSIM_JSONL.
  CampaignOptions campaign = CampaignOptions::FromEnv();
};

// A fully expanded scenario: the job grid plus (after ExecuteScenario) its
// outcomes, indexed by (machine, row, variant, sweep point).
struct ScenarioRun {
  Scenario scenario;
  int repetitions = 1;
  uint64_t base_seed = 1;
  double timeout_s = 0.0;

  // Human-readable sweep-point labels ("nest.r_max=3,..."); exactly one empty
  // label when the scenario has no sweep.
  std::vector<std::string> sweep_labels;

  // Worker pool / sink settings ExecuteScenario runs with (copied from
  // ScenarioRunOptions at expansion time).
  CampaignOptions campaign_options;

  std::vector<Job> jobs;         // expansion order
  std::vector<JobOutcome> outcomes;  // filled by ExecuteScenario, jobs order

  size_t num_machines() const { return scenario.machines.size(); }
  size_t num_rows() const { return scenario.rows.size(); }
  size_t num_variants() const { return scenario.variants.size(); }
  size_t num_sweeps() const { return sweep_labels.size(); }

  size_t Index(size_t machine, size_t row, size_t variant, size_t sweep = 0) const;
  const Job& job(size_t machine, size_t row, size_t variant, size_t sweep = 0) const;
  const JobOutcome& outcome(size_t machine, size_t row, size_t variant, size_t sweep = 0) const;
  // The aggregated result; throws std::runtime_error when the job timed out
  // or failed — use outcome() where failures are expected.
  const RepeatedResult& result(size_t machine, size_t row, size_t variant,
                               size_t sweep = 0) const;
};

// Builds the job grid (models included). Fails — with every problem reported
// — on rows whose workloads cannot be built or overrides that cannot apply.
bool ExpandScenario(const Scenario& scenario, const ScenarioRunOptions& options, ScenarioRun* run,
                    ScenarioError* err);

// Runs the expanded jobs through a Campaign named scenario.name and stores
// the outcomes.
void ExecuteScenario(ScenarioRun* run);

// Prints the PrintHeader banner for the scenario's title/description (no-op
// for untitled scenarios). Benches print this before running, so the runner
// keeps that order.
void PrintScenarioHeader(const Scenario& scenario);

// Prints the per-machine tables in the style the scenario's TableSpec asks
// for (Fig. 5/10/12 speedups, Fig. 4 underload, Table 4 bands). Sweeping
// scenarios print one table block per sweep point.
void PrintScenarioTables(const ScenarioRun& run);

// Locates a scenario file for the thin bench wrappers: `name` as given, then
// $NESTSIM_SCENARIO_DIR/<name>, then scenarios/<name>, ../scenarios/<name>
// and ../../scenarios/<name> relative to the working directory (the last for
// tests running from build/tests). Returns `name` unchanged when nothing
// exists (the open error then names the literal path).
std::string ResolveScenarioPath(const std::string& name);

// Load + expand + execute + print; the body of `nestsim_run <file>` and of
// the scenario-backed bench binaries. Returns a process exit code.
int RunScenarioFileMain(const std::string& name, const ScenarioRunOptions& options = {});

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_RUNNER_H_
