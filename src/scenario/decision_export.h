// Decision-trace export over a whole scenario (tools/nestsim_export).
//
// CollectDecisionTraces expands and executes the scenario exactly like
// nestsim_run — same job grid, same campaign worker pool — with one
// DecisionTrace sink attached per job, so every fork/wake placement decision
// lands as a feature row (src/predict/features.h). Rows are serialized in job
// order with a stream-wide decision index, which makes the output
// byte-identical at any NESTSIM_JOBS worker count and any --parallel PDES
// setting (pinned by tests/predict/export_invariance_test.cc).

#ifndef NESTSIM_SRC_SCENARIO_DECISION_EXPORT_H_
#define NESTSIM_SRC_SCENARIO_DECISION_EXPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/predict/decision_trace.h"
#include "src/predict/features.h"
#include "src/scenario/runner.h"

namespace nestsim {

// The executed scenario's traces, one per job in expansion order.
struct DecisionExportResult {
  // Widest machine across the grid; CSV per-core blocks are padded to this so
  // multi-machine exports stay rectangular.
  int num_cpus = 0;

  std::vector<DecisionLabels> labels;                  // parallel to traces
  std::vector<std::shared_ptr<DecisionTrace>> traces;  // job order
};

// Expands `scenario`, attaches one decision-trace sink per job, and runs the
// campaign. Fails on cluster scenarios (the cluster runner builds its own
// stacks and never attaches predict observers) and on any job that times out
// or throws. Campaign progress/JSONL options come from `options` unchanged.
bool CollectDecisionTraces(const Scenario& scenario, const ScenarioRunOptions& options,
                           DecisionExportResult* out, ScenarioError* err);

// All rows in export order (job-major, then seed/time order within the job);
// the training input for TrainTableModel.
std::vector<DecisionRow> FlattenDecisions(const DecisionExportResult& result);

// The full export stream: CSV (header + one line per row) or JSONL (one
// object per row). Deterministic for a deterministic scenario.
std::string SerializeDecisions(const DecisionExportResult& result, bool jsonl);

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_DECISION_EXPORT_H_
