#include "src/scenario/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/cluster/router.h"
#include "src/governors/governors.h"
#include "src/hw/machine_spec.h"
#include "src/scenario/predict_io.h"
#include "src/scenario/registry.h"
#include "src/scenario/runner.h"
#include "src/sim/time.h"

namespace nestsim {

void ScenarioError::Add(const std::string& path, const std::string& message) {
  errors.push_back(path.empty() ? message : path + ": " + message);
}

std::string ScenarioError::Join() const {
  std::string out;
  for (const std::string& e : errors) {
    if (!out.empty()) {
      out += '\n';
    }
    out += e;
  }
  return out;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) {
      out += ", ";
    }
    out += n;
  }
  return out;
}

// SpecReader --------------------------------------------------------------

SpecReader::SpecReader(const JsonValue& obj, std::string path, ScenarioError& err)
    : obj_(obj), path_(std::move(path)), err_(err) {
  if (!obj_.is_object()) {
    err_.Add(path_, std::string("expected an object, got ") + JsonTypeName(obj_.type));
  }
}

const JsonValue* SpecReader::Take(const std::string& key) {
  taken_.push_back(key);
  return obj_.is_object() ? obj_.Find(key) : nullptr;
}

bool SpecReader::TakeString(const std::string& key, std::string* out, bool required) {
  const JsonValue* v = Take(key);
  if (v == nullptr) {
    if (required) {
      err_.Add(path_, "missing required key \"" + key + "\" (string)");
    }
    return false;
  }
  if (!v->is_string()) {
    err_.Add(path_, "\"" + key + "\" must be a string, got " + JsonTypeName(v->type));
    return false;
  }
  *out = v->string;
  return true;
}

bool SpecReader::TakeInt(const std::string& key, int* out, int min_value, int max_value) {
  const JsonValue* v = Take(key);
  if (v == nullptr) {
    return false;
  }
  if (!v->is_number() || std::floor(v->number) != v->number) {
    err_.Add(path_, "\"" + key + "\" must be an integer, got " +
                        (v->is_number() ? "a fractional number" : JsonTypeName(v->type)));
    return false;
  }
  if (v->number < min_value || v->number > max_value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\" out of range: %.17g not in [%d, %d]", key.c_str(),
                  v->number, min_value, max_value);
    err_.Add(path_, buf);
    return false;
  }
  *out = static_cast<int>(v->number);
  return true;
}

bool SpecReader::TakeU64(const std::string& key, uint64_t* out) {
  const JsonValue* v = Take(key);
  if (v == nullptr) {
    return false;
  }
  if (!v->is_number() || std::floor(v->number) != v->number || v->number < 0 ||
      v->number > 9.007199254740992e15) {  // 2^53: exactly representable
    err_.Add(path_, "\"" + key + "\" must be a non-negative integer (< 2^53)");
    return false;
  }
  *out = static_cast<uint64_t>(v->number);
  return true;
}

bool SpecReader::TakeDouble(const std::string& key, double* out, double min_value,
                            double max_value) {
  const JsonValue* v = Take(key);
  if (v == nullptr) {
    return false;
  }
  if (!v->is_number()) {
    err_.Add(path_, "\"" + key + "\" must be a number, got " + JsonTypeName(v->type));
    return false;
  }
  if (v->number < min_value || v->number > max_value) {
    char buf[112];
    std::snprintf(buf, sizeof(buf), "\"%s\" out of range: %.17g not in [%g, %g]", key.c_str(),
                  v->number, min_value, max_value);
    err_.Add(path_, buf);
    return false;
  }
  *out = v->number;
  return true;
}

bool SpecReader::TakeBool(const std::string& key, bool* out) {
  const JsonValue* v = Take(key);
  if (v == nullptr) {
    return false;
  }
  if (!v->is_bool()) {
    err_.Add(path_, "\"" + key + "\" must be true or false, got " + JsonTypeName(v->type));
    return false;
  }
  *out = v->boolean;
  return true;
}

bool SpecReader::TakeEnum(const std::string& key, std::string* out,
                          const std::vector<std::string>& allowed, bool required) {
  std::string value;
  if (!TakeString(key, &value, required)) {
    return false;
  }
  for (const std::string& a : allowed) {
    if (a == value) {
      *out = value;
      return true;
    }
  }
  err_.Add(path_,
           "\"" + key + "\": unknown value \"" + value + "\" (allowed: " + JoinNames(allowed) + ")");
  return false;
}

void SpecReader::Finish() {
  if (!obj_.is_object()) {
    return;
  }
  for (const auto& [key, value] : obj_.members) {
    (void)value;
    bool known = false;
    for (const std::string& t : taken_) {
      if (t == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      err_.Add(path_, "unknown key \"" + key + "\" (known keys: " + JoinNames(taken_) + ")");
    }
  }
}

// Variants ----------------------------------------------------------------

std::vector<ScenarioVariant> StandardScenarioVariants(bool include_smove) {
  std::vector<ScenarioVariant> variants = {
      {"CFS sched", "CFS sched (s)", "CFS-sched.", SchedulerKind::kCfs, "schedutil"},
      {"CFS perf", "CFS perf", "CFS-perf.", SchedulerKind::kCfs, "performance"},
      {"Nest sched", "Nest sched", "Nest-sched.", SchedulerKind::kNest, "schedutil"},
      {"Nest perf", "Nest perf", "Nest-perf.", SchedulerKind::kNest, "performance"},
  };
  if (include_smove) {
    variants.push_back(
        {"Smove sched", "Smove sch", "Smove-sched.", SchedulerKind::kSmove, "schedutil"});
  }
  return variants;
}

// Config overrides --------------------------------------------------------

namespace {

bool OverrideInt(const JsonValue& value, int min_value, int max_value, int* out) {
  if (!value.is_number() || std::floor(value.number) != value.number ||
      value.number < min_value || value.number > max_value) {
    return false;
  }
  *out = static_cast<int>(value.number);
  return true;
}

bool OverrideDouble(const JsonValue& value, double min_value, double max_value, double* out) {
  if (!value.is_number() || value.number < min_value || value.number > max_value) {
    return false;
  }
  *out = value.number;
  return true;
}

bool OverrideBool(const JsonValue& value, bool* out) {
  if (!value.is_bool()) {
    return false;
  }
  *out = value.boolean;
  return true;
}

bool OverrideString(const JsonValue& value, std::string* out) {
  if (!value.is_string()) {
    return false;
  }
  *out = value.string;
  return true;
}

struct OverrideSpec {
  const char* key;
  const char* expects;  // for error messages
  std::function<bool(ExperimentConfig*, const JsonValue&)> apply;
};

const std::vector<OverrideSpec>& Overrides() {
  static const std::vector<OverrideSpec>* specs = new std::vector<OverrideSpec>{
      {"time_limit_s", "number in (0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         double s = 0;
         if (!OverrideDouble(v, 1e-9, 1e6, &s)) {
           return false;
         }
         c->time_limit = static_cast<SimDuration>(s * static_cast<double>(kSecond));
         return true;
       }},
      {"record_trace", "bool",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideBool(v, &c->record_trace); }},
      {"record_underload_series", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->record_underload_series);
       }},
      {"record_latency", "bool",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideBool(v, &c->record_latency); }},
      {"trace_dir", "string",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideString(v, &c->trace_dir); }},
      {"trace_label", "string",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideString(v, &c->trace_label); }},
      {"nest.p_remove_ticks", "integer in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 1000, &c->nest.p_remove_ticks);
       }},
      {"nest.r_max", "integer in [0, 4096]",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideInt(v, 0, 4096, &c->nest.r_max); }},
      {"nest.r_impatient", "integer in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 1000, &c->nest.r_impatient);
       }},
      {"nest.s_max_ticks", "integer in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 1000, &c->nest.s_max_ticks);
       }},
      {"nest.enable_reserve", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_reserve);
       }},
      {"nest.enable_compaction", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_compaction);
       }},
      {"nest.enable_spin", "bool",
       [](ExperimentConfig* c, const JsonValue& v) { return OverrideBool(v, &c->nest.enable_spin); }},
      {"nest.enable_attach", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_attach);
       }},
      {"nest.enable_impatience", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_impatience);
       }},
      {"nest.enable_wake_work_conservation", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_wake_work_conservation);
       }},
      {"nest.enable_placement_reservation", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest.enable_placement_reservation);
       }},
      {"governor", "string (a known governor name)",
       [](ExperimentConfig* c, const JsonValue& v) {
         std::string name;
         if (!OverrideString(v, &name) || !IsKnownGovernor(name)) {
           return false;
         }
         c->governor = name;
         return true;
       }},
      {"smove.low_freq_fraction", "number in (0, 1]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 1e-9, 1.0, &c->smove.low_freq_fraction);
       }},
      {"smove.move_delay_us", "number in [0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         double us = 0;
         if (!OverrideDouble(v, 0.0, 1e6, &us)) {
           return false;
         }
         c->smove.move_delay = static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
         return true;
       }},
      // Cache-warmth model (src/hw/cache_model.h, docs/MODEL.md §5). Applies
      // to every scheduler; at the defaults (speedup 1, cost 0) the model is
      // off and behaviour is byte-identical to a build without it.
      {"cache.warm_speedup", "number in [1, 10]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 1.0, 10.0, &c->kernel.cache.warm_speedup);
       }},
      {"cache.migration_cost_work", "number in [0, 1e9]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e9, &c->kernel.cache.migration_cost_work);
       }},
      {"cache.warm_threshold", "number in [0, 1]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1.0, &c->kernel.cache.warm_threshold);
       }},
      // NestCachePolicy extras (src/nest/nest_cache_policy.h); only the
      // nest_cache variant reads them.
      {"nest_cache.warm_bias_threshold", "number in [0, 1]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1.0, &c->nest_cache.warm_bias_threshold);
       }},
      {"nest_cache.compaction_grace_ticks", "integer in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 1000, &c->nest_cache.compaction_grace_ticks);
       }},
      {"nest_cache.enable_warm_anchor", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest_cache.enable_warm_anchor);
       }},
      {"nest_cache.enable_cost_aware_expansion", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest_cache.enable_cost_aware_expansion);
       }},
      {"nest_cache.enable_compaction_grace", "bool",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideBool(v, &c->nest_cache.enable_compaction_grace);
       }},
      // Fault-injection plan (src/fault/, docs/FAULTS.md). All rates default
      // to 0 (no plan drawn, goldens byte-identical); rates are expected
      // events per simulated second per machine.
      {"fault.core_fail_rate_per_s", "number in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1000.0, &c->fault.core_fail_rate_per_s);
       }},
      {"fault.core_downtime_ms", "number in [0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e6, &c->fault.core_downtime_ms);
       }},
      {"fault.machine_fail_rate_per_s", "number in [0, 1000]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1000.0, &c->fault.machine_fail_rate_per_s);
       }},
      {"fault.machine_downtime_ms", "number in [0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e6, &c->fault.machine_downtime_ms);
       }},
      {"fault.horizon_s", "number in [0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e6, &c->fault.horizon_s);
       }},
      // Task replication: N copies per injected task (cluster: per request
      // part), JOIN on the first `quorum` completions; losers are reaped.
      {"replicas", "integer in [1, 16]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 1, 16, &c->fault.replicas);
       }},
      {"fault.quorum", "integer in [0, 16] (0 = all replicas)",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 16, &c->fault.quorum);
       }},
      // Energy budget (src/governors/, docs/FAULTS.md). budget_w 0 disables;
      // only the "budget" governor acts on it.
      {"power.budget_w", "number in [0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e6, &c->power.budget_w);
       }},
      {"power.headroom_fraction", "number in (0, 1]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 1e-9, 1.0, &c->power.headroom_fraction);
       }},
      // NestBudgetPolicy extras (src/nest/nest_budget_policy.h); only the
      // nest_budget variant reads them.
      {"nest_budget.min_primary", "integer in [1, 4096]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 1, 4096, &c->nest_budget.min_primary);
       }},
      // Prediction subsystem (src/predict/, docs/PREDICTION.md). model_file
      // loads eagerly so a missing or malformed model is a parse error, not a
      // mid-campaign failure; the path resolves like scenario files do.
      {"predict.model_file",
       "string (path to a valid nest-predict-table model JSON; see docs/PREDICTION.md)",
       [](ExperimentConfig* c, const JsonValue& v) {
         std::string path;
         if (!OverrideString(v, &path)) {
           return false;
         }
         ScenarioError load_err;
         auto model = std::make_shared<TableModel>();
         if (!LoadTableModelFile(ResolveScenarioPath(path), model.get(), &load_err)) {
           return false;
         }
         c->predict.model = std::move(model);
         return true;
       }},
      {"predict.oracle_window_ms", "number in (0, 1e6]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 1e-9, 1e6, &c->predict.oracle_window_ms);
       }},
      {"predict.oracle_margin", "integer in [0, 4096]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 4096, &c->predict.oracle_margin);
       }},
      // Parallel (PDES) execution knobs (src/sim/parallel.h,
      // docs/PARALLEL.md). Pure execution policy: results are byte-identical
      // at any setting, so goldens never record them.
      {"parallel.workers", "integer in [0, 64]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideInt(v, 0, 64, &c->parallel.workers);
       }},
      {"parallel.sync", "string (auto | window | lockstep)",
       [](ExperimentConfig* c, const JsonValue& v) {
         std::string s;
         if (!OverrideString(v, &s) || (s != "auto" && s != "window" && s != "lockstep")) {
           return false;
         }
         c->parallel.sync = s;
         return true;
       }},
      {"parallel.lookahead_us", "number in [0, 1e9]",
       [](ExperimentConfig* c, const JsonValue& v) {
         return OverrideDouble(v, 0.0, 1e9, &c->parallel.lookahead_us);
       }},
  };
  return *specs;
}

}  // namespace

std::vector<std::string> ConfigOverrideKeys() {
  std::vector<std::string> keys;
  keys.reserve(Overrides().size());
  for (const OverrideSpec& o : Overrides()) {
    keys.push_back(o.key);
  }
  return keys;
}

bool ApplyConfigOverride(ExperimentConfig* config, const std::string& key, const JsonValue& value,
                         const std::string& path, ScenarioError* err) {
  for (const OverrideSpec& o : Overrides()) {
    if (key == o.key) {
      if (!o.apply(config, value)) {
        err->Add(path, "\"" + key + "\" expects " + o.expects);
        return false;
      }
      return true;
    }
  }
  err->Add(path,
           "unknown config key \"" + key + "\" (known: " + JoinNames(ConfigOverrideKeys()) + ")");
  return false;
}

// ParseScenario -----------------------------------------------------------

namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

void ParseMachines(const JsonValue* v, const std::string& path, Scenario* out,
                   ScenarioError* err) {
  if (v == nullptr) {
    out->machines = PaperMachineNames();
    return;
  }
  if (v->is_string()) {
    if (v->string == "paper") {
      out->machines = PaperMachineNames();
    } else if (v->string == "all") {
      out->machines = MachineNames();
    } else {
      err->Add(path, "\"machines\": unknown group \"" + v->string +
                         "\" (allowed: paper, all, or an array of machine names)");
    }
    return;
  }
  if (!v->is_array() || v->items.empty()) {
    err->Add(path, "\"machines\" must be \"paper\", \"all\", or a non-empty array of names");
    return;
  }
  for (const JsonValue& item : v->items) {
    if (!item.is_string() || FindMachine(item.string) == nullptr) {
      err->Add(path, "\"machines\": unknown machine " +
                         (item.is_string() ? "\"" + item.string + "\"" : JsonTypeName(item.type)) +
                         std::string(" (known: ") + JoinNames(MachineNames()) + ")");
      continue;
    }
    out->machines.push_back(item.string);
  }
}

void ParseVariants(const JsonValue* v, const std::string& path, Scenario* out,
                   ScenarioError* err) {
  if (v == nullptr) {
    out->variants = StandardScenarioVariants(false);
    return;
  }
  if (v->is_string()) {
    if (v->string == "standard") {
      out->variants = StandardScenarioVariants(false);
    } else if (v->string == "standard+smove") {
      out->variants = StandardScenarioVariants(true);
    } else {
      err->Add(path, "\"variants\": unknown group \"" + v->string +
                         "\" (allowed: standard, standard+smove, or an array of variant objects)");
    }
    return;
  }
  if (!v->is_array() || v->items.empty()) {
    err->Add(path,
             "\"variants\" must be \"standard\", \"standard+smove\", or a non-empty array of "
             "variant objects");
    return;
  }
  for (size_t i = 0; i < v->items.size(); ++i) {
    const std::string vpath = path + "/variants[" + std::to_string(i) + "]";
    SpecReader reader(v->items[i], vpath, *err);
    ScenarioVariant variant;
    reader.TakeString("label", &variant.label, /*required=*/true);
    std::string scheduler;
    if (reader.TakeEnum("scheduler", &scheduler, SchedulerKindKeys(), /*required=*/true)) {
      SchedulerKindFromKey(scheduler, &variant.scheduler);
    }
    if (!reader.TakeEnum("governor", &variant.governor, GovernorNames(), /*required=*/true)) {
      variant.governor = "schedutil";
    }
    variant.column = variant.label;
    variant.band_label = variant.label;
    reader.TakeString("column", &variant.column);
    reader.TakeString("band_label", &variant.band_label);
    reader.Finish();
    out->variants.push_back(std::move(variant));
  }
  // Duplicate labels would collide in baselines and JSONL post-processing.
  for (size_t i = 0; i < out->variants.size(); ++i) {
    for (size_t j = i + 1; j < out->variants.size(); ++j) {
      if (out->variants[i].label == out->variants[j].label) {
        err->Add(path, "\"variants\": duplicate label \"" + out->variants[i].label + "\"");
      }
    }
  }
}

void ParseWorkload(const JsonValue* v, const std::string& path, Scenario* out,
                   ScenarioError* err) {
  if (v == nullptr) {
    err->Add(path, "missing required key \"workload\" (object)");
    return;
  }
  SpecReader reader(*v, path + "/workload", *err);
  if (!reader.TakeString("family", &out->family, /*required=*/true)) {
    reader.Finish();
    return;
  }
  const WorkloadFamily* family = FindWorkloadFamily(out->family);
  if (family == nullptr) {
    reader.AddError("unknown workload family \"" + out->family +
                    "\" (known: " + JoinNames(WorkloadFamilyNames()) + ")");
    reader.Finish();
    return;
  }

  const JsonValue* presets = reader.Take("presets");
  const JsonValue* rows = reader.Take("rows");
  const JsonValue* params = reader.Take("params");
  const int sources = (presets != nullptr) + (rows != nullptr) + (params != nullptr);
  if (sources > 1) {
    reader.AddError("give at most one of \"presets\", \"rows\", \"params\"");
    reader.Finish();
    return;
  }

  if (presets != nullptr) {
    std::vector<std::string> names;
    if (presets->is_string()) {
      const std::vector<std::string>* group = family->FindGroup(presets->string);
      if (group == nullptr) {
        std::vector<std::string> group_names;
        for (const auto& [g, members] : family->groups) {
          (void)members;
          group_names.push_back(g);
        }
        reader.AddError("\"presets\": family \"" + out->family + "\" has no preset group \"" +
                        presets->string + "\" (known groups: " + JoinNames(group_names) + ")");
      } else {
        names = *group;
      }
    } else if (presets->is_array() && !presets->items.empty()) {
      for (const JsonValue& item : presets->items) {
        if (!item.is_string()) {
          reader.AddError(std::string("\"presets\": entries must be strings, got ") +
                          JsonTypeName(item.type));
          continue;
        }
        names.push_back(item.string);
      }
    } else {
      reader.AddError("\"presets\" must be a group name or a non-empty array of preset names");
    }
    for (const std::string& name : names) {
      if (!family->is_preset(name)) {
        reader.AddError("\"presets\": family \"" + out->family + "\" has no preset \"" + name +
                        "\" (known: " + JoinNames(family->presets) + ")");
        continue;
      }
      out->rows.push_back(ScenarioRow{name, false, {}});
    }
  } else if (rows != nullptr) {
    if (!rows->is_array() || rows->items.empty()) {
      reader.AddError("\"rows\" must be a non-empty array of row objects");
    } else {
      for (size_t i = 0; i < rows->items.size(); ++i) {
        const std::string rpath = reader.path() + "/rows[" + std::to_string(i) + "]";
        SpecReader row_reader(rows->items[i], rpath, *err);
        ScenarioRow row;
        row_reader.TakeString("label", &row.label, /*required=*/true);
        if (const JsonValue* p = row_reader.Take("params")) {
          if (!p->is_object()) {
            row_reader.AddError(std::string("\"params\" must be an object, got ") +
                                JsonTypeName(p->type));
          } else {
            row.has_params = true;
            row.params = *p;
          }
        }
        row_reader.Finish();
        if (!row.has_params && !row.label.empty() && !family->is_preset(row.label)) {
          row_reader.AddError("row \"" + row.label + "\" has no params and is not a \"" +
                              out->family + "\" preset (known presets: " +
                              JoinNames(family->presets) + ")");
        }
        out->rows.push_back(std::move(row));
      }
    }
  } else if (params != nullptr) {
    if (!params->is_object()) {
      reader.AddError(std::string("\"params\" must be an object, got ") +
                      JsonTypeName(params->type));
    } else {
      out->rows.push_back(ScenarioRow{out->family, true, *params});
    }
  } else {
    const std::vector<std::string>* all = family->FindGroup("all");
    if (all != nullptr && !all->empty()) {
      for (const std::string& name : *all) {
        out->rows.push_back(ScenarioRow{name, false, {}});
      }
    } else if (family->is_preset(out->family)) {
      // Families without presets (hackbench, schbench) run their defaults.
      out->rows.push_back(ScenarioRow{out->family, false, {}});
    } else {
      reader.AddError("family \"" + out->family + "\" needs \"params\" or \"rows\"");
    }
  }
  reader.Finish();

  // Test-build every parameterised row now so bad params (unknown keys, bad
  // types, out-of-range values) are parse errors, not mid-campaign failures.
  for (size_t i = 0; i < out->rows.size(); ++i) {
    const ScenarioRow& row = out->rows[i];
    if (row.has_params) {
      family->build(row.label, &row.params,
                    path + "/workload/rows[" + std::to_string(i) + "]/params", *err);
    }
  }

  for (size_t i = 0; i < out->rows.size(); ++i) {
    for (size_t j = i + 1; j < out->rows.size(); ++j) {
      if (out->rows[i].label == out->rows[j].label) {
        err->Add(path + "/workload", "duplicate row label \"" + out->rows[i].label + "\"");
      }
    }
  }
}

void ParseTable(const JsonValue* v, const std::string& path, Scenario* out, ScenarioError* err) {
  if (v == nullptr) {
    return;
  }
  SpecReader reader(*v, path + "/table", *err);
  std::string style;
  if (reader.TakeEnum("style", &style,
                      {"none", "speedup", "underload", "bands", "latency", "energy", "wakeup"})) {
    if (style == "none") {
      out->table.style = TableSpec::Style::kNone;
    } else if (style == "speedup") {
      out->table.style = TableSpec::Style::kSpeedup;
    } else if (style == "underload") {
      out->table.style = TableSpec::Style::kUnderload;
    } else if (style == "latency") {
      out->table.style = TableSpec::Style::kLatency;
    } else if (style == "energy") {
      out->table.style = TableSpec::Style::kEnergy;
    } else if (style == "wakeup") {
      out->table.style = TableSpec::Style::kWakeup;
    } else {
      out->table.style = TableSpec::Style::kBands;
    }
  }
  reader.TakeString("row_header", &out->table.row_header);
  reader.TakeInt("row_width", &out->table.row_width, 1, 64);
  reader.TakeString("row_suffix", &out->table.row_suffix);
  reader.TakeBool("underload_column", &out->table.underload_column);
  reader.Finish();
}

// The optional top-level "cluster" object (src/cluster/): runs every job as
// a fleet of `machines` identical boxes behind the named router. Only the
// open-loop "requests" family routes, so anything else is a parse error.
void ParseCluster(const JsonValue* v, const std::string& path, Scenario* out,
                  ScenarioError* err) {
  if (v == nullptr) {
    return;
  }
  const std::string cpath = path + "/cluster";
  SpecReader reader(*v, cpath, *err);
  out->has_cluster = true;
  // Named fleet sizes for the PDES scaling study (docs/PARALLEL.md). Applied
  // before "machines" so an explicit machine count overrides the preset.
  std::string preset;
  reader.TakeEnum("preset", &preset, {"rack8", "rack16", "rack32"});
  if (preset == "rack8") {
    out->cluster_machines = 8;
  } else if (preset == "rack16") {
    out->cluster_machines = 16;
  } else if (preset == "rack32") {
    out->cluster_machines = 32;
  }
  reader.TakeInt("machines", &out->cluster_machines, 1, 64);
  reader.TakeEnum("router", &out->cluster_router, RouterNames());
  reader.Finish();
  if (!out->family.empty() && out->family != "requests") {
    err->Add(cpath, "cluster scenarios need the \"requests\" workload family, got \"" +
                        out->family + "\"");
  }
}

void ParseConfigAndSweep(SpecReader& reader, Scenario* out, ScenarioError* err) {
  // Both are validated by applying to a scratch config, so bad keys, types,
  // and ranges surface at parse time, not mid-campaign.
  ExperimentConfig scratch;
  if (const JsonValue* config = reader.Take("config")) {
    if (!config->is_object()) {
      reader.AddError(std::string("\"config\" must be an object, got ") +
                      JsonTypeName(config->type));
    } else {
      out->has_config = true;
      out->config = *config;
      for (const auto& [key, value] : config->members) {
        ApplyConfigOverride(&scratch, key, value, reader.path() + "/config", err);
      }
    }
  }
  if (const JsonValue* sweep = reader.Take("sweep")) {
    if (!sweep->is_object() || sweep->members.empty()) {
      reader.AddError("\"sweep\" must be a non-empty object mapping config keys to value arrays");
    } else {
      for (const auto& [key, values] : sweep->members) {
        const std::string spath = reader.path() + "/sweep/" + key;
        if (!values.is_array() || values.items.empty()) {
          err->Add(spath, "sweep values must be a non-empty array");
          continue;
        }
        SweepAxis axis;
        axis.key = key;
        for (const JsonValue& value : values.items) {
          if (ApplyConfigOverride(&scratch, key, value, spath, err)) {
            axis.values.push_back(value);
          }
        }
        if (!axis.values.empty()) {
          out->sweep.push_back(std::move(axis));
        }
      }
    }
  }
}

}  // namespace

bool ParseScenario(const JsonValue& root, const std::string& file_label, Scenario* out,
                   ScenarioError* err) {
  *out = Scenario{};
  SpecReader reader(root, file_label, *err);

  if (reader.TakeString("name", &out->name, /*required=*/true) && !ValidName(out->name)) {
    reader.AddError("\"name\" must match [a-z0-9_-]+ (it names the baseline file), got \"" +
                    out->name + "\"");
  }
  reader.TakeString("title", &out->title);
  reader.TakeString("description", &out->description);

  ParseMachines(reader.Take("machines"), file_label, out, err);
  ParseVariants(reader.Take("variants"), file_label, out, err);
  ParseWorkload(reader.Take("workload"), file_label, out, err);
  ParseCluster(reader.Take("cluster"), file_label, out, err);

  reader.TakeInt("repetitions", &out->repetitions, 1, 1000000);
  reader.TakeU64("base_seed", &out->base_seed);
  reader.TakeDouble("timeout_s", &out->timeout_s, 0.0, 1e9);

  ParseConfigAndSweep(reader, out, err);
  ParseTable(reader.Take("table"), file_label, out, err);
  reader.Finish();

  if (out->variants.empty() && err->ok()) {
    err->Add(file_label, "no variants");
  }
  // The oracle's record/replay protocol lives inside single-machine
  // RunExperiment (src/core/experiment.cc); the cluster runner builds its own
  // per-machine stacks and would silently skip the recording pass.
  if (out->has_cluster) {
    for (const ScenarioVariant& variant : out->variants) {
      if (variant.scheduler == SchedulerKind::kNestOracle) {
        err->Add(file_label, "variant \"" + variant.label +
                                 "\": nest_oracle cannot run under \"cluster\" (the oracle " +
                                 "record/replay protocol is single-machine only)");
      }
    }
  }
  return err->ok();
}

bool LoadScenario(const std::string& path, Scenario* out, ScenarioError* err) {
  std::ifstream in(path);
  if (!in) {
    err->Add(path, "cannot open scenario file");
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  JsonValue root;
  std::string json_error;
  if (!JsonParse(text.str(), &root, &json_error)) {
    err->Add(path, "invalid JSON: " + json_error);
    return false;
  }
  // Error paths use the basename so messages stay short.
  const size_t slash = path.find_last_of('/');
  const std::string label = slash == std::string::npos ? path : path.substr(slash + 1);
  return ParseScenario(root, label, out, err);
}

}  // namespace nestsim
