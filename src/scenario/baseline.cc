#include "src/scenario/baseline.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/campaign/jsonl_sink.h"

namespace nestsim {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendString(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += '"';
}

void AppendU64(std::string& out, const char* key, uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendDouble(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  out += FormatDouble(value);
}

std::string BaselineJobRecord(const Job& job, const JobOutcome& outcome) {
  std::string out = "{";
  AppendString(out, "machine", job.config.machine);
  out += ',';
  AppendString(out, "row", job.workload);
  out += ',';
  AppendString(out, "variant", job.variant);
  out += ',';
  AppendString(out, "status", JobStatusName(outcome.status));
  out += ',';
  AppendDouble(out, "wall_s", outcome.wall_seconds);
  if (outcome.status == JobStatus::kFailed) {
    out += ',';
    AppendString(out, "error", outcome.message);
  }
  if (outcome.ok()) {
    out += ",\"runs\":[";
    for (size_t i = 0; i < outcome.result.runs.size(); ++i) {
      const ExperimentResult& r = outcome.result.runs[i];
      if (i > 0) {
        out += ',';
      }
      out += '{';
      AppendU64(out, "seed", job.base_seed + i);
      out += ',';
      AppendU64(out, "makespan_ns", static_cast<uint64_t>(r.makespan));
      out += ',';
      AppendDouble(out, "energy_j", r.energy_joules);
      out += ',';
      AppendDouble(out, "underload_per_s", r.underload_per_s);
      out += ',';
      AppendU64(out, "context_switches", r.context_switches);
      out += ',';
      AppendU64(out, "migrations", r.migrations);
      out += ',';
      AppendU64(out, "tasks_created", static_cast<uint64_t>(r.tasks_created));
      out += ',';
      AppendString(out, "counters", SchedCountersDigest(r.counters));
      if (job.config.record_latency) {
        // Wakeup-latency tails are appended only when the scenario opted into
        // recording them, so pre-predict goldens stay byte-identical.
        out += ',';
        AppendDouble(out, "wakeup_p50_us", r.p50_wakeup_latency_us);
        out += ',';
        AppendDouble(out, "wakeup_p99_us", r.p99_wakeup_latency_us);
      }
      if (r.cluster.num_machines > 0) {
        // Cluster fields are appended only for cluster runs so single-machine
        // goldens stay byte-identical to pre-cluster recordings.
        out += ',';
        AppendU64(out, "requests_offered", r.cluster.requests_offered);
        out += ',';
        AppendU64(out, "requests_completed", r.cluster.requests_completed);
        out += ',';
        AppendDouble(out, "latency_p50_ms", r.cluster.p50_ms);
        out += ',';
        AppendDouble(out, "latency_p99_ms", r.cluster.p99_ms);
        out += ',';
        AppendDouble(out, "latency_p999_ms", r.cluster.p999_ms);
      }
      if (r.resilience.any()) {
        // Resilience fields are appended only when a fault, replica, or
        // evacuation actually fired, so pre-fault goldens stay byte-identical.
        out += ',';
        AppendU64(out, "tasks_killed", r.resilience.tasks_killed);
        out += ',';
        AppendU64(out, "replicas_reaped", r.resilience.replicas_reaped);
        out += ',';
        AppendU64(out, "evacuations", r.resilience.evacuations);
        out += ',';
        AppendDouble(out, "work_lost_ms", r.resilience.work_lost_ms);
        out += ',';
        AppendDouble(out, "wasted_replica_ms", r.resilience.wasted_replica_ms);
        out += ',';
        AppendDouble(out, "mean_evac_latency_us", r.resilience.mean_evac_latency_us);
        out += ',';
        AppendU64(out, "requests_failed", r.resilience.requests_failed);
        out += ',';
        AppendU64(out, "requests_degraded", r.resilience.requests_degraded);
      }
      out += '}';
    }
    out += ']';
  }
  out += '}';
  return out;
}

// Compares one scalar field of the fresh job against the golden record;
// doubles compare as their %.17g renderings (exact round-trip).
struct JobComparer {
  const JsonValue& golden;
  const std::string id;  // "machine x row x variant"
  BaselineCheck& check;

  void Problem(const std::string& what) const { check.problems.push_back(id + ": " + what); }

  const JsonValue* Field(const JsonValue& obj, const char* key) const {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr) {
      Problem(std::string("golden record lacks \"") + key + "\"");
    }
    return v;
  }

  void ExpectString(const JsonValue& obj, const char* key, const std::string& fresh) const {
    const JsonValue* v = Field(obj, key);
    if (v != nullptr && (!v->is_string() || v->string != fresh)) {
      Problem(std::string(key) + " changed: golden \"" + (v->is_string() ? v->string : "?") +
              "\", fresh \"" + fresh + "\"");
    }
  }

  void ExpectU64(const JsonValue& obj, const char* key, uint64_t fresh) const {
    const JsonValue* v = Field(obj, key);
    if (v != nullptr && (!v->is_number() || FormatDouble(v->number) !=
                                               FormatDouble(static_cast<double>(fresh)))) {
      Problem(std::string(key) + " changed: golden " +
              (v->is_number() ? FormatDouble(v->number) : "?") + ", fresh " +
              std::to_string(fresh));
    }
  }

  void ExpectDouble(const JsonValue& obj, const char* key, double fresh) const {
    const JsonValue* v = Field(obj, key);
    if (v != nullptr && (!v->is_number() || FormatDouble(v->number) != FormatDouble(fresh))) {
      Problem(std::string(key) + " changed: golden " +
              (v->is_number() ? FormatDouble(v->number) : "?") + ", fresh " + FormatDouble(fresh));
    }
  }
};

}  // namespace

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SchedCountersDigest(const SchedCounters& counters) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(SchedCountersJson(counters))));
  return buf;
}

std::string BaselinePath(const std::string& dir, const std::string& scenario_name) {
  return dir + "/" + scenario_name + ".jsonl";
}

std::string BaselineJsonl(const ScenarioRun& run) {
  std::string out = "{";
  AppendString(out, "baseline", run.scenario.name);
  out += ',';
  AppendU64(out, "jobs", run.jobs.size());
  out += ',';
  AppendU64(out, "repetitions", static_cast<uint64_t>(run.repetitions));
  out += ',';
  AppendU64(out, "base_seed", run.base_seed);
  out += "}\n";
  for (size_t i = 0; i < run.jobs.size(); ++i) {
    out += BaselineJobRecord(run.jobs[i], run.outcomes[i]);
    out += '\n';
  }
  return out;
}

bool RecordBaseline(const ScenarioRun& run, const std::string& dir, std::string* error) {
  const std::string path = BaselinePath(dir, run.scenario.name);
  std::error_code ec;  // best effort; the open error below is authoritative
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot write baseline " + path;
    return false;
  }
  out << BaselineJsonl(run);
  out.close();
  if (!out) {
    *error = "short write to baseline " + path;
    return false;
  }
  return true;
}

BaselineCheck CheckBaseline(const ScenarioRun& run, const std::string& dir,
                            double wall_tolerance) {
  BaselineCheck check;
  check.scenario = run.scenario.name;
  check.baseline_path = BaselinePath(dir, run.scenario.name);
  check.jobs = static_cast<int>(run.jobs.size());

  std::ifstream in(check.baseline_path);
  if (!in) {
    check.problems.push_back("no golden baseline at " + check.baseline_path +
                             " (run --record-baseline first)");
    return check;
  }

  std::vector<JsonValue> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    JsonValue record;
    std::string json_error;
    if (!JsonParse(line, &record, &json_error)) {
      check.problems.push_back(check.baseline_path + ":" + std::to_string(line_no) +
                               ": invalid JSON: " + json_error);
      return check;
    }
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    check.problems.push_back(check.baseline_path + ": empty baseline file");
    return check;
  }

  const JsonValue& header = records.front();
  const JsonValue* golden_jobs = header.Find("jobs");
  if (golden_jobs == nullptr || !golden_jobs->is_number() ||
      static_cast<size_t>(golden_jobs->number) != run.jobs.size() ||
      records.size() - 1 != run.jobs.size()) {
    check.problems.push_back(
        "job-grid shape changed: golden has " +
        std::to_string(records.size() - 1) + " records (header says " +
        (golden_jobs != nullptr && golden_jobs->is_number()
             ? std::to_string(static_cast<long long>(golden_jobs->number))
             : "?") +
        "), fresh run has " + std::to_string(run.jobs.size()) + " jobs");
    return check;
  }
  const JsonValue* golden_seed = header.Find("base_seed");
  if (golden_seed == nullptr || !golden_seed->is_number() ||
      static_cast<uint64_t>(golden_seed->number) != run.base_seed) {
    check.problems.push_back("base_seed changed vs golden (golden " +
                             (golden_seed != nullptr && golden_seed->is_number()
                                  ? std::to_string(static_cast<long long>(golden_seed->number))
                                  : std::string("?")) +
                             ", fresh " + std::to_string(run.base_seed) + ")");
  }
  const JsonValue* golden_reps = header.Find("repetitions");
  if (golden_reps == nullptr || !golden_reps->is_number() ||
      static_cast<int>(golden_reps->number) != run.repetitions) {
    check.problems.push_back("repetitions changed vs golden (golden " +
                             (golden_reps != nullptr && golden_reps->is_number()
                                  ? std::to_string(static_cast<long long>(golden_reps->number))
                                  : std::string("?")) +
                             ", fresh " + std::to_string(run.repetitions) + ")");
  }
  if (!check.problems.empty()) {
    return check;
  }

  for (size_t i = 0; i < run.jobs.size(); ++i) {
    const Job& job = run.jobs[i];
    const JobOutcome& outcome = run.outcomes[i];
    const JsonValue& golden = records[i + 1];
    JobComparer cmp{golden,
                    job.config.machine + " x " + job.workload + " x " + job.variant, check};
    ++check.compared;

    cmp.ExpectString(golden, "machine", job.config.machine);
    cmp.ExpectString(golden, "row", job.workload);
    cmp.ExpectString(golden, "variant", job.variant);
    cmp.ExpectString(golden, "status", JobStatusName(outcome.status));

    if (wall_tolerance > 0.0) {
      const JsonValue* wall = golden.Find("wall_s");
      if (wall != nullptr && wall->is_number()) {
        const double band = wall_tolerance * std::max(wall->number, 1e-3);
        if (std::fabs(outcome.wall_seconds - wall->number) > band) {
          cmp.Problem("wall_s outside tolerance: golden " + FormatDouble(wall->number) +
                      ", fresh " + FormatDouble(outcome.wall_seconds) + " (band ±" +
                      FormatDouble(band) + ")");
        }
      }
    }

    if (!outcome.ok()) {
      continue;
    }
    const JsonValue* runs = golden.Find("runs");
    if (runs == nullptr || !runs->is_array() ||
        runs->items.size() != outcome.result.runs.size()) {
      cmp.Problem("runs array shape changed");
      continue;
    }
    for (size_t r = 0; r < outcome.result.runs.size(); ++r) {
      const ExperimentResult& fresh = outcome.result.runs[r];
      const JsonValue& grun = runs->items[r];
      cmp.ExpectU64(grun, "seed", job.base_seed + r);
      cmp.ExpectU64(grun, "makespan_ns", static_cast<uint64_t>(fresh.makespan));
      cmp.ExpectDouble(grun, "energy_j", fresh.energy_joules);
      cmp.ExpectDouble(grun, "underload_per_s", fresh.underload_per_s);
      cmp.ExpectU64(grun, "context_switches", fresh.context_switches);
      cmp.ExpectU64(grun, "migrations", fresh.migrations);
      cmp.ExpectU64(grun, "tasks_created", static_cast<uint64_t>(fresh.tasks_created));
      cmp.ExpectString(grun, "counters", SchedCountersDigest(fresh.counters));
      if (job.config.record_latency) {
        cmp.ExpectDouble(grun, "wakeup_p50_us", fresh.p50_wakeup_latency_us);
        cmp.ExpectDouble(grun, "wakeup_p99_us", fresh.p99_wakeup_latency_us);
      }
      if (fresh.cluster.num_machines > 0) {
        cmp.ExpectU64(grun, "requests_offered", fresh.cluster.requests_offered);
        cmp.ExpectU64(grun, "requests_completed", fresh.cluster.requests_completed);
        cmp.ExpectDouble(grun, "latency_p50_ms", fresh.cluster.p50_ms);
        cmp.ExpectDouble(grun, "latency_p99_ms", fresh.cluster.p99_ms);
        cmp.ExpectDouble(grun, "latency_p999_ms", fresh.cluster.p999_ms);
      }
      if (fresh.resilience.any()) {
        cmp.ExpectU64(grun, "tasks_killed", fresh.resilience.tasks_killed);
        cmp.ExpectU64(grun, "replicas_reaped", fresh.resilience.replicas_reaped);
        cmp.ExpectU64(grun, "evacuations", fresh.resilience.evacuations);
        cmp.ExpectDouble(grun, "work_lost_ms", fresh.resilience.work_lost_ms);
        cmp.ExpectDouble(grun, "wasted_replica_ms", fresh.resilience.wasted_replica_ms);
        cmp.ExpectDouble(grun, "mean_evac_latency_us", fresh.resilience.mean_evac_latency_us);
        cmp.ExpectU64(grun, "requests_failed", fresh.resilience.requests_failed);
        cmp.ExpectU64(grun, "requests_degraded", fresh.resilience.requests_degraded);
      }
    }
  }
  return check;
}

std::string BaselineVerdictJson(const std::vector<BaselineCheck>& checks) {
  bool all_ok = true;
  for (const BaselineCheck& c : checks) {
    all_ok = all_ok && c.ok();
  }
  std::string out = "{\"ok\":";
  out += all_ok ? "true" : "false";
  out += ",\"scenarios\":[";
  for (size_t i = 0; i < checks.size(); ++i) {
    const BaselineCheck& c = checks[i];
    if (i > 0) {
      out += ',';
    }
    out += '{';
    AppendString(out, "scenario", c.scenario);
    out += ',';
    AppendString(out, "baseline", c.baseline_path);
    out += ',';
    AppendU64(out, "jobs", static_cast<uint64_t>(c.jobs));
    out += ',';
    AppendU64(out, "compared", static_cast<uint64_t>(c.compared));
    out += ",\"ok\":";
    out += c.ok() ? "true" : "false";
    out += ",\"problems\":[";
    for (size_t p = 0; p < c.problems.size(); ++p) {
      if (p > 0) {
        out += ',';
      }
      out += '"';
      out += JsonEscape(c.problems[p]);
      out += '"';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace nestsim
