// Declarative experiment scenarios (docs/SCENARIOS.md).
//
// A scenario file is one JSON object describing a whole experiment grid —
// machine presets, scheduler/governor variants, a workload family with preset
// or custom rows, repetitions/seed/timeout, config overrides, and optional
// sweep axes. ParseScenario validates it strictly (unknown keys, bad enums,
// and out-of-range values are all reported with their JSON path) and the
// runner (src/scenario/runner.h) expands it into campaign jobs.

#ifndef NESTSIM_SRC_SCENARIO_SCENARIO_H_
#define NESTSIM_SRC_SCENARIO_SCENARIO_H_

#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/obs/json_check.h"

namespace nestsim {

// Collects every validation problem instead of stopping at the first, so one
// run of nestsim_run reports all spec mistakes at once.
struct ScenarioError {
  std::vector<std::string> errors;

  void Add(const std::string& path, const std::string& message);
  bool ok() const { return errors.empty(); }
  // All messages, newline-separated.
  std::string Join() const;
};

// "a, b, c" — for "(known: ...)" error suffixes.
std::string JoinNames(const std::vector<std::string>& names);

// Strict reader over one JSON object: typed getters mark keys as consumed and
// Finish() reports any key nobody asked for. Shared by the scenario parser
// and the workload registries (src/scenario/registry.cc).
class SpecReader {
 public:
  // `obj` must outlive the reader. `path` prefixes every error ("fig5.json:
  // /workload"). Non-object values report one error and read as empty.
  SpecReader(const JsonValue& obj, std::string path, ScenarioError& err);

  // Marks `key` consumed; nullptr when absent.
  const JsonValue* Take(const std::string& key);

  // Typed getters: on absence leave *out untouched and return false; on type
  // or range errors report and return false. `required` additionally reports
  // absence.
  bool TakeString(const std::string& key, std::string* out, bool required = false);
  bool TakeInt(const std::string& key, int* out, int min_value, int max_value);
  bool TakeU64(const std::string& key, uint64_t* out);
  bool TakeDouble(const std::string& key, double* out, double min_value, double max_value);
  bool TakeBool(const std::string& key, bool* out);
  // String constrained to `allowed` (error lists the alternatives).
  bool TakeEnum(const std::string& key, std::string* out, const std::vector<std::string>& allowed,
                bool required = false);

  // Unknown-key check: every member not previously Taken is an error listing
  // the keys this reader knows about.
  void Finish();

  const std::string& path() const { return path_; }
  void AddError(const std::string& message) { err_.Add(path_, message); }
  ScenarioError& err() { return err_; }

 private:
  const JsonValue& obj_;
  std::string path_;
  ScenarioError& err_;
  std::vector<std::string> taken_;
};

// A scheduler/governor column of the grid. `column` is the table header
// (paper tables abbreviate, e.g. "Smove sch"), `band_label` the Table-4-style
// summary label; both default to `label`.
struct ScenarioVariant {
  std::string label;
  std::string column;
  std::string band_label;
  SchedulerKind scheduler = SchedulerKind::kCfs;
  std::string governor = "schedutil";
};

// One workload row: a preset name (no params) or a custom parameterisation.
struct ScenarioRow {
  std::string label;
  bool has_params = false;
  JsonValue params;  // object; valid when has_params
};

// One sweep axis: a config-override key swept over explicit values. Axes
// combine as a cross product, innermost last.
struct SweepAxis {
  std::string key;
  std::vector<JsonValue> values;
};

// How (and whether) the run prints paper-style tables.
struct TableSpec {
  enum class Style {
    kNone,       // no table (JSONL / baseline only)
    kSpeedup,    // Fig. 5/10/12 layout: baseline seconds + speedup columns
    kUnderload,  // Fig. 4 layout: underload/s per variant
    kBands,      // Table 4 layout: counts of rows per speedup band
    kLatency,    // cluster serving layout: p50/p99/p99.9 request latency
    kEnergy,     // energy-budget layout: joules, seconds, EDP per variant
    kWakeup,     // wakeup-latency layout: p50/p99 per variant (record_latency)
  };

  Style style = Style::kSpeedup;
  std::string row_header = "row";  // first column header
  int row_width = 14;              // first column width
  std::string row_suffix;          // appended to row labels when printing
  bool underload_column = false;   // speedup style: baseline u/s column (Fig. 10)
};

struct Scenario {
  std::string name;  // [a-z0-9_-]+; baseline filename and campaign name
  std::string title;
  std::string description;

  std::vector<std::string> machines;       // resolved preset names
  std::vector<ScenarioVariant> variants;   // index 0 is the speedup baseline
  std::string family;                      // workload family key
  std::vector<ScenarioRow> rows;

  int repetitions = 2;      // NESTSIM_REPS / --reps override at run time
  uint64_t base_seed = 1;
  double timeout_s = 0.0;   // per-job wall-clock budget; 0 = unlimited

  bool has_config = false;
  JsonValue config;  // object of config-override keys, applied to every job

  // Optional cluster block (src/cluster/): run every job as a fleet of
  // identical machines behind a request router. Requires family "requests".
  bool has_cluster = false;
  int cluster_machines = 2;
  std::string cluster_router = "round-robin";

  std::vector<SweepAxis> sweep;
  TableSpec table;
};

// The "standard" comparison set of the paper's tables; include_smove adds the
// Figure-5 Smove column. Mirrors bench_util's StandardVariants plus the
// paper-table column headers.
std::vector<ScenarioVariant> StandardScenarioVariants(bool include_smove);

// Applies one dotted override key ("nest.r_max", "time_limit_s", ...) to the
// config. Unknown keys, bad types, and out-of-range values are reported via
// `err` under `path`. Returns err.ok() for this application.
bool ApplyConfigOverride(ExperimentConfig* config, const std::string& key, const JsonValue& value,
                         const std::string& path, ScenarioError* err);

// Every override key ApplyConfigOverride accepts (for error messages, --list
// and docs/SCENARIOS.md).
std::vector<std::string> ConfigOverrideKeys();

// Parses one scenario object. `file_label` prefixes error paths. Returns
// false (with err populated) on any validation problem.
bool ParseScenario(const JsonValue& root, const std::string& file_label, Scenario* out,
                   ScenarioError* err);

// Reads `path`, JSON-parses it, and runs ParseScenario.
bool LoadScenario(const std::string& path, Scenario* out, ScenarioError* err);

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_SCENARIO_H_
