// Canonical table printers for paper-style reports.
//
// Shared by the figure/table benches (bench/bench_util.h) and the scenario
// runner (src/scenario/runner.h) so both print byte-identical headers,
// machine banners, and speedup cells.

#ifndef NESTSIM_SRC_SCENARIO_REPORT_H_
#define NESTSIM_SRC_SCENARIO_REPORT_H_

#include <cstdio>
#include <string>

#include "src/hw/machine_spec.h"

namespace nestsim {

inline void PrintHeader(const std::string& what, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", what.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintMachineBanner(const MachineSpec& spec) {
  std::printf("\n--- %s (%s, %dx%dx%d) ---\n", spec.name.c_str(), spec.cpu_model.c_str(),
              spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
}

// "+12.3%" with a marker when outside the paper's ±5% noise band.
inline std::string FormatSpeedup(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+6.1f%%%s", pct, pct > 5.0 ? " *" : (pct < -5.0 ? " !" : "  "));
  return buf;
}

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_REPORT_H_
