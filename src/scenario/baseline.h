// Golden-baseline regression gate for scenarios.
//
// RecordBaseline writes one JSONL file per scenario under a baselines
// directory: a header line plus one record per job in expansion order, each
// carrying the deterministic per-run fields (makespan_ns, energy, underload,
// counter digests). CheckBaseline re-runs the scenario and compares:
// deterministic fields must match exactly (simulations are bit-reproducible
// from the seed), wall-clock only within an optional tolerance band. The
// verdict serialises to BENCH_scenarios.json for CI.

#ifndef NESTSIM_SRC_SCENARIO_BASELINE_H_
#define NESTSIM_SRC_SCENARIO_BASELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/sched_counters.h"
#include "src/scenario/runner.h"

namespace nestsim {

// FNV-1a 64-bit over `text`; the digest that compresses a SchedCounters JSON
// record into one comparable token.
uint64_t Fnv1a64(const std::string& text);

// 16-hex-digit digest of SchedCountersJson(counters).
std::string SchedCountersDigest(const SchedCounters& counters);

// "<dir>/<scenario-name>.jsonl".
std::string BaselinePath(const std::string& dir, const std::string& scenario_name);

// Serialises one executed run as baseline JSONL (header + one line per job).
std::string BaselineJsonl(const ScenarioRun& run);

// Writes BaselineJsonl(run) to BaselinePath(dir, ...), replacing any previous
// golden. Returns false with `error` set when the file cannot be written
// (missing directory, permissions).
bool RecordBaseline(const ScenarioRun& run, const std::string& dir, std::string* error);

// One scenario's comparison outcome.
struct BaselineCheck {
  std::string scenario;
  std::string baseline_path;
  int jobs = 0;        // jobs in the fresh run
  int compared = 0;    // jobs matched against a golden record
  std::vector<std::string> problems;  // empty = pass

  bool ok() const { return problems.empty(); }
};

// Compares `run` (already executed) against the recorded golden.
// `wall_tolerance` is a relative band for wall_seconds (0.25 = ±25%); 0
// disables the wall-clock check (the default — wall time is machine load, not
// simulation behaviour). All structural and value mismatches are reported.
BaselineCheck CheckBaseline(const ScenarioRun& run, const std::string& dir,
                            double wall_tolerance = 0.0);

// {"ok":...,"scenarios":[...]} — the BENCH_scenarios.json payload for a batch
// of checks.
std::string BaselineVerdictJson(const std::vector<BaselineCheck>& checks);

}  // namespace nestsim

#endif  // NESTSIM_SRC_SCENARIO_BASELINE_H_
