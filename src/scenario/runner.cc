#include "src/scenario/runner.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "src/cluster/cluster.h"
#include "src/hw/machine_spec.h"
#include "src/metrics/stats.h"
#include "src/scenario/registry.h"
#include "src/scenario/report.h"

namespace nestsim {

namespace {

// "3", "0.25", "true", "fast" — sweep-label rendering of a scalar.
std::string ScalarLabel(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kBool:
      return v.boolean ? "true" : "false";
    case JsonValue::Type::kString:
      return v.string;
    case JsonValue::Type::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", v.number);
      return buf;
    }
    default:
      return JsonTypeName(v.type);
  }
}

// One sweep point: the value index chosen on each axis.
using SweepPoint = std::vector<size_t>;

// Cross product of the axes, last axis innermost. A sweepless scenario gets
// one empty point.
std::vector<SweepPoint> SweepPoints(const std::vector<SweepAxis>& axes) {
  std::vector<SweepPoint> points = {SweepPoint(axes.size(), 0)};
  for (size_t a = 0; a < axes.size(); ++a) {
    std::vector<SweepPoint> next;
    next.reserve(points.size() * axes[a].values.size());
    for (const SweepPoint& p : points) {
      for (size_t i = 0; i < axes[a].values.size(); ++i) {
        SweepPoint q = p;
        q[a] = i;
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

std::string SweepLabel(const std::vector<SweepAxis>& axes, const SweepPoint& point) {
  std::string label;
  for (size_t a = 0; a < axes.size(); ++a) {
    if (!label.empty()) {
      label += ',';
    }
    label += axes[a].key + "=" + ScalarLabel(axes[a].values[point[a]]);
  }
  return label;
}

bool FileExists(const std::string& path) { return std::ifstream(path).good(); }

}  // namespace

size_t ScenarioRun::Index(size_t machine, size_t row, size_t variant, size_t sweep) const {
  return ((machine * num_rows() + row) * num_variants() + variant) * num_sweeps() + sweep;
}

const Job& ScenarioRun::job(size_t machine, size_t row, size_t variant, size_t sweep) const {
  return jobs.at(Index(machine, row, variant, sweep));
}

const JobOutcome& ScenarioRun::outcome(size_t machine, size_t row, size_t variant,
                                       size_t sweep) const {
  return outcomes.at(Index(machine, row, variant, sweep));
}

const RepeatedResult& ScenarioRun::result(size_t machine, size_t row, size_t variant,
                                          size_t sweep) const {
  const JobOutcome& out = outcome(machine, row, variant, sweep);
  if (!out.ok()) {
    throw std::runtime_error(
        "scenario " + scenario.name + ": job " + scenario.machines[machine] + " x " +
        scenario.rows[row].label + " x " + scenario.variants[variant].label +
        (sweep_labels[sweep].empty() ? "" : " [" + sweep_labels[sweep] + "]") + " " +
        JobStatusName(out.status) + (out.message.empty() ? "" : ": " + out.message));
  }
  return out.result;
}

bool ExpandScenario(const Scenario& scenario, const ScenarioRunOptions& options, ScenarioRun* run,
                    ScenarioError* err) {
  *run = ScenarioRun{};
  run->scenario = scenario;
  run->campaign_options = options.campaign;
  run->repetitions = options.repetitions_override > 0
                         ? options.repetitions_override
                         : RepetitionsFromEnv(scenario.repetitions);
  run->base_seed = options.has_base_seed ? options.base_seed : scenario.base_seed;
  run->timeout_s = options.timeout_override_s >= 0 ? options.timeout_override_s : scenario.timeout_s;

  const WorkloadFamily* family = FindWorkloadFamily(scenario.family);
  if (family == nullptr) {
    err->Add(scenario.name, "unknown workload family \"" + scenario.family + "\"");
    return false;
  }

  const std::vector<SweepPoint> points = SweepPoints(scenario.sweep);
  run->sweep_labels.reserve(points.size());
  for (const SweepPoint& p : points) {
    run->sweep_labels.push_back(SweepLabel(scenario.sweep, p));
  }

  for (const std::string& machine : scenario.machines) {
    for (const ScenarioRow& row : scenario.rows) {
      // One workload model per (machine, row); variant and sweep jobs share
      // it, exactly as GridCampaign's RowFactory contract.
      std::shared_ptr<const Workload> model(
          family->build(row.label, row.has_params ? &row.params : nullptr,
                        scenario.name + "/" + row.label, *err));
      if (model == nullptr) {
        return false;
      }
      for (const ScenarioVariant& variant : scenario.variants) {
        for (size_t s = 0; s < points.size(); ++s) {
          Job job;
          job.workload = row.label;
          job.variant = run->sweep_labels[s].empty()
                            ? variant.label
                            : variant.label + " [" + run->sweep_labels[s] + "]";
          job.config.machine = machine;
          job.config.scheduler = variant.scheduler;
          job.config.governor = variant.governor;
          if (scenario.has_config) {
            for (const auto& [key, value] : scenario.config.members) {
              ApplyConfigOverride(&job.config, key, value, scenario.name + "/config", err);
            }
          }
          for (size_t a = 0; a < scenario.sweep.size(); ++a) {
            ApplyConfigOverride(&job.config, scenario.sweep[a].key,
                                scenario.sweep[a].values[points[s][a]],
                                scenario.name + "/sweep", err);
          }
          if (options.parallel_workers >= 0) {
            job.config.parallel.workers = options.parallel_workers;
          }
          job.model = model;
          job.repetitions = run->repetitions;
          job.base_seed = run->base_seed;
          job.timeout_s = run->timeout_s;
          if (scenario.has_cluster) {
            ClusterSpec cluster;
            cluster.machines = scenario.cluster_machines;
            cluster.router = scenario.cluster_router;
            job.runner = [cluster](const ExperimentConfig& config, const Workload& workload) {
              return RunClusterExperiment(cluster, config, workload);
            };
          }
          run->jobs.push_back(std::move(job));
        }
      }
    }
  }
  return err->ok();
}

void ExecuteScenario(ScenarioRun* run) {
  Campaign campaign(run->scenario.name, run->campaign_options);
  for (Job& job : run->jobs) {
    campaign.Add(job);
  }
  run->outcomes = campaign.Run();
}

namespace {

// Table 4's speedup-band histogram.
struct Bands {
  int much_slower = 0;  // < -20%
  int slower = 0;       // [-20%, -5%)
  int same = 0;         // [-5%, 5%]
  int faster = 0;       // (5%, 20%]
  int much_faster = 0;  // > 20%
  int total = 0;

  void Add(double pct) {
    ++total;
    if (pct < -20.0) {
      ++much_slower;
    } else if (pct < -5.0) {
      ++slower;
    } else if (pct <= 5.0) {
      ++same;
    } else if (pct <= 20.0) {
      ++faster;
    } else {
      ++much_faster;
    }
  }

  void Print(const char* label) const {
    auto pct = [this](int n) { return total > 0 ? 100 * n / total : 0; };
    std::printf("  %-12s %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%) %4d (%2d%%)\n", label,
                much_slower, pct(much_slower), slower, pct(slower), same, pct(same), faster,
                pct(faster), much_faster, pct(much_faster));
  }
};

void PrintSpeedupTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  const TableSpec& table = sc.table;
  const std::string row_fmt = "%-" + std::to_string(table.row_width) + "s";
  std::printf(row_fmt.c_str(), table.row_header.c_str());
  std::printf(" %16s", sc.variants[0].column.c_str());
  if (table.underload_column) {
    std::printf(" %7s", "u/s");
  }
  for (size_t v = 1; v < sc.variants.size(); ++v) {
    std::printf(" %10s", sc.variants[v].column.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < run.num_rows(); ++r) {
    const RepeatedResult& base = run.result(m, r, 0, s);
    std::printf(row_fmt.c_str(), (sc.rows[r].label + table.row_suffix).c_str());
    std::printf(" %9.2fs %4.1f%%", base.mean_seconds, base.stddev_pct());
    if (table.underload_column) {
      std::printf(" %7.1f", base.mean_underload_per_s);
    }
    for (size_t v = 1; v < sc.variants.size(); ++v) {
      const RepeatedResult& rr = run.result(m, r, v, s);
      std::printf(" %10s",
                  FormatSpeedup(SpeedupPercent(base.mean_seconds, rr.mean_seconds)).c_str());
    }
    std::printf("\n");
  }
}

void PrintUnderloadTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  const std::string row_fmt = "%-" + std::to_string(sc.table.row_width) + "s";
  std::printf(row_fmt.c_str(), sc.table.row_header.c_str());
  for (const ScenarioVariant& variant : sc.variants) {
    std::printf(" %12s", variant.label.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < run.num_rows(); ++r) {
    std::printf(row_fmt.c_str(), (sc.rows[r].label + sc.table.row_suffix).c_str());
    for (size_t v = 0; v < sc.variants.size(); ++v) {
      std::printf(" %12.1f", run.result(m, r, v, s).runs[0].underload_per_s);
    }
    std::printf("\n");
  }
}

// Cluster serving layout: one line per row x variant with the request-latency
// tail, completion ratio, and mean fleet utilisation, averaged across reps.
void PrintLatencyTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  const std::string row_fmt = "%-" + std::to_string(sc.table.row_width) + "s";
  std::printf(row_fmt.c_str(), sc.table.row_header.c_str());
  std::printf(" %-14s %9s %9s %9s %9s %7s %6s\n", "variant", "p50 ms", "p99 ms", "p99.9 ms",
              "mean ms", "compl", "util");
  for (size_t r = 0; r < run.num_rows(); ++r) {
    for (size_t v = 0; v < sc.variants.size(); ++v) {
      const RepeatedResult& rr = run.result(m, r, v, s);
      double p50 = 0, p99 = 0, p999 = 0, mean = 0, util = 0;
      uint64_t offered = 0, completed = 0;
      for (const ExperimentResult& er : rr.runs) {
        p50 += er.cluster.p50_ms;
        p99 += er.cluster.p99_ms;
        p999 += er.cluster.p999_ms;
        mean += er.cluster.mean_ms;
        offered += er.cluster.requests_offered;
        completed += er.cluster.requests_completed;
        double machine_util = 0;
        for (const ClusterMachineStats& machine : er.cluster.machines) {
          machine_util += machine.utilisation;
        }
        util += er.cluster.machines.empty() ? 0.0
                                            : machine_util / static_cast<double>(
                                                                 er.cluster.machines.size());
      }
      const double n = rr.runs.empty() ? 1.0 : static_cast<double>(rr.runs.size());
      std::printf(row_fmt.c_str(), (sc.rows[r].label + sc.table.row_suffix).c_str());
      std::printf(" %-14s %9.3f %9.3f %9.3f %9.3f %6.1f%% %5.1f%%\n",
                  sc.variants[v].label.c_str(), p50 / n, p99 / n, p999 / n, mean / n,
                  offered > 0 ? 100.0 * static_cast<double>(completed) /
                                    static_cast<double>(offered)
                              : 0.0,
                  100.0 * util / n);
    }
  }
}

// Energy-budget layout (docs/FAULTS.md): one line per row x variant with the
// mean package energy, runtime, energy-delay product, and the fraction of
// scheduler ticks spent over the power target, averaged across reps.
void PrintEnergyTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  const std::string row_fmt = "%-" + std::to_string(sc.table.row_width) + "s";
  std::printf(row_fmt.c_str(), sc.table.row_header.c_str());
  std::printf(" %-14s %10s %9s %12s %9s\n", "variant", "energy J", "time s", "EDP J*s",
              "thr ticks");
  for (size_t r = 0; r < run.num_rows(); ++r) {
    for (size_t v = 0; v < sc.variants.size(); ++v) {
      const RepeatedResult& rr = run.result(m, r, v, s);
      double joules = 0, secs = 0, edp = 0;
      uint64_t throttle_ticks = 0;
      for (const ExperimentResult& er : rr.runs) {
        joules += er.energy_joules;
        secs += er.seconds();
        edp += er.edp();
        throttle_ticks += er.counters.budget_throttle_ticks;
      }
      const double n = rr.runs.empty() ? 1.0 : static_cast<double>(rr.runs.size());
      std::printf(row_fmt.c_str(), (sc.rows[r].label + sc.table.row_suffix).c_str());
      std::printf(" %-14s %10.1f %9.3f %12.1f %9.0f\n", sc.variants[v].label.c_str(), joules / n,
                  secs / n, edp / n, static_cast<double>(throttle_ticks) / n);
    }
  }
}

// Wakeup-latency layout (docs/PREDICTION.md): one line per row x variant with
// the p50/p99 wakeup latency and makespan, averaged across reps. Needs
// config.record_latency; without it every percentile prints as 0.
void PrintWakeupTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  const std::string row_fmt = "%-" + std::to_string(sc.table.row_width) + "s";
  std::printf(row_fmt.c_str(), sc.table.row_header.c_str());
  std::printf(" %-16s %10s %10s %9s\n", "variant", "p50 us", "p99 us", "time s");
  for (size_t r = 0; r < run.num_rows(); ++r) {
    for (size_t v = 0; v < sc.variants.size(); ++v) {
      const RepeatedResult& rr = run.result(m, r, v, s);
      double p50 = 0, p99 = 0;
      for (const ExperimentResult& er : rr.runs) {
        p50 += er.p50_wakeup_latency_us;
        p99 += er.p99_wakeup_latency_us;
      }
      const double n = rr.runs.empty() ? 1.0 : static_cast<double>(rr.runs.size());
      std::printf(row_fmt.c_str(), (sc.rows[r].label + sc.table.row_suffix).c_str());
      std::printf(" %-16s %10.2f %10.2f %9.3f\n", sc.variants[v].label.c_str(), p50 / n, p99 / n,
                  rr.mean_seconds);
    }
  }
}

void PrintBandsTable(const ScenarioRun& run, size_t m, size_t s) {
  const Scenario& sc = run.scenario;
  for (size_t v = 1; v < sc.variants.size(); ++v) {
    Bands bands;
    for (size_t r = 0; r < run.num_rows(); ++r) {
      const double base_s = run.result(m, r, 0, s).runs[0].seconds();
      bands.Add(SpeedupPercent(base_s, run.result(m, r, v, s).runs[0].seconds()));
    }
    bands.Print(sc.variants[v].band_label.c_str());
  }
}

}  // namespace

void PrintScenarioHeader(const Scenario& scenario) {
  if (!scenario.title.empty()) {
    PrintHeader(scenario.title, scenario.description);
  }
}

void PrintScenarioTables(const ScenarioRun& run) {
  const Scenario& sc = run.scenario;
  if (sc.table.style == TableSpec::Style::kNone) {
    return;
  }
  for (size_t s = 0; s < run.num_sweeps(); ++s) {
    if (run.num_sweeps() > 1) {
      std::printf("\n=== sweep: %s ===\n", run.sweep_labels[s].c_str());
    }
    for (size_t m = 0; m < run.num_machines(); ++m) {
      PrintMachineBanner(MachineByName(sc.machines[m]));
      switch (sc.table.style) {
        case TableSpec::Style::kSpeedup:
          PrintSpeedupTable(run, m, s);
          break;
        case TableSpec::Style::kUnderload:
          PrintUnderloadTable(run, m, s);
          break;
        case TableSpec::Style::kBands:
          PrintBandsTable(run, m, s);
          break;
        case TableSpec::Style::kLatency:
          PrintLatencyTable(run, m, s);
          break;
        case TableSpec::Style::kEnergy:
          PrintEnergyTable(run, m, s);
          break;
        case TableSpec::Style::kWakeup:
          PrintWakeupTable(run, m, s);
          break;
        case TableSpec::Style::kNone:
          break;
      }
    }
  }
}

std::string ResolveScenarioPath(const std::string& name) {
  if (FileExists(name)) {
    return name;
  }
  std::vector<std::string> candidates;
  if (const char* dir = std::getenv("NESTSIM_SCENARIO_DIR")) {
    candidates.push_back(std::string(dir) + "/" + name);
  }
  candidates.push_back("scenarios/" + name);
  candidates.push_back("../scenarios/" + name);
  candidates.push_back("../../scenarios/" + name);
  for (const std::string& candidate : candidates) {
    if (FileExists(candidate)) {
      return candidate;
    }
  }
  return name;
}

int RunScenarioFileMain(const std::string& name, const ScenarioRunOptions& options) {
  const std::string path = ResolveScenarioPath(name);
  Scenario scenario;
  ScenarioError err;
  if (!LoadScenario(path, &scenario, &err)) {
    std::fprintf(stderr, "%s\n", err.Join().c_str());
    return 2;
  }
  ScenarioRun run;
  if (!ExpandScenario(scenario, options, &run, &err)) {
    std::fprintf(stderr, "%s\n", err.Join().c_str());
    return 2;
  }
  PrintScenarioHeader(scenario);
  ExecuteScenario(&run);
  try {
    PrintScenarioTables(run);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  for (const JobOutcome& outcome : run.outcomes) {
    if (!outcome.ok()) {
      return 1;
    }
  }
  return 0;
}

}  // namespace nestsim
