// Scheduler micro/stress benchmarks (paper §5.6): hackbench and schbench.

#ifndef NESTSIM_SRC_WORKLOADS_MICRO_H_
#define NESTSIM_SRC_WORKLOADS_MICRO_H_

#include <string>

#include "src/core/workload.h"

namespace nestsim {

// hackbench -g <groups> -l <loops>: each group has `fan` senders and `fan`
// receivers sharing a channel; senders blast `loops` messages each. Execution
// is dominated by wakeups — the paper's pathological case for Nest.
struct HackbenchSpec {
  int groups = 10;
  int fan = 10;    // senders (= receivers) per group
  int loops = 100; // messages per sender
};

class HackbenchWorkload : public Workload {
 public:
  explicit HackbenchWorkload(HackbenchSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override { return "hackbench"; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const HackbenchSpec& spec() const { return spec_; }

 private:
  HackbenchSpec spec_;
};

// schbench: message threads dispatch work to workers and wait for replies;
// the metric is tail wakeup latency (record_latency in the experiment
// config).
struct SchbenchSpec {
  int message_threads = 4;
  int workers_per_thread = 8;
  int rounds = 150;
  double work_ms = 1.0;
};

class SchbenchWorkload : public Workload {
 public:
  explicit SchbenchWorkload(SchbenchSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override { return "schbench"; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const SchbenchSpec& spec() const { return spec_; }

 private:
  SchbenchSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_MICRO_H_
