#include "src/workloads/micro.h"

namespace nestsim {

void HackbenchWorkload::Setup(Kernel& kernel, Rng& rng) const {
  (void)rng;
  ProgramBuilder root("hackbench-main");
  root.ComputeMs(0.2);
  for (int g = 0; g < spec_.groups; ++g) {
    const int data = 2000 + g;
    const int credit = 2600 + g;
    // Socket buffers are tiny: a sender needs a credit before each send, and
    // receivers return credits — the constant block/wake ping-pong that makes
    // hackbench ~96% system time.
    for (int c = 0; c < spec_.fan; ++c) {
      root.Send(credit);
    }
    for (int s = 0; s < spec_.fan; ++s) {
      ProgramBuilder sender("hb-sender");
      sender.Loop(spec_.loops).Recv(credit).Compute(2e3).Send(data).EndLoop();
      root.Fork(sender.Build());
    }
    for (int r = 0; r < spec_.fan; ++r) {
      ProgramBuilder receiver("hb-receiver");
      receiver.Loop(spec_.loops).Recv(data).Compute(2e3).Send(credit).EndLoop();
      root.Fork(receiver.Build());
    }
  }
  root.JoinChildren();
  kernel.SpawnInitial(root.Build(), "hackbench", tag(), /*cpu=*/0);
}

void SchbenchWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  ProgramBuilder root("schbench-main");
  root.ComputeMs(0.2);
  for (int m = 0; m < spec_.message_threads; ++m) {
    const int dispatch = 3000 + m;
    const int ack = 3500 + m;
    for (int w = 0; w < spec_.workers_per_thread; ++w) {
      ProgramBuilder worker("schbench-worker");
      worker.Loop(spec_.rounds)
          .Recv(dispatch)
          .ComputeMs(wl_rng.NextLogNormal(spec_.work_ms, 0.3))
          .Send(ack)
          .EndLoop();
      root.Fork(worker.Build());
    }
    ProgramBuilder messenger("schbench-msg");
    messenger.Loop(spec_.rounds);
    for (int w = 0; w < spec_.workers_per_thread; ++w) {
      messenger.Send(dispatch);
    }
    for (int w = 0; w < spec_.workers_per_thread; ++w) {
      messenger.Recv(ack);
    }
    messenger.EndLoop();
    root.Fork(messenger.Build());
  }
  root.JoinChildren();
  kernel.SpawnInitial(root.Build(), "schbench", tag(), /*cpu=*/0);
}

}  // namespace nestsim
