#include "src/workloads/requests.h"

#include <cmath>

namespace nestsim {

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

bool ArrivalKindFromName(const std::string& name, ArrivalKind* out) {
  if (name == "poisson") {
    *out = ArrivalKind::kPoisson;
    return true;
  }
  if (name == "bursty") {
    *out = ArrivalKind::kBursty;
    return true;
  }
  return false;
}

RequestPlan RequestWorkload::BuildPlan(Rng& rng) const {
  RequestPlan plan;
  // Arrivals by thinning: draw candidates from a homogeneous Poisson process
  // at the *peak* rate, then accept each with the ratio of the instantaneous
  // rate to the peak. The candidate stream (and thus every draw) depends only
  // on the spec and the seed, never on simulation state.
  const double peak_rate =
      spec_.arrivals == ArrivalKind::kBursty ? spec_.rate_per_s * spec_.burst_factor
                                             : spec_.rate_per_s;
  if (peak_rate <= 0.0 || spec_.duration_s <= 0.0) {
    return plan;
  }
  const double mean_gap_s = 1.0 / peak_rate;
  constexpr double kPi = 3.14159265358979323846;

  double t = 0.0;  // seconds
  while (true) {
    t += rng.NextExponential(mean_gap_s);
    if (t >= spec_.duration_s) {
      break;
    }
    double accept = 1.0;
    if (spec_.arrivals == ArrivalKind::kBursty) {
      const double phase = std::fmod(t, spec_.burst_every_s);
      if (phase >= spec_.burst_len_s) {
        accept /= spec_.burst_factor;  // outside the burst: baseline rate
      }
    }
    if (spec_.diurnal_depth > 0.0) {
      accept *= 1.0 - spec_.diurnal_depth * 0.5 *
                          (1.0 + std::cos(2.0 * kPi * t / spec_.diurnal_period_s));
    }
    if (!rng.NextBool(accept)) {
      continue;
    }

    const SimTime arrival = SecondsF(t);
    const uint64_t req = plan.requests++;
    const std::string base = spec_.name + "-req" + std::to_string(req);

    ProgramBuilder parent(base);
    parent.ComputeMs(rng.NextLogNormal(spec_.service_ms, spec_.service_sigma));
    if (spec_.io_pause_ms > 0.0) {
      parent.Sleep(MillisecondsF(rng.NextExponential(spec_.io_pause_ms)))
          .ComputeMs(rng.NextLogNormal(spec_.service_ms * 0.3, spec_.service_sigma));
    }
    plan.parts.push_back({arrival, req, 0, parent.Build(), base});

    for (int f = 0; f < spec_.fanout; ++f) {
      ProgramBuilder sub(base + ".s" + std::to_string(f + 1));
      sub.ComputeMs(rng.NextLogNormal(spec_.fanout_service_ms, spec_.service_sigma));
      plan.parts.push_back({arrival, req, f + 1, sub.Build(), base + ".s" + std::to_string(f + 1)});
    }
  }
  return plan;
}

void RequestWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  const RequestPlan plan = BuildPlan(wl_rng);
  for (const RequestPart& part : plan.parts) {
    kernel.ScheduleInjection(part.arrival, part.program, part.name, tag());
  }
}

}  // namespace nestsim
