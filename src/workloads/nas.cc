#include "src/workloads/nas.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

NasSpec Kern(const std::string& name, double iter_ms, int iterations, double jitter) {
  NasSpec s;
  s.kernel_name = name;
  s.iter_compute_ms = iter_ms;
  s.iterations = iterations;
  s.jitter = jitter;
  return s;
}

}  // namespace

NasSpec NasWorkload::KernelSpec(const std::string& kernel_name) {
  // Iteration counts/sizes chosen so CFS-schedutil makespans land near 1/10
  // of the paper's Figure 12 numbers (2-socket 6130) and the barrier density
  // matches each kernel's character (EP coarse, IS/MG fine, LU medium).
  if (kernel_name == "bt") {
    return Kern("bt", 5.2, 600, 0.02);
  }
  if (kernel_name == "cg") {
    return Kern("cg", 1.1, 750, 0.03);
  }
  if (kernel_name == "ep") {
    return Kern("ep", 29.0, 10, 0.01);
  }
  if (kernel_name == "ft") {
    return Kern("ft", 9.5, 80, 0.02);
  }
  if (kernel_name == "is") {
    return Kern("is", 0.65, 110, 0.04);
  }
  if (kernel_name == "lu") {
    return Kern("lu", 1.2, 1800, 0.03);
  }
  if (kernel_name == "mg") {
    return Kern("mg", 0.55, 520, 0.04);
  }
  if (kernel_name == "sp") {
    return Kern("sp", 2.3, 1030, 0.03);
  }
  if (kernel_name == "ua") {
    return Kern("ua", 1.6, 1520, 0.03);
  }
  std::fprintf(stderr, "nestsim: unknown NAS kernel '%s'\n", kernel_name.c_str());
  std::abort();
}

std::vector<std::string> NasWorkload::KernelNames() {
  return {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"};
}

void NasWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  const int threads = spec_.threads > 0 ? spec_.threads : kernel.topology().num_cpus();
  const int barrier_id = 1;
  kernel.CreateBarrier(barrier_id, threads);

  ProgramBuilder master(spec_.kernel_name + "-master");
  master.ComputeMs(spec_.serial_setup_ms);
  for (int t = 0; t < threads; ++t) {
    // Per-worker imbalance is fixed across iterations (domain decomposition),
    // plus the master participates as worker 0 in real OpenMP; we keep a
    // dedicated master for simplicity.
    const double worker_ms =
        spec_.iter_compute_ms * (1.0 + wl_rng.NextNormal(0.0, spec_.jitter));
    ProgramBuilder worker(spec_.kernel_name + "-worker");
    worker.Loop(spec_.iterations)
        .ComputeMs(worker_ms)
        .Barrier(barrier_id)
        .EndLoop();
    master.Fork(worker.Build());
  }
  master.JoinChildren();
  kernel.SpawnInitial(master.Build(), spec_.kernel_name, tag(), /*cpu=*/0);
}

}  // namespace nestsim
