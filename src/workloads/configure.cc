#include "src/workloads/configure.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

ConfigureSpec Pkg(const std::string& name, int tests, double child_ms, double overhead_ms,
                  double pipeline, double concurrent) {
  ConfigureSpec s;
  s.package = name;
  s.num_tests = tests;
  s.child_work_ms = child_ms;
  s.parent_overhead_ms = overhead_ms;
  s.pipeline_prob = pipeline;
  s.concurrent_prob = concurrent;
  return s;
}

}  // namespace

ConfigureSpec ConfigureWorkload::PackageSpec(const std::string& package) {
  // Test counts and sizes chosen so CFS-schedutil makespans land near 1/10 of
  // the paper's Figure 5 numbers (Intel 5218 column).
  if (package == "erlang") {
    return Pkg("erlang", 420, 2.0, 0.4, 0.12, 0.06);
  }
  if (package == "ffmpeg") {
    return Pkg("ffmpeg", 190, 1.8, 0.35, 0.12, 0.06);
  }
  if (package == "gcc") {
    return Pkg("gcc", 48, 1.8, 0.3, 0.1, 0.05);
  }
  if (package == "gdb") {
    return Pkg("gdb", 44, 1.8, 0.3, 0.1, 0.05);
  }
  if (package == "imagemagick") {
    return Pkg("imagemagick", 470, 2.1, 0.4, 0.12, 0.06);
  }
  if (package == "linux") {
    return Pkg("linux", 95, 1.7, 0.3, 0.1, 0.05);
  }
  if (package == "llvm_ninja") {
    return Pkg("llvm_ninja", 340, 2.0, 0.35, 0.12, 0.06);
  }
  if (package == "llvm_unix") {
    return Pkg("llvm_unix", 410, 2.0, 0.35, 0.12, 0.06);
  }
  if (package == "mplayer") {
    return Pkg("mplayer", 330, 1.9, 0.35, 0.12, 0.06);
  }
  if (package == "nodejs") {
    // The nodejs configure stage is "trivial" (paper §5.2): a handful of
    // long python steps, so core placement barely matters.
    ConfigureSpec s = Pkg("nodejs", 10, 11.0, 0.8, 0.0, 0.0);
    s.child_sigma = 0.3;
    s.long_test_prob = 0.0;
    return s;
  }
  if (package == "php") {
    return Pkg("php", 430, 2.0, 0.35, 0.12, 0.06);
  }
  std::fprintf(stderr, "nestsim: unknown configure package '%s'\n", package.c_str());
  std::abort();
}

std::vector<std::string> ConfigureWorkload::PackageNames() {
  return {"erlang", "ffmpeg",     "gcc",       "gdb",    "imagemagick", "linux",
          "llvm_ninja", "llvm_unix", "mplayer", "nodejs", "php"};
}

void ConfigureWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  ProgramBuilder script("configure-" + spec_.package);

  for (int test = 0; test < spec_.num_tests; ++test) {
    // Shell interpretation between probes.
    script.ComputeMs(wl_rng.NextLogNormal(spec_.parent_overhead_ms, 0.5));

    double work_ms = wl_rng.NextLogNormal(spec_.child_work_ms, spec_.child_sigma);
    if (wl_rng.NextBool(spec_.long_test_prob)) {
      work_ms *= 5.0;  // a real compile test among the probes
    }

    ProgramPtr child;
    if (wl_rng.NextBool(spec_.pipeline_prob)) {
      // Probe runs a short pipeline: cc -E | grep style.
      ProgramBuilder grandchild("probe-stage2");
      grandchild.ComputeMs(work_ms * 0.4);
      ProgramBuilder probe("probe-pipeline");
      probe.ComputeMs(work_ms * 0.6).Fork(grandchild.Build()).JoinChildren();
      child = probe.Build();
    } else {
      ProgramBuilder probe("probe");
      probe.ComputeMs(work_ms);
      child = probe.Build();
    }

    script.Fork(child);
    if (wl_rng.NextBool(spec_.concurrent_prob)) {
      ProgramBuilder extra("probe-extra");
      extra.ComputeMs(wl_rng.NextLogNormal(spec_.child_work_ms, spec_.child_sigma));
      script.Fork(extra.Build());
    }
    script.ComputeMs(wl_rng.NextLogNormal(spec_.post_fork_overhead_ms, 0.6));
    script.JoinChildren();
  }

  kernel.SpawnInitial(script.Build(), "configure-" + spec_.package, tag(), /*cpu=*/0);
}

}  // namespace nestsim
