// Software-configuration workloads (paper §5.2, Figures 2-7).
//
// Configure scripts fork hundreds of short, mostly sequential probe tasks:
// the shell interprets a little script text, forks a compile/probe child,
// waits for it, and moves on. Occasionally a probe runs a short pipeline
// (child forks a grandchild) or the script launches a second concurrent
// probe. This structure — frequent forks of short-lived, mostly-alone
// tasks — is the paper's best case for Nest.
//
// The eleven package presets mirror the Phoronix Timed Code Compilation
// configure stages in Figures 4-7, scaled to ~1/10 of the paper's absolute
// running times to keep simulations fast (documented in EXPERIMENTS.md).

#ifndef NESTSIM_SRC_WORKLOADS_CONFIGURE_H_
#define NESTSIM_SRC_WORKLOADS_CONFIGURE_H_

#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

struct ConfigureSpec {
  std::string package;
  int num_tests = 100;            // forked probe tasks
  double parent_overhead_ms = 0.35;  // script interpretation per test (median)
  // Script glue executed after the fork, before wait() — output parsing etc.
  // Small, but it decides whether Smove's handoff timer wins or loses.
  double post_fork_overhead_ms = 0.06;
  double child_work_ms = 2.0;     // probe compute, lognormal median
  double child_sigma = 0.8;       // lognormal spread
  double pipeline_prob = 0.12;    // probe forks a sub-probe and waits
  double concurrent_prob = 0.06;  // script runs two probes at once
  double long_test_prob = 0.08;   // occasional 5x compile test
};

class ConfigureWorkload : public Workload {
 public:
  explicit ConfigureWorkload(ConfigureSpec spec) : spec_(std::move(spec)) {}
  explicit ConfigureWorkload(const std::string& package)
      : ConfigureWorkload(PackageSpec(package)) {}

  std::string name() const override { return "configure-" + spec_.package; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const ConfigureSpec& spec() const { return spec_; }

  // The 11 packages of Figures 4-7: erlang ffmpeg gcc gdb imagemagick linux
  // llvm_ninja llvm_unix mplayer nodejs php.
  static ConfigureSpec PackageSpec(const std::string& package);
  static std::vector<std::string> PackageNames();

 private:
  ConfigureSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_CONFIGURE_H_
