// Open-loop request/response workloads (the cluster serving layer's traffic).
//
// Unlike the closed-loop server tests (src/workloads/server.h), arrivals here
// are *open loop*: requests land at times drawn from a Poisson or bursty
// process regardless of how fast the machine drains them, so latency is
// measured against offered load instead of self-throttling with it. Each
// request is a short detached task (optionally with microservice-style
// fan-out parts) injected through the scheduler's fork path via
// Kernel::ScheduleInjection.
//
// All randomness is pre-drawn into a RequestPlan in arrival order, so the
// same seed yields the same traffic whether the plan is replayed on one
// machine (Workload::Setup) or routed across a cluster (src/cluster/) — the
// router's choice cannot perturb the draws.

#ifndef NESTSIM_SRC_WORKLOADS_REQUESTS_H_
#define NESTSIM_SRC_WORKLOADS_REQUESTS_H_

#include <string>
#include <vector>

#include "src/core/workload.h"
#include "src/kernel/program.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace nestsim {

enum class ArrivalKind {
  kPoisson,  // homogeneous Poisson at rate_per_s
  kBursty,   // rate_per_s baseline with periodic bursts at rate * burst_factor
};

const char* ArrivalKindName(ArrivalKind kind);
bool ArrivalKindFromName(const std::string& name, ArrivalKind* out);

struct RequestSpec {
  std::string name = "requests";
  double rate_per_s = 200.0;  // mean offered load (baseline rate for bursty)
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double duration_s = 1.0;  // arrivals stop after this horizon

  // Bursty arrivals: every burst_every_s seconds the rate jumps to
  // rate_per_s * burst_factor for burst_len_s seconds.
  double burst_every_s = 0.5;
  double burst_len_s = 0.1;
  double burst_factor = 4.0;

  // Per-request service script: lognormal compute with optional I/O pause.
  double service_ms = 0.5;  // median
  double service_sigma = 0.5;
  double io_pause_ms = 0.0;  // 0 = none

  // Microservice fan-out: each request additionally spawns this many
  // sub-request parts (independent tasks; on a cluster the router may place
  // them on other machines). End-to-end latency covers all parts.
  int fanout = 0;
  double fanout_service_ms = 0.2;

  // Diurnal modulation: thin the arrival process by
  //   1 - depth/2 * (1 + cos(2*pi*t/period)), so the rate dips to
  // rate * (1 - depth) at t = 0 and recovers to the full rate at period/2.
  double diurnal_depth = 0.0;  // 0 disables, in [0, 1]
  double diurnal_period_s = 1.0;
};

// One injectable task: the parent request (part 0) or a fan-out sub.
struct RequestPart {
  SimTime arrival = 0;
  uint64_t request = 0;  // request index, 0-based
  int part = 0;          // 0 = parent, 1..fanout = subs
  ProgramPtr program;
  std::string name;
};

struct RequestPlan {
  std::vector<RequestPart> parts;  // arrival order (request-major)
  uint64_t requests = 0;           // parent count (offered load)
};

class RequestWorkload : public Workload {
 public:
  explicit RequestWorkload(RequestSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override { return "requests-" + spec_.name; }

  // Single-machine path: replays the plan onto one kernel. Draws exactly one
  // Fork() from `rng`, like every other workload's Setup.
  void Setup(Kernel& kernel, Rng& rng) const override;

  // Pre-draws the whole traffic trace. The cluster runner calls this with the
  // same forked stream Setup would use, then routes each part itself.
  RequestPlan BuildPlan(Rng& rng) const;

  const RequestSpec& spec() const { return spec_; }

 private:
  RequestSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_REQUESTS_H_
