// NAS Parallel Benchmarks-style HPC kernels (paper §5.4, Figure 12).
//
// One OpenMP-style task per logical CPU; workers iterate compute phases
// separated by barriers. Per-iteration compute has a small jitter, so a
// mis-placed (overloaded) worker desynchronises the whole gang — the paper's
// challenge case: Nest must achieve the optimal one-task-per-core placement
// without getting in the way.

#ifndef NESTSIM_SRC_WORKLOADS_NAS_H_
#define NESTSIM_SRC_WORKLOADS_NAS_H_

#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

struct NasSpec {
  std::string kernel_name;
  double iter_compute_ms = 2.0;  // per worker per iteration
  int iterations = 400;
  double jitter = 0.02;          // relative compute imbalance across workers
  int threads = 0;               // 0 = one per logical CPU
  // Some kernels have a serial setup phase before the parallel region.
  double serial_setup_ms = 5.0;
};

class NasWorkload : public Workload {
 public:
  explicit NasWorkload(NasSpec spec) : spec_(std::move(spec)) {}
  explicit NasWorkload(const std::string& kernel_name)
      : NasWorkload(KernelSpec(kernel_name)) {}

  std::string name() const override { return "nas-" + spec_.kernel_name; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const NasSpec& spec() const { return spec_; }

  // bt cg ep ft is lu mg sp ua (class C shapes, scaled).
  static NasSpec KernelSpec(const std::string& kernel_name);
  static std::vector<std::string> KernelNames();

 private:
  NasSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_NAS_H_
