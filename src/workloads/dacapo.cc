#include "src/workloads/dacapo.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

DacapoSpec App(const std::string& name, int workers, double compute_ms, double sleep_ms,
               int iterations) {
  DacapoSpec s;
  s.app = name;
  s.workers = workers;
  s.compute_ms = compute_ms;
  s.sleep_ms = sleep_ms;
  s.iterations = iterations;
  return s;
}

DacapoSpec Churn(const std::string& name, int workers, double compute_ms, double sleep_ms,
                 int batches, int churn_iterations) {
  DacapoSpec s;
  s.app = name;
  s.workers = workers;
  s.compute_ms = compute_ms;
  s.sleep_ms = sleep_ms;
  s.churn = true;
  s.churn_batches = batches;
  s.churn_iterations = churn_iterations;
  return s;
}

}  // namespace

DacapoSpec DacapoWorkload::AppSpec(const std::string& app) {
  // Sizes target ~1/20 of the paper's Figure 10 running times (2-socket
  // 6130); worker counts and block/wake cadence reproduce each app's
  // underload class ("u:" annotations in Figure 10).
  if (app == "avrora") {
    DacapoSpec s = App("avrora", 7, 0.35, 0.25, 1800);
    s.lock_fraction = 0.4;
    return s;
  }
  if (app == "batik-eval") {
    return App("batik-eval", 1, 8.0, 0.5, 650);
  }
  if (app == "biojava-eval") {
    return App("biojava-eval", 1, 10.0, 0.2, 980);
  }
  if (app == "eclipse-eval") {
    return App("eclipse-eval", 2, 5.0, 1.0, 1700);
  }
  if (app == "fop") {
    DacapoSpec s = App("fop", 1, 1.2, 0.4, 110);
    s.aux_threads = 3;
    return s;
  }
  if (app == "jme-eval") {
    return App("jme-eval", 4, 4.0, 2.0, 700);
  }
  if (app == "jython") {
    return App("jython", 1, 3.0, 0.3, 340);
  }
  if (app == "kafka-eval") {
    DacapoSpec s = App("kafka-eval", 6, 1.5, 3.0, 640);
    s.lock_fraction = 0.3;
    return s;
  }
  if (app == "luindex") {
    return App("luindex", 2, 1.5, 0.4, 130);
  }
  if (app == "tradesoap-eval") {
    DacapoSpec s = App("tradesoap-eval", 8, 1.2, 1.5, 1000);
    s.lock_fraction = 0.3;
    return s;
  }
  if (app == "cassandra-eval") {
    DacapoSpec s = App("cassandra-eval", 8, 1.0, 2.0, 950);
    s.lock_fraction = 0.3;
    return s;
  }
  if (app == "graphchi-eval") {
    DacapoSpec s = Churn("graphchi-eval", 8, 1.2, 0.3, 40, 4);
    s.lock_fraction = 0.4;
    return s;
  }
  if (app == "h2") {
    // Transactions: short bursts separated by lock handoffs and brief waits;
    // periodic JIT/GC helper batches perturb placement (§3.3).
    DacapoSpec s = App("h2", 10, 2.5, 1.0, 620);
    s.lock_fraction = 0.45;
    s.lock_tokens = 5;
    s.aux_threads = 2;
    s.aux_period_ms = 16.0;
    return s;
  }
  if (app == "lusearch") {
    return App("lusearch", 0, 1.5, 0.1, 60);
  }
  if (app == "lusearch-fix") {
    return App("lusearch-fix", 0, 1.5, 0.1, 60);
  }
  if (app == "pmd") {
    DacapoSpec s = App("pmd", 16, 1.0, 0.5, 280);
    s.lock_fraction = 0.4;
    return s;
  }
  if (app == "sunflow") {
    return App("sunflow", 0, 3.0, 0.05, 110);
  }
  if (app == "tomcat-eval") {
    DacapoSpec s = Churn("tomcat-eval", 12, 0.8, 0.4, 120, 3);
    s.lock_fraction = 0.4;
    return s;
  }
  if (app == "tradebeans") {
    DacapoSpec s = Churn("tradebeans", 12, 1.0, 0.6, 150, 4);
    s.lock_fraction = 0.4;
    return s;
  }
  if (app == "xalan") {
    return App("xalan", 0, 0.8, 0.3, 190);
  }
  if (app == "zxing-eval") {
    DacapoSpec s = App("zxing-eval", 12, 1.2, 0.5, 300);
    s.lock_fraction = 0.4;
    return s;
  }
  std::fprintf(stderr, "nestsim: unknown DaCapo app '%s'\n", app.c_str());
  std::abort();
}

std::vector<std::string> DacapoWorkload::AppNames() {
  return {"avrora",        "batik-eval",   "biojava-eval", "eclipse-eval",  "fop",
          "jme-eval",      "jython",       "kafka-eval",   "luindex",       "tradesoap-eval",
          "cassandra-eval", "graphchi-eval", "h2",          "lusearch",      "lusearch-fix",
          "pmd",           "sunflow",      "tomcat-eval",  "tradebeans",    "xalan",
          "zxing-eval"};
}

ProgramPtr DacapoWorkload::WorkerProgram(Rng& rng, int iterations) const {
  const int lock_channel = 5100 + tag();
  ProgramBuilder worker(spec_.app + "-worker");
  // Loops cannot branch per iteration, so unroll: each iteration is a burst
  // followed by either a lock handoff (sync wake of the next waiter) or a
  // timer sleep.
  for (int i = 0; i < iterations; ++i) {
    worker.ComputeMs(rng.NextLogNormal(spec_.compute_ms, spec_.sigma));
    if (rng.NextBool(spec_.lock_fraction)) {
      worker.Send(lock_channel).Recv(lock_channel);
    } else {
      worker.Sleep(MillisecondsF(rng.NextExponential(spec_.sleep_ms)));
    }
  }
  return worker.Build();
}

void DacapoWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  const int workers = spec_.workers > 0 ? spec_.workers : kernel.topology().num_cpus();

  ProgramBuilder jvm(spec_.app + "-jvm");
  jvm.ComputeMs(1.0);  // startup
  if (spec_.lock_fraction > 0.0) {
    // Seed the lock with its concurrency tokens.
    const int tokens = spec_.lock_tokens > 0 ? spec_.lock_tokens : std::max(1, workers / 2);
    for (int t = 0; t < tokens; ++t) {
      jvm.Send(5100 + tag());
    }
  }

  // Auxiliary JIT/GC activity: a coordinator wakes the gang simultaneously
  // every aux_period_ms; each gang member computes a short burst. The
  // synchronized wakeups are what perturb worker placement under CFS (§3.3).
  const int total_bursts =
      spec_.churn ? spec_.churn_batches * spec_.churn_iterations : spec_.iterations;
  const double app_seconds =
      total_bursts * (spec_.compute_ms + spec_.sleep_ms) / 1000.0;
  const int gc_rounds =
      std::max(1, static_cast<int>(app_seconds * 1000.0 / spec_.aux_period_ms));
  if (spec_.aux_threads > 0) {
    // Each round forks a batch of brief helper tasks (JIT compilations, GC
    // workers). They are exactly the "brief daemon tasks" of paper §3.3:
    // under CFS the fork path disperses them onto fresh cores; under Nest
    // they reuse idle nest cores and vanish (exit demotes the core).
    ProgramBuilder coordinator(spec_.app + "-gc-coordinator");
    coordinator.Loop(gc_rounds).Sleep(MillisecondsF(spec_.aux_period_ms));
    for (int a = 0; a < spec_.aux_threads; ++a) {
      ProgramBuilder helper(spec_.app + "-gc-helper");
      helper.ComputeMs(wl_rng.NextLogNormal(spec_.aux_compute_ms, 0.5));
      coordinator.Fork(helper.Build());
    }
    coordinator.EndLoop().JoinChildren();
    jvm.Fork(coordinator.Build());
  }

  if (spec_.churn) {
    // Short-lived worker batches: constant thread creation and destruction.
    for (int batch = 0; batch < spec_.churn_batches; ++batch) {
      jvm.ComputeMs(wl_rng.NextLogNormal(0.3, 0.4));
      for (int w = 0; w < workers; ++w) {
        jvm.Fork(WorkerProgram(wl_rng, spec_.churn_iterations));
      }
      jvm.JoinChildren();
    }
  } else {
    for (int w = 0; w < workers; ++w) {
      jvm.Fork(WorkerProgram(wl_rng, spec_.iterations));
    }
    jvm.JoinChildren();
  }

  kernel.SpawnInitial(jvm.Build(), spec_.app, tag(), /*cpu=*/0);
}

}  // namespace nestsim
