// Server workloads (paper §5.6 "Server tests"): request/response services
// under a synthetic client load.
//
// A listener thread accepts connections and dispatches requests to a worker
// pool over a channel; workers process a request (compute, possibly an I/O
// pause) and reply. Client threads drive a closed loop with a configurable
// number of concurrent connections. The paper's observations to reproduce:
// Nest loses on apache-siege-style tests as concurrency rises past the nest
// size, is neutral for nginx/node/php-style event loops, and wins on
// leveldb/redis-style stores whose few threads benefit from warm cores.

#ifndef NESTSIM_SRC_WORKLOADS_SERVER_H_
#define NESTSIM_SRC_WORKLOADS_SERVER_H_

#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

enum class ServerStyle {
  // One worker per request from a large pool (apache prefork-ish): high
  // concurrency scatters tasks far beyond any nest.
  kThreadPerRequest,
  // A few event-loop shards each serving many connections (nginx/node/php):
  // a handful of long-lived, high-utilisation tasks.
  kEventLoop,
  // A store with a small worker set and compute-heavy requests punctuated by
  // brief stalls (leveldb/redis): the warm-core sweet spot.
  kKeyValueStore,
};

struct ServerSpec {
  std::string name;
  ServerStyle style = ServerStyle::kEventLoop;
  int workers = 8;            // service threads (pool size or shards)
  int clients = 16;           // concurrent client connections
  int requests_per_client = 120;
  double service_ms = 0.4;    // per-request compute (median, lognormal)
  double service_sigma = 0.5;
  double io_pause_ms = 0.0;   // mid-request stall (0 = none)
  double client_think_ms = 0.3;
};

class ServerWorkload : public Workload {
 public:
  explicit ServerWorkload(ServerSpec spec) : spec_(std::move(spec)) {}
  explicit ServerWorkload(const std::string& name) : ServerWorkload(TestSpec(name)) {}

  std::string name() const override { return "server-" + spec_.name; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const ServerSpec& spec() const { return spec_; }

  // The §5.6 server tests: apache-siege-64/256, nginx, nodejs, php,
  // leveldb, redis, rocksdb-read.
  static ServerSpec TestSpec(const std::string& name);
  static std::vector<std::string> TestNames();

 private:
  ServerSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_SERVER_H_
