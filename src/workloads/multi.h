// Multi-application composition (paper §5.6 "Multiple concurrent
// applications"): runs several workloads simultaneously, each under its own
// tag so per-application completion times can be compared against their
// single-application runs.

#ifndef NESTSIM_SRC_WORKLOADS_MULTI_H_
#define NESTSIM_SRC_WORKLOADS_MULTI_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

class MultiAppWorkload : public Workload {
 public:
  MultiAppWorkload() = default;

  // Adds a member; it is re-tagged with its index (0, 1, ...).
  void Add(std::unique_ptr<Workload> workload);

  std::string name() const override;
  void Setup(Kernel& kernel, Rng& rng) const override;
  std::vector<int> Tags() const override;

  int size() const { return static_cast<int>(members_.size()); }
  const Workload& member(int i) const { return *members_[i]; }

 private:
  std::vector<std::unique_ptr<Workload>> members_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_MULTI_H_
