#include "src/workloads/multi.h"

namespace nestsim {

void MultiAppWorkload::Add(std::unique_ptr<Workload> workload) {
  workload->set_tag(static_cast<int>(members_.size()));
  members_.push_back(std::move(workload));
}

std::string MultiAppWorkload::name() const {
  std::string out = "multi(";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) {
      out += "+";
    }
    out += members_[i]->name();
  }
  out += ")";
  return out;
}

void MultiAppWorkload::Setup(Kernel& kernel, Rng& rng) const {
  for (const auto& member : members_) {
    member->Setup(kernel, rng);
  }
}

std::vector<int> MultiAppWorkload::Tags() const {
  std::vector<int> tags;
  for (const auto& member : members_) {
    tags.push_back(member->tag());
  }
  return tags;
}

}  // namespace nestsim
