#include "src/workloads/server.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

ServerSpec Make(const std::string& name, ServerStyle style, int workers, int clients,
                double service_ms, double io_pause_ms, double think_ms) {
  ServerSpec s;
  s.name = name;
  s.style = style;
  s.workers = workers;
  s.clients = clients;
  s.service_ms = service_ms;
  s.io_pause_ms = io_pause_ms;
  s.client_think_ms = think_ms;
  return s;
}

}  // namespace

ServerSpec ServerWorkload::TestSpec(const std::string& name) {
  if (name == "apache-siege-64") {
    return Make(name, ServerStyle::kThreadPerRequest, 0, 64, 0.35, 0.2, 0.2);
  }
  if (name == "apache-siege-256") {
    ServerSpec s = Make(name, ServerStyle::kThreadPerRequest, 0, 256, 0.35, 0.2, 0.2);
    s.requests_per_client = 40;
    return s;
  }
  if (name == "nginx") {
    return Make(name, ServerStyle::kEventLoop, 8, 64, 0.15, 0.0, 0.8);
  }
  if (name == "nodejs") {
    return Make(name, ServerStyle::kEventLoop, 4, 32, 0.25, 0.0, 1.0);
  }
  if (name == "php") {
    return Make(name, ServerStyle::kEventLoop, 8, 32, 0.4, 0.0, 0.8);
  }
  if (name == "leveldb") {
    return Make(name, ServerStyle::kKeyValueStore, 4, 8, 1.2, 2.8, 1.2);
  }
  if (name == "redis") {
    return Make(name, ServerStyle::kKeyValueStore, 2, 8, 0.6, 2.0, 1.0);
  }
  if (name == "rocksdb-read") {
    return Make(name, ServerStyle::kKeyValueStore, 6, 12, 0.8, 1.5, 0.5);
  }
  std::fprintf(stderr, "nestsim: unknown server test '%s'\n", name.c_str());
  std::abort();
}

std::vector<std::string> ServerWorkload::TestNames() {
  return {"apache-siege-64", "apache-siege-256", "nginx",  "nodejs",
          "php",             "leveldb",          "redis",  "rocksdb-read"};
}

void ServerWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  const int request_channel = 6000 + tag() * 2;
  const int done_channel = 6001 + tag() * 2;
  const int total_requests = spec_.clients * spec_.requests_per_client;

  ProgramBuilder server(spec_.name + "-main");
  server.ComputeMs(0.5);  // startup

  auto service_body = [&](ProgramBuilder& b) {
    b.ComputeMs(wl_rng.NextLogNormal(spec_.service_ms, spec_.service_sigma));
    if (spec_.io_pause_ms > 0.0) {
      b.Sleep(MillisecondsF(wl_rng.NextExponential(spec_.io_pause_ms)))
          .ComputeMs(wl_rng.NextLogNormal(spec_.service_ms * 0.3, spec_.service_sigma));
    }
    b.Send(done_channel);
  };

  switch (spec_.style) {
    case ServerStyle::kThreadPerRequest: {
      // A listener forks a short-lived handler per accepted request.
      ProgramBuilder listener(spec_.name + "-listener");
      for (int r = 0; r < total_requests; ++r) {
        listener.Recv(request_channel);
        ProgramBuilder handler(spec_.name + "-handler");
        service_body(handler);
        listener.Fork(handler.Build());
      }
      listener.JoinChildren();
      server.Fork(listener.Build());
      break;
    }
    case ServerStyle::kEventLoop:
    case ServerStyle::kKeyValueStore: {
      // A fixed worker pool drains the shared request queue. Loop counts sum
      // exactly to the request total; which worker takes which request is
      // irrelevant to channel accounting.
      for (int w = 0; w < spec_.workers; ++w) {
        const int count = total_requests / spec_.workers +
                          (w < total_requests % spec_.workers ? 1 : 0);
        ProgramBuilder worker(spec_.name + "-worker");
        for (int r = 0; r < count; ++r) {
          worker.Recv(request_channel);
          service_body(worker);
        }
        server.Fork(worker.Build());
      }
      break;
    }
  }

  // Closed-loop clients: think, send, await a completion.
  for (int c = 0; c < spec_.clients; ++c) {
    ProgramBuilder client(spec_.name + "-client");
    client.Loop(spec_.requests_per_client)
        .ComputeMs(0.02)
        .Sleep(MillisecondsF(wl_rng.NextExponential(spec_.client_think_ms)))
        .Send(request_channel)
        .Recv(done_channel)
        .EndLoop();
    server.Fork(client.Build());
  }

  server.JoinChildren();
  kernel.SpawnInitial(server.Build(), spec_.name, tag(), /*cpu=*/0);
}

}  // namespace nestsim
