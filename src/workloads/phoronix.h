// Phoronix-multicore-style workloads (paper §5.5, Figure 13 and Table 4).
//
// The Phoronix multicore suite spans very different parallel structures; we
// model the recurring shapes as styles and instantiate the Figure 13 tests
// from them. Table 4's population of 222 tests is completed with seeded
// synthetic instances of the same styles (the real suite is a proprietary
// download; substitution documented in DESIGN.md).

#ifndef NESTSIM_SRC_WORKLOADS_PHORONIX_H_
#define NESTSIM_SRC_WORKLOADS_PHORONIX_H_

#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

enum class PhoronixStyle {
  kPool,          // worker pool chewing many small items (zstd, graphics-magick)
  kOpenMp,        // barriered data-parallel phases (rodinia, askap, oidn)
  kPipeline,      // stages connected by channels (libgav1, ffmpeg)
  kFullParallel,  // independent full-length workers, no sync (cpuminer)
  kSerialBursts,  // mostly serial with parallel bursts (onednn RNN, cassandra)
};

struct PhoronixSpec {
  std::string test;
  PhoronixStyle style = PhoronixStyle::kPool;
  int threads = 0;        // 0 = one per logical CPU
  double item_ms = 0.5;   // work quantum (median)
  double sigma = 0.4;
  int items = 400;        // per worker: iterations / items / stage messages
  double gap_ms = 0.2;    // blocking gap between items (pool/serial styles)
};

class PhoronixWorkload : public Workload {
 public:
  explicit PhoronixWorkload(PhoronixSpec spec) : spec_(std::move(spec)) {}
  explicit PhoronixWorkload(const std::string& test) : PhoronixWorkload(TestSpec(test)) {}

  std::string name() const override { return "phoronix-" + spec_.test; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const PhoronixSpec& spec() const { return spec_; }

  // The 27 highlighted tests of Figure 13.
  static PhoronixSpec TestSpec(const std::string& test);
  static std::vector<std::string> Figure13TestNames();

  // A deterministic synthetic population completing Table 4's ~222 tests;
  // index 0..count-1.
  static PhoronixSpec SyntheticSpec(int index);

 private:
  PhoronixSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_PHORONIX_H_
