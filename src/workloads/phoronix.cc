#include "src/workloads/phoronix.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

PhoronixSpec Make(const std::string& test, PhoronixStyle style, int threads, double item_ms,
                  int items, double gap_ms) {
  PhoronixSpec s;
  s.test = test;
  s.style = style;
  s.threads = threads;
  s.item_ms = item_ms;
  s.items = items;
  s.gap_ms = gap_ms;
  return s;
}

}  // namespace

PhoronixSpec PhoronixWorkload::TestSpec(const std::string& test) {
  // Figure 13 tests. Threads/quanta reflect each benchmark's documented
  // structure; totals keep runs under ~1 second of simulated time.
  if (test == "arrayfire 2") {
    return Make(test, PhoronixStyle::kSerialBursts, 16, 1.2, 180, 0.4);
  }
  if (test == "arrayfire 3") {
    return Make(test, PhoronixStyle::kSerialBursts, 8, 0.9, 220, 0.3);
  }
  if (test == "askap 5") {
    return Make(test, PhoronixStyle::kOpenMp, 0, 1.4, 160, 0.0);
  }
  if (test == "cassandra 1") {
    return Make(test, PhoronixStyle::kPool, 32, 0.8, 55, 2.0);
  }
  if (test == "cpuminer-opt 6" || test == "cpuminer-opt 7" || test == "cpuminer-opt 8" ||
      test == "cpuminer-opt 9" || test == "cpuminer-opt 11") {
    return Make(test, PhoronixStyle::kFullParallel, 0, 450.0, 1, 0.0);
  }
  if (test == "ffmpeg 1") {
    return Make(test, PhoronixStyle::kPipeline, 8, 1.0, 450, 0.0);
  }
  if (test == "graphics-magick 4") {
    return Make(test, PhoronixStyle::kPool, 0, 2.0, 18, 0.2);
  }
  if (test == "libavif avifenc 1") {
    // Medium-heavy encoder threads: Nest confines them to one socket at the
    // lowest turbo while CFS spills across sockets (§5.5's degradation case).
    return Make(test, PhoronixStyle::kPool, 24, 2.2, 110, 0.1);
  }
  if (test == "libgav1 1") {
    return Make(test, PhoronixStyle::kPipeline, 8, 0.9, 500, 0.0);
  }
  if (test == "libgav1 2") {
    return Make(test, PhoronixStyle::kPipeline, 8, 0.7, 550, 0.0);
  }
  if (test == "libgav1 3") {
    return Make(test, PhoronixStyle::kPipeline, 10, 1.0, 500, 0.0);
  }
  if (test == "libgav1 4") {
    return Make(test, PhoronixStyle::kPipeline, 10, 0.8, 550, 0.0);
  }
  if (test == "oidn 1" || test == "oidn 2") {
    return Make(test, PhoronixStyle::kOpenMp, 0, 4.0, 55, 0.0);
  }
  if (test == "oidn 3") {
    return Make(test, PhoronixStyle::kOpenMp, 0, 3.0, 75, 0.0);
  }
  if (test == "onednn 4" || test == "onednn 5") {
    return Make(test, PhoronixStyle::kSerialBursts, 8, 0.5, 350, 0.15);
  }
  if (test == "onednn 7" || test == "onednn 11" || test == "onednn 14") {
    // RNN training: alternating serial and parallel-burst phases.
    return Make(test, PhoronixStyle::kSerialBursts, 16, 0.7, 300, 0.2);
  }
  if (test == "rodinia 5") {
    // OpenMP Leukocyte pinned at 36 threads (§5.5 discussion).
    return Make(test, PhoronixStyle::kOpenMp, 36, 1.5, 220, 0.0);
  }
  if (test == "zstd compression 7" || test == "zstd compression 10") {
    // Many very short chunks across all cores with queue gaps.
    return Make(test, PhoronixStyle::kPool, 0, 0.25, 160, 0.3);
  }
  std::fprintf(stderr, "nestsim: unknown phoronix test '%s'\n", test.c_str());
  std::abort();
}

std::vector<std::string> PhoronixWorkload::Figure13TestNames() {
  return {"arrayfire 2",    "arrayfire 3",    "askap 5",        "cassandra 1",
          "cpuminer-opt 6", "cpuminer-opt 7", "cpuminer-opt 8", "cpuminer-opt 9",
          "cpuminer-opt 11", "ffmpeg 1",      "graphics-magick 4", "libavif avifenc 1",
          "libgav1 1",      "libgav1 2",      "libgav1 3",      "libgav1 4",
          "oidn 1",         "oidn 2",         "oidn 3",         "onednn 4",
          "onednn 5",       "onednn 7",       "onednn 11",      "onednn 14",
          "rodinia 5",      "zstd compression 7", "zstd compression 10"};
}

PhoronixSpec PhoronixWorkload::SyntheticSpec(int index) {
  // Deterministic variety spanning the styles and scales of the multicore
  // suite; used to fill Table 4's population.
  Rng rng(0x9e00 + static_cast<uint64_t>(index));
  PhoronixSpec s;
  s.test = "synthetic-" + std::to_string(index);
  const int style = index % 5;
  s.style = static_cast<PhoronixStyle>(style);
  const int thread_choices[] = {2, 4, 6, 8, 12, 16, 24, 32, 0};
  s.threads = thread_choices[rng.NextBounded(9)];
  s.item_ms = rng.NextLogNormal(1.0, 0.9);
  s.gap_ms = rng.NextBool(0.5) ? rng.NextLogNormal(0.3, 0.8) : 0.0;
  // Aim for roughly 0.2-0.6 s of per-worker busy time.
  const double target_ms = rng.NextDouble(200.0, 600.0);
  s.items = std::max(3, static_cast<int>(target_ms / (s.item_ms + s.gap_ms + 0.01)));
  if (s.style == PhoronixStyle::kFullParallel) {
    s.item_ms = target_ms;
    s.items = 1;
  }
  return s;
}

void PhoronixWorkload::Setup(Kernel& kernel, Rng& rng) const {
  Rng wl_rng = rng.Fork();
  const int threads = spec_.threads > 0 ? spec_.threads : kernel.topology().num_cpus();

  ProgramBuilder root(spec_.test + "-main");
  root.ComputeMs(0.5);

  switch (spec_.style) {
    case PhoronixStyle::kPool:
    case PhoronixStyle::kFullParallel: {
      for (int t = 0; t < threads; ++t) {
        ProgramBuilder worker(spec_.test + "-worker");
        worker.Loop(spec_.items);
        worker.ComputeMs(wl_rng.NextLogNormal(spec_.item_ms, spec_.sigma));
        if (spec_.gap_ms > 0.0) {
          worker.Sleep(MillisecondsF(wl_rng.NextExponential(spec_.gap_ms)));
        }
        worker.EndLoop();
        root.Fork(worker.Build());
      }
      root.JoinChildren();
      break;
    }
    case PhoronixStyle::kOpenMp: {
      const int barrier_id = 100 + tag();
      kernel.CreateBarrier(barrier_id, threads);
      for (int t = 0; t < threads; ++t) {
        const double worker_ms = spec_.item_ms * (1.0 + wl_rng.NextNormal(0.0, 0.04));
        ProgramBuilder worker(spec_.test + "-omp");
        worker.Loop(spec_.items).ComputeMs(worker_ms).Barrier(barrier_id).EndLoop();
        root.Fork(worker.Build());
      }
      root.JoinChildren();
      break;
    }
    case PhoronixStyle::kPipeline: {
      // threads stages; stage i reads channel base+i, writes base+i+1. The
      // root feeds the first channel.
      const int base = 1000 + tag() * 100;
      for (int stage = 0; stage < threads; ++stage) {
        ProgramBuilder worker(spec_.test + "-stage");
        worker.Loop(spec_.items);
        worker.Recv(base + stage);
        worker.ComputeMs(wl_rng.NextLogNormal(spec_.item_ms, spec_.sigma));
        if (stage + 1 < threads) {
          worker.Send(base + stage + 1);
        }
        worker.EndLoop();
        root.Fork(worker.Build());
      }
      root.Loop(spec_.items).ComputeMs(0.05).Send(base).EndLoop();
      root.JoinChildren();
      break;
    }
    case PhoronixStyle::kSerialBursts: {
      // Alternating serial sections and fork-join parallel bursts.
      for (int i = 0; i < spec_.items; ++i) {
        root.ComputeMs(wl_rng.NextLogNormal(spec_.item_ms, spec_.sigma));
        if (i % 4 == 3) {
          for (int t = 0; t < threads; ++t) {
            ProgramBuilder burst(spec_.test + "-burst");
            burst.ComputeMs(wl_rng.NextLogNormal(spec_.item_ms, spec_.sigma));
            root.Fork(burst.Build());
          }
          root.JoinChildren();
        } else if (spec_.gap_ms > 0.0) {
          root.Sleep(MillisecondsF(wl_rng.NextExponential(spec_.gap_ms)));
        }
      }
      break;
    }
  }

  kernel.SpawnInitial(root.Build(), spec_.test, tag(), /*cpu=*/0);
}

}  // namespace nestsim
