// DaCapo-style Java application workloads (paper §5.3, Figures 8-11).
//
// Each application is a root "JVM" task spawning application worker threads
// plus JIT/GC-style auxiliary threads. Workers alternate compute bursts with
// short blocking gaps (locks, I/O, queues); some applications also *churn* —
// repeatedly spawning short-lived batches of threads — which is what drives
// the high underload of tradebeans, tomcat, and graphchi in the paper.
//
// Presets mirror the 21 applications of Figure 10, scaled to ~1/10 of the
// paper's running times.

#ifndef NESTSIM_SRC_WORKLOADS_DACAPO_H_
#define NESTSIM_SRC_WORKLOADS_DACAPO_H_

#include <string>
#include <vector>

#include "src/core/workload.h"

namespace nestsim {

struct DacapoSpec {
  std::string app;
  int workers = 8;            // 0 = one per logical CPU
  double compute_ms = 2.0;    // burst median
  double sigma = 0.6;
  double sleep_ms = 0.8;      // blocking-gap mean (exponential)
  int iterations = 200;       // bursts per worker
  // Lock contention: with this probability an iteration ends by releasing
  // and re-acquiring a shared lock instead of sleeping on a timer. Lock
  // handoffs are sync wakeups from the releasing worker's CPU — the source
  // of CFS's task scattering on h2-like applications (§5.3).
  double lock_fraction = 0.0;
  int lock_tokens = 0;  // concurrent lock holders; 0 = workers / 2
  // Churn: the root repeatedly forks short-lived worker batches instead of
  // long-lived workers. batches * workers tasks overall.
  bool churn = false;
  int churn_batches = 0;
  int churn_iterations = 8;   // bursts per short-lived worker
  // JIT/GC auxiliary threads: a coordinator periodically wakes the whole
  // gang at once (a GC pause). The simultaneous wakeups collide with
  // sleeping workers' cores, triggering the migration cascades of paper
  // §3.3 under CFS; Nest's reservations and attachment damp them.
  int aux_threads = 2;
  double aux_compute_ms = 0.6;
  double aux_period_ms = 10.0;  // gang wake period
};

class DacapoWorkload : public Workload {
 public:
  explicit DacapoWorkload(DacapoSpec spec) : spec_(std::move(spec)) {}
  explicit DacapoWorkload(const std::string& app) : DacapoWorkload(AppSpec(app)) {}

  std::string name() const override { return "dacapo-" + spec_.app; }
  void Setup(Kernel& kernel, Rng& rng) const override;

  const DacapoSpec& spec() const { return spec_; }

  static DacapoSpec AppSpec(const std::string& app);
  static std::vector<std::string> AppNames();  // the 21 Figure-10 apps

 private:
  ProgramPtr WorkerProgram(Rng& rng, int iterations) const;

  DacapoSpec spec_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_WORKLOADS_DACAPO_H_
