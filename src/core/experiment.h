// The experiment runner: the library's main entry point.
//
// An ExperimentConfig names a machine, a scheduler (+ parameters), and a
// governor; RunExperiment builds the whole stack (engine → hardware → kernel
// → policy), runs a Workload to completion, and returns the paper's metrics:
// makespan, CPU energy, underload per second, frequency residency, and
// optional traces. RunRepeated drives several seeds and aggregates.

#ifndef NESTSIM_SRC_CORE_EXPERIMENT_H_
#define NESTSIM_SRC_CORE_EXPERIMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/workload.h"
#include "src/fault/fault.h"
#include "src/governors/governors.h"
#include "src/kernel/kernel.h"
#include "src/metrics/freq_hist.h"
#include "src/metrics/trace.h"
#include "src/nest/nest_budget_policy.h"
#include "src/nest/nest_cache_policy.h"
#include "src/nest/nest_oracle_policy.h"
#include "src/nest/nest_policy.h"
#include "src/nest/nest_predict_policy.h"
#include "src/obs/sched_counters.h"
#include "src/predict/decision_trace.h"
#include "src/predict/model.h"
#include "src/predict/oracle.h"
#include "src/sim/parallel.h"
#include "src/smove/smove_policy.h"

namespace nestsim {

enum class SchedulerKind { kCfs, kNest, kSmove, kNestCache, kNestBudget, kNestPredict, kNestOracle };

const char* SchedulerKindName(SchedulerKind kind);

// Lowercase policy key used by spec files and registries ("cfs" / "nest" /
// "smove" / "nest_cache" / "nest_budget"); the inverse of
// SchedulerKindFromKey.
const char* SchedulerKindKey(SchedulerKind kind);

// Non-aborting lookup by lowercase key; false on unknown names.
bool SchedulerKindFromKey(const std::string& key, SchedulerKind* out);

// Every policy key, in enum order.
std::vector<std::string> SchedulerKindKeys();

struct ExperimentConfig {
  std::string machine = "intel-5218-2s";
  SchedulerKind scheduler = SchedulerKind::kCfs;
  std::string governor = "schedutil";

  NestParams nest;          // used when scheduler == kNest or kNestCache
  SmovePolicy::Params smove;  // used when scheduler == kSmove
  // Cache-aware Nest extras, used when scheduler == kNestCache; the cache
  // model itself (warm speedup, migration cost) lives in kernel.cache and
  // applies to every scheduler.
  NestCacheParams nest_cache;
  // Budget-aware Nest extras, used when scheduler == kNestBudget.
  NestBudgetParams nest_budget;
  Kernel::Params kernel;

  // Fault injection & replication (src/fault/) and the per-socket energy
  // budget (src/governors/). Both default off; a disabled spec draws no
  // randomness and attaches no observer, so pre-fault goldens are unchanged.
  FaultSpec fault;
  PowerParams power;

  // Prediction subsystem (src/predict/, docs/PREDICTION.md). Everything
  // defaults off/null: a config that never touches this block runs exactly
  // as before, keeping every pre-predict golden byte-identical.
  struct PredictParams {
    // Table model for scheduler == kNestPredict; null (or empty) falls back
    // bit-identically to plain Nest.
    std::shared_ptr<const TableModel> model;

    // nest_oracle recording window and extra warm cores per window.
    double oracle_window_ms = 5.0;
    int oracle_margin = 0;

    // Replay plan for scheduler == kNestOracle. Normally left null — the
    // RunExperiment two-pass protocol records one per seed automatically.
    // Set it (e.g. from a test) to skip the recording pass.
    std::shared_ptr<const OraclePlan> oracle_plan;

    // Recording sink: when set, RunExperiment attaches an OracleRecorder
    // filling this plan. Internal to the two-pass protocol.
    std::shared_ptr<OraclePlan> oracle_record_plan;

    // When set, RunExperiment attaches a DecisionTraceRecorder appending one
    // feature row per placement decision (tools/nestsim_export).
    std::shared_ptr<DecisionTrace> decision_trace;
  };
  PredictParams predict;

  // Parallel (PDES) execution knobs (src/sim/parallel.h, docs/PARALLEL.md).
  // Pure execution policy: results are byte-identical at any worker count,
  // so goldens never record it. workers = 0 runs the serial reference loop.
  ParallelParams parallel;

  uint64_t seed = 1;
  // Hard wall for runaway workloads; the run normally ends when every task
  // has exited.
  SimDuration time_limit = 600 * kSecond;

  bool record_trace = false;
  bool record_underload_series = false;
  bool record_latency = false;

  // Attach the invariant checker (src/check/) and fail the run — with a
  // std::runtime_error naming every violation — if any invariant breaks.
  // NESTSIM_CHECK_INVARIANTS=1 forces this on for every run (the test suite
  // sets it), =0 forces it off; unset defers to this flag. Checking is purely
  // observational: results are bit-identical with it on or off.
  bool check_invariants = false;

  // Perfetto capture (docs/OBSERVABILITY.md): when trace_dir is non-empty —
  // or the NESTSIM_TRACE environment variable names a directory — each run
  // writes a chrome trace-event JSON file into it. The filename stem is
  // trace_label when set, otherwise "<machine>-<scheduler>-<governor>"; the
  // seed is appended. Attaching the writer never changes simulation
  // behaviour.
  std::string trace_dir;
  std::string trace_label;

  // Cooperative wall-clock cancellation: when set, the event loop polls this
  // every few thousand events and abandons the run once it returns true,
  // marking the result `aborted`. The campaign runner uses it to enforce
  // per-job wall-clock timeouts without killing threads.
  std::function<bool()> should_abort;

  // Convenience label, e.g. "Nest sched".
  std::string Label() const;
};

// Per-machine slice of a cluster run (src/cluster/). Plain data so results
// stay copyable across the campaign worker pool.
struct ClusterMachineStats {
  uint64_t requests_routed = 0;   // parts the router sent to this machine
  double utilisation = 0.0;       // busy-cpu-time / (cpus * horizon)
  double underload_per_s = 0.0;
};

// Cluster-level serving metrics. num_machines == 0 means "not a cluster run"
// and every consumer (tables, baselines, JSONL) skips the block entirely, so
// single-machine results and their golden digests are untouched.
struct ClusterStats {
  int num_machines = 0;
  std::string router;

  uint64_t requests_offered = 0;    // arrivals scheduled (parent requests)
  uint64_t requests_completed = 0;  // all parts exited before the horizon

  // End-to-end request latency (arrival to last-part exit), milliseconds.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  // Queueing-vs-service breakdown, means across completed parts: wait is
  // arrival to first run, service is first run to exit.
  double mean_queue_ms = 0.0;
  double mean_service_ms = 0.0;

  std::vector<ClusterMachineStats> machines;
};

struct ExperimentResult {
  SimDuration makespan = 0;       // last task exit (all tags)
  double energy_joules = 0.0;     // CPU energy over the run
  double underload_per_s = 0.0;
  FreqHistogram freq_hist;
  std::vector<int> cpus_used;

  uint64_t context_switches = 0;
  uint64_t migrations = 0;
  // Engine events fired over the run; the denominator of nestsim_bench's
  // events/sec figure. Not part of golden baselines.
  uint64_t events_fired = 0;
  int tasks_created = 0;
  bool hit_time_limit = false;
  bool aborted = false;  // should_abort fired; metrics cover the partial run

  // Per-tag completion times (multi-application runs).
  std::map<int, SimDuration> tag_makespan;

  // Scheduler decision counters (src/obs/); always populated.
  SchedCounters counters;

  // Path of the Perfetto trace written for this run ("" when tracing is off
  // or the write failed).
  std::string trace_file;

  // Only populated when the corresponding record_* flag was set.
  std::vector<std::pair<double, double>> underload_series;
  std::vector<ExecSegment> trace;
  double p99_wakeup_latency_us = 0.0;
  double p50_wakeup_latency_us = 0.0;

  // Smove-only: how often its parking heuristic armed / its fallback timer
  // actually moved the task.
  int64_t smove_moves_armed = 0;
  int64_t smove_moves_fired = 0;

  // Cluster-only (src/cluster/): populated when num_machines > 0.
  ClusterStats cluster;

  // Fault/replica resilience metrics (src/fault/): populated only when
  // config.fault.any(); resilience.any() gates every JSON/baseline block.
  ResilienceStats resilience;

  double seconds() const { return ToSeconds(makespan); }

  // Energy-delay product, J·s — the figure of merit for the energy-budget
  // sweeps (lower is better on both axes).
  double edp() const { return energy_joules * seconds(); }
};

// Runs one seeded simulation of `workload` under `config`.
ExperimentResult RunExperiment(const ExperimentConfig& config, const Workload& workload);

// Builds the policy instance the config names. Exposed so the cluster runner
// (src/cluster/) constructs per-machine stacks exactly like RunExperiment.
std::unique_ptr<SchedulerPolicy> MakeSchedulerPolicy(const ExperimentConfig& config);

// The config flag, overridable either way by NESTSIM_CHECK_INVARIANTS
// ("1"/"0"); the test suite exports =1 so every test runs checked.
bool CheckInvariantsEnabled(const ExperimentConfig& config);

struct RepeatedResult {
  std::vector<ExperimentResult> runs;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  double mean_energy_j = 0.0;
  double mean_underload_per_s = 0.0;
  FreqHistogram mean_freq_hist;  // seconds summed across runs

  double stddev_pct() const {
    return mean_seconds > 0 ? 100.0 * stddev_seconds / mean_seconds : 0.0;
  }
};

// Aggregates already-collected per-seed runs into the summary benches print.
// RunRepeated and the campaign runner share this so a pooled campaign
// produces bitwise-identical tables to a serial loop.
RepeatedResult AggregateRuns(std::vector<ExperimentResult> runs);

// Runs `repetitions` seeds (base_seed, base_seed+1, ...) and aggregates.
RepeatedResult RunRepeated(const ExperimentConfig& config, const Workload& workload,
                           int repetitions, uint64_t base_seed = 1);

}  // namespace nestsim

#endif  // NESTSIM_SRC_CORE_EXPERIMENT_H_
