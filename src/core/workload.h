// The workload interface: anything that can populate a simulation with tasks.

#ifndef NESTSIM_SRC_CORE_WORKLOAD_H_
#define NESTSIM_SRC_CORE_WORKLOAD_H_

#include <string>

#include "src/kernel/kernel.h"
#include "src/sim/random.h"

namespace nestsim {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Creates barriers and spawns the workload's initial task(s). Called once,
  // after Kernel::Start(). `rng` is the run's seeded generator; all workload
  // randomness must come from it so runs are reproducible.
  virtual void Setup(Kernel& kernel, Rng& rng) const = 0;

  // Tags whose tasks this workload spawns. Single-application workloads use
  // one tag (0); compositions report one tag per member so the experiment can
  // record per-application completion times.
  virtual std::vector<int> Tags() const { return {tag_}; }

  // Workload compositions re-tag their members so per-application makespans
  // can be separated. Implementations must pass tag() to SpawnInitial.
  void set_tag(int tag) { tag_ = tag; }
  int tag() const { return tag_; }

 private:
  int tag_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CORE_WORKLOAD_H_
