#include "src/core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>

#include "src/cfs/cfs_policy.h"
#include "src/check/invariant_checker.h"
#include "src/governors/governors.h"
#include "src/metrics/latency.h"
#include "src/metrics/stats.h"
#include "src/metrics/underload.h"
#include "src/obs/perfetto_trace.h"

namespace nestsim {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCfs:
      return "CFS";
    case SchedulerKind::kNest:
      return "Nest";
    case SchedulerKind::kSmove:
      return "Smove";
    case SchedulerKind::kNestCache:
      return "NestCache";
    case SchedulerKind::kNestBudget:
      return "NestBudget";
    case SchedulerKind::kNestPredict:
      return "NestPredict";
    case SchedulerKind::kNestOracle:
      return "NestOracle";
  }
  return "?";
}

const char* SchedulerKindKey(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCfs:
      return "cfs";
    case SchedulerKind::kNest:
      return "nest";
    case SchedulerKind::kSmove:
      return "smove";
    case SchedulerKind::kNestCache:
      return "nest_cache";
    case SchedulerKind::kNestBudget:
      return "nest_budget";
    case SchedulerKind::kNestPredict:
      return "nest_predict";
    case SchedulerKind::kNestOracle:
      return "nest_oracle";
  }
  return "?";
}

bool SchedulerKindFromKey(const std::string& key, SchedulerKind* out) {
  for (const SchedulerKind kind :
       {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove,
        SchedulerKind::kNestCache, SchedulerKind::kNestBudget, SchedulerKind::kNestPredict,
        SchedulerKind::kNestOracle}) {
    if (key == SchedulerKindKey(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<std::string> SchedulerKindKeys() {
  return {"cfs", "nest", "smove", "nest_cache", "nest_budget", "nest_predict", "nest_oracle"};
}

std::string ExperimentConfig::Label() const {
  std::string label = SchedulerKindName(scheduler);
  label += " ";
  label += governor == "schedutil" ? "sched" : "perf";
  return label;
}

namespace {

// Observes task exits to record per-tag completion times.
class CompletionObserver : public KernelObserver {
 public:
  uint32_t InterestMask() const override { return kObsTaskExit; }

  void OnTaskExit(SimTime now, const Task& task) override {
    last_exit_ = std::max(last_exit_, now);
    auto [it, inserted] = tag_last_exit_.try_emplace(task.tag, now);
    if (!inserted) {
      it->second = std::max(it->second, now);
    }
  }

  SimTime last_exit() const { return last_exit_; }
  const std::map<int, SimTime>& tag_last_exit() const { return tag_last_exit_; }

 private:
  SimTime last_exit_ = 0;
  std::map<int, SimTime> tag_last_exit_;
};

// The directory Perfetto traces go to: the config field wins, then the
// NESTSIM_TRACE environment variable; empty disables capture.
std::string TraceDir(const ExperimentConfig& config) {
  if (!config.trace_dir.empty()) {
    return config.trace_dir;
  }
  const char* env = std::getenv("NESTSIM_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

std::string SanitizeStem(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += ok ? c : '-';
  }
  return out;
}

}  // namespace

bool CheckInvariantsEnabled(const ExperimentConfig& config) {
  const char* env = std::getenv("NESTSIM_CHECK_INVARIANTS");
  if (env != nullptr && env[0] != '\0') {
    return env[0] != '0';
  }
  return config.check_invariants;
}

std::unique_ptr<SchedulerPolicy> MakeSchedulerPolicy(const ExperimentConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kCfs:
      return std::make_unique<CfsPolicy>();
    case SchedulerKind::kNest:
      return std::make_unique<NestPolicy>(config.nest);
    case SchedulerKind::kSmove:
      return std::make_unique<SmovePolicy>(config.smove);
    case SchedulerKind::kNestCache:
      return std::make_unique<NestCachePolicy>(config.nest, config.nest_cache);
    case SchedulerKind::kNestBudget:
      return std::make_unique<NestBudgetPolicy>(config.nest, config.nest_budget);
    case SchedulerKind::kNestPredict:
      return std::make_unique<NestPredictPolicy>(config.nest, config.predict.model);
    case SchedulerKind::kNestOracle:
      // With a null plan (e.g. a cluster machine constructed outside the
      // two-pass protocol) the pool is empty and every placement is a CFS
      // fallback; the scenario parser rejects that combination up front.
      return std::make_unique<NestOraclePolicy>(config.nest, config.predict.oracle_plan,
                                                config.predict.oracle_margin);
  }
  return nullptr;
}

ExperimentResult RunExperiment(const ExperimentConfig& config, const Workload& workload) {
  if (config.scheduler == SchedulerKind::kNestOracle && config.predict.oracle_plan == nullptr) {
    // Two-pass oracle protocol (docs/PREDICTION.md): pass 1 runs the
    // identical experiment under plain Nest and records per-window peak
    // demand; pass 2 replays with the recorded plan. Both passes are
    // deterministic, so record → replay → re-replay is byte-identical.
    ExperimentConfig recording = config;
    recording.scheduler = SchedulerKind::kNest;
    auto plan = std::make_shared<OraclePlan>();
    recording.predict.oracle_record_plan = plan;
    // The recording pass is plain Nest; its decisions must not leak into a
    // decision-trace export of the oracle variant.
    recording.predict.decision_trace = nullptr;
    RunExperiment(recording, workload);  // result discarded; only the plan matters
    ExperimentConfig replay = config;
    replay.predict.oracle_plan = plan;
    return RunExperiment(replay, workload);
  }

  Engine engine;
  const MachineSpec& spec = MachineByName(config.machine);
  HardwareModel hw(&engine, spec);
  std::unique_ptr<SchedulerPolicy> policy = MakeSchedulerPolicy(config);
  std::unique_ptr<Governor> governor = MakeGovernor(config.governor, config.power);
  Kernel kernel(&engine, &hw, policy.get(), governor.get(), config.kernel);
  if (config.fault.replicas > 1) {
    kernel.SetInjectionReplication(config.fault.replicas, config.fault.quorum);
  }

  CompletionObserver completion;
  UnderloadTracker underload(&kernel, config.record_underload_series);
  FreqResidencyTracker freq(&kernel, FreqBucketEdgesFor(spec));
  kernel.AddObserver(&completion);
  kernel.AddObserver(&underload);
  kernel.AddObserver(&freq);

  SchedCounterRecorder counters(&kernel);
  kernel.AddObserver(&counters);

  std::unique_ptr<TraceRecorder> trace;
  if (config.record_trace) {
    trace = std::make_unique<TraceRecorder>(&kernel);
    kernel.AddObserver(trace.get());
  }
  const std::string trace_dir = TraceDir(config);
  std::unique_ptr<PerfettoTraceWriter> perfetto;
  if (!trace_dir.empty()) {
    perfetto = std::make_unique<PerfettoTraceWriter>(&kernel);
    kernel.AddObserver(perfetto.get());
  }
  std::unique_ptr<WakeupLatencyTracker> latency;
  if (config.record_latency) {
    latency = std::make_unique<WakeupLatencyTracker>();
    kernel.AddObserver(latency.get());
  }
  std::unique_ptr<InvariantChecker> checker;
  if (CheckInvariantsEnabled(config)) {
    checker = std::make_unique<InvariantChecker>(&kernel);
    kernel.AddObserver(checker.get());
  }
  std::unique_ptr<ResilienceRecorder> resilience;
  if (config.fault.any()) {
    resilience = std::make_unique<ResilienceRecorder>();
    kernel.AddObserver(resilience.get());
  }
  std::unique_ptr<OracleRecorder> oracle_recorder;
  if (config.predict.oracle_record_plan != nullptr) {
    const SimDuration window =
        static_cast<SimDuration>(config.predict.oracle_window_ms * static_cast<double>(kMillisecond));
    oracle_recorder = std::make_unique<OracleRecorder>(
        &kernel, config.predict.oracle_record_plan.get(), window);
    kernel.AddObserver(oracle_recorder.get());
  }
  std::unique_ptr<DecisionTraceRecorder> decisions;
  if (config.predict.decision_trace != nullptr) {
    decisions = std::make_unique<DecisionTraceRecorder>(&kernel, config.seed,
                                                        config.predict.decision_trace.get());
    kernel.AddObserver(decisions.get());
  }

  kernel.Start();
  Rng rng(config.seed);
  workload.Setup(kernel, rng);

  // The fault plan is drawn *after* workload setup from a forked generator:
  // the workload's draws are identical with faults on or off, and a disabled
  // spec forks nothing at all (byte-identical pre-fault goldens).
  FaultPlan fault_plan;
  std::unique_ptr<FaultInjector> injector;
  if (config.fault.enabled()) {
    Rng fault_rng = rng.Fork();
    fault_plan = BuildFaultPlan(config.fault, fault_rng, /*num_machines=*/1,
                                hw.topology().num_cpus(), config.time_limit);
    injector = std::make_unique<FaultInjector>(&engine, &kernel, &fault_plan);
    injector->Arm();
  }

  ExperimentResult result;
  // Pump events until every task exited and no open-loop arrival is still in
  // flight. The hardware's periodic updates keep the queue non-empty forever,
  // so the live-task count is the loop condition. The abort hook is polled on
  // a stride so the steady-clock read stays off the per-event path.
  auto pump = [&] {
    constexpr int kAbortCheckStride = 2048;
    int until_abort_check = kAbortCheckStride;
    while ((kernel.live_tasks() > 0 || kernel.pending_injections() > 0) &&
           engine.Now() < config.time_limit) {
      if (--until_abort_check <= 0) {
        until_abort_check = kAbortCheckStride;
        if (config.should_abort && config.should_abort()) {
          result.aborted = true;
          break;
        }
        if (checker != nullptr && !checker->ok()) {
          break;  // fail fast; the throw below carries the report
        }
      }
      if (!engine.Step()) {
        break;
      }
    }
  };
  if (config.parallel.workers > 0) {
    // One machine is one PDES domain, so there is nothing to overlap; the
    // parallel path runs the identical loop on a worker thread (the same
    // degenerate case DomainGroup handles for a one-domain group), keeping
    // "any worker count is digest-identical" true for every scenario.
    std::exception_ptr error;
    std::thread worker([&] {
      try {
        pump();
      } catch (...) {
        error = std::current_exception();
      }
    });
    worker.join();
    if (error) {
      std::rethrow_exception(error);
    }
  } else {
    pump();
  }
  if (checker != nullptr && !checker->ok()) {
    throw std::runtime_error("invariant violation (" + config.machine + ", " +
                             SchedulerKindKey(config.scheduler) + "/" + config.governor +
                             ", seed " + std::to_string(config.seed) + "):\n" +
                             checker->Report());
  }
  result.hit_time_limit =
      (kernel.live_tasks() > 0 || kernel.pending_injections() > 0) && !result.aborted;

  const SimTime end = completion.last_exit() > 0 ? completion.last_exit() : engine.Now();
  result.makespan = end;
  result.energy_joules = hw.EnergyJoules();
  result.underload_per_s = underload.UnderloadPerSecond(end);
  result.freq_hist = freq.Snapshot(end);
  result.cpus_used = underload.CpusEverUsed();
  result.events_fired = engine.events_fired();
  result.context_switches = kernel.context_switches();
  result.migrations = kernel.total_migrations();
  result.tasks_created = static_cast<int>(kernel.tasks().size());
  for (const auto& [tag, t] : completion.tag_last_exit()) {
    result.tag_makespan[tag] = t;
  }
  if (config.record_underload_series) {
    result.underload_series = underload.series();
  }
  result.counters = counters.Finish(end);
  if (trace != nullptr) {
    result.trace = trace->Finish(end);
  }
  if (perfetto != nullptr) {
    perfetto->Finish(end);
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    std::string stem = config.trace_label;
    if (stem.empty()) {
      stem = config.machine;
      stem += '-';
      stem += SchedulerKindName(config.scheduler);
      stem += '-';
      stem += config.governor;
    }
    const std::string path = trace_dir + "/" + SanitizeStem(stem) + "-seed" +
                             std::to_string(config.seed) + ".json";
    if (perfetto->WriteFile(path)) {
      result.trace_file = path;
    } else {
      std::fprintf(stderr, "[trace] cannot write %s\n", path.c_str());
    }
  }
  if (config.scheduler == SchedulerKind::kSmove) {
    const auto* smove = static_cast<const SmovePolicy*>(policy.get());
    result.smove_moves_armed = smove->moves_armed();
    result.smove_moves_fired = smove->moves_fired();
  }
  if (latency != nullptr) {
    result.p99_wakeup_latency_us = latency->PercentileUs(99.0);
    result.p50_wakeup_latency_us = latency->PercentileUs(50.0);
  }
  if (resilience != nullptr) {
    result.resilience = resilience->Finish();
  }
  return result;
}

RepeatedResult AggregateRuns(std::vector<ExperimentResult> runs) {
  RepeatedResult out;
  std::vector<double> seconds;
  std::vector<double> energy;
  std::vector<double> underload;
  for (ExperimentResult& r : runs) {
    seconds.push_back(r.seconds());
    energy.push_back(r.energy_joules);
    underload.push_back(r.underload_per_s);
    if (out.mean_freq_hist.edges.empty()) {
      out.mean_freq_hist = r.freq_hist;
    } else {
      for (size_t b = 0; b < out.mean_freq_hist.seconds.size(); ++b) {
        out.mean_freq_hist.seconds[b] += r.freq_hist.seconds[b];
      }
    }
    out.runs.push_back(std::move(r));
  }
  out.mean_seconds = Mean(seconds);
  out.stddev_seconds = Stddev(seconds);
  out.mean_energy_j = Mean(energy);
  out.mean_underload_per_s = Mean(underload);
  return out;
}

RepeatedResult RunRepeated(const ExperimentConfig& config, const Workload& workload,
                           int repetitions, uint64_t base_seed) {
  std::vector<ExperimentResult> runs;
  runs.reserve(static_cast<size_t>(repetitions > 0 ? repetitions : 0));
  for (int i = 0; i < repetitions; ++i) {
    ExperimentConfig c = config;
    c.seed = base_seed + static_cast<uint64_t>(i);
    runs.push_back(RunExperiment(c, workload));
  }
  return AggregateRuns(std::move(runs));
}

}  // namespace nestsim
