#include "src/predict/decision_trace.h"

namespace nestsim {

void DecisionTraceRecorder::OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) {
  DecisionRow row;
  row.seed = seed_;
  row.time_ns = now;
  row.is_fork = is_fork;
  row.tid = task.tid;
  row.prev_cpu = task.prev_cpu;
  row.runnable = kernel_->runnable_tasks();
  row.chosen_cpu = cpu;
  row.path = task.placement_path;

  // Per-core snapshot. Everything here must be read-only: Kernel::CpuUtil
  // mutates the PELT signal, so the load column goes through the const
  // run-queue accessor and ValueAt (lazy decay, no state change) instead.
  const Kernel& kernel = *kernel_;
  const int num_cpus = kernel.topology().num_cpus();
  const SchedulerPolicy& policy = kernel_->policy();
  row.cores.reserve(num_cpus);
  for (int c = 0; c < num_cpus; ++c) {
    DecisionRow::CoreSample sample;
    sample.ghz = kernel_->hw().FreqGhz(c);
    sample.load = kernel.rq(c).util().ValueAt(now);
    sample.idle = kernel.CpuIdle(c) ? 1 : 0;
    sample.nest = policy.NestMembership(c);
    sample.warmth = kernel.LlcWarmth(task, c);
    row.cores.push_back(sample);
  }
  sink_->rows.push_back(std::move(row));
}

}  // namespace nestsim
