#include "src/predict/features.h"

#include <cstdio>

namespace nestsim {

std::string FormatG17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

// Minimal JSON string escaping for the label columns; decision labels are
// plain identifiers in practice, but a scenario author can put anything in a
// row label and the JSONL form must stay parseable.
void AppendJsonString(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// CSV cells never need quoting except the free-form labels; quote those only
// when they contain a delimiter so the common case stays byte-stable.
void AppendCsvCell(std::string& out, const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    out += text;
    return;
  }
  out += '"';
  for (char c : text) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
}

DecisionRow::CoreSample SampleOrZero(const DecisionRow& row, int cpu) {
  if (cpu < static_cast<int>(row.cores.size())) {
    return row.cores[cpu];
  }
  return DecisionRow::CoreSample{};
}

}  // namespace

std::string DecisionCsvHeader(int num_cpus) {
  std::string out;
  for (int i = 0; i < kNumFeatureColumns; ++i) {
    if (i > 0) {
      out += ',';
    }
    out += kFeatureColumns[i];
  }
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    for (int s = 0; s < kNumPerCoreColumns; ++s) {
      out += ",cpu";
      out += std::to_string(cpu);
      out += '_';
      out += kPerCoreColumnSuffixes[s];
    }
  }
  return out;
}

std::string DecisionCsvRow(const DecisionRow& row, uint64_t decision,
                           const DecisionLabels& labels, int num_cpus) {
  std::string out = std::to_string(decision);
  out += ',';
  AppendCsvCell(out, labels.machine);
  out += ',';
  AppendCsvCell(out, labels.row);
  out += ',';
  AppendCsvCell(out, labels.variant);
  out += ',';
  out += std::to_string(row.seed);
  out += ',';
  out += std::to_string(row.time_ns);
  out += ',';
  out += row.is_fork ? "fork" : "wake";
  out += ',';
  out += std::to_string(row.tid);
  out += ',';
  out += std::to_string(row.prev_cpu);
  out += ',';
  out += std::to_string(row.runnable);
  out += ',';
  out += std::to_string(row.chosen_cpu);
  out += ',';
  out += PlacementPathName(row.path);
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    const DecisionRow::CoreSample s = SampleOrZero(row, cpu);
    out += ',';
    out += FormatG17(s.ghz);
    out += ',';
    out += FormatG17(s.load);
    out += ',';
    out += std::to_string(s.idle);
    out += ',';
    out += std::to_string(s.nest);
    out += ',';
    out += FormatG17(s.warmth);
  }
  return out;
}

std::string DecisionJsonlRow(const DecisionRow& row, uint64_t decision,
                             const DecisionLabels& labels, int num_cpus) {
  std::string out = "{\"decision\":";
  out += std::to_string(decision);
  out += ",\"machine\":";
  AppendJsonString(out, labels.machine);
  out += ",\"row\":";
  AppendJsonString(out, labels.row);
  out += ",\"variant\":";
  AppendJsonString(out, labels.variant);
  out += ",\"seed\":";
  out += std::to_string(row.seed);
  out += ",\"time_ns\":";
  out += std::to_string(row.time_ns);
  out += ",\"kind\":\"";
  out += row.is_fork ? "fork" : "wake";
  out += "\",\"tid\":";
  out += std::to_string(row.tid);
  out += ",\"prev_cpu\":";
  out += std::to_string(row.prev_cpu);
  out += ",\"runnable\":";
  out += std::to_string(row.runnable);
  out += ",\"chosen_cpu\":";
  out += std::to_string(row.chosen_cpu);
  out += ",\"path\":\"";
  out += PlacementPathName(row.path);
  out += "\",\"cores\":[";
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    const DecisionRow::CoreSample s = SampleOrZero(row, cpu);
    if (cpu > 0) {
      out += ',';
    }
    out += "{\"ghz\":";
    out += FormatG17(s.ghz);
    out += ",\"load\":";
    out += FormatG17(s.load);
    out += ",\"idle\":";
    out += std::to_string(s.idle);
    out += ",\"nest\":";
    out += std::to_string(s.nest);
    out += ",\"warmth\":";
    out += FormatG17(s.warmth);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace nestsim
