#include "src/predict/model.h"

#include <map>
#include <tuple>

namespace nestsim {

int TableModel::Predict(bool is_fork, int prev_cpu, int runnable) const {
  const int kind = is_fork ? 0 : 1;
  const int bucketed = RunnableBucket(runnable);
  for (const TableModelBucket& bucket : buckets_) {
    if (bucket.kind != kind || bucket.prev_cpu != prev_cpu || bucket.runnable != bucketed) {
      continue;
    }
    int best_cpu = -1;
    uint64_t best_count = 0;
    // counts are sorted by cpu, so the first strict maximum wins ties by
    // lowest CPU index.
    for (const auto& [cpu, count] : bucket.counts) {
      if (count > best_count) {
        best_count = count;
        best_cpu = cpu;
      }
    }
    return best_cpu;
  }
  return -1;
}

std::string TableModel::ToJson() const {
  std::string out = "{\n  \"model\": \"nest-predict-table\",\n  \"version\": 1,\n";
  out += "  \"buckets\": [";
  bool first = true;
  for (const TableModelBucket& bucket : buckets_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\": \"";
    out += bucket.kind == 0 ? "fork" : "wake";
    out += "\", \"prev_cpu\": ";
    out += std::to_string(bucket.prev_cpu);
    out += ", \"runnable\": ";
    out += std::to_string(bucket.runnable);
    out += ", \"counts\": [";
    bool first_count = true;
    for (const auto& [cpu, count] : bucket.counts) {
      if (!first_count) {
        out += ", ";
      }
      first_count = false;
      out += '[';
      out += std::to_string(cpu);
      out += ", ";
      out += std::to_string(count);
      out += ']';
    }
    out += "]}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

TableModel TrainTableModel(const std::vector<DecisionRow>& rows) {
  // (kind, prev_cpu, runnable bucket) -> cpu -> count. std::map keeps both
  // levels sorted, which is exactly the model's canonical form.
  std::map<std::tuple<int, int, int>, std::map<int, uint64_t>> table;
  for (const DecisionRow& row : rows) {
    if (row.chosen_cpu < 0) {
      continue;
    }
    const std::tuple<int, int, int> key(row.is_fork ? 0 : 1, row.prev_cpu,
                                        RunnableBucket(row.runnable));
    ++table[key][row.chosen_cpu];
  }
  std::vector<TableModelBucket> buckets;
  buckets.reserve(table.size());
  for (const auto& [key, counts] : table) {
    TableModelBucket bucket;
    bucket.kind = std::get<0>(key);
    bucket.prev_cpu = std::get<1>(key);
    bucket.runnable = std::get<2>(key);
    bucket.counts.assign(counts.begin(), counts.end());
    buckets.push_back(std::move(bucket));
  }
  TableModel model;
  model.set_buckets(std::move(buckets));
  return model;
}

}  // namespace nestsim
