// A dependency-free bucketed-table placement model (src/predict/).
//
// The model counts, per bucketed feature key, how often each CPU was chosen
// in a recorded decision trace; prediction is the argmax CPU for the key.
// Keys are deliberately coarse — (fork/wake, previous CPU, saturating
// runnable count) — so the fit is a closed-form counting pass that a unit
// test can verify by hand, and the serialized file stays tiny. The on-disk
// JSON form (strictly validated with the scenario SpecReader, see
// src/scenario/predict_io.h) is documented in docs/PREDICTION.md.

#ifndef NESTSIM_SRC_PREDICT_MODEL_H_
#define NESTSIM_SRC_PREDICT_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/predict/features.h"

namespace nestsim {

struct TableModelBucket {
  int kind = 0;      // 0 = fork, 1 = wake
  int prev_cpu = -1;  // -1 = task never ran
  int runnable = 0;  // already bucketed (RunnableBucket)
  std::vector<std::pair<int, uint64_t>> counts;  // (cpu, count), sorted by cpu
};

class TableModel {
 public:
  // An empty model predicts nothing; the nest_predict policy is then
  // bit-identical to plain Nest (pinned by tests and the differential run).
  bool empty() const { return buckets_.empty(); }

  const std::vector<TableModelBucket>& buckets() const { return buckets_; }

  // The argmax CPU for the bucketed key, ties broken by lowest CPU index;
  // -1 when the key was never observed (or the model is empty).
  int Predict(bool is_fork, int prev_cpu, int runnable) const;

  // Replaces the bucket list. Callers keep buckets sorted by
  // (kind, prev_cpu, runnable) and counts sorted by cpu — both
  // TrainTableModel and the file parser produce this canonical form.
  void set_buckets(std::vector<TableModelBucket> buckets) { buckets_ = std::move(buckets); }

  // Canonical serialized form (the on-disk model file): deterministic since
  // buckets and counts are sorted. Ends with a newline.
  std::string ToJson() const;

 private:
  std::vector<TableModelBucket> buckets_;
};

// Offline fit: one counting pass over the rows. Rows with no chosen CPU
// (chosen_cpu < 0) are skipped.
TableModel TrainTableModel(const std::vector<DecisionRow>& rows);

}  // namespace nestsim

#endif  // NESTSIM_SRC_PREDICT_MODEL_H_
