// Decision-trace capture (src/predict/).
//
// DecisionTraceRecorder is a purely observational KernelObserver: on every
// placement decision it snapshots the feature row of src/predict/features.h
// into a DecisionTrace sink. All sampling is read-only (const run-queue
// accessors, lazily decayed PELT/warmth reads), so attaching the recorder
// leaves the simulation byte-identical — the same bar every other observer
// holds. RunExperiment attaches one when
// ExperimentConfig::predict.decision_trace is set (tools/nestsim_export).

#ifndef NESTSIM_SRC_PREDICT_DECISION_TRACE_H_
#define NESTSIM_SRC_PREDICT_DECISION_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"
#include "src/predict/features.h"

namespace nestsim {

// Rows accumulate across a job's repetitions in (seed, time) order; each
// repetition's recorder stamps its own seed.
struct DecisionTrace {
  std::vector<DecisionRow> rows;
};

class DecisionTraceRecorder : public KernelObserver {
 public:
  DecisionTraceRecorder(Kernel* kernel, uint64_t seed, DecisionTrace* sink)
      : kernel_(kernel), seed_(seed), sink_(sink) {}

  uint32_t InterestMask() const override { return kObsTaskPlaced; }

  void OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) override;

 private:
  Kernel* kernel_;
  uint64_t seed_;
  DecisionTrace* sink_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_PREDICT_DECISION_TRACE_H_
