// The decision-trace feature schema (src/predict/).
//
// One DecisionRow is captured per fork/wake placement decision: the waking
// task's identity and history, the machine-wide runnable count, the chosen
// CPU and policy path (the label), and a per-core snapshot of frequency,
// PELT load, idleness, nest membership, and the task's LLC warmth. The same
// rows feed the CSV/JSONL export (tools/nestsim_export) and the offline
// table-model fit (TrainTableModel); docs/PREDICTION.md is the reference.

#ifndef NESTSIM_SRC_PREDICT_FEATURES_H_
#define NESTSIM_SRC_PREDICT_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/task.h"
#include "src/sim/time.h"

namespace nestsim {

// Fixed (per-decision) columns, in export order. check_docs.sh rule 15 greps
// this initializer: every name must appear backticked in docs/PREDICTION.md.
inline constexpr const char* kFeatureColumns[] = {
    "decision",
    "machine",
    "row",
    "variant",
    "seed",
    "time_ns",
    "kind",
    "tid",
    "prev_cpu",
    "runnable",
    "chosen_cpu",
    "path",
};

// Per-core column suffixes: logical CPU i contributes cpu<i>_<suffix> columns
// after the fixed block. Also covered by check_docs.sh rule 15.
inline constexpr const char* kPerCoreColumnSuffixes[] = {
    "ghz",
    "load",
    "idle",
    "nest",
    "warmth",
};

inline constexpr int kNumFeatureColumns =
    static_cast<int>(sizeof(kFeatureColumns) / sizeof(kFeatureColumns[0]));
inline constexpr int kNumPerCoreColumns =
    static_cast<int>(sizeof(kPerCoreColumnSuffixes) / sizeof(kPerCoreColumnSuffixes[0]));

struct DecisionRow {
  uint64_t seed = 0;       // the repetition's experiment seed
  SimTime time_ns = 0;     // simulation time of the decision
  bool is_fork = false;    // fork-path vs wake-path selection
  int tid = -1;            // task being placed
  int prev_cpu = -1;       // CPU of the task's last execution (-1 = never ran)
  int runnable = 0;        // machine-wide runnable+running+placing count
  int chosen_cpu = -1;     // the decision's outcome
  PlacementPath path = PlacementPath::kUnknown;

  struct CoreSample {
    double ghz = 0.0;     // physical-core frequency, GHz
    double load = 0.0;    // run-queue PELT utilisation, decayed read-only
    int idle = 0;         // nothing running or queued (offline counts as busy)
    int nest = 0;         // policy membership: 2 primary/pool, 1 reserve, 0 none
    double warmth = 0.0;  // placed task's LLC warmth on this CPU's die
  };
  std::vector<CoreSample> cores;  // indexed by logical CPU
};

// Job identity prefixed to every exported row so concatenated multi-job
// streams stay self-describing (same naming as the baseline records).
struct DecisionLabels {
  std::string machine;
  std::string row;
  std::string variant;
};

// The table model saturates runnable counts at this bucket.
inline constexpr int kRunnableBucketMax = 8;

inline int RunnableBucket(int runnable) {
  if (runnable < 0) {
    return 0;
  }
  return runnable < kRunnableBucketMax ? runnable : kRunnableBucketMax;
}

// %.17g: doubles round-trip bit-exactly through the text form.
std::string FormatG17(double value);

// CSV header for a per-core block of `num_cpus` logical CPUs.
std::string DecisionCsvHeader(int num_cpus);

// One CSV line (no trailing newline). `decision` is the stream-wide row
// index; the per-core block is padded with zero samples to `num_cpus` so
// multi-machine scenario exports stay rectangular.
std::string DecisionCsvRow(const DecisionRow& row, uint64_t decision,
                           const DecisionLabels& labels, int num_cpus);

// The same row as a single-line JSON object, keys in column order (per-core
// samples nested under "cores").
std::string DecisionJsonlRow(const DecisionRow& row, uint64_t decision,
                             const DecisionLabels& labels, int num_cpus);

}  // namespace nestsim

#endif  // NESTSIM_SRC_PREDICT_FEATURES_H_
