// Oracle warm-pool recording (src/predict/).
//
// The nest_oracle policy answers "how much headroom is left?" by sizing the
// warm pool with hindsight: a first, plain-Nest pass of the identical
// experiment records the peak concurrent demand per time window; the second
// pass replays that plan, keeping exactly that many cores warm in each
// window. RunExperiment drives the two passes (src/core/experiment.cc);
// OracleRecorder is the purely observational recorder of the first pass.

#ifndef NESTSIM_SRC_PREDICT_ORACLE_H_
#define NESTSIM_SRC_PREDICT_ORACLE_H_

#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"
#include "src/sim/time.h"

namespace nestsim {

// Per-window warm-pool sizes from a recorded run. Windows past the end of
// the recording hold the last observed size (the replay run can drift a
// little past the recording's makespan).
struct OraclePlan {
  SimDuration window_ns = 0;
  std::vector<int> pool_sizes;  // peak runnable count per window

  int PoolSizeAt(SimTime now) const {
    if (window_ns <= 0 || pool_sizes.empty()) {
      return 0;
    }
    size_t window = static_cast<size_t>(now / window_ns);
    if (window >= pool_sizes.size()) {
      window = pool_sizes.size() - 1;
    }
    return pool_sizes[window];
  }
};

// Samples the machine-wide runnable count into per-window maxima. Enqueues
// are where the count rises, so sampling them catches every peak; ticks keep
// quiet windows represented (as zeros).
class OracleRecorder : public KernelObserver {
 public:
  OracleRecorder(Kernel* kernel, OraclePlan* plan, SimDuration window_ns)
      : kernel_(kernel), plan_(plan) {
    plan_->window_ns = window_ns;
    plan_->pool_sizes.clear();
  }

  uint32_t InterestMask() const override { return kObsTaskEnqueued | kObsTick; }

  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override {
    (void)task;
    (void)cpu;
    Sample(now);
  }

  void OnTick(SimTime now) override { Sample(now); }

 private:
  void Sample(SimTime now) {
    if (plan_->window_ns <= 0) {
      return;
    }
    const size_t window = static_cast<size_t>(now / plan_->window_ns);
    if (window >= plan_->pool_sizes.size()) {
      plan_->pool_sizes.resize(window + 1, 0);
    }
    const int runnable = kernel_->runnable_tasks();
    if (runnable > plan_->pool_sizes[window]) {
      plan_->pool_sizes[window] = runnable;
    }
  }

  Kernel* kernel_;
  OraclePlan* plan_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_PREDICT_ORACLE_H_
