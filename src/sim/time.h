// Simulation time: signed 64-bit nanoseconds since simulation start.
//
// All of nestsim uses a single integer time base so that event ordering is
// exact and runs are bit-reproducible. Helpers below convert from human units;
// `FormatTime` renders a time for logs and tables.
//
// Work, by contrast, is measured in GHz-ns throughout the kernel and
// hardware model: W GHz-ns at an effective speed of s GHz take W / s
// nanoseconds. docs/MODEL.md §1 specifies the unit conventions and how the
// effective speed is composed (frequency × SMT factor × cache warmth).

#ifndef NESTSIM_SRC_SIM_TIME_H_
#define NESTSIM_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace nestsim {

// Nanoseconds since the start of the simulation.
using SimTime = int64_t;

// A duration, also in nanoseconds. Kept as a distinct alias for readability.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

// Scheduler tick period: 250 Hz, as on the paper's test kernels (CONFIG_HZ=250,
// one tick = 4 ms; the paper's "2 ticks" thresholds equal 8 ms).
inline constexpr SimDuration kTickPeriod = 4 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t us) { return us * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t ms) { return ms * kMillisecond; }
constexpr SimDuration Seconds(int64_t s) { return s * kSecond; }

// Fractional-second construction, used by workload generators.
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * static_cast<double>(kSecond)); }
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration MicrosecondsF(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / static_cast<double>(kSecond); }
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

// Renders e.g. "1.234s", "56.7ms", "890us", "12ns" — smallest unit that keeps
// the value >= 1.
std::string FormatTime(SimDuration d);

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_TIME_H_
