// Move-only callable for simulation events.
//
// Every scheduled event used to carry a std::function<void()>. The kernel's
// event lambdas capture 16-24 bytes (this + a task pointer + a cpu or
// generation), which exceeds libstdc++'s 16-byte small-object buffer, so each
// of the tens of millions of events in a run paid a heap allocation. EventFn
// is the same idea with a buffer sized for those lambdas: anything up to
// kInlineSize bytes lives inside the event-queue slot, and only oversized
// callables fall back to the heap.

#ifndef NESTSIM_SRC_SIM_EVENT_FN_H_
#define NESTSIM_SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nestsim {

class EventFn {
 public:
  // Big enough for every lambda the kernel and hardware schedule today;
  // larger callables are heap-backed, not rejected.
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->move_destroy(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->move_destroy(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  // Drops the callable (and its captures) without invoking it.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move_destroy)(void* src, void* dst);  // src is left destroyed
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* src, void* dst) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* src, void* dst) { *static_cast<D**>(dst) = *static_cast<D**>(src); },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_EVENT_FN_H_
