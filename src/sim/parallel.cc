#include "src/sim/parallel.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace nestsim {

namespace {

// Same stride the single-engine experiment loop uses, so abort latency and
// checker fail-fast behave identically under every executor.
constexpr int kAbortCheckStride = 2048;

}  // namespace

// A persistent barrier-synchronized worker pool. Windows are short (one per
// coordinator event), so threads are spawned once and handed work through a
// generation counter; Dispatch() blocks until every worker finished the job
// and rethrows the first exception a worker raised.
class DomainGroup::Pool {
 public:
  explicit Pool(int workers) : workers_(workers) {
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  int workers() const { return workers_; }

  // Runs fn(worker_index) on every worker and waits for all of them.
  void Dispatch(const std::function<void(int)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      done_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return done_ == workers_; });
      job_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) {
      std::rethrow_exception(error);
    }
  }

 private:
  void WorkerLoop(int index) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) {
          return;
        }
        seen = generation_;
        job = job_;
      }
      try {
        (*job)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) {
          error_ = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (++done_ == workers_) {
          done_cv_.notify_one();
        }
      }
    }
  }

  const int workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int done_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

DomainGroup::DomainGroup(int domains) {
  assert(domains >= 1);
  domains_.reserve(static_cast<size_t>(domains));
  for (int i = 0; i < domains; ++i) {
    domains_.push_back(std::make_unique<Engine>());
  }
}

DomainGroup::~DomainGroup() = default;

uint64_t DomainGroup::TotalEventsFired() const {
  uint64_t total = coordinator_.events_fired();
  for (const auto& d : domains_) {
    total += d->events_fired();
  }
  return total;
}

void DomainGroup::AdvanceAllTo(SimTime t) {
  for (auto& d : domains_) {
    if (d->Now() < t) {
      d->AdvanceTo(t);
    }
  }
  if (coordinator_.Now() < t) {
    coordinator_.AdvanceTo(t);
  }
}

void DomainGroup::EnsurePool(int workers) {
  if (pool_ == nullptr || pool_->workers() != workers) {
    pool_ = std::make_unique<Pool>(workers);
  }
}

// The serial reference executor: fires the globally earliest event across
// every queue, coordinator last at equal timestamps, replicating the
// single-shared-engine loop (liveness and time-limit checked before every
// event, abort/checker polled on a stride, one event at or past the limit
// allowed to fire).
DomainGroup::RunResult DomainGroup::RunMerged(const RunOptions& options) {
  assert(options.live && "RunOptions::live is required");
  RunResult result;
  const int n = size();
  int until_check = kAbortCheckStride;
  while (options.live() && global_now_ < options.time_limit) {
    if (--until_check <= 0) {
      until_check = kAbortCheckStride;
      if (options.should_abort && options.should_abort()) {
        result.aborted = true;
        break;
      }
      if (options.healthy && !options.healthy()) {
        break;  // fail fast; the caller raises the checker report
      }
    }
    // Earliest domain event; ties break toward the lower domain id.
    int best = -1;
    SimTime best_time = Engine::kNoEvent;
    for (int d = 0; d < n; ++d) {
      const SimTime t = domains_[static_cast<size_t>(d)]->NextEventTime();
      if (t < best_time) {
        best_time = t;
        best = d;
      }
    }
    const SimTime coord_time = coordinator_.NextEventTime();
    if (best == -1 && coord_time == Engine::kNoEvent) {
      break;  // every queue drained
    }
    if (coord_time < best_time) {
      // Cross-domain event: line every domain clock up first, exactly as the
      // shared clock stood when the router or reap ran on one engine.
      for (auto& d : domains_) {
        d->AdvanceTo(coord_time);
      }
      coordinator_.Step();
      global_now_ = coord_time;
    } else {
      domains_[static_cast<size_t>(best)]->Step();
      global_now_ = best_time;
    }
  }
  return result;
}

// The conservative windowed executor. Safe because (a) domains interact only
// through coordinator events, so the span up to the next coordinator
// timestamp is dependency-free across domains, and (b) the liveness
// predicate cannot go false inside a window — arrivals still pending on the
// coordinator keep the fleet live by definition. Remaining work (after the
// last arrival, or once the next coordinator event lies past the time
// limit) runs on the merged loop, which alone owns the per-event liveness
// and limit checks.
DomainGroup::RunResult DomainGroup::RunWindowed(const RunOptions& options) {
  RunResult result;
  const int n = size();
  std::atomic<bool> abort_flag{false};
  bool stop_unhealthy = false;
  SimTime cursor = global_now_;
  for (;;) {
    if (!options.live()) {
      break;
    }
    if (options.should_abort && options.should_abort()) {
      result.aborted = true;
      break;
    }
    if (options.healthy && !options.healthy()) {
      stop_unhealthy = true;
      break;  // skip the merged tail too: the caller raises the report
    }
    const SimTime coord_time = coordinator_.NextEventTime();
    if (coord_time >= options.time_limit) {
      break;  // endgame (including the one-past-the-limit event) is merged
    }
    SimTime window_end = coord_time;
    if (options.max_window > 0 && cursor + options.max_window < window_end) {
      window_end = cursor + options.max_window;  // heartbeat boundary
    }
    // Pump every domain through its events with t <= window_end. Each domain
    // is claimed by exactly one worker, so no engine is ever shared.
    std::atomic<int> next_domain{0};
    pool_->Dispatch([&](int) {
      int d;
      while ((d = next_domain.fetch_add(1, std::memory_order_relaxed)) < n) {
        Engine& engine = *domains_[static_cast<size_t>(d)];
        int until_check = kAbortCheckStride;
        while (engine.NextEventTime() <= window_end) {
          if (--until_check <= 0) {
            until_check = kAbortCheckStride;
            if (abort_flag.load(std::memory_order_relaxed)) {
              return;
            }
            if (options.should_abort && options.should_abort()) {
              abort_flag.store(true, std::memory_order_relaxed);
              return;
            }
          }
          engine.Step();
        }
      }
    });
    if (abort_flag.load(std::memory_order_relaxed)) {
      // Partial window: commit the farthest event actually fired, like the
      // serial loop stopping mid-stream. Aborted results are wall-clock
      // truncations either way and are never digest-compared.
      for (const auto& d : domains_) {
        global_now_ = std::max(global_now_, d->Now());
      }
      result.aborted = true;
      return result;
    }
    cursor = window_end;
    if (window_end < coord_time) {
      continue;  // heartbeat only: no clocks to commit, no event to fire
    }
    // Commit the window, then drain the instant `coord_time` in canonical
    // order. Every domain pumped through coord_time, so AdvanceTo is exact,
    // and any domain event still carrying that timestamp was spawned by a
    // coordinator event at the same instant — it must fire before the *next*
    // coordinator event there (a later arrival's router must see it), which
    // is precisely the merged loop's domains-first tie-break.
    for (auto& d : domains_) {
      d->AdvanceTo(coord_time);
    }
    coordinator_.AdvanceTo(coord_time);
    for (;;) {
      Engine* at_instant = nullptr;
      for (auto& d : domains_) {
        if (d->NextEventTime() == coord_time) {
          at_instant = d.get();
          break;
        }
      }
      if (at_instant != nullptr) {
        at_instant->Step();
        continue;
      }
      if (coordinator_.NextEventTime() == coord_time) {
        coordinator_.Step();
        continue;
      }
      break;
    }
    global_now_ = coord_time;
  }
  if (!result.aborted && !stop_unhealthy) {
    RunResult tail;
    pool_->Dispatch([&](int worker) {
      if (worker == 0) {
        tail = RunMerged(options);
      }
    });
    result = tail;
  }
  return result;
}

DomainGroup::RunResult DomainGroup::Run(const RunOptions& options) {
  assert(options.live && "RunOptions::live is required");
  if (options.workers <= 0) {
    return RunMerged(options);
  }
  EnsurePool(options.workers);
  if (options.lockstep || size() == 1) {
    // Zero-lookahead feedback (or a single domain, which has nothing to
    // overlap): the merged loop wholesale, on a pool thread so the
    // cross-thread handoff is still real.
    RunResult result;
    pool_->Dispatch([&](int worker) {
      if (worker == 0) {
        result = RunMerged(options);
      }
    });
    return result;
  }
  return RunWindowed(options);
}

}  // namespace nestsim
