// Minimal leveled logging for the simulator.
//
// Logging is off by default (level kNone) so experiment runs stay quiet and
// fast; tests and debugging sessions raise the level. The simulated timestamp
// must be passed in by the caller because the logger is a process-wide
// singleton with no engine reference.

#ifndef NESTSIM_SRC_SIM_LOG_H_
#define NESTSIM_SRC_SIM_LOG_H_

#include <cstdarg>

#include "src/sim/time.h"

namespace nestsim {

enum class LogLevel {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style; a newline is appended. No-op when `level` is above the
// configured level.
void LogAt(LogLevel level, SimTime now, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_LOG_H_
