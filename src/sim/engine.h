// The simulation run loop.
//
// `Engine` owns the clock and the event queue. Components schedule callbacks
// with `ScheduleAt`/`ScheduleAfter`; the experiment driver pumps events with
// `Run*`. Time only advances when an event fires, so an empty queue means the
// simulation is quiescent.

#ifndef NESTSIM_SRC_SIM_ENGINE_H_
#define NESTSIM_SRC_SIM_ENGINE_H_

#include <cstdint>
#include <limits>

#include "src/sim/event_fn.h"
#include <cassert>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace nestsim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t`. `t` must be >= Now().
  EventId ScheduleAt(SimTime t, EventFn fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    return queue_.Push(t, std::move(fn));
  }

  // Schedules `fn` to run `delay` from now. `delay` must be >= 0.
  EventId ScheduleAfter(SimDuration delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; no-op (returning false) if it already fired.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Fires the next event, advancing the clock to its timestamp.
  // Returns false (and does nothing) if the queue is empty.
  bool Step();

  // Pumps events until the queue is empty or the next event is after
  // `deadline`; the clock is then advanced to `deadline` if it has not
  // already passed it. Returns the number of events fired.
  uint64_t RunUntil(SimTime deadline);

  // Pumps events until the queue is empty. Returns the number fired.
  // `max_events` guards against runaway feedback loops.
  uint64_t RunUntilIdle(uint64_t max_events = std::numeric_limits<uint64_t>::max());

  bool Idle() const { return queue_.Empty(); }
  uint64_t events_fired() const { return events_fired_; }
  size_t pending_events() const { return queue_.Size(); }

  // Returned by NextEventTime when the queue is empty; sorts after any real
  // timestamp, so "min over engines" loops need no empty-queue special case.
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

  // Timestamp of the earliest pending event, or kNoEvent on an empty queue.
  // Non-const because reading the heap top lazily reclaims cancelled entries.
  SimTime NextEventTime() { return queue_.Empty() ? kNoEvent : queue_.NextTime(); }

  // Jumps the clock forward to `t` without firing anything. The conservative
  // PDES synchronizer (src/sim/parallel.h) uses this to commit a domain to a
  // window boundary it has already drained, and to line every domain clock up
  // before a cross-domain event or the final metric harvest (lazy integrators
  // such as HardwareModel::EnergyJoules integrate "up to Now()", so clocks
  // must agree on where the run ended). `t` must be >= Now(); events still
  // pending before `t` are not fired and keep their timestamps.
  void AdvanceTo(SimTime t) {
    assert(t >= now_ && "cannot advance the clock backwards");
    now_ = t;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_fired_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_ENGINE_H_
