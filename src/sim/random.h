// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible given a seed, so we carry our own
// generator (xoshiro256**, seeded via splitmix64) instead of relying on the
// standard library's unspecified distributions. All distribution helpers here
// are implemented from first principles and behave identically on every
// platform.

#ifndef NESTSIM_SRC_SIM_RANDOM_H_
#define NESTSIM_SRC_SIM_RANDOM_H_

#include <cstdint>

namespace nestsim {

// splitmix64: used to stretch a single seed into xoshiro's 256-bit state and
// to derive independent child seeds.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextU64();

  // Uniform on [0, bound). bound must be > 0. Uses rejection sampling, so the
  // result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform real on [0, 1).
  double NextDouble();

  // Uniform real on [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Normal via Box-Muller (polar form caches the spare value).
  double NextNormal(double mean, double stddev);

  // Log-normal such that the *median* of the distribution is `median` and the
  // multiplicative spread is exp(sigma). Handy for task durations.
  double NextLogNormal(double median, double sigma);

  // Pareto (heavy tail) with minimum xm and shape alpha (> 0).
  double NextPareto(double xm, double alpha);

  // Derives an independent generator; deterministic in (seed, call index).
  Rng Fork();

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  uint64_t fork_counter_ = 0;
  uint64_t seed_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_RANDOM_H_
