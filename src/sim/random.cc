#include "src/sim/random.h"

#include <cassert>
#include <cmath>

namespace nestsim {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: discard the biased zone.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * scale;
  has_spare_normal_ = true;
  return mean + stddev * (u * scale);
}

double Rng::NextLogNormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(NextNormal(0.0, sigma));
}

double Rng::NextPareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork() {
  // Child seed mixes the parent's seed with a fork counter rather than
  // consuming parent stream state, so forking never perturbs the parent's
  // sequence.
  uint64_t mix = seed_ ^ (0xa0761d6478bd642fULL * ++fork_counter_);
  return Rng(SplitMix64(mix));
}

}  // namespace nestsim
