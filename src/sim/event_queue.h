// Cancellable discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled for
// the same instant run in the order they were scheduled — this keeps runs
// deterministic. Cancellation is O(1): the heap entry is tombstoned and
// skipped when popped.

#ifndef NESTSIM_SRC_SIM_EVENT_QUEUE_H_
#define NESTSIM_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace nestsim {

// Opaque handle to a scheduled event; obtained from Push, usable with Cancel.
// Handle 0 is never issued and may be used as "no event".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `t`. `t` may be in the past
  // relative to other queued events; ordering is by (t, insertion order).
  EventId Push(SimTime t, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-fired or already-cancelled id returns false.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return pending_.empty(); }

  // Number of live events.
  size_t Size() const { return pending_.size(); }

  // Time of the earliest live event. Precondition: !Empty().
  SimTime NextTime();

  // Removes and returns the earliest live event. Precondition: !Empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired Pop();

  // Drops every pending event.
  void Clear();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as insertion sequence: ids are issued in order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  // Pops tombstoned entries off the top of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of events that are in the heap and not cancelled.
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_EVENT_QUEUE_H_
