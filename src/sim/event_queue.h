// Cancellable discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled for
// the same instant run in the order they were scheduled — this keeps runs
// deterministic. Cancellation is O(1): the slot is tombstoned (its callable is
// destroyed immediately, releasing captures) and the heap entry is skipped
// when it reaches the top.
//
// The heap is a 4-ary min-heap over plain {time, seq, slot} structs: roughly
// half the depth of a binary heap, sift-down children on one cache line, and
// no move-out-of-const workaround because the callables live in a side slot
// array, not in the heap entries. Slots are recycled through a free list; a
// per-slot generation makes stale EventIds (fired or cancelled long ago) fail
// Cancel cleanly instead of hitting the slot's next tenant.

#ifndef NESTSIM_SRC_SIM_EVENT_QUEUE_H_
#define NESTSIM_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace nestsim {

// Opaque handle to a scheduled event; obtained from Push, usable with Cancel.
// Handle 0 is never issued and may be used as "no event".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `t`. `t` may be in the past
  // relative to other queued events; ordering is by (t, insertion order).
  // Inline: one Push per scheduled event — the simulator's innermost loop.
  EventId Push(SimTime t, EventFn fn) {
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.live = true;
    ++live_;
    heap_.push_back(HeapEntry{t, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
    return MakeId(s.gen, slot);
  }

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-fired or already-cancelled id returns false.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_ == 0; }

  // Number of live events.
  size_t Size() const { return live_; }

  // Time of the earliest live event. Precondition: !Empty().
  SimTime NextTime() {
    SkipCancelled();
    assert(!heap_.empty());
    return heap_[0].time;
  }

  // Removes and returns the earliest live event. Precondition: !Empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired Pop() {
    SkipCancelled();
    assert(!heap_.empty());
    const HeapEntry top = heap_[0];
    Slot& s = slots_[top.slot];
    Fired fired{top.time, MakeId(s.gen, top.slot), std::move(s.fn)};
    s.live = false;
    --live_;
    ReleaseSlot(top.slot);
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
    return fired;
  }

  // Drops every pending event.
  void Clear();

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;   // insertion order; the FIFO tie-break at equal times
    uint32_t slot;  // index into slots_
  };
  struct Slot {
    EventFn fn;
    uint32_t gen = 1;  // bumped on release; stale ids fail the gen check
    bool live = false;
  };

  static EventId MakeId(uint32_t gen, uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }

  static bool EarlierEntry(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  static constexpr size_t kArity = 4;

  void SiftUp(size_t i) {
    HeapEntry entry = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!EarlierEntry(entry, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = entry;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    HeapEntry entry = heap_[i];
    for (;;) {
      const size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      // Smallest of up to four children.
      size_t best = first_child;
      const size_t last_child = std::min(first_child + kArity, n);
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (EarlierEntry(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!EarlierEntry(heap_[best], entry)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = entry;
  }

  // Pops tombstoned entries (and recycles their slots) off the heap top.
  void SkipCancelled() {
    while (!heap_.empty() && !slots_[heap_[0].slot].live) {
      ReleaseSlot(heap_[0].slot);
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) {
        SiftDown(0);
      }
    }
  }

  // Returns the entry's slot to the free list with a fresh generation.
  void ReleaseSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    ++s.gen;
    free_slots_.push_back(slot);
  }

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 1;
  size_t live_ = 0;  // slots with live == true
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_EVENT_QUEUE_H_
