#include "src/sim/event_queue.h"

namespace nestsim {

bool EventQueue::Cancel(EventId id) {
  // Only ids currently live can be cancelled; already-fired and
  // already-cancelled ids fail the generation check and are clean no-ops.
  if (id == kInvalidEventId) {
    return false;
  }
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) {
    return false;
  }
  s.live = false;
  s.fn.Reset();  // free captures now; the heap entry lingers until popped
  --live_;
  return true;
}

void EventQueue::Clear() {
  // Every heap entry still owns its slot (slots are released only when their
  // entry leaves the heap), so release them all.
  for (const HeapEntry& entry : heap_) {
    Slot& s = slots_[entry.slot];
    s.fn.Reset();
    s.live = false;
    ReleaseSlot(entry.slot);
  }
  heap_.clear();
  live_ = 0;
}

}  // namespace nestsim
