#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace nestsim {

EventId EventQueue::Push(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only ids currently in the heap can be cancelled; already-fired and
  // already-cancelled ids are clean no-ops.
  return pending_.erase(id) != 0;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; move out via const_cast is the
  // standard workaround for move-only payloads. The entry is popped
  // immediately after, so the moved-from state is never observed.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, top.id, std::move(top.fn)};
  pending_.erase(fired.id);
  heap_.pop();
  return fired;
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  pending_.clear();
}

}  // namespace nestsim
