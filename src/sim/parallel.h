// Conservative parallel discrete-event execution (docs/PARALLEL.md).
//
// A DomainGroup partitions one simulation into N *domains* — independent
// Engines, each with its own event queue and clock (the cluster layer gives
// every machine a domain) — plus one *coordinator* Engine carrying every
// cross-domain event: request arrivals with their router decision, and the
// replica-quorum reaps. Domains never touch each other's state directly; all
// interaction flows through coordinator events, and that isolation is what
// makes the window synchronizer below conservative.
//
// Run() executes the union of all queues in one canonical total order:
//
//   (timestamp, domain id, insertion seq)   — coordinator = highest domain id
//
// The order is a property of the event data alone, never of thread
// scheduling, so a run's results are byte-identical at any worker count.
// Two executors produce it:
//
//  * the merged loop — the serial reference executor: repeatedly fire the
//    globally earliest event across all queues, advancing every domain clock
//    to a coordinator event's timestamp before it fires (lazy integrators
//    such as PELT and the energy model read their domain clock);
//
//  * the windowed executor — between consecutive coordinator events no
//    domain can affect another, so the span up to the next coordinator
//    timestamp (the group's lower bound on cross-domain time, LBTS) is a
//    safe window every domain executes independently. A worker pool pumps
//    domains concurrently, a barrier commits the window, the coordinator
//    event fires, and the cycle repeats. An optional lookahead cap bounds
//    window length (a null-message-style heartbeat) so wall-clock abort
//    polling stays responsive across long arrival gaps. Once the
//    coordinator queue drains (or the next coordinator event lies past the
//    time limit) the run finishes on the merged loop, which alone evaluates
//    the liveness predicate exactly per event.
//
// Feedback with zero lookahead — task replication, whose quorum reaps are
// scheduled *at the current instant* from inside domain events — cannot be
// windowed; Run() must then be given lockstep = true, which executes the
// merged loop wholesale (on a pool thread when workers > 0, so the
// threading is still exercised). This is the textbook degenerate case of a
// conservative synchronizer: zero lookahead serializes.

#ifndef NESTSIM_SRC_SIM_PARALLEL_H_
#define NESTSIM_SRC_SIM_PARALLEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace nestsim {

// Execution knobs, carried by ExperimentConfig as `config.parallel` and set
// from scenario files via the parallel.* override keys (docs/SCENARIOS.md).
// Parallel execution is invisible in every result: goldens recorded at
// workers = 0 must verify at any worker count.
struct ParallelParams {
  // Worker threads pumping domains. 0 = serial: the merged reference loop on
  // the calling thread. >0 spawns that many threads (a single-domain run
  // then executes wholesale on one of them).
  int workers = 0;

  // "auto" | "window" | "lockstep". Auto picks the windowed executor and
  // falls back to lockstep when windowing is unsafe (replicas > 1); "window"
  // falls back the same way; "lockstep" always runs the merged loop.
  std::string sync = "auto";

  // Caps the conservative window length, in simulated microseconds; 0 keeps
  // windows uncapped (they span the whole gap to the next coordinator
  // event). Purely an execution knob: any cap yields identical results.
  double lookahead_us = 0.0;
};

// N domain Engines plus one coordinator Engine, executed as one simulation.
class DomainGroup {
 public:
  explicit DomainGroup(int domains);
  ~DomainGroup();
  DomainGroup(const DomainGroup&) = delete;
  DomainGroup& operator=(const DomainGroup&) = delete;

  int size() const { return static_cast<int>(domains_.size()); }
  Engine& domain(int i) { return *domains_[static_cast<size_t>(i)]; }
  Engine& coordinator() { return coordinator_; }

  // Timestamp of the last committed (fired) event, across every queue; the
  // group-wide analogue of Engine::Now(). This is the horizon lazy metric
  // integrators must be advanced to at teardown (AdvanceAllTo).
  SimTime Now() const { return global_now_; }

  // Sum of events fired across every queue (the bench denominator).
  uint64_t TotalEventsFired() const;

  // Schedules a cross-domain event. Only legal from single-threaded
  // contexts: setup before Run(), inside another coordinator event, or
  // inside a domain event under the merged/lockstep executor. Domain events
  // running under the windowed executor must not call this (worker threads
  // would race on the coordinator queue) — which is exactly why zero-
  // lookahead feedback forces lockstep.
  EventId ScheduleCoordinator(SimTime t, EventFn fn) {
    return coordinator_.ScheduleAt(t, std::move(fn));
  }

  struct RunOptions {
    SimTime time_limit = 0;

    // See ParallelParams::workers. 0 runs everything on the calling thread.
    int workers = 0;

    // Force the merged loop even when workers > 0 (zero-lookahead feedback).
    bool lockstep = false;

    // Window-length cap (ParallelParams::lookahead_us, converted); 0 = none.
    SimDuration max_window = 0;

    // Loop predicate, required: keep running while it returns true. The
    // merged loop evaluates it before every event, exactly like the
    // single-engine experiment loop; the windowed executor evaluates it only
    // at barriers, which is sound because the predicate cannot go false
    // while coordinator arrivals are still pending.
    std::function<bool()> live;

    // Wall-clock cancellation, polled every few thousand events. Under the
    // windowed executor workers poll it concurrently, so it must be
    // thread-safe (the campaign's steady-clock deadline hook is).
    std::function<bool()> should_abort;

    // Fail-fast hook (the invariant checker), polled on the same stride from
    // the merged loop and at windowed barriers; returning false stops the
    // run so the caller can raise the report.
    std::function<bool()> healthy;
  };

  struct RunResult {
    bool aborted = false;  // should_abort fired
  };

  // Executes until `live` goes false, the clock passes time_limit (one event
  // at or past the limit fires, matching the single-engine loop), every
  // queue drains, `healthy` goes false, or `should_abort` fires.
  RunResult Run(const RunOptions& options);

  // Advances every clock (domains and coordinator) to at least `t`; called
  // with Now() before harvesting metrics so lazy integrators all integrate
  // to the same horizon the shared-clock engine would have reached.
  void AdvanceAllTo(SimTime t);

 private:
  class Pool;

  RunResult RunMerged(const RunOptions& options);
  RunResult RunWindowed(const RunOptions& options);
  void EnsurePool(int workers);

  std::vector<std::unique_ptr<Engine>> domains_;
  Engine coordinator_;
  SimTime global_now_ = 0;
  std::unique_ptr<Pool> pool_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SIM_PARALLEL_H_
