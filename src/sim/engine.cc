#include "src/sim/engine.h"

#include <cassert>
#include <utility>

namespace nestsim {

bool Engine::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.Pop();
  assert(fired.time >= now_);
  now_ = fired.time;
  ++events_fired_;
  fired.fn();
  return true;
}

uint64_t Engine::RunUntil(SimTime deadline) {
  uint64_t fired = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    Step();
    ++fired;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

uint64_t Engine::RunUntilIdle(uint64_t max_events) {
  uint64_t fired = 0;
  while (fired < max_events && Step()) {
    ++fired;
  }
  return fired;
}

}  // namespace nestsim
