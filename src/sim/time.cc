#include "src/sim/time.h"

#include <cmath>
#include <cstdio>

namespace nestsim {

std::string FormatTime(SimDuration d) {
  char buf[64];
  const bool neg = d < 0;
  const double ad = std::abs(static_cast<double>(d));
  const char* sign = neg ? "-" : "";
  if (ad >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, ad / static_cast<double>(kSecond));
  } else if (ad >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, ad / static_cast<double>(kMillisecond));
  } else if (ad >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign, ad / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%ldns", sign, static_cast<long>(std::llround(ad)));
  }
  return buf;
}

}  // namespace nestsim
