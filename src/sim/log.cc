#include "src/sim/log.h"

#include <atomic>
#include <cstdio>

namespace nestsim {

namespace {
// Atomic so concurrent campaign workers can read it race-free; the level is
// normally set once, before any simulation runs.
std::atomic<LogLevel> g_level{LogLevel::kNone};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogAt(LogLevel level, SimTime now, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s %12s] ", LevelTag(level), FormatTime(now).c_str());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace nestsim
