// The power-governor interface (paper §2.3).
//
// The governor suggests a frequency for a CPU from its utilisation; the
// hardware model combines the suggestion with the turbo ladder and activity.

#ifndef NESTSIM_SRC_KERNEL_GOVERNOR_H_
#define NESTSIM_SRC_KERNEL_GOVERNOR_H_

#include "src/hw/machine_spec.h"

namespace nestsim {

class Governor {
 public:
  virtual ~Governor() = default;

  virtual const char* name() const = 0;

  // The frequency (GHz) this governor requests for a CPU whose current
  // utilisation signal is `cpu_util` in [0, 1].
  virtual double RequestGhz(const MachineSpec& spec, double cpu_util) const = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_GOVERNOR_H_
