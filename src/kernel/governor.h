// The power-governor interface (paper §2.3).
//
// The governor suggests a frequency for a CPU from its utilisation; the
// hardware model combines the suggestion with the turbo ladder and activity.

#ifndef NESTSIM_SRC_KERNEL_GOVERNOR_H_
#define NESTSIM_SRC_KERNEL_GOVERNOR_H_

#include "src/hw/machine_spec.h"

namespace nestsim {

class HardwareModel;

class Governor {
 public:
  virtual ~Governor() = default;

  virtual const char* name() const = 0;

  // The frequency (GHz) this governor requests for a CPU whose current
  // utilisation signal is `cpu_util` in [0, 1].
  virtual double RequestGhz(const MachineSpec& spec, double cpu_util) const = 0;

  // CPU-aware entry point — what the kernel actually calls. The default
  // ignores the CPU; power-aware governors (src/governors/ BudgetGovernor)
  // override it to read the CPU's socket power.
  virtual double RequestGhzOn(const MachineSpec& spec, double cpu_util, int cpu) const {
    (void)cpu;
    return RequestGhz(spec, cpu_util);
  }

  // Called once from Kernel::Start. Governors that need hardware state
  // (socket power, topology) keep the pointer; the default drops it.
  virtual void AttachHardware(const HardwareModel* hw) { (void)hw; }

  // Per-socket power budget (W) this governor enforces; 0 == uncapped. The
  // kernel samples per-socket budget state each tick only when positive.
  virtual double BudgetWatts() const { return 0.0; }

  // Whether frequency requests on `socket` are currently being scaled down
  // by budget pressure.
  virtual bool ThrottledOnSocket(int socket) const {
    (void)socket;
    return false;
  }

  // A hard frequency ceiling (GHz) for `cpu`, RAPL-style: unlike RequestGhz
  // (a floor the hardware may exceed autonomously), the ceiling binds the
  // turbo/activity boost too. 0 == no ceiling. The kernel wires this into the
  // hardware model only when BudgetWatts() > 0, so uncapped runs never pay
  // for the hook.
  virtual double CapGhzOn(const MachineSpec& spec, int cpu) const {
    (void)spec;
    (void)cpu;
    return 0.0;
  }
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_GOVERNOR_H_
