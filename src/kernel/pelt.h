// PELT-style exponentially decaying utilisation/load signals.
//
// Linux's Per-Entity Load Tracking sums geometrically decayed 1 ms windows
// with a ~32 ms half-life. We keep the same half-life but integrate in
// continuous time: over an interval of length dt where the entity was active
// a fraction r of the time,
//   avg' = avg * d + r * (1 - d),   d = 2^(-dt / half_life).
//
// Two things matter for reproducing the paper:
//  * a *recently* idle CPU still shows residual utilisation, so CFS's
//    fork-time "idlest CPU" choice disfavours warm cores (paper §2.1);
//  * schedutil's frequency request follows this signal (paper §2.3).

#ifndef NESTSIM_SRC_KERNEL_PELT_H_
#define NESTSIM_SRC_KERNEL_PELT_H_

#include "src/sim/time.h"

namespace nestsim {

class PeltSignal {
 public:
  PeltSignal() = default;

  // Folds the interval [last_update, now) into the average. `active_fraction`
  // is the fraction of that interval the entity was running (0..1).
  void Update(SimTime now, double active_fraction);

  // The signal decayed to `now`, assuming inactivity since the last Update.
  // Does not modify state.
  double ValueAt(SimTime now) const;

  // The raw signal at the time of the last Update.
  double raw() const { return avg_; }
  SimTime last_update() const { return last_update_; }

  // Forces the signal (used when migrating a task's utilisation).
  void Set(SimTime now, double value) {
    avg_ = value;
    last_update_ = now;
  }

  static constexpr SimDuration kHalfLife = 32 * kMillisecond;

 private:
  static double DecayFactor(SimDuration dt);

  double avg_ = 0.0;
  SimTime last_update_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_PELT_H_
