// PELT-style exponentially decaying utilisation/load signals.
//
// Linux's Per-Entity Load Tracking sums geometrically decayed 1 ms windows
// with a ~32 ms half-life. We keep the same half-life but integrate in
// continuous time: over an interval of length dt where the entity was active
// a fraction r of the time,
//   avg' = avg * d + r * (1 - d),   d = 2^(-dt / half_life).
//
// Two things matter for reproducing the paper:
//  * a *recently* idle CPU still shows residual utilisation, so CFS's
//    fork-time "idlest CPU" choice disfavours warm cores (paper §2.1);
//  * schedutil's frequency request follows this signal (paper §2.3).

#ifndef NESTSIM_SRC_KERNEL_PELT_H_
#define NESTSIM_SRC_KERNEL_PELT_H_

#include <array>

#include "src/sim/time.h"

namespace nestsim {

namespace pelt_detail {

// 2^(-dt / PeltSignal::kHalfLife) via std::exp2 — the slow path, out of line.
double Exp2Decay(SimDuration dt);

// Decay factors for dt = 0, 1, 2, ... milliseconds. 1024 ms ~= 2^-32 of the
// signal; longer gaps are rare enough to pay the exp2. Built once at startup
// (pelt.cc) with the identical exp2 expression, so table hits return the very
// same doubles the direct computation would.
inline constexpr int kMsTableSize = 1024;
struct DecayMsTable {
  DecayMsTable();
  std::array<double, kMsTableSize> factor;
};
extern const DecayMsTable kDecayMsTable;

}  // namespace pelt_detail

class PeltSignal {
 public:
  PeltSignal() = default;

  // Folds the interval [last_update, now) into the average. `active_fraction`
  // is the fraction of that interval the entity was running (0..1). Inline:
  // the policies' placement scans call this for every candidate CPU, and most
  // calls hit the dt == 0 or fully-drained early-outs.
  void Update(SimTime now, double active_fraction) {
    const SimDuration dt = now - last_update_;
    if (dt > 0) {
      // 0 * d + 0 * (1 - d) == +0.0 exactly, so a fully drained signal
      // staying inactive only needs its timestamp moved — the common case for
      // the many idle CPUs a tick touches.
      if (avg_ == 0.0 && active_fraction == 0.0) {
        last_update_ = now;
        return;
      }
      const double d = DecayFactor(dt);
      avg_ = avg_ * d + active_fraction * (1.0 - d);
      last_update_ = now;
    }
  }

  // The signal decayed to `now`, assuming inactivity since the last Update.
  // Does not modify state.
  double ValueAt(SimTime now) const {
    if (avg_ == 0.0) {
      return avg_;  // 0 * 2^x == +0.0 for any finite x
    }
    const SimDuration dt = now - last_update_;
    if (dt <= 0) {
      return avg_;  // DecayFactor would be exactly 1.0
    }
    return avg_ * DecayFactor(dt);
  }

  // The raw signal at the time of the last Update.
  double raw() const { return avg_; }
  SimTime last_update() const { return last_update_; }

  // Forces the signal (used when migrating a task's utilisation).
  void Set(SimTime now, double value) {
    avg_ = value;
    last_update_ = now;
  }

  static constexpr SimDuration kHalfLife = 32 * kMillisecond;

 private:
  // 2^(-dt / half_life), with two exp2-free fast paths that return the very
  // same doubles: the whole-millisecond table above (idle CPUs update on 4 ms
  // tick boundaries, so most dts are ms multiples) and a one-entry memo of
  // the last ragged dt (per signal, so threads never share it). Both caches
  // are filled with the identical exp2 expression — composing powers
  // y^a * y^b instead would change the low bits and break the byte-identical
  // golden baselines.
  double DecayFactor(SimDuration dt) const {
    if (dt <= 0) {
      return 1.0;
    }
    if (dt % kMillisecond == 0) {
      const SimDuration ms = dt / kMillisecond;
      if (ms < pelt_detail::kMsTableSize) {
        return pelt_detail::kDecayMsTable.factor[static_cast<size_t>(ms)];
      }
    }
    if (dt == memo_dt_) {
      return memo_decay_;
    }
    const double decay = pelt_detail::Exp2Decay(dt);
    memo_dt_ = dt;
    memo_decay_ = decay;
    return decay;
  }

  double avg_ = 0.0;
  SimTime last_update_ = 0;
  mutable SimDuration memo_dt_ = 0;
  mutable double memo_decay_ = 1.0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_PELT_H_
