#include "src/kernel/pelt.h"

#include <cmath>

namespace nestsim {
namespace pelt_detail {

double Exp2Decay(SimDuration dt) {
  return std::exp2(-static_cast<double>(dt) / static_cast<double>(PeltSignal::kHalfLife));
}

DecayMsTable::DecayMsTable() {
  for (int n = 0; n < kMsTableSize; ++n) {
    factor[static_cast<size_t>(n)] = Exp2Decay(static_cast<SimDuration>(n) * kMillisecond);
  }
}

const DecayMsTable kDecayMsTable;

}  // namespace pelt_detail
}  // namespace nestsim
