#include "src/kernel/pelt.h"

#include <cmath>

namespace nestsim {

double PeltSignal::DecayFactor(SimDuration dt) {
  if (dt <= 0) {
    return 1.0;
  }
  return std::exp2(-static_cast<double>(dt) / static_cast<double>(kHalfLife));
}

void PeltSignal::Update(SimTime now, double active_fraction) {
  const SimDuration dt = now - last_update_;
  if (dt > 0) {
    const double d = DecayFactor(dt);
    avg_ = avg_ * d + active_fraction * (1.0 - d);
    last_update_ = now;
  }
}

double PeltSignal::ValueAt(SimTime now) const {
  const SimDuration dt = now - last_update_;
  return avg_ * DecayFactor(dt);
}

}  // namespace nestsim
