// The kernel: scheduling mechanism, task lifecycle, and program execution.
//
// The kernel owns per-CPU run queues, the tick, context switching, the
// task-program interpreter, sleeping/waking, channels and barriers, the idle
// loop (including policy-driven warm spinning, §3.2), and load balancing.
// Core *selection* on fork and wakeup is delegated to a SchedulerPolicy
// (CFS / Nest / Smove); frequency requests are delegated to a Governor.
//
// Placement happens in two steps, as in Linux (§3.4): the policy selects a
// CPU, then the enqueue lands `placement_latency` later. Policies that use
// placement reservation claim the run queue in between; others can collide.

#ifndef NESTSIM_SRC_KERNEL_KERNEL_H_
#define NESTSIM_SRC_KERNEL_KERNEL_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/cache_model.h"
#include "src/hw/hardware.h"
#include "src/kernel/cpu_mask.h"
#include "src/kernel/domains.h"
#include "src/kernel/governor.h"
#include "src/kernel/observer.h"
#include "src/kernel/policy.h"
#include "src/kernel/run_queue.h"
#include "src/kernel/sync.h"
#include "src/kernel/task.h"
#include "src/sim/engine.h"

namespace nestsim {

class Kernel {
 public:
  struct Params {
    // Select-to-enqueue latency; the §3.4 collision window.
    SimDuration placement_latency = 2 * kMicrosecond;
    // CFS preemption tunables (defaults mirror Linux, scaled for weight-1).
    SimDuration min_granularity = 750 * kMicrosecond;
    SimDuration wakeup_granularity = 1 * kMillisecond;
    SimDuration sleeper_credit = 3 * kMillisecond;  // GENTLE_FAIR_SLEEPERS
    // Implicit syscall costs, in GHz-ns.
    double fork_cost_work = 15e3;  // ~15 us at 1 GHz
    double send_cost_work = 2e3;
    double recv_cost_work = 2e3;
    // Load balancing.
    bool enable_newidle_balance = true;
    bool enable_periodic_balance = true;
    // Only steal queued tasks that have waited at least this long (a crude
    // cache-hotness guard).
    SimDuration steal_min_wait = 100 * kMicrosecond;
    // Cache-refill work (GHz-ns) charged when a task resumes on a different
    // core than its last one; crossing sockets also refills the LLC. This is
    // what makes placement cascades and nest-bouncing expensive (the paper
    // correlates its hackbench slowdown with instruction-cache misses).
    double migration_cost_work = 80e3;        // same die, ~25 us at 3 GHz
    double cross_die_migration_cost_work = 400e3;
    // Cache/NUMA warmth model (src/hw/cache_model.h): per-task LLC warmth, a
    // warm-cache speedup on the service rate, and an extra cross-LLC
    // migration charge. Defaults are a disabled model; the kernel skips all
    // warmth bookkeeping unless this is enabled or the policy wants warmth.
    CacheParams cache;
    // Fault injection for the invariant-checker self-tests (src/check/): when
    // > 0, every Nth EnqueueTask skips the final dispatch/preemption step —
    // a deliberate lost wakeup. 0 (the default) disables the hook; production
    // code must never set it.
    int test_skip_enqueue_dispatch_every = 0;
  };

  Kernel(Engine* engine, HardwareModel* hw, SchedulerPolicy* policy, Governor* governor);
  Kernel(Engine* engine, HardwareModel* hw, SchedulerPolicy* policy, Governor* governor,
         Params params);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Wires hardware callbacks and starts the tick. Call once before spawning.
  void Start();

  // ---- Workload-facing API. ----

  // Creates a root task and enqueues it on `cpu` immediately (no policy
  // involvement — this is the process that "starts" the workload). The first
  // SpawnInitial CPU becomes root_cpu(), which Nest uses as the fixed start
  // for reserve-nest searches.
  Task* SpawnInitial(ProgramPtr program, std::string name, int tag, int cpu = 0);

  // Creates a detached task through the *policy* fork path — this is how an
  // external request (network IRQ on the boot CPU) enters the machine. Unlike
  // SpawnInitial, the policy chooses the CPU, so Nest/Smove placement applies
  // from the first instruction. Used by the open-loop request workloads and
  // the cluster serving layer (src/cluster/).
  Task* InjectTask(ProgramPtr program, std::string name, int tag);

  // Schedules InjectTask at absolute simulated time `when`. The pending count
  // keeps experiment run loops alive while arrivals are still in flight even
  // if the machine is momentarily empty (open-loop traffic).
  void ScheduleInjection(SimTime when, ProgramPtr program, std::string name, int tag);

  // Injections scheduled via ScheduleInjection that have not yet fired.
  int pending_injections() const { return pending_injections_; }

  // Replicates every subsequent InjectTask into `replicas` copies sharing a
  // fresh replica group: the first `quorum` copies to exit win and the rest
  // are reaped (src/fault/). Single-machine runs only — the cluster runner
  // replicates across machines itself. replicas <= 1 disables (the default);
  // the copies share the already-drawn program, so enabling replication does
  // not perturb any workload randomness.
  void SetInjectionReplication(int replicas, int quorum);

  // ---- Fault injection (src/fault/). ----

  // Whether `cpu` is online (failed cores are refused by every placement and
  // balancing path until OnlineCpu). All CPUs start online.
  bool CpuOnline(int cpu) const { return cpus_[cpu].online; }
  int online_cpus() const { return online_cpus_; }

  // Takes `cpu` offline: stops any warm spin, displaces the running task,
  // drains the queue, clears the §3.4 claim, hard-resets the queue's PELT
  // signal, forces the hardware thread idle, and re-places every displaced
  // task through the policy (placement path kFaultEvacuate). Returns false —
  // and does nothing — if the CPU is already offline or is the last online
  // CPU (the machine always keeps one core).
  bool OfflineCpu(int cpu);

  // Brings a failed CPU back. Its queue restarts empty with a fresh PELT
  // signal; no policy membership is restored (the core re-earns its way in).
  void OnlineCpu(int cpu);

  // Kills a task in any state without running its program to completion: no
  // OnTaskExit observer fires (killed work must not count as completed), but
  // parents are still un-blocked and sync wait lists cleaned. `kind` is the
  // fault event emitted (kTaskKilled for failures, kReplicaReaped for
  // post-quorum reaping). No-op on already-dead tasks.
  void KillTask(Task* task, FaultEventKind kind = FaultEventKind::kTaskKilled);

  // Forwards a fault transition to the observers. Public because the fault
  // injector and the cluster runner (machine crashes) emit events too.
  void NotifyFaultEvent(FaultEventKind kind, int cpu, const Task* task);

  // Declares a reusable barrier with `parties` participants.
  void CreateBarrier(int id, int parties) { sync_.CreateBarrier(id, parties); }

  // ---- Introspection (policies, metrics, tests). ----

  Engine& engine() { return *engine_; }
  HardwareModel& hw() { return *hw_; }
  const Topology& topology() const { return hw_->topology(); }
  const DomainTree& domains() const { return domains_; }
  const Params& params() const { return params_; }
  SchedulerPolicy& policy() { return *policy_; }
  const Governor& governor() const { return *governor_; }

  RunQueue& rq(int cpu) { return cpus_[cpu].rq; }
  const RunQueue& rq(int cpu) const { return cpus_[cpu].rq; }

  // Idle from the scheduler's point of view: nothing running or queued.
  // Offline CPUs are never idle — they must lose every placement scan.
  bool CpuIdle(int cpu) const { return cpus_[cpu].online && cpus_[cpu].rq.Idle(); }

  // Idle and not claimed by an in-flight placement. What reservation-aware
  // policies (Nest) check before selecting a CPU.
  bool CpuIdleUnclaimed(int cpu) const {
    return cpus_[cpu].online && cpus_[cpu].rq.Idle() && !cpus_[cpu].rq.claimed();
  }

  // The CPU's decayed utilisation in [0, 1], updated to now. This is the
  // "recent load" CFS consults and the signal schedutil sees. Inline: every
  // placement scan calls it per candidate CPU.
  double CpuUtil(int cpu) {
    RunQueue& rq = cpus_[cpu].rq;
    rq.util().Update(engine_->Now(), rq.curr() != nullptr ? 1.0 : 0.0);
    return rq.util().raw();
  }

  // Claims `cpu` for an in-flight placement; false if already claimed.
  bool TryClaimCpu(int cpu) { return cpus_[cpu].rq.TryClaim(engine_->Now()); }

  // Whether per-task LLC warmth is maintained this run: the cache model is
  // enabled or the policy asked for warmth. Fixed at construction.
  bool TracksCacheWarmth() const { return cache_tracking_; }

  // The task's decayed warmth on `cpu`'s LLC domain, in [0, 1]; 0.0 when
  // warmth is not tracked. Read-only (lazy decay), usable from policies.
  double LlcWarmth(const Task& task, int cpu) const {
    if (task.llc_warmth.empty()) {
      return 0.0;
    }
    return task.llc_warmth[topology().SocketOf(cpu)].ValueAt(engine_->Now());
  }

  int root_cpu() const { return root_cpu_; }
  int live_tasks() const { return live_tasks_; }
  int live_tasks_for_tag(int tag) const;
  uint64_t context_switches() const { return context_switches_; }
  uint64_t total_migrations() const { return migrations_; }

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

  // Registers an observer. Its InterestMask() is read here (once) to build
  // the per-event dispatch lists; notification order within an event follows
  // registration order.
  void AddObserver(KernelObserver* observer);

  // O(1) work-conservation check: some CPU idle while some CPU has waiting
  // tasks. The two masks are maintained on every run-queue mutation, so this
  // matches a full scan of the run queues at any observer notification point.
  bool WorkConservationViolated() const {
    return idle_cpus_.Any() && overloaded_cpus_.Any();
  }

  // Count of tasks in state kRunnable/kRunning/kPlacing, machine-wide.
  // Maintained incrementally; used by the underload metric.
  int runnable_tasks() const { return runnable_tasks_; }

  // ---- Internal operations exposed for load-balancer reuse and tests. ----

  // Migrates a *queued* task from its run queue to `dst_cpu` (load-balancer
  // pull). The task must be kRunnable and queued. The caller must follow up
  // with KickIfIdle(dst_cpu) unless it is already inside the destination's
  // scheduling path.
  void MigrateQueued(Task* task, int dst_cpu,
                     MigrationReason reason = MigrationReason::kPolicy);

  // Forwards a nest membership transition to the observers. Called by
  // NestPolicy (the policy has no observer list of its own).
  void NotifyNestEvent(NestEventKind kind, int cpu);

  // Dispatches the destination CPU if it is idle with queued work (used after
  // policy-driven migrations, e.g. Smove's fallback timer).
  void KickIfIdle(int cpu);

 private:
  struct CpuState {
    RunQueue rq;
    bool spinning = false;          // Nest warm-spin in the idle loop
    EventId spin_end = kInvalidEventId;
    SimTime idle_since = 0;         // when the CPU last became idle
    uint64_t dispatch_gen = 0;      // cancels stale delayed dispatches
    bool online = true;             // false while failed (src/fault/)
  };

  // Replica-quorum bookkeeping for injected tasks (src/fault/).
  struct ReplicaGroup {
    std::vector<Task*> members;
    int quorum = 1;
    int completions = 0;
    bool reaped = false;
  };

  // -- Task lifecycle --
  Task* NewTask(ProgramPtr program, std::string name, int tag, Task* parent);
  void ForkChild(Task& parent, ProgramPtr program);
  void WakeTask(Task* task, int waker_cpu, bool sync);
  void PlaceTask(Task* task, int cpu, bool is_fork);
  void EnqueueTask(Task* task, int cpu, bool wakeup);
  void BlockCurrent(int cpu, BlockReason reason);
  void ExitCurrent(int cpu);

  // -- CPU scheduling --
  void ScheduleCpu(int cpu);           // pick next / go idle
  void StartRunning(Task* task, int cpu);
  // Dispatch-time cache-warmth accounting (warm/cold classification, cross-
  // LLC charge + reset). Only called when TracksCacheWarmth().
  void AccountCacheWarmth(Task* task, int cpu, SimTime now);
  void StopRunning(int cpu, bool requeue);  // preemption or yield
  void MaybePreempt(int cpu, Task* enqueued);
  void EnterIdle(int cpu);
  void StopSpin(int cpu, bool because_busy);

  // -- Execution engine --
  void ExecuteTask(int cpu);           // interpret ops until block/run/exit
  void BeginComputeSegment(int cpu);   // schedule completion of remaining_work
  void OnComputeComplete(int cpu, Task* task);
  void UpdateCurr(int cpu);            // account partial progress
  void OnSpeedChange(int cpu);

  // -- Program interpreter helpers --
  // Advances past non-blocking ops; returns when the task has compute work
  // (remaining_work > 0), blocked, or died.
  void InterpretOps(int cpu, Task* task);
  bool ArriveBarrier(Task* task, int id, int cpu);
  bool RecvMessage(Task* task, int id, int cpu);
  void SendMessage(Task* task, int id, int cpu);

  // -- Tick & balancing --
  void Tick();
  void NewIdleBalance(int cpu);
  void PeriodicBalance();
  Task* FindStealableTask(int dst_cpu, bool same_die_only, bool ignore_hotness);

  void SetRunnableDelta(int delta) { runnable_tasks_ += delta; }
  double GovernorRequestGhz(int cpu);
  void NotifyContextSwitch(int cpu, const Task* prev, const Task* next);

  // -- Fault machinery (src/fault/) --
  // Lowest-numbered online CPU: the deterministic redirect target when a
  // placement's chosen CPU went offline in flight.
  int FallbackOnlineCpu() const;
  // One injected task (replica-aware wrapper body of InjectTask).
  Task* InjectOne(ProgramPtr program, std::string name, int tag, int replica_group);
  // Exit-side replica accounting: counts completions, fires the quorum join,
  // and schedules the reap of losing copies.
  void HandleReplicaExit(Task* task, int cpu);

  // Re-derives `cpu`'s bits in idle_cpus_/overloaded_cpus_ from its run
  // queue. Must run after every Enqueue/Dequeue/set_curr and before the
  // observer notifications that follow (the work-conservation metric samples
  // the masks from inside those callbacks). Offline CPUs are pinned out of
  // both masks: they are neither idle (work conservation must not expect
  // them to pull) nor overloaded (their queues are drained).
  void UpdateCpuMasks(int cpu) {
    const CpuState& cs = cpus_[cpu];
    idle_cpus_.Assign(cpu, cs.online && cs.rq.Idle());
    overloaded_cpus_.Assign(cpu, cs.online && cs.rq.QueuedCount() > 0);
  }

  // Observers subscribed to `event` (one ObserverEvent bit), in registration
  // order.
  const std::vector<KernelObserver*>& observers_for(ObserverEvent event) const {
    return dispatch_[std::countr_zero(static_cast<uint32_t>(event))];
  }

  Engine* engine_;
  HardwareModel* hw_;
  SchedulerPolicy* policy_;
  Governor* governor_;
  Params params_;
  DomainTree domains_;
  SyncRegistry sync_;

  std::vector<CpuState> cpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<KernelObserver*> observers_;
  // Per-event dispatch lists, indexed by ObserverEvent bit position.
  std::array<std::vector<KernelObserver*>, kNumObserverEvents> dispatch_;
  CpuMask overloaded_cpus_;  // cpus with queued (waiting) tasks
  CpuMask idle_cpus_;        // cpus with nothing running or queued
  std::vector<SimTime> task_enqueue_time_;  // by tid; for steal_min_wait

  int next_tid_ = 1;
  bool cache_tracking_ = false;  // params_.cache.enabled() || policy wants it
  uint64_t enqueue_count_ = 0;  // drives the test_skip_enqueue_dispatch hook
  int online_cpus_ = 0;          // count of online CPUs (== num_cpus unless faults)
  int injection_replicas_ = 1;   // copies per InjectTask (1 == off)
  int injection_quorum_ = 1;     // completions that win a replica group
  std::vector<ReplicaGroup> replica_groups_;  // indexed by Task::replica_group
  int root_cpu_ = -1;
  int pending_injections_ = 0;
  int live_tasks_ = 0;
  int runnable_tasks_ = 0;
  uint64_t context_switches_ = 0;
  uint64_t migrations_ = 0;
  bool started_ = false;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_KERNEL_H_
