// Scheduling-domain hierarchy (paper §2.1).
//
// On the modelled machines the levels, highest to lowest, are:
//   NUMA — all CPUs; its groups are the sockets,
//   DIE  — the CPUs of one socket; its groups are the physical cores,
//   SMT  — the CPUs of one physical core; its groups are single CPUs.
// Each CPU is associated with the chain of domains containing it. CFS's fork
// path descends this hierarchy group by group.

#ifndef NESTSIM_SRC_KERNEL_DOMAINS_H_
#define NESTSIM_SRC_KERNEL_DOMAINS_H_

#include <vector>

#include "src/hw/topology.h"

namespace nestsim {

enum class DomainLevel { kSmt = 0, kDie = 1, kNuma = 2 };

struct SchedGroup {
  std::vector<int> cpus;
};

struct SchedDomain {
  DomainLevel level;
  std::vector<int> span;          // all CPUs covered by this domain
  std::vector<SchedGroup> groups;  // one group per child domain
};

class DomainTree {
 public:
  explicit DomainTree(const Topology& topo);

  // The machine-wide domain (NUMA level, or DIE when there is one socket).
  const SchedDomain& Top() const { return domains_[top_index_]; }

  // The domain at `level` containing `cpu`. Returns nullptr if the machine
  // does not materialise that level (e.g. NUMA on a mono-socket machine).
  const SchedDomain* DomainFor(int cpu, DomainLevel level) const;

  // The child domain of `domain` whose span contains `cpu`, descending one
  // level. Returns nullptr at the bottom.
  const SchedDomain* ChildContaining(const SchedDomain& domain, int cpu) const;

  const std::vector<SchedDomain>& all() const { return domains_; }

 private:
  const Topology* topo_;
  std::vector<SchedDomain> domains_;
  int top_index_ = -1;
  // [level][entity index] -> index into domains_; entity is socket for kDie,
  // physical core for kSmt, 0 for kNuma.
  std::vector<std::vector<int>> index_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_DOMAINS_H_
