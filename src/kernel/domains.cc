#include "src/kernel/domains.h"

namespace nestsim {

DomainTree::DomainTree(const Topology& topo) : topo_(&topo) {
  index_.assign(3, {});

  // SMT domains: one per physical core; groups are single CPUs.
  index_[static_cast<int>(DomainLevel::kSmt)].resize(topo.num_physical_cores());
  for (int phys = 0; phys < topo.num_physical_cores(); ++phys) {
    SchedDomain d;
    d.level = DomainLevel::kSmt;
    d.span = topo.CpusOfPhysCore(phys);
    for (int cpu : d.span) {
      d.groups.push_back(SchedGroup{{cpu}});
    }
    index_[static_cast<int>(DomainLevel::kSmt)][phys] = static_cast<int>(domains_.size());
    domains_.push_back(std::move(d));
  }

  // DIE domains: one per socket; groups are physical cores.
  index_[static_cast<int>(DomainLevel::kDie)].resize(topo.num_sockets());
  for (int socket = 0; socket < topo.num_sockets(); ++socket) {
    SchedDomain d;
    d.level = DomainLevel::kDie;
    d.span = topo.CpusOnSocket(socket);
    for (int first : topo.FirstThreadsOnSocket(socket)) {
      d.groups.push_back(SchedGroup{topo.CpusOfPhysCore(topo.PhysCoreOf(first))});
    }
    index_[static_cast<int>(DomainLevel::kDie)][socket] = static_cast<int>(domains_.size());
    domains_.push_back(std::move(d));
  }

  // NUMA domain: whole machine, one group per socket. Only materialised on
  // multi-socket machines, as in Linux.
  if (topo.num_sockets() > 1) {
    SchedDomain d;
    d.level = DomainLevel::kNuma;
    for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      d.span.push_back(cpu);
    }
    for (int socket = 0; socket < topo.num_sockets(); ++socket) {
      d.groups.push_back(SchedGroup{topo.CpusOnSocket(socket)});
    }
    index_[static_cast<int>(DomainLevel::kNuma)].push_back(static_cast<int>(domains_.size()));
    top_index_ = static_cast<int>(domains_.size());
    domains_.push_back(std::move(d));
  } else {
    top_index_ = index_[static_cast<int>(DomainLevel::kDie)][0];
  }
}

const SchedDomain* DomainTree::DomainFor(int cpu, DomainLevel level) const {
  switch (level) {
    case DomainLevel::kSmt:
      return &domains_[index_[0][topo_->PhysCoreOf(cpu)]];
    case DomainLevel::kDie:
      return &domains_[index_[1][topo_->SocketOf(cpu)]];
    case DomainLevel::kNuma:
      if (index_[2].empty()) {
        return nullptr;
      }
      return &domains_[index_[2][0]];
  }
  return nullptr;
}

const SchedDomain* DomainTree::ChildContaining(const SchedDomain& domain, int cpu) const {
  switch (domain.level) {
    case DomainLevel::kNuma:
      return DomainFor(cpu, DomainLevel::kDie);
    case DomainLevel::kDie:
      return DomainFor(cpu, DomainLevel::kSmt);
    case DomainLevel::kSmt:
      return nullptr;
  }
  return nullptr;
}

}  // namespace nestsim
