// Synchronisation objects connecting tasks: message channels and barriers.
//
// These generate the wakeup patterns the paper's workloads exhibit —
// hackbench's message ping-pong, NAS's OpenMP barriers, DaCapo's worker
// handoffs. The kernel owns one registry per simulation.

#ifndef NESTSIM_SRC_KERNEL_SYNC_H_
#define NESTSIM_SRC_KERNEL_SYNC_H_

#include <deque>
#include <unordered_map>
#include <vector>

namespace nestsim {

struct Task;

// An unbounded message queue. Senders never block; receivers block when no
// message is pending. Receivers are woken FIFO.
struct Channel {
  int pending_messages = 0;
  std::deque<Task*> waiting_receivers;
};

// A reusable (cyclic) barrier for a fixed number of parties.
struct SyncBarrier {
  int parties = 0;
  std::vector<Task*> waiting;
};

class SyncRegistry {
 public:
  // Channels are created on first use.
  Channel& GetChannel(int id) { return channels_[id]; }

  // Barriers must be declared with their party count before use.
  void CreateBarrier(int id, int parties);
  SyncBarrier& GetBarrier(int id);

  // Removes a dead task from every wait list (defensive; normally tasks
  // cannot die while blocked).
  void ForgetTask(Task* task);

 private:
  std::unordered_map<int, Channel> channels_;
  std::unordered_map<int, SyncBarrier> barriers_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_SYNC_H_
