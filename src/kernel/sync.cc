#include "src/kernel/sync.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace nestsim {

void SyncRegistry::CreateBarrier(int id, int parties) {
  assert(parties > 0);
  SyncBarrier& barrier = barriers_[id];
  barrier.parties = parties;
  barrier.waiting.clear();
}

SyncBarrier& SyncRegistry::GetBarrier(int id) {
  auto it = barriers_.find(id);
  if (it == barriers_.end()) {
    std::fprintf(stderr, "nestsim: barrier %d used before CreateBarrier\n", id);
    std::abort();
  }
  return it->second;
}

void SyncRegistry::ForgetTask(Task* task) {
  for (auto& [id, channel] : channels_) {
    (void)id;
    auto& waiters = channel.waiting_receivers;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), task), waiters.end());
  }
  for (auto& [id, barrier] : barriers_) {
    (void)id;
    auto& waiting = barrier.waiting;
    waiting.erase(std::remove(waiting.begin(), waiting.end(), task), waiting.end());
  }
}

}  // namespace nestsim
