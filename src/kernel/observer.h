// Observation hooks for metrics and experiment drivers.
//
// Observers are notified synchronously from inside the kernel; they must not
// mutate scheduler state. Everything the metrics module computes (underload,
// frequency residency, traces, energy alignment) hangs off these callbacks.

#ifndef NESTSIM_SRC_KERNEL_OBSERVER_H_
#define NESTSIM_SRC_KERNEL_OBSERVER_H_

#include "src/kernel/task.h"
#include "src/sim/time.h"

namespace nestsim {

class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  virtual void OnTaskCreated(SimTime now, const Task& task) {
    (void)now;
    (void)task;
  }

  // A task became runnable (enqueued) on `cpu`.
  virtual void OnTaskEnqueued(SimTime now, const Task& task, int cpu) {
    (void)now;
    (void)task;
    (void)cpu;
  }

  // `cpu` switched from `prev` (may be nullptr == idle) to `next` (may be
  // nullptr == going idle).
  virtual void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) {
    (void)now;
    (void)cpu;
    (void)prev;
    (void)next;
  }

  // A running CPU's effective speed changed (frequency ramp or SMT sibling).
  virtual void OnCpuSpeedChange(SimTime now, int cpu) {
    (void)now;
    (void)cpu;
  }

  // A task blocked (left the CPU voluntarily).
  virtual void OnTaskBlocked(SimTime now, const Task& task, int cpu) {
    (void)now;
    (void)task;
    (void)cpu;
  }

  virtual void OnTaskExit(SimTime now, const Task& task) {
    (void)now;
    (void)task;
  }

  // Scheduler tick boundary (after per-CPU accounting ran).
  virtual void OnTick(SimTime now) { (void)now; }
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_OBSERVER_H_
