// Observation hooks for metrics and experiment drivers.
//
// Observers are notified synchronously from inside the kernel; they must not
// mutate scheduler state. Everything the metrics module computes (underload,
// frequency residency, traces, energy alignment) hangs off these callbacks.

#ifndef NESTSIM_SRC_KERNEL_OBSERVER_H_
#define NESTSIM_SRC_KERNEL_OBSERVER_H_

#include "src/kernel/task.h"
#include "src/sim/time.h"

namespace nestsim {

// Why a queued task was migrated between run queues.
enum class MigrationReason {
  kNewIdlePull,   // newly idle CPU pulled a waiter
  kPeriodicPull,  // periodic balancing pass pulled a waiter
  kPolicy,        // policy-driven move (e.g. Smove's fallback timer)
};

inline const char* MigrationReasonName(MigrationReason reason) {
  switch (reason) {
    case MigrationReason::kNewIdlePull:
      return "newidle_pull";
    case MigrationReason::kPeriodicPull:
      return "periodic_pull";
    case MigrationReason::kPolicy:
      return "policy";
  }
  return "?";
}

// Nest membership transitions (paper §3.1), surfaced by NestPolicy through
// Kernel::NotifyNestEvent.
enum class NestEventKind {
  kPromote,      // core entered the primary nest
  kDemote,       // core left the primary nest (task exit left it idle)
  kCompact,      // core left the primary nest via compaction (idle ≥ P_remove)
  kReserveAdd,   // core entered the reserve nest
  kReserveFull,  // candidate core dropped because the reserve was at R_max
};

inline const char* NestEventKindName(NestEventKind kind) {
  switch (kind) {
    case NestEventKind::kPromote:
      return "promote";
    case NestEventKind::kDemote:
      return "demote";
    case NestEventKind::kCompact:
      return "compact";
    case NestEventKind::kReserveAdd:
      return "reserve_add";
    case NestEventKind::kReserveFull:
      return "reserve_full";
  }
  return "?";
}

// Cache-warmth dispatch outcomes (src/hw/cache_model.h), surfaced by the
// kernel when a task starts running with warmth tracking enabled.
enum class CacheEventKind {
  kWarmHit,            // dispatched onto an LLC where its warmth >= threshold
  kColdMiss,           // dispatched onto an LLC where its warmth < threshold
  kCrossDieMigration,  // resumed on a different LLC; paid the migration cost
};

inline const char* CacheEventKindName(CacheEventKind kind) {
  switch (kind) {
    case CacheEventKind::kWarmHit:
      return "warm_hit";
    case CacheEventKind::kColdMiss:
      return "cold_miss";
    case CacheEventKind::kCrossDieMigration:
      return "cross_die_migration";
  }
  return "?";
}

// Fault-injection transitions (src/fault/), surfaced by the kernel when a
// fault plan offlines/onlines cores or the cluster runner crashes a machine.
enum class FaultEventKind {
  kCoreOffline,       // core failed; its run queue was evacuated
  kCoreOnline,        // core repaired; re-joined placement
  kMachineCrash,      // whole machine failed (cluster runs)
  kTaskEvacuated,     // a displaced task was re-placed (fault_evacuate path)
  kTaskKilled,        // a task died with the core/machine (work lost)
  kReplicaQuorumJoin, // a replica group reached its quorum
  kReplicaReaped,     // a losing replica was reaped after quorum
};

inline const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kCoreOffline:
      return "core_offline";
    case FaultEventKind::kCoreOnline:
      return "core_online";
    case FaultEventKind::kMachineCrash:
      return "machine_crash";
    case FaultEventKind::kTaskEvacuated:
      return "task_evacuated";
    case FaultEventKind::kTaskKilled:
      return "task_killed";
    case FaultEventKind::kReplicaQuorumJoin:
      return "replica_quorum_join";
    case FaultEventKind::kReplicaReaped:
      return "replica_reaped";
  }
  return "?";
}

// One bit per KernelObserver callback. The kernel keeps a dispatch list per
// event, built from each observer's InterestMask() at registration, so firing
// a callback only walks observers that actually override it — an event nobody
// subscribed to costs one empty-vector check.
enum ObserverEvent : uint32_t {
  kObsTaskCreated = 1u << 0,
  kObsTaskEnqueued = 1u << 1,
  kObsContextSwitch = 1u << 2,
  kObsCpuSpeedChange = 1u << 3,
  kObsTaskBlocked = 1u << 4,
  kObsTaskExit = 1u << 5,
  kObsTick = 1u << 6,
  kObsTaskPlaced = 1u << 7,
  kObsReservationCollision = 1u << 8,
  kObsTaskMigrated = 1u << 9,
  kObsNestEvent = 1u << 10,
  kObsIdleSpinStart = 1u << 11,
  kObsIdleSpinEnd = 1u << 12,
  kObsCoreFreqChange = 1u << 13,
  kObsCacheEvent = 1u << 14,
  kObsFaultEvent = 1u << 15,
  kObsBudgetState = 1u << 16,
};

inline constexpr int kNumObserverEvents = 17;
inline constexpr uint32_t kObsAllEvents = (1u << kNumObserverEvents) - 1;

class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  // Which callbacks this observer wants, as an OR of ObserverEvent bits.
  // Consulted once, when the observer is added to the kernel. The default
  // subscribes to everything so subclasses that don't override it (tests,
  // one-off probes) keep working; the built-in observers narrow it to what
  // they implement.
  virtual uint32_t InterestMask() const { return kObsAllEvents; }

  virtual void OnTaskCreated(SimTime now, const Task& task) {
    (void)now;
    (void)task;
  }

  // A task became runnable (enqueued) on `cpu`.
  virtual void OnTaskEnqueued(SimTime now, const Task& task, int cpu) {
    (void)now;
    (void)task;
    (void)cpu;
  }

  // `cpu` switched from `prev` (may be nullptr == idle) to `next` (may be
  // nullptr == going idle).
  virtual void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) {
    (void)now;
    (void)cpu;
    (void)prev;
    (void)next;
  }

  // A running CPU's effective speed changed (frequency ramp or SMT sibling).
  virtual void OnCpuSpeedChange(SimTime now, int cpu) {
    (void)now;
    (void)cpu;
  }

  // A task blocked (left the CPU voluntarily).
  virtual void OnTaskBlocked(SimTime now, const Task& task, int cpu) {
    (void)now;
    (void)task;
    (void)cpu;
  }

  virtual void OnTaskExit(SimTime now, const Task& task) {
    (void)now;
    (void)task;
  }

  // Scheduler tick boundary (after per-CPU accounting ran).
  virtual void OnTick(SimTime now) { (void)now; }

  // ---- Decision-level hooks (src/obs/). ----

  // The policy selected `cpu` for a fork or wakeup placement; the enqueue is
  // now in flight (§3.4 window). `task.placement_path` says which policy code
  // path decided. Fired for SpawnInitial too (path == kInitial).
  virtual void OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) {
    (void)now;
    (void)task;
    (void)cpu;
    (void)is_fork;
  }

  // A reservation-aware policy chose `cpu` but the run queue was already
  // claimed by another in-flight placement — the collision the §3.4 flag
  // could not prevent.
  virtual void OnReservationCollision(SimTime now, const Task& task, int cpu) {
    (void)now;
    (void)task;
    (void)cpu;
  }

  // A *queued* task moved between run queues (load balancing or policy).
  virtual void OnTaskMigrated(SimTime now, const Task& task, int from_cpu, int to_cpu,
                              MigrationReason reason) {
    (void)now;
    (void)task;
    (void)from_cpu;
    (void)to_cpu;
    (void)reason;
  }

  // Nest membership transition on `cpu` (promotion/demotion/compaction/...).
  virtual void OnNestEvent(SimTime now, NestEventKind kind, int cpu) {
    (void)now;
    (void)kind;
    (void)cpu;
  }

  // The idle loop on `cpu` started a policy-driven warm spin for up to
  // `max_ticks` ticks (§3.2).
  virtual void OnIdleSpinStart(SimTime now, int cpu, int max_ticks) {
    (void)now;
    (void)cpu;
    (void)max_ticks;
  }

  // The warm spin on `cpu` ended. `became_busy` is true when a task started
  // running there (the spin paid off); false when the spin expired or the SMT
  // sibling became busy.
  virtual void OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) {
    (void)now;
    (void)cpu;
    (void)became_busy;
  }

  // The DVFS state machine moved physical core `phys_core` to `freq_ghz`
  // (ramps, instant arrival grants, idle decay — busy or not).
  virtual void OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) {
    (void)now;
    (void)phys_core;
    (void)freq_ghz;
  }

  // Cache-warmth outcome of a dispatch: `task` started running on `cpu` with
  // warmth `warmth` on the destination LLC. Only fired when warmth tracking
  // is active (src/hw/cache_model.h); a cross-die resume fires
  // kCrossDieMigration *and* its warm-hit/cold-miss classification.
  virtual void OnCacheEvent(SimTime now, const Task& task, CacheEventKind kind, int cpu,
                            double warmth) {
    (void)now;
    (void)task;
    (void)kind;
    (void)cpu;
    (void)warmth;
  }

  // Fault-injection transition (src/fault/). `cpu` is the affected logical
  // CPU (-1 for machine-level events); `task` is the displaced/killed/joined
  // task for the task-level kinds, nullptr otherwise.
  virtual void OnFaultEvent(SimTime now, FaultEventKind kind, int cpu, const Task* task) {
    (void)now;
    (void)kind;
    (void)cpu;
    (void)task;
  }

  // Per-socket energy-budget state, sampled at every scheduler tick while a
  // budget governor is active. `headroom_w` is budget minus the socket's
  // current power draw (negative == over budget); `throttled` says the
  // governor is currently scaling frequency requests down on this socket.
  virtual void OnBudgetState(SimTime now, int socket, double headroom_w, bool throttled) {
    (void)now;
    (void)socket;
    (void)headroom_w;
    (void)throttled;
  }
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_OBSERVER_H_
