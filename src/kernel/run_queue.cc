#include "src/kernel/run_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nestsim {

void RunQueue::Enqueue(Task* task) {
  auto [it, inserted] = queue_.insert({task->vruntime, task});
  (void)it;
  assert(inserted && "task already queued");
  UpdateMinVruntime();
}

void RunQueue::Dequeue(Task* task) {
  const size_t erased = queue_.erase({task->vruntime, task});
  assert(erased == 1 && "task not queued");
  (void)erased;
  UpdateMinVruntime();
}

bool RunQueue::Queued(const Task* task) const {
  return queue_.count({task->vruntime, const_cast<Task*>(task)}) != 0;
}

Task* RunQueue::Leftmost() const { return queue_.empty() ? nullptr : queue_.begin()->second; }

Task* RunQueue::Rightmost() const { return queue_.empty() ? nullptr : queue_.rbegin()->second; }

std::vector<Task*> RunQueue::QueuedTasks() const {
  std::vector<Task*> out;
  out.reserve(queue_.size());
  for (const auto& [v, task] : queue_) {
    (void)v;
    out.push_back(task);
  }
  return out;
}

void RunQueue::UpdateMinVruntime() {
  double candidate = min_vruntime_;
  if (curr_ != nullptr) {
    candidate = std::max(candidate, curr_->vruntime);
    if (!queue_.empty()) {
      candidate = std::max(min_vruntime_, std::min(curr_->vruntime, queue_.begin()->first));
    }
  } else if (!queue_.empty()) {
    candidate = std::max(min_vruntime_, queue_.begin()->first);
  }
  min_vruntime_ = candidate;
}

double RunQueue::PlacementLoad(SimTime now) const {
  const SimDuration dt = now - placement_update_;
  if (dt <= 0) {
    return placement_load_;
  }
  return placement_load_ * std::exp2(-static_cast<double>(dt) / static_cast<double>(kPlacementHalfLife));
}

bool RunQueue::TryClaim(SimTime now) {
  if (claimed_ && now - claim_time_ < kClaimTimeout) {
    return false;
  }
  claimed_ = true;
  claim_time_ = now;
  return true;
}

}  // namespace nestsim
