#include "src/kernel/run_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nestsim {

void RunQueue::Enqueue(Task* task) {
  auto [it, inserted] = queue_.insert({task->vruntime, task});
  (void)it;
  assert(inserted && "task already queued");
  if (leftmost_ == nullptr ||
      ByVruntime()({task->vruntime, task}, {leftmost_->vruntime, leftmost_})) {
    leftmost_ = task;
  }
  UpdateMinVruntime();
}

void RunQueue::Dequeue(Task* task) {
  const size_t erased = queue_.erase({task->vruntime, task});
  assert(erased == 1 && "task not queued");
  (void)erased;
  if (task == leftmost_) {
    leftmost_ = queue_.empty() ? nullptr : queue_.begin()->second;
  }
  UpdateMinVruntime();
}

bool RunQueue::Queued(const Task* task) const {
  return queue_.count({task->vruntime, const_cast<Task*>(task)}) != 0;
}

Task* RunQueue::Rightmost() const { return queue_.empty() ? nullptr : queue_.rbegin()->second; }

std::vector<Task*> RunQueue::QueuedTasks() const {
  std::vector<Task*> out;
  out.reserve(queue_.size());
  for (const auto& [v, task] : queue_) {
    (void)v;
    out.push_back(task);
  }
  return out;
}

void RunQueue::UpdateMinVruntime() {
  // leftmost_->vruntime is exactly queue_.begin()->first, without the tree
  // descent; this runs after every enqueue/dequeue.
  double candidate = min_vruntime_;
  if (curr_ != nullptr) {
    candidate = std::max(candidate, curr_->vruntime);
    if (leftmost_ != nullptr) {
      candidate = std::max(min_vruntime_, std::min(curr_->vruntime, leftmost_->vruntime));
    }
  } else if (leftmost_ != nullptr) {
    candidate = std::max(min_vruntime_, leftmost_->vruntime);
  }
  min_vruntime_ = candidate;
}

double RunQueue::DecayedPlacementLoad(SimDuration dt) const {
  return placement_load_ * std::exp2(-static_cast<double>(dt) / static_cast<double>(kPlacementHalfLife));
}

bool RunQueue::TryClaim(SimTime now) {
  if (claimed_ && now - claim_time_ < kClaimTimeout) {
    return false;
  }
  claimed_ = true;
  claim_time_ = now;
  return true;
}

}  // namespace nestsim
