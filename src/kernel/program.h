// Task programs: the behaviour scripts that simulated tasks execute.
//
// A program is a flat list of ops interpreted by the kernel. Compute work is
// expressed in "GHz-nanoseconds": a compute op of work W takes W / f
// nanoseconds on a core running at f GHz (times the SMT sharing factor). This
// makes workload definitions machine-independent while letting frequency
// drive performance, which is the paper's whole subject.
//
// Blocking ops (sleep, recv on an empty channel, barrier, join) release the
// CPU; the scheduler's wakeup path then chooses where the task resumes —
// exactly the decision Nest changes.

#ifndef NESTSIM_SRC_KERNEL_PROGRAM_H_
#define NESTSIM_SRC_KERNEL_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace nestsim {

struct Program;
using ProgramPtr = std::shared_ptr<const Program>;

enum class OpKind {
  kCompute,       // run for `work` GHz-ns
  kSleep,         // block for `duration`
  kFork,          // spawn a child task running `child`
  kJoinChildren,  // block until at most `id` live children remain
  kBarrier,       // block on barrier `id` until all its parties arrive
  kSend,          // post one message to channel `id`, waking one receiver
  kRecv,          // consume one message from channel `id`, blocking if empty
  kLoopBegin,     // repeat the ops up to the matching kLoopEnd `count` times
  kLoopEnd,
  kExit,          // terminate the task (implicit at end of program)
};

struct Op {
  OpKind kind = OpKind::kExit;
  double work = 0.0;          // kCompute: GHz-ns
  SimDuration duration = 0;   // kSleep
  ProgramPtr child;           // kFork
  int id = 0;                 // kBarrier/kSend/kRecv channel or barrier id
  int count = 0;              // kLoopBegin iterations
};

struct Program {
  std::string name;
  std::vector<Op> ops;
};

// Fluent builder. Loops nest; Build() validates loop pairing.
//
//   ProgramBuilder b("worker");
//   b.Loop(100).ComputeMs(1.0).Barrier(0).EndLoop();
//   ProgramPtr p = b.Build();
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

  // `work` in GHz-ns: 1e6 == 1 ms at 1 GHz.
  ProgramBuilder& Compute(double work_ghz_ns);
  // Convenience: compute sized to take `ms` milliseconds at `ghz` GHz.
  ProgramBuilder& ComputeMsAt(double ms, double ghz);
  // Compute sized in milliseconds at the calibration frequency (3.0 GHz) —
  // roughly "milliseconds of runtime on a warm server core".
  ProgramBuilder& ComputeMs(double ms) { return ComputeMsAt(ms, kCalibrationGhz); }
  ProgramBuilder& ComputeUs(double us) { return ComputeMsAt(us / 1000.0, kCalibrationGhz); }

  ProgramBuilder& Sleep(SimDuration d);
  ProgramBuilder& SleepMs(double ms) { return Sleep(MillisecondsF(ms)); }
  ProgramBuilder& Fork(ProgramPtr child);
  // Blocks until at most `remaining` children are still alive (0 = all
  // children exited). A non-zero threshold lets a parent reap a batch while
  // long-lived service children keep running.
  ProgramBuilder& JoinChildren(int remaining = 0);
  ProgramBuilder& Barrier(int barrier_id);
  ProgramBuilder& Send(int channel_id);
  ProgramBuilder& Recv(int channel_id);
  ProgramBuilder& Loop(int count);
  ProgramBuilder& EndLoop();
  ProgramBuilder& Exit();

  // Snapshots the current op list into an immutable program; the builder
  // remains usable (and may be Built repeatedly, e.g. one program per
  // worker). Aborts on unbalanced Loop/EndLoop.
  ProgramPtr Build();

  static constexpr double kCalibrationGhz = 3.0;

 private:
  std::string name_;
  std::vector<Op> ops_;
  int open_loops_ = 0;
};

// Total compute work (GHz-ns) in a program, descending into forked children
// and multiplying through loops. Useful for sanity checks in tests.
double TotalWork(const Program& program);

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_PROGRAM_H_
