// Fixed-size CPU bitmask.
//
// The kernel tracks which CPUs are idle and which have waiting tasks. Those
// sets used to be a std::set<int>, which put a red-black-tree walk (and a
// node allocation) on the enqueue/dequeue path; a four-word bitmask makes
// membership updates single-bit stores, emptiness a word OR, and iteration a
// countr_zero loop that visits CPUs in ascending order — the same order the
// std::set iterated, which load balancing depends on.

#ifndef NESTSIM_SRC_KERNEL_CPU_MASK_H_
#define NESTSIM_SRC_KERNEL_CPU_MASK_H_

#include <bit>
#include <cstdint>

namespace nestsim {

class CpuMask {
 public:
  // Largest machine in src/hw/machine_spec.cc is 160 CPUs; leave headroom.
  static constexpr int kMaxCpus = 256;

  void Set(int cpu) { words_[Word(cpu)] |= Bit(cpu); }
  void Clear(int cpu) { words_[Word(cpu)] &= ~Bit(cpu); }
  void Assign(int cpu, bool value) {
    if (value) {
      Set(cpu);
    } else {
      Clear(cpu);
    }
  }

  bool Test(int cpu) const { return (words_[Word(cpu)] & Bit(cpu)) != 0; }

  bool Any() const { return (words_[0] | words_[1] | words_[2] | words_[3]) != 0; }
  bool Empty() const { return !Any(); }

  int Count() const {
    return std::popcount(words_[0]) + std::popcount(words_[1]) + std::popcount(words_[2]) +
           std::popcount(words_[3]);
  }

  // Ascending-order iteration: for (int cpu : mask) { ... }
  class Iterator {
   public:
    Iterator(const uint64_t* words, int word) : words_(words), word_(word) { Advance(); }

    int operator*() const { return word_ * 64 + std::countr_zero(current_); }

    Iterator& operator++() {
      current_ &= current_ - 1;  // clear lowest set bit
      Advance();
      return *this;
    }

    bool operator!=(const Iterator& other) const {
      return word_ != other.word_ || current_ != other.current_;
    }

   private:
    void Advance() {
      while (current_ == 0 && word_ < kWords) {
        if (++word_ < kWords) {
          current_ = words_[word_];
        }
      }
    }

    const uint64_t* words_;
    int word_;
    uint64_t current_ = 0;
  };

  Iterator begin() const { return Iterator(words_, -1); }
  Iterator end() const { return Iterator(words_, kWords); }

 private:
  static constexpr int kWords = 4;
  static int Word(int cpu) { return cpu >> 6; }
  static uint64_t Bit(int cpu) { return uint64_t{1} << (cpu & 63); }

  uint64_t words_[kWords] = {0, 0, 0, 0};
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_CPU_MASK_H_
