// The scheduler-policy interface: core selection plus the hooks Nest needs.
//
// The kernel owns the mechanism (run queues, ticks, context switches, load
// balancing); a SchedulerPolicy owns the *core selection* decisions made on
// fork and wakeup, which is where CFS, Nest, and Smove differ. The extra
// hooks exist because Nest also reacts to task placement, task exit, idle
// entry, and ticks (paper §3).

#ifndef NESTSIM_SRC_KERNEL_POLICY_H_
#define NESTSIM_SRC_KERNEL_POLICY_H_

#include "src/kernel/task.h"

namespace nestsim {

class Kernel;

// Context for a wakeup-time core selection.
struct WakeContext {
  int waker_cpu = -1;  // CPU performing the wakeup (timer, exiting child, sender)
  bool sync = false;   // the waker is about to block (WF_SYNC-style hint)
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  // Called once, before the simulation starts.
  virtual void Attach(Kernel* kernel) { kernel_ = kernel; }

  virtual const char* name() const = 0;

  // Chooses the CPU for a newly forked task. `parent_cpu` is where the parent
  // is running.
  virtual int SelectCpuFork(Task& child, int parent_cpu) = 0;

  // Chooses the CPU for a waking task.
  virtual int SelectCpuWake(Task& task, const WakeContext& ctx) = 0;

  // The task landed on `cpu` (enqueue completed).
  virtual void OnTaskEnqueued(Task& task, int cpu) {
    (void)task;
    (void)cpu;
  }

  // The task exited while running on `cpu`.
  virtual void OnTaskExit(Task& task, int cpu) {
    (void)task;
    (void)cpu;
  }

  // `cpu` has no runnable task left and is entering the idle loop. Returns
  // the number of ticks the idle loop should *spin* (keeping the core active
  // for the hardware) before entering a sleep state; 0 disables spinning.
  virtual int IdleSpinTicks(int cpu) {
    (void)cpu;
    return 0;
  }

  // Scheduler tick (once per kTickPeriod, machine-wide).
  virtual void OnTick() {}

  // `cpu` was taken offline by a fault (src/fault/): its queue has been
  // evacuated and the kernel will refuse to place work there. Policies that
  // keep per-core membership (Nest's nests) must drop the core here.
  virtual void OnCpuOffline(int cpu) { (void)cpu; }

  // `cpu` came back online; selectable again. No membership is restored —
  // the core re-earns its way into any policy structure.
  virtual void OnCpuOnline(int cpu) { (void)cpu; }

  // Whether core selection claims the chosen run queue until the enqueue
  // lands (the compare-and-swap placement flag of §3.4).
  virtual bool UsesPlacementReservation() const { return false; }

  // Whether the kernel must maintain per-task LLC warmth even when the cache
  // model's behavioural knobs are neutral (src/hw/cache_model.h). Policies
  // that read warmth for placement (NestCache) return true; the default
  // keeps warmth bookkeeping entirely off the hot paths.
  virtual bool WantsCacheWarmth() const { return false; }

  // Read-only introspection of per-core policy membership, for the decision
  // exporter (src/predict/): 2 = primary nest (or oracle warm pool), 1 =
  // reserve nest, 0 = neither. Policies without a mask keep the default.
  virtual int NestMembership(int cpu) const {
    (void)cpu;
    return 0;
  }

 protected:
  Kernel* kernel_ = nullptr;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_POLICY_H_
