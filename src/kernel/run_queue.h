// Per-CPU run queue with CFS virtual-runtime ordering.
//
// Also carries the per-CPU utilisation signal (the input to schedutil and to
// CFS's load heuristics) and the placement-reservation flag of paper §3.4.

#ifndef NESTSIM_SRC_KERNEL_RUN_QUEUE_H_
#define NESTSIM_SRC_KERNEL_RUN_QUEUE_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/kernel/pelt.h"
#include "src/kernel/task.h"

namespace nestsim {

class RunQueue {
 public:
  RunQueue() = default;

  // ---- Queue of runnable (not running) tasks, ordered by vruntime. ----

  void Enqueue(Task* task);
  void Dequeue(Task* task);
  bool Queued(const Task* task) const;

  // The queued task with the smallest vruntime, or nullptr. O(1): the
  // leftmost task is cached across Enqueue/Dequeue (vruntime is immutable
  // while a task is queued, so the cache only changes on those two ops).
  Task* Leftmost() const { return leftmost_; }
  // The queued task with the *largest* vruntime (what load balancing steals
  // first: it has waited least recently), or nullptr.
  Task* Rightmost() const;

  // Queued tasks in vruntime order (copy; for the load balancer's candidate
  // scan — queues are short).
  std::vector<Task*> QueuedTasks() const;

  int QueuedCount() const { return static_cast<int>(queue_.size()); }

  // ---- The running task. ----

  Task* curr() const { return curr_; }
  void set_curr(Task* task) { curr_ = task; }

  // Runnable + running.
  int NrRunning() const { return QueuedCount() + (curr_ != nullptr ? 1 : 0); }
  bool Idle() const { return NrRunning() == 0; }

  // ---- vruntime base. ----

  double min_vruntime() const { return min_vruntime_; }
  void UpdateMinVruntime();

  // ---- Placement reservation (paper §3.4). ----
  // A policy that uses reservations claims the CPU at selection time; the
  // claim clears when the enqueue lands. Claims auto-expire via claim_time in
  // case a placement is abandoned.

  bool TryClaim(SimTime now);
  void ClearClaim() { claimed_ = false; }
  bool claimed() const { return claimed_; }

  // How long an unclear claim keeps excluding the CPU. Public so the
  // invariant checker (src/check/) can mirror the claim state machine.
  static constexpr SimDuration kClaimTimeout = 100 * kMicrosecond;

  // ---- Per-CPU utilisation (PELT-ish). ----

  PeltSignal& util() { return util_; }
  const PeltSignal& util() const { return util_; }

  // ---- Placement recency ("runnable load"). ----
  // Every enqueue bumps this by one task-weight; it decays with a ~12 ms
  // half-life. CFS's fork path adds it to the utilisation signal, which is
  // what makes recently used (but now idle) CPUs lose to long-idle ones —
  // the dispersal bias of paper §2.1.

  void BumpPlacement(SimTime now) {
    placement_load_ = PlacementLoad(now) + 1.0;
    placement_update_ = now;
    placement_memo_now_ = -1;  // state changed; drop the cached decay
    ++placement_gen_;
  }
  // Bumped on every placement change; lets callers memoise derived loads per
  // instant (the utilisation signal cannot change twice within one instant —
  // PELT updates are no-ops at dt == 0 — so (now, placement_gen) keys the
  // full load state of this queue).
  uint64_t placement_gen() const { return placement_gen_; }
  // Placement scans ask every candidate CPU for this, often several times at
  // the same instant; cache the last (now -> value) pair so only the first
  // call per instant pays the exp2.
  double PlacementLoad(SimTime now) const {
    // 0 * 2^x == +0.0 for any finite x, so a drained signal skips the exp2.
    if (placement_load_ == 0.0) {
      return placement_load_;
    }
    const SimDuration dt = now - placement_update_;
    if (dt <= 0) {
      return placement_load_;
    }
    if (now == placement_memo_now_) {
      return placement_memo_value_;
    }
    const double value = DecayedPlacementLoad(dt);
    placement_memo_now_ = now;
    placement_memo_value_ = value;
    return value;
  }

 private:
  struct ByVruntime {
    bool operator()(const std::pair<double, Task*>& a, const std::pair<double, Task*>& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second->tid < b.second->tid;
    }
  };

  std::set<std::pair<double, Task*>, ByVruntime> queue_;
  Task* leftmost_ = nullptr;  // == queue_.begin()->second (nullptr if empty)
  Task* curr_ = nullptr;
  double min_vruntime_ = 0.0;
  bool claimed_ = false;
  SimTime claim_time_ = 0;
  PeltSignal util_;
  double DecayedPlacementLoad(SimDuration dt) const;

  double placement_load_ = 0.0;
  SimTime placement_update_ = 0;
  uint64_t placement_gen_ = 0;
  mutable SimTime placement_memo_now_ = -1;
  mutable double placement_memo_value_ = 0.0;

  static constexpr SimDuration kPlacementHalfLife = 10 * kMillisecond;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_RUN_QUEUE_H_
