// The simulated task structure (a pared-down task_struct).

#ifndef NESTSIM_SRC_KERNEL_TASK_H_
#define NESTSIM_SRC_KERNEL_TASK_H_

#include <string>
#include <vector>

#include "src/kernel/pelt.h"
#include "src/kernel/program.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace nestsim {

enum class TaskState {
  kRunnable,  // enqueued on a run queue, waiting for the CPU
  kRunning,   // current task of some CPU
  kBlocked,   // sleeping / waiting on a channel, barrier, or join
  kPlacing,   // woken or forked, core selected, enqueue in flight (§3.4 window)
  kDead,
};

enum class BlockReason { kNone, kSleep, kJoin, kBarrier, kRecv };

// Which policy code path produced a fork/wake placement decision. Set by the
// scheduler policy at selection time, read by the kernel when it notifies
// observers (src/obs/ counts decisions per path and labels trace events).
enum class PlacementPath {
  kUnknown = 0,
  kInitial,          // SpawnInitial's fixed CPU; no policy involved
  kCfsFork,          // CFS find_idlest_group descent
  kCfsWake,          // CFS wake_affine + select_idle_sibling
  kNestPrimary,      // idle unclaimed primary-nest core (§3.1)
  kNestReserve,      // reserve-nest hit, promoted to primary (§3.1)
  kNestAttached,     // 2-deep placement-history attachment (§3.3)
  kNestPrevCore,     // idle previous core outside the nests (§5.4)
  kNestImpatient,    // impatience path: reserve or CFS, straight to primary
  kNestCfsFallback,  // both nests busy; CFS chose, core joins the reserve
  kSmoveParked,      // Smove parked the task on the fast parent/waker core
  kSmoveCfs,         // Smove kept the CFS choice
  kNestCacheWarm,    // NestCache re-anchored the search to the warm LLC
  kFaultEvacuate,    // re-placement of a task displaced by a core failure
  kNestPredicted,    // NestPredict took the model's predicted CPU (src/predict/)
  kNestOracleWarm,   // NestOracle placed inside the replayed warm pool
};

inline constexpr int kNumPlacementPaths = 16;

inline const char* PlacementPathName(PlacementPath path) {
  switch (path) {
    case PlacementPath::kUnknown:
      return "unknown";
    case PlacementPath::kInitial:
      return "initial";
    case PlacementPath::kCfsFork:
      return "cfs_fork";
    case PlacementPath::kCfsWake:
      return "cfs_wake";
    case PlacementPath::kNestPrimary:
      return "nest_primary";
    case PlacementPath::kNestReserve:
      return "nest_reserve";
    case PlacementPath::kNestAttached:
      return "nest_attached";
    case PlacementPath::kNestPrevCore:
      return "nest_prev_core";
    case PlacementPath::kNestImpatient:
      return "nest_impatient";
    case PlacementPath::kNestCfsFallback:
      return "nest_cfs_fallback";
    case PlacementPath::kSmoveParked:
      return "smove_parked";
    case PlacementPath::kSmoveCfs:
      return "smove_cfs";
    case PlacementPath::kNestCacheWarm:
      return "nest_cache_warm";
    case PlacementPath::kFaultEvacuate:
      return "fault_evacuate";
    case PlacementPath::kNestPredicted:
      return "nest_predicted";
    case PlacementPath::kNestOracleWarm:
      return "nest_oracle_warm";
  }
  return "?";
}

struct Task {
  int tid = -1;
  std::string name;
  int tag = 0;  // workload tag; metrics are segregated per tag

  // Program interpreter state.
  ProgramPtr program;
  size_t pc = 0;
  struct LoopFrame {
    size_t begin_pc;  // pc of the op right after kLoopBegin
    int remaining;
  };
  std::vector<LoopFrame> loop_stack;
  double remaining_work = 0.0;  // GHz-ns left in the current compute op
  // True while the implicit syscall cost of the op at `pc` (fork/send/recv)
  // is being charged as compute.
  bool op_cost_paid = false;

  TaskState state = TaskState::kBlocked;
  BlockReason block_reason = BlockReason::kNone;

  int cpu = -1;            // run queue the task is on (valid unless kDead)
  int prev_cpu = -1;       // CPU of the last execution
  int prev_prev_cpu = -1;  // CPU of the execution before that (Nest §3.3)

  double vruntime = 0.0;
  PeltSignal util;

  // Per-LLC cache warmth, indexed by socket (src/hw/cache_model.h): rises
  // while the task runs on that socket, decays otherwise, both with the PELT
  // half-life. Empty — and never touched — unless the kernel tracks warmth
  // (cache model enabled or the policy wants it).
  std::vector<PeltSignal> llc_warmth;

  Task* parent = nullptr;
  int live_children = 0;
  int join_threshold = 0;  // wake from kJoin when live_children <= this

  // Nest per-task state: consecutive wakeups that found prev_cpu busy.
  int impatience = 0;

  // The policy path that made the most recent placement decision for this
  // task; consumed by KernelObserver::OnTaskPlaced.
  PlacementPath placement_path = PlacementPath::kUnknown;

  // Replica-quorum membership (src/fault/): tasks sharing a replica_group
  // race; the first `quorum` completions win and the rest are reaped. -1 ==
  // not replicated.
  int replica_group = -1;

  // When a core failure displaced this task (-1 == never); cleared when it
  // next gets a CPU. The gap is the re-placement latency resilience metric.
  SimTime evacuated_at = -1;

  // Execution segment bookkeeping (valid while kRunning).
  SimTime seg_start = 0;
  double seg_speed_ghz = 0.0;
  EventId completion_event = kInvalidEventId;
  SimTime sched_in_time = 0;  // when this task last got the CPU

  // Statistics.
  SimTime created_at = 0;
  SimTime exited_at = -1;
  SimTime last_wakeup = 0;
  SimDuration total_runtime = 0;
  SimDuration total_wait = 0;  // runnable-but-not-running time
  int migrations = 0;
  int wakeups = 0;

  bool IsQueuedOrRunning() const {
    return state == TaskState::kRunnable || state == TaskState::kRunning;
  }
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_KERNEL_TASK_H_
