#include "src/kernel/program.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace nestsim {

ProgramBuilder& ProgramBuilder::Compute(double work_ghz_ns) {
  assert(work_ghz_ns >= 0.0);
  if (work_ghz_ns > 0.0) {
    Op op;
    op.kind = OpKind::kCompute;
    op.work = work_ghz_ns;
    ops_.push_back(op);
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::ComputeMsAt(double ms, double ghz) {
  return Compute(ms * 1e6 * ghz);
}

ProgramBuilder& ProgramBuilder::Sleep(SimDuration d) {
  assert(d >= 0);
  Op op;
  op.kind = OpKind::kSleep;
  op.duration = d;
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::Fork(ProgramPtr child) {
  assert(child != nullptr);
  Op op;
  op.kind = OpKind::kFork;
  op.child = std::move(child);
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::JoinChildren(int remaining) {
  assert(remaining >= 0);
  Op op;
  op.kind = OpKind::kJoinChildren;
  op.id = remaining;
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::Barrier(int barrier_id) {
  Op op;
  op.kind = OpKind::kBarrier;
  op.id = barrier_id;
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::Send(int channel_id) {
  Op op;
  op.kind = OpKind::kSend;
  op.id = channel_id;
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::Recv(int channel_id) {
  Op op;
  op.kind = OpKind::kRecv;
  op.id = channel_id;
  ops_.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::Loop(int count) {
  assert(count >= 0);
  Op op;
  op.kind = OpKind::kLoopBegin;
  op.count = count;
  ops_.push_back(op);
  ++open_loops_;
  return *this;
}

ProgramBuilder& ProgramBuilder::EndLoop() {
  if (open_loops_ <= 0) {
    std::fprintf(stderr, "nestsim: EndLoop without Loop in program '%s'\n", name_.c_str());
    std::abort();
  }
  Op op;
  op.kind = OpKind::kLoopEnd;
  ops_.push_back(op);
  --open_loops_;
  return *this;
}

ProgramBuilder& ProgramBuilder::Exit() {
  Op op;
  op.kind = OpKind::kExit;
  ops_.push_back(op);
  return *this;
}

ProgramPtr ProgramBuilder::Build() {
  if (open_loops_ != 0) {
    std::fprintf(stderr, "nestsim: unbalanced Loop in program '%s'\n", name_.c_str());
    std::abort();
  }
  // Snapshot, not move: a builder stays usable, so callers can Build() the
  // same program for several tasks.
  auto program = std::make_shared<Program>();
  program->name = name_;
  program->ops = ops_;
  return program;
}

namespace {

// Walks ops in [begin, end), returning total work; loops multiply.
double WorkInRange(const std::vector<Op>& ops, size_t begin, size_t end) {
  double total = 0.0;
  size_t i = begin;
  while (i < end) {
    const Op& op = ops[i];
    switch (op.kind) {
      case OpKind::kCompute:
        total += op.work;
        ++i;
        break;
      case OpKind::kFork:
        total += TotalWork(*op.child);
        ++i;
        break;
      case OpKind::kLoopBegin: {
        // Find the matching kLoopEnd.
        int depth = 1;
        size_t j = i + 1;
        for (; j < end && depth > 0; ++j) {
          if (ops[j].kind == OpKind::kLoopBegin) {
            ++depth;
          } else if (ops[j].kind == OpKind::kLoopEnd) {
            --depth;
          }
        }
        total += op.count * WorkInRange(ops, i + 1, j - 1);
        i = j;
        break;
      }
      default:
        ++i;
        break;
    }
  }
  return total;
}

}  // namespace

double TotalWork(const Program& program) {
  return WorkInRange(program.ops, 0, program.ops.size());
}

}  // namespace nestsim
