#include "src/kernel/kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/sim/log.h"

namespace nestsim {

Kernel::Kernel(Engine* engine, HardwareModel* hw, SchedulerPolicy* policy, Governor* governor)
    : Kernel(engine, hw, policy, governor, Params{}) {}

Kernel::Kernel(Engine* engine, HardwareModel* hw, SchedulerPolicy* policy, Governor* governor,
               Params params)
    : engine_(engine),
      hw_(hw),
      policy_(policy),
      governor_(governor),
      params_(params),
      domains_(hw->topology()),
      cpus_(hw->topology().num_cpus()) {
  policy_->Attach(this);
  cache_tracking_ = params_.cache.enabled() || policy_->WantsCacheWarmth();
  online_cpus_ = hw->topology().num_cpus();
  for (int cpu = 0; cpu < hw->topology().num_cpus(); ++cpu) {
    idle_cpus_.Set(cpu);  // every run queue starts empty
  }
}

void Kernel::AddObserver(KernelObserver* observer) {
  observers_.push_back(observer);
  const uint32_t mask = observer->InterestMask();
  for (int bit = 0; bit < kNumObserverEvents; ++bit) {
    if ((mask & (1u << bit)) != 0) {
      dispatch_[bit].push_back(observer);
    }
  }
}

void Kernel::Start() {
  assert(!started_);
  started_ = true;
  hw_->set_freq_request_fn([this](int cpu) { return GovernorRequestGhz(cpu); });
  hw_->set_speed_change_fn([this](int cpu) { OnSpeedChange(cpu); });
  hw_->set_freq_change_fn([this](int phys, double ghz) {
    for (KernelObserver* obs : observers_for(kObsCoreFreqChange)) {
      obs->OnCoreFreqChange(engine_->Now(), phys, ghz);
    }
  });
  governor_->AttachHardware(hw_);
  if (governor_->BudgetWatts() > 0.0) {
    hw_->set_freq_cap_fn([this](int cpu) { return governor_->CapGhzOn(hw_->spec(), cpu); });
  }
  hw_->Start();
  engine_->ScheduleAfter(kTickPeriod, [this] { Tick(); });
}

// ---------------------------------------------------------------------------
// Task lifecycle
// ---------------------------------------------------------------------------

Task* Kernel::NewTask(ProgramPtr program, std::string name, int tag, Task* parent) {
  auto task = std::make_unique<Task>();
  task->tid = next_tid_++;
  task->name = std::move(name);
  task->tag = tag;
  task->program = std::move(program);
  task->parent = parent;
  task->created_at = engine_->Now();
  task->state = TaskState::kPlacing;
  if (cache_tracking_) {
    task->llc_warmth.resize(static_cast<size_t>(topology().num_sockets()));
  }
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  task_enqueue_time_.push_back(0);
  ++live_tasks_;
  ++runnable_tasks_;
  if (parent != nullptr) {
    ++parent->live_children;
  }
  for (KernelObserver* obs : observers_for(kObsTaskCreated)) {
    obs->OnTaskCreated(engine_->Now(), *raw);
  }
  return raw;
}

Task* Kernel::SpawnInitial(ProgramPtr program, std::string name, int tag, int cpu) {
  assert(started_ && "call Start() before spawning tasks");
  if (root_cpu_ < 0) {
    root_cpu_ = cpu;
  }
  Task* task = NewTask(std::move(program), std::move(name), tag, /*parent=*/nullptr);
  task->placement_path = PlacementPath::kInitial;
  for (KernelObserver* obs : observers_for(kObsTaskPlaced)) {
    obs->OnTaskPlaced(engine_->Now(), *task, cpu, /*is_fork=*/true);
  }
  EnqueueTask(task, cpu, /*wakeup=*/false);
  return task;
}

Task* Kernel::InjectTask(ProgramPtr program, std::string name, int tag) {
  if (injection_replicas_ <= 1) {
    return InjectOne(std::move(program), std::move(name), tag, /*replica_group=*/-1);
  }
  // Replication (src/fault/): N copies of the already-drawn program share a
  // fresh group; the first `quorum` exits win and HandleReplicaExit reaps the
  // rest. Copies are placed one after another through the normal fork path,
  // so the policy naturally spreads them.
  const int group_id = static_cast<int>(replica_groups_.size());
  replica_groups_.emplace_back();
  replica_groups_[static_cast<size_t>(group_id)].quorum = injection_quorum_;
  Task* first = nullptr;
  for (int i = 0; i < injection_replicas_; ++i) {
    std::string copy_name = i == 0 ? name : name + ".r" + std::to_string(i);
    Task* copy = InjectOne(program, std::move(copy_name), tag, group_id);
    replica_groups_[static_cast<size_t>(group_id)].members.push_back(copy);
    if (first == nullptr) {
      first = copy;
    }
  }
  return first;
}

Task* Kernel::InjectOne(ProgramPtr program, std::string name, int tag, int replica_group) {
  assert(started_ && "call Start() before injecting tasks");
  // A request arrives via interrupt on the boot CPU; placement history starts
  // there, mirroring how a fork starts at the parent's core.
  if (root_cpu_ < 0) {
    root_cpu_ = 0;
  }
  Task* task = NewTask(std::move(program), std::move(name), tag, /*parent=*/nullptr);
  task->prev_cpu = root_cpu_;
  task->replica_group = replica_group;
  const int cpu = policy_->SelectCpuFork(*task, task->prev_cpu);
  PlaceTask(task, cpu, /*is_fork=*/true);
  return task;
}

void Kernel::SetInjectionReplication(int replicas, int quorum) {
  injection_replicas_ = std::max(1, replicas);
  injection_quorum_ = std::min(std::max(1, quorum), injection_replicas_);
}

void Kernel::ScheduleInjection(SimTime when, ProgramPtr program, std::string name, int tag) {
  ++pending_injections_;
  // ProgramPtr is a shared_ptr, so the capture keeps the program alive.
  engine_->ScheduleAt(when, [this, program = std::move(program), name = std::move(name), tag]() mutable {
    --pending_injections_;
    InjectTask(std::move(program), std::move(name), tag);
  });
}

void Kernel::ForkChild(Task& parent, ProgramPtr program) {
  Task* child = NewTask(program, parent.name + "+" + std::to_string(next_tid_), parent.tag, &parent);
  // A forked task starts its placement history at the parent's core.
  child->prev_cpu = parent.cpu;
  const int cpu = policy_->SelectCpuFork(*child, parent.cpu);
  PlaceTask(child, cpu, /*is_fork=*/true);
}

void Kernel::WakeTask(Task* task, int waker_cpu, bool sync) {
  if (task->state != TaskState::kBlocked) {
    return;  // already woken by another path
  }
  task->state = TaskState::kPlacing;
  task->block_reason = BlockReason::kNone;
  task->last_wakeup = engine_->Now();
  ++task->wakeups;
  ++runnable_tasks_;
  WakeContext ctx;
  ctx.waker_cpu = waker_cpu;
  ctx.sync = sync;
  const int cpu = policy_->SelectCpuWake(*task, ctx);
  PlaceTask(task, cpu, /*is_fork=*/false);
}

void Kernel::PlaceTask(Task* task, int cpu, bool is_fork) {
  if (!cpus_[cpu].online) {
    // The policy picked a failed core (e.g. CFS's idlest-group descent ranks
    // by load, not liveness). Deterministic redirect to the first online CPU.
    cpu = FallbackOnlineCpu();
  }
  if (policy_->UsesPlacementReservation()) {
    // Best effort: the policy normally avoided claimed CPUs already; a failed
    // claim here means a collision the reservation could not prevent.
    if (!cpus_[cpu].rq.TryClaim(engine_->Now())) {
      for (KernelObserver* obs : observers_for(kObsReservationCollision)) {
        obs->OnReservationCollision(engine_->Now(), *task, cpu);
      }
    }
  }
  task->cpu = cpu;
  for (KernelObserver* obs : observers_for(kObsTaskPlaced)) {
    obs->OnTaskPlaced(engine_->Now(), *task, cpu, is_fork);
  }
  const bool wakeup = !is_fork;
  engine_->ScheduleAfter(params_.placement_latency, [this, task, cpu, wakeup] {
    if (task->state == TaskState::kPlacing) {
      EnqueueTask(task, cpu, wakeup);
    }
  });
}

void Kernel::EnqueueTask(Task* task, int cpu, bool wakeup) {
  if (!cpus_[cpu].online) {
    // The target failed during the §3.4 in-flight window.
    cpu = FallbackOnlineCpu();
  }
  CpuState& cs = cpus_[cpu];
  RunQueue& rq = cs.rq;
  rq.ClearClaim();

  task->cpu = cpu;
  task->state = TaskState::kRunnable;
  task_enqueue_time_[task->tid - 1] = engine_->Now();

  // vruntime placement: the task's vruntime is stored *relative* to its old
  // queue (normalised at dequeue); re-base it here. Woken sleepers get a
  // bounded credit so they preempt promptly but cannot starve the queue.
  if (wakeup) {
    const double credit = static_cast<double>(params_.sleeper_credit);
    task->vruntime = rq.min_vruntime() + std::max(task->vruntime, -credit);
  } else {
    task->vruntime = rq.min_vruntime() + std::max(task->vruntime, 0.0);
  }

  rq.Enqueue(task);
  rq.BumpPlacement(engine_->Now());
  UpdateCpuMasks(cpu);

  policy_->OnTaskEnqueued(*task, cpu);
  for (KernelObserver* obs : observers_for(kObsTaskEnqueued)) {
    obs->OnTaskEnqueued(engine_->Now(), *task, cpu);
  }
  hw_->KickCpu(cpu);  // schedutil-style frequency kick on enqueue

  // Fault injection (src/check/ self-tests): drop the dispatch that would
  // make this enqueue visible — the "skipped wakeup" bug class the invariant
  // checker exists to catch.
  if (params_.test_skip_enqueue_dispatch_every > 0 &&
      ++enqueue_count_ % static_cast<uint64_t>(params_.test_skip_enqueue_dispatch_every) == 0) {
    return;
  }

  if (rq.curr() == nullptr) {
    ScheduleCpu(cpu);
  } else {
    MaybePreempt(cpu, task);
  }
}

void Kernel::BlockCurrent(int cpu, BlockReason reason) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.rq.curr();
  assert(task != nullptr);

  UpdateCurr(cpu);
  if (task->completion_event != kInvalidEventId) {
    engine_->Cancel(task->completion_event);
    task->completion_event = kInvalidEventId;
  }

  // Execution-history update (§3.3): this stint is over.
  task->prev_prev_cpu = task->prev_cpu;
  task->prev_cpu = cpu;

  task->state = TaskState::kBlocked;
  task->block_reason = reason;
  // Normalise vruntime relative to this queue for a later re-base.
  task->vruntime -= cs.rq.min_vruntime();
  --runnable_tasks_;

  cs.rq.set_curr(nullptr);
  cs.rq.UpdateMinVruntime();
  UpdateCpuMasks(cpu);
  for (KernelObserver* obs : observers_for(kObsTaskBlocked)) {
    obs->OnTaskBlocked(engine_->Now(), *task, cpu);
  }
  NotifyContextSwitch(cpu, task, nullptr);
  ScheduleCpu(cpu);
}

void Kernel::ExitCurrent(int cpu) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.rq.curr();
  assert(task != nullptr);

  UpdateCurr(cpu);
  if (task->completion_event != kInvalidEventId) {
    engine_->Cancel(task->completion_event);
    task->completion_event = kInvalidEventId;
  }

  task->prev_prev_cpu = task->prev_cpu;
  task->prev_cpu = cpu;
  task->state = TaskState::kDead;
  task->exited_at = engine_->Now();
  --live_tasks_;
  --runnable_tasks_;
  cs.rq.set_curr(nullptr);
  cs.rq.UpdateMinVruntime();
  UpdateCpuMasks(cpu);
  sync_.ForgetTask(task);

  for (KernelObserver* obs : observers_for(kObsTaskExit)) {
    obs->OnTaskExit(engine_->Now(), *task);
  }
  NotifyContextSwitch(cpu, task, nullptr);

  Task* parent = task->parent;
  if (parent != nullptr) {
    --parent->live_children;
    if (parent->live_children <= parent->join_threshold &&
        parent->state == TaskState::kBlocked && parent->block_reason == BlockReason::kJoin) {
      WakeTask(parent, /*waker_cpu=*/cpu, /*sync=*/true);
    }
  }

  ScheduleCpu(cpu);
  // Nest demotes a core whose task terminated leaving it idle (§3.1). The
  // hook runs after rescheduling so the policy sees the post-exit state.
  policy_->OnTaskExit(*task, cpu);

  if (task->replica_group >= 0) {
    HandleReplicaExit(task, cpu);
  }
}

// ---------------------------------------------------------------------------
// CPU scheduling
// ---------------------------------------------------------------------------

void Kernel::ScheduleCpu(int cpu) {
  CpuState& cs = cpus_[cpu];
  assert(cs.rq.curr() == nullptr);

  if (cs.rq.QueuedCount() == 0 && params_.enable_newidle_balance) {
    NewIdleBalance(cpu);
  }

  Task* next = cs.rq.Leftmost();
  if (next == nullptr) {
    EnterIdle(cpu);
    return;
  }
  StartRunning(next, cpu);
}

void Kernel::StartRunning(Task* task, int cpu) {
  CpuState& cs = cpus_[cpu];
  // Fold the idle interval into the CPU utilisation signal first.
  cs.rq.util().Update(engine_->Now(), 0.0);

  cs.rq.Dequeue(task);
  cs.rq.set_curr(task);
  UpdateCpuMasks(cpu);

  const SimTime now = engine_->Now();
  // Reset segment bookkeeping before anything (speed-change callbacks fired
  // from the busy transition below) can call UpdateCurr on this task.
  task->seg_start = now;
  task->seg_speed_ghz = 0.0;
  task->total_wait += now - task_enqueue_time_[task->tid - 1];
  if (task->prev_cpu >= 0 && topology().PhysCoreOf(task->prev_cpu) != topology().PhysCoreOf(cpu)) {
    ++task->migrations;
    ++migrations_;
    // Cold caches: charge the refill as extra work on the next segment.
    task->remaining_work += topology().SameSocket(task->prev_cpu, cpu)
                                ? params_.migration_cost_work
                                : params_.cross_die_migration_cost_work;
  }
  if (cache_tracking_) {
    AccountCacheWarmth(task, cpu, now);
  }
  task->state = TaskState::kRunning;
  task->cpu = cpu;
  task->sched_in_time = now;
  task->util.Update(now, 0.0);  // fold the blocked/waiting gap

  if (cs.spinning) {
    StopSpin(cpu, /*because_busy=*/true);
  } else {
    hw_->SetThreadBusy(cpu, true);
  }
  // A task appearing on this hardware thread stops the sibling's warm spin
  // immediately (§3.2).
  const int sibling = topology().SiblingOf(cpu);
  if (sibling >= 0 && cpus_[sibling].spinning) {
    StopSpin(sibling, /*because_busy=*/false);
  }

  ++context_switches_;
  NotifyContextSwitch(cpu, nullptr, task);
  // Re-placement after a fault completed: observers sampled the evacuation
  // gap from inside OnContextSwitch; clear the stamp before the task runs.
  task->evacuated_at = -1;
  ExecuteTask(cpu);
}

// Cache-warmth accounting at dispatch (src/hw/cache_model.h): classify the
// destination LLC as warm or cold, charge the cross-LLC migration cost, and
// reset the warmth the task abandons when it changes die. Only called when
// warmth tracking is on; with neutral parameters every behavioural effect is
// a bit-exact no-op (+= 0.0 work), so NestCache runs with the model disabled
// stay comparable against plain Nest.
void Kernel::AccountCacheWarmth(Task* task, int cpu, SimTime now) {
  const int socket = topology().SocketOf(cpu);
  PeltSignal& here = task->llc_warmth[static_cast<size_t>(socket)];
  // Decay the destination's warmth across the not-running gap first, so both
  // the classification below and the accrual in UpdateCurr start from the
  // task's true arrival-time warmth.
  here.Update(now, 0.0);
  const double warmth = here.raw();
  const bool cross_llc = task->prev_cpu >= 0 && !topology().SameSocket(task->prev_cpu, cpu);
  if (cross_llc) {
    // The lines left behind are dead, not merely decaying: the refill charge
    // pays for streaming them back in over the new LLC.
    task->remaining_work += params_.cache.migration_cost_work;
    task->llc_warmth[static_cast<size_t>(topology().SocketOf(task->prev_cpu))].Set(now, 0.0);
  }
  if (task->prev_cpu >= 0) {
    const CacheEventKind classified = warmth >= params_.cache.warm_threshold
                                          ? CacheEventKind::kWarmHit
                                          : CacheEventKind::kColdMiss;
    for (KernelObserver* obs : observers_for(kObsCacheEvent)) {
      obs->OnCacheEvent(now, *task, classified, cpu, warmth);
      if (cross_llc) {
        obs->OnCacheEvent(now, *task, CacheEventKind::kCrossDieMigration, cpu, warmth);
      }
    }
  }
}

void Kernel::StopRunning(int cpu, bool requeue) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.rq.curr();
  assert(task != nullptr);
  UpdateCurr(cpu);
  if (task->completion_event != kInvalidEventId) {
    engine_->Cancel(task->completion_event);
    task->completion_event = kInvalidEventId;
  }
  cs.rq.set_curr(nullptr);
  task->state = TaskState::kRunnable;
  if (requeue) {
    task_enqueue_time_[task->tid - 1] = engine_->Now();
    cs.rq.Enqueue(task);
  }
  UpdateCpuMasks(cpu);
  NotifyContextSwitch(cpu, task, nullptr);
}

void Kernel::MaybePreempt(int cpu, Task* enqueued) {
  CpuState& cs = cpus_[cpu];
  Task* curr = cs.rq.curr();
  if (curr == nullptr) {
    return;
  }
  UpdateCurr(cpu);
  const double gran = static_cast<double>(params_.wakeup_granularity);
  if (enqueued->vruntime + gran < curr->vruntime) {
    StopRunning(cpu, /*requeue=*/true);
    ScheduleCpu(cpu);
  }
}

void Kernel::EnterIdle(int cpu) {
  CpuState& cs = cpus_[cpu];
  cs.idle_since = engine_->Now();

  const int spin_ticks = policy_->IdleSpinTicks(cpu);
  const int sibling = topology().SiblingOf(cpu);
  const bool sibling_busy = sibling >= 0 && cpus_[sibling].rq.curr() != nullptr;
  if (spin_ticks > 0 && !sibling_busy) {
    // Warm spin (§3.2): the idle loop keeps the core active for the hardware.
    if (!cs.spinning) {
      cs.spinning = true;
      hw_->SetThreadBusy(cpu, true);  // no-op if it was already busy
    }
    const uint64_t gen = ++cs.dispatch_gen;
    for (KernelObserver* obs : observers_for(kObsIdleSpinStart)) {
      obs->OnIdleSpinStart(engine_->Now(), cpu, spin_ticks);
    }
    cs.spin_end = engine_->ScheduleAfter(spin_ticks * kTickPeriod, [this, cpu, gen] {
      if (cpus_[cpu].spinning && cpus_[cpu].dispatch_gen == gen) {
        StopSpin(cpu, /*because_busy=*/false);
      }
    });
    return;
  }
  if (cs.spinning) {
    StopSpin(cpu, /*because_busy=*/false);
  } else {
    hw_->SetThreadBusy(cpu, false);
  }
}

void Kernel::StopSpin(int cpu, bool because_busy) {
  CpuState& cs = cpus_[cpu];
  assert(cs.spinning);
  cs.spinning = false;
  if (cs.spin_end != kInvalidEventId) {
    engine_->Cancel(cs.spin_end);
    cs.spin_end = kInvalidEventId;
  }
  if (!because_busy) {
    hw_->SetThreadBusy(cpu, false);
  }
  // When the spin ends because a task starts here, the thread stays busy.
  for (KernelObserver* obs : observers_for(kObsIdleSpinEnd)) {
    obs->OnIdleSpinEnd(engine_->Now(), cpu, because_busy);
  }
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

void Kernel::ExecuteTask(int cpu) {
  Task* task = cpus_[cpu].rq.curr();
  assert(task != nullptr);
  InterpretOps(cpu, task);
  if (cpus_[cpu].rq.curr() == task && task->state == TaskState::kRunning &&
      task->completion_event == kInvalidEventId) {
    // A completion may already be in flight when a speed-change callback
    // started the segment during StartRunning; never double-schedule.
    assert(task->remaining_work > 0);
    BeginComputeSegment(cpu);
  }
}

void Kernel::BeginComputeSegment(int cpu) {
  Task* task = cpus_[cpu].rq.curr();
  assert(task != nullptr && task->remaining_work > 0);
  const SimTime now = engine_->Now();
  task->seg_start = now;
  double speed_ghz = hw_->EffectiveSpeedGhz(cpu);
  if (cache_tracking_) {
    // Warm-cache speedup (src/hw/cache_model.h): the factor is sampled at
    // segment start and held for the segment, like the hardware speed — a
    // piecewise-constant approximation that keeps completion times
    // analytically exact per segment. Neutral parameters multiply by an
    // exact 1.0.
    const double warmth =
        task->llc_warmth[static_cast<size_t>(topology().SocketOf(cpu))].ValueAt(now);
    speed_ghz *= WarmSpeedupFactor(params_.cache, warmth);
  }
  task->seg_speed_ghz = std::max(speed_ghz, 1e-6);
  const double duration_ns = task->remaining_work / task->seg_speed_ghz;
  const SimDuration d = std::max<SimDuration>(1, static_cast<SimDuration>(std::ceil(duration_ns)));
  task->completion_event =
      engine_->ScheduleAt(now + d, [this, cpu, task] { OnComputeComplete(cpu, task); });
}

void Kernel::OnComputeComplete(int cpu, Task* task) {
  if (cpus_[cpu].rq.curr() != task) {
    return;  // stale event (defensive; cancellation should prevent this)
  }
  task->completion_event = kInvalidEventId;
  UpdateCurr(cpu);
  task->remaining_work = 0.0;
  ExecuteTask(cpu);
}

void Kernel::UpdateCurr(int cpu) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.rq.curr();
  if (task == nullptr) {
    cs.rq.util().Update(engine_->Now(), 0.0);
    return;
  }
  const SimTime now = engine_->Now();
  const SimDuration elapsed = now - task->seg_start;
  if (elapsed > 0) {
    const double work_done = static_cast<double>(elapsed) * task->seg_speed_ghz;
    task->remaining_work = std::max(0.0, task->remaining_work - work_done);
    task->vruntime += static_cast<double>(elapsed);
    task->total_runtime += elapsed;
    task->seg_start = now;
    cs.rq.UpdateMinVruntime();
  }
  task->util.Update(now, 1.0);
  cs.rq.util().Update(now, 1.0);
  if (cache_tracking_) {
    // Warmth accrues on the LLC the task is running on; the other sockets
    // decay lazily (PeltSignal::ValueAt) when somebody reads them.
    task->llc_warmth[static_cast<size_t>(topology().SocketOf(cpu))].Update(now, 1.0);
  }
}

void Kernel::OnSpeedChange(int cpu) {
  CpuState& cs = cpus_[cpu];
  Task* task = cs.rq.curr();
  if (task == nullptr || task->state != TaskState::kRunning) {
    return;  // spinning idle thread: nothing to recompute
  }
  UpdateCurr(cpu);
  const bool had_completion_event = task->completion_event != kInvalidEventId;
  if (had_completion_event) {
    engine_->Cancel(task->completion_event);
    task->completion_event = kInvalidEventId;
  }
  if (task->remaining_work > 0) {
    BeginComputeSegment(cpu);
  } else if (had_completion_event) {
    // The speed change landed exactly at completion and we just cancelled
    // the event that would have advanced the program: do it here, or the
    // task would hang forever. (Without an in-flight event the task has not
    // begun its segment yet — StartRunning will interpret it.)
    ExecuteTask(cpu);
  }
  for (KernelObserver* obs : observers_for(kObsCpuSpeedChange)) {
    obs->OnCpuSpeedChange(engine_->Now(), cpu);
  }
}

// ---------------------------------------------------------------------------
// Program interpreter
// ---------------------------------------------------------------------------

void Kernel::InterpretOps(int cpu, Task* task) {
  int guard = 0;
  while (true) {
    if (++guard > 1000000) {
      LogAt(LogLevel::kError, engine_->Now(), "task %d: runaway zero-time op loop", task->tid);
      std::abort();
    }
    if (task->remaining_work > 0) {
      return;  // caller starts the compute segment
    }
    if (task->pc >= task->program->ops.size()) {
      ExitCurrent(cpu);
      return;
    }
    const Op& op = task->program->ops[task->pc];
    switch (op.kind) {
      case OpKind::kCompute:
        task->remaining_work = op.work;
        ++task->pc;
        break;  // loop re-checks remaining_work
      case OpKind::kSleep: {
        ++task->pc;
        const SimDuration d = op.duration;
        // Timer wakeups fire on the CPU that armed the timer.
        const int timer_cpu = cpu;
        BlockCurrent(cpu, BlockReason::kSleep);
        engine_->ScheduleAfter(
            d, [this, task, timer_cpu] { WakeTask(task, timer_cpu, /*sync=*/false); });
        return;
      }
      case OpKind::kFork:
        if (!task->op_cost_paid && params_.fork_cost_work > 0) {
          task->op_cost_paid = true;
          task->remaining_work = params_.fork_cost_work;
          break;
        }
        task->op_cost_paid = false;
        ForkChild(*task, op.child);
        ++task->pc;
        break;
      case OpKind::kJoinChildren:
        ++task->pc;
        if (task->live_children > op.id) {
          task->join_threshold = op.id;
          BlockCurrent(cpu, BlockReason::kJoin);
          return;
        }
        break;
      case OpKind::kBarrier:
        ++task->pc;
        if (!ArriveBarrier(task, op.id, cpu)) {
          return;  // blocked
        }
        break;
      case OpKind::kSend:
        if (!task->op_cost_paid && params_.send_cost_work > 0) {
          task->op_cost_paid = true;
          task->remaining_work = params_.send_cost_work;
          break;
        }
        task->op_cost_paid = false;
        SendMessage(task, op.id, cpu);
        ++task->pc;
        break;
      case OpKind::kRecv:
        if (!task->op_cost_paid && params_.recv_cost_work > 0) {
          task->op_cost_paid = true;
          task->remaining_work = params_.recv_cost_work;
          break;
        }
        task->op_cost_paid = false;
        ++task->pc;
        if (!RecvMessage(task, op.id, cpu)) {
          return;  // blocked
        }
        break;
      case OpKind::kLoopBegin:
        if (op.count <= 0) {
          // Skip to past the matching kLoopEnd.
          int depth = 1;
          size_t j = task->pc + 1;
          while (j < task->program->ops.size() && depth > 0) {
            if (task->program->ops[j].kind == OpKind::kLoopBegin) {
              ++depth;
            } else if (task->program->ops[j].kind == OpKind::kLoopEnd) {
              --depth;
            }
            ++j;
          }
          task->pc = j;
        } else {
          task->loop_stack.push_back({task->pc + 1, op.count});
          ++task->pc;
        }
        break;
      case OpKind::kLoopEnd: {
        assert(!task->loop_stack.empty());
        Task::LoopFrame& frame = task->loop_stack.back();
        if (--frame.remaining > 0) {
          task->pc = frame.begin_pc;
        } else {
          task->loop_stack.pop_back();
          ++task->pc;
        }
        break;
      }
      case OpKind::kExit:
        ExitCurrent(cpu);
        return;
    }
  }
}

bool Kernel::ArriveBarrier(Task* task, int id, int cpu) {
  SyncBarrier& barrier = sync_.GetBarrier(id);
  if (static_cast<int>(barrier.waiting.size()) + 1 >= barrier.parties) {
    // Last arriver: release everyone. The waker is this CPU; it keeps
    // running, so this is not a sync wakeup.
    std::vector<Task*> to_wake;
    to_wake.swap(barrier.waiting);
    for (Task* waiter : to_wake) {
      WakeTask(waiter, cpu, /*sync=*/false);
    }
    return true;
  }
  barrier.waiting.push_back(task);
  BlockCurrent(cpu, BlockReason::kBarrier);
  return false;
}

bool Kernel::RecvMessage(Task* task, int id, int cpu) {
  Channel& channel = sync_.GetChannel(id);
  if (channel.pending_messages > 0) {
    --channel.pending_messages;
    return true;
  }
  channel.waiting_receivers.push_back(task);
  BlockCurrent(cpu, BlockReason::kRecv);
  return false;
}

void Kernel::SendMessage(Task* task, int id, int cpu) {
  (void)task;
  Channel& channel = sync_.GetChannel(id);
  if (!channel.waiting_receivers.empty()) {
    Task* receiver = channel.waiting_receivers.front();
    channel.waiting_receivers.pop_front();
    // Message handoff: the sender is likely to keep going, but this is the
    // classic sync-ish wakeup pattern (hackbench).
    WakeTask(receiver, cpu, /*sync=*/true);
  } else {
    ++channel.pending_messages;
  }
}

// ---------------------------------------------------------------------------
// Tick and load balancing
// ---------------------------------------------------------------------------

void Kernel::Tick() {
  const SimTime now = engine_->Now();
  hw_->SampleTick();

  for (int cpu = 0; cpu < topology().num_cpus(); ++cpu) {
    CpuState& cs = cpus_[cpu];
    if (!cs.online) {
      continue;  // failed core: queue drained, PELT reset at offline time
    }
    Task* curr = cs.rq.curr();
    if (curr == nullptr) {
      cs.rq.util().Update(now, 0.0);
      continue;
    }
    UpdateCurr(cpu);
    // Tick preemption: vruntime-fair round-robin among queued tasks.
    Task* leftmost = cs.rq.Leftmost();
    if (leftmost != nullptr && curr->vruntime > leftmost->vruntime &&
        now - curr->sched_in_time >= params_.min_granularity) {
      StopRunning(cpu, /*requeue=*/true);
      ScheduleCpu(cpu);
    }
  }

  policy_->OnTick();
  if (params_.enable_periodic_balance) {
    PeriodicBalance();
  }
  const double budget_w = governor_->BudgetWatts();
  if (budget_w > 0.0) {
    for (int socket = 0; socket < topology().num_sockets(); ++socket) {
      const double headroom = budget_w - hw_->SocketPowerWatts(socket);
      const bool throttled = governor_->ThrottledOnSocket(socket);
      for (KernelObserver* obs : observers_for(kObsBudgetState)) {
        obs->OnBudgetState(now, socket, headroom, throttled);
      }
    }
  }
  for (KernelObserver* obs : observers_for(kObsTick)) {
    obs->OnTick(now);
  }
  engine_->ScheduleAfter(kTickPeriod, [this] { Tick(); });
}

Task* Kernel::FindStealableTask(int dst_cpu, bool same_die_only, bool ignore_hotness) {
  const SimTime now = engine_->Now();
  const int dst_socket = topology().SocketOf(dst_cpu);
  Task* best = nullptr;
  int best_queued = 0;
  bool best_same_die = false;
  for (int cpu : overloaded_cpus_) {
    if (cpu == dst_cpu) {
      continue;
    }
    const bool same_die = topology().SocketOf(cpu) == dst_socket;
    if (same_die_only && !same_die) {
      continue;
    }
    RunQueue& src = cpus_[cpu].rq;
    // Scan from the back (largest vruntime = least entitled) and skip
    // cache-hot entries unless the balancer is escalating.
    Task* candidate = nullptr;
    const std::vector<Task*> queued = src.QueuedTasks();
    for (auto it = queued.rbegin(); it != queued.rend(); ++it) {
      if (ignore_hotness ||
          now - task_enqueue_time_[(*it)->tid - 1] >= params_.steal_min_wait) {
        candidate = *it;
        break;
      }
    }
    if (candidate == nullptr) {
      continue;
    }
    // Prefer same-die sources, then the most loaded queue.
    if (best == nullptr || (same_die && !best_same_die) ||
        (same_die == best_same_die && src.QueuedCount() > best_queued)) {
      best = candidate;
      best_queued = src.QueuedCount();
      best_same_die = same_die;
    }
  }
  return best;
}

void Kernel::MigrateQueued(Task* task, int dst_cpu, MigrationReason reason) {
  assert(task->state == TaskState::kRunnable);
  const int src_cpu = task->cpu;
  if (!cpus_[dst_cpu].online) {
    // Policy-driven moves (Smove's timer) can target a failed core.
    dst_cpu = FallbackOnlineCpu();
    if (dst_cpu == src_cpu) {
      return;
    }
  }
  RunQueue& src = cpus_[src_cpu].rq;
  assert(src.Queued(task));
  src.Dequeue(task);
  UpdateCpuMasks(src_cpu);
  task->vruntime -= src.min_vruntime();
  RunQueue& dst = cpus_[dst_cpu].rq;
  task->cpu = dst_cpu;
  task->vruntime = dst.min_vruntime() + std::max(task->vruntime, 0.0);
  dst.Enqueue(task);
  task_enqueue_time_[task->tid - 1] = engine_->Now();
  UpdateCpuMasks(dst_cpu);
  ++migrations_;
  ++task->migrations;
  for (KernelObserver* obs : observers_for(kObsTaskMigrated)) {
    obs->OnTaskMigrated(engine_->Now(), *task, src_cpu, dst_cpu, reason);
  }
}

void Kernel::NotifyNestEvent(NestEventKind kind, int cpu) {
  for (KernelObserver* obs : observers_for(kObsNestEvent)) {
    obs->OnNestEvent(engine_->Now(), kind, cpu);
  }
}

void Kernel::KickIfIdle(int cpu) {
  if (cpus_[cpu].rq.curr() == nullptr && cpus_[cpu].rq.QueuedCount() > 0) {
    ScheduleCpu(cpu);
  }
}

void Kernel::NewIdleBalance(int cpu) {
  if (overloaded_cpus_.Empty()) {
    return;
  }
  Task* task = FindStealableTask(cpu, /*same_die_only=*/false, /*ignore_hotness=*/false);
  if (task != nullptr) {
    MigrateQueued(task, cpu, MigrationReason::kNewIdlePull);
  }
}

void Kernel::PeriodicBalance() {
  if (overloaded_cpus_.Empty()) {
    return;
  }
  // One pull per idle CPU per tick, same-die first — an approximation of the
  // periodic/nohz-idle balancing pass.
  for (int cpu = 0; cpu < topology().num_cpus() && !overloaded_cpus_.Empty(); ++cpu) {
    if (!cpus_[cpu].online || !cpus_[cpu].rq.Idle()) {
      continue;
    }
    // The periodic pass escalates past cache-hotness: a CPU that has idled
    // through a whole tick takes whatever is queued.
    Task* task = FindStealableTask(cpu, /*same_die_only=*/true, /*ignore_hotness=*/true);
    if (task == nullptr) {
      task = FindStealableTask(cpu, /*same_die_only=*/false, /*ignore_hotness=*/true);
    }
    if (task != nullptr) {
      MigrateQueued(task, cpu, MigrationReason::kPeriodicPull);
      if (cpus_[cpu].rq.curr() == nullptr) {
        ScheduleCpu(cpu);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Faults (src/fault/): core offline/online, task killing, replica quorums
// ---------------------------------------------------------------------------

int Kernel::FallbackOnlineCpu() const {
  for (int cpu = 0; cpu < static_cast<int>(cpus_.size()); ++cpu) {
    if (cpus_[cpu].online) {
      return cpu;
    }
  }
  return 0;  // unreachable: OfflineCpu refuses to take the last CPU down
}

void Kernel::NotifyFaultEvent(FaultEventKind kind, int cpu, const Task* task) {
  for (KernelObserver* obs : observers_for(kObsFaultEvent)) {
    obs->OnFaultEvent(engine_->Now(), kind, cpu, task);
  }
}

bool Kernel::OfflineCpu(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (!cs.online || online_cpus_ <= 1) {
    return false;
  }
  const SimTime now = engine_->Now();
  cs.online = false;
  --online_cpus_;

  if (cs.spinning) {
    StopSpin(cpu, /*because_busy=*/false);
  }

  // Collect the work this core was holding. vruntimes are normalised against
  // the pre-drain base so EnqueueTask can re-base them on the new queue.
  const double vruntime_base = cs.rq.min_vruntime();
  std::vector<Task*> displaced;
  Task* curr = cs.rq.curr();
  if (curr != nullptr) {
    UpdateCurr(cpu);
    if (curr->completion_event != kInvalidEventId) {
      engine_->Cancel(curr->completion_event);
      curr->completion_event = kInvalidEventId;
    }
    curr->prev_prev_cpu = curr->prev_cpu;
    curr->prev_cpu = cpu;
    curr->vruntime -= vruntime_base;
    cs.rq.set_curr(nullptr);
    displaced.push_back(curr);
  }
  while (Task* queued = cs.rq.Leftmost()) {
    cs.rq.Dequeue(queued);
    queued->vruntime -= vruntime_base;
    displaced.push_back(queued);
  }

  // Hard reset: reservation claim, vruntime base, and the PELT signal — a
  // repaired core must come back with no residual history.
  cs.rq.ClearClaim();
  cs.rq.UpdateMinVruntime();
  cs.rq.util().Set(now, 0.0);
  UpdateCpuMasks(cpu);
  if (curr != nullptr) {
    NotifyContextSwitch(cpu, curr, nullptr);
  }
  hw_->SetThreadBusy(cpu, false);  // no-op if it was already idle

  policy_->OnCpuOffline(cpu);
  NotifyFaultEvent(FaultEventKind::kCoreOffline, cpu, nullptr);

  // Re-place the displaced work through the policy's wake path. The policy
  // already sees this core as offline (CpuIdle is false); whatever it picks
  // is relabelled as the fault_evacuate placement path.
  for (Task* task : displaced) {
    task->state = TaskState::kPlacing;
    task->evacuated_at = now;
    WakeContext ctx;
    ctx.waker_cpu = FallbackOnlineCpu();
    const int target = policy_->SelectCpuWake(*task, ctx);
    task->placement_path = PlacementPath::kFaultEvacuate;
    PlaceTask(task, target, /*is_fork=*/false);
    NotifyFaultEvent(FaultEventKind::kTaskEvacuated, task->cpu, task);
  }
  return true;
}

void Kernel::OnlineCpu(int cpu) {
  CpuState& cs = cpus_[cpu];
  if (cs.online) {
    return;
  }
  const SimTime now = engine_->Now();
  cs.online = true;
  ++online_cpus_;
  cs.idle_since = now;
  cs.rq.util().Set(now, 0.0);
  cs.rq.ClearClaim();
  UpdateCpuMasks(cpu);
  policy_->OnCpuOnline(cpu);
  NotifyFaultEvent(FaultEventKind::kCoreOnline, cpu, nullptr);
}

void Kernel::KillTask(Task* task, FaultEventKind kind) {
  if (task == nullptr || task->state == TaskState::kDead) {
    return;
  }
  const SimTime now = engine_->Now();
  const int cpu = task->cpu;
  const bool was_running = task->state == TaskState::kRunning;
  switch (task->state) {
    case TaskState::kRunning: {
      CpuState& cs = cpus_[cpu];
      assert(cs.rq.curr() == task);
      UpdateCurr(cpu);
      if (task->completion_event != kInvalidEventId) {
        engine_->Cancel(task->completion_event);
        task->completion_event = kInvalidEventId;
      }
      cs.rq.set_curr(nullptr);
      cs.rq.UpdateMinVruntime();
      UpdateCpuMasks(cpu);
      --runnable_tasks_;
      NotifyContextSwitch(cpu, task, nullptr);
      break;
    }
    case TaskState::kRunnable: {
      CpuState& cs = cpus_[cpu];
      if (cs.rq.Queued(task)) {
        cs.rq.Dequeue(task);
        cs.rq.UpdateMinVruntime();
        UpdateCpuMasks(cpu);
      }
      --runnable_tasks_;
      break;
    }
    case TaskState::kPlacing:
      // The delayed enqueue checks state == kPlacing, so marking the task
      // dead cancels it; any §3.4 claim it holds simply times out.
      --runnable_tasks_;
      break;
    case TaskState::kBlocked:
    case TaskState::kDead:
      break;
  }
  task->state = TaskState::kDead;
  task->exited_at = now;
  --live_tasks_;
  sync_.ForgetTask(task);
  // Deliberately no OnTaskExit: killed work must not count as completed.
  NotifyFaultEvent(kind, cpu, task);

  Task* parent = task->parent;
  if (parent != nullptr) {
    --parent->live_children;
    if (parent->live_children <= parent->join_threshold &&
        parent->state == TaskState::kBlocked && parent->block_reason == BlockReason::kJoin) {
      WakeTask(parent, /*waker_cpu=*/FallbackOnlineCpu(), /*sync=*/false);
    }
  }
  if (was_running) {
    ScheduleCpu(cpu);
    policy_->OnTaskExit(*task, cpu);
  }
}

void Kernel::HandleReplicaExit(Task* task, int cpu) {
  ReplicaGroup& group = replica_groups_[static_cast<size_t>(task->replica_group)];
  ++group.completions;
  if (group.completions != group.quorum || group.reaped) {
    return;
  }
  group.reaped = true;
  NotifyFaultEvent(FaultEventKind::kReplicaQuorumJoin, cpu, task);
  // Reap the losers from a fresh event: KillTask re-enters the scheduler and
  // must not run inside the winner's exit path.
  const int group_id = task->replica_group;
  engine_->ScheduleAt(engine_->Now(), [this, group_id] {
    for (Task* member : replica_groups_[static_cast<size_t>(group_id)].members) {
      if (member->state != TaskState::kDead) {
        KillTask(member, FaultEventKind::kReplicaReaped);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------------

double Kernel::GovernorRequestGhz(int cpu) {
  RunQueue& rq = cpus_[cpu].rq;
  double util = CpuUtil(cpu);
  // schedutil sees the enqueued/running task's own utilisation immediately
  // (PELT attach on enqueue); approximate with the max of the signals.
  if (rq.curr() != nullptr) {
    util = std::max(util, rq.curr()->util.ValueAt(engine_->Now()));
  }
  return governor_->RequestGhzOn(hw_->spec(), std::min(1.0, util), cpu);
}

int Kernel::live_tasks_for_tag(int tag) const {
  int count = 0;
  for (const auto& task : tasks_) {
    if (task->tag == tag && task->state != TaskState::kDead) {
      ++count;
    }
  }
  return count;
}

void Kernel::NotifyContextSwitch(int cpu, const Task* prev, const Task* next) {
  for (KernelObserver* obs : observers_for(kObsContextSwitch)) {
    obs->OnContextSwitch(engine_->Now(), cpu, prev, next);
  }
}

}  // namespace nestsim
