#include "src/campaign/grid.h"

#include <stdexcept>

namespace nestsim {

GridCampaign::GridCampaign(std::string name, std::vector<std::string> machines,
                           std::vector<std::string> rows, std::vector<Variant> variants,
                           RowFactory factory, CampaignOptions options)
    : name_(std::move(name)),
      machines_(std::move(machines)),
      rows_(std::move(rows)),
      variants_(std::move(variants)),
      factory_(std::move(factory)),
      options_(std::move(options)) {}

size_t GridCampaign::IndexOf(size_t machine, size_t row, size_t variant) const {
  return (machine * rows_.size() + row) * variants_.size() + variant;
}

void GridCampaign::Run() {
  Campaign campaign(name_, options_);
  for (const std::string& machine : machines_) {
    for (size_t r = 0; r < rows_.size(); ++r) {
      // One workload model per (machine, row); the variant jobs share it.
      const std::shared_ptr<const Workload> model = factory_(r, rows_[r]);
      for (const Variant& variant : variants_) {
        Job job;
        job.workload = rows_[r];
        job.variant = variant.label;
        job.config.machine = machine;
        job.config.scheduler = variant.scheduler;
        job.config.governor = variant.governor;
        if (config_hook_) {
          config_hook_(job.config);
        }
        job.model = model;
        job.repetitions = repetitions_;
        job.base_seed = base_seed_;
        job.timeout_s = timeout_s_;
        campaign.Add(std::move(job));
      }
    }
  }
  outcomes_ = campaign.Run();
}

const JobOutcome& GridCampaign::outcome(size_t machine, size_t row, size_t variant) const {
  return outcomes_.at(IndexOf(machine, row, variant));
}

const RepeatedResult& GridCampaign::result(size_t machine, size_t row, size_t variant) const {
  const JobOutcome& out = outcome(machine, row, variant);
  if (!out.ok()) {
    throw std::runtime_error("campaign " + name_ + ": job " + machines_[machine] + " x " +
                             rows_[row] + " x " + variants_[variant].label + " " +
                             JobStatusName(out.status) +
                             (out.message.empty() ? "" : ": " + out.message));
  }
  return out.result;
}

}  // namespace nestsim
