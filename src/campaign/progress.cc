#include "src/campaign/progress.h"

#include <cstdio>

namespace nestsim {

ProgressMeter::ProgressMeter(std::string name, size_t total, bool enabled)
    : name_(std::move(name)),
      total_(total),
      enabled_(enabled && total > 0),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - std::chrono::hours(1)) {}

void ProgressMeter::JobDone() {
  if (!enabled_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  const auto now = std::chrono::steady_clock::now();
  const bool final = done_ >= total_;
  if (!final && now - last_print_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_print_ = now;
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
  const double eta_s = rate > 0.0 ? static_cast<double>(total_ - done_) / rate : 0.0;
  std::fprintf(stderr, "\r[%s] %zu/%zu jobs  %.1f jobs/s  ETA %.0fs ", name_.c_str(), done_,
               total_, rate, eta_s);
  if (final) {
    std::fputc('\n', stderr);
  }
  std::fflush(stderr);
}

}  // namespace nestsim
