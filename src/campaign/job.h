// Campaign job records: one seeded-and-repeated experiment per job.
//
// A Job is self-contained — config, workload model, repetitions, wall-clock
// budget — so the campaign runner can execute it on any worker thread. Job
// failures never abort the campaign: timeouts and exceptions are captured in
// the JobOutcome and the remaining jobs keep running.

#ifndef NESTSIM_SRC_CAMPAIGN_JOB_H_
#define NESTSIM_SRC_CAMPAIGN_JOB_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/experiment.h"

namespace nestsim {

enum class JobStatus {
  kOk,       // every repetition completed
  kTimeout,  // wall-clock budget exceeded; partial results are discarded
  kFailed,   // an exception escaped the experiment
};

const char* JobStatusName(JobStatus status);

struct Job {
  // Grid labels used for reporting (row = workload, column = variant).
  std::string workload;
  std::string variant;

  // `config.seed` is overwritten per repetition with base_seed + i.
  ExperimentConfig config;

  // Immutable workload model. Setup() is const and all randomness comes from
  // the per-run seeded Rng, so one instance may back many concurrent jobs.
  std::shared_ptr<const Workload> model;

  int repetitions = 1;
  uint64_t base_seed = 1;
  double timeout_s = 0.0;  // wall-clock budget for the whole job; 0 = unlimited

  // Optional alternative runner (the cluster layer installs
  // RunClusterExperiment here); empty means plain RunExperiment. Must be
  // thread-safe across concurrent jobs, like the workload model.
  std::function<ExperimentResult(const ExperimentConfig&, const Workload&)> runner;
};

struct JobOutcome {
  JobStatus status = JobStatus::kFailed;
  std::string message;        // exception text when status == kFailed
  RepeatedResult result;      // valid only when status == kOk
  double wall_seconds = 0.0;  // what the job cost in real time

  bool ok() const { return status == JobStatus::kOk; }
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CAMPAIGN_JOB_H_
