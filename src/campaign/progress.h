// Throttled progress reporting for long campaigns.

#ifndef NESTSIM_SRC_CAMPAIGN_PROGRESS_H_
#define NESTSIM_SRC_CAMPAIGN_PROGRESS_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace nestsim {

// Prints "\r[name] done/total jobs  R jobs/s  ETA Ns" to stderr, at most once
// per 100 ms; the final update always prints and ends the line. Thread-safe:
// campaign workers call JobDone() as they finish. Progress goes to stderr so
// the paper-style tables on stdout stay clean.
class ProgressMeter {
 public:
  ProgressMeter(std::string name, size_t total, bool enabled);

  void JobDone();

 private:
  const std::string name_;
  const size_t total_;
  const bool enabled_;
  const std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  size_t done_ = 0;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CAMPAIGN_PROGRESS_H_
