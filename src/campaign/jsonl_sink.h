// JSONL result sink: one JSON object per completed job.
//
// Benches emit these records next to their human-readable tables so sweeps
// can be post-processed (pandas, jq, gnuplot) without scraping stdout. The
// sink is enabled by pointing NESTSIM_JSONL at a file path; records are
// appended, one per line.

#ifndef NESTSIM_SRC_CAMPAIGN_JSONL_SINK_H_
#define NESTSIM_SRC_CAMPAIGN_JSONL_SINK_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "src/campaign/job.h"

namespace nestsim {

// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

// The record the sink writes for one job, without the trailing newline.
// Fields: campaign, workload, variant, machine, scheduler, governor,
// base_seed, repetitions, status, wall_s; when the job succeeded also the
// aggregate means and a per-run array (seed, seconds, energy_j,
// underload_per_s, makespan_ns); when it failed, the error message.
std::string JobRecordJson(const std::string& campaign, const Job& job, const JobOutcome& outcome);

class JsonlSink {
 public:
  // Opens `path` for appending. An empty path disables the sink; a failed
  // open disables it too (with a warning on stderr).
  explicit JsonlSink(const std::string& path);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  bool enabled() const { return file_ != nullptr; }

  // Appends one record. Thread-safe.
  void Write(const std::string& campaign, const Job& job, const JobOutcome& outcome);

  // $NESTSIM_JSONL, or "" when unset.
  static std::string PathFromEnv();

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CAMPAIGN_JSONL_SINK_H_
