#include "src/campaign/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "src/campaign/jsonl_sink.h"
#include "src/campaign/progress.h"

namespace nestsim {

int CampaignJobsFromEnv() {
  if (const char* env = std::getenv("NESTSIM_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) {
      return jobs;
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int RepetitionsFromEnv(int fallback) {
  if (const char* env = std::getenv("NESTSIM_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) {
      return reps;
    }
  }
  return fallback;
}

CampaignOptions CampaignOptions::FromEnv() {
  CampaignOptions options;
  options.jobs = CampaignJobsFromEnv();
  options.jsonl_path = JsonlSink::PathFromEnv();
  return options;
}

JobOutcome ExecuteJob(const Job& job) {
  using Clock = std::chrono::steady_clock;
  JobOutcome out;
  const Clock::time_point start = Clock::now();
  const bool timed = job.timeout_s > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(timed ? job.timeout_s : 0.0));
  try {
    std::vector<ExperimentResult> runs;
    runs.reserve(static_cast<size_t>(job.repetitions > 0 ? job.repetitions : 0));
    bool timed_out = false;
    for (int i = 0; i < job.repetitions && !timed_out; ++i) {
      ExperimentConfig config = job.config;
      config.seed = job.base_seed + static_cast<uint64_t>(i);
      if (timed) {
        config.should_abort = [deadline] { return Clock::now() >= deadline; };
      }
      ExperimentResult r =
          job.runner ? job.runner(config, *job.model) : RunExperiment(config, *job.model);
      timed_out = r.aborted;
      if (!timed_out) {
        runs.push_back(std::move(r));
      }
    }
    if (timed_out) {
      out.status = JobStatus::kTimeout;
      out.message = "wall-clock budget exceeded";
    } else {
      out.result = AggregateRuns(std::move(runs));
      out.status = JobStatus::kOk;
    }
  } catch (const std::exception& e) {
    out.status = JobStatus::kFailed;
    out.message = e.what();
  } catch (...) {
    out.status = JobStatus::kFailed;
    out.message = "unknown exception";
  }
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

Campaign::Campaign(std::string name, CampaignOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

size_t Campaign::Add(Job job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<JobOutcome> Campaign::Run() {
  const size_t n = jobs_.size();
  std::vector<JobOutcome> outcomes(n);
  int workers = options_.jobs > 0 ? options_.jobs : CampaignJobsFromEnv();
  if (static_cast<size_t>(workers) > n) {
    workers = static_cast<int>(n);
  }
  ProgressMeter progress(name_, n, options_.progress);

  // Records stream out in Add() order while jobs complete in any order: a
  // finished job marks itself done, then drains every record whose
  // predecessors have all finished. The sink flushes after each record, so
  // killing the campaign mid-run leaves a parseable prefix of the final file.
  JsonlSink sink(options_.jsonl_path);
  std::mutex stream_mu;
  std::vector<char> done(n, 0);
  size_t next_to_write = 0;
  auto stream_outcome = [&](size_t i) {
    if (!sink.enabled()) {
      return;
    }
    std::lock_guard<std::mutex> lock(stream_mu);
    done[i] = 1;
    while (next_to_write < n && done[next_to_write]) {
      sink.Write(name_, jobs_[next_to_write], outcomes[next_to_write]);
      ++next_to_write;
    }
  };

  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      outcomes[i] = ExecuteJob(jobs_[i]);
      stream_outcome(i);
      progress.JobDone();
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        outcomes[i] = ExecuteJob(jobs_[i]);
        stream_outcome(i);
        progress.JobDone();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return outcomes;
}

}  // namespace nestsim
