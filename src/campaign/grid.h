// Declarative job grids: machines × workload rows × scheduler variants.
//
// GridCampaign expands the grid into Jobs in a fixed machine-major order
// (machine, then row, then variant), runs them on the campaign pool, and
// indexes outcomes by (machine, row, variant) — so a bench can print its
// paper-style table in nested-loop order and get bytes identical to a serial
// run, for any worker count.

#ifndef NESTSIM_SRC_CAMPAIGN_GRID_H_
#define NESTSIM_SRC_CAMPAIGN_GRID_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"

namespace nestsim {

// A scheduler/governor column of the paper's tables, e.g. "Nest sched".
struct Variant {
  std::string label;
  SchedulerKind scheduler;
  std::string governor;
};

// Builds the workload model for one grid row. Invoked once per (machine,
// row, variant) cell during expansion, on the calling thread, in grid order.
using RowFactory =
    std::function<std::shared_ptr<const Workload>(size_t row_index, const std::string& row)>;

class GridCampaign {
 public:
  GridCampaign(std::string name, std::vector<std::string> machines,
               std::vector<std::string> rows, std::vector<Variant> variants, RowFactory factory,
               CampaignOptions options = CampaignOptions::FromEnv());

  // Knobs below apply at Run() time to every job.
  void set_repetitions(int reps) { repetitions_ = reps; }
  void set_base_seed(uint64_t seed) { base_seed_ = seed; }
  void set_timeout_s(double s) { timeout_s_ = s; }
  // Last-chance per-job config tweak (e.g. nest parameters, record flags).
  void set_config_hook(std::function<void(ExperimentConfig&)> hook) {
    config_hook_ = std::move(hook);
  }

  void Run();

  const std::vector<std::string>& machines() const { return machines_; }
  const std::vector<std::string>& rows() const { return rows_; }
  const std::vector<Variant>& variants() const { return variants_; }

  // Valid after Run().
  const JobOutcome& outcome(size_t machine, size_t row, size_t variant) const;
  // The aggregated result; throws std::runtime_error when the job timed out
  // or failed — use outcome() where failures are expected.
  const RepeatedResult& result(size_t machine, size_t row, size_t variant) const;

 private:
  size_t IndexOf(size_t machine, size_t row, size_t variant) const;

  std::string name_;
  std::vector<std::string> machines_;
  std::vector<std::string> rows_;
  std::vector<Variant> variants_;
  RowFactory factory_;
  CampaignOptions options_;

  int repetitions_ = 1;
  uint64_t base_seed_ = 1;
  double timeout_s_ = 0.0;
  std::function<void(ExperimentConfig&)> config_hook_;

  std::vector<JobOutcome> outcomes_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CAMPAIGN_GRID_H_
