// The campaign runner: executes a batch of independent experiment jobs on a
// fixed-size worker pool.
//
// Each seeded simulation is single-threaded and self-contained, so a grid of
// machines × variants × workloads × seeds is embarrassingly parallel. Jobs
// are claimed from an atomic cursor (the "queue" is an index, not a locked
// structure) and outcomes land in a slot vector indexed by submission order,
// so results are deterministic and bitwise-identical for any worker count.
// NESTSIM_JOBS=1 runs everything serially on the calling thread, in
// submission order — exactly the old per-bench loops.

#ifndef NESTSIM_SRC_CAMPAIGN_CAMPAIGN_H_
#define NESTSIM_SRC_CAMPAIGN_CAMPAIGN_H_

#include <string>
#include <vector>

#include "src/campaign/job.h"

namespace nestsim {

// Worker count from NESTSIM_JOBS; defaults to hardware concurrency (min 1).
int CampaignJobsFromEnv();

// Per-cell repetition count: NESTSIM_REPS when set to a positive integer,
// otherwise `fallback`. Every bench and the scenario engine resolve their
// repetition counts through this so the environment override works uniformly.
int RepetitionsFromEnv(int fallback);

struct CampaignOptions {
  int jobs = 0;            // worker threads; <= 0 resolves to hardware concurrency
  bool progress = true;    // throttled stderr progress line
  std::string jsonl_path;  // JSONL sink target; "" = disabled

  // NESTSIM_JOBS for the worker count, NESTSIM_JSONL for the sink.
  static CampaignOptions FromEnv();
};

// Executes one job in isolation: seeds base_seed..base_seed+reps-1, enforces
// the wall-clock budget, captures exceptions. Exposed for tests and custom
// drivers.
JobOutcome ExecuteJob(const Job& job);

class Campaign {
 public:
  explicit Campaign(std::string name, CampaignOptions options = CampaignOptions::FromEnv());

  // Returns the job's index; Run() reports outcomes in the same order.
  size_t Add(Job job);

  size_t size() const { return jobs_.size(); }
  const std::string& name() const { return name_; }
  const std::vector<Job>& jobs() const { return jobs_; }

  // Runs every job and returns outcomes in Add() order regardless of
  // completion order. JSONL records are streamed while the campaign runs —
  // still in Add() order, each record flushed as soon as every earlier job
  // has finished — so the sink file is deterministic AND a killed campaign
  // leaves a parseable partial file. Timed-out and failed jobs get a record
  // too (status + error message).
  std::vector<JobOutcome> Run();

 private:
  std::string name_;
  CampaignOptions options_;
  std::vector<Job> jobs_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CAMPAIGN_CAMPAIGN_H_
