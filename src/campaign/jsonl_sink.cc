#include "src/campaign/jsonl_sink.h"

#include <cstdlib>

#include "src/obs/sched_counters.h"

namespace nestsim {

namespace {

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendField(std::string& out, const char* key, const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += '"';
}

void AppendField(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  AppendDouble(out, value);
}

void AppendField(std::string& out, const char* key, uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kTimeout:
      return "timeout";
    case JobStatus::kFailed:
      return "failed";
  }
  return "?";
}

std::string JobRecordJson(const std::string& campaign, const Job& job,
                          const JobOutcome& outcome) {
  std::string out = "{";
  AppendField(out, "campaign", campaign);
  out += ',';
  AppendField(out, "workload", job.workload);
  out += ',';
  AppendField(out, "variant", job.variant);
  out += ',';
  AppendField(out, "machine", job.config.machine);
  out += ',';
  AppendField(out, "scheduler", std::string(SchedulerKindName(job.config.scheduler)));
  out += ',';
  AppendField(out, "governor", job.config.governor);
  out += ',';
  AppendField(out, "base_seed", job.base_seed);
  out += ',';
  AppendField(out, "repetitions", static_cast<uint64_t>(job.repetitions));
  out += ',';
  AppendField(out, "status", std::string(JobStatusName(outcome.status)));
  out += ',';
  AppendField(out, "wall_s", outcome.wall_seconds);
  if (outcome.status == JobStatus::kFailed) {
    out += ',';
    AppendField(out, "error", outcome.message);
  }
  if (outcome.status == JobStatus::kOk) {
    out += ',';
    AppendField(out, "mean_s", outcome.result.mean_seconds);
    out += ',';
    AppendField(out, "stddev_s", outcome.result.stddev_seconds);
    out += ',';
    AppendField(out, "mean_energy_j", outcome.result.mean_energy_j);
    out += ',';
    AppendField(out, "mean_underload_per_s", outcome.result.mean_underload_per_s);
    out += ",\"runs\":[";
    for (size_t i = 0; i < outcome.result.runs.size(); ++i) {
      const ExperimentResult& r = outcome.result.runs[i];
      if (i > 0) {
        out += ',';
      }
      out += '{';
      AppendField(out, "seed", job.base_seed + i);
      out += ',';
      AppendField(out, "seconds", r.seconds());
      out += ',';
      AppendField(out, "energy_j", r.energy_joules);
      out += ',';
      AppendField(out, "underload_per_s", r.underload_per_s);
      out += ',';
      AppendField(out, "makespan_ns", static_cast<uint64_t>(r.makespan));
      if (r.resilience.any()) {
        // Fault/replica resilience block (docs/FAULTS.md): only present on
        // runs where faults actually fired, matching the counter convention.
        out += ',';
        AppendField(out, "tasks_killed", r.resilience.tasks_killed);
        out += ',';
        AppendField(out, "replicas_reaped", r.resilience.replicas_reaped);
        out += ',';
        AppendField(out, "evacuations", r.resilience.evacuations);
        out += ',';
        AppendField(out, "work_lost_ms", r.resilience.work_lost_ms);
        out += ',';
        AppendField(out, "wasted_replica_ms", r.resilience.wasted_replica_ms);
        out += ',';
        AppendField(out, "mean_evac_latency_us", r.resilience.mean_evac_latency_us);
        out += ',';
        AppendField(out, "requests_failed", r.resilience.requests_failed);
        out += ',';
        AppendField(out, "requests_degraded", r.resilience.requests_degraded);
      }
      out += '}';
    }
    out += ']';
    // Decision counters summed across the job's runs (docs/OBSERVABILITY.md).
    SchedCounters summed;
    for (const ExperimentResult& r : outcome.result.runs) {
      summed.Add(r.counters);
    }
    out += ",\"counters\":";
    out += SchedCountersJson(summed);
  }
  out += '}';
  return out;
}

JsonlSink::JsonlSink(const std::string& path) {
  if (path.empty()) {
    return;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    std::fprintf(stderr, "[campaign] cannot open JSONL sink %s; disabling\n", path.c_str());
  }
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void JsonlSink::Write(const std::string& campaign, const Job& job, const JobOutcome& outcome) {
  if (file_ == nullptr) {
    return;
  }
  const std::string record = JobRecordJson(campaign, job, outcome);
  std::lock_guard<std::mutex> lock(mu_);
  std::fputs(record.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::string JsonlSink::PathFromEnv() {
  const char* env = std::getenv("NESTSIM_JSONL");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace nestsim
