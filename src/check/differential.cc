#include "src/check/differential.h"

#include <cstdio>

#include "src/scenario/baseline.h"
#include "src/scenario/runner.h"

namespace nestsim {

namespace {

// Expands and executes one pass of the grid with `jobs` campaign workers,
// the invariant checker forced on, and the caller's mutation applied.
// `engine_workers` >= 0 forces config.parallel.workers on every job (after
// the mutation, so the engine passes stay comparable even when a mutation
// touches the config); -1 keeps whatever the scenario drew.
bool RunPass(const Scenario& scenario, int jobs, int engine_workers,
             const DifferentialOptions& options, ScenarioRun* run, ScenarioError* err) {
  ScenarioRunOptions run_options;
  run_options.campaign.jobs = jobs;
  run_options.campaign.progress = false;
  run_options.campaign.jsonl_path.clear();  // hermetic: ignore NESTSIM_JSONL
  if (!ExpandScenario(scenario, run_options, run, err)) {
    return false;
  }
  for (Job& job : run->jobs) {
    job.config.check_invariants = true;
    if (options.mutate_config) {
      options.mutate_config(&job.config);
    }
    if (engine_workers >= 0) {
      job.config.parallel.workers = engine_workers;
    }
  }
  ExecuteScenario(run);
  return true;
}

std::string JobLabel(const ScenarioRun& run, size_t machine, size_t row, size_t variant,
                     size_t sweep) {
  const Job& job = run.job(machine, row, variant, sweep);
  std::string label = run.scenario.machines[machine] + " " + job.workload + "/" + job.variant;
  if (!run.sweep_labels[sweep].empty()) {
    label += " [" + run.sweep_labels[sweep] + "]";
  }
  return label;
}

// `b_desc` names pass b in problem messages ("a pool", "4 PDES workers").
void CheckDeterminism(const ScenarioRun& a, const ScenarioRun& b, const std::string& b_desc,
                      DifferentialReport* report) {
  for (size_t m = 0; m < a.num_machines(); ++m) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      for (size_t v = 0; v < a.num_variants(); ++v) {
        for (size_t s = 0; s < a.num_sweeps(); ++s) {
          const JobOutcome& oa = a.outcome(m, r, v, s);
          const JobOutcome& ob = b.outcome(m, r, v, s);
          const std::string label = JobLabel(a, m, r, v, s);
          if (oa.status != ob.status) {
            report->problems.push_back("nondeterminism: " + label + " is " +
                                       JobStatusName(oa.status) + " on 1 worker but " +
                                       JobStatusName(ob.status) + " on " + b_desc);
            continue;
          }
          if (!oa.ok()) {
            continue;  // both failed identically; reported by CheckHealth
          }
          if (oa.result.runs.size() != ob.result.runs.size()) {
            report->problems.push_back("nondeterminism: " + label + " repetition counts differ");
            continue;
          }
          for (size_t i = 0; i < oa.result.runs.size(); ++i) {
            const ExperimentResult& ra = oa.result.runs[i];
            const ExperimentResult& rb = ob.result.runs[i];
            if (ra.makespan != rb.makespan || ra.tasks_created != rb.tasks_created ||
                ra.migrations != rb.migrations ||
                SchedCountersDigest(ra.counters) != SchedCountersDigest(rb.counters)) {
              char detail[160];
              std::snprintf(detail, sizeof(detail),
                            "rep %zu: makespan %lld vs %lld ns, digest %s vs %s",
                            i, static_cast<long long>(ra.makespan),
                            static_cast<long long>(rb.makespan),
                            SchedCountersDigest(ra.counters).c_str(),
                            SchedCountersDigest(rb.counters).c_str());
              report->problems.push_back("nondeterminism: " + label + " " + detail);
            }
          }
        }
      }
    }
  }
}

void CheckHealth(const ScenarioRun& run, DifferentialReport* report) {
  for (size_t m = 0; m < run.num_machines(); ++m) {
    for (size_t r = 0; r < run.num_rows(); ++r) {
      for (size_t v = 0; v < run.num_variants(); ++v) {
        for (size_t s = 0; s < run.num_sweeps(); ++s) {
          const JobOutcome& outcome = run.outcome(m, r, v, s);
          if (outcome.ok()) {
            continue;
          }
          std::string problem = std::string(JobStatusName(outcome.status)) + ": " +
                                JobLabel(run, m, r, v, s);
          if (!outcome.message.empty()) {
            problem += "\n" + outcome.message;
          }
          report->problems.push_back(std::move(problem));
        }
      }
    }
  }
}

// Across variants of the same (machine, row, sweep) cell the workload model
// and seed are identical, so the task population must be too.
void CheckAccounting(const ScenarioRun& run, DifferentialReport* report) {
  for (size_t m = 0; m < run.num_machines(); ++m) {
    for (size_t r = 0; r < run.num_rows(); ++r) {
      for (size_t s = 0; s < run.num_sweeps(); ++s) {
        bool comparable = true;
        for (size_t v = 0; v < run.num_variants() && comparable; ++v) {
          const JobOutcome& outcome = run.outcome(m, r, v, s);
          comparable = outcome.ok();
          if (comparable) {
            for (const ExperimentResult& rep : outcome.result.runs) {
              comparable = comparable && !rep.hit_time_limit && !rep.aborted;
            }
          }
        }
        if (!comparable || run.num_variants() < 2) {
          continue;
        }
        const JobOutcome& base = run.outcome(m, r, 0, s);
        for (size_t v = 1; v < run.num_variants(); ++v) {
          const JobOutcome& other = run.outcome(m, r, v, s);
          for (size_t i = 0; i < base.result.runs.size(); ++i) {
            if (base.result.runs[i].tasks_created != other.result.runs[i].tasks_created) {
              char detail[128];
              std::snprintf(detail, sizeof(detail), "rep %zu created %d tasks vs %d under %s", i,
                            other.result.runs[i].tasks_created,
                            base.result.runs[i].tasks_created,
                            run.job(m, r, 0, s).variant.c_str());
              report->problems.push_back("task accounting: " + JobLabel(run, m, r, v, s) + " " +
                                         detail);
            }
          }
        }
      }
    }
  }
}

void CheckNeutrality(const ScenarioRun& run, double band, DifferentialReport* report) {
  // Pair each Nest variant with the CFS variant sharing its governor.
  for (size_t m = 0; m < run.num_machines(); ++m) {
    for (size_t r = 0; r < run.num_rows(); ++r) {
      for (size_t s = 0; s < run.num_sweeps(); ++s) {
        for (size_t nest = 0; nest < run.num_variants(); ++nest) {
          if (run.scenario.variants[nest].scheduler != SchedulerKind::kNest) {
            continue;
          }
          for (size_t cfs = 0; cfs < run.num_variants(); ++cfs) {
            if (run.scenario.variants[cfs].scheduler != SchedulerKind::kCfs ||
                run.scenario.variants[cfs].governor != run.scenario.variants[nest].governor) {
              continue;
            }
            const JobOutcome& oc = run.outcome(m, r, cfs, s);
            const JobOutcome& on = run.outcome(m, r, nest, s);
            if (!oc.ok() || !on.ok()) {
              continue;
            }
            bool bounded = true;
            for (const JobOutcome* o : {&oc, &on}) {
              for (const ExperimentResult& rep : o->result.runs) {
                bounded = bounded && !rep.hit_time_limit && !rep.aborted;
              }
            }
            if (!bounded || oc.result.mean_seconds <= 0 || on.result.mean_seconds <= 0) {
              continue;
            }
            const double ratio = on.result.mean_seconds / oc.result.mean_seconds;
            if (ratio > 1.0 + band || ratio < 1.0 / (1.0 + band)) {
              char detail[160];
              std::snprintf(detail, sizeof(detail),
                            "nest %.4fs vs cfs %.4fs (ratio %.3f outside +/-%.0f%%)",
                            on.result.mean_seconds, oc.result.mean_seconds, ratio, band * 100);
              report->problems.push_back("full-load neutrality: " +
                                         JobLabel(run, m, r, nest, s) + " " + detail);
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::string DifferentialReport::Join() const {
  std::string out;
  for (const std::string& p : problems) {
    if (!out.empty()) {
      out += '\n';
    }
    out += p;
  }
  return out;
}

DifferentialReport RunDifferential(const JsonValue& spec, bool full_load,
                                   const DifferentialOptions& options) {
  DifferentialReport report;

  Scenario scenario;
  ScenarioError err;
  if (!ParseScenario(spec, "generated", &scenario, &err)) {
    report.problems.push_back("generated spec does not parse:\n" + err.Join());
    return report;
  }

  // The serial pass pins the serial PDES reference loop so both cross-checks
  // below compare against the same ground truth; the campaign pass keeps the
  // scenario's own parallel.* draw.
  ScenarioRun serial;
  ScenarioRun parallel;
  if (!RunPass(scenario, options.serial_jobs, /*engine_workers=*/0, options, &serial, &err) ||
      !RunPass(scenario, options.parallel_jobs, /*engine_workers=*/-1, options, &parallel,
               &err)) {
    report.problems.push_back("scenario does not expand:\n" + err.Join());
    return report;
  }
  report.jobs = serial.jobs.size();

  CheckHealth(serial, &report);
  CheckDeterminism(serial, parallel, "a pool", &report);
  if (options.engine_workers > 0) {
    ScenarioRun engine;
    if (!RunPass(scenario, options.serial_jobs, options.engine_workers, options, &engine,
                 &err)) {
      report.problems.push_back("scenario does not expand:\n" + err.Join());
      return report;
    }
    CheckDeterminism(serial, engine,
                     std::to_string(options.engine_workers) + " PDES workers", &report);
  }
  // The nest_predict fallback contract (docs/PREDICTION.md §3): with no
  // model loaded the policy must be bit-identical to plain Nest. Re-run the
  // serial pass with every kNest job flipped to kNestPredict — model nulled,
  // in case the scenario drew predict.model_file — and hold it to the same
  // determinism bar as a worker-count change.
  bool any_nest = false;
  for (const auto& variant : scenario.variants) {
    any_nest = any_nest || variant.scheduler == SchedulerKind::kNest;
  }
  if (any_nest) {
    DifferentialOptions flip = options;
    flip.mutate_config = [&options](ExperimentConfig* config) {
      if (options.mutate_config) {
        options.mutate_config(config);
      }
      if (config->scheduler == SchedulerKind::kNest) {
        config->scheduler = SchedulerKind::kNestPredict;
        config->predict.model = nullptr;
      }
    };
    ScenarioRun predict;
    if (!RunPass(scenario, options.serial_jobs, /*engine_workers=*/0, flip, &predict, &err)) {
      report.problems.push_back("scenario does not expand:\n" + err.Join());
      return report;
    }
    CheckDeterminism(serial, predict, "nest_predict with an empty model", &report);
  }
  CheckAccounting(serial, &report);
  if (full_load) {
    CheckNeutrality(serial, options.neutrality_band, &report);
  }
  return report;
}

}  // namespace nestsim
