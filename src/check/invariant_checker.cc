#include "src/check/invariant_checker.h"

#include <cstdio>

namespace nestsim {

namespace {

// Frequency / utilisation tolerance: the hardware integrates in doubles.
constexpr double kEps = 1e-6;

std::string FormatViolation(Invariant invariant, SimTime now, const std::string& detail) {
  char head[64];
  std::snprintf(head, sizeof(head), "[invariant] %s @%lldns: ", InvariantName(invariant),
                static_cast<long long>(now));
  return head + detail;
}

}  // namespace

std::vector<std::string> InvariantNames() {
  std::vector<std::string> names;
  names.reserve(kNumInvariants);
  for (int i = 0; i < kNumInvariants; ++i) {
    names.push_back(InvariantName(static_cast<Invariant>(i)));
  }
  return names;
}

InvariantChecker::InvariantChecker(Kernel* kernel, Options options)
    : kernel_(kernel),
      options_(options),
      check_work_conservation_(options.check_work_conservation &&
                               kernel->params().enable_periodic_balance &&
                               kernel->params().enable_newidle_balance),
      reservations_in_use_(kernel->policy().UsesPlacementReservation()),
      res_claim_time_(static_cast<size_t>(kernel->topology().num_cpus()), -1),
      ql_streak_(static_cast<size_t>(kernel->topology().num_cpus()), 0),
      ql_reported_(static_cast<size_t>(kernel->topology().num_cpus()), 0),
      rq_util_update_(static_cast<size_t>(kernel->topology().num_cpus()), 0) {}

void InvariantChecker::Observe(SimTime now) {
  if (now < last_now_) {
    char detail[96];
    std::snprintf(detail, sizeof(detail), "observed %lldns after %lldns",
                  static_cast<long long>(now), static_cast<long long>(last_now_));
    Violate(Invariant::kTimeMonotonicity, now, detail);
  }
  last_now_ = now;
}

void InvariantChecker::Violate(Invariant invariant, SimTime now, const std::string& detail) {
  ++counts_[static_cast<int>(invariant)];
  ++total_violations_;
  if (messages_.size() < options_.max_messages) {
    messages_.push_back(FormatViolation(invariant, now, detail));
  }
}

std::string InvariantChecker::Report() const {
  std::string out;
  for (const std::string& message : messages_) {
    if (!out.empty()) {
      out += '\n';
    }
    out += message;
  }
  const uint64_t shown = static_cast<uint64_t>(messages_.size());
  if (total_violations_ > shown) {
    char more[64];
    std::snprintf(more, sizeof(more), "\n[invariant] ... and %llu more violations",
                  static_cast<unsigned long long>(total_violations_ - shown));
    out += more;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-event callbacks
// ---------------------------------------------------------------------------

void InvariantChecker::OnTaskCreated(SimTime now, const Task& task) {
  (void)task;
  Observe(now);
}

void InvariantChecker::OnTaskEnqueued(SimTime now, const Task& task, int cpu) {
  (void)task;
  Observe(now);
  // Every enqueue clears the CPU's reservation claim (EnqueueTask calls
  // ClearClaim unconditionally — placements, migrations, balancer pulls).
  if (reservations_in_use_) {
    res_claim_time_[cpu] = -1;
  }
}

void InvariantChecker::OnContextSwitch(SimTime now, int cpu, const Task* prev,
                                       const Task* next) {
  (void)prev;
  Observe(now);
  if (next != nullptr && kernel_->rq(cpu).Queued(next)) {
    Violate(Invariant::kQueueLiveness, now,
            "running task tid " + std::to_string(next->tid) + " is still queued on cpu " +
                std::to_string(cpu));
  }
}

void InvariantChecker::OnTaskBlocked(SimTime now, const Task& task, int cpu) {
  (void)task;
  (void)cpu;
  Observe(now);
}

void InvariantChecker::OnTaskExit(SimTime now, const Task& task) {
  (void)task;
  Observe(now);
}

void InvariantChecker::OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) {
  (void)is_fork;
  Observe(now);
  if (!reservations_in_use_) {
    return;
  }
  // Replay the kernel's TryClaim against the mirrored claim state. Collisions
  // themselves are legitimate — the §3.4 race the claim protocol exists to
  // detect — but the kernel's verdict must match ours: a placement that lands
  // while a live (unexpired, uncleared) claim is outstanding must have raised
  // OnReservationCollision just before this callback, and a collision must
  // never be reported when no live claim exists.
  const bool collided =
      pending_collision_cpu_ == cpu && pending_collision_tid_ == task.tid;
  pending_collision_cpu_ = -1;
  pending_collision_tid_ = -1;
  const bool live =
      res_claim_time_[cpu] >= 0 && now - res_claim_time_[cpu] < RunQueue::kClaimTimeout;
  if (live && !collided) {
    Violate(Invariant::kReservationExclusivity, now,
            "placement of tid " + std::to_string(task.tid) + " was granted cpu " +
                std::to_string(cpu) + " while the claim from " +
                std::to_string(res_claim_time_[cpu]) + "ns was still live");
  } else if (!live && collided) {
    Violate(Invariant::kReservationExclusivity, now,
            "placement of tid " + std::to_string(task.tid) + " collided on cpu " +
                std::to_string(cpu) + " with no live claim (leaked or stale reservation)");
  }
  if (!collided) {
    res_claim_time_[cpu] = now;  // the kernel granted this placement the claim
  }
}

void InvariantChecker::OnReservationCollision(SimTime now, const Task& task, int cpu) {
  Observe(now);
  // Record only; OnTaskPlaced fires next for the same placement and judges
  // the collision against the mirrored claim state.
  pending_collision_cpu_ = cpu;
  pending_collision_tid_ = task.tid;
}

void InvariantChecker::OnTaskMigrated(SimTime now, const Task& task, int from_cpu, int to_cpu,
                                      MigrationReason reason) {
  (void)task;
  (void)from_cpu;
  (void)to_cpu;
  (void)reason;
  Observe(now);
}

void InvariantChecker::OnNestEvent(SimTime now, NestEventKind kind, int cpu) {
  (void)kind;
  (void)cpu;
  Observe(now);
}

void InvariantChecker::OnIdleSpinStart(SimTime now, int cpu, int max_ticks) {
  (void)cpu;
  (void)max_ticks;
  Observe(now);
}

void InvariantChecker::OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) {
  (void)cpu;
  (void)became_busy;
  Observe(now);
}

void InvariantChecker::OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) {
  Observe(now);
  const MachineSpec& spec = kernel_->hw().spec();
  if (freq_ghz < spec.min_freq_ghz - kEps || freq_ghz > spec.turbo.MaxTurboGhz() + kEps) {
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "phys core %d moved to %.3f GHz, outside [%.3f, %.3f]", phys_core, freq_ghz,
                  spec.min_freq_ghz, spec.turbo.MaxTurboGhz());
    Violate(Invariant::kTurboAccounting, now, detail);
  }
}

// ---------------------------------------------------------------------------
// Tick-granularity machine scans
// ---------------------------------------------------------------------------

void InvariantChecker::OnTick(SimTime now) {
  Observe(now);
  if (check_work_conservation_) {
    SampleWorkConservation(now);
  }
  SampleQueueLiveness(now);
  SamplePeltBounds(now);
  SampleTurboAccounting(now);
}

void InvariantChecker::SampleWorkConservation(SimTime now) {
  // OnTick fires after the periodic balance pass pulled one waiter per idle
  // CPU, so in a healthy kernel a queued-task-while-idle-core state never
  // survives to this sample more than transiently. Persisting across
  // `work_conservation_ticks` consecutive samples means the balancers and the
  // wakeup path all failed to use an idle core.
  const int num_cpus = kernel_->topology().num_cpus();
  int queued = 0;
  int idle = 0;
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    // Offline cores (src/fault/) are neither idle capacity nor allowed to
    // hold waiters; work conservation is an online-cores property.
    if (!kernel_->CpuOnline(cpu)) {
      continue;
    }
    const RunQueue& rq = kernel_->rq(cpu);
    queued += rq.QueuedCount();
    idle += rq.Idle() ? 1 : 0;
  }
  const bool violating = queued > 0 && idle > 0;
  if (!violating) {
    wc_streak_ = 0;
    wc_reported_ = false;
    return;
  }
  ++wc_streak_;
  if (wc_streak_ >= options_.work_conservation_ticks && !wc_reported_) {
    wc_reported_ = true;
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "%d task(s) queued while %d core(s) idled for %d consecutive ticks", queued,
                  idle, wc_streak_);
    Violate(Invariant::kWorkConservation, now, detail);
  }
}

void InvariantChecker::SampleQueueLiveness(SimTime now) {
  // A run queue with waiters but no running task resolves within the same
  // event in a healthy kernel (EnqueueTask dispatches; balancer pulls call
  // ScheduleCpu). Unlike work conservation this holds with the balancers
  // disabled too, so it stays armed for every configuration — it is the
  // signature of a lost wakeup.
  const int num_cpus = kernel_->topology().num_cpus();
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    // An offline core's queue was drained by OfflineCpu and can never be
    // dispatched; liveness is scoped to online cores. A task queued on an
    // offline core would itself be a bug, but it surfaces as a WC violation
    // (the waiter starves while online cores idle), not as stuck dispatch.
    if (!kernel_->CpuOnline(cpu)) {
      ql_streak_[cpu] = 0;
      ql_reported_[cpu] = 0;
      continue;
    }
    const RunQueue& rq = kernel_->rq(cpu);
    const bool stuck = rq.QueuedCount() > 0 && rq.curr() == nullptr;
    if (!stuck) {
      ql_streak_[cpu] = 0;
      ql_reported_[cpu] = 0;
      continue;
    }
    ++ql_streak_[cpu];
    if (ql_streak_[cpu] >= options_.queue_liveness_ticks && !ql_reported_[cpu]) {
      ql_reported_[cpu] = 1;
      char detail[128];
      std::snprintf(detail, sizeof(detail),
                    "cpu %d has %d queued task(s) but nothing running for %d consecutive ticks",
                    cpu, rq.QueuedCount(), ql_streak_[cpu]);
      Violate(Invariant::kQueueLiveness, now, detail);
    }
  }
}

void InvariantChecker::SamplePeltBounds(SimTime now) {
  const int num_cpus = kernel_->topology().num_cpus();
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    const PeltSignal& util = kernel_->rq(cpu).util();
    if (util.raw() < -kEps || util.raw() > 1.0 + kEps) {
      char detail[96];
      std::snprintf(detail, sizeof(detail), "cpu %d rq utilisation %.6f outside [0, 1]", cpu,
                    util.raw());
      Violate(Invariant::kPeltBounds, now, detail);
    }
    if (util.last_update() > now) {
      char detail[96];
      std::snprintf(detail, sizeof(detail), "cpu %d rq utilisation updated at %lldns, future of now",
                    cpu, static_cast<long long>(util.last_update()));
      Violate(Invariant::kPeltBounds, now, detail);
    }
    if (util.last_update() < rq_util_update_[cpu]) {
      char detail[96];
      std::snprintf(detail, sizeof(detail), "cpu %d rq utilisation update went backwards to %lldns",
                    cpu, static_cast<long long>(util.last_update()));
      Violate(Invariant::kPeltBounds, now, detail);
    }
    rq_util_update_[cpu] = util.last_update();

    const Task* curr = kernel_->rq(cpu).curr();
    if (curr != nullptr &&
        (curr->util.raw() < -kEps || curr->util.raw() > 1.0 + kEps)) {
      char detail[96];
      std::snprintf(detail, sizeof(detail), "tid %d utilisation %.6f outside [0, 1]", curr->tid,
                    curr->util.raw());
      Violate(Invariant::kPeltBounds, now, detail);
    }
  }
}

void InvariantChecker::SampleTurboAccounting(SimTime now) {
  const HardwareModel& hw = kernel_->hw();
  const Topology& topo = kernel_->topology();
  const MachineSpec& spec = hw.spec();
  for (int socket = 0; socket < topo.num_sockets(); ++socket) {
    // Recount busy physical cores from the per-thread ground truth and compare
    // against the hardware model's incrementally maintained count.
    int recount = 0;
    const int base = socket * topo.physical_cores_per_socket();
    for (int phys = base; phys < base + topo.physical_cores_per_socket(); ++phys) {
      bool busy = false;
      for (int cpu : topo.CpusOfPhysCore(phys)) {
        busy = busy || hw.ThreadBusy(cpu);
      }
      recount += busy ? 1 : 0;
    }
    const int active = hw.ActivePhysCoresOnSocket(socket);
    if (active != recount) {
      char detail[128];
      std::snprintf(detail, sizeof(detail),
                    "socket %d active-core count %d but %d cores have busy threads", socket,
                    active, recount);
      Violate(Invariant::kTurboAccounting, now, detail);
    }
    // Licenses cover every busy core (busy ⇒ licensed) and never exceed the
    // socket's physical core count.
    const int licenses = hw.TurboLicensesOnSocket(socket);
    if (licenses < recount || licenses > topo.physical_cores_per_socket()) {
      char detail[128];
      std::snprintf(detail, sizeof(detail),
                    "socket %d holds %d turbo licenses with %d busy cores (of %d physical)",
                    socket, licenses, recount, topo.physical_cores_per_socket());
      Violate(Invariant::kTurboAccounting, now, detail);
    }
  }
  // Frequencies stay inside the machine's physical envelope. (The ladder cap
  // for the *current* license count is not asserted: ramp-down is gradual, so
  // a core may legitimately sit above a cap it is still descending toward.)
  for (int phys = 0; phys < topo.num_physical_cores(); ++phys) {
    const double f = hw.FreqGhz(topo.CpusOfPhysCore(phys).front());
    if (f < spec.min_freq_ghz - kEps || f > spec.turbo.MaxTurboGhz() + kEps) {
      char detail[128];
      std::snprintf(detail, sizeof(detail), "phys core %d at %.3f GHz, outside [%.3f, %.3f]",
                    phys, f, spec.min_freq_ghz, spec.turbo.MaxTurboGhz());
      Violate(Invariant::kTurboAccounting, now, detail);
    }
  }
}

}  // namespace nestsim
