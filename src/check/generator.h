// Seeded random scenario generator for the correctness harness (src/check/).
//
// GenerateScenario(seed) draws one valid scenario spec — machine, variant
// set, workload family with in-range parameters, config overrides, optional
// sweep axis — from the same registries the scenario engine validates
// against. The result is a standard scenario file (docs/SCENARIOS.md): it
// always parses with ParseScenario and can be written verbatim into
// scenarios/ as a repro. The differential runner (src/check/differential.h)
// executes generated scenarios under every variant and cross-checks them;
// tools/nestsim_fuzz drives the loop.

#ifndef NESTSIM_SRC_CHECK_GENERATOR_H_
#define NESTSIM_SRC_CHECK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "src/obs/json_check.h"

namespace nestsim {

struct GeneratedScenario {
  uint64_t seed = 0;
  JsonValue spec;    // scenario object named "fuzz-<seed>"; ParseScenario-valid
  std::string json;  // pretty-printed spec, the standard scenario-file form

  // True when every variant saturates the machine for the whole run (a NAS
  // row with one pinned-width worker per CPU): under full load the paper
  // expects CFS and Nest to be performance-neutral, so the differential
  // runner additionally applies its neutrality band.
  bool full_load = false;
};

// Deterministic: the same seed always yields the same scenario.
GeneratedScenario GenerateScenario(uint64_t seed);

}  // namespace nestsim

#endif  // NESTSIM_SRC_CHECK_GENERATOR_H_
