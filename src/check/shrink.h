// Greedy scenario minimisation for fuzz failures.
//
// Given a scenario spec that fails the differential runner, ShrinkScenario
// repeatedly applies structural reductions — drop a variant, a sweep axis, a
// config override, a multi member, a workload row; halve a numeric workload
// parameter — keeping a candidate only when it still parses AND still fails.
// The result is a minimal standard scenario file ready to commit under
// scenarios/corpus/ as a repro. Deterministic: the same input spec and
// options always shrink to the same output.

#ifndef NESTSIM_SRC_CHECK_SHRINK_H_
#define NESTSIM_SRC_CHECK_SHRINK_H_

#include <string>

#include "src/check/differential.h"
#include "src/obs/json_check.h"

namespace nestsim {

struct ShrinkOptions {
  // Oracle configuration; mutate_config carries fault injections through.
  DifferentialOptions diff;
  // Hard cap on oracle invocations (each one runs the whole grid twice).
  int max_attempts = 150;
};

struct ShrinkOutcome {
  JsonValue spec;    // the minimised scenario (== input when nothing shrank)
  std::string json;  // pretty-printed spec + trailing newline
  int attempts = 0;  // oracle invocations spent
  int accepted = 0;  // reductions that kept the failure alive
};

// `failing_spec` must currently fail RunDifferential under `options.diff`;
// when it does not, the input is returned unshrunk after one attempt.
ShrinkOutcome ShrinkScenario(const JsonValue& failing_spec, bool full_load,
                             const ShrinkOptions& options = ShrinkOptions());

}  // namespace nestsim

#endif  // NESTSIM_SRC_CHECK_SHRINK_H_
