#include "src/check/generator.h"

#include <cmath>
#include <utility>
#include <vector>

#include "src/sim/random.h"

namespace nestsim {

namespace {

// ---- JsonValue builders --------------------------------------------------

JsonValue Num(double v) {
  JsonValue out;
  out.type = JsonValue::Type::kNumber;
  out.number = v;
  return out;
}

JsonValue Str(std::string v) {
  JsonValue out;
  out.type = JsonValue::Type::kString;
  out.string = std::move(v);
  return out;
}

JsonValue Bool(bool v) {
  JsonValue out;
  out.type = JsonValue::Type::kBool;
  out.boolean = v;
  return out;
}

JsonValue Obj() {
  JsonValue out;
  out.type = JsonValue::Type::kObject;
  return out;
}

JsonValue Arr() {
  JsonValue out;
  out.type = JsonValue::Type::kArray;
  return out;
}

void Add(JsonValue& obj, std::string key, JsonValue value) {
  obj.members.emplace_back(std::move(key), std::move(value));
}

void Push(JsonValue& arr, JsonValue value) { arr.items.push_back(std::move(value)); }

// ---- draws ---------------------------------------------------------------

// Keeps generated doubles readable (and %.17g-noise-free) in repro files.
double Round3(double v) { return std::round(v * 1000.0) / 1000.0; }

double Uniform(Rng& rng, double lo, double hi) { return Round3(rng.NextDouble(lo, hi)); }

int IntIn(Rng& rng, int lo, int hi) { return static_cast<int>(rng.NextInt(lo, hi)); }

struct Weighted {
  const char* name;
  int weight;
};

const char* Pick(Rng& rng, const std::vector<Weighted>& table) {
  int total = 0;
  for (const Weighted& w : table) {
    total += w.weight;
  }
  int draw = IntIn(rng, 0, total - 1);
  for (const Weighted& w : table) {
    draw -= w.weight;
    if (draw < 0) {
      return w.name;
    }
  }
  return table.back().name;
}

// ---- per-family parameter draws -----------------------------------------
// Every range below sits strictly inside the registry's validated range
// (src/scenario/registry.cc), biased small so a fuzz run stays fast.

JsonValue HackbenchParams(Rng& rng) {
  JsonValue p = Obj();
  Add(p, "groups", Num(IntIn(rng, 1, 4)));
  Add(p, "fan", Num(IntIn(rng, 1, 4)));
  Add(p, "loops", Num(IntIn(rng, 2, 30)));
  return p;
}

JsonValue SchbenchParams(Rng& rng) {
  JsonValue p = Obj();
  Add(p, "message_threads", Num(IntIn(rng, 1, 3)));
  Add(p, "workers_per_thread", Num(IntIn(rng, 1, 4)));
  Add(p, "rounds", Num(IntIn(rng, 2, 30)));
  Add(p, "work_ms", Num(Uniform(rng, 0.01, 2.0)));
  return p;
}

JsonValue ConfigureParams(Rng& rng) {
  JsonValue p = Obj();
  Add(p, "num_tests", Num(IntIn(rng, 5, 60)));
  Add(p, "child_work_ms", Num(Uniform(rng, 0.05, 8.0)));
  Add(p, "child_sigma", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "pipeline_prob", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "concurrent_prob", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "long_test_prob", Num(Uniform(rng, 0.0, 0.3)));
  return p;
}

JsonValue DacapoParams(Rng& rng) {
  JsonValue p = Obj();
  Add(p, "workers", Num(IntIn(rng, 1, 8)));
  Add(p, "compute_ms", Num(Uniform(rng, 0.1, 8.0)));
  Add(p, "sigma", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "sleep_ms", Num(Uniform(rng, 0.0, 4.0)));
  Add(p, "iterations", Num(IntIn(rng, 1, 20)));
  Add(p, "lock_fraction", Num(Uniform(rng, 0.0, 0.5)));
  if (rng.NextBool(0.3)) {
    Add(p, "aux_threads", Num(IntIn(rng, 1, 2)));
    Add(p, "aux_compute_ms", Num(Uniform(rng, 0.1, 2.0)));
    Add(p, "aux_period_ms", Num(Uniform(rng, 1.0, 10.0)));
  }
  return p;
}

// threads == 0 means one worker per CPU: the full-machine-load shape.
JsonValue NasParams(Rng& rng, bool* full_load) {
  JsonValue p = Obj();
  const int threads = rng.NextBool(0.4) ? 0 : IntIn(rng, 1, 8);
  *full_load = threads == 0;
  Add(p, "threads", Num(threads));
  Add(p, "iter_compute_ms", Num(Uniform(rng, 0.1, 4.0)));
  Add(p, "iterations", Num(IntIn(rng, 2, 20)));
  Add(p, "jitter", Num(Uniform(rng, 0.0, 0.5)));
  Add(p, "serial_setup_ms", Num(Uniform(rng, 0.0, 2.0)));
  return p;
}

JsonValue PhoronixParams(Rng& rng) {
  static const char* kStyles[] = {"pool", "openmp", "pipeline", "full_parallel",
                                  "serial_bursts"};
  JsonValue p = Obj();
  Add(p, "style", Str(kStyles[IntIn(rng, 0, 4)]));
  Add(p, "threads", Num(IntIn(rng, 1, 8)));
  Add(p, "item_ms", Num(Uniform(rng, 0.05, 4.0)));
  Add(p, "sigma", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "items", Num(IntIn(rng, 5, 80)));
  Add(p, "gap_ms", Num(Uniform(rng, 0.0, 2.0)));
  return p;
}

// Open-loop request traffic for cluster scenarios; rates and durations are
// kept low so a fleet of up to 4 machines stays cheap per fuzz iteration.
JsonValue RequestsParams(Rng& rng) {
  JsonValue p = Obj();
  Add(p, "rate_per_s", Num(Uniform(rng, 50.0, 400.0)));
  Add(p, "arrivals", Str(rng.NextBool(0.3) ? "bursty" : "poisson"));
  Add(p, "duration_s", Num(Uniform(rng, 0.05, 0.3)));
  Add(p, "service_ms", Num(Uniform(rng, 0.1, 2.0)));
  Add(p, "service_sigma", Num(Uniform(rng, 0.0, 1.0)));
  if (rng.NextBool(0.3)) {
    Add(p, "io_pause_ms", Num(Uniform(rng, 0.0, 1.0)));
  }
  if (rng.NextBool(0.3)) {
    Add(p, "fanout", Num(IntIn(rng, 1, 3)));
    Add(p, "fanout_service_ms", Num(Uniform(rng, 0.05, 0.5)));
  }
  if (rng.NextBool(0.2)) {
    Add(p, "diurnal_depth", Num(Uniform(rng, 0.1, 0.8)));
    Add(p, "diurnal_period_s", Num(Uniform(rng, 0.05, 0.2)));
  }
  return p;
}

JsonValue ServerParams(Rng& rng) {
  static const char* kStyles[] = {"thread_per_request", "event_loop", "key_value_store"};
  JsonValue p = Obj();
  Add(p, "style", Str(kStyles[IntIn(rng, 0, 2)]));
  Add(p, "workers", Num(IntIn(rng, 1, 6)));
  Add(p, "clients", Num(IntIn(rng, 1, 6)));
  Add(p, "requests_per_client", Num(IntIn(rng, 2, 40)));
  Add(p, "service_ms", Num(Uniform(rng, 0.05, 4.0)));
  Add(p, "service_sigma", Num(Uniform(rng, 0.0, 1.0)));
  Add(p, "io_pause_ms", Num(Uniform(rng, 0.0, 2.0)));
  Add(p, "client_think_ms", Num(Uniform(rng, 0.0, 2.0)));
  return p;
}

// One non-multi (family, params) draw; `full_load` only set by nas.
std::pair<std::string, JsonValue> DrawMember(Rng& rng, bool* full_load) {
  const char* family = Pick(rng, {{"hackbench", 20},
                                  {"configure", 16},
                                  {"dacapo", 16},
                                  {"nas", 16},
                                  {"phoronix", 12},
                                  {"server", 12},
                                  {"schbench", 8}});
  const std::string name = family;
  if (name == "hackbench") {
    return {name, HackbenchParams(rng)};
  }
  if (name == "configure") {
    return {name, ConfigureParams(rng)};
  }
  if (name == "dacapo") {
    return {name, DacapoParams(rng)};
  }
  if (name == "nas") {
    return {name, NasParams(rng, full_load)};
  }
  if (name == "phoronix") {
    return {name, PhoronixParams(rng)};
  }
  if (name == "server") {
    return {name, ServerParams(rng)};
  }
  return {name, SchbenchParams(rng)};
}

// ---- config overrides / sweep axes --------------------------------------

JsonValue DrawOverrideValue(Rng& rng, const std::string& key) {
  if (key == "nest.r_max") {
    return Num(IntIn(rng, 0, 8));
  }
  if (key == "nest.r_impatient") {
    return Num(IntIn(rng, 0, 4));
  }
  if (key == "nest.p_remove_ticks") {
    return Num(IntIn(rng, 0, 10));
  }
  if (key == "nest.s_max_ticks") {
    return Num(IntIn(rng, 0, 10));
  }
  if (key == "smove.low_freq_fraction") {
    return Num(Uniform(rng, 0.3, 1.0));
  }
  if (key == "smove.move_delay_us") {
    return Num(IntIn(rng, 0, 200));
  }
  // Cache-model knobs (docs/MODEL.md §5): moderate ranges so a full-load
  // draw cannot skew the cfs↔nest neutrality pair past the 35% band —
  // both schedulers keep one task per core there, so warmth effects land
  // nearly symmetrically.
  if (key == "cache.warm_speedup") {
    return Num(Uniform(rng, 1.0, 2.0));
  }
  if (key == "cache.migration_cost_work") {
    return Num(IntIn(rng, 0, 2000000));
  }
  if (key == "cache.warm_threshold" || key == "nest_cache.warm_bias_threshold") {
    return Num(Uniform(rng, 0.0, 1.0));
  }
  if (key == "nest_cache.compaction_grace_ticks") {
    return Num(IntIn(rng, 0, 8));
  }
  // nest.enable_* / nest_cache.enable_* toggles
  return Bool(rng.NextBool(0.5));
}

const std::vector<const char*>& OverrideKeyPool() {
  static const std::vector<const char*>* keys = new std::vector<const char*>{
      "nest.r_max",           "nest.r_impatient",
      "nest.p_remove_ticks",  "nest.s_max_ticks",
      "nest.enable_reserve",  "nest.enable_compaction",
      "nest.enable_spin",     "nest.enable_attach",
      "nest.enable_impatience", "smove.low_freq_fraction",
      "smove.move_delay_us",
      "cache.warm_speedup",   "cache.migration_cost_work",
      "cache.warm_threshold", "nest_cache.warm_bias_threshold",
      "nest_cache.compaction_grace_ticks",
      "nest_cache.enable_warm_anchor",
      "nest_cache.enable_cost_aware_expansion",
      "nest_cache.enable_compaction_grace",
  };
  return *keys;
}

}  // namespace

GeneratedScenario GenerateScenario(uint64_t seed) {
  Rng rng(seed ^ 0x6e657374ULL);  // decouple from workload seeds ("nest")

  GeneratedScenario out;
  out.seed = seed;
  JsonValue spec = Obj();
  Add(spec, "name", Str("fuzz-" + std::to_string(seed)));
  Add(spec, "description", Str("generated by nestsim_fuzz (seed " + std::to_string(seed) + ")"));

  // One machine, biased toward the small presets so a fuzz campaign is cheap;
  // the big multi-socket boxes keep cross-die placement covered, and the
  // huge 8153 presets (docs/PARALLEL.md) keep 128/256-CPU topologies in the
  // fuzzed population at a weight a fuzz campaign can afford.
  JsonValue machines = Arr();
  Push(machines, Str(Pick(rng, {{"amd-4650g-1s", 26},
                                {"intel-5220-1s", 26},
                                {"intel-5218-2s", 17},
                                {"intel-6130-2s", 11},
                                {"intel-6130-4s", 6},
                                {"intel-e78870v4-4s", 6},
                                {"intel-8153-4s", 4},
                                {"intel-8153-8s", 4}})));
  Add(spec, "machines", machines);

  // Resilience/energy knobs ride along a fifth of the time (docs/FAULTS.md):
  // kind 0 injects core failures (plus machine crashes on cluster draws),
  // kind 1 replicates tasks with a quorum join, kind 2 does both at once,
  // kind 3 runs under a per-socket power cap with the budget governor. All of
  // them are pre-drawn from the run seed, so the serial and pooled passes
  // must still produce identical digests — exactly what the differential
  // cross-checks.
  const int resilience = rng.NextBool(0.2) ? IntIn(rng, 0, 3) : -1;
  const bool with_faults = resilience == 0 || resilience == 2;
  const bool with_replicas = resilience == 1 || resilience == 2;
  const bool with_budget = resilience == 3;

  // A quarter of the scenarios run as a cluster (src/cluster/): the fleet
  // requires the open-loop "requests" family, so the cluster draw happens
  // before the workload draw and pins the family when it fires. It also
  // happens before the variant draws: nest_oracle is single-machine only
  // (the parser rejects it under `cluster`), so the oracle draw needs it.
  const bool cluster = rng.NextBool(0.25);

  // cfs + nest always (the differential pair); smove rides along half the
  // time. One governor for the whole scenario keeps variants comparable; the
  // power-cap draw forces `budget` since the cap is inert under the others.
  const std::string governor =
      with_budget ? "budget" : (rng.NextBool(0.5) ? "schedutil" : "performance");
  const bool with_smove = rng.NextBool(0.5);
  // The cache-aware Nest variant rides along a fifth of the time; it skips
  // the neutrality pairing (that check only pairs nest with cfs) but flows
  // through the determinism and accounting cross-checks like any variant.
  const bool with_nest_cache = rng.NextBool(0.2);
  // Under a power cap, the budget-aware Nest joins half the time so the
  // shrink-the-mask ladder gets fuzzed against the same scenarios.
  const bool with_nest_budget = with_budget && rng.NextBool(0.5);
  // The prediction-layer variants (docs/PREDICTION.md) each ride along ~15%
  // of the time: nest_predict loads the committed tiny table model so the
  // biased first step actually fires, and nest_oracle runs the two-pass
  // record/replay protocol — never on cluster draws, which the parser
  // rejects for it.
  const bool with_nest_predict = rng.NextBool(0.15);
  const bool with_nest_oracle = !cluster && rng.NextBool(0.15);
  JsonValue variants = Arr();
  for (const char* policy :
       {"cfs", "nest", "smove", "nest_cache", "nest_budget", "nest_predict", "nest_oracle"}) {
    if (std::string(policy) == "smove" && !with_smove) {
      continue;
    }
    if (std::string(policy) == "nest_cache" && !with_nest_cache) {
      continue;
    }
    if (std::string(policy) == "nest_budget" && !with_nest_budget) {
      continue;
    }
    if (std::string(policy) == "nest_predict" && !with_nest_predict) {
      continue;
    }
    if (std::string(policy) == "nest_oracle" && !with_nest_oracle) {
      continue;
    }
    JsonValue variant = Obj();
    Add(variant, "label", Str(policy));
    Add(variant, "scheduler", Str(policy));
    Add(variant, "governor", Str(governor));
    Push(variants, variant);
  }
  Add(spec, "variants", variants);

  // Workload: one custom row; occasionally a multi composition.
  JsonValue workload = Obj();
  if (cluster) {
    Add(workload, "family", Str("requests"));
    Add(workload, "params", RequestsParams(rng));
  } else if (rng.NextBool(0.15)) {
    JsonValue members = Arr();
    const int count = IntIn(rng, 2, 3);
    for (int i = 0; i < count; ++i) {
      bool ignored = false;
      auto [family, params] = DrawMember(rng, &ignored);
      JsonValue member = Obj();
      Add(member, "family", Str(family));
      Add(member, "params", params);
      Push(members, member);
    }
    JsonValue params = Obj();
    Add(params, "members", members);
    Add(workload, "family", Str("multi"));
    Add(workload, "params", params);
  } else {
    auto [family, params] = DrawMember(rng, &out.full_load);
    Add(workload, "family", Str(family));
    Add(workload, "params", params);
  }
  Add(spec, "workload", workload);

  if (cluster) {
    static const char* kRouters[] = {"passthrough", "round-robin", "least-loaded", "power-aware"};
    JsonValue block = Obj();
    // Mostly small fleets; a fifth of cluster draws go up to 8 machines so
    // the conservative synchronizer sees wider domain fan-outs.
    Add(block, "machines", Num(rng.NextBool(0.2) ? IntIn(rng, 5, 8) : IntIn(rng, 1, 4)));
    Add(block, "router", Str(kRouters[IntIn(rng, 0, 3)]));
    Add(spec, "cluster", block);
  }

  Add(spec, "repetitions", Num(1));
  Add(spec, "base_seed", Num(1 + static_cast<double>(rng.NextBounded(1000000))));

  // time_limit_s always bounds the simulated run; extra overrides half the
  // time exercise the policy-parameter surface.
  JsonValue config = Obj();
  Add(config, "time_limit_s", Num(20));
  // A quarter of the draws run the parallel PDES engine (src/sim/parallel.h)
  // with a random worker count, sync algorithm, and lookahead cap. The
  // differential's engine pass then forces its own worker count, so a drawn
  // parallel config is cross-checked against the serial reference loop both
  // at the drawn count and at the forced one.
  if (rng.NextBool(0.25)) {
    Add(config, "parallel.workers", Num(IntIn(rng, 1, 8)));
    if (rng.NextBool(0.4)) {
      static const char* kSync[] = {"auto", "window", "lockstep"};
      Add(config, "parallel.sync", Str(kSync[IntIn(rng, 0, 2)]));
    }
    if (rng.NextBool(0.3)) {
      Add(config, "parallel.lookahead_us", Num(Uniform(rng, 10.0, 5000.0)));
    }
  }
  if (rng.NextBool(0.5)) {
    const auto& pool = OverrideKeyPool();
    const int extras = IntIn(rng, 1, 2);
    for (int i = 0; i < extras; ++i) {
      const std::string key = pool[static_cast<size_t>(rng.NextBounded(pool.size()))];
      if (config.Find(key) == nullptr) {
        Add(config, key, DrawOverrideValue(rng, key));
      }
    }
  }
  // Resilience knob values stay modest: every variant sees the identical
  // pre-drawn fault plan, but the blast radius is placement-dependent, and
  // the full-load cfs↔nest neutrality band has to absorb that skew.
  // Replication only has a carrier in cluster scenarios (requests are
  // injected through the replicating path); a replica draw on a
  // single-machine scenario falls back to fault injection so the gate's
  // fifth always buys coverage.
  const bool draw_replicas = with_replicas && cluster;
  const bool draw_faults = with_faults || (with_replicas && !cluster);
  if (draw_faults) {
    Add(config, "fault.core_fail_rate_per_s", Num(Uniform(rng, 2.0, 40.0)));
    Add(config, "fault.core_downtime_ms", Num(Uniform(rng, 5.0, 40.0)));
    if (cluster && rng.NextBool(0.5)) {
      Add(config, "fault.machine_fail_rate_per_s", Num(Uniform(rng, 0.5, 4.0)));
      Add(config, "fault.machine_downtime_ms", Num(Uniform(rng, 5.0, 40.0)));
    }
  }
  if (draw_replicas) {
    const int replicas = IntIn(rng, 2, 3);
    Add(config, "replicas", Num(replicas));
    Add(config, "fault.quorum", Num(IntIn(rng, 0, replicas)));
  }
  if (with_budget) {
    // Loose enough that every machine preset makes progress under the cap,
    // tight enough that the governor actually throttles on the small boxes.
    Add(config, "power.budget_w", Num(Uniform(rng, 20.0, 60.0)));
    if (rng.NextBool(0.3)) {
      Add(config, "power.headroom_fraction", Num(Uniform(rng, 0.7, 1.0)));
    }
  }
  if (with_nest_predict) {
    // The committed tiny model, resolved like a scenario path so the fuzzer
    // finds it from the repo root and from build/.
    Add(config, "predict.model_file", Str("models/tiny-predict.json"));
  }
  if (with_nest_oracle && rng.NextBool(0.5)) {
    Add(config, "predict.oracle_window_ms", Num(Uniform(rng, 1.0, 50.0)));
    Add(config, "predict.oracle_margin", Num(IntIn(rng, 0, 3)));
  }
  Add(spec, "config", config);

  if (rng.NextBool(0.3)) {
    JsonValue sweep = Obj();
    const char* axis = Pick(rng, {{"nest.r_max", 30},
                                  {"nest.r_impatient", 25},
                                  {"nest.s_max_ticks", 25},
                                  {"smove.move_delay_us", 20}});
    JsonValue values = Arr();
    const int count = IntIn(rng, 2, 3);
    for (int i = 0; i < count; ++i) {
      JsonValue v = DrawOverrideValue(rng, axis);
      // Distinct sweep points read better in repros; duplicates are valid
      // but pointless.
      bool dup = false;
      for (const JsonValue& seen : values.items) {
        dup = dup || seen.number == v.number;
      }
      if (!dup) {
        Push(values, v);
      }
    }
    Add(sweep, axis, values);
    Add(spec, "sweep", sweep);
  }

  JsonValue table = Obj();
  Add(table, "style", Str("none"));
  Add(spec, "table", table);

  out.json = JsonSerialize(spec, 2);
  out.json += '\n';
  out.spec = std::move(spec);
  return out;
}

}  // namespace nestsim
