// Continuously validated scheduler invariants (docs/TESTING.md).
//
// InvariantChecker is a KernelObserver that cross-checks the simulator's
// structural guarantees on every event it can see: work conservation,
// placement-reservation exclusivity, turbo-license accounting against the
// hardware model's ceilings, PELT signal bounds and update monotonicity, and
// event-timestamp monotonicity. It is purely observational — attaching it
// never changes simulation behaviour — and is wired into every experiment via
// ExperimentConfig::check_invariants (or NESTSIM_CHECK_INVARIANTS=1, which the
// test suite sets for every test).
//
// The whole-machine scans run at tick granularity (every 4 ms of simulated
// time): transient states — a §3.4 collision window, one balancing pass of
// latency — are legitimate, so the time-based invariants only fire when a bad
// state *persists* across consecutive tick samples. OnTick observers fire
// after the periodic balance pass, so every sample the checker sees is one the
// balancer already had a chance to fix.

#ifndef NESTSIM_SRC_CHECK_INVARIANT_CHECKER_H_
#define NESTSIM_SRC_CHECK_INVARIANT_CHECKER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

// The checked invariants. Names are emitted in every violation message and
// cross-checked against docs/TESTING.md by tools/check_docs.sh.
enum class Invariant {
  kWorkConservation = 0,   // runnable task queued while a core idles, persisting
  kQueueLiveness,          // run queue non-empty but nothing running (lost wakeup)
  kReservationExclusivity, // claim bookkeeping disagrees with a mirrored model
  kTurboAccounting,        // active-core / turbo-license counts vs. recount
  kPeltBounds,             // utilisation signals out of [0, 1] or updated backwards
  kTimeMonotonicity,       // observer callbacks saw time run backwards
};

inline constexpr int kNumInvariants = 6;

inline const char* InvariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kWorkConservation:
      return "work_conservation";
    case Invariant::kQueueLiveness:
      return "queue_liveness";
    case Invariant::kReservationExclusivity:
      return "reservation_exclusivity";
    case Invariant::kTurboAccounting:
      return "turbo_accounting";
    case Invariant::kPeltBounds:
      return "pelt_bounds";
    case Invariant::kTimeMonotonicity:
      return "time_monotonicity";
  }
  return "?";
}

// Every invariant name, in enum order (for docs and tooling).
std::vector<std::string> InvariantNames();

struct InvariantCheckerOptions {
  // Consecutive violating tick samples before work conservation /
  // queue liveness fire. 1 tick of latency is legitimate (one balancing
  // pass, in-flight placements); a healthy kernel never sustains either
  // state across multiple post-balance samples.
  int work_conservation_ticks = 3;
  int queue_liveness_ticks = 3;
  // Keep at most this many violation messages (counts are always exact).
  size_t max_messages = 16;
  // Force the work-conservation check off (it auto-disables when either
  // load-balancing pass is disabled in Kernel::Params — without the
  // balancers, queued-while-idle states can legitimately persist).
  bool check_work_conservation = true;
};

class InvariantChecker : public KernelObserver {
 public:
  using Options = InvariantCheckerOptions;

  explicit InvariantChecker(Kernel* kernel, Options options = Options());

  // ---- KernelObserver ----
  uint32_t InterestMask() const override {
    return kObsTaskCreated | kObsTaskEnqueued | kObsContextSwitch | kObsTaskBlocked |
           kObsTaskExit | kObsTick | kObsTaskPlaced | kObsReservationCollision |
           kObsTaskMigrated | kObsNestEvent | kObsIdleSpinStart | kObsIdleSpinEnd |
           kObsCoreFreqChange;
  }

  void OnTaskCreated(SimTime now, const Task& task) override;
  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override;
  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override;
  void OnTaskBlocked(SimTime now, const Task& task, int cpu) override;
  void OnTaskExit(SimTime now, const Task& task) override;
  void OnTick(SimTime now) override;
  void OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) override;
  void OnReservationCollision(SimTime now, const Task& task, int cpu) override;
  void OnTaskMigrated(SimTime now, const Task& task, int from_cpu, int to_cpu,
                      MigrationReason reason) override;
  void OnNestEvent(SimTime now, NestEventKind kind, int cpu) override;
  void OnIdleSpinStart(SimTime now, int cpu, int max_ticks) override;
  void OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) override;
  void OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) override;

  // ---- Verdict ----
  bool ok() const { return total_violations_ == 0; }
  uint64_t total_violations() const { return total_violations_; }
  uint64_t violations(Invariant invariant) const {
    return counts_[static_cast<int>(invariant)];
  }
  const std::vector<std::string>& messages() const { return messages_; }
  // All messages, newline-joined; "" when ok().
  std::string Report() const;

  bool work_conservation_enabled() const { return check_work_conservation_; }

 private:
  void Observe(SimTime now);  // time monotonicity, shared by every callback
  void Violate(Invariant invariant, SimTime now, const std::string& detail);
  void SampleWorkConservation(SimTime now);
  void SampleQueueLiveness(SimTime now);
  void SamplePeltBounds(SimTime now);
  void SampleTurboAccounting(SimTime now);

  Kernel* kernel_;
  Options options_;
  bool check_work_conservation_;
  bool reservations_in_use_;

  SimTime last_now_ = 0;
  // Mirrored reservation-claim state machine (paper §3.4): claim grant time
  // per CPU (-1 = no claim), maintained purely from observer callbacks and
  // compared against the kernel's TryClaim verdicts. A placement that lands
  // while a mirrored claim is still live must raise a collision; a collision
  // with no live mirrored claim means the kernel's bookkeeping leaked.
  std::vector<SimTime> res_claim_time_;
  int pending_collision_cpu_ = -1;
  int pending_collision_tid_ = -1;
  int wc_streak_ = 0;          // consecutive violating tick samples
  bool wc_reported_ = false;   // current episode already reported
  std::vector<int> ql_streak_;       // per CPU
  std::vector<char> ql_reported_;    // per CPU
  std::vector<SimTime> rq_util_update_;  // per CPU; PELT update monotonicity

  std::array<uint64_t, kNumInvariants> counts_{};
  uint64_t total_violations_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CHECK_INVARIANT_CHECKER_H_
