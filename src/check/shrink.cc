#include "src/check/shrink.h"

#include <cmath>
#include <vector>

#include "src/scenario/scenario.h"

namespace nestsim {

namespace {

JsonValue* FindMutable(JsonValue& obj, const std::string& key) {
  for (auto& [k, v] : obj.members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void RemoveKey(JsonValue& obj, const std::string& key) {
  for (size_t i = 0; i < obj.members.size(); ++i) {
    if (obj.members[i].first == key) {
      obj.members.erase(obj.members.begin() + static_cast<long>(i));
      return;
    }
  }
}

// Candidate reductions of `spec`, most structural first. Each candidate is a
// full spec copy; invalid ones are filtered by the oracle's parse step.
std::vector<JsonValue> Candidates(const JsonValue& spec) {
  std::vector<JsonValue> out;

  // Keep only one machine.
  if (const JsonValue* machines = spec.Find("machines");
      machines != nullptr && machines->is_array() && machines->items.size() > 1) {
    JsonValue cand = spec;
    FindMutable(cand, "machines")->items.resize(1);
    out.push_back(std::move(cand));
  }

  // Drop a variant (a cross-policy check needs at least two).
  if (const JsonValue* variants = spec.Find("variants");
      variants != nullptr && variants->is_array() && variants->items.size() > 2) {
    for (size_t i = 0; i < variants->items.size(); ++i) {
      JsonValue cand = spec;
      JsonValue* v = FindMutable(cand, "variants");
      v->items.erase(v->items.begin() + static_cast<long>(i));
      out.push_back(std::move(cand));
    }
  }

  // Drop a sweep axis, or collapse an axis to its first value.
  if (const JsonValue* sweep = spec.Find("sweep"); sweep != nullptr && sweep->is_object()) {
    for (size_t i = 0; i < sweep->members.size(); ++i) {
      JsonValue cand = spec;
      JsonValue* s = FindMutable(cand, "sweep");
      s->members.erase(s->members.begin() + static_cast<long>(i));
      if (s->members.empty()) {
        RemoveKey(cand, "sweep");
      }
      out.push_back(std::move(cand));
      if (sweep->members[i].second.is_array() && sweep->members[i].second.items.size() > 1) {
        JsonValue collapsed = spec;
        FindMutable(*FindMutable(collapsed, "sweep"), sweep->members[i].first)
            ->items.resize(1);
        out.push_back(std::move(collapsed));
      }
    }
  }

  // Drop a config override (time_limit_s stays: it bounds the oracle's cost).
  if (const JsonValue* config = spec.Find("config"); config != nullptr && config->is_object()) {
    for (const auto& [key, value] : config->members) {
      (void)value;
      if (key == "time_limit_s") {
        continue;
      }
      JsonValue cand = spec;
      RemoveKey(*FindMutable(cand, "config"), key);
      out.push_back(std::move(cand));
    }
  }

  const JsonValue* workload = spec.Find("workload");
  if (workload != nullptr && workload->is_object()) {
    // Keep only one row / one preset.
    for (const char* key : {"rows", "presets"}) {
      if (const JsonValue* rows = workload->Find(key);
          rows != nullptr && rows->is_array() && rows->items.size() > 1) {
        for (size_t i = 0; i < rows->items.size(); ++i) {
          JsonValue cand = spec;
          JsonValue* r = FindMutable(*FindMutable(cand, "workload"), key);
          JsonValue kept = r->items[i];
          r->items.clear();
          r->items.push_back(std::move(kept));
          out.push_back(std::move(cand));
        }
      }
    }

    const JsonValue* family = workload->Find("family");
    const JsonValue* params = workload->Find("params");
    const bool is_multi = family != nullptr && family->is_string() && family->string == "multi";

    if (is_multi && params != nullptr) {
      if (const JsonValue* members = params->Find("members");
          members != nullptr && members->is_array()) {
        // Drop a member while at least two remain.
        if (members->items.size() > 2) {
          for (size_t i = 0; i < members->items.size(); ++i) {
            JsonValue cand = spec;
            JsonValue* m = FindMutable(*FindMutable(*FindMutable(cand, "workload"), "params"),
                                       "members");
            m->items.erase(m->items.begin() + static_cast<long>(i));
            out.push_back(std::move(cand));
          }
        }
        // Flatten a two-member composition to each single member.
        if (members->items.size() == 2) {
          for (const JsonValue& member : members->items) {
            const JsonValue* mfamily = member.Find("family");
            const JsonValue* mparams = member.Find("params");
            if (mfamily == nullptr || member.Find("preset") != nullptr) {
              continue;
            }
            JsonValue cand = spec;
            JsonValue* w = FindMutable(cand, "workload");
            w->members.clear();
            w->members.emplace_back("family", *mfamily);
            if (mparams != nullptr) {
              w->members.emplace_back("params", *mparams);
            }
            out.push_back(std::move(cand));
          }
        }
      }
    } else if (params != nullptr && params->is_object()) {
      // Halve numeric workload parameters (integers floor toward 1, doubles
      // toward 0); out-of-range results fail the parse and are skipped.
      for (size_t i = 0; i < params->members.size(); ++i) {
        const JsonValue& value = params->members[i].second;
        if (!value.is_number()) {
          continue;
        }
        double halved;
        if (std::floor(value.number) == value.number) {
          if (value.number < 2) {
            continue;
          }
          halved = std::floor(value.number / 2);
        } else {
          if (value.number < 0.02) {
            continue;
          }
          halved = std::round(value.number * 500.0) / 1000.0;  // v/2 at 3 decimals
        }
        JsonValue cand = spec;
        JsonValue* p = FindMutable(*FindMutable(cand, "workload"), "params");
        p->members[i].second.number = halved;
        out.push_back(std::move(cand));
      }
    }
  }

  // Single repetition.
  if (const JsonValue* reps = spec.Find("repetitions");
      reps != nullptr && reps->is_number() && reps->number > 1) {
    JsonValue cand = spec;
    FindMutable(cand, "repetitions")->number = 1;
    out.push_back(std::move(cand));
  }

  return out;
}

bool Parses(const JsonValue& spec) {
  Scenario scenario;
  ScenarioError err;
  return ParseScenario(spec, "shrink", &scenario, &err);
}

}  // namespace

ShrinkOutcome ShrinkScenario(const JsonValue& failing_spec, bool full_load,
                             const ShrinkOptions& options) {
  ShrinkOutcome outcome;
  outcome.spec = failing_spec;

  auto fails = [&](const JsonValue& spec) {
    ++outcome.attempts;
    return !RunDifferential(spec, full_load, options.diff).ok();
  };

  if (!fails(outcome.spec)) {
    outcome.json = JsonSerialize(outcome.spec, 2) + "\n";
    return outcome;  // not actually failing; nothing to shrink
  }

  bool changed = true;
  while (changed && outcome.attempts < options.max_attempts) {
    changed = false;
    for (JsonValue& cand : Candidates(outcome.spec)) {
      if (outcome.attempts >= options.max_attempts) {
        break;
      }
      if (!Parses(cand)) {
        continue;
      }
      if (fails(cand)) {
        outcome.spec = std::move(cand);
        ++outcome.accepted;
        changed = true;
        break;  // regenerate candidates from the smaller spec
      }
    }
  }

  outcome.json = JsonSerialize(outcome.spec, 2) + "\n";
  return outcome;
}

}  // namespace nestsim
