// Differential execution of one scenario across policies and worker counts.
//
// RunDifferential parses a scenario spec (normally one from
// src/check/generator.h), forces the invariant checker on for every job, and
// executes the whole grid several times — once on a single campaign worker
// with the serial PDES reference loop, once on a parallel campaign pool,
// once with the windowed PDES engine at engine_workers threads per job
// (src/sim/parallel.h), and — when the grid has a plain-Nest variant — once
// with those jobs flipped to the model-less nest_predict policy. It then
// cross-checks:
//
//   * determinism — the same seed must give bit-identical makespans and
//     SchedCounters digests regardless of campaign worker count AND of PDES
//     engine worker count;
//   * job health — invariant violations, unexpected failures, and timeouts
//     all surface as problems;
//   * predictor fallback — every kNest job re-runs flipped to kNestPredict
//     with no model loaded, which must be bit-identical to plain Nest
//     (docs/PREDICTION.md §3);
//   * task accounting — the same workload row creates the same number of
//     tasks under every scheduler variant (when no run hit its time limit);
//   * full-load neutrality — for saturating workloads, CFS and Nest
//     makespans must sit within a band of each other (paper §5.2: under
//     full load Nest neither helps nor hurts).
//
// tools/nestsim_fuzz drives this in a loop; the shrinker
// (src/check/shrink.h) uses it as the "does it still fail?" oracle.

#ifndef NESTSIM_SRC_CHECK_DIFFERENTIAL_H_
#define NESTSIM_SRC_CHECK_DIFFERENTIAL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/check/generator.h"
#include "src/core/experiment.h"
#include "src/obs/json_check.h"

namespace nestsim {

struct DifferentialOptions {
  // Worker counts for the two passes. Unequal counts make the determinism
  // cross-check meaningful: results must not depend on execution order.
  int serial_jobs = 1;
  int parallel_jobs = 4;

  // PDES worker threads for the engine pass (config.parallel.workers forced
  // on every job); 0 skips the pass. The serial pass always forces the
  // serial reference loop, so this cross-checks the windowed executor the
  // same way parallel_jobs cross-checks the campaign pool.
  int engine_workers = 4;

  // Full-load CFS-vs-Nest tolerance: makespan ratios must stay within
  // [1 / (1 + band), 1 + band]. Only applied when the caller says the
  // scenario saturates the machine.
  double neutrality_band = 0.35;

  // Test hook: applied to every job config after expansion (after the
  // invariant checker is forced on). The mutation self-tests use it to
  // inject kernel faults; production callers leave it unset.
  std::function<void(ExperimentConfig*)> mutate_config;
};

struct DifferentialReport {
  std::vector<std::string> problems;
  size_t jobs = 0;  // grid size actually executed (one pass)

  bool ok() const { return problems.empty(); }
  // All problems, newline-joined.
  std::string Join() const;
};

// `full_load` enables the neutrality check (see GeneratedScenario::full_load).
DifferentialReport RunDifferential(const JsonValue& spec, bool full_load,
                                   const DifferentialOptions& options = DifferentialOptions());

inline DifferentialReport RunDifferential(
    const GeneratedScenario& generated,
    const DifferentialOptions& options = DifferentialOptions()) {
  return RunDifferential(generated.spec, generated.full_load, options);
}

}  // namespace nestsim

#endif  // NESTSIM_SRC_CHECK_DIFFERENTIAL_H_
