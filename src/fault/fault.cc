#include "src/fault/fault.h"

#include <algorithm>

namespace nestsim {

namespace {

SimTime SecondsToSim(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

}  // namespace

FaultPlan BuildFaultPlan(const FaultSpec& spec, Rng& rng, int num_machines, int num_cpus,
                         SimTime horizon) {
  FaultPlan plan;
  if (!spec.enabled() || horizon <= 0) {
    return plan;
  }
  if (spec.horizon_s > 0.0) {
    horizon = std::min(horizon, SecondsToSim(spec.horizon_s));
  }
  uint64_t seq = 0;
  auto push = [&plan, &seq](SimTime time, FaultPlanEvent::Kind kind, int machine, int cpu) {
    plan.events.push_back(FaultPlanEvent{time, kind, machine, cpu, seq++});
  };
  // Fixed draw order — per machine: every core-failure arrival (gap then
  // victim), then every machine-crash arrival — so the plan depends only on
  // (spec, rng seed, num_machines, num_cpus, horizon).
  for (int machine = 0; machine < num_machines; ++machine) {
    if (spec.core_fail_rate_per_s > 0.0) {
      const double mean_gap_s = 1.0 / spec.core_fail_rate_per_s;
      double t_s = rng.NextExponential(mean_gap_s);
      while (SecondsToSim(t_s) < horizon) {
        const SimTime t = SecondsToSim(t_s);
        const int victim = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_cpus)));
        push(t, FaultPlanEvent::Kind::kCoreFail, machine, victim);
        if (spec.core_downtime_ms > 0.0) {
          push(t + SecondsToSim(spec.core_downtime_ms / 1e3), FaultPlanEvent::Kind::kCoreRepair,
               machine, victim);
        }
        t_s += rng.NextExponential(mean_gap_s);
      }
    }
    if (spec.machine_fail_rate_per_s > 0.0) {
      const double mean_gap_s = 1.0 / spec.machine_fail_rate_per_s;
      double t_s = rng.NextExponential(mean_gap_s);
      while (SecondsToSim(t_s) < horizon) {
        const SimTime t = SecondsToSim(t_s);
        push(t, FaultPlanEvent::Kind::kMachineFail, machine, -1);
        if (spec.machine_downtime_ms > 0.0) {
          push(t + SecondsToSim(spec.machine_downtime_ms / 1e3),
               FaultPlanEvent::Kind::kMachineRepair, machine, -1);
        }
        t_s += rng.NextExponential(mean_gap_s);
      }
    }
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultPlanEvent& a, const FaultPlanEvent& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });
  return plan;
}

void FaultInjector::Arm() {
  for (const FaultPlanEvent& ev : plan_->events) {
    if (ev.machine != machine_) {
      continue;
    }
    switch (ev.kind) {
      case FaultPlanEvent::Kind::kCoreFail:
        // OfflineCpu refuses (deterministically) when the victim is already
        // offline or is the last online core — the failure is then a no-op.
        engine_->ScheduleAt(ev.time, [this, cpu = ev.cpu] { kernel_->OfflineCpu(cpu); });
        break;
      case FaultPlanEvent::Kind::kCoreRepair:
        engine_->ScheduleAt(ev.time, [this, cpu = ev.cpu] { kernel_->OnlineCpu(cpu); });
        break;
      case FaultPlanEvent::Kind::kMachineFail:
      case FaultPlanEvent::Kind::kMachineRepair:
        if (machine_event_fn_) {
          engine_->ScheduleAt(ev.time, [this, fail = ev.kind == FaultPlanEvent::Kind::kMachineFail,
                                        time = ev.time] { machine_event_fn_(time, fail); });
        }
        break;
    }
  }
}

void ResilienceStats::Add(const ResilienceStats& other) {
  // Evacuation latencies merge as (weighted mean, max) — counts weight the
  // means so per-machine aggregation matches a single-recorder run.
  const uint64_t total = evacuations + other.evacuations;
  if (total > 0) {
    mean_evac_latency_us = (mean_evac_latency_us * static_cast<double>(evacuations) +
                            other.mean_evac_latency_us * static_cast<double>(other.evacuations)) /
                           static_cast<double>(total);
    max_evac_latency_us = std::max(max_evac_latency_us, other.max_evac_latency_us);
  }
  evacuations = total;
  tasks_killed += other.tasks_killed;
  replicas_reaped += other.replicas_reaped;
  work_lost_ms += other.work_lost_ms;
  wasted_replica_ms += other.wasted_replica_ms;
  requests_failed += other.requests_failed;
  requests_degraded += other.requests_degraded;
}

}  // namespace nestsim
