// Deterministic fault injection and resilience accounting.
//
// A FaultPlan is pre-drawn from the scenario seed — like the request plan of
// the open-loop workloads — so enabling faults cannot perturb any workload
// draw: the plan's generator is forked from the run Rng *after* workload
// setup, and a disabled spec draws nothing at all. The FaultInjector replays
// one machine's slice of the plan against a live kernel via
// Kernel::OfflineCpu/OnlineCpu; machine-level crash events are delegated to
// the cluster runner (src/cluster/), which owns router failover.
//
// Semantics and the metric glossary live in docs/FAULTS.md.

#ifndef NESTSIM_SRC_FAULT_FAULT_H_
#define NESTSIM_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace nestsim {

// Fault & replication knobs on ExperimentConfig. Failures are Poisson
// processes per machine (exponential gaps); a downtime of 0 means the
// failure is permanent for the run. Everything defaults off.
struct FaultSpec {
  // Core failures: rate per machine per simulated second; the victim CPU is
  // drawn uniformly at plan time. A failure whose victim is already offline,
  // or is the last online core, is skipped at execution time.
  double core_fail_rate_per_s = 0.0;
  double core_downtime_ms = 0.0;  // 0 == permanent

  // Whole-machine crashes (cluster runs only; ignored on one machine).
  double machine_fail_rate_per_s = 0.0;
  double machine_downtime_ms = 0.0;  // 0 == permanent

  // Horizon the plan covers, seconds; 0 uses the config time limit.
  double horizon_s = 0.0;

  // Replication of injected (open-loop request) tasks: each injection spawns
  // `replicas` copies of the same drawn program; the first `quorum` exits win
  // and the rest are reaped. replicas <= 1 disables; quorum 0 means 1.
  int replicas = 1;
  int quorum = 0;

  // Whether any failure process is active (replication alone does not need a
  // plan).
  bool enabled() const { return core_fail_rate_per_s > 0.0 || machine_fail_rate_per_s > 0.0; }
  bool any() const { return enabled() || replicas > 1; }
};

// One pre-drawn fault event. `seq` breaks time ties deterministically in the
// order the events were drawn.
struct FaultPlanEvent {
  enum class Kind { kCoreFail, kCoreRepair, kMachineFail, kMachineRepair };
  SimTime time = 0;
  Kind kind = Kind::kCoreFail;
  int machine = 0;
  int cpu = -1;  // victim CPU for core events; -1 for machine events
  uint64_t seq = 0;
};

struct FaultPlan {
  std::vector<FaultPlanEvent> events;  // sorted by (time, seq)
  bool empty() const { return events.empty(); }
};

// Pre-draws every fault event over [0, horizon). All randomness comes from
// `rng` (fork it from the run Rng after workload setup); the draw order is
// fixed — per machine: core gaps+victims, then machine gaps — so the plan is
// a pure function of (spec, seed, num_machines, num_cpus, horizon).
FaultPlan BuildFaultPlan(const FaultSpec& spec, Rng& rng, int num_machines, int num_cpus,
                         SimTime horizon);

// Replays one machine's slice of a FaultPlan against a live kernel. Core
// events call Kernel::OfflineCpu/OnlineCpu; machine events invoke the
// machine-event hook when one is set (the cluster runner's failover path)
// and are ignored otherwise (a single machine cannot crash wholesale).
class FaultInjector {
 public:
  // `fail` is true for kMachineFail, false for kMachineRepair.
  using MachineEventFn = std::function<void(SimTime now, bool fail)>;

  FaultInjector(Engine* engine, Kernel* kernel, const FaultPlan* plan, int machine = 0)
      : engine_(engine), kernel_(kernel), plan_(plan), machine_(machine) {}

  void set_machine_event_fn(MachineEventFn fn) { machine_event_fn_ = std::move(fn); }

  // Schedules every event of this machine on the engine. Call once, after
  // Kernel::Start.
  void Arm();

 private:
  Engine* engine_;
  Kernel* kernel_;
  const FaultPlan* plan_;
  int machine_;
  MachineEventFn machine_event_fn_;
};

// Per-run resilience metrics (docs/FAULTS.md). Everything zero unless faults
// or replicas fired; consumers omit the block when !any() so pre-fault golden
// digests are untouched.
struct ResilienceStats {
  uint64_t tasks_killed = 0;     // died with a core/machine (fault kills only)
  uint64_t replicas_reaped = 0;  // losers killed after their group's quorum
  double work_lost_ms = 0.0;     // CPU time invested in fault-killed tasks
  double wasted_replica_ms = 0.0;  // CPU time invested in reaped replicas
  uint64_t evacuations = 0;        // displaced tasks that got a CPU again
  double mean_evac_latency_us = 0.0;  // displacement -> next dispatch
  double max_evac_latency_us = 0.0;
  // Cluster-only (src/cluster/): requests that never completed because a
  // fault killed a part vs. requests that completed with a replica copy lost.
  uint64_t requests_failed = 0;
  uint64_t requests_degraded = 0;

  bool any() const {
    return tasks_killed != 0 || replicas_reaped != 0 || evacuations != 0 ||
           requests_failed != 0 || requests_degraded != 0;
  }
  void Add(const ResilienceStats& other);
};

// Observes fault events and dispatches to build a ResilienceStats. Purely
// observational; only attached when config.fault.any().
class ResilienceRecorder : public KernelObserver {
 public:
  uint32_t InterestMask() const override { return kObsFaultEvent | kObsContextSwitch; }

  void OnFaultEvent(SimTime now, FaultEventKind kind, int cpu, const Task* task) override {
    (void)now;
    (void)cpu;
    switch (kind) {
      case FaultEventKind::kTaskKilled:
        ++stats_.tasks_killed;
        work_lost_ns_ += static_cast<double>(task->total_runtime);
        break;
      case FaultEventKind::kReplicaReaped:
        ++stats_.replicas_reaped;
        wasted_ns_ += static_cast<double>(task->total_runtime);
        break;
      default:
        break;
    }
  }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)cpu;
    (void)prev;
    if (next != nullptr && next->evacuated_at >= 0) {
      const double latency_ns = static_cast<double>(now - next->evacuated_at);
      ++stats_.evacuations;
      evac_sum_ns_ += latency_ns;
      evac_max_ns_ = latency_ns > evac_max_ns_ ? latency_ns : evac_max_ns_;
    }
  }

  ResilienceStats Finish() const {
    ResilienceStats out = stats_;
    out.work_lost_ms = work_lost_ns_ / 1e6;
    out.wasted_replica_ms = wasted_ns_ / 1e6;
    if (out.evacuations > 0) {
      out.mean_evac_latency_us = evac_sum_ns_ / static_cast<double>(out.evacuations) / 1e3;
      out.max_evac_latency_us = evac_max_ns_ / 1e3;
    }
    return out;
  }

 private:
  ResilienceStats stats_;
  double work_lost_ns_ = 0.0;
  double wasted_ns_ = 0.0;
  double evac_sum_ns_ = 0.0;
  double evac_max_ns_ = 0.0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_FAULT_FAULT_H_
