// Machine descriptions: topology, frequency ladders, DVFS dynamics, power.
//
// The four server presets reproduce Tables 2 and 3 of the paper; the two
// mono-socket presets cover §5.6. Frequencies are in GHz throughout.

#ifndef NESTSIM_SRC_HW_MACHINE_SPEC_H_
#define NESTSIM_SRC_HW_MACHINE_SPEC_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace nestsim {

// How the hardware walks a core's frequency toward its target (paper Table 2,
// "Power management" column).
enum class PowerManagement {
  // Intel Speed Shift (HWP): fine-grained, fast autonomous ramping
  // (Skylake / Cascade Lake).
  kSpeedShift,
  // Enhanced Intel SpeedStep: OS-paced, tick-quantised, sluggish ramping and
  // quick decay on idle gaps (Broadwell E7-8870 v4).
  kSpeedStep,
  // AMD Turbo Core: fast ramp, aggressive idle decay (Ryzen 4650G).
  kTurboCore,
};

// Per-active-core-count turbo ceilings for one socket (paper Table 3).
// Entry i (0-based) is the ceiling when i+1 physical cores on the socket are
// active. Counts beyond the table reuse the last entry.
class TurboLadder {
 public:
  TurboLadder() = default;
  explicit TurboLadder(std::vector<double> ghz_by_active_count);

  // Ceiling for `active_physical_cores` (>= 0) active cores on the socket.
  // Zero active cores reports the single-core ceiling (nothing constrains an
  // about-to-wake core).
  double CapGhz(int active_physical_cores) const;

  int TableSize() const { return static_cast<int>(ghz_.size()); }
  double MaxTurboGhz() const { return ghz_.empty() ? 0.0 : ghz_.front(); }
  double AllCoresTurboGhz() const { return ghz_.empty() ? 0.0 : ghz_.back(); }

 private:
  std::vector<double> ghz_;
};

struct MachineSpec {
  std::string name;         // e.g. "intel-5218-2s"
  std::string cpu_model;    // e.g. "Intel Xeon Gold 5218"
  std::string microarch;    // e.g. "Cascade Lake"
  int num_sockets = 1;
  int physical_cores_per_socket = 1;
  int threads_per_core = 2;

  double min_freq_ghz = 1.0;
  double nominal_freq_ghz = 2.0;  // base frequency; the `performance` floor
  TurboLadder turbo;

  PowerManagement power_management = PowerManagement::kSpeedShift;

  // DVFS dynamics.
  double ramp_up_ghz_per_ms = 0.4;    // slew rate toward a higher target
  double ramp_down_ghz_per_ms = 0.8;  // slew rate toward a lower target
  SimDuration freq_update_period = 1 * kMillisecond;  // hardware re-evaluation
  // How long a core must be idle before the hardware starts dropping its
  // frequency toward min (models C-state demotion + utilisation decay).
  SimDuration idle_decay_delay = 2 * kMillisecond;

  // Turbo licensing: a core counts against the ladder while busy and for this
  // long after it last went idle (shallow C-states still hold a license).
  // This is why task dispersal lowers everyone's turbo ceiling even when only
  // one or two tasks run at a time.
  SimDuration turbo_license_window = 6 * kMillisecond;

  // Hardware autonomy: how strongly the hardware raises a busy core's
  // frequency from observed activity alone, independent of the governor's
  // request. The activity signal is an EMA of C0 residency with this
  // half-life; the autonomous floor is autonomy_weight * activity * cap.
  // Speed Shift (HWP) hardware is fully autonomous; SpeedStep follows the
  // OS's requests much more literally.
  double autonomy_weight = 1.0;
  SimDuration activity_halflife = 3 * kMillisecond;
  // Instant activity credit when a task lands on a core (HWP's fast first
  // ramp); the EMA takes over once it exceeds this floor.
  double arrival_activity_floor = 0.3;
  // Idle cores drift toward min at this gentle rate once past
  // idle_decay_delay — the PCU demotes a parked core's P-state over tens of
  // milliseconds, not instantly.
  double idle_drift_ghz_per_ms = 0.06;
  // Downshift rate for a core that is still busy (C0): hardware is reluctant
  // to drop a running core's P-state, which is exactly what Nest's idle
  // spinning exploits to keep nest cores warm (paper §3.2).
  double busy_downshift_ghz_per_ms = 0.12;

  // SMT: per-thread throughput multiplier when both hardware threads of a
  // physical core are busy (1.0 when only one is busy).
  double smt_throughput = 0.62;

  // Energy model (per socket). Socket power =
  //   uncore_watts
  //   + sum over active cores of core_dyn_coeff * f * V(f_hot)^2
  // where f_hot is the fastest active core on the socket and
  // V(f) = volt_base + volt_per_ghz * f. Idle sockets draw package_idle_watts
  // (they stay in a high-availability state for remote memory accesses —
  // paper §5.2).
  double uncore_watts = 15.0;
  double package_idle_watts = 12.0;
  double core_dyn_coeff = 1.9;  // watts per (GHz * V^2)
  double volt_base = 0.55;
  double volt_per_ghz = 0.12;
  // Extra draw of a core idling in a shallow C-state (still licensed).
  double shallow_idle_watts = 1.2;

  // Latency to wake a core from a deep idle state (adds to the first
  // execution span after long idleness; small but biases CFS's idlest-cpu
  // choice in real kernels).
  SimDuration idle_exit_latency = 30 * kMicrosecond;
};

// Returns every built-in machine, keyed by MachineSpec::name:
//   intel-6130-2s, intel-6130-4s, intel-5218-2s, intel-e78870v4-4s  (Table 2)
//   intel-5220-1s, amd-4650g-1s                                     (§5.6)
const std::vector<MachineSpec>& AllMachines();

// Looks up a preset by name; aborts with a clear message on unknown names.
const MachineSpec& MachineByName(const std::string& name);

// Non-aborting lookup for callers that validate user input (the scenario
// engine); nullptr when `name` is not a preset.
const MachineSpec* FindMachine(const std::string& name);

// Every preset name, in AllMachines() order.
std::vector<std::string> MachineNames();

// The paper's four evaluation machines, in Figure order (6130-2s, 6130-4s,
// 5218-2s, E7-8870v4-4s).
std::vector<std::string> PaperMachineNames();

}  // namespace nestsim

#endif  // NESTSIM_SRC_HW_MACHINE_SPEC_H_
