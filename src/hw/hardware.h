// The hardware model: per-core frequency selection, SMT throughput sharing,
// and socket energy accounting.
//
// Responsibility split (paper §2.3): the OS governor *requests* a frequency
// floor; the hardware chooses the actual frequency from the request, the
// number of active physical cores on the socket (turbo ladder, paper
// Table 3), and how long the core has been idle. The kernel informs this
// model about thread activity and asks it for execution speeds; whenever a
// running CPU's effective speed changes, the model fires a callback so the
// kernel can recompute in-flight completion times.

#ifndef NESTSIM_SRC_HW_HARDWARE_H_
#define NESTSIM_SRC_HW_HARDWARE_H_

#include <functional>
#include <vector>

#include "src/hw/machine_spec.h"
#include "src/hw/topology.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace nestsim {

class HardwareModel {
 public:
  // Returns the governor's requested frequency floor (GHz) for a logical CPU.
  using FreqRequestFn = std::function<double(int cpu)>;
  // Invoked when the effective speed of a busy logical CPU changed.
  using SpeedChangeFn = std::function<void(int cpu)>;
  // Invoked whenever a physical core's frequency moves (ramps, instant
  // arrival grants, idle decay) — busy or not. Observability only; the kernel
  // forwards it to KernelObserver::OnCoreFreqChange.
  using FreqChangeFn = std::function<void(int phys_core, double freq_ghz)>;

  HardwareModel(Engine* engine, const MachineSpec& spec);
  HardwareModel(const HardwareModel&) = delete;
  HardwareModel& operator=(const HardwareModel&) = delete;

  const Topology& topology() const { return topology_; }
  const MachineSpec& spec() const { return spec_; }

  void set_freq_request_fn(FreqRequestFn fn) { freq_request_fn_ = std::move(fn); }
  void set_speed_change_fn(SpeedChangeFn fn) { speed_change_fn_ = std::move(fn); }
  void set_freq_change_fn(FreqChangeFn fn) { freq_change_fn_ = std::move(fn); }

  // Schedules the periodic frequency re-evaluation. Call once, after the
  // callbacks are wired.
  void Start();

  // Marks a hardware thread busy (running a task, or spinning in the Nest
  // idle loop) or idle. Updates the socket's active-core count, both
  // siblings' effective speeds, and the energy meter.
  void SetThreadBusy(int cpu, bool busy);

  // Re-evaluates one physical core's frequency immediately (e.g. the kernel
  // kicks the hardware on task placement, as schedutil does on enqueue).
  void KickCpu(int cpu);

  // Current frequency of the CPU's physical core, GHz.
  double FreqGhz(int cpu) const { return cores_[topology_.PhysCoreOf(cpu)].freq_ghz; }

  // Frequency observed at the most recent scheduler tick (what Smove's
  // heuristic can see, paper §2.2/§5.2).
  double FreqAtLastTickGhz(int cpu) const {
    return cores_[topology_.PhysCoreOf(cpu)].freq_at_tick_ghz;
  }

  // The kernel calls this once per scheduler tick to latch per-core
  // frequencies for FreqAtLastTickGhz.
  void SampleTick();

  // freq * SMT factor: the execution speed a task on `cpu` gets right now.
  double EffectiveSpeedGhz(int cpu) const;

  bool ThreadBusy(int cpu) const { return thread_busy_[cpu]; }
  int ActivePhysCoresOnSocket(int socket) const { return socket_active_[socket]; }

  // Physical cores on the socket holding a turbo license: busy, or idle for
  // less than spec().turbo_license_window (still in a shallow C-state).
  int TurboLicensesOnSocket(int socket) const;

  // Total CPU energy consumed so far, accumulated to Now().
  double EnergyJoules();

  // Instantaneous power draw of one socket, watts.
  double SocketPowerWatts(int socket) const;

  // Instantaneous power of the whole package set.
  double TotalPowerWatts() const;

 private:
  struct CoreState {
    double freq_ghz = 0.0;
    double freq_at_tick_ghz = 0.0;
    int busy_threads = 0;
    SimTime idle_since = 0;      // valid when busy_threads == 0
    SimTime last_freq_update = 0;
    // EMA of C0 residency; drives the hardware's autonomous frequency floor.
    double activity_ema = 0.0;
  };

  // Moves one core's frequency toward its current target, given the elapsed
  // time since its last update. Fires speed-change callbacks on change.
  void UpdateCoreFreq(int phys);
  double TargetGhz(int phys) const;
  void PeriodicUpdate();
  void AccumulateEnergy();
  void NotifySpeedChange(int phys);
  void NotifyFreqChange(int phys);

  Engine* engine_;
  MachineSpec spec_;
  Topology topology_;
  FreqRequestFn freq_request_fn_;
  SpeedChangeFn speed_change_fn_;
  FreqChangeFn freq_change_fn_;

  std::vector<CoreState> cores_;      // indexed by physical core
  std::vector<char> thread_busy_;     // indexed by logical cpu
  std::vector<int> socket_active_;    // active physical cores per socket

  SimTime last_energy_update_ = 0;
  double energy_joules_ = 0.0;
  bool started_ = false;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_HW_HARDWARE_H_
