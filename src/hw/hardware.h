// The hardware model: per-core frequency selection, SMT throughput sharing,
// and socket energy accounting.
//
// Responsibility split (paper §2.3): the OS governor *requests* a frequency
// floor; the hardware chooses the actual frequency from the request, the
// number of active physical cores on the socket (turbo ladder, paper
// Table 3), and how long the core has been idle. The kernel informs this
// model about thread activity and asks it for execution speeds; whenever a
// running CPU's effective speed changes, the model fires a callback so the
// kernel can recompute in-flight completion times.

#ifndef NESTSIM_SRC_HW_HARDWARE_H_
#define NESTSIM_SRC_HW_HARDWARE_H_

#include <functional>
#include <vector>

#include "src/hw/machine_spec.h"
#include "src/hw/topology.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace nestsim {

class HardwareModel {
 public:
  // Returns the governor's requested frequency floor (GHz) for a logical CPU.
  using FreqRequestFn = std::function<double(int cpu)>;
  // Invoked when the effective speed of a busy logical CPU changed.
  using SpeedChangeFn = std::function<void(int cpu)>;
  // Invoked whenever a physical core's frequency moves (ramps, instant
  // arrival grants, idle decay) — busy or not. Observability only; the kernel
  // forwards it to KernelObserver::OnCoreFreqChange.
  using FreqChangeFn = std::function<void(int phys_core, double freq_ghz)>;

  HardwareModel(Engine* engine, const MachineSpec& spec);
  HardwareModel(const HardwareModel&) = delete;
  HardwareModel& operator=(const HardwareModel&) = delete;

  const Topology& topology() const { return topology_; }
  const MachineSpec& spec() const { return spec_; }

  void set_freq_request_fn(FreqRequestFn fn) { freq_request_fn_ = std::move(fn); }
  // Governor-imposed hard frequency ceiling (GHz; 0 = none) for a CPU. Unlike
  // the request (a floor), the ceiling clamps the autonomous turbo/activity
  // boost — the budget governor's RAPL-style lever. Left unset on uncapped
  // runs, so TargetGhz stays byte-identical there.
  void set_freq_cap_fn(FreqRequestFn fn) { freq_cap_fn_ = std::move(fn); }
  void set_speed_change_fn(SpeedChangeFn fn) { speed_change_fn_ = std::move(fn); }
  void set_freq_change_fn(FreqChangeFn fn) { freq_change_fn_ = std::move(fn); }

  // Schedules the periodic frequency re-evaluation. Call once, after the
  // callbacks are wired.
  void Start();

  // Marks a hardware thread busy (running a task, or spinning in the Nest
  // idle loop) or idle. Updates the socket's active-core count, both
  // siblings' effective speeds, and the energy meter.
  void SetThreadBusy(int cpu, bool busy);

  // Re-evaluates one physical core's frequency immediately (e.g. the kernel
  // kicks the hardware on task placement, as schedutil does on enqueue).
  void KickCpu(int cpu);

  // Current frequency of the CPU's physical core, GHz.
  double FreqGhz(int cpu) const { return cores_[topology_.PhysCoreOf(cpu)].freq_ghz; }

  // Frequency observed at the most recent scheduler tick (what Smove's
  // heuristic can see, paper §2.2/§5.2).
  double FreqAtLastTickGhz(int cpu) const {
    return cores_[topology_.PhysCoreOf(cpu)].freq_at_tick_ghz;
  }

  // The kernel calls this once per scheduler tick to latch per-core
  // frequencies for FreqAtLastTickGhz.
  void SampleTick();

  // freq * SMT factor: the execution speed a task on `cpu` gets right now.
  // Inline: queried on every compute-segment start and speed change.
  double EffectiveSpeedGhz(int cpu) const {
    const CoreState& core = cores_[topology_.PhysCoreOf(cpu)];
    double factor = 1.0;
    const int sibling = topology_.SiblingOf(cpu);
    if (sibling >= 0 && thread_busy_[cpu] && thread_busy_[sibling]) {
      factor = spec_.smt_throughput;
    }
    return core.freq_ghz * factor;
  }

  bool ThreadBusy(int cpu) const { return thread_busy_[cpu]; }
  int ActivePhysCoresOnSocket(int socket) const { return socket_active_[socket]; }

  // Physical cores on the socket holding a turbo license: busy, or idle for
  // less than spec().turbo_license_window (still in a shallow C-state).
  // Memo hit is the overwhelmingly common case; keep it inline.
  int TurboLicensesOnSocket(int socket) const {
    const SimTime now = engine_->Now();
    const TurboMemo& memo = turbo_memo_[socket];
    if (memo.gen == socket_busy_gen_[socket] && now >= memo.valid_from &&
        now < memo.valid_until) {
      return memo.licenses;
    }
    return CountTurboLicenses(socket);
  }

  // Total CPU energy consumed so far, accumulated to Now().
  double EnergyJoules();

  // Instantaneous power draw of one socket, watts. Served from the
  // piecewise-constant memo when valid (see PowerMemo below).
  double SocketPowerWatts(int socket) const {
    const SimTime now = engine_->Now();
    const PowerMemo& memo = power_memo_[socket];
    if (memo.gen == socket_power_gen_[socket] && now >= memo.valid_from &&
        now < memo.valid_until) {
      return memo.watts;
    }
    return ComputeSocketPower(socket);
  }

  // Simulation clock, for governors that keep windowed state (BudgetGovernor).
  SimTime Now() const { return engine_->Now(); }

  // Instantaneous power of the whole package set.
  double TotalPowerWatts() const {
    double watts = 0.0;
    for (int s = 0; s < topology_.num_sockets(); ++s) {
      watts += SocketPowerWatts(s);
    }
    return watts;
  }

 private:
  struct CoreState {
    double freq_ghz = 0.0;
    double freq_at_tick_ghz = 0.0;
    int busy_threads = 0;
    SimTime idle_since = 0;      // valid when busy_threads == 0
    SimTime last_freq_update = 0;
    // EMA of C0 residency; drives the hardware's autonomous frequency floor.
    double activity_ema = 0.0;
  };

  // Moves one core's frequency toward its current target, given the elapsed
  // time since its last update. Fires speed-change callbacks on change.
  void UpdateCoreFreq(int phys);
  double TargetGhz(int phys) const;
  void PeriodicUpdate();
  void NotifySpeedChange(int phys);
  void NotifyFreqChange(int phys);
  int CountTurboLicenses(int socket) const;   // slow path; fills turbo_memo_
  double ComputeSocketPower(int socket) const;  // slow path; fills power_memo_

  // Integrates power over [last_energy_update_, now); must run before any
  // state change that affects power.
  void AccumulateEnergy() {
    const SimTime now = engine_->Now();
    if (now <= last_energy_update_) {
      return;
    }
    energy_joules_ += TotalPowerWatts() * ToSeconds(now - last_energy_update_);
    last_energy_update_ = now;
  }

  Engine* engine_;
  MachineSpec spec_;
  Topology topology_;
  FreqRequestFn freq_request_fn_;
  FreqRequestFn freq_cap_fn_;
  SpeedChangeFn speed_change_fn_;
  FreqChangeFn freq_change_fn_;

  std::vector<CoreState> cores_;      // indexed by physical core
  std::vector<char> thread_busy_;     // indexed by logical cpu
  std::vector<int> socket_active_;    // active physical cores per socket

  // TurboLicensesOnSocket scans every core on the socket; TargetGhz calls it
  // for each core it updates, so a periodic sweep is quadratic in socket
  // width. The count is piecewise constant: it only changes when a core flips
  // busy<->idle (bumps socket_busy_gen_) or a shallow-idle license window
  // expires — so cache it with its validity interval, like PowerMemo below.
  struct TurboMemo {
    SimTime valid_from = 0;
    SimTime valid_until = 0;  // exclusive; earliest shallow-idle expiry
    uint64_t gen = 0;
    int licenses = 0;
  };
  mutable std::vector<TurboMemo> turbo_memo_;  // indexed by socket
  std::vector<uint64_t> socket_busy_gen_;      // bumped on 0<->1 transitions

  // SocketPowerWatts is evaluated at every energy-accumulation point — one or
  // more times per scheduling event — and scans every core on the socket.
  // But power is piecewise constant: it only moves when a core's frequency
  // changes, a core flips busy<->idle, or a shallow-idle license window
  // expires. Cache the computed watts with its validity interval; within it a
  // fresh scan would re-derive the bit-identical double, so the energy
  // integral is unchanged.
  struct PowerMemo {
    double watts = 0.0;
    SimTime valid_from = 0;
    SimTime valid_until = 0;  // exclusive; first shallow-idle window expiry
    uint64_t gen = 0;
  };
  mutable std::vector<PowerMemo> power_memo_;  // indexed by socket
  // Bumped on busy flips, idle_since moves, and every freq_ghz change.
  std::vector<uint64_t> socket_power_gen_;

  // One-entry memo for the activity-EMA decay in UpdateCoreFreq: nearly all
  // updates happen a whole freq_update_period apart, so the same elapsed_ms
  // (and hence the bit-identical exp2 result) repeats constantly.
  double ema_memo_ms_ = -1.0;
  double ema_memo_decay_ = 1.0;

  SimTime last_energy_update_ = 0;
  double energy_joules_ = 0.0;
  bool started_ = false;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_HW_HARDWARE_H_
