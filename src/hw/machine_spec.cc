#include "src/hw/machine_spec.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

TurboLadder::TurboLadder(std::vector<double> ghz_by_active_count)
    : ghz_(std::move(ghz_by_active_count)) {}

double TurboLadder::CapGhz(int active_physical_cores) const {
  if (ghz_.empty()) {
    return 0.0;
  }
  if (active_physical_cores <= 1) {
    return ghz_.front();
  }
  const size_t idx = static_cast<size_t>(active_physical_cores - 1);
  if (idx >= ghz_.size()) {
    return ghz_.back();
  }
  return ghz_[idx];
}

namespace {

// Expands a run-length ladder {count, ghz}... into a per-count table.
std::vector<double> Ladder(std::initializer_list<std::pair<int, double>> runs) {
  std::vector<double> out;
  for (const auto& [count, ghz] : runs) {
    for (int i = 0; i < count; ++i) {
      out.push_back(ghz);
    }
  }
  return out;
}

MachineSpec Xeon6130(int sockets) {
  MachineSpec m;
  m.name = sockets == 2 ? "intel-6130-2s" : "intel-6130-4s";
  m.cpu_model = "Intel Xeon Gold 6130";
  m.microarch = "Skylake";
  m.num_sockets = sockets;
  m.physical_cores_per_socket = 16;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.0;
  m.nominal_freq_ghz = 2.1;
  // Paper Table 3: 1-2: 3.7, 3-4: 3.5, 5-8: 3.4, 9-12: 3.1, 13-16: 2.8.
  m.turbo = TurboLadder(Ladder({{2, 3.7}, {2, 3.5}, {4, 3.4}, {4, 3.1}, {4, 2.8}}));
  m.power_management = PowerManagement::kSpeedShift;
  m.ramp_up_ghz_per_ms = 2.5;
  m.ramp_down_ghz_per_ms = 1.5;
  m.arrival_activity_floor = 0.45;
  m.freq_update_period = 1 * kMillisecond;
  m.idle_decay_delay = 2 * kMillisecond;
  m.turbo_license_window = 6 * kMillisecond;
  m.autonomy_weight = 1.0;
  m.activity_halflife = 1200 * kMicrosecond;
  m.uncore_watts = 28.0;
  m.package_idle_watts = 26.0;
  m.core_dyn_coeff = 1.35;
  return m;
}

MachineSpec Xeon5218() {
  MachineSpec m;
  m.name = "intel-5218-2s";
  m.cpu_model = "Intel Xeon Gold 5218";
  m.microarch = "Cascade Lake";
  m.num_sockets = 2;
  m.physical_cores_per_socket = 16;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.0;
  m.nominal_freq_ghz = 2.3;
  // Paper Table 3: 1-2: 3.9, 3-4: 3.7, 5-8: 3.6, 9-12: 3.1, 13-16: 2.8.
  m.turbo = TurboLadder(Ladder({{2, 3.9}, {2, 3.7}, {4, 3.6}, {4, 3.1}, {4, 2.8}}));
  m.power_management = PowerManagement::kSpeedShift;
  m.ramp_up_ghz_per_ms = 2.5;
  m.ramp_down_ghz_per_ms = 1.6;
  m.freq_update_period = 1 * kMillisecond;
  m.idle_decay_delay = 2 * kMillisecond;
  m.turbo_license_window = 6 * kMillisecond;
  m.autonomy_weight = 1.0;
  m.activity_halflife = 1200 * kMicrosecond;
  m.arrival_activity_floor = 0.45;
  m.uncore_watts = 30.0;
  m.package_idle_watts = 28.0;
  m.core_dyn_coeff = 1.35;
  return m;
}

MachineSpec XeonE78870v4() {
  MachineSpec m;
  m.name = "intel-e78870v4-4s";
  m.cpu_model = "Intel Xeon E7-8870 v4";
  m.microarch = "Broadwell";
  m.num_sockets = 4;
  m.physical_cores_per_socket = 20;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.2;
  m.nominal_freq_ghz = 2.1;
  // Paper Table 3: 1-2: 3.0, 3: 2.8, 4: 2.7, 5-20: 2.6.
  m.turbo = TurboLadder(Ladder({{2, 3.0}, {1, 2.8}, {1, 2.7}, {16, 2.6}}));
  m.power_management = PowerManagement::kSpeedStep;
  // SpeedStep: tick-paced, coarse steps; quick decay on computation gaps
  // (the paper: "prone to using subturbo frequencies whenever there are gaps
  // in the computation").
  m.ramp_up_ghz_per_ms = 0.8;
  m.ramp_down_ghz_per_ms = 0.8;
  m.freq_update_period = 10 * kMillisecond;
  m.idle_decay_delay = 1 * kMillisecond;
  m.turbo_license_window = 10 * kMillisecond;
  m.autonomy_weight = 1.0;
  m.activity_halflife = 8 * kMillisecond;
  m.arrival_activity_floor = 0.25;
  m.idle_drift_ghz_per_ms = 0.25;
  m.uncore_watts = 34.0;
  m.package_idle_watts = 30.0;
  m.core_dyn_coeff = 1.5;
  m.idle_exit_latency = 60 * kMicrosecond;
  return m;
}

MachineSpec Xeon5220() {
  MachineSpec m;
  m.name = "intel-5220-1s";
  m.cpu_model = "Intel Xeon Gold 5220";
  m.microarch = "Cascade Lake";
  m.num_sockets = 1;
  m.physical_cores_per_socket = 18;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.0;
  m.nominal_freq_ghz = 2.2;
  // Published 5220 ladder (maximum turbo 3.9 GHz, all-core 2.7).
  m.turbo = TurboLadder(Ladder({{2, 3.9}, {2, 3.7}, {4, 3.6}, {4, 3.1}, {6, 2.7}}));
  m.power_management = PowerManagement::kSpeedShift;
  m.ramp_up_ghz_per_ms = 2.5;
  m.ramp_down_ghz_per_ms = 1.6;
  m.freq_update_period = 1 * kMillisecond;
  m.idle_decay_delay = 2 * kMillisecond;
  m.turbo_license_window = 6 * kMillisecond;
  m.autonomy_weight = 1.0;
  m.activity_halflife = 1200 * kMicrosecond;
  m.arrival_activity_floor = 0.45;
  m.uncore_watts = 30.0;
  m.package_idle_watts = 28.0;
  m.core_dyn_coeff = 1.35;
  return m;
}

// Huge-machine presets for the PDES scaling study (docs/PARALLEL.md): a
// Platinum-class Skylake part at 4 and 8 sockets, giving 128- and 256-CPU
// single machines. Not a paper machine; the ladder follows the published
// 8153 bins (maximum turbo 2.8 GHz, all-core 2.3).
MachineSpec Xeon8153(int sockets) {
  MachineSpec m;
  m.name = sockets == 4 ? "intel-8153-4s" : "intel-8153-8s";
  m.cpu_model = "Intel Xeon Platinum 8153";
  m.microarch = "Skylake";
  m.num_sockets = sockets;
  m.physical_cores_per_socket = 16;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.0;
  m.nominal_freq_ghz = 2.0;
  m.turbo = TurboLadder(Ladder({{2, 2.8}, {2, 2.7}, {4, 2.5}, {4, 2.4}, {4, 2.3}}));
  m.power_management = PowerManagement::kSpeedShift;
  m.ramp_up_ghz_per_ms = 2.5;
  m.ramp_down_ghz_per_ms = 1.5;
  m.arrival_activity_floor = 0.45;
  m.freq_update_period = 1 * kMillisecond;
  m.idle_decay_delay = 2 * kMillisecond;
  m.turbo_license_window = 6 * kMillisecond;
  m.autonomy_weight = 1.0;
  m.activity_halflife = 1200 * kMicrosecond;
  m.uncore_watts = 32.0;
  m.package_idle_watts = 30.0;
  m.core_dyn_coeff = 1.35;
  return m;
}

MachineSpec Ryzen4650G() {
  MachineSpec m;
  m.name = "amd-4650g-1s";
  m.cpu_model = "AMD Ryzen 5 PRO 4650G";
  m.microarch = "Zen 2";
  m.num_sockets = 1;
  m.physical_cores_per_socket = 6;
  m.threads_per_core = 2;
  m.min_freq_ghz = 1.4;
  m.nominal_freq_ghz = 3.7;
  // Maximum boost 4.2 GHz, modest taper to the all-core boost.
  m.turbo = TurboLadder(Ladder({{2, 4.2}, {1, 4.1}, {1, 4.0}, {2, 3.9}}));
  m.power_management = PowerManagement::kTurboCore;
  // Zen 2 boosts fast but parks idle cores aggressively, so schedutil pays a
  // large ramp penalty on cold cores relative to the high nominal frequency.
  m.ramp_up_ghz_per_ms = 0.9;
  m.ramp_down_ghz_per_ms = 2.0;
  m.freq_update_period = 1 * kMillisecond;
  m.idle_decay_delay = 1 * kMillisecond;
  m.turbo_license_window = 3 * kMillisecond;
  m.autonomy_weight = 0.95;
  m.activity_halflife = 2 * kMillisecond;
  m.arrival_activity_floor = 0.15;
  m.idle_drift_ghz_per_ms = 0.5;
  m.uncore_watts = 9.0;
  m.package_idle_watts = 7.0;
  m.core_dyn_coeff = 1.2;
  m.smt_throughput = 0.68;
  return m;
}

}  // namespace

const std::vector<MachineSpec>& AllMachines() {
  static const std::vector<MachineSpec>* machines = new std::vector<MachineSpec>{
      Xeon6130(2), Xeon6130(4), Xeon5218(),   XeonE78870v4(),
      Xeon5220(),  Ryzen4650G(), Xeon8153(4), Xeon8153(8)};
  return *machines;
}

const MachineSpec* FindMachine(const std::string& name) {
  for (const MachineSpec& m : AllMachines()) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

std::vector<std::string> MachineNames() {
  std::vector<std::string> names;
  names.reserve(AllMachines().size());
  for (const MachineSpec& m : AllMachines()) {
    names.push_back(m.name);
  }
  return names;
}

const MachineSpec& MachineByName(const std::string& name) {
  if (const MachineSpec* m = FindMachine(name)) {
    return *m;
  }
  std::fprintf(stderr, "nestsim: unknown machine '%s'. Known machines:\n", name.c_str());
  for (const MachineSpec& m : AllMachines()) {
    std::fprintf(stderr, "  %s (%s)\n", m.name.c_str(), m.cpu_model.c_str());
  }
  std::abort();
}

std::vector<std::string> PaperMachineNames() {
  return {"intel-6130-2s", "intel-6130-4s", "intel-5218-2s", "intel-e78870v4-4s"};
}

}  // namespace nestsim
