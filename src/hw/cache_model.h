// Cache/NUMA warmth model (ROADMAP item 3; docs/MODEL.md §5).
//
// Every modelled machine equates a socket with a die, a NUMA node, and an
// LLC domain (src/hw/topology.h), so "LLC warmth" is per-task, per-socket
// state: while a task runs on a socket its warmth there rises toward 1 with
// the PELT half-life (src/kernel/pelt.h — the same decay tables, so warmth
// and utilisation stay bit-comparable), and decays whenever it is not
// running there. The kernel consumes the warmth three ways:
//
//   * service rate — a compute segment on a socket where the task has
//     warmth w runs at EffectiveSpeedGhz * WarmSpeedupFactor(w), modelling
//     the reduced miss rate of a warm LLC;
//   * migration cost — resuming on a different LLC than the previous stint
//     charges `migration_cost_work` extra GHz-ns and resets the warmth the
//     task had on the LLC it left (its lines are gone for good, not merely
//     decaying);
//   * observability — each dispatch is classified warm-hit or cold-miss
//     against `warm_threshold` (SchedCounters + Perfetto warmth tracks).
//
// The defaults are a disabled model: speedup 1.0 and cost 0 make every
// consumer a bit-exact no-op, which is what keeps the pre-existing golden
// baselines byte-identical. The kernel additionally skips all warmth
// bookkeeping unless the model is enabled or the policy asks for warmth
// (SchedulerPolicy::WantsCacheWarmth — NestCachePolicy), so the disabled
// fast paths stay off the perf-floor hot paths.

#ifndef NESTSIM_SRC_HW_CACHE_MODEL_H_
#define NESTSIM_SRC_HW_CACHE_MODEL_H_

namespace nestsim {

struct CacheParams {
  // Relative service rate at warmth 1.0; 1.0 disables the speedup. A task
  // with warmth w on its LLC runs at 1 + (warm_speedup - 1) * w times the
  // hardware speed, so the factor interpolates linearly from cold (1.0) to
  // fully warm (warm_speedup).
  double warm_speedup = 1.0;

  // Extra work (GHz-ns) charged when a task resumes on a different LLC
  // domain (socket) than its previous stint ran on — the cache refill the
  // frequency-only model cannot see. Additive to the kernel's generic
  // cross-core refill (Kernel::Params::*migration_cost_work); 0 disables it.
  double migration_cost_work = 0.0;

  // Dispatches with destination-LLC warmth >= warm_threshold count as warm
  // hits, below it as cold misses. Pure observability: never changes
  // behaviour, only the warm_hit/cold_miss counter split.
  double warm_threshold = 0.5;

  // True when the model changes simulation behaviour. Observability-only
  // knobs (warm_threshold) deliberately do not count.
  bool enabled() const { return warm_speedup != 1.0 || migration_cost_work != 0.0; }
};

// The warm-cache service-rate multiplier for a task with LLC warmth
// `warmth` in [0, 1]. Exactly 1.0 when the speedup is disabled (1.0 +
// 0 * w == 1.0 for every finite w), which is what keeps neutral-parameter
// runs bit-identical.
inline double WarmSpeedupFactor(const CacheParams& params, double warmth) {
  return 1.0 + (params.warm_speedup - 1.0) * warmth;
}

}  // namespace nestsim

#endif  // NESTSIM_SRC_HW_CACHE_MODEL_H_
