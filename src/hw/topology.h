// CPU topology: sockets, physical cores, and SMT hardware threads.
//
// Terminology follows the paper: a "core" (here: logical CPU) is a hardware
// thread; two hardware threads sharing a physical core are "hyperthreads" of
// each other; all cores on a socket share the last-level cache, so a die
// coincides with a socket on every modelled machine.
//
// Numbering matches the paper's renumbered traces: CPUs on the same socket
// are adjacent. First hardware threads come first, siblings in a second
// block:
//   cpu in [0, P*S)        : thread 0 of physical core (cpu)
//   cpu in [P*S, 2*P*S)    : thread 1, sibling of (cpu - P*S)
// where P = physical cores per socket, S = sockets. Physical core p lives on
// socket p / P.

#ifndef NESTSIM_SRC_HW_TOPOLOGY_H_
#define NESTSIM_SRC_HW_TOPOLOGY_H_

#include <vector>

namespace nestsim {

class Topology {
 public:
  Topology(int num_sockets, int physical_cores_per_socket, int threads_per_core);

  int num_cpus() const { return num_cpus_; }
  int num_sockets() const { return num_sockets_; }
  int num_physical_cores() const { return num_physical_; }
  int physical_cores_per_socket() const { return phys_per_socket_; }
  int threads_per_core() const { return smt_; }

  // Socket (== die == NUMA node) of a logical CPU.
  int SocketOf(int cpu) const { return PhysCoreOf(cpu) / phys_per_socket_; }

  // Global physical-core index of a logical CPU, in [0, num_physical_cores()).
  int PhysCoreOf(int cpu) const { return cpu % num_physical_; }

  // The other hardware thread on the same physical core, or -1 when SMT is
  // off. Inline: this sits on the context-switch and speed-query hot paths.
  int SiblingOf(int cpu) const {
    if (smt_ == 1) {
      return -1;
    }
    return IsFirstThread(cpu) ? cpu + num_physical_ : cpu - num_physical_;
  }

  // True for the thread-0 CPU of each physical core.
  bool IsFirstThread(int cpu) const { return cpu < num_physical_; }

  // Logical CPUs of a socket, ascending.
  const std::vector<int>& CpusOnSocket(int socket) const { return socket_cpus_[socket]; }

  // Logical CPUs of a physical core, ascending ({thread0, thread1}).
  const std::vector<int>& CpusOfPhysCore(int phys) const { return phys_cpus_[phys]; }

  // First-thread CPUs of a socket, ascending; these enumerate the physical
  // cores on the socket.
  const std::vector<int>& FirstThreadsOnSocket(int socket) const {
    return socket_first_threads_[socket];
  }

  bool SameSocket(int a, int b) const { return SocketOf(a) == SocketOf(b); }
  bool SamePhysCore(int a, int b) const { return PhysCoreOf(a) == PhysCoreOf(b); }

 private:
  int num_sockets_;
  int phys_per_socket_;
  int smt_;
  int num_physical_;
  int num_cpus_;
  std::vector<std::vector<int>> socket_cpus_;
  std::vector<std::vector<int>> phys_cpus_;
  std::vector<std::vector<int>> socket_first_threads_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_HW_TOPOLOGY_H_
