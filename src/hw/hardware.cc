#include "src/hw/hardware.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nestsim {

namespace {
// Frequency changes below this threshold do not trigger completion-time
// recomputation; they are folded into the next update instead.
constexpr double kSpeedChangeEpsilonGhz = 0.02;
}  // namespace

HardwareModel::HardwareModel(Engine* engine, const MachineSpec& spec)
    : engine_(engine),
      spec_(spec),
      topology_(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core),
      cores_(topology_.num_physical_cores()),
      thread_busy_(topology_.num_cpus(), 0),
      socket_active_(topology_.num_sockets(), 0),
      turbo_memo_(topology_.num_sockets()),
      socket_busy_gen_(topology_.num_sockets(), 0),
      power_memo_(topology_.num_sockets()),
      socket_power_gen_(topology_.num_sockets(), 0) {
  for (CoreState& core : cores_) {
    core.freq_ghz = spec_.min_freq_ghz;
    // Stale frequency observations start at nominal: the paper's runs follow
    // warmups, so never-yet-sampled cores look "fine" to Smove.
    core.freq_at_tick_ghz = spec_.nominal_freq_ghz;
    core.idle_since = engine_->Now();
    core.last_freq_update = engine_->Now();
  }
  last_energy_update_ = engine_->Now();
}

void HardwareModel::Start() {
  assert(!started_);
  started_ = true;
  engine_->ScheduleAfter(spec_.freq_update_period, [this] { PeriodicUpdate(); });
}

void HardwareModel::PeriodicUpdate() {
  AccumulateEnergy();
  for (int phys = 0; phys < topology_.num_physical_cores(); ++phys) {
    UpdateCoreFreq(phys);
  }
  engine_->ScheduleAfter(spec_.freq_update_period, [this] { PeriodicUpdate(); });
}

int HardwareModel::CountTurboLicenses(int socket) const {
  const SimTime now = engine_->Now();
  TurboMemo& memo = turbo_memo_[socket];
  const int base = socket * topology_.physical_cores_per_socket();
  int licenses = 0;
  // The count holds until the earliest shallow-idle license expires; busy
  // cores and already-expired idle cores cannot change the count without a
  // busy transition, which bumps socket_busy_gen_ and invalidates the memo.
  SimTime valid_until = std::numeric_limits<SimTime>::max();
  for (int i = 0; i < topology_.physical_cores_per_socket(); ++i) {
    const CoreState& core = cores_[base + i];
    if (core.busy_threads > 0) {
      ++licenses;
    } else if (now - core.idle_since < spec_.turbo_license_window) {
      ++licenses;
      valid_until = std::min(valid_until, core.idle_since + spec_.turbo_license_window);
    }
  }
  memo.valid_from = now;
  memo.valid_until = valid_until;
  memo.gen = socket_busy_gen_[socket];
  memo.licenses = licenses;
  return licenses;
}

double HardwareModel::TargetGhz(int phys) const {
  const CoreState& core = cores_[phys];
  const int socket = phys / topology_.physical_cores_per_socket();
  if (core.busy_threads == 0) {
    const SimDuration idle_for = engine_->Now() - core.idle_since;
    if (idle_for >= spec_.idle_decay_delay) {
      return spec_.min_freq_ghz;  // reached via the slow idle drift below
    }
    // Recently idle: hold near the current frequency (but within the cap) so
    // a task returning quickly finds the core still warm.
    const double idle_cap = spec_.turbo.CapGhz(std::max(1, TurboLicensesOnSocket(socket) + 1));
    return std::clamp(core.freq_ghz, spec_.min_freq_ghz, idle_cap);
  }
  // The ladder counts every core still holding a turbo license — this is how
  // task dispersal lowers the ceiling for everyone even when only one or two
  // tasks run at any instant.
  const int licenses = std::max(1, TurboLicensesOnSocket(socket));
  const double cap = spec_.turbo.CapGhz(licenses);

  double request = spec_.min_freq_ghz;
  if (freq_request_fn_) {
    const std::vector<int>& threads = topology_.CpusOfPhysCore(phys);
    for (int cpu : threads) {
      if (thread_busy_[cpu]) {
        request = std::max(request, freq_request_fn_(cpu));
      }
    }
  } else {
    request = cap;  // no governor wired: hardware runs free
  }
  // Autonomous boost: sustained C0 activity pulls a busy core from the
  // governor's request toward the turbo cap (the hardware alone decides the
  // turbo range, paper §2.3). The arrival floor makes a newly busy core jump
  // to roughly nominal right away; the climb to the cap follows the activity
  // EMA, saturating at the knee. SpeedStep-era parts differ through their
  // sluggish EMA and coarse update quantum, not a lower ceiling.
  constexpr double kKnee = 0.75;
  const double activity =
      std::min(1.0, std::max(core.activity_ema, spec_.arrival_activity_floor) / kKnee);
  const double base =
      spec_.min_freq_ghz + spec_.autonomy_weight * activity * (cap - spec_.min_freq_ghz);
  const double boosted = std::max(request, base) +
                         activity * (cap - std::max(request, base)) * spec_.autonomy_weight;
  double target = std::clamp(std::max(request, boosted), spec_.min_freq_ghz, cap);
  // A governor ceiling (power cap) binds even the autonomous boost — the PCU
  // obeys a RAPL clamp where it ignores a low P-state request.
  if (freq_cap_fn_) {
    const double gov_cap = freq_cap_fn_(topology_.CpusOfPhysCore(phys)[0]);
    if (gov_cap > 0.0 && gov_cap < target) {
      target = std::max(spec_.min_freq_ghz, gov_cap);
    }
  }
  return target;
}

void HardwareModel::UpdateCoreFreq(int phys) {
  CoreState& core = cores_[phys];
  const SimTime now = engine_->Now();
  const double elapsed_ms = ToMilliseconds(now - core.last_freq_update);
  core.last_freq_update = now;
  if (elapsed_ms <= 0.0) {
    return;
  }
  // Absorbing state: a long-idle core with a fully drained activity EMA
  // sitting at the floor frequency computes EMA' == +0.0, target == min, and
  // moves nothing — only the timestamp (already advanced) matters. This makes
  // the periodic sweep O(1) for the never-used cores of a lightly loaded
  // machine.
  if (core.busy_threads == 0 && core.activity_ema == 0.0 &&
      core.freq_ghz == spec_.min_freq_ghz && now - core.idle_since >= spec_.idle_decay_delay) {
    return;
  }
  // Fold the elapsed interval into the C0-residency EMA before targeting.
  {
    double decay;
    if (elapsed_ms == ema_memo_ms_) {
      decay = ema_memo_decay_;
    } else {
      const double dt = elapsed_ms * static_cast<double>(kMillisecond);
      decay = std::exp2(-dt / static_cast<double>(spec_.activity_halflife));
      ema_memo_ms_ = elapsed_ms;
      ema_memo_decay_ = decay;
    }
    const double busy_now = core.busy_threads > 0 ? 1.0 : 0.0;
    core.activity_ema = core.activity_ema * decay + busy_now * (1.0 - decay);
  }
  const double target = TargetGhz(phys);
  const double old = core.freq_ghz;
  // Downward moves are asymmetric: busy cores barely downshift (the PCU holds
  // a running core's P-state — what warm spinning exploits), recently idle
  // cores drop at the fast rate, long-idle cores drift down gently.
  double down_rate = spec_.ramp_down_ghz_per_ms;
  if (core.busy_threads > 0) {
    down_rate = spec_.busy_downshift_ghz_per_ms;
  } else if (now - core.idle_since >= spec_.idle_decay_delay) {
    down_rate = spec_.idle_drift_ghz_per_ms;
  }
  if (target > core.freq_ghz) {
    core.freq_ghz = std::min(target, core.freq_ghz + spec_.ramp_up_ghz_per_ms * elapsed_ms);
  } else if (target < core.freq_ghz) {
    core.freq_ghz = std::max(target, core.freq_ghz - down_rate * elapsed_ms);
  }
  if (core.freq_ghz != old) {
    NotifyFreqChange(phys);
  }
  if (std::abs(core.freq_ghz - old) > kSpeedChangeEpsilonGhz) {
    NotifySpeedChange(phys);
  }
}

void HardwareModel::NotifyFreqChange(int phys) {
  // Socket power depends on busy cores' frequencies only — an idle core
  // contributes shallow_idle_watts or nothing regardless of its frequency,
  // so idle decay drift doesn't invalidate the power memo. (Busy flips bump
  // the generation in SetThreadBusy.)
  if (cores_[phys].busy_threads > 0) {
    ++socket_power_gen_[phys / topology_.physical_cores_per_socket()];
  }
  if (freq_change_fn_) {
    freq_change_fn_(phys, cores_[phys].freq_ghz);
  }
}

void HardwareModel::NotifySpeedChange(int phys) {
  if (!speed_change_fn_) {
    return;
  }
  for (int cpu : topology_.CpusOfPhysCore(phys)) {
    if (thread_busy_[cpu]) {
      speed_change_fn_(cpu);
    }
  }
}

void HardwareModel::SetThreadBusy(int cpu, bool busy) {
  if (thread_busy_[cpu] == static_cast<char>(busy)) {
    return;
  }
  AccumulateEnergy();
  const int phys = topology_.PhysCoreOf(cpu);
  const int socket = topology_.SocketOf(cpu);
  CoreState& core = cores_[phys];

  // Settle the core's frequency over the elapsed interval before the activity
  // state changes; otherwise a long-idle core would ramp as if it had been
  // busy the whole time.
  UpdateCoreFreq(phys);

  thread_busy_[cpu] = static_cast<char>(busy);
  const int was_busy_threads = core.busy_threads;
  core.busy_threads += busy ? 1 : -1;
  assert(core.busy_threads >= 0 && core.busy_threads <= topology_.threads_per_core());

  if (was_busy_threads == 0 && core.busy_threads == 1) {
    ++socket_active_[socket];
    ++socket_busy_gen_[socket];  // license predicate flipped for this core
    ++socket_power_gen_[socket];
    // Instant P-state grant on wake: the PCU raises a newly busy core to the
    // arrival floor — or the governor's standing request (the `performance`
    // governor keeps even idle cores' requested P-state at nominal) — within
    // tens of microseconds; the climb to the cap then follows the activity
    // EMA at update granularity.
    const double cap = spec_.turbo.CapGhz(std::max(1, TurboLicensesOnSocket(socket)));
    double floor_ghz = spec_.min_freq_ghz + spec_.autonomy_weight *
                                                spec_.arrival_activity_floor *
                                                (cap - spec_.min_freq_ghz);
    if (freq_request_fn_) {
      floor_ghz = std::max(floor_ghz, freq_request_fn_(cpu));
    }
    double instant = std::clamp(floor_ghz, spec_.min_freq_ghz, cap);
    if (freq_cap_fn_) {
      const double gov_cap = freq_cap_fn_(cpu);
      if (gov_cap > 0.0 && gov_cap < instant) {
        instant = std::max(spec_.min_freq_ghz, gov_cap);
      }
    }
    if (instant > core.freq_ghz) {
      core.freq_ghz = instant;
      NotifyFreqChange(phys);
      NotifySpeedChange(phys);
    }
  } else if (was_busy_threads == 1 && core.busy_threads == 0) {
    --socket_active_[socket];
    ++socket_busy_gen_[socket];  // idle_since moved; the window restarted
    ++socket_power_gen_[socket];
    core.idle_since = engine_->Now();
  }

  // The sibling's SMT factor changed; let the kernel recompute its span.
  const int sibling = topology_.SiblingOf(cpu);
  if (sibling >= 0 && thread_busy_[sibling] && speed_change_fn_) {
    speed_change_fn_(sibling);
  }
}

void HardwareModel::KickCpu(int cpu) {
  AccumulateEnergy();
  UpdateCoreFreq(topology_.PhysCoreOf(cpu));
}

void HardwareModel::SampleTick() {
  // Frequency observation (aperf/mperf-style) only advances while a core
  // executes instructions. An idle core therefore keeps showing the stale
  // value from its last busy tick — the reason Smove's "is the chosen core
  // slow?" test rarely fires on Speed Shift machines (paper Â§5.2).
  for (CoreState& core : cores_) {
    if (core.busy_threads > 0) {
      core.freq_at_tick_ghz = core.freq_ghz;
    }
  }
}

double HardwareModel::ComputeSocketPower(int socket) const {
  const SimTime now = engine_->Now();
  PowerMemo& memo = power_memo_[socket];
  double watts;
  // Until when does this result hold? A generation bump invalidates early;
  // otherwise only a shallow-idle core's license window running out changes
  // the sum.
  SimTime valid_until = std::numeric_limits<SimTime>::max();
  if (socket_active_[socket] == 0) {
    watts = spec_.package_idle_watts;
  } else {
    // Shared voltage rail: the fastest active core on the socket sets V
    // (paper §5.2: "the CPU energy consumption is determined by the
    // consumption of the highest frequency core on the socket").
    double hot_ghz = spec_.min_freq_ghz;
    const int base_phys = socket * topology_.physical_cores_per_socket();
    for (int i = 0; i < topology_.physical_cores_per_socket(); ++i) {
      const CoreState& core = cores_[base_phys + i];
      if (core.busy_threads > 0) {
        hot_ghz = std::max(hot_ghz, core.freq_ghz);
      }
    }
    const double volts = spec_.volt_base + spec_.volt_per_ghz * hot_ghz;
    watts = spec_.uncore_watts;
    for (int i = 0; i < topology_.physical_cores_per_socket(); ++i) {
      const CoreState& core = cores_[base_phys + i];
      if (core.busy_threads > 0) {
        watts += spec_.core_dyn_coeff * core.freq_ghz * volts * volts;
      } else if (now - core.idle_since < spec_.turbo_license_window) {
        watts += spec_.shallow_idle_watts;  // shallow C-state
        valid_until = std::min(valid_until, core.idle_since + spec_.turbo_license_window);
      }
    }
  }
  memo.watts = watts;
  memo.valid_from = now;
  memo.valid_until = valid_until;
  memo.gen = socket_power_gen_[socket];
  return watts;
}

double HardwareModel::EnergyJoules() {
  AccumulateEnergy();
  return energy_joules_;
}

}  // namespace nestsim
