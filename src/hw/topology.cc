#include "src/hw/topology.h"

#include <cassert>

namespace nestsim {

Topology::Topology(int num_sockets, int physical_cores_per_socket, int threads_per_core)
    : num_sockets_(num_sockets),
      phys_per_socket_(physical_cores_per_socket),
      smt_(threads_per_core),
      num_physical_(num_sockets * physical_cores_per_socket),
      num_cpus_(num_physical_ * threads_per_core) {
  assert(num_sockets >= 1);
  assert(physical_cores_per_socket >= 1);
  assert(threads_per_core == 1 || threads_per_core == 2);

  socket_cpus_.resize(num_sockets_);
  phys_cpus_.resize(num_physical_);
  socket_first_threads_.resize(num_sockets_);
  for (int cpu = 0; cpu < num_cpus_; ++cpu) {
    const int phys = PhysCoreOf(cpu);
    const int socket = phys / phys_per_socket_;
    socket_cpus_[socket].push_back(cpu);
    phys_cpus_[phys].push_back(cpu);
    if (IsFirstThread(cpu)) {
      socket_first_threads_[socket].push_back(cpu);
    }
  }
}

}  // namespace nestsim
