// The Smove baseline (paper §2.2; Gouicem et al., USENIX ATC 2020).
//
// Smove counters frequency inversion: when CFS picks a core whose frequency
// — as observed at the last scheduler tick — is low, while the parent/waker's
// core is fast, the forked or woken task is placed on the parent's core
// instead, with a timer that moves it to the CFS-chosen core if it has not
// started running within a short delay. When the CFS-chosen core's sampled
// frequency looks high (often stale, §5.2), Smove does nothing.

#ifndef NESTSIM_SRC_SMOVE_SMOVE_POLICY_H_
#define NESTSIM_SRC_SMOVE_SMOVE_POLICY_H_

#include "src/cfs/cfs_policy.h"
#include "src/kernel/kernel.h"
#include "src/kernel/policy.h"

namespace nestsim {

class SmovePolicy : public SchedulerPolicy {
 public:
  struct Params {
    // A sampled frequency strictly below this fraction of nominal counts as
    // "low". Mid-turbo-climb samples sit just below nominal, so the trigger
    // requires a clearly low observation.
    double low_freq_fraction = 0.8;
    // Delay before a parked task is moved to the CFS-chosen core (the Smove
    // paper's default).
    SimDuration move_delay = 50 * kMicrosecond;
  };

  SmovePolicy() = default;
  explicit SmovePolicy(Params params) : params_(params) {}

  void Attach(Kernel* kernel) override;
  const char* name() const override { return "smove"; }

  int SelectCpuFork(Task& child, int parent_cpu) override;
  int SelectCpuWake(Task& task, const WakeContext& ctx) override;

  // Statistics: how often the Smove heuristic fired / was skipped.
  int64_t moves_armed() const { return moves_armed_; }
  int64_t moves_fired() const { return moves_fired_; }

 private:
  // Shared logic: parks the task on `fast_cpu` if the CFS choice looks slow.
  int MaybePark(Task& task, int cfs_choice, int fast_cpu);

  Params params_;
  CfsPolicy cfs_;
  int64_t moves_armed_ = 0;
  int64_t moves_fired_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_SMOVE_SMOVE_POLICY_H_
