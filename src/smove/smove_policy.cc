#include "src/smove/smove_policy.h"

namespace nestsim {

void SmovePolicy::Attach(Kernel* kernel) {
  SchedulerPolicy::Attach(kernel);
  cfs_.Attach(kernel);
}

int SmovePolicy::MaybePark(Task& task, int cfs_choice, int fast_cpu) {
  HardwareModel& hw = kernel_->hw();
  const double low = params_.low_freq_fraction * hw.spec().nominal_freq_ghz;
  const double chosen_freq = hw.FreqAtLastTickGhz(cfs_choice);
  const double fast_freq = hw.FreqAtLastTickGhz(fast_cpu);
  if (cfs_choice == fast_cpu || chosen_freq >= low || fast_freq < low) {
    // The sampled frequency of the CFS core looks fine (possibly stale —
    // that is the §5.2 failure mode), or the parent core is no better.
    task.placement_path = PlacementPath::kSmoveCfs;
    return cfs_choice;
  }

  // Park on the fast core and arm the fallback timer.
  task.placement_path = PlacementPath::kSmoveParked;
  ++moves_armed_;
  Task* t = &task;
  const int fallback = cfs_choice;
  kernel_->engine().ScheduleAfter(params_.move_delay, [this, t, fallback] {
    // Move only if the task is still waiting on a run queue.
    if (t->state == TaskState::kRunnable && kernel_->rq(t->cpu).Queued(t)) {
      ++moves_fired_;
      kernel_->MigrateQueued(t, fallback);
      kernel_->KickIfIdle(fallback);
    }
  });
  return fast_cpu;
}

int SmovePolicy::SelectCpuFork(Task& child, int parent_cpu) {
  const int cfs_choice = cfs_.ForkPath(child, parent_cpu);
  return MaybePark(child, cfs_choice, parent_cpu);
}

int SmovePolicy::SelectCpuWake(Task& task, const WakeContext& ctx) {
  const int cfs_choice = cfs_.WakePath(task, ctx, /*work_conserving_ext=*/false);
  const int fast_cpu = ctx.waker_cpu >= 0 ? ctx.waker_cpu : cfs_choice;
  return MaybePark(task, cfs_choice, fast_cpu);
}

}  // namespace nestsim
