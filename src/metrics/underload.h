// The paper's underload metric (§5.2).
//
// Underload in an interval is the number of cores used at any point in the
// interval minus the maximum number of simultaneously runnable tasks in that
// interval, when positive. It measures insufficient core reuse: a positive
// value means a long-idle core was chosen where an already-warm core would
// have sufficed. We use the paper's 4 ms (one tick) interval and report the
// total per second of execution.

#ifndef NESTSIM_SRC_METRICS_UNDERLOAD_H_
#define NESTSIM_SRC_METRICS_UNDERLOAD_H_

#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

class UnderloadTracker : public KernelObserver {
 public:
  // `record_series` keeps the per-interval values (Figure 3-style timeline).
  explicit UnderloadTracker(Kernel* kernel, bool record_series = false);

  uint32_t InterestMask() const override {
    return kObsTaskCreated | kObsTaskEnqueued | kObsContextSwitch | kObsTaskExit | kObsTick;
  }

  void OnTaskCreated(SimTime now, const Task& task) override;
  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override;
  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override;
  void OnTaskExit(SimTime now, const Task& task) override;
  void OnTick(SimTime now) override;

  // Total positive underload accumulated so far.
  double TotalUnderload() const { return total_underload_; }

  // Total underload divided by elapsed seconds since tracking started.
  double UnderloadPerSecond(SimTime end_time) const;

  // Per-interval series: (interval start seconds, underload).
  const std::vector<std::pair<double, double>>& series() const { return series_; }

  // Every CPU that ran a task at least once over the whole run, sorted.
  std::vector<int> CpusEverUsed() const;

 private:
  void CloseInterval(SimTime now);
  void ObserveRunnable();

  Kernel* kernel_;
  bool record_series_;
  SimTime start_time_ = 0;
  SimTime interval_start_ = 0;

  std::vector<char> used_in_interval_;  // per cpu
  std::vector<char> ever_used_;         // per cpu
  int max_runnable_ = 0;

  double total_underload_ = 0.0;
  std::vector<std::pair<double, double>> series_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_UNDERLOAD_H_
