// Small statistics helpers used by experiments and benches.

#ifndef NESTSIM_SRC_METRICS_STATS_H_
#define NESTSIM_SRC_METRICS_STATS_H_

#include <vector>

namespace nestsim {

double Mean(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);  // sample stddev (n-1); 0 for n<2
double Median(std::vector<double> xs);
// Percentile in [0,100] by linear interpolation; xs need not be sorted.
double Percentile(std::vector<double> xs, double pct);

// The paper's speedup convention: positive = variant is faster/better.
// For time-like metrics (lower is better): (baseline/variant - 1) * 100.
double SpeedupPercent(double baseline, double variant);
// For rate-like metrics (higher is better): (variant/baseline - 1) * 100.
double ImprovementPercent(double baseline, double variant);

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_STATS_H_
