#include "src/metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace nestsim {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double Percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  if (pct <= 0.0) {
    return xs.front();
  }
  if (pct >= 100.0) {
    return xs.back();
  }
  const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) {
    return xs.back();
  }
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double SpeedupPercent(double baseline, double variant) {
  if (variant <= 0.0) {
    return 0.0;
  }
  return (baseline / variant - 1.0) * 100.0;
}

double ImprovementPercent(double baseline, double variant) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return (variant / baseline - 1.0) * 100.0;
}

}  // namespace nestsim
