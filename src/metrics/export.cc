#include "src/metrics/export.h"

#include <cstdarg>
#include <cstdio>

namespace nestsim {

namespace {

// RFC 4180 quoting: wrap in quotes when the field contains a comma, quote,
// or newline; double any embedded quotes.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

void AppendF(std::string& out, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string ResultsToCsv(const std::vector<ResultRow>& rows) {
  std::string out =
      "workload,variant,seconds,energy_j,underload_per_s,cores_used,ctx_switches,"
      "migrations,tasks\n";
  for (const ResultRow& row : rows) {
    out += CsvField(row.workload) + "," + CsvField(row.variant) + ",";
    AppendF(out, "%.6f,%.3f,%.3f,%zu,%llu,%llu,%d\n", row.result.seconds(),
            row.result.energy_joules, row.result.underload_per_s, row.result.cpus_used.size(),
            static_cast<unsigned long long>(row.result.context_switches),
            static_cast<unsigned long long>(row.result.migrations), row.result.tasks_created);
  }
  return out;
}

std::string TraceToCsv(const std::vector<ExecSegment>& segments) {
  std::string out = "start_s,end_s,cpu,tid,freq_ghz\n";
  for (const ExecSegment& seg : segments) {
    AppendF(out, "%.9f,%.9f,%d,%d,%.3f\n", ToSeconds(seg.start), ToSeconds(seg.end), seg.cpu,
            seg.tid, seg.freq_ghz);
  }
  return out;
}

std::string FreqHistToCsv(const FreqHistogram& hist) {
  std::string out = "bucket_low_ghz,bucket_high_ghz,seconds,share\n";
  for (size_t i = 0; i < hist.edges.size(); ++i) {
    const double lo = i == 0 ? 0.0 : hist.edges[i - 1];
    AppendF(out, "%.2f,%.2f,%.6f,%.6f\n", lo, hist.edges[i], hist.seconds[i], hist.Share(i));
  }
  return out;
}

std::string UnderloadSeriesToCsv(const std::vector<std::pair<double, double>>& series) {
  std::string out = "t_s,underload\n";
  for (const auto& [t, u] : series) {
    AppendF(out, "%.6f,%.1f\n", t, u);
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  return written == contents.size() && close_rc == 0;
}

}  // namespace nestsim
