// Wakeup-latency sampling (schbench-style tail latencies, §5.6).

#ifndef NESTSIM_SRC_METRICS_LATENCY_H_
#define NESTSIM_SRC_METRICS_LATENCY_H_

#include <vector>

#include "src/kernel/observer.h"
#include "src/metrics/stats.h"

namespace nestsim {

// Records, for every wakeup, the delay between the wakeup and the task first
// getting a CPU.
class WakeupLatencyTracker : public KernelObserver {
 public:
  WakeupLatencyTracker() = default;

  uint32_t InterestMask() const override { return kObsContextSwitch; }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)cpu;
    (void)prev;
    if (next != nullptr && next->last_wakeup > 0 && next->last_wakeup > last_seen_wakeup_of_
        [static_cast<size_t>(next->tid) % kTrackSlots]) {
      samples_us_.push_back(ToMicroseconds(now - next->last_wakeup));
      last_seen_wakeup_of_[static_cast<size_t>(next->tid) % kTrackSlots] = next->last_wakeup;
    }
  }

  double PercentileUs(double pct) const { return Percentile(samples_us_, pct); }
  size_t sample_count() const { return samples_us_.size(); }

 private:
  // Deduplicates "first run after wakeup" per task with a small slot table;
  // collisions only cause a few extra samples, which is harmless for
  // percentile estimation.
  static constexpr size_t kTrackSlots = 4096;
  std::vector<double> samples_us_;
  SimTime last_seen_wakeup_of_[kTrackSlots] = {};
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_LATENCY_H_
