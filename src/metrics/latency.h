// Wakeup-latency sampling (schbench-style tail latencies, §5.6) and the
// general latency distribution used by cluster end-to-end request metrics.

#ifndef NESTSIM_SRC_METRICS_LATENCY_H_
#define NESTSIM_SRC_METRICS_LATENCY_H_

#include <algorithm>
#include <vector>

#include "src/kernel/observer.h"
#include "src/metrics/stats.h"

namespace nestsim {

// A sample set with percentile queries and merge support. Cluster runs keep
// one per machine and merge them for the fleet-wide report; merging N
// distributions is exactly equivalent to adding every sample to one (the
// percentile is computed from the raw pooled samples, not from sketches).
class LatencyDistribution {
 public:
  void Add(double sample) { samples_.push_back(sample); }

  void Merge(const LatencyDistribution& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

  size_t count() const { return samples_.size(); }

  double mean() const { return Mean(samples_); }

  double max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // Linear-interpolation percentile, pct in [0, 100]; 0 on an empty set.
  double PercentileAt(double pct) const { return Percentile(samples_, pct); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

// Records, for every wakeup, the delay between the wakeup and the task first
// getting a CPU.
class WakeupLatencyTracker : public KernelObserver {
 public:
  WakeupLatencyTracker() = default;

  uint32_t InterestMask() const override { return kObsContextSwitch; }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)cpu;
    (void)prev;
    if (next != nullptr && next->last_wakeup > 0 && next->last_wakeup > last_seen_wakeup_of_
        [static_cast<size_t>(next->tid) % kTrackSlots]) {
      samples_us_.push_back(ToMicroseconds(now - next->last_wakeup));
      last_seen_wakeup_of_[static_cast<size_t>(next->tid) % kTrackSlots] = next->last_wakeup;
    }
  }

  double PercentileUs(double pct) const { return Percentile(samples_us_, pct); }
  size_t sample_count() const { return samples_us_.size(); }
  const std::vector<double>& samples_us() const { return samples_us_; }

 private:
  // Deduplicates "first run after wakeup" per task with a small slot table;
  // collisions only cause a few extra samples, which is harmless for
  // percentile estimation.
  static constexpr size_t kTrackSlots = 4096;
  std::vector<double> samples_us_;
  SimTime last_seen_wakeup_of_[kTrackSlots] = {};
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_LATENCY_H_
