#include "src/metrics/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace nestsim {

TraceRecorder::TraceRecorder(Kernel* kernel, size_t max_segments)
    : kernel_(kernel), max_segments_(max_segments), open_(kernel->topology().num_cpus()) {
  for (ExecSegment& seg : open_) {
    seg.tid = -1;
  }
}

void TraceRecorder::CloseSegment(SimTime now, int cpu) {
  ExecSegment& seg = open_[cpu];
  if (seg.tid < 0) {
    return;
  }
  seg.end = now;
  if (seg.end > seg.start && segments_.size() < max_segments_) {
    segments_.push_back(seg);
  }
  seg.tid = -1;
}

void TraceRecorder::OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) {
  (void)prev;
  CloseSegment(now, cpu);
  if (next != nullptr) {
    ExecSegment& seg = open_[cpu];
    seg.start = now;
    seg.cpu = cpu;
    seg.tid = next->tid;
    seg.freq_ghz = kernel_->hw().FreqGhz(cpu);
  }
}

void TraceRecorder::OnCpuSpeedChange(SimTime now, int cpu) {
  // Split the segment so the frequency annotation stays piecewise exact.
  ExecSegment& seg = open_[cpu];
  if (seg.tid < 0) {
    return;
  }
  const int tid = seg.tid;
  CloseSegment(now, cpu);
  ExecSegment& fresh = open_[cpu];
  fresh.start = now;
  fresh.cpu = cpu;
  fresh.tid = tid;
  fresh.freq_ghz = kernel_->hw().FreqGhz(cpu);
}

std::vector<ExecSegment> TraceRecorder::Finish(SimTime now) {
  for (int cpu = 0; cpu < kernel_->topology().num_cpus(); ++cpu) {
    CloseSegment(now, cpu);
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const ExecSegment& a, const ExecSegment& b) { return a.start < b.start; });
  return segments_;
}

std::string TraceRecorder::Summarize(const std::vector<ExecSegment>& segments, SimTime t0,
                                     SimTime t1) {
  struct PerCpu {
    double busy_s = 0.0;
    double freq_weighted = 0.0;  // Σ freq * duration
  };
  std::map<int, PerCpu> per_cpu;
  for (const ExecSegment& seg : segments) {
    const SimTime s = std::max(seg.start, t0);
    const SimTime e = std::min(seg.end, t1);
    if (e <= s) {
      continue;
    }
    PerCpu& row = per_cpu[seg.cpu];
    const double d = ToSeconds(e - s);
    row.busy_s += d;
    row.freq_weighted += seg.freq_ghz * d;
  }
  const double window = ToSeconds(t1 - t0);
  std::string out;
  char buf[128];
  for (const auto& [cpu, row] : per_cpu) {
    std::snprintf(buf, sizeof(buf), "  core %3d: busy %5.1f%%  mean freq %.2f GHz\n", cpu,
                  window > 0 ? 100.0 * row.busy_s / window : 0.0,
                  row.busy_s > 0 ? row.freq_weighted / row.busy_s : 0.0);
    out += buf;
  }
  return out;
}

}  // namespace nestsim
