// Result and trace export: CSV for spreadsheets/gnuplot, the equivalent of
// the paper artifact's read_csvs tooling.

#ifndef NESTSIM_SRC_METRICS_EXPORT_H_
#define NESTSIM_SRC_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "src/core/experiment.h"

namespace nestsim {

// One labelled experiment outcome (e.g. "llvm_ninja" x "Nest sched").
struct ResultRow {
  std::string workload;
  std::string variant;
  ExperimentResult result;
};

// CSV with one line per row: workload, variant, seconds, energy_j,
// underload_per_s, cores_used, ctx_switches, migrations, tasks.
// Fields containing commas/quotes are quoted per RFC 4180.
std::string ResultsToCsv(const std::vector<ResultRow>& rows);

// CSV of an execution trace: start_s, end_s, cpu, tid, freq_ghz. Suitable for
// a Figure 2 / Figure 8-style Gantt plot.
std::string TraceToCsv(const std::vector<ExecSegment>& segments);

// CSV of a frequency histogram: bucket_low_ghz, bucket_high_ghz, seconds,
// share.
std::string FreqHistToCsv(const FreqHistogram& hist);

// CSV of an underload series: t_s, underload.
std::string UnderloadSeriesToCsv(const std::vector<std::pair<double, double>>& series);

// Writes `contents` to `path`; returns false (and leaves errno set) on
// failure.
bool WriteFile(const std::string& path, const std::string& contents);

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_EXPORT_H_
