// Frequency-residency histograms (paper Figures 2, 6, 8, 11).
//
// Accumulates, per frequency bucket, the CPU-time spent *executing workload
// tasks* at that frequency. Bucket edges are the ones the paper uses for each
// machine, derived from its min/nominal/turbo points.

#ifndef NESTSIM_SRC_METRICS_FREQ_HIST_H_
#define NESTSIM_SRC_METRICS_FREQ_HIST_H_

#include <string>
#include <vector>

#include "src/hw/machine_spec.h"
#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

// Upper bucket edges (GHz), ascending; bucket i covers (edge[i-1], edge[i]].
std::vector<double> FreqBucketEdgesFor(const MachineSpec& spec);

struct FreqHistogram {
  std::vector<double> edges;    // upper edges, ascending
  std::vector<double> seconds;  // time per bucket

  double TotalSeconds() const;
  // Share of time in bucket i, in [0, 1].
  double Share(size_t i) const;
  // Share of time spent in the top `n` buckets.
  double TopShare(size_t n) const;
  // "(lo, hi] GHz: 12.3%" rows, highest bucket last.
  std::string Format(const MachineSpec& spec) const;
};

class FreqResidencyTracker : public KernelObserver {
 public:
  FreqResidencyTracker(Kernel* kernel, std::vector<double> edges);

  uint32_t InterestMask() const override { return kObsContextSwitch | kObsCpuSpeedChange; }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override;
  void OnCpuSpeedChange(SimTime now, int cpu) override;

  // Flushes open segments up to `now` and returns the histogram.
  FreqHistogram Snapshot(SimTime now);

 private:
  void FlushCpu(SimTime now, int cpu);
  size_t BucketOf(double ghz) const;

  Kernel* kernel_;
  FreqHistogram hist_;
  // Per CPU: segment start (or -1 when not executing) and the frequency that
  // held during the open segment.
  std::vector<SimTime> seg_start_;
  std::vector<double> seg_freq_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_FREQ_HIST_H_
