// Work-conservation monitoring (paper §1, §3.4; Lozi et al., Lepers et al.).
//
// A scheduler is work conserving when no task waits on a busy CPU while some
// CPU is idle. CFS violates this on wakeups (it only examines one die); Nest
// §3.4 extends the wakeup scan to all dies specifically to restore it. This
// observer samples the condition at every scheduling event and integrates the
// time spent in violation, giving a comparable "violation seconds" figure —
// the quantity Nest's wake-work-conservation feature reduces.

#ifndef NESTSIM_SRC_METRICS_WORK_CONSERVATION_H_
#define NESTSIM_SRC_METRICS_WORK_CONSERVATION_H_

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

class WorkConservationTracker : public KernelObserver {
 public:
  explicit WorkConservationTracker(Kernel* kernel) : kernel_(kernel) {}

  uint32_t InterestMask() const override {
    return kObsTaskEnqueued | kObsContextSwitch | kObsTick;
  }

  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override {
    (void)task;
    (void)cpu;
    Sample(now);
  }
  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)cpu;
    (void)prev;
    (void)next;
    Sample(now);
  }
  void OnTick(SimTime now) override { Sample(now); }

  // Total time during which at least one task was queued while at least one
  // CPU was idle.
  SimDuration ViolationTime(SimTime now) {
    Sample(now);
    return violation_time_;
  }

  // Number of transitions into the violating state.
  int64_t ViolationEpisodes() const { return episodes_; }

 private:
  // Integrates the violating/conforming state up to `now`, then re-evaluates.
  void Sample(SimTime now) {
    if (violating_ && now > last_change_) {
      violation_time_ += now - last_change_;
    }
    last_change_ = std::max(last_change_, now);
    const bool violating_now = Violating();
    if (violating_now && !violating_) {
      ++episodes_;
    }
    violating_ = violating_now;
  }

  // The kernel maintains idle/overloaded CPU masks on every run-queue
  // mutation, so the violation test is two word-ORs instead of the full
  // per-CPU scan this used to do at every scheduling event.
  bool Violating() const { return kernel_->WorkConservationViolated(); }

  Kernel* kernel_;
  bool violating_ = false;
  SimTime last_change_ = 0;
  SimDuration violation_time_ = 0;
  int64_t episodes_ = 0;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_WORK_CONSERVATION_H_
