#include "src/metrics/underload.h"

#include <algorithm>

namespace nestsim {

UnderloadTracker::UnderloadTracker(Kernel* kernel, bool record_series)
    : kernel_(kernel),
      record_series_(record_series),
      start_time_(kernel->engine().Now()),
      interval_start_(start_time_),
      used_in_interval_(kernel->topology().num_cpus(), 0),
      ever_used_(kernel->topology().num_cpus(), 0) {}

void UnderloadTracker::ObserveRunnable() {
  max_runnable_ = std::max(max_runnable_, kernel_->runnable_tasks());
}

void UnderloadTracker::OnTaskCreated(SimTime now, const Task& task) {
  (void)now;
  (void)task;
  // At creation the forking parent is still on its CPU, so this is the only
  // instant where a fork-then-wait parent and its child are both runnable.
  ObserveRunnable();
}

void UnderloadTracker::OnTaskEnqueued(SimTime now, const Task& task, int cpu) {
  (void)now;
  (void)task;
  (void)cpu;
  ObserveRunnable();
}

void UnderloadTracker::OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) {
  (void)now;
  (void)prev;
  if (next != nullptr) {
    used_in_interval_[cpu] = 1;
    ever_used_[cpu] = 1;
  }
  ObserveRunnable();
}

void UnderloadTracker::OnTaskExit(SimTime now, const Task& task) {
  (void)now;
  (void)task;
  ObserveRunnable();
}

void UnderloadTracker::CloseInterval(SimTime now) {
  int used = 0;
  for (char u : used_in_interval_) {
    used += u;
  }
  const double underload = std::max(0, used - max_runnable_);
  total_underload_ += underload;
  if (record_series_) {
    series_.push_back({ToSeconds(interval_start_ - start_time_), underload});
  }

  // Re-seed the next interval with the current instantaneous state.
  std::fill(used_in_interval_.begin(), used_in_interval_.end(), 0);
  for (int cpu = 0; cpu < kernel_->topology().num_cpus(); ++cpu) {
    if (kernel_->rq(cpu).curr() != nullptr) {
      used_in_interval_[cpu] = 1;
    }
  }
  max_runnable_ = kernel_->runnable_tasks();
  interval_start_ = now;
}

void UnderloadTracker::OnTick(SimTime now) { CloseInterval(now); }

double UnderloadTracker::UnderloadPerSecond(SimTime end_time) const {
  const double seconds = ToSeconds(end_time - start_time_);
  if (seconds <= 0.0) {
    return 0.0;
  }
  return total_underload_ / seconds;
}

std::vector<int> UnderloadTracker::CpusEverUsed() const {
  std::vector<int> cpus;
  for (int cpu = 0; cpu < static_cast<int>(ever_used_.size()); ++cpu) {
    if (ever_used_[cpu]) {
      cpus.push_back(cpu);
    }
  }
  return cpus;
}

}  // namespace nestsim
