#include "src/metrics/freq_hist.h"

#include <algorithm>
#include <cstdio>

namespace nestsim {

std::vector<double> FreqBucketEdgesFor(const MachineSpec& spec) {
  // The paper's per-machine bucket edges.
  if (spec.cpu_model.find("6130") != std::string::npos) {
    return {1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7};
  }
  if (spec.cpu_model.find("5218") != std::string::npos ||
      spec.cpu_model.find("5220") != std::string::npos) {
    return {1.0, 1.6, 2.3, 2.8, 3.1, 3.6, 3.9};
  }
  if (spec.cpu_model.find("E7-8870") != std::string::npos) {
    return {1.2, 1.7, 2.1, 2.6, 3.0};
  }
  // Generic machine: min, nominal, then an even split of the turbo range.
  const double max = spec.turbo.MaxTurboGhz();
  std::vector<double> edges = {spec.min_freq_ghz, spec.nominal_freq_ghz};
  const double all_core = spec.turbo.AllCoresTurboGhz();
  if (all_core > spec.nominal_freq_ghz) {
    edges.push_back(all_core);
  }
  if (max > edges.back()) {
    edges.push_back((edges.back() + max) / 2.0);
    edges.push_back(max);
  }
  return edges;
}

double FreqHistogram::TotalSeconds() const {
  double total = 0.0;
  for (double s : seconds) {
    total += s;
  }
  return total;
}

double FreqHistogram::Share(size_t i) const {
  const double total = TotalSeconds();
  if (total <= 0.0 || i >= seconds.size()) {
    return 0.0;
  }
  return seconds[i] / total;
}

double FreqHistogram::TopShare(size_t n) const {
  double share = 0.0;
  for (size_t i = 0; i < n && i < seconds.size(); ++i) {
    share += Share(seconds.size() - 1 - i);
  }
  return share;
}

std::string FreqHistogram::Format(const MachineSpec& spec) const {
  std::string out;
  char buf[96];
  for (size_t i = 0; i < edges.size(); ++i) {
    const double lo = i == 0 ? 0.0 : edges[i - 1];
    std::snprintf(buf, sizeof(buf), "  (%.1f, %.1f] GHz: %5.2f%%\n", lo, edges[i],
                  100.0 * Share(i));
    out += buf;
  }
  (void)spec;
  return out;
}

FreqResidencyTracker::FreqResidencyTracker(Kernel* kernel, std::vector<double> edges)
    : kernel_(kernel),
      seg_start_(kernel->topology().num_cpus(), -1),
      seg_freq_(kernel->topology().num_cpus(), 0.0) {
  hist_.edges = std::move(edges);
  hist_.seconds.assign(hist_.edges.size(), 0.0);
}

size_t FreqResidencyTracker::BucketOf(double ghz) const {
  for (size_t i = 0; i < hist_.edges.size(); ++i) {
    if (ghz <= hist_.edges[i] + 1e-9) {
      return i;
    }
  }
  return hist_.edges.size() - 1;
}

void FreqResidencyTracker::FlushCpu(SimTime now, int cpu) {
  if (seg_start_[cpu] < 0) {
    return;
  }
  const double secs = ToSeconds(now - seg_start_[cpu]);
  if (secs > 0.0) {
    hist_.seconds[BucketOf(seg_freq_[cpu])] += secs;
  }
  seg_start_[cpu] = now;
}

void FreqResidencyTracker::OnContextSwitch(SimTime now, int cpu, const Task* prev,
                                           const Task* next) {
  (void)prev;
  FlushCpu(now, cpu);
  if (next != nullptr) {
    seg_start_[cpu] = now;
    seg_freq_[cpu] = kernel_->hw().FreqGhz(cpu);
  } else {
    seg_start_[cpu] = -1;
  }
}

void FreqResidencyTracker::OnCpuSpeedChange(SimTime now, int cpu) {
  if (seg_start_[cpu] >= 0) {
    FlushCpu(now, cpu);
    seg_freq_[cpu] = kernel_->hw().FreqGhz(cpu);
  }
}

FreqHistogram FreqResidencyTracker::Snapshot(SimTime now) {
  for (int cpu = 0; cpu < kernel_->topology().num_cpus(); ++cpu) {
    if (seg_start_[cpu] >= 0) {
      FlushCpu(now, cpu);
      seg_freq_[cpu] = kernel_->hw().FreqGhz(cpu);
    }
  }
  return hist_;
}

}  // namespace nestsim
