// Execution-trace recording for the paper's case studies (Figures 2, 8, 9).
//
// Records one segment per (CPU, task) execution stint with the frequency at
// segment start. The bench binaries render these as per-core activity
// summaries; the raw segments can also be dumped for plotting.

#ifndef NESTSIM_SRC_METRICS_TRACE_H_
#define NESTSIM_SRC_METRICS_TRACE_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

struct ExecSegment {
  SimTime start = 0;
  SimTime end = 0;
  int cpu = -1;
  int tid = -1;
  double freq_ghz = 0.0;  // frequency when the segment began
};

class TraceRecorder : public KernelObserver {
 public:
  explicit TraceRecorder(Kernel* kernel, size_t max_segments = 2'000'000);

  uint32_t InterestMask() const override { return kObsContextSwitch | kObsCpuSpeedChange; }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override;
  void OnCpuSpeedChange(SimTime now, int cpu) override;

  // Closes open segments at `now` and returns the trace (sorted by start).
  std::vector<ExecSegment> Finish(SimTime now);

  // Renders a compact per-core summary: for each used CPU, the busy share
  // and mean frequency over [t0, t1].
  static std::string Summarize(const std::vector<ExecSegment>& segments, SimTime t0, SimTime t1);

 private:
  void CloseSegment(SimTime now, int cpu);

  Kernel* kernel_;
  size_t max_segments_;
  std::vector<ExecSegment> segments_;
  std::vector<ExecSegment> open_;  // per cpu; tid < 0 when closed
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_METRICS_TRACE_H_
