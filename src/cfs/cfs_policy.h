// The CFS core-selection policy (paper §2.1), modelled on Linux v5.9.
//
// Fork: descend the scheduling-domain hierarchy, picking the least-loaded
// group at each level (with a stickiness margin before leaving the local
// group), then the least-loaded CPU within the chosen group, scanning in
// numerical order from the forking CPU. Load comparisons use the decaying
// per-CPU utilisation, quantised as Linux's integer load metrics are — a
// *fully* idle CPU beats a recently used one, which is the dispersal bias
// Nest attacks.
//
// Wakeup: pick a target (previous CPU or waker, wake_affine-style), then
// select_idle_sibling on the target's die: whole-die scan for a fully idle
// physical core, bounded scan for any idle CPU, the target's hyperthread,
// else the target itself. Not work conserving across dies — unless the
// caller asks for Nest's §3.4 extension.

#ifndef NESTSIM_SRC_CFS_CFS_POLICY_H_
#define NESTSIM_SRC_CFS_CFS_POLICY_H_

#include <cstdint>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/policy.h"

namespace nestsim {

class CfsPolicy : public SchedulerPolicy {
 public:
  struct Params {
    // Bounded idle-CPU scan length on the wakeup path ("searches through a
    // few cores", §2.1).
    int wakeup_scan_limit = 8;
    // Quantisation of load comparisons, emulating integer load_avg: loads
    // within 1/load_resolution of each other tie (and numerical order from
    // the origin CPU breaks the tie).
    int load_resolution = 32;
    // Extra idle CPUs a remote group must have before fork leaves the local
    // group, as a fraction of group size (imbalance_pct-style stickiness;
    // v5.9 keeps forks local while the local group has real spare capacity).
    double group_imbalance_fraction = 0.4;
  };

  CfsPolicy() = default;
  explicit CfsPolicy(Params params) : params_(params) {}

  const char* name() const override { return "cfs"; }

  void Attach(Kernel* kernel) override;

  int SelectCpuFork(Task& child, int parent_cpu) override;
  int SelectCpuWake(Task& task, const WakeContext& ctx) override;

  // The raw paths, reusable by Nest (fallback) and Smove (base choice).
  // `work_conserving_ext` enables Nest's §3.4 all-die wakeup scan.
  int ForkPath(const Task& child, int parent_cpu);
  int WakePath(const Task& task, const WakeContext& ctx, bool work_conserving_ext);

  const Params& params() const { return params_; }

 private:
  // Quantised load of one CPU (integer, 0..load_resolution).
  int QuantisedLoad(int cpu);
  // Sum of quantised loads over a group span.
  int GroupLoad(const SchedGroup& group);
  int GroupIdleCount(const SchedGroup& group) const;

  // Least-loaded CPU within a span, scanning numerically from `origin`:
  // prefers idle CPUs with the smallest quantised load; falls back to the
  // smallest (nr_running, load).
  int FindIdlestCpu(const std::vector<int>& span, int origin);

  // select_idle_sibling's die scan. Returns -1 if nothing idle was found.
  int ScanDieForIdle(int die, int origin, bool require_idle_core);

  Params params_;

  // Fork's group descent asks the same CPUs for their quantised load many
  // times per placement (group sums, then the winning group's CPU scan). The
  // value is pure within one instant for a fixed placement generation — PELT
  // updates are idempotent at dt == 0 — so cache it per CPU.
  struct QuantisedLoadMemo {
    SimTime now = -1;
    uint64_t placement_gen = 0;
    int value = 0;
  };
  std::vector<QuantisedLoadMemo> ql_memo_;
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_CFS_CFS_POLICY_H_
