#include "src/cfs/cfs_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nestsim {

void CfsPolicy::Attach(Kernel* kernel) {
  SchedulerPolicy::Attach(kernel);
  ql_memo_.assign(kernel->topology().num_cpus(), QuantisedLoadMemo{});
}

int CfsPolicy::QuantisedLoad(int cpu) {
  const SimTime now = kernel_->engine().Now();
  const RunQueue& rq = kernel_->rq(cpu);
  QuantisedLoadMemo& memo = ql_memo_[cpu];
  if (memo.now == now && memo.placement_gen == rq.placement_gen()) {
    return memo.value;
  }
  const double util = kernel_->CpuUtil(cpu);
  const double placement = rq.PlacementLoad(now);
  const int value = static_cast<int>(std::lround((util + placement) * params_.load_resolution));
  memo = {now, rq.placement_gen(), value};
  return value;
}

int CfsPolicy::GroupLoad(const SchedGroup& group) {
  int load = 0;
  for (int cpu : group.cpus) {
    load += QuantisedLoad(cpu);
    // Queued tasks contribute their full weight to group load, as runnable
    // load does in Linux.
    load += kernel_->rq(cpu).QueuedCount() * params_.load_resolution;
  }
  return load;
}

int CfsPolicy::GroupIdleCount(const SchedGroup& group) const {
  int idle = 0;
  for (int cpu : group.cpus) {
    if (kernel_->CpuIdle(cpu)) {
      ++idle;
    }
  }
  return idle;
}

int CfsPolicy::FindIdlestCpu(const std::vector<int>& span, int origin) {
  // Scan in numerical order, starting from `origin`'s position modulo the
  // span size (§2.1). Lower (nr_running, quantised load) wins; strict
  // inequality keeps the earliest candidate on ties.
  const int n = static_cast<int>(span.size());
  assert(n > 0);
  int start = 0;
  for (int i = 0; i < n; ++i) {
    if (span[i] >= origin) {
      start = i;
      break;
    }
  }
  int best_cpu = -1;
  int best_nr = std::numeric_limits<int>::max();
  int best_load = std::numeric_limits<int>::max();
  for (int i = 0; i < n; ++i) {
    const int cpu = span[(start + i) % n];
    const int nr = kernel_->rq(cpu).NrRunning();
    const int load = QuantisedLoad(cpu);
    if (nr < best_nr || (nr == best_nr && load < best_load)) {
      best_cpu = cpu;
      best_nr = nr;
      best_load = load;
    }
  }
  return best_cpu;
}

int CfsPolicy::ForkPath(const Task& child, int parent_cpu) {
  (void)child;
  const DomainTree& tree = kernel_->domains();
  const SchedDomain* domain = &tree.Top();
  int cpu = parent_cpu;

  while (domain != nullptr) {
    // Find the local group (containing `cpu`) and the best remote group.
    const SchedGroup* local = nullptr;
    const SchedGroup* best = nullptr;
    int best_idle = -1;
    int best_load = std::numeric_limits<int>::max();
    for (const SchedGroup& group : domain->groups) {
      const bool is_local = std::find(group.cpus.begin(), group.cpus.end(), cpu) != group.cpus.end();
      if (is_local) {
        local = &group;
        continue;
      }
      const int idle = GroupIdleCount(group);
      const int load = GroupLoad(group);
      if (idle > best_idle || (idle == best_idle && load < best_load)) {
        best = &group;
        best_idle = idle;
        best_load = load;
      }
    }

    const SchedGroup* chosen = local;
    if (local == nullptr) {
      chosen = best;
    } else if (best != nullptr) {
      // Leave the local group only when the remote one is substantially
      // idler (find_idlest_group's stickiness).
      const int local_idle = GroupIdleCount(*local);
      const int local_load = GroupLoad(*local);
      const int margin = std::max(
          1, static_cast<int>(params_.group_imbalance_fraction * static_cast<double>(local->cpus.size())));
      if (best_idle > local_idle + margin ||
          (local_idle == 0 && best_idle > 0) ||
          (best_idle == local_idle && best_load + margin * params_.load_resolution < local_load)) {
        chosen = best;
      }
    }
    assert(chosen != nullptr);

    cpu = FindIdlestCpu(chosen->cpus, cpu);
    domain = tree.ChildContaining(*domain, cpu);
  }
  return cpu;
}

int CfsPolicy::ScanDieForIdle(int die, int origin, bool require_idle_core) {
  const Topology& topo = kernel_->topology();
  const std::vector<int>& firsts = topo.FirstThreadsOnSocket(die);
  const int n = static_cast<int>(firsts.size());
  const int origin_phys = topo.PhysCoreOf(origin);
  int start = 0;
  for (int i = 0; i < n; ++i) {
    if (topo.PhysCoreOf(firsts[i]) >= origin_phys) {
      start = i;
      break;
    }
  }
  if (require_idle_core) {
    // Pass 1: a physical core with every hardware thread idle.
    for (int i = 0; i < n; ++i) {
      const int first = firsts[(start + i) % n];
      const int sibling = topo.SiblingOf(first);
      if (kernel_->CpuIdle(first) && (sibling < 0 || kernel_->CpuIdle(sibling))) {
        return first;
      }
    }
    return -1;
  }
  // Pass 2: bounded scan for any idle CPU, in numerical order.
  const std::vector<int>& cpus = topo.CpusOnSocket(die);
  const int total = static_cast<int>(cpus.size());
  int scan_start = 0;
  for (int i = 0; i < total; ++i) {
    if (cpus[i] >= origin) {
      scan_start = i;
      break;
    }
  }
  const int limit = std::min(total, params_.wakeup_scan_limit);
  for (int i = 0; i < limit; ++i) {
    const int cpu = cpus[(scan_start + i) % total];
    if (kernel_->CpuIdle(cpu)) {
      return cpu;
    }
  }
  return -1;
}

int CfsPolicy::WakePath(const Task& task, const WakeContext& ctx, bool work_conserving_ext) {
  const Topology& topo = kernel_->topology();
  const int prev = task.prev_cpu >= 0 ? task.prev_cpu : ctx.waker_cpu;
  const int waker = ctx.waker_cpu >= 0 ? ctx.waker_cpu : prev;

  // wake_affine: pick the target die/CPU. A sync wakeup whose waker is alone
  // on its CPU targets the waker even when prev is idle (v5.9
  // wake_affine_idle) — this is what pulls IPC-woken tasks toward the waker
  // and scatters them over its die.
  int target = prev;
  if (ctx.sync && waker != prev && kernel_->rq(waker).NrRunning() <= 1) {
    target = waker;
  } else if (!kernel_->CpuIdle(prev)) {
    if (kernel_->CpuUtil(waker) < kernel_->CpuUtil(prev)) {
      target = waker;
    }
  }

  // select_idle_sibling on the target's die.
  const int die = topo.SocketOf(target);
  if (kernel_->CpuIdle(target)) {
    return target;
  }
  int found = ScanDieForIdle(die, target, /*require_idle_core=*/true);
  if (found >= 0) {
    return found;
  }
  found = ScanDieForIdle(die, target, /*require_idle_core=*/false);
  if (found >= 0) {
    return found;
  }
  const int sibling = topo.SiblingOf(target);
  if (sibling >= 0 && kernel_->CpuIdle(sibling)) {
    return sibling;
  }

  if (work_conserving_ext) {
    // Nest's §3.4 extension: examine the other dies before giving up.
    for (int offset = 1; offset < topo.num_sockets(); ++offset) {
      const int other = (die + offset) % topo.num_sockets();
      int cpu = ScanDieForIdle(other, topo.CpusOnSocket(other).front(), /*require_idle_core=*/true);
      if (cpu < 0) {
        cpu = ScanDieForIdle(other, topo.CpusOnSocket(other).front(), /*require_idle_core=*/false);
      }
      if (cpu >= 0) {
        return cpu;
      }
    }
  }
  return target;
}

int CfsPolicy::SelectCpuFork(Task& child, int parent_cpu) {
  child.placement_path = PlacementPath::kCfsFork;
  return ForkPath(child, parent_cpu);
}

int CfsPolicy::SelectCpuWake(Task& task, const WakeContext& ctx) {
  task.placement_path = PlacementPath::kCfsWake;
  return WakePath(task, ctx, /*work_conserving_ext=*/false);
}

}  // namespace nestsim
