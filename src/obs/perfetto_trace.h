// Perfetto / chrome://tracing export (src/obs/).
//
// PerfettoTraceWriter listens on the KernelObserver seam and renders the run
// as Chrome trace-event JSON (the legacy JSON format both Perfetto's
// ui.perfetto.dev and chrome://tracing load directly):
//
//   pid 1  "cpu activity"      one thread track per logical CPU: 'X' slices
//                              for execution stints and warm idle spins, 'i'
//                              instants for scheduler decisions, 's'/'f'
//                              flow arrows from core selection to enqueue
//                              (the §3.4 in-flight window).
//   pid 2  "core frequency"    one counter track per physical core (GHz).
//   pid 3  "socket power"      per-socket counter tracks: watts and turbo
//                              licenses, sampled at every scheduler tick.
//   pid 4  "cache warmth"      per-LLC counter tracks: the resuming task's
//                              warmth on its destination LLC, sampled at each
//                              cache event (warm hit / cold miss / cross-die
//                              migration, also instants on the cpu track).
//
// The full event schema (names, args, units) is docs/OBSERVABILITY.md.
// Strictly read-only: attaching a writer never changes simulation behaviour.

#ifndef NESTSIM_SRC_OBS_PERFETTO_TRACE_H_
#define NESTSIM_SRC_OBS_PERFETTO_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"

namespace nestsim {

class PerfettoTraceWriter : public KernelObserver {
 public:
  // Process ids of the trace's four synthetic processes.
  static constexpr int kPidCpu = 1;
  static constexpr int kPidFreq = 2;
  static constexpr int kPidSocket = 3;
  static constexpr int kPidCache = 4;

  explicit PerfettoTraceWriter(Kernel* kernel, size_t max_events = 2'000'000);

  uint32_t InterestMask() const override {
    return kObsContextSwitch | kObsTaskPlaced | kObsTaskEnqueued | kObsReservationCollision |
           kObsTaskMigrated | kObsNestEvent | kObsIdleSpinStart | kObsIdleSpinEnd |
           kObsCoreFreqChange | kObsTick | kObsCacheEvent | kObsFaultEvent | kObsBudgetState;
  }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override;
  void OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) override;
  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override;
  void OnReservationCollision(SimTime now, const Task& task, int cpu) override;
  void OnTaskMigrated(SimTime now, const Task& task, int from_cpu, int to_cpu,
                      MigrationReason reason) override;
  void OnNestEvent(SimTime now, NestEventKind kind, int cpu) override;
  void OnIdleSpinStart(SimTime now, int cpu, int max_ticks) override;
  void OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) override;
  void OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) override;
  void OnCacheEvent(SimTime now, const Task& task, CacheEventKind kind, int cpu,
                    double warmth) override;
  void OnFaultEvent(SimTime now, FaultEventKind kind, int cpu, const Task* task) override;
  void OnBudgetState(SimTime now, int socket, double headroom_w, bool throttled) override;
  void OnTick(SimTime now) override;

  // Closes open stints/spins at `end` and sorts events by timestamp. Call
  // once; Serialize/WriteFile before Finish see an incomplete trace.
  void Finish(SimTime end);

  // Renders the whole trace as one JSON document.
  std::string Serialize() const;

  // Serializes to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

  size_t event_count() const { return events_.size(); }
  // Events discarded after the max_events cap was hit.
  uint64_t dropped() const { return dropped_; }

 private:
  struct TraceEvent {
    SimTime ts = 0;
    SimDuration dur = 0;  // 'X' only
    char ph = 'i';
    int pid = kPidCpu;
    int tid = 0;
    uint64_t flow_id = 0;  // 's'/'f' only
    std::string name;
    std::string args;  // pre-rendered JSON object ("" = no args)
  };

  struct OpenSlice {
    bool active = false;
    SimTime start = 0;
    std::string name;
    std::string args;
  };

  // Appends an event unless the cap was reached (then counts it as dropped).
  void Push(TraceEvent ev);
  void PushCounter(SimTime now, int pid, const std::string& track, const char* unit_key,
                   double value);

  Kernel* kernel_;
  size_t max_events_;
  uint64_t dropped_ = 0;
  uint64_t next_flow_id_ = 1;
  bool finished_ = false;

  std::vector<TraceEvent> events_;
  std::vector<OpenSlice> open_stint_;     // by cpu: running task slice
  std::vector<OpenSlice> open_spin_;      // by cpu: warm idle-spin slice
  std::vector<uint64_t> pending_flow_;    // by tid: select→enqueue flow id
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_OBS_PERFETTO_TRACE_H_
