#include "src/obs/sched_counters.h"

#include <cstdio>

namespace nestsim {

void SchedCounters::Add(const SchedCounters& other) {
  for (int i = 0; i < kNumPlacementPaths; ++i) {
    placements[i] += other.placements[i];
  }
  fork_placements += other.fork_placements;
  wake_placements += other.wake_placements;
  reservation_collisions += other.reservation_collisions;
  nest_promotions += other.nest_promotions;
  nest_demotions += other.nest_demotions;
  nest_compactions += other.nest_compactions;
  nest_reserve_adds += other.nest_reserve_adds;
  nest_reserve_full_drops += other.nest_reserve_full_drops;
  spin_starts += other.spin_starts;
  spin_converted += other.spin_converted;
  spin_expired += other.spin_expired;
  migrations_newidle += other.migrations_newidle;
  migrations_periodic += other.migrations_periodic;
  migrations_policy += other.migrations_policy;
  freq_ramps_up += other.freq_ramps_up;
  freq_ramps_down += other.freq_ramps_down;
  wc_violation_ns += other.wc_violation_ns;
  wc_violation_episodes += other.wc_violation_episodes;
  cache_warm_hits += other.cache_warm_hits;
  cache_cold_misses += other.cache_cold_misses;
  cache_cross_die_migrations += other.cache_cross_die_migrations;
  faults_injected += other.faults_injected;
  tasks_evacuated += other.tasks_evacuated;
  replica_quorum_joins += other.replica_quorum_joins;
  budget_throttle_ticks += other.budget_throttle_ticks;
}

uint64_t SchedCounters::NestHits() const {
  return placements[static_cast<int>(PlacementPath::kNestPrimary)] +
         placements[static_cast<int>(PlacementPath::kNestReserve)] +
         placements[static_cast<int>(PlacementPath::kNestAttached)] +
         placements[static_cast<int>(PlacementPath::kNestPrevCore)] +
         placements[static_cast<int>(PlacementPath::kNestImpatient)] +
         placements[static_cast<int>(PlacementPath::kNestCacheWarm)] +
         placements[static_cast<int>(PlacementPath::kNestPredicted)] +
         placements[static_cast<int>(PlacementPath::kNestOracleWarm)];
}

uint64_t SchedCounters::NestMisses() const {
  return placements[static_cast<int>(PlacementPath::kNestCfsFallback)];
}

std::string NestSummary(const SchedCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "nest hit/miss %llu/%llu  promote/demote/compact %llu/%llu/%llu  "
                "spin ok/exp %llu/%llu  collide %llu",
                static_cast<unsigned long long>(c.NestHits()),
                static_cast<unsigned long long>(c.NestMisses()),
                static_cast<unsigned long long>(c.nest_promotions),
                static_cast<unsigned long long>(c.nest_demotions),
                static_cast<unsigned long long>(c.nest_compactions),
                static_cast<unsigned long long>(c.spin_converted),
                static_cast<unsigned long long>(c.spin_expired),
                static_cast<unsigned long long>(c.reservation_collisions));
  return buf;
}

namespace {

void AppendU64(std::string& out, const char* key, uint64_t value, bool* first) {
  if (!*first) {
    out += ',';
  }
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string SchedCountersJson(const SchedCounters& c) {
  std::string out = "{\"placements\":{";
  bool first = true;
  for (int i = 0; i < kNumPlacementPaths; ++i) {
    // The cache-aware, fault-evacuation, predictor, and oracle paths only
    // joined in later PRs; omitting them when unused keeps earlier golden
    // digests byte-identical.
    if ((static_cast<PlacementPath>(i) == PlacementPath::kNestCacheWarm ||
         static_cast<PlacementPath>(i) == PlacementPath::kFaultEvacuate ||
         static_cast<PlacementPath>(i) == PlacementPath::kNestPredicted ||
         static_cast<PlacementPath>(i) == PlacementPath::kNestOracleWarm) &&
        c.placements[i] == 0) {
      continue;
    }
    AppendU64(out, PlacementPathName(static_cast<PlacementPath>(i)), c.placements[i], &first);
  }
  out += '}';
  first = false;  // the placements object already opened the record
  AppendU64(out, "fork_placements", c.fork_placements, &first);
  AppendU64(out, "wake_placements", c.wake_placements, &first);
  AppendU64(out, "reservation_collisions", c.reservation_collisions, &first);
  AppendU64(out, "nest_promotions", c.nest_promotions, &first);
  AppendU64(out, "nest_demotions", c.nest_demotions, &first);
  AppendU64(out, "nest_compactions", c.nest_compactions, &first);
  AppendU64(out, "nest_reserve_adds", c.nest_reserve_adds, &first);
  AppendU64(out, "nest_reserve_full_drops", c.nest_reserve_full_drops, &first);
  AppendU64(out, "spin_starts", c.spin_starts, &first);
  AppendU64(out, "spin_converted", c.spin_converted, &first);
  AppendU64(out, "spin_expired", c.spin_expired, &first);
  AppendU64(out, "migrations_newidle", c.migrations_newidle, &first);
  AppendU64(out, "migrations_periodic", c.migrations_periodic, &first);
  AppendU64(out, "migrations_policy", c.migrations_policy, &first);
  AppendU64(out, "freq_ramps_up", c.freq_ramps_up, &first);
  AppendU64(out, "freq_ramps_down", c.freq_ramps_down, &first);
  AppendU64(out, "wc_violation_ns", c.wc_violation_ns, &first);
  AppendU64(out, "wc_violation_episodes", c.wc_violation_episodes, &first);
  // The cache block is schema-stable *among runs that track warmth*; runs
  // without the model omit it entirely so their digests predate the model.
  if (c.cache_warm_hits != 0 || c.cache_cold_misses != 0 ||
      c.cache_cross_die_migrations != 0) {
    AppendU64(out, "cache_warm_hits", c.cache_warm_hits, &first);
    AppendU64(out, "cache_cold_misses", c.cache_cold_misses, &first);
    AppendU64(out, "cache_cross_die_migrations", c.cache_cross_die_migrations, &first);
  }
  // Same convention for the fault/budget block (src/fault/): present only on
  // runs where faults, replicas, or a power budget actually fired.
  if (c.faults_injected != 0 || c.tasks_evacuated != 0 || c.replica_quorum_joins != 0 ||
      c.budget_throttle_ticks != 0) {
    AppendU64(out, "faults_injected", c.faults_injected, &first);
    AppendU64(out, "tasks_evacuated", c.tasks_evacuated, &first);
    AppendU64(out, "replica_quorum_joins", c.replica_quorum_joins, &first);
    AppendU64(out, "budget_throttle_ticks", c.budget_throttle_ticks, &first);
  }
  out += '}';
  return out;
}

}  // namespace nestsim
