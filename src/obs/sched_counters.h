// Scheduler decision counters (src/obs/).
//
// SchedCounters is a plain aggregate of every decision-level event the kernel
// exposes through KernelObserver: placements by policy path, reservation
// collisions, load-balancer migrations by reason, nest membership churn, warm
// idle-spin outcomes, DVFS ramp events, and work-conservation violations.
// SchedCounterRecorder fills one from a live kernel; RunExperiment attaches a
// recorder unconditionally (counting is cheap and purely observational), so
// every ExperimentResult carries counters and the campaign JSONL sink can
// export them. The full field reference lives in docs/OBSERVABILITY.md.

#ifndef NESTSIM_SRC_OBS_SCHED_COUNTERS_H_
#define NESTSIM_SRC_OBS_SCHED_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/observer.h"
#include "src/metrics/work_conservation.h"

namespace nestsim {

struct SchedCounters {
  // Fork/wake placements by the policy code path that decided (indexed by
  // PlacementPath; names from PlacementPathName).
  std::array<uint64_t, kNumPlacementPaths> placements{};
  uint64_t fork_placements = 0;
  uint64_t wake_placements = 0;
  // §3.4 collisions: the chosen run queue was already claimed by another
  // in-flight placement.
  uint64_t reservation_collisions = 0;

  // Nest membership churn (§3.1).
  uint64_t nest_promotions = 0;
  uint64_t nest_demotions = 0;
  uint64_t nest_compactions = 0;
  uint64_t nest_reserve_adds = 0;
  uint64_t nest_reserve_full_drops = 0;

  // Warm idle spinning (§3.2): spins started, spins that handed the CPU to a
  // task, spins that expired (or lost the core to the SMT sibling).
  uint64_t spin_starts = 0;
  uint64_t spin_converted = 0;
  uint64_t spin_expired = 0;

  // Queued-task migrations by reason.
  uint64_t migrations_newidle = 0;
  uint64_t migrations_periodic = 0;
  uint64_t migrations_policy = 0;

  // DVFS events: discrete frequency moves of any physical core.
  uint64_t freq_ramps_up = 0;
  uint64_t freq_ramps_down = 0;

  // Work-conservation violations (task queued while some CPU idles).
  uint64_t wc_violation_ns = 0;
  uint64_t wc_violation_episodes = 0;

  // Cache-warmth events (src/hw/cache_model.h): resumes classified by the
  // task's warmth on the destination LLC against CacheParams::warm_threshold,
  // plus cross-LLC moves that reset warmth (and pay the refill cost when one
  // is configured). All zero unless the kernel tracks warmth; the JSON
  // encoder omits them when zero so pre-cache golden digests are unchanged.
  uint64_t cache_warm_hits = 0;
  uint64_t cache_cold_misses = 0;
  uint64_t cache_cross_die_migrations = 0;

  // Fault-injection and energy-budget events (src/fault/): core/machine
  // failures executed, tasks displaced onto new cores by a failure, replica
  // groups that reached their quorum, and socket-ticks spent throttled under
  // a power budget. All zero unless faults/replicas/budget are enabled; the
  // JSON encoder omits them when zero so pre-fault golden digests hold.
  uint64_t faults_injected = 0;
  uint64_t tasks_evacuated = 0;
  uint64_t replica_quorum_joins = 0;
  uint64_t budget_throttle_ticks = 0;

  void Add(const SchedCounters& other);

  // Placements that landed inside a nest (primary/reserve/attached/prev-core/
  // impatient) vs. placements that fell back to the CFS path.
  uint64_t NestHits() const;
  uint64_t NestMisses() const;

  bool operator==(const SchedCounters&) const = default;
};

// One-line human summary for bench tables (nest churn + spin outcomes).
std::string NestSummary(const SchedCounters& c);

// Compact JSON object, e.g. {"placements":{"cfs_wake":12,...},...}. Every
// field is always present so records are schema-stable — except the cache
// block (cache_* and the nest_cache_warm placement path), which only appears
// when nonzero: runs without warmth tracking keep their pre-cache digests.
std::string SchedCountersJson(const SchedCounters& c);

// Fills a SchedCounters from the kernel's observer callbacks. Purely
// observational; attach with kernel->AddObserver(&recorder) before Start().
class SchedCounterRecorder : public KernelObserver {
 public:
  explicit SchedCounterRecorder(Kernel* kernel)
      : wc_(kernel),
        prev_freq_ghz_(kernel->topology().num_physical_cores(), -1.0) {}

  uint32_t InterestMask() const override {
    return kObsTaskPlaced | kObsReservationCollision | kObsTaskMigrated | kObsNestEvent |
           kObsIdleSpinStart | kObsIdleSpinEnd | kObsCoreFreqChange | kObsTaskEnqueued |
           kObsContextSwitch | kObsTick | kObsCacheEvent | kObsFaultEvent | kObsBudgetState;
  }

  void OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) override {
    (void)now;
    (void)cpu;
    ++counters_.placements[static_cast<int>(task.placement_path)];
    if (is_fork) {
      ++counters_.fork_placements;
    } else {
      ++counters_.wake_placements;
    }
  }

  void OnReservationCollision(SimTime now, const Task& task, int cpu) override {
    (void)now;
    (void)task;
    (void)cpu;
    ++counters_.reservation_collisions;
  }

  void OnTaskMigrated(SimTime now, const Task& task, int from_cpu, int to_cpu,
                      MigrationReason reason) override {
    (void)now;
    (void)task;
    (void)from_cpu;
    (void)to_cpu;
    switch (reason) {
      case MigrationReason::kNewIdlePull:
        ++counters_.migrations_newidle;
        break;
      case MigrationReason::kPeriodicPull:
        ++counters_.migrations_periodic;
        break;
      case MigrationReason::kPolicy:
        ++counters_.migrations_policy;
        break;
    }
  }

  void OnNestEvent(SimTime now, NestEventKind kind, int cpu) override {
    (void)now;
    (void)cpu;
    switch (kind) {
      case NestEventKind::kPromote:
        ++counters_.nest_promotions;
        break;
      case NestEventKind::kDemote:
        ++counters_.nest_demotions;
        break;
      case NestEventKind::kCompact:
        ++counters_.nest_compactions;
        break;
      case NestEventKind::kReserveAdd:
        ++counters_.nest_reserve_adds;
        break;
      case NestEventKind::kReserveFull:
        ++counters_.nest_reserve_full_drops;
        break;
    }
  }

  void OnIdleSpinStart(SimTime now, int cpu, int max_ticks) override {
    (void)now;
    (void)cpu;
    (void)max_ticks;
    ++counters_.spin_starts;
  }

  void OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) override {
    (void)now;
    (void)cpu;
    if (became_busy) {
      ++counters_.spin_converted;
    } else {
      ++counters_.spin_expired;
    }
  }

  void OnCacheEvent(SimTime now, const Task& task, CacheEventKind kind, int cpu,
                    double warmth) override {
    (void)now;
    (void)task;
    (void)cpu;
    (void)warmth;
    switch (kind) {
      case CacheEventKind::kWarmHit:
        ++counters_.cache_warm_hits;
        break;
      case CacheEventKind::kColdMiss:
        ++counters_.cache_cold_misses;
        break;
      case CacheEventKind::kCrossDieMigration:
        ++counters_.cache_cross_die_migrations;
        break;
    }
  }

  void OnFaultEvent(SimTime now, FaultEventKind kind, int cpu, const Task* task) override {
    (void)now;
    (void)cpu;
    (void)task;
    switch (kind) {
      case FaultEventKind::kCoreOffline:
      case FaultEventKind::kMachineCrash:
        ++counters_.faults_injected;
        break;
      case FaultEventKind::kTaskEvacuated:
        ++counters_.tasks_evacuated;
        break;
      case FaultEventKind::kReplicaQuorumJoin:
        ++counters_.replica_quorum_joins;
        break;
      case FaultEventKind::kCoreOnline:
      case FaultEventKind::kTaskKilled:
      case FaultEventKind::kReplicaReaped:
        break;  // richer accounting lives in ResilienceRecorder (src/fault/)
    }
  }

  void OnBudgetState(SimTime now, int socket, double headroom_w, bool throttled) override {
    (void)now;
    (void)socket;
    (void)headroom_w;
    if (throttled) {
      ++counters_.budget_throttle_ticks;
    }
  }

  void OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) override {
    (void)now;
    double& prev = prev_freq_ghz_[phys_core];
    if (prev >= 0.0) {
      if (freq_ghz > prev) {
        ++counters_.freq_ramps_up;
      } else if (freq_ghz < prev) {
        ++counters_.freq_ramps_down;
      }
    }
    prev = freq_ghz;
  }

  // Work-conservation sampling rides on the embedded tracker.
  void OnTaskEnqueued(SimTime now, const Task& task, int cpu) override {
    wc_.OnTaskEnqueued(now, task, cpu);
  }
  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    wc_.OnContextSwitch(now, cpu, prev, next);
  }
  void OnTick(SimTime now) override { wc_.OnTick(now); }

  // Settles the work-conservation integral; call once when the run ends.
  const SchedCounters& Finish(SimTime end) {
    counters_.wc_violation_ns = static_cast<uint64_t>(wc_.ViolationTime(end));
    counters_.wc_violation_episodes = static_cast<uint64_t>(wc_.ViolationEpisodes());
    return counters_;
  }

  const SchedCounters& counters() const { return counters_; }

 private:
  SchedCounters counters_;
  WorkConservationTracker wc_;
  std::vector<double> prev_freq_ghz_;  // by physical core; -1 = never seen
};

}  // namespace nestsim

#endif  // NESTSIM_SRC_OBS_SCHED_COUNTERS_H_
