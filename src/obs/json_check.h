// A dependency-free JSON checker and parser (src/obs/).
//
// The test suite uses JsonValid to parse back everything the observability
// layer emits (Perfetto traces, counter objects, campaign JSONL records)
// without pulling in an external JSON library. JsonParse additionally builds
// a JsonValue tree from the same grammar; the scenario engine
// (src/scenario/) reads experiment-spec files through it.

#ifndef NESTSIM_SRC_OBS_JSON_CHECK_H_
#define NESTSIM_SRC_OBS_JSON_CHECK_H_

#include <string>
#include <utility>
#include <vector>

namespace nestsim {

// True when `text` is exactly one valid JSON value (RFC 8259 grammar;
// duplicate keys allowed). On failure, `error` (if non-null) describes the
// first problem and its byte offset.
bool JsonValid(const std::string& text, std::string* error = nullptr);

// A parsed JSON value. Objects keep their members in file order (duplicate
// keys are kept; lookups return the first).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;  // decoded (escapes resolved)
  std::vector<std::pair<std::string, JsonValue>> members;  // objects
  std::vector<JsonValue> items;                            // arrays

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  // First member with `key`, or nullptr. Objects only.
  const JsonValue* Find(const std::string& key) const;
};

// Human-readable type name ("object", "string", ...), for error messages.
const char* JsonTypeName(JsonValue::Type type);

// Parses `text` (same grammar as JsonValid) into `*out`. On failure returns
// false and describes the first problem in `error` (if non-null).
bool JsonParse(const std::string& text, JsonValue* out, std::string* error = nullptr);

// Serialises a JsonValue back to JSON text. Integral numbers print without a
// decimal point, other numbers with enough digits to round-trip (%.17g).
// `indent` > 0 pretty-prints with that many spaces per level (objects and
// arrays one member per line, the style of the committed scenario files);
// 0 emits the compact single-line form. The output always re-parses to an
// equal tree, so generated scenarios are standard scenario files.
std::string JsonSerialize(const JsonValue& value, int indent = 0);

}  // namespace nestsim

#endif  // NESTSIM_SRC_OBS_JSON_CHECK_H_
