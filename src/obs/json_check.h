// A dependency-free JSON well-formedness checker (src/obs/).
//
// The test suite uses it to parse back everything the observability layer
// emits (Perfetto traces, counter objects, campaign JSONL records) without
// pulling in an external JSON library.

#ifndef NESTSIM_SRC_OBS_JSON_CHECK_H_
#define NESTSIM_SRC_OBS_JSON_CHECK_H_

#include <string>

namespace nestsim {

// True when `text` is exactly one valid JSON value (RFC 8259 grammar;
// duplicate keys allowed). On failure, `error` (if non-null) describes the
// first problem and its byte offset.
bool JsonValid(const std::string& text, std::string* error = nullptr);

}  // namespace nestsim

#endif  // NESTSIM_SRC_OBS_JSON_CHECK_H_
