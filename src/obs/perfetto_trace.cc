#include "src/obs/perfetto_trace.h"

#include <algorithm>
#include <cstdio>

namespace nestsim {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TaskArgs(const Task& task) {
  std::string args = "{\"task\":\"";
  args += Escape(task.name);
  args += "\",\"tid\":";
  args += std::to_string(task.tid);
  args += '}';
  return args;
}

// Microseconds with nanosecond precision, the unit chrome trace JSON expects.
void AppendMicros(std::string& out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

}  // namespace

PerfettoTraceWriter::PerfettoTraceWriter(Kernel* kernel, size_t max_events)
    : kernel_(kernel), max_events_(max_events) {
  const Topology& topo = kernel_->topology();
  open_stint_.resize(topo.num_cpus());
  open_spin_.resize(topo.num_cpus());

  // Track metadata first: three synthetic processes, one thread per CPU.
  auto meta = [this](int pid, int tid, const char* what, const std::string& value) {
    TraceEvent ev;
    ev.ph = 'M';
    ev.pid = pid;
    ev.tid = tid;
    ev.name = what;
    ev.args = "{\"name\":\"" + Escape(value) + "\"}";
    events_.push_back(std::move(ev));
  };
  meta(kPidCpu, 0, "process_name", "cpu activity");
  meta(kPidFreq, 0, "process_name", "core frequency (GHz)");
  meta(kPidSocket, 0, "process_name", "socket power & turbo");
  meta(kPidCache, 0, "process_name", "cache warmth");
  for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    meta(kPidCpu, cpu, "thread_name", "cpu " + std::to_string(cpu));
  }

  // Seed every frequency counter track so the plot starts at the true value
  // instead of the first change.
  const SimTime now = kernel_->engine().Now();
  for (int phys = 0; phys < topo.num_physical_cores(); ++phys) {
    const int cpu = topo.CpusOfPhysCore(phys).front();
    PushCounter(now, kPidFreq, "core" + std::to_string(phys), "GHz",
                kernel_->hw().FreqGhz(cpu));
  }
}

void PerfettoTraceWriter::Push(TraceEvent ev) {
  if (finished_) {
    return;
  }
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void PerfettoTraceWriter::PushCounter(SimTime now, int pid, const std::string& track,
                                      const char* unit_key, double value) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'C';
  ev.pid = pid;
  ev.name = track;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"%s\":%.4f}", unit_key, value);
  ev.args = buf;
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnContextSwitch(SimTime now, int cpu, const Task* prev,
                                          const Task* next) {
  OpenSlice& stint = open_stint_[cpu];
  if (prev != nullptr && stint.active) {
    TraceEvent ev;
    ev.ts = stint.start;
    ev.dur = now - stint.start;
    ev.ph = 'X';
    ev.pid = kPidCpu;
    ev.tid = cpu;
    ev.name = std::move(stint.name);
    ev.args = std::move(stint.args);
    Push(std::move(ev));
  }
  stint.active = false;
  if (next != nullptr) {
    stint.active = true;
    stint.start = now;
    stint.name = next->name.empty() ? "tid " + std::to_string(next->tid) : next->name;
    stint.args = TaskArgs(*next);
  }
}

void PerfettoTraceWriter::OnTaskPlaced(SimTime now, const Task& task, int cpu, bool is_fork) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = std::string("place:") + PlacementPathName(task.placement_path);
  std::string args = "{\"task\":\"";
  args += Escape(task.name);
  args += "\",\"tid\":";
  args += std::to_string(task.tid);
  args += ",\"fork\":";
  args += is_fork ? "true" : "false";
  args += '}';
  ev.args = std::move(args);
  Push(std::move(ev));

  // Flow arrow from selection to the enqueue that lands placement_latency
  // later — the §3.4 collision window made visible.
  const uint64_t id = next_flow_id_++;
  if (static_cast<size_t>(task.tid) >= pending_flow_.size()) {
    pending_flow_.resize(task.tid + 1, 0);
  }
  pending_flow_[task.tid] = id;
  TraceEvent flow;
  flow.ts = now;
  flow.ph = 's';
  flow.pid = kPidCpu;
  flow.tid = cpu;
  flow.flow_id = id;
  flow.name = "place-enqueue";
  Push(std::move(flow));
}

void PerfettoTraceWriter::OnTaskEnqueued(SimTime now, const Task& task, int cpu) {
  if (static_cast<size_t>(task.tid) >= pending_flow_.size() || pending_flow_[task.tid] == 0) {
    return;  // requeue/migration enqueues carry no placement flow
  }
  const uint64_t id = pending_flow_[task.tid];
  pending_flow_[task.tid] = 0;
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = "enqueue";
  ev.args = TaskArgs(task);
  Push(std::move(ev));
  TraceEvent flow;
  flow.ts = now;
  flow.ph = 'f';
  flow.pid = kPidCpu;
  flow.tid = cpu;
  flow.flow_id = id;
  flow.name = "place-enqueue";
  Push(std::move(flow));
}

void PerfettoTraceWriter::OnReservationCollision(SimTime now, const Task& task, int cpu) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = "collision";
  ev.args = TaskArgs(task);
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnTaskMigrated(SimTime now, const Task& task, int from_cpu,
                                         int to_cpu, MigrationReason reason) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = to_cpu;
  ev.name = std::string("migrate:") + MigrationReasonName(reason);
  std::string args = "{\"task\":\"";
  args += Escape(task.name);
  args += "\",\"tid\":";
  args += std::to_string(task.tid);
  args += ",\"from\":";
  args += std::to_string(from_cpu);
  args += ",\"to\":";
  args += std::to_string(to_cpu);
  args += '}';
  ev.args = std::move(args);
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnNestEvent(SimTime now, NestEventKind kind, int cpu) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = std::string("nest:") + NestEventKindName(kind);
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnIdleSpinStart(SimTime now, int cpu, int max_ticks) {
  OpenSlice& spin = open_spin_[cpu];
  spin.active = true;
  spin.start = now;
  spin.name = "idle-spin";
  spin.args = "{\"max_ticks\":" + std::to_string(max_ticks);
}

void PerfettoTraceWriter::OnIdleSpinEnd(SimTime now, int cpu, bool became_busy) {
  OpenSlice& spin = open_spin_[cpu];
  if (!spin.active) {
    return;
  }
  spin.active = false;
  TraceEvent ev;
  ev.ts = spin.start;
  ev.dur = now - spin.start;
  ev.ph = 'X';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = std::move(spin.name);
  ev.args = std::move(spin.args) + (became_busy ? ",\"became_busy\":true}" : ",\"became_busy\":false}");
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnCoreFreqChange(SimTime now, int phys_core, double freq_ghz) {
  PushCounter(now, kPidFreq, "core" + std::to_string(phys_core), "GHz", freq_ghz);
}

void PerfettoTraceWriter::OnCacheEvent(SimTime now, const Task& task, CacheEventKind kind,
                                       int cpu, double warmth) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu;
  ev.name = std::string("cache:") + CacheEventKindName(kind);
  std::string args = "{\"task\":\"";
  args += Escape(task.name);
  args += "\",\"tid\":";
  args += std::to_string(task.tid);
  char warmth_buf[32];
  std::snprintf(warmth_buf, sizeof(warmth_buf), ",\"warmth\":%.4f}", warmth);
  args += warmth_buf;
  ev.args = std::move(args);
  Push(std::move(ev));

  // Cross-die events ride along with the warm/cold classification of the
  // same resume; only the classification samples the counter track.
  if (kind != CacheEventKind::kCrossDieMigration) {
    const int socket = kernel_->topology().SocketOf(cpu);
    PushCounter(now, kPidCache, "llc" + std::to_string(socket) + " resume warmth", "warmth",
                warmth);
  }
}

void PerfettoTraceWriter::OnFaultEvent(SimTime now, FaultEventKind kind, int cpu,
                                       const Task* task) {
  TraceEvent ev;
  ev.ts = now;
  ev.ph = 'i';
  ev.pid = kPidCpu;
  ev.tid = cpu >= 0 ? cpu : 0;  // machine-level events land on cpu0's track
  ev.name = std::string("fault:") + FaultEventKindName(kind);
  if (task != nullptr) {
    std::string args = "{\"task\":\"";
    args += Escape(task->name);
    args += "\",\"tid\":";
    args += std::to_string(task->tid);
    args += '}';
    ev.args = std::move(args);
  }
  Push(std::move(ev));
}

void PerfettoTraceWriter::OnBudgetState(SimTime now, int socket, double headroom_w,
                                        bool throttled) {
  (void)throttled;  // visible as the headroom dipping below zero
  PushCounter(now, kPidSocket, "socket" + std::to_string(socket) + " budget headroom W", "W",
              headroom_w);
}

void PerfettoTraceWriter::OnTick(SimTime now) {
  const Topology& topo = kernel_->topology();
  HardwareModel& hw = kernel_->hw();
  for (int s = 0; s < topo.num_sockets(); ++s) {
    PushCounter(now, kPidSocket, "socket" + std::to_string(s) + " W", "W",
                hw.SocketPowerWatts(s));
    PushCounter(now, kPidSocket, "socket" + std::to_string(s) + " turbo licenses", "licenses",
                static_cast<double>(hw.TurboLicensesOnSocket(s)));
  }
}

void PerfettoTraceWriter::Finish(SimTime end) {
  if (finished_) {
    return;
  }
  for (int cpu = 0; cpu < static_cast<int>(open_stint_.size()); ++cpu) {
    OpenSlice& stint = open_stint_[cpu];
    if (stint.active) {
      TraceEvent ev;
      ev.ts = stint.start;
      ev.dur = end > stint.start ? end - stint.start : 0;
      ev.ph = 'X';
      ev.pid = kPidCpu;
      ev.tid = cpu;
      ev.name = std::move(stint.name);
      ev.args = std::move(stint.args);
      Push(std::move(ev));
      stint.active = false;
    }
    OpenSlice& spin = open_spin_[cpu];
    if (spin.active) {
      TraceEvent ev;
      ev.ts = spin.start;
      ev.dur = end > spin.start ? end - spin.start : 0;
      ev.ph = 'X';
      ev.pid = kPidCpu;
      ev.tid = cpu;
      ev.name = std::move(spin.name);
      ev.args = std::move(spin.args) + ",\"became_busy\":false}";
      Push(std::move(ev));
      spin.active = false;
    }
  }
  finished_ = true;
  // Stable so same-timestamp events keep emission order; metadata stays first.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     const bool a_meta = a.ph == 'M';
                     const bool b_meta = b.ph == 'M';
                     if (a_meta != b_meta) {
                       return a_meta;
                     }
                     return a.ts < b.ts;
                   });
}

std::string PerfettoTraceWriter::Serialize() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += Escape(ev.name);
    out += "\",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":";
    out += std::to_string(ev.pid);
    out += ",\"tid\":";
    out += std::to_string(ev.tid);
    if (ev.ph != 'M') {
      out += ",\"ts\":";
      AppendMicros(out, ev.ts);
    }
    if (ev.ph == 'X') {
      out += ",\"dur\":";
      AppendMicros(out, ev.dur);
    }
    if (ev.ph == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (ev.ph == 's' || ev.ph == 'f') {
      out += ",\"id\":";
      out += std::to_string(ev.flow_id);
      if (ev.ph == 'f') {
        out += ",\"bp\":\"e\"";
      }
    }
    if (!ev.args.empty()) {
      out += ",\"args\":";
      out += ev.args;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool PerfettoTraceWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string doc = Serialize();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int close_rc = std::fclose(f);
  return written == doc.size() && close_rc == 0;
}

}  // namespace nestsim
