#include "src/obs/json_check.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nestsim {

namespace {

// Validates, and — when constructed with a sink — also builds the JsonValue
// tree. A null sink keeps the original validation-only behaviour.
class Parser {
 public:
  explicit Parser(const std::string& text, JsonValue* sink = nullptr)
      : text_(text), sink_(sink) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value(sink_)) {
      Report(error);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      fail_ = "trailing characters after the top-level value";
      Report(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void Report(std::string* error) const {
    if (error != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s (at byte %zu)",
                    fail_ != nullptr ? fail_ : "invalid JSON", pos_);
      *error = buf;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Fail(const char* why) {
    if (fail_ == nullptr) {
      fail_ = why;
    }
    return false;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) {
        return Fail("invalid literal");
      }
    }
    return true;
  }

  static void AppendUtf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  // `decoded` (optional) receives the string with escapes resolved.
  bool String(std::string* decoded = nullptr) {
    if (!Eat('"')) {
      return Fail("expected string");
    }
    unsigned pending_high_surrogate = 0;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') {
        if (decoded != nullptr && pending_high_surrogate != 0) {
          AppendUtf8(*decoded, 0xFFFD);
        }
        return true;
      }
      if (c < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        if (esc == 'u') {
          unsigned code_point = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            const char h = text_[pos_++];
            code_point = code_point * 16 +
                         static_cast<unsigned>(h <= '9'   ? h - '0'
                                               : h <= 'F' ? h - 'A' + 10
                                                          : h - 'a' + 10);
          }
          if (decoded != nullptr) {
            if (pending_high_surrogate != 0) {
              if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
                AppendUtf8(*decoded, 0x10000 + ((pending_high_surrogate - 0xD800) << 10) +
                                         (code_point - 0xDC00));
              } else {
                AppendUtf8(*decoded, 0xFFFD);
                AppendUtf8(*decoded, code_point);
              }
              pending_high_surrogate = 0;
            } else if (code_point >= 0xD800 && code_point <= 0xDBFF) {
              pending_high_surrogate = code_point;
            } else {
              AppendUtf8(*decoded, code_point);
            }
          }
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' && esc != 'n' &&
            esc != 'r' && esc != 't') {
          --pos_;
          return Fail("bad escape character");
        }
        if (decoded != nullptr) {
          if (pending_high_surrogate != 0) {
            AppendUtf8(*decoded, 0xFFFD);
            pending_high_surrogate = 0;
          }
          switch (esc) {
            case 'b':
              *decoded += '\b';
              break;
            case 'f':
              *decoded += '\f';
              break;
            case 'n':
              *decoded += '\n';
              break;
            case 'r':
              *decoded += '\r';
              break;
            case 't':
              *decoded += '\t';
              break;
            default:
              *decoded += esc;  // '"', '\\', '/'
          }
        }
        continue;
      }
      if (decoded != nullptr) {
        if (pending_high_surrogate != 0) {
          AppendUtf8(*decoded, 0xFFFD);
          pending_high_surrogate = 0;
        }
        *decoded += static_cast<char>(c);
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    if (Eat('0')) {
      // no further integer digits allowed
    } else {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        pos_ = start;
        return Fail("expected number");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return true;
  }

  bool Object(JsonValue* out) {
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(out != nullptr ? &key : nullptr)) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return Fail("expected ':' after object key");
      }
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue{});
        slot = &out->members.back().second;
      }
      if (!Value(slot)) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool Array(JsonValue* out) {
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      if (!Value(slot)) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool Value(JsonValue* out) {
    SkipWs();
    if (++depth_ > kMaxDepth) {
      return Fail("nesting too deep");
    }
    bool ok = false;
    switch (Peek()) {
      case '{':
        if (out != nullptr) {
          out->type = JsonValue::Type::kObject;
        }
        ok = Object(out);
        break;
      case '[':
        if (out != nullptr) {
          out->type = JsonValue::Type::kArray;
        }
        ok = Array(out);
        break;
      case '"':
        if (out != nullptr) {
          out->type = JsonValue::Type::kString;
        }
        ok = String(out != nullptr ? &out->string : nullptr);
        break;
      case 't':
        ok = Literal("true");
        if (ok && out != nullptr) {
          out->type = JsonValue::Type::kBool;
          out->boolean = true;
        }
        break;
      case 'f':
        ok = Literal("false");
        if (ok && out != nullptr) {
          out->type = JsonValue::Type::kBool;
          out->boolean = false;
        }
        break;
      case 'n':
        ok = Literal("null");
        break;
      default: {
        const size_t start = pos_;
        ok = Number();
        if (ok && out != nullptr) {
          out->type = JsonValue::Type::kNumber;
          out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
        }
        break;
      }
    }
    --depth_;
    return ok;
  }

  const std::string& text_;
  JsonValue* sink_;
  size_t pos_ = 0;
  int depth_ = 0;
  const char* fail_ = nullptr;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const char* JsonTypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kObject:
      return "object";
    case JsonValue::Type::kArray:
      return "array";
  }
  return "?";
}

bool JsonValid(const std::string& text, std::string* error) {
  return Parser(text).Run(error);
}

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  if (!Parser(text, out).Run(error)) {
    *out = JsonValue{};
    return false;
  }
  return true;
}

namespace {

void SerializeString(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte for byte
        }
    }
  }
  out += '"';
}

void SerializeNumber(double number, std::string& out) {
  char buf[32];
  if (number == static_cast<double>(static_cast<long long>(number)) &&
      std::fabs(number) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(number));
  } else {
    // Shortest precision that still round-trips, so 0.539 prints as "0.539"
    // and not "0.53900000000000003".
    for (int precision = 15; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, number);
      if (std::strtod(buf, nullptr) == number) {
        break;
      }
    }
  }
  out += buf;
}

void SerializeValue(const JsonValue& value, int indent, int depth, std::string& out) {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int levels) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<size_t>(levels * indent), ' ');
    }
  };
  switch (value.type) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      SerializeNumber(value.number, out);
      break;
    case JsonValue::Type::kString:
      SerializeString(value.string, out);
      break;
    case JsonValue::Type::kObject: {
      if (value.members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_pad(depth + 1);
        SerializeString(key, out);
        out += pretty ? ": " : ":";
        SerializeValue(member, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
    case JsonValue::Type::kArray: {
      if (value.items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline_pad(depth + 1);
        SerializeValue(item, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
  }
}

}  // namespace

std::string JsonSerialize(const JsonValue& value, int indent) {
  std::string out;
  SerializeValue(value, indent, 0, out);
  return out;
}

}  // namespace nestsim
