#include "src/obs/json_check.h"

#include <cctype>
#include <cstdio>

namespace nestsim {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      Report(error);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      fail_ = "trailing characters after the top-level value";
      Report(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void Report(std::string* error) const {
    if (error != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s (at byte %zu)",
                    fail_ != nullptr ? fail_ : "invalid JSON", pos_);
      *error = buf;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Fail(const char* why) {
    if (fail_ == nullptr) {
      fail_ = why;
    }
    return false;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) {
        return Fail("invalid literal");
      }
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) {
      return Fail("expected string");
    }
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') {
        return true;
      }
      if (c < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          --pos_;
          return Fail("bad escape character");
        }
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    if (Eat('0')) {
      // no further integer digits allowed
    } else {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        pos_ = start;
        return Fail("expected number");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return true;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return Fail("expected ':' after object key");
      }
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool Value() {
    SkipWs();
    if (++depth_ > kMaxDepth) {
      return Fail("nesting too deep");
    }
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = Object();
        break;
      case '[':
        ok = Array();
        break;
      case '"':
        ok = String();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = Number();
        break;
    }
    --depth_;
    return ok;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  const char* fail_ = nullptr;
};

}  // namespace

bool JsonValid(const std::string& text, std::string* error) {
  return Parser(text).Run(error);
}

}  // namespace nestsim
