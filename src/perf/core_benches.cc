#include "src/perf/core_benches.h"

#include <cstdio>
#include <vector>

#include "src/kernel/pelt.h"
#include "src/kernel/run_queue.h"
#include "src/kernel/task.h"
#include "src/obs/json_check.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace nestsim {

namespace {

// Batch sizes chosen so each micro sample runs a few milliseconds — long
// enough to swamp clock granularity, short enough for --quick CI runs.
constexpr int kQueueBatch = 1 << 16;
constexpr int kHotWindowOps = 1 << 18;
constexpr int kRunQueueOps = 1 << 17;
constexpr int kPeltOps = 1 << 18;

// Pending events per push/pop round-trip in the steady-state benchmark;
// roughly the live-event population of a mid-size simulated machine.
constexpr int kHotWindowDepth = 1024;

uint64_t EventQueuePushPop(Rng& rng) {
  EventQueue queue;
  uint64_t sink = 0;
  for (int i = 0; i < kQueueBatch; ++i) {
    const SimTime t = static_cast<SimTime>(rng.NextBounded(1000000000));
    queue.Push(t, [&sink] { ++sink; });
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  return static_cast<uint64_t>(kQueueBatch) * 2 + (sink - sink);
}

uint64_t EventQueuePushCancelPop(Rng& rng) {
  EventQueue queue;
  uint64_t sink = 0;
  std::vector<EventId> ids;
  ids.reserve(kQueueBatch);
  for (int i = 0; i < kQueueBatch; ++i) {
    const SimTime t = static_cast<SimTime>(rng.NextBounded(1000000000));
    ids.push_back(queue.Push(t, [&sink] { ++sink; }));
  }
  // The kernel cancels roughly a third of what it schedules (completion
  // events outlived by blocks/preemptions); cancel a random 3rd here.
  uint64_t cancelled = 0;
  for (const EventId id : ids) {
    if (rng.NextBounded(3) == 0) {
      cancelled += queue.Cancel(id) ? 1 : 0;
    }
  }
  while (!queue.Empty()) {
    queue.Pop().fn();
  }
  return static_cast<uint64_t>(kQueueBatch) * 2 + cancelled;
}

uint64_t EventQueueHotWindow(Rng& rng) {
  EventQueue queue;
  uint64_t sink = 0;
  SimTime now = 0;
  for (int i = 0; i < kHotWindowDepth; ++i) {
    queue.Push(now + static_cast<SimTime>(rng.NextBounded(1000000)), [&sink] { ++sink; });
  }
  for (int i = 0; i < kHotWindowOps; ++i) {
    EventQueue::Fired fired = queue.Pop();
    now = fired.time;
    fired.fn();
    queue.Push(now + 1 + static_cast<SimTime>(rng.NextBounded(1000000)), [&sink] { ++sink; });
  }
  queue.Clear();
  return static_cast<uint64_t>(kHotWindowOps) * 2 + (sink - sink);
}

uint64_t RunQueueChurn(Rng& rng) {
  RunQueue rq;
  std::vector<Task> tasks(64);
  std::vector<Task*> queued;
  std::vector<Task*> idle;
  for (size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].tid = static_cast<int>(i) + 1;
    tasks[i].vruntime = rng.NextDouble(0.0, 1e6);
    idle.push_back(&tasks[i]);
  }
  uint64_t ops = 0;
  const Task* sink = nullptr;
  for (int i = 0; i < kRunQueueOps; ++i) {
    const bool enqueue = queued.empty() || (!idle.empty() && rng.NextBool(0.5));
    if (enqueue) {
      Task* task = idle.back();
      idle.pop_back();
      task->vruntime += rng.NextDouble(0.0, 1e4);
      rq.Enqueue(task);
      queued.push_back(task);
    } else {
      Task* task = rq.Leftmost();
      rq.Dequeue(task);
      for (size_t j = 0; j < queued.size(); ++j) {
        if (queued[j] == task) {
          queued[j] = queued.back();
          queued.pop_back();
          break;
        }
      }
      idle.push_back(task);
    }
    sink = rq.Leftmost();
    rq.UpdateMinVruntime();
    ++ops;
  }
  return ops + (sink == nullptr ? 0 : 0);
}

uint64_t PeltUpdates(Rng& rng) {
  PeltSignal signal;
  SimTime now = 0;
  double sink = 0.0;
  for (int i = 0; i < kPeltOps; ++i) {
    // Half the updates land on exact tick boundaries (idle CPUs decay in
    // 4 ms steps), half at ragged event timestamps.
    now += (i % 2 == 0) ? 4 * kMillisecond
                        : static_cast<SimDuration>(1 + rng.NextBounded(4 * kMillisecond));
    signal.Update(now, (i % 4 == 0) ? 1.0 : 0.0);
    sink += signal.ValueAt(now + static_cast<SimDuration>(rng.NextBounded(kMillisecond)));
  }
  return static_cast<uint64_t>(kPeltOps) + (sink < 0.0 ? 1 : 0);
}

std::string FileStem(const std::string& file) {
  const size_t slash = file.find_last_of('/');
  std::string stem = slash == std::string::npos ? file : file.substr(slash + 1);
  const size_t dot = stem.rfind(".json");
  if (dot != std::string::npos) {
    stem.resize(dot);
  }
  return stem;
}

}  // namespace

void RunMicroBenches(const CoreBenchOptions& options, BenchReport* report) {
  BenchOptions bench;
  bench.samples = options.micro_samples;
  struct MicroBench {
    const char* name;
    uint64_t (*body)(Rng&);
  };
  const MicroBench benches[] = {
      {"event_queue/push_pop", &EventQueuePushPop},
      {"event_queue/push_cancel_pop", &EventQueuePushCancelPop},
      {"event_queue/hot_window", &EventQueueHotWindow},
      {"run_queue/churn", &RunQueueChurn},
      {"pelt/update", &PeltUpdates},
  };
  for (const MicroBench& b : benches) {
    report->Add(MeasureMedian(b.name, bench, [&b] {
      Rng rng(42);  // same op sequence for every sample and every build
      return b.body(rng);
    }));
  }
}

bool RunGridBench(const std::string& scenario_file, const CoreBenchOptions& options,
                  BenchReport* report) {
  const std::string path = ResolveScenarioPath(scenario_file);
  Scenario scenario;
  ScenarioError err;
  if (!LoadScenario(path, &scenario, &err)) {
    std::fprintf(stderr, "%s\n", err.Join().c_str());
    return false;
  }
  if (options.quick) {
    // CI-sized slice: one machine, at most 12 evenly spaced rows, same
    // variants. Quick numbers are only ever compared to other quick numbers
    // (the record name differs), so the slice just has to be stable.
    if (scenario.machines.size() > 1) {
      scenario.machines.resize(1);
    }
    constexpr size_t kQuickRows = 12;
    if (scenario.rows.size() > kQuickRows) {
      std::vector<ScenarioRow> rows;
      rows.reserve(kQuickRows);
      const size_t stride = scenario.rows.size() / kQuickRows;
      for (size_t i = 0; i < scenario.rows.size() && rows.size() < kQuickRows; i += stride) {
        rows.push_back(scenario.rows[i]);
      }
      scenario.rows = std::move(rows);
    }
  }

  ScenarioRunOptions ropts;
  ropts.repetitions_override = 1;
  ropts.campaign.jobs = 1;  // serial: wall time must mean per-core throughput
  ropts.campaign.progress = false;
  ropts.campaign.jsonl_path.clear();
  ScenarioRun run;
  if (!ExpandScenario(scenario, ropts, &run, &err)) {
    std::fprintf(stderr, "%s\n", err.Join().c_str());
    return false;
  }

  bool jobs_ok = true;
  auto body = [&run, &jobs_ok]() -> uint64_t {
    ExecuteScenario(&run);
    uint64_t events = 0;
    for (const JobOutcome& outcome : run.outcomes) {
      if (!outcome.ok()) {
        jobs_ok = false;
      }
      for (const ExperimentResult& r : outcome.result.runs) {
        events += r.events_fired;
      }
    }
    return events > 0 ? events : 1;
  };

  BenchOptions bench;
  bench.samples = options.grid_samples > 0 ? options.grid_samples : (options.quick ? 3 : 1);
  bench.warmup = options.quick ? 1 : 0;
  std::string name = "grid/" + FileStem(scenario_file);
  if (options.quick) {
    name += ":quick";
  }
  BenchRecord record = MeasureMedian(name, bench, body);
  if (!jobs_ok) {
    std::fprintf(stderr, "nestsim_bench: a job in %s failed\n", path.c_str());
    return false;
  }
  report->Add(std::move(record));
  return true;
}

bool RunScalingBench(const std::string& scenario_file, const std::vector<int>& workers,
                     const CoreBenchOptions& options, BenchReport* report) {
  const std::string path = ResolveScenarioPath(scenario_file);
  Scenario scenario;
  ScenarioError err;
  if (!LoadScenario(path, &scenario, &err)) {
    std::fprintf(stderr, "%s\n", err.Join().c_str());
    return false;
  }

  for (const int count : workers) {
    ScenarioRunOptions ropts;
    ropts.repetitions_override = 1;
    ropts.campaign.jobs = 1;  // one job at a time: the PDES pool is the
                              // only parallelism being measured
    ropts.campaign.progress = false;
    ropts.campaign.jsonl_path.clear();
    ropts.parallel_workers = count;
    ScenarioRun run;
    if (!ExpandScenario(scenario, ropts, &run, &err)) {
      std::fprintf(stderr, "%s\n", err.Join().c_str());
      return false;
    }

    bool jobs_ok = true;
    auto body = [&run, &jobs_ok]() -> uint64_t {
      ExecuteScenario(&run);
      uint64_t events = 0;
      for (const JobOutcome& outcome : run.outcomes) {
        if (!outcome.ok()) {
          jobs_ok = false;
        }
        for (const ExperimentResult& r : outcome.result.runs) {
          events += r.events_fired;
        }
      }
      return events > 0 ? events : 1;
    };

    BenchOptions bench;
    // 5 samples even in quick mode: the w4/w0 ratio floor needs a stable
    // median on noisy shared CI boxes, and each sample is well under a second.
    bench.samples = options.grid_samples > 0 ? options.grid_samples : 5;
    bench.warmup = 1;
    std::string name = "pdes/scaling";
    if (options.quick) {
      name += ":quick";
    }
    name += "@w" + std::to_string(count);
    BenchRecord record = MeasureMedian(name, bench, body);
    if (!jobs_ok) {
      std::fprintf(stderr, "nestsim_bench: a job in %s failed at %d workers\n", path.c_str(),
                   count);
      return false;
    }
    report->Add(std::move(record));
  }
  return true;
}

bool CheckPerfFloor(const BenchReport& report, const std::string& floor_json,
                    std::string* problems) {
  JsonValue floor;
  std::string error;
  if (!JsonParse(floor_json, &floor, &error)) {
    *problems += "perf floor file is not valid JSON: " + error + "\n";
    return false;
  }
  double max_regression_pct = 25.0;
  if (const JsonValue* pct = floor.Find("max_regression_pct");
      pct != nullptr && pct->is_number()) {
    max_regression_pct = pct->number;
  }
  const JsonValue* floors = floor.Find("floors");
  if (floors == nullptr || !floors->is_object()) {
    *problems += "perf floor file lacks a \"floors\" object\n";
    return false;
  }
  bool ok = true;
  for (const auto& [name, value] : floors->members) {
    if (!value.is_number() || value.number <= 0.0) {
      *problems += "floor for " + name + " is not a positive number\n";
      ok = false;
      continue;
    }
    const BenchRecord* record = report.Find(name);
    if (record == nullptr) {
      *problems += "floored benchmark " + name + " was not run\n";
      ok = false;
      continue;
    }
    const double minimum = value.number * (1.0 - max_regression_pct / 100.0);
    if (record->ops_per_sec < minimum) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s regressed: %.0f ops/sec is more than %.0f%% below the floor %.0f\n",
                    name.c_str(), record->ops_per_sec, max_regression_pct, value.number);
      *problems += buf;
      ok = false;
    }
  }
  // "ratio_floors": {"A / B": floor} gates ops_per_sec(A) / ops_per_sec(B),
  // with the same max_regression_pct band. Machine-independent, so it can
  // assert "parallel beats serial" without pinning absolute throughput.
  if (const JsonValue* ratios = floor.Find("ratio_floors");
      ratios != nullptr && ratios->is_object()) {
    for (const auto& [expr, value] : ratios->members) {
      if (!value.is_number() || value.number <= 0.0) {
        *problems += "ratio floor for " + expr + " is not a positive number\n";
        ok = false;
        continue;
      }
      const size_t sep = expr.find(" / ");
      if (sep == std::string::npos) {
        *problems += "ratio floor key \"" + expr + "\" is not of the form \"A / B\"\n";
        ok = false;
        continue;
      }
      const std::string num_name = expr.substr(0, sep);
      const std::string den_name = expr.substr(sep + 3);
      const BenchRecord* num = report.Find(num_name);
      const BenchRecord* den = report.Find(den_name);
      if (num == nullptr || den == nullptr) {
        *problems += "ratio-floored benchmark " + (num == nullptr ? num_name : den_name) +
                     " was not run\n";
        ok = false;
        continue;
      }
      if (den->ops_per_sec <= 0.0) {
        *problems += "ratio floor " + expr + ": denominator measured 0 ops/sec\n";
        ok = false;
        continue;
      }
      const double ratio = num->ops_per_sec / den->ops_per_sec;
      const double minimum = value.number * (1.0 - max_regression_pct / 100.0);
      if (ratio < minimum) {
        char buf[200];
        std::snprintf(buf, sizeof(buf),
                      "%s regressed: ratio %.3f is more than %.0f%% below the floor %.2f\n",
                      expr.c_str(), ratio, max_regression_pct, value.number);
        *problems += buf;
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace nestsim
