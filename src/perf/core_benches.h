// The core benchmark suite behind tools/nestsim_bench (docs/BENCHMARKS.md).
//
// Microbenchmarks cover the three structures the discrete-event hot path
// lives in — the cancellable event queue, the vruntime run queue, and the
// PELT decay math — and grid benchmarks run whole committed scenarios
// (table4, fig12) end to end, reporting fired simulation events per second.
// Quick mode shrinks the grids to CI size; the record names gain a ":quick"
// suffix so quick and full measurements are never compared to each other.

#ifndef NESTSIM_SRC_PERF_CORE_BENCHES_H_
#define NESTSIM_SRC_PERF_CORE_BENCHES_H_

#include <string>
#include <vector>

#include "src/perf/bench_harness.h"

namespace nestsim {

struct CoreBenchOptions {
  bool quick = false;  // CI-sized grids (first machine, sampled rows)
  int micro_samples = 5;
  int grid_samples = 0;  // 0 = default (3 quick, 1 full)
};

// Event-queue, run-queue, and PELT microbenchmarks.
void RunMicroBenches(const CoreBenchOptions& options, BenchReport* report);

// Runs the scenario grid in `scenario_file` (resolved via the standard
// scenario search path) serially on this thread and records fired events per
// second as "grid/<scenario name>" (":quick" appended in quick mode).
// Returns false — with a message on stderr — when the scenario cannot be
// loaded or a job fails.
bool RunGridBench(const std::string& scenario_file, const CoreBenchOptions& options,
                  BenchReport* report);

// The threads-vs-events/sec scaling curve (docs/PARALLEL.md): runs the
// pdes_scaling scenario once per worker count in `workers` and records fired
// events per second as "pdes/scaling@wN" (":quick" before the @ in quick
// mode; w0 is the serial reference loop). One curve point per record keeps
// the floor file able to express ratios between worker counts.
bool RunScalingBench(const std::string& scenario_file, const std::vector<int>& workers,
                     const CoreBenchOptions& options, BenchReport* report);

// The regression gate for CI: `floor_json` is baselines/perf_floor.json.
// Every floored benchmark must be present in `report` with ops_per_sec no
// more than max_regression_pct below its floor, and every "A / B" entry of
// the optional "ratio_floors" object must have ops_per_sec(A)/ops_per_sec(B)
// no more than max_regression_pct below its floor (this is how CI asserts
// parallel >= serial events/sec without hard-coding one machine's absolute
// throughput). Returns true when everything holds; otherwise appends one
// line per problem to `problems`.
bool CheckPerfFloor(const BenchReport& report, const std::string& floor_json,
                    std::string* problems);

}  // namespace nestsim

#endif  // NESTSIM_SRC_PERF_CORE_BENCHES_H_
