#include "src/perf/bench_harness.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/campaign/jsonl_sink.h"
#include "src/obs/json_check.h"

namespace nestsim {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

std::string BenchFormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

BenchRecord MeasureMedian(const std::string& name, const BenchOptions& options,
                          const std::function<uint64_t()>& body) {
  BenchRecord record;
  record.name = name;
  for (int i = 0; i < options.warmup; ++i) {
    body();
  }
  std::vector<double> seconds;
  const int samples = std::max(1, options.samples);
  seconds.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const uint64_t ops = body();
    const double s = SecondsSince(start);
    assert(ops > 0 && "benchmark body reported zero operations");
    record.ops = ops;
    seconds.push_back(s);
  }
  std::sort(seconds.begin(), seconds.end());
  record.samples = samples;
  record.median_s = seconds[static_cast<size_t>(samples) / 2];
  if (record.median_s > 0.0 && record.ops > 0) {
    record.ns_per_op = record.median_s * 1e9 / static_cast<double>(record.ops);
    record.ops_per_sec = static_cast<double>(record.ops) / record.median_s;
  }
  return record;
}

const BenchRecord* BenchReport::Find(const std::string& name) const {
  for (const BenchRecord& r : records_) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

void BenchReport::PrintTable(FILE* out) const {
  std::fprintf(out, "%-36s %14s %14s %14s %8s\n", "benchmark", "ops", "ns/op", "ops/sec",
               "samples");
  for (const BenchRecord& r : records_) {
    std::fprintf(out, "%-36s %14llu %14.1f %14.0f %8d\n", r.name.c_str(),
                 static_cast<unsigned long long>(r.ops), r.ns_per_op, r.ops_per_sec, r.samples);
  }
}

std::string BenchReport::ToJson(const std::string& mode,
                                const std::string& reference_json) const {
  // Reference ops/sec by record name, when a prior report was supplied.
  JsonValue reference;
  bool have_reference = false;
  if (!reference_json.empty()) {
    std::string error;
    have_reference = JsonParse(reference_json, &reference, &error);
  }
  auto reference_ops_per_sec = [&](const std::string& name) -> const JsonValue* {
    if (!have_reference) {
      return nullptr;
    }
    const JsonValue* records = reference.Find("records");
    if (records == nullptr || !records->is_array()) {
      return nullptr;
    }
    for (const JsonValue& r : records->items) {
      const JsonValue* rname = r.Find("name");
      if (rname != nullptr && rname->is_string() && rname->string == name) {
        const JsonValue* ops = r.Find("ops_per_sec");
        return ops != nullptr && ops->is_number() ? ops : nullptr;
      }
    }
    return nullptr;
  };

  std::string out = "{\"schema\":\"nestsim-bench-core-v1\",\"mode\":\"";
  out += JsonEscape(mode);
  out += "\",\"records\":[";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"name\":\"";
    out += JsonEscape(r.name);
    out += "\",\"ops\":";
    out += std::to_string(r.ops);
    out += ",\"samples\":";
    out += std::to_string(r.samples);
    out += ",\"median_s\":";
    out += BenchFormatDouble(r.median_s);
    out += ",\"ns_per_op\":";
    out += BenchFormatDouble(r.ns_per_op);
    out += ",\"ops_per_sec\":";
    out += BenchFormatDouble(r.ops_per_sec);
    if (const JsonValue* ref = reference_ops_per_sec(r.name);
        ref != nullptr && ref->number > 0.0) {
      out += ",\"speedup_vs_reference\":";
      out += BenchFormatDouble(r.ops_per_sec / ref->number);
    }
    out += '}';
  }
  out += ']';
  if (!reference_json.empty() && have_reference) {
    out += ",\"reference\":";
    // Embed the prior report verbatim; it is already a JSON document.
    out += reference_json;
  }
  out += "}\n";
  return out;
}

}  // namespace nestsim
