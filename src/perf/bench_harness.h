// Microbenchmark harness for the simulator hot path (docs/BENCHMARKS.md).
//
// A benchmark body runs a batch of operations and reports how many it
// performed; the harness times the batch on a monotonic clock, repeats it
// after a warmup, and keeps the median sample — the standard defence against
// one-off stalls (page faults, frequency ramps) polluting a measurement.
// Results carry ns/op and ops/sec; grid benchmarks reuse the same record with
// "op" = one fired simulation event, giving the events/sec figure the CI
// regression gate tracks.

#ifndef NESTSIM_SRC_PERF_BENCH_HARNESS_H_
#define NESTSIM_SRC_PERF_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace nestsim {

// One measured benchmark. `ops` is the per-sample batch size; timing fields
// come from the median sample.
struct BenchRecord {
  std::string name;       // e.g. "event_queue/push_pop_hot" or "grid/table4"
  uint64_t ops = 0;       // operations (or fired events) per sample
  int samples = 0;        // timed samples (median kept), excludes warmup
  double median_s = 0.0;  // wall seconds of the median sample
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

struct BenchOptions {
  int samples = 5;  // timed samples; the median is kept
  int warmup = 1;   // untimed runs before sampling
};

// Runs `body` warmup+samples times; `body` returns the number of operations
// it performed (must be > 0 and should be identical across samples).
BenchRecord MeasureMedian(const std::string& name, const BenchOptions& options,
                          const std::function<uint64_t()>& body);

// Collects records and renders them as an aligned table or a JSON document.
class BenchReport {
 public:
  void Add(BenchRecord record) { records_.push_back(std::move(record)); }

  const std::vector<BenchRecord>& records() const { return records_; }
  const BenchRecord* Find(const std::string& name) const;

  // Aligned fixed-width table; header only when there are no records.
  void PrintTable(FILE* out) const;

  // The BENCH_core.json document: {"schema","mode","records":[...]}, with
  // doubles rendered as %.17g (exact round-trip). When `reference` (a prior
  // report's JSON, parsed or not) is non-empty it is embedded verbatim under
  // "reference" and each record that also appears there gets a
  // "speedup_vs_reference" field (this ops_per_sec / reference ops_per_sec).
  std::string ToJson(const std::string& mode, const std::string& reference_json) const;

 private:
  std::vector<BenchRecord> records_;
};

// %.17g rendering shared by the JSON writer and its tests: every finite
// double round-trips exactly through this format.
std::string BenchFormatDouble(double v);

}  // namespace nestsim

#endif  // NESTSIM_SRC_PERF_BENCH_HARNESS_H_
