// The two power governors evaluated by the paper (§2.3).
//
// `performance` requests at least the nominal frequency; the hardware still
// chooses freely between nominal and the turbo ceiling. `schedutil` maps the
// CPU's recent utilisation to a frequency with the kernel's 1.25 headroom
// factor, allowing the full range down to the minimum.

#ifndef NESTSIM_SRC_GOVERNORS_GOVERNORS_H_
#define NESTSIM_SRC_GOVERNORS_GOVERNORS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/governor.h"

namespace nestsim {

class PerformanceGovernor : public Governor {
 public:
  const char* name() const override { return "performance"; }

  double RequestGhz(const MachineSpec& spec, double cpu_util) const override {
    (void)cpu_util;
    return spec.nominal_freq_ghz;
  }
};

class SchedutilGovernor : public Governor {
 public:
  // next_freq = margin * util * max_freq, clamped to [min, max-turbo].
  static constexpr double kMargin = 1.25;

  const char* name() const override { return "schedutil"; }

  double RequestGhz(const MachineSpec& spec, double cpu_util) const override {
    const double max_ghz = spec.turbo.MaxTurboGhz();
    const double req = kMargin * cpu_util * max_ghz;
    if (req < spec.min_freq_ghz) {
      return spec.min_freq_ghz;
    }
    return req < max_ghz ? req : max_ghz;
  }
};

// Factory by name ("schedutil" / "performance"); aborts on unknown names.
std::unique_ptr<Governor> MakeGovernor(const std::string& name);

// Every governor name the factory accepts (the scenario engine validates
// spec files against this list).
std::vector<std::string> GovernorNames();

// Non-aborting membership test for user-input validation.
bool IsKnownGovernor(const std::string& name);

}  // namespace nestsim

#endif  // NESTSIM_SRC_GOVERNORS_GOVERNORS_H_
