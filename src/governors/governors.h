// The two power governors evaluated by the paper (§2.3), plus the
// energy-budget governor added by the fault/energy subsystem.
//
// `performance` requests at least the nominal frequency; the hardware still
// chooses freely between nominal and the turbo ceiling. `schedutil` maps the
// CPU's recent utilisation to a frequency with the kernel's 1.25 headroom
// factor, allowing the full range down to the minimum. `budget` starts from
// the schedutil request and scales it down proportionally whenever its
// socket's modelled power draw exceeds the configured per-socket budget
// (docs/FAULTS.md has the equations).

#ifndef NESTSIM_SRC_GOVERNORS_GOVERNORS_H_
#define NESTSIM_SRC_GOVERNORS_GOVERNORS_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/hardware.h"
#include "src/kernel/governor.h"

namespace nestsim {

class PerformanceGovernor : public Governor {
 public:
  const char* name() const override { return "performance"; }

  double RequestGhz(const MachineSpec& spec, double cpu_util) const override {
    (void)cpu_util;
    return spec.nominal_freq_ghz;
  }
};

class SchedutilGovernor : public Governor {
 public:
  // next_freq = margin * util * max_freq, clamped to [min, max-turbo].
  static constexpr double kMargin = 1.25;

  const char* name() const override { return "schedutil"; }

  double RequestGhz(const MachineSpec& spec, double cpu_util) const override {
    const double max_ghz = spec.turbo.MaxTurboGhz();
    const double req = kMargin * cpu_util * max_ghz;
    if (req < spec.min_freq_ghz) {
      return spec.min_freq_ghz;
    }
    return req < max_ghz ? req : max_ghz;
  }
};

// Energy-budget knobs on ExperimentConfig. The cap is per socket; the
// governor aims below it by `headroom_fraction` so the control loop settles
// under — not oscillating around — the budget. budget_w == 0 disables the cap
// (the budget governor then behaves exactly like schedutil).
struct PowerParams {
  double budget_w = 0.0;
  double headroom_fraction = 0.9;

  bool enabled() const { return budget_w > 0.0; }
};

// Power-capped schedutil. The per-CPU request starts from the schedutil
// formula; when the CPU's socket draws more than headroom_fraction * budget_w
// the request is scaled by (target / drawn) — a proportional controller whose
// feedback arrives through the hardware model's memoized socket power. The
// socket draw is sampled at request time, so every CPU on a hot socket backs
// off together on its next governor evaluation.
class BudgetGovernor : public Governor {
 public:
  // RAPL-style enforcement window: the cap binds an exponentially weighted
  // average of socket power (half-life kWindowMs), not the instantaneous
  // draw, so a barrier's momentary idle dip doesn't lift the cap mid-burst.
  static constexpr double kWindowMs = 4.0;

  explicit BudgetGovernor(PowerParams params) : params_(params) {}

  const char* name() const override { return "budget"; }

  void AttachHardware(const HardwareModel* hw) override {
    hw_ = hw;
    windows_.assign(hw == nullptr ? 0 : hw->topology().num_sockets(), SocketWindow{});
  }
  double BudgetWatts() const override { return params_.budget_w; }

  // Without a CPU there is no socket to read; used only outside the kernel.
  double RequestGhz(const MachineSpec& spec, double cpu_util) const override {
    return base_.RequestGhz(spec, cpu_util);
  }

  double RequestGhzOn(const MachineSpec& spec, double cpu_util, int cpu) const override {
    double req = base_.RequestGhz(spec, cpu_util);
    if (!params_.enabled() || hw_ == nullptr) {
      return req;
    }
    const int socket = hw_->topology().SocketOf(cpu);
    const double drawn = WindowedSocketWatts(socket);
    const double target = params_.headroom_fraction * params_.budget_w;
    if (drawn > target) {
      req *= target / drawn;
      if (req < spec.min_freq_ghz) {
        req = spec.min_freq_ghz;
      }
    }
    return req;
  }

  bool ThrottledOnSocket(int socket) const override {
    if (!params_.enabled() || hw_ == nullptr) {
      return false;
    }
    return WindowedSocketWatts(socket) > params_.headroom_fraction * params_.budget_w;
  }

  // RAPL-style ceiling: when the socket draws over target, scale the machine's
  // top frequency by (target / drawn). Power grows superlinearly in f (f*V^2),
  // so the proportional step overshoots downward and the loop settles under
  // the budget within a few ramp intervals; once draw is back under target the
  // ceiling lifts. 0 == unconstrained (the hardware boost runs free).
  double CapGhzOn(const MachineSpec& spec, int cpu) const override {
    if (!params_.enabled() || hw_ == nullptr) {
      return 0.0;
    }
    const int socket = hw_->topology().SocketOf(cpu);
    const double drawn = WindowedSocketWatts(socket);
    const double target = params_.headroom_fraction * params_.budget_w;
    if (drawn <= target) {
      return 0.0;
    }
    const double cap = spec.turbo.MaxTurboGhz() * (target / drawn);
    return std::max(spec.min_freq_ghz, cap);
  }

  const PowerParams& params() const { return params_; }

 private:
  struct SocketWindow {
    SimTime last = -1;
    double ema_w = 0.0;
  };

  // max(instantaneous, windowed): the instantaneous term reacts to load
  // spikes immediately, the EMA keeps the cap engaged across barrier dips.
  // Queries are dense (every governor evaluation plus every tick), so the
  // lazily folded EMA tracks the piecewise-constant power signal closely.
  double WindowedSocketWatts(int socket) const {
    const double inst = hw_->SocketPowerWatts(socket);
    if (socket >= static_cast<int>(windows_.size())) {
      return inst;
    }
    SocketWindow& w = windows_[socket];
    const SimTime now = hw_->Now();
    if (w.last < 0) {
      w.last = now;
      w.ema_w = inst;
      return inst;
    }
    if (now > w.last) {
      const double decay = std::exp2(-ToMilliseconds(now - w.last) / kWindowMs);
      w.ema_w = w.ema_w * decay + inst * (1.0 - decay);
      w.last = now;
    }
    return std::max(inst, w.ema_w);
  }

  PowerParams params_;
  SchedutilGovernor base_;
  const HardwareModel* hw_ = nullptr;
  mutable std::vector<SocketWindow> windows_;
};

// Factory by name ("schedutil" / "performance" / "budget"); aborts on unknown
// names. `power` only matters to the budget governor.
std::unique_ptr<Governor> MakeGovernor(const std::string& name);
std::unique_ptr<Governor> MakeGovernor(const std::string& name, const PowerParams& power);

// Every governor name the factory accepts (the scenario engine validates
// spec files against this list).
std::vector<std::string> GovernorNames();

// Non-aborting membership test for user-input validation.
bool IsKnownGovernor(const std::string& name);

}  // namespace nestsim

#endif  // NESTSIM_SRC_GOVERNORS_GOVERNORS_H_
