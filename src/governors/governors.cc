#include "src/governors/governors.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

std::unique_ptr<Governor> MakeGovernor(const std::string& name) {
  if (name == "schedutil") {
    return std::make_unique<SchedutilGovernor>();
  }
  if (name == "performance") {
    return std::make_unique<PerformanceGovernor>();
  }
  std::fprintf(stderr, "nestsim: unknown governor '%s' (want schedutil|performance)\n",
               name.c_str());
  std::abort();
}

std::vector<std::string> GovernorNames() { return {"schedutil", "performance"}; }

bool IsKnownGovernor(const std::string& name) {
  for (const std::string& known : GovernorNames()) {
    if (known == name) {
      return true;
    }
  }
  return false;
}

}  // namespace nestsim
