#include "src/governors/governors.h"

#include <cstdio>
#include <cstdlib>

namespace nestsim {

std::unique_ptr<Governor> MakeGovernor(const std::string& name) {
  return MakeGovernor(name, PowerParams{});
}

std::unique_ptr<Governor> MakeGovernor(const std::string& name, const PowerParams& power) {
  if (name == "schedutil") {
    return std::make_unique<SchedutilGovernor>();
  }
  if (name == "performance") {
    return std::make_unique<PerformanceGovernor>();
  }
  if (name == "budget") {
    return std::make_unique<BudgetGovernor>(power);
  }
  std::fprintf(stderr, "nestsim: unknown governor '%s' (want schedutil|performance|budget)\n",
               name.c_str());
  std::abort();
}

std::vector<std::string> GovernorNames() { return {"schedutil", "performance", "budget"}; }

bool IsKnownGovernor(const std::string& name) {
  for (const std::string& known : GovernorNames()) {
    if (known == name) {
      return true;
    }
  }
  return false;
}

}  // namespace nestsim
