#include "src/cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "src/check/invariant_checker.h"
#include "src/cluster/router.h"
#include "src/metrics/freq_hist.h"
#include "src/metrics/latency.h"
#include "src/metrics/stats.h"
#include "src/metrics/underload.h"
#include "src/obs/perfetto_trace.h"
#include "src/workloads/requests.h"

namespace nestsim {

ClusterModel::ClusterModel(DomainGroup* group, const ExperimentConfig& config, int machines) {
  const MachineSpec& spec = MachineByName(config.machine);
  machines_.reserve(static_cast<size_t>(machines));
  for (int m = 0; m < machines; ++m) {
    machines_.push_back(std::make_unique<MachineModel>(&group->domain(m), spec, config));
  }
  for (const auto& machine : machines_) {
    kernels_.push_back(&machine->kernel);
    hardware_.push_back(&machine->hw);
  }
}

namespace {

// Per-tag/per-machine last task exit (the same observer RunExperiment uses).
class CompletionObserver : public KernelObserver {
 public:
  uint32_t InterestMask() const override { return kObsTaskExit; }

  void OnTaskExit(SimTime now, const Task& task) override {
    last_exit_ = std::max(last_exit_, now);
    auto [it, inserted] = tag_last_exit_.try_emplace(task.tag, now);
    if (!inserted) {
      it->second = std::max(it->second, now);
    }
  }

  SimTime last_exit() const { return last_exit_; }
  const std::map<int, SimDuration>& tag_last_exit() const { return tag_last_exit_; }

 private:
  SimTime last_exit_ = 0;
  std::map<int, SimDuration> tag_last_exit_;
};

// Progress of one injected request-part *copy* (parts map 1:1 to copies
// unless fault.replicas spreads each part across machines), shared between
// the per-machine trackers and the final report.
struct PartProgress {
  SimTime first_run = -1;  // first time the copy's task got a CPU
  SimTime exit = -1;       // task exit (stays -1 for killed/reaped copies)
  bool killed = false;     // a core/machine fault killed the copy
  bool dropped = false;    // no machine was alive to route the copy to
};

// Maps this machine's injected tids to plan copy indices and records when
// each copy first ran and when it exited or was killed by a fault. Purely
// observational; the optional exit hook is how the runner's replica-quorum
// bookkeeping learns about completions.
class RequestTracker : public KernelObserver {
 public:
  using ExitFn = std::function<void(size_t copy_index, SimTime now)>;

  explicit RequestTracker(std::vector<PartProgress>* progress) : progress_(progress) {}

  void set_exit_fn(ExitFn fn) { exit_fn_ = std::move(fn); }

  uint32_t InterestMask() const override {
    return kObsContextSwitch | kObsTaskExit | kObsFaultEvent;
  }

  void Track(int tid, size_t copy_index) { parts_by_tid_[tid] = copy_index; }

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)cpu;
    (void)prev;
    if (next == nullptr) {
      return;
    }
    const auto it = parts_by_tid_.find(next->tid);
    if (it != parts_by_tid_.end() && (*progress_)[it->second].first_run < 0) {
      (*progress_)[it->second].first_run = now;
    }
  }

  void OnTaskExit(SimTime now, const Task& task) override {
    const auto it = parts_by_tid_.find(task.tid);
    if (it != parts_by_tid_.end()) {
      (*progress_)[it->second].exit = now;
      if (exit_fn_) {
        exit_fn_(it->second, now);
      }
    }
  }

  void OnFaultEvent(SimTime now, FaultEventKind kind, int cpu, const Task* task) override {
    (void)now;
    (void)cpu;
    // Only fault kills mark a copy as lost; post-quorum reaping
    // (kReplicaReaped) is the success path, not degradation.
    if (kind != FaultEventKind::kTaskKilled || task == nullptr) {
      return;
    }
    const auto it = parts_by_tid_.find(task->tid);
    if (it != parts_by_tid_.end()) {
      (*progress_)[it->second].killed = true;
    }
  }

 private:
  std::vector<PartProgress>* progress_;
  std::unordered_map<int, size_t> parts_by_tid_;
  ExitFn exit_fn_;
};

std::string TraceDir(const ExperimentConfig& config) {
  if (!config.trace_dir.empty()) {
    return config.trace_dir;
  }
  const char* env = std::getenv("NESTSIM_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

std::string SanitizeStem(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += ok ? c : '-';
  }
  return out;
}

}  // namespace

ExperimentResult RunClusterExperiment(const ClusterSpec& cluster, const ExperimentConfig& config,
                                      const Workload& workload) {
  const auto* requests = dynamic_cast<const RequestWorkload*>(&workload);
  if (requests == nullptr) {
    throw std::runtime_error("cluster runs need a \"requests\" workload, got " + workload.name());
  }
  std::unique_ptr<RequestRouter> router = MakeRouter(cluster.router);
  if (router == nullptr) {
    throw std::runtime_error("unknown cluster router \"" + cluster.router + "\"");
  }
  if (cluster.machines < 1) {
    throw std::runtime_error("cluster needs at least one machine");
  }

  // One PDES domain per machine plus the coordinator timeline for arrivals
  // and reaps (src/sim/parallel.h). Serial runs (workers = 0) execute the
  // merged reference loop; worker pools execute conservative windows between
  // coordinator events. Both produce the canonical event order, so the
  // digest is identical at any worker count.
  const int n = cluster.machines;
  DomainGroup group(n);
  const MachineSpec& spec = MachineByName(config.machine);
  ClusterModel model(&group, config, n);

  // Per-machine observers, mirroring RunExperiment's set so a 1-machine
  // cluster measures exactly what the single-machine path measures.
  std::vector<PartProgress> progress;
  std::vector<CompletionObserver> completion(static_cast<size_t>(n));
  std::vector<std::unique_ptr<UnderloadTracker>> underload;
  std::vector<std::unique_ptr<FreqResidencyTracker>> freq;
  std::vector<std::unique_ptr<SchedCounterRecorder>> counters;
  std::vector<std::unique_ptr<RequestTracker>> trackers;
  std::vector<std::unique_ptr<PerfettoTraceWriter>> perfetto;
  std::vector<std::unique_ptr<WakeupLatencyTracker>> latency;
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
  std::vector<std::unique_ptr<ResilienceRecorder>> resilience;
  const std::string trace_dir = TraceDir(config);
  const bool check = CheckInvariantsEnabled(config);
  for (int m = 0; m < n; ++m) {
    Kernel& kernel = model.machine(m).kernel;
    kernel.AddObserver(&completion[static_cast<size_t>(m)]);
    underload.push_back(std::make_unique<UnderloadTracker>(&kernel, config.record_underload_series));
    kernel.AddObserver(underload.back().get());
    freq.push_back(std::make_unique<FreqResidencyTracker>(&kernel, FreqBucketEdgesFor(spec)));
    kernel.AddObserver(freq.back().get());
    counters.push_back(std::make_unique<SchedCounterRecorder>(&kernel));
    kernel.AddObserver(counters.back().get());
    trackers.push_back(std::make_unique<RequestTracker>(&progress));
    kernel.AddObserver(trackers.back().get());
    if (!trace_dir.empty()) {
      perfetto.push_back(std::make_unique<PerfettoTraceWriter>(&kernel));
      kernel.AddObserver(perfetto.back().get());
    }
    if (config.record_latency) {
      latency.push_back(std::make_unique<WakeupLatencyTracker>());
      kernel.AddObserver(latency.back().get());
    }
    if (check) {
      checkers.push_back(std::make_unique<InvariantChecker>(&kernel));
      kernel.AddObserver(checkers.back().get());
    }
    if (config.fault.any()) {
      resilience.push_back(std::make_unique<ResilienceRecorder>());
      kernel.AddObserver(resilience.back().get());
    }
    kernel.Start();
  }

  // Same stream the single-machine Setup path uses: one Fork() off the seed.
  Rng rng(config.seed);
  Rng wl_rng = rng.Fork();
  const RequestPlan plan = requests->BuildPlan(wl_rng);
  // Each part is injected as `replicas` copies (1 unless configured); the
  // first `quorum` copies to exit win and the rest are reaped fleet-wide.
  const int replicas = std::max(1, config.fault.replicas);
  const int quorum = std::min(std::max(1, config.fault.quorum), replicas);
  progress.resize(plan.parts.size() * static_cast<size_t>(replicas));

  const int cpus_per_machine = model.machine(0).hw.topology().num_cpus();

  // The fault plan is drawn after the traffic plan from a forked generator —
  // second fork off the seed, exactly like the single-machine path — so
  // enabling faults perturbs no workload draw. Each machine replays its own
  // slice; whole-machine crashes are handled here (kill every live task, mark
  // the machine dead for the router) because only the runner sees the fleet.
  std::vector<char> alive(static_cast<size_t>(n), 1);
  FaultPlan fault_plan;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (config.fault.enabled()) {
    Rng fault_rng = rng.Fork();
    fault_plan = BuildFaultPlan(config.fault, fault_rng, n, cpus_per_machine, config.time_limit);
    for (int m = 0; m < n; ++m) {
      // Each machine's slice of the plan replays on that machine's own
      // domain engine: crashes, repairs, and core faults are domain-local
      // events (only alive[], read by the coordinator's arrivals, leaks out,
      // and windows are committed before every arrival).
      injectors.push_back(std::make_unique<FaultInjector>(&group.domain(m),
                                                          &model.machine(m).kernel, &fault_plan, m));
      injectors.back()->set_machine_event_fn([&model, &alive, m](SimTime now, bool fail) {
        (void)now;
        if (!fail) {
          alive[static_cast<size_t>(m)] = 1;  // repaired: routable again, empty
          return;
        }
        if (!alive[static_cast<size_t>(m)]) {
          return;
        }
        alive[static_cast<size_t>(m)] = 0;
        Kernel& kernel = model.machine(m).kernel;
        kernel.NotifyFaultEvent(FaultEventKind::kMachineCrash, -1, nullptr);
        for (const auto& task : kernel.tasks()) {
          kernel.KillTask(task.get());
        }
      });
      injectors.back()->Arm();
    }
  }

  // Replica-quorum bookkeeping (replicas > 1 only): when a part's quorum-th
  // copy exits, the losers are reaped in a same-time follow-up event (never
  // from inside the winner's exit path).
  struct CopyRef {
    Kernel* kernel = nullptr;
    Task* task = nullptr;
  };
  std::vector<CopyRef> copy_refs;
  std::vector<int> part_exits;
  std::vector<SimTime> part_quorum_exit;
  if (replicas > 1) {
    copy_refs.resize(progress.size());
    part_exits.assign(plan.parts.size(), 0);
    part_quorum_exit.assign(plan.parts.size(), -1);
  }
  // The reap is a cross-domain event (losing copies live on other machines),
  // so it rides the coordinator. Scheduling it from inside a domain's exit
  // event is a zero-lookahead feedback edge — which is why replicas > 1
  // forces the lockstep executor below.
  auto on_copy_exit = [&group, &copy_refs, &part_exits, &part_quorum_exit, replicas,
                       quorum](size_t copy, SimTime now) {
    const size_t part = copy / static_cast<size_t>(replicas);
    if (++part_exits[part] != quorum || part_quorum_exit[part] >= 0) {
      return;
    }
    part_quorum_exit[part] = now;
    // Mirror the kernel-side replica path: the winning copy's machine logs
    // the quorum join so SchedCounters sees it in cluster runs too.
    if (copy_refs[copy].kernel != nullptr) {
      copy_refs[copy].kernel->NotifyFaultEvent(FaultEventKind::kReplicaQuorumJoin, -1, nullptr);
    }
    group.ScheduleCoordinator(now, [&copy_refs, part, replicas] {
      for (int r = 0; r < replicas; ++r) {
        const CopyRef& ref = copy_refs[part * static_cast<size_t>(replicas) + static_cast<size_t>(r)];
        if (ref.task != nullptr && ref.task->state != TaskState::kDead) {
          ref.kernel->KillTask(ref.task, FaultEventKind::kReplicaReaped);
        }
      }
    });
  };
  if (replicas > 1) {
    for (auto& tracker : trackers) {
      tracker->set_exit_fn(on_copy_exit);
    }
  }

  // One coordinator event per part, scheduled in plan (arrival) order — the
  // same insertion order Kernel::ScheduleInjection would produce, so a
  // 1-machine passthrough cluster replays the exact single-machine event
  // sequence. The router runs inside the arrival event so load-aware
  // policies see live state — every domain clock is committed to the arrival
  // instant before it fires; the traffic itself was drawn above and cannot
  // be perturbed. Dead machines are failed over to the next alive one in
  // index order; a copy with no alive machine at all is dropped (and its
  // request fails).
  int64_t pending = static_cast<int64_t>(plan.parts.size());
  std::vector<uint64_t> routed(static_cast<size_t>(n), 0);
  const int tag = requests->tag();
  for (size_t i = 0; i < plan.parts.size(); ++i) {
    const RequestPart& part = plan.parts[i];
    group.ScheduleCoordinator(part.arrival, [&model, &plan, &routed, &trackers, &router, &pending,
                                             &alive, &progress, &copy_refs, tag, i, replicas, n] {
      --pending;
      const RequestPart& p = plan.parts[i];
      for (int r = 0; r < replicas; ++r) {
        const size_t copy = i * static_cast<size_t>(replicas) + static_cast<size_t>(r);
        int m = router->Route(model.kernels(), model.hardware());
        if (!alive[static_cast<size_t>(m)]) {
          const int first = m;
          do {
            m = m + 1 < n ? m + 1 : 0;
          } while (!alive[static_cast<size_t>(m)] && m != first);
          if (!alive[static_cast<size_t>(m)]) {
            progress[copy].dropped = true;
            continue;
          }
        }
        ++routed[static_cast<size_t>(m)];
        std::string name = p.name;
        if (r > 0) {
          name += ".r" + std::to_string(r);
        }
        Task* task = model.machine(m).kernel.InjectTask(p.program, std::move(name), tag);
        trackers[static_cast<size_t>(m)]->Track(task->tid, copy);
        if (replicas > 1) {
          copy_refs[copy] = CopyRef{&model.machine(m).kernel, task};
        }
      }
    });
  }

  auto fleet_live = [&] {
    if (pending > 0) {
      return true;
    }
    for (int m = 0; m < n; ++m) {
      if (model.machine(m).kernel.live_tasks() > 0) {
        return true;
      }
    }
    return false;
  };
  auto checkers_ok = [&] {
    for (const auto& checker : checkers) {
      if (!checker->ok()) {
        return false;
      }
    }
    return true;
  };

  ExperimentResult result;
  DomainGroup::RunOptions run_options;
  run_options.time_limit = config.time_limit;
  run_options.workers = config.parallel.workers;
  // Replication's quorum reaps are same-instant cross-domain feedback (zero
  // lookahead), so they force the lockstep executor regardless of sync mode.
  run_options.lockstep = replicas > 1 || config.parallel.sync == "lockstep";
  run_options.max_window = static_cast<SimDuration>(config.parallel.lookahead_us *
                                                    static_cast<double>(kMicrosecond));
  run_options.live = fleet_live;
  run_options.should_abort = config.should_abort;
  if (!checkers.empty()) {
    run_options.healthy = checkers_ok;
  }
  result.aborted = group.Run(run_options).aborted;
  for (size_t m = 0; m < checkers.size(); ++m) {
    if (!checkers[m]->ok()) {
      throw std::runtime_error("invariant violation (cluster machine " + std::to_string(m) +
                               ", " + config.machine + ", " +
                               SchedulerKindKey(config.scheduler) + "/" + config.governor +
                               ", seed " + std::to_string(config.seed) + "):\n" +
                               checkers[m]->Report());
    }
  }
  result.hit_time_limit = fleet_live() && !result.aborted;

  // Every domain clock lines up on the global stop time before any metric is
  // read: lazy integrators (hardware energy, PELT) integrate "up to Now()",
  // and the shared-clock engine left them all at the last fired event's time.
  group.AdvanceAllTo(group.Now());

  SimTime last_exit = 0;
  for (int m = 0; m < n; ++m) {
    last_exit = std::max(last_exit, completion[static_cast<size_t>(m)].last_exit());
  }
  const SimTime end = last_exit > 0 ? last_exit : group.Now();
  result.makespan = end;
  result.events_fired = group.TotalEventsFired();

  std::vector<FreqHistogram> machine_hist;
  for (int m = 0; m < n; ++m) {
    MachineModel& machine = model.machine(m);
    result.energy_joules += machine.hw.EnergyJoules();
    result.context_switches += machine.kernel.context_switches();
    result.migrations += machine.kernel.total_migrations();
    result.tasks_created += static_cast<int>(machine.kernel.tasks().size());
    for (const auto& [t, when] : completion[static_cast<size_t>(m)].tag_last_exit()) {
      auto [it, inserted] = result.tag_makespan.try_emplace(t, when);
      if (!inserted) {
        it->second = std::max(it->second, when);
      }
    }
    machine_hist.push_back(freq[static_cast<size_t>(m)]->Snapshot(end));
    if (m == 0) {
      result.freq_hist = machine_hist.back();
    } else {
      for (size_t b = 0; b < result.freq_hist.seconds.size(); ++b) {
        result.freq_hist.seconds[b] += machine_hist.back().seconds[b];
      }
    }
    for (const int cpu : underload[static_cast<size_t>(m)]->CpusEverUsed()) {
      result.cpus_used.push_back(m * cpus_per_machine + cpu);
    }
    result.counters.Add(counters[static_cast<size_t>(m)]->Finish(end));
    if (!resilience.empty()) {
      result.resilience.Add(resilience[static_cast<size_t>(m)]->Finish());
    }
    if (config.scheduler == SchedulerKind::kSmove) {
      const auto* smove = static_cast<const SmovePolicy*>(machine.policy.get());
      result.smove_moves_armed += smove->moves_armed();
      result.smove_moves_fired += smove->moves_fired();
    }
  }
  {
    std::vector<double> per_machine_underload;
    for (int m = 0; m < n; ++m) {
      per_machine_underload.push_back(
          underload[static_cast<size_t>(m)]->UnderloadPerSecond(end));
    }
    result.underload_per_s = Mean(per_machine_underload);
  }
  if (config.record_underload_series) {
    result.underload_series = underload[0]->series();
  }
  if (config.record_latency) {
    LatencyDistribution wakeups;
    for (const auto& tracker : latency) {
      for (const double us : tracker->samples_us()) {
        wakeups.Add(us);
      }
    }
    result.p50_wakeup_latency_us = wakeups.PercentileAt(50.0);
    result.p99_wakeup_latency_us = wakeups.PercentileAt(99.0);
  }
  for (size_t m = 0; m < perfetto.size(); ++m) {
    perfetto[m]->Finish(end);
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    std::string stem = config.trace_label;
    if (stem.empty()) {
      stem = config.machine;
      stem += '-';
      stem += SchedulerKindName(config.scheduler);
      stem += '-';
      stem += config.governor;
    }
    stem += "-m" + std::to_string(m);
    const std::string path = trace_dir + "/" + SanitizeStem(stem) + "-seed" +
                             std::to_string(config.seed) + ".json";
    if (perfetto[m]->WriteFile(path)) {
      if (result.trace_file.empty()) {
        result.trace_file = path;
      }
    } else {
      std::fprintf(stderr, "[trace] cannot write %s\n", path.c_str());
    }
  }

  // ---- Serving metrics. ----
  ClusterStats& stats = result.cluster;
  stats.num_machines = n;
  stats.router = router->name();
  stats.requests_offered = plan.requests;

  // A request completes when every part (parent + fan-out subs) exited — with
  // replicas, when every part reached its quorum. Parts are plan-ordered
  // request-major, so one linear walk groups them. A request a fault touched
  // (a copy killed or dropped) counts as *failed* when it never completed and
  // as *degraded* when the surviving copies still completed it.
  LatencyDistribution e2e_ms;
  std::vector<double> queue_ms;
  std::vector<double> service_ms;
  size_t i = 0;
  while (i < plan.parts.size()) {
    const uint64_t req = plan.parts[i].request;
    const SimTime arrival = plan.parts[i].arrival;
    bool complete = true;
    bool fault_touched = false;
    SimTime req_last_exit = 0;
    while (i < plan.parts.size() && plan.parts[i].request == req) {
      SimTime part_exit = -1;
      for (int r = 0; r < replicas; ++r) {
        const PartProgress& p = progress[i * static_cast<size_t>(replicas) + static_cast<size_t>(r)];
        fault_touched = fault_touched || p.killed || p.dropped;
        if (p.exit >= 0 && p.first_run >= 0) {
          queue_ms.push_back(ToMilliseconds(p.first_run - arrival));
          service_ms.push_back(ToMilliseconds(p.exit - p.first_run));
        }
      }
      part_exit = replicas > 1 ? part_quorum_exit[i] : progress[i].exit;
      if (part_exit < 0) {
        complete = false;
      } else {
        req_last_exit = std::max(req_last_exit, part_exit);
      }
      ++i;
    }
    if (complete) {
      ++stats.requests_completed;
      e2e_ms.Add(ToMilliseconds(req_last_exit - arrival));
      if (fault_touched && config.fault.any()) {
        ++result.resilience.requests_degraded;
      }
    } else if (fault_touched && config.fault.any()) {
      ++result.resilience.requests_failed;
    }
  }
  stats.p50_ms = e2e_ms.PercentileAt(50.0);
  stats.p99_ms = e2e_ms.PercentileAt(99.0);
  stats.p999_ms = e2e_ms.PercentileAt(99.9);
  stats.mean_ms = e2e_ms.mean();
  stats.max_ms = e2e_ms.max();
  stats.mean_queue_ms = Mean(queue_ms);
  stats.mean_service_ms = Mean(service_ms);

  const double horizon_s = ToSeconds(end);
  for (int m = 0; m < n; ++m) {
    ClusterMachineStats ms;
    ms.requests_routed = routed[static_cast<size_t>(m)];
    if (horizon_s > 0.0 && cpus_per_machine > 0) {
      ms.utilisation = machine_hist[static_cast<size_t>(m)].TotalSeconds() /
                       (static_cast<double>(cpus_per_machine) * horizon_s);
    }
    ms.underload_per_s = underload[static_cast<size_t>(m)]->UnderloadPerSecond(end);
    stats.machines.push_back(ms);
  }
  return result;
}

}  // namespace nestsim
