// The cluster serving layer: N machines behind a load balancer.
//
// A ClusterModel instantiates N independent machine stacks — each with its
// own HardwareModel, scheduler-policy instance, governor and Kernel — one
// per PDES domain of a DomainGroup (src/sim/parallel.h, docs/PARALLEL.md):
// every machine owns its own event queue, clock, and PELT/turbo/power state,
// and the only cross-machine traffic (request arrivals with their router
// decision, replica-quorum reaps) rides the group's coordinator timeline.
// Events execute in the group's canonical (timestamp, domain id, seq) order
// whether the run is serial or spread over a worker pool, so the whole fleet
// is bit-reproducible from one seed at any worker count.
// RunClusterExperiment replays an open-loop RequestWorkload traffic plan
// against the fleet: each arrival asks the RequestRouter for a machine and
// is injected there through the scheduler's fork path, and end-to-end
// request latency (arrival to last-part exit) is measured fleet-wide.
//
// A 1-machine cluster with the "passthrough" router is digest-identical to
// running the same workload through RunExperiment: same stack construction
// order, same Rng stream, same injection event order. The differential test
// in tests/cluster/ holds this equivalence.

#ifndef NESTSIM_SRC_CLUSTER_CLUSTER_H_
#define NESTSIM_SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/workload.h"
#include "src/governors/governors.h"
#include "src/hw/machine_spec.h"
#include "src/kernel/kernel.h"
#include "src/sim/engine.h"
#include "src/sim/parallel.h"

namespace nestsim {

struct ClusterSpec {
  int machines = 2;
  std::string router = "round-robin";
};

// One machine's full stack. Members are constructed in the same order
// RunExperiment builds its single stack (hardware, policy, governor, kernel).
struct MachineModel {
  MachineModel(Engine* engine, const MachineSpec& spec, const ExperimentConfig& config)
      : hw(engine, spec),
        policy(MakeSchedulerPolicy(config)),
        governor(MakeGovernor(config.governor, config.power)),
        kernel(engine, &hw, policy.get(), governor.get(), config.kernel) {}

  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  std::unique_ptr<Governor> governor;
  Kernel kernel;
};

class ClusterModel {
 public:
  // Builds `machines` identical stacks of config.machine, machine i on
  // domain i of `group` (which must have at least `machines` domains).
  ClusterModel(DomainGroup* group, const ExperimentConfig& config, int machines);

  int size() const { return static_cast<int>(machines_.size()); }
  MachineModel& machine(int i) { return *machines_[i]; }

  // Parallel per-machine views handed to routers.
  const std::vector<Kernel*>& kernels() const { return kernels_; }
  const std::vector<HardwareModel*>& hardware() const { return hardware_; }

 private:
  std::vector<std::unique_ptr<MachineModel>> machines_;
  std::vector<Kernel*> kernels_;
  std::vector<HardwareModel*> hardware_;
};

// Runs one seeded cluster simulation. `workload` must be a RequestWorkload
// (the open-loop "requests" family); throws std::runtime_error otherwise, or
// when cluster.router is unknown, or on an invariant violation. The returned
// result aggregates machine metrics (energy and counters summed, underload
// averaged, makespan = fleet-wide last exit) and fills result.cluster with
// the serving metrics.
ExperimentResult RunClusterExperiment(const ClusterSpec& cluster, const ExperimentConfig& config,
                                      const Workload& workload);

}  // namespace nestsim

#endif  // NESTSIM_SRC_CLUSTER_CLUSTER_H_
