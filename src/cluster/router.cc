#include "src/cluster/router.h"

namespace nestsim {

namespace {

class PassthroughRouter : public RequestRouter {
 public:
  const char* name() const override { return "passthrough"; }
  int Route(const std::vector<Kernel*>& kernels,
            const std::vector<HardwareModel*>& hardware) override {
    (void)kernels;
    (void)hardware;
    return 0;
  }
};

class RoundRobinRouter : public RequestRouter {
 public:
  const char* name() const override { return "round-robin"; }
  int Route(const std::vector<Kernel*>& kernels,
            const std::vector<HardwareModel*>& hardware) override {
    (void)hardware;
    return static_cast<int>(next_++ % kernels.size());
  }

 private:
  uint64_t next_ = 0;
};

// Least runnable tasks wins; ties go to the lowest index so the choice is
// deterministic regardless of machine count.
class LeastLoadedRouter : public RequestRouter {
 public:
  const char* name() const override { return "least-loaded"; }
  int Route(const std::vector<Kernel*>& kernels,
            const std::vector<HardwareModel*>& hardware) override {
    (void)hardware;
    int best = 0;
    int best_load = kernels[0]->runnable_tasks();
    for (size_t m = 1; m < kernels.size(); ++m) {
      const int load = kernels[m]->runnable_tasks();
      if (load < best_load) {
        best = static_cast<int>(m);
        best_load = load;
      }
    }
    return best;
  }
};

// Sends the request to the machine currently drawing the least power — a
// crude "pack onto already-hot machines last" policy that interacts with the
// turbo ladder the same way Nest's primary mask does within one machine.
class PowerAwareRouter : public RequestRouter {
 public:
  const char* name() const override { return "power-aware"; }
  int Route(const std::vector<Kernel*>& kernels,
            const std::vector<HardwareModel*>& hardware) override {
    (void)kernels;
    int best = 0;
    double best_watts = hardware[0]->TotalPowerWatts();
    for (size_t m = 1; m < hardware.size(); ++m) {
      const double watts = hardware[m]->TotalPowerWatts();
      if (watts < best_watts) {
        best = static_cast<int>(m);
        best_watts = watts;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<RequestRouter> MakeRouter(const std::string& name) {
  if (name == "passthrough") {
    return std::make_unique<PassthroughRouter>();
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinRouter>();
  }
  if (name == "least-loaded") {
    return std::make_unique<LeastLoadedRouter>();
  }
  if (name == "power-aware") {
    return std::make_unique<PowerAwareRouter>();
  }
  return nullptr;
}

std::vector<std::string> RouterNames() {
  return {"passthrough", "round-robin", "least-loaded", "power-aware"};
}

}  // namespace nestsim
