// Pluggable request routers (load balancers) for the cluster serving layer.
//
// A router picks the machine for each arriving request part. It is consulted
// at arrival time — not when the traffic plan is drawn — so load-aware
// policies see live simulation state. Routers must be deterministic functions
// of that state: given the same arrival sequence and machine states they make
// the same choices, which keeps cluster runs bit-reproducible.

#ifndef NESTSIM_SRC_CLUSTER_ROUTER_H_
#define NESTSIM_SRC_CLUSTER_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/hardware.h"
#include "src/kernel/kernel.h"

namespace nestsim {

class RequestRouter {
 public:
  virtual ~RequestRouter() = default;

  // The registry key ("round-robin", ...); used by specs, docs and reports.
  virtual const char* name() const = 0;

  // Chooses a machine index in [0, kernels.size()). `kernels` and `hardware`
  // are parallel arrays, one entry per machine.
  virtual int Route(const std::vector<Kernel*>& kernels,
                    const std::vector<HardwareModel*>& hardware) = 0;
};

// Builds a router by name; nullptr on unknown names. Known routers:
//   passthrough   always machine 0 (the 1-machine equivalence baseline)
//   round-robin   arrival i goes to machine i % N
//   least-loaded  machine with the fewest runnable tasks (lowest index ties)
//   power-aware   machine drawing the least socket power (lowest index ties)
std::unique_ptr<RequestRouter> MakeRouter(const std::string& name);

// Every router key, in registry order.
std::vector<std::string> RouterNames();

}  // namespace nestsim

#endif  // NESTSIM_SRC_CLUSTER_ROUTER_H_
