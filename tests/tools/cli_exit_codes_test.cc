// Argv-level tests for the tool CLIs: bad numeric flag values must exit with
// code 2 and print a diagnostic naming the flag — not be silently coerced to
// 0 the way atoi would. These spawn the real binaries (paths baked in by the
// build) so the whole parse-diagnose-exit path is covered.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef NESTSIM_RUN_BIN
#error "NESTSIM_RUN_BIN must be defined by the build"
#endif
#ifndef NESTSIM_FUZZ_BIN
#error "NESTSIM_FUZZ_BIN must be defined by the build"
#endif
#ifndef NESTSIM_EXPORT_BIN
#error "NESTSIM_EXPORT_BIN must be defined by the build"
#endif

namespace nestsim {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunCommand(const std::string& command) {
  CliResult result;
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) {
    return result;
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void ExpectRejected(const std::string& command, const std::string& flag,
                    const std::string& bad_value) {
  const CliResult result = RunCommand(command);
  EXPECT_EQ(result.exit_code, 2) << command << "\n" << result.output;
  EXPECT_NE(result.output.find(flag), std::string::npos)
      << "diagnostic must name " << flag << ":\n"
      << result.output;
  if (!bad_value.empty()) {
    EXPECT_NE(result.output.find(bad_value), std::string::npos)
        << "diagnostic should echo the bad value:\n"
        << result.output;
  }
}

const std::string kRun = NESTSIM_RUN_BIN;
const std::string kFuzz = NESTSIM_FUZZ_BIN;
const std::string kExport = NESTSIM_EXPORT_BIN;

TEST(NestsimRunCliTest, TimeoutRejectsNonNumeric) {
  ExpectRejected(kRun + " --timeout abc smoke.json", "--timeout", "abc");
}

TEST(NestsimRunCliTest, TimeoutRejectsZero) {
  ExpectRejected(kRun + " --timeout 0 smoke.json", "--timeout", "0");
}

TEST(NestsimRunCliTest, TimeoutRejectsNegative) {
  ExpectRejected(kRun + " --timeout -1.5 smoke.json", "--timeout", "-1.5");
}

TEST(NestsimRunCliTest, TimeoutRejectsTrailingJunk) {
  ExpectRejected(kRun + " --timeout 3x smoke.json", "--timeout", "3x");
}

TEST(NestsimRunCliTest, TimeoutRejectsMissingValue) {
  ExpectRejected(kRun + " --timeout", "--timeout", "");
}

TEST(NestsimRunCliTest, RepsRejectsNonNumeric) {
  ExpectRejected(kRun + " --reps many smoke.json", "--reps", "many");
}

TEST(NestsimRunCliTest, RepsRejectsZero) {
  ExpectRejected(kRun + " --reps 0 smoke.json", "--reps", "0");
}

TEST(NestsimFuzzCliTest, JobsRejectsNonNumeric) {
  ExpectRejected(kFuzz + " --jobs abc", "--jobs", "abc");
}

TEST(NestsimFuzzCliTest, JobsRejectsZero) {
  ExpectRejected(kFuzz + " --jobs 0", "--jobs", "0");
}

TEST(NestsimFuzzCliTest, JobsRejectsNegative) {
  ExpectRejected(kFuzz + " --jobs -4", "--jobs", "-4");
}

TEST(NestsimFuzzCliTest, JobsRejectsMissingValue) {
  const CliResult result = RunCommand(kFuzz + " --jobs");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("--jobs"), std::string::npos) << result.output;
}

TEST(NestsimExportCliTest, FormatRejectsUnknownValue) {
  ExpectRejected(kExport + " --format xml smoke.json", "--format", "xml");
}

TEST(NestsimExportCliTest, RepsRejectsNonNumeric) {
  ExpectRejected(kExport + " --reps many smoke.json", "--reps", "many");
}

TEST(NestsimExportCliTest, RepsRejectsZero) {
  ExpectRejected(kExport + " --reps 0 smoke.json", "--reps", "0");
}

TEST(NestsimExportCliTest, ParallelRejectsOutOfRange) {
  ExpectRejected(kExport + " --parallel 65 smoke.json", "--parallel", "65");
}

TEST(NestsimExportCliTest, ParallelRejectsNonNumeric) {
  ExpectRejected(kExport + " --parallel abc smoke.json", "--parallel", "abc");
}

TEST(NestsimExportCliTest, TimeoutRejectsNegative) {
  ExpectRejected(kExport + " --timeout -2 smoke.json", "--timeout", "-2");
}

TEST(NestsimExportCliTest, UnknownFlagExitsTwo) {
  const CliResult result = RunCommand(kExport + " --bogus smoke.json");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(NestsimExportCliTest, MissingScenarioArgumentExitsTwo) {
  const CliResult result = RunCommand(kExport);
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(NestsimExportCliTest, ListColumnsPrintsTheSchemaAndExitsZero) {
  const CliResult result = RunCommand(kExport + " --list-columns");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("decision"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("warmth"), std::string::npos) << result.output;
}

TEST(NestsimRunCliTest, GoodFlagsStillParse) {
  // Sanity check the harness itself: a valid invocation must not exit 2.
  // --list doesn't run scenarios, so this is fast.
  const CliResult result = RunCommand(kRun + " --list");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(NestsimRunCliTest, ListNamesClusterRouters) {
  const CliResult result = RunCommand(kRun + " --list");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("cluster routers:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("round-robin"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("cluster.machines"), std::string::npos) << result.output;
}

TEST(NestsimRunCliTest, InvalidClusterKeyNamesTheJsonPath) {
  // A misspelled cluster.* key must exit 2 with a diagnostic carrying the
  // /cluster JSON path, not run the scenario or crash.
  const std::string path = "/tmp/nestsim_cli_bad_cluster.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(R"({"name":"bad-cluster","workload":{"family":"requests"},
                 "cluster":{"machines":2,"roter":"round-robin"}})",
             f);
  std::fclose(f);
  const CliResult result = RunCommand(kRun + " " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("/cluster"), std::string::npos)
      << "diagnostic must name the JSON path:\n"
      << result.output;
  EXPECT_NE(result.output.find("roter"), std::string::npos) << result.output;
}

TEST(NestsimRunCliTest, PrintJobsLabelsClusterScenarios) {
  const std::string path = "/tmp/nestsim_cli_cluster_jobs.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(R"({"name":"cluster-jobs","machines":["amd-4650g-1s"],
                 "variants":[{"label":"cfs","scheduler":"cfs","governor":"schedutil"}],
                 "workload":{"family":"requests"},
                 "cluster":{"machines":3,"router":"least-loaded"}})",
             f);
  std::fclose(f);
  const CliResult result = RunCommand(kRun + " --print-jobs " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("[cluster x3 least-loaded]"), std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace nestsim
