// The decision-trace export invariants (src/scenario/decision_export.h): the
// serialized stream is byte-identical at any campaign worker count, any PDES
// --parallel setting, and with tracing on or off; and attaching the trace
// sink never perturbs the simulation it observes.

#include "src/scenario/decision_export.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/sched_counters.h"
#include "src/scenario/runner.h"

namespace nestsim {
namespace {

// All four placement strategies on a small bursty schbench; the predictor
// loads the committed tiny model so kNestPredicted rows appear in the stream.
constexpr char kModelPath[] = NESTSIM_REPO_DIR "/scenarios/models/tiny-predict.json";

Scenario ExportScenario(const std::string& extra_config = "") {
  const std::string json = std::string(R"({
    "name": "export_invariance",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "CFS sched", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "Nest sched", "scheduler": "nest", "governor": "schedutil"},
      {"label": "NestPredict sched", "scheduler": "nest_predict", "governor": "schedutil"},
      {"label": "NestOracle sched", "scheduler": "nest_oracle", "governor": "schedutil"}
    ],
    "workload": {
      "family": "schbench",
      "params": {"message_threads": 1, "workers_per_thread": 3, "rounds": 30, "work_ms": 0.5}
    },
    "repetitions": 2,
    "base_seed": 5,
    "config": {
      "predict.model_file": ")") + kModelPath + R"(",
      "predict.oracle_window_ms": 10.0,
      "predict.oracle_margin": 1)" +
                           extra_config + R"(
    }
  })";
  JsonValue root;
  std::string json_error;
  EXPECT_TRUE(JsonParse(json, &root, &json_error)) << json_error;
  Scenario scenario;
  ScenarioError err;
  EXPECT_TRUE(ParseScenario(root, "export_invariance", &scenario, &err)) << err.Join();
  return scenario;
}

ScenarioRunOptions QuietOptions(int jobs = 1) {
  ScenarioRunOptions options;
  options.campaign = CampaignOptions{};
  options.campaign.jobs = jobs;
  options.campaign.progress = false;
  options.campaign.jsonl_path.clear();
  return options;
}

std::string ExportStream(const Scenario& scenario, const ScenarioRunOptions& options,
                         bool jsonl = false) {
  DecisionExportResult result;
  ScenarioError err;
  EXPECT_TRUE(CollectDecisionTraces(scenario, options, &result, &err)) << err.Join();
  EXPECT_EQ(result.traces.size(), 4u);  // 1 machine x 1 row x 4 variants
  EXPECT_EQ(result.num_cpus, 12);       // amd-4650g-1s: 1 x 6 x 2
  return SerializeDecisions(result, jsonl);
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (const char c : text) {
    lines += c == '\n';
  }
  return lines;
}

TEST(ExportInvarianceTest, StreamIsByteIdenticalAcrossWorkerCounts) {
  const Scenario scenario = ExportScenario();
  const std::string serial = ExportStream(scenario, QuietOptions(1));
  const std::string pooled = ExportStream(scenario, QuietOptions(4));
  EXPECT_GT(CountLines(serial), 100u);  // header + a real body
  EXPECT_EQ(serial, pooled);

  const std::string serial_jsonl = ExportStream(scenario, QuietOptions(1), /*jsonl=*/true);
  const std::string pooled_jsonl = ExportStream(scenario, QuietOptions(4), /*jsonl=*/true);
  EXPECT_EQ(serial_jsonl, pooled_jsonl);
  // Same rows either way: JSONL has no header line.
  EXPECT_EQ(CountLines(serial), CountLines(serial_jsonl) + 1);
}

TEST(ExportInvarianceTest, StreamIsByteIdenticalAcrossParallelModes) {
  const Scenario scenario = ExportScenario();
  ScenarioRunOptions options = QuietOptions(2);
  options.parallel_workers = 0;  // serial reference loop
  const std::string reference = ExportStream(scenario, options);
  for (const int workers : {1, 2, 4}) {
    options.parallel_workers = workers;
    EXPECT_EQ(ExportStream(scenario, options), reference) << "parallel=" << workers;
  }
}

TEST(ExportInvarianceTest, StreamIsByteIdenticalWithTracingOn) {
  // record_trace captures exec segments; a purely observational recorder must
  // not shift a single decision.
  const std::string off = ExportStream(ExportScenario(), QuietOptions());
  const std::string on =
      ExportStream(ExportScenario(R"(, "record_trace": true)"), QuietOptions());
  EXPECT_EQ(off, on);
}

TEST(ExportInvarianceTest, CsvIsRectangularWithTheDocumentedHeader) {
  const std::string stream = ExportStream(ExportScenario(), QuietOptions());
  ASSERT_FALSE(stream.empty());

  size_t pos = 0;
  size_t header_commas = 0;
  std::string header;
  size_t line_no = 0;
  while (pos < stream.size()) {
    const size_t eol = stream.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // stream ends with a newline
    const std::string line = stream.substr(pos, eol - pos);
    size_t commas = 0;
    for (const char c : line) {
      commas += c == ',';
    }
    if (line_no == 0) {
      header = line;
      header_commas = commas;
      EXPECT_EQ(line.rfind("decision,machine,row,variant,seed,", 0), 0u) << line;
      EXPECT_EQ(static_cast<int>(commas) + 1, kNumFeatureColumns + 12 * kNumPerCoreColumns);
    } else {
      ASSERT_EQ(commas, header_commas) << "line " << line_no;
    }
    pos = eol + 1;
    ++line_no;
  }
  EXPECT_GT(line_no, 100u);
}

TEST(ExportInvarianceTest, AttachingTheTraceSinkIsObservationallyPure) {
  // Run the identical grid once bare and once with trace sinks attached: the
  // simulations must agree bit-for-bit on makespan and every counter.
  const Scenario scenario = ExportScenario();

  ScenarioRun bare;
  ScenarioError err;
  ASSERT_TRUE(ExpandScenario(scenario, QuietOptions(), &bare, &err)) << err.Join();
  ExecuteScenario(&bare);

  ScenarioRun traced;
  ASSERT_TRUE(ExpandScenario(scenario, QuietOptions(), &traced, &err)) << err.Join();
  std::vector<std::shared_ptr<DecisionTrace>> sinks;
  for (Job& job : traced.jobs) {
    sinks.push_back(std::make_shared<DecisionTrace>());
    job.config.predict.decision_trace = sinks.back();
  }
  ExecuteScenario(&traced);

  ASSERT_EQ(bare.outcomes.size(), traced.outcomes.size());
  bool saw_rows = false;
  for (size_t i = 0; i < bare.outcomes.size(); ++i) {
    ASSERT_TRUE(bare.outcomes[i].ok()) << bare.outcomes[i].message;
    ASSERT_TRUE(traced.outcomes[i].ok()) << traced.outcomes[i].message;
    const RepeatedResult& a = bare.outcomes[i].result;
    const RepeatedResult& b = traced.outcomes[i].result;
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t j = 0; j < a.runs.size(); ++j) {
      EXPECT_EQ(a.runs[j].makespan, b.runs[j].makespan) << i << "/" << j;
      EXPECT_EQ(a.runs[j].context_switches, b.runs[j].context_switches);
      EXPECT_EQ(SchedCountersJson(a.runs[j].counters), SchedCountersJson(b.runs[j].counters));
    }
    saw_rows = saw_rows || !sinks[i]->rows.empty();
  }
  EXPECT_TRUE(saw_rows);
}

}  // namespace
}  // namespace nestsim
