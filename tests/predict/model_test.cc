// Closed-form checks of the table model (src/predict/model.h): the counting
// fit on a hand-computable corpus, the lowest-CPU argmax tie-break, the
// ToJson -> ParseTableModel round-trip, and the %.17g float round-trip the
// exporter relies on.

#include "src/predict/model.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/predict/features.h"
#include "src/scenario/predict_io.h"

namespace nestsim {
namespace {

DecisionRow Row(bool is_fork, int prev_cpu, int runnable, int chosen_cpu) {
  DecisionRow row;
  row.is_fork = is_fork;
  row.prev_cpu = prev_cpu;
  row.runnable = runnable;
  row.chosen_cpu = chosen_cpu;
  return row;
}

TEST(TableModelTest, ThreeDecisionCorpusCountsExactly) {
  // Two wakes share the (wake, prev 3, runnable 2) bucket and one fork sits
  // alone: the fit must produce exactly these two buckets, fork first
  // (canonical (kind, prev_cpu, runnable) order), with exact counts.
  const std::vector<DecisionRow> rows = {
      Row(/*is_fork=*/false, /*prev_cpu=*/3, /*runnable=*/2, /*chosen_cpu=*/5),
      Row(/*is_fork=*/false, /*prev_cpu=*/3, /*runnable=*/2, /*chosen_cpu=*/5),
      Row(/*is_fork=*/true, /*prev_cpu=*/-1, /*runnable=*/1, /*chosen_cpu=*/0),
  };
  const TableModel model = TrainTableModel(rows);

  ASSERT_EQ(model.buckets().size(), 2u);
  const TableModelBucket& fork = model.buckets()[0];
  EXPECT_EQ(fork.kind, 0);
  EXPECT_EQ(fork.prev_cpu, -1);
  EXPECT_EQ(fork.runnable, 1);
  ASSERT_EQ(fork.counts.size(), 1u);
  EXPECT_EQ(fork.counts[0], (std::pair<int, uint64_t>(0, 1)));

  const TableModelBucket& wake = model.buckets()[1];
  EXPECT_EQ(wake.kind, 1);
  EXPECT_EQ(wake.prev_cpu, 3);
  EXPECT_EQ(wake.runnable, 2);
  ASSERT_EQ(wake.counts.size(), 1u);
  EXPECT_EQ(wake.counts[0], (std::pair<int, uint64_t>(5, 2)));

  EXPECT_EQ(model.Predict(/*is_fork=*/false, 3, 2), 5);
  EXPECT_EQ(model.Predict(/*is_fork=*/true, -1, 1), 0);
  EXPECT_EQ(model.Predict(/*is_fork=*/false, 4, 2), -1);  // unseen key
}

TEST(TableModelTest, RunnableSaturatesIntoOneBucket) {
  // runnable 8, 9, and 100 all land in the kRunnableBucketMax bucket, both
  // when training and when predicting.
  const std::vector<DecisionRow> rows = {
      Row(false, 1, 8, 2),
      Row(false, 1, 9, 2),
      Row(false, 1, 100, 2),
  };
  const TableModel model = TrainTableModel(rows);
  ASSERT_EQ(model.buckets().size(), 1u);
  EXPECT_EQ(model.buckets()[0].runnable, kRunnableBucketMax);
  ASSERT_EQ(model.buckets()[0].counts.size(), 1u);
  EXPECT_EQ(model.buckets()[0].counts[0].second, 3u);
  EXPECT_EQ(model.Predict(false, 1, 8), 2);
  EXPECT_EQ(model.Predict(false, 1, 12345), 2);
}

TEST(TableModelTest, ArgmaxTieBreaksToLowestCpu) {
  // CPUs 2 and 7 tie at two observations each; CPU 4 trails with one.
  // Predict must return 2 — the lowest CPU among the maxima.
  const std::vector<DecisionRow> rows = {
      Row(false, 0, 1, 7), Row(false, 0, 1, 2), Row(false, 0, 1, 7),
      Row(false, 0, 1, 2), Row(false, 0, 1, 4),
  };
  EXPECT_EQ(TrainTableModel(rows).Predict(false, 0, 1), 2);
}

TEST(TableModelTest, RowsWithoutChosenCpuAreSkipped) {
  const std::vector<DecisionRow> rows = {Row(false, 0, 1, -1)};
  const TableModel model = TrainTableModel(rows);
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(model.Predict(false, 0, 1), -1);
}

TEST(TableModelTest, ToJsonParsesBackIdentically) {
  const std::vector<DecisionRow> rows = {
      Row(true, -1, 0, 3), Row(true, -1, 0, 3), Row(true, -1, 0, 1),
      Row(false, 3, 5, 3), Row(false, 11, 8, 0),
  };
  const TableModel model = TrainTableModel(rows);

  JsonValue root;
  std::string json_error;
  ASSERT_TRUE(JsonParse(model.ToJson(), &root, &json_error)) << json_error;
  TableModel parsed;
  ScenarioError err;
  ASSERT_TRUE(ParseTableModel(root, "round-trip", &parsed, &err)) << err.Join();

  ASSERT_EQ(parsed.buckets().size(), model.buckets().size());
  for (size_t i = 0; i < model.buckets().size(); ++i) {
    EXPECT_EQ(parsed.buckets()[i].kind, model.buckets()[i].kind);
    EXPECT_EQ(parsed.buckets()[i].prev_cpu, model.buckets()[i].prev_cpu);
    EXPECT_EQ(parsed.buckets()[i].runnable, model.buckets()[i].runnable);
    EXPECT_EQ(parsed.buckets()[i].counts, model.buckets()[i].counts);
  }
  // The canonical form survives a parse → serialize cycle byte-for-byte.
  EXPECT_EQ(parsed.ToJson(), model.ToJson());
}

TEST(TableModelTest, EmptyModelSerializesAndParses) {
  const TableModel model;
  JsonValue root;
  std::string json_error;
  ASSERT_TRUE(JsonParse(model.ToJson(), &root, &json_error)) << json_error;
  TableModel parsed;
  ScenarioError err;
  ASSERT_TRUE(ParseTableModel(root, "empty", &parsed, &err)) << err.Join();
  EXPECT_TRUE(parsed.empty());
}

TEST(PredictIoTest, RejectsMalformedModels) {
  const char* bad[] = {
      R"({"version": 1, "buckets": []})",                    // no model name
      R"({"model": "other", "version": 1, "buckets": []})",  // wrong name
      R"({"model": "nest-predict-table", "buckets": []})",   // no version
      R"({"model": "nest-predict-table", "version": 2, "buckets": []})",
      R"({"model": "nest-predict-table", "version": 1})",    // no buckets
      R"({"model": "nest-predict-table", "version": 1, "buckets": [{}]})",
      R"({"model": "nest-predict-table", "version": 1, "buckets": [
          {"kind": "fork", "prev_cpu": 0, "runnable": 0, "counts": []}]})",
      R"({"model": "nest-predict-table", "version": 1, "buckets": [
          {"kind": "fork", "prev_cpu": 0, "runnable": 0, "counts": [[1, 0]]}]})",
      R"({"model": "nest-predict-table", "version": 1, "buckets": [
          {"kind": "fork", "prev_cpu": 0, "runnable": 0,
           "counts": [[2, 1], [1, 1]]}]})",  // counts out of cpu order
      R"({"model": "nest-predict-table", "version": 1, "buckets": [
          {"kind": "wake", "prev_cpu": 0, "runnable": 0, "counts": [[0, 1]]},
          {"kind": "fork", "prev_cpu": 0, "runnable": 0, "counts": [[0, 1]]}
         ]})",                               // buckets out of canonical order
      R"({"model": "nest-predict-table", "version": 1, "buckets": [],
          "extra": true})",                  // unknown key
  };
  for (const char* json : bad) {
    JsonValue root;
    std::string json_error;
    ASSERT_TRUE(JsonParse(json, &root, &json_error)) << json << "\n" << json_error;
    TableModel model;
    ScenarioError err;
    EXPECT_FALSE(ParseTableModel(root, "bad", &model, &err)) << json;
    EXPECT_FALSE(err.ok()) << json;
  }
}

TEST(FeatureFormatTest, G17RoundTripsDoublesExactly) {
  // The exporter prints every double with %.17g; strtod of that text must
  // recover identical bits, including values with no short decimal form.
  const double values[] = {0.0,
                           1.0,
                           1.0 / 3.0,
                           0.1,
                           2.7062158723327507,
                           1e-300,
                           12345.678901234567,
                           5.0e15};
  for (const double v : values) {
    const std::string text = FormatG17(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << text;
  }
}

TEST(FeatureFormatTest, CsvHeaderMatchesColumnCounts) {
  const std::string header = DecisionCsvHeader(2);
  int commas = 0;
  for (const char c : header) {
    commas += c == ',';
  }
  EXPECT_EQ(commas + 1, kNumFeatureColumns + 2 * kNumPerCoreColumns);
  EXPECT_NE(header.find("cpu1_warmth"), std::string::npos);
}

TEST(FeatureFormatTest, CsvRowPadsToRequestedWidth) {
  // A one-core sample exported at a three-CPU width gains two zero blocks,
  // keeping multi-machine streams rectangular.
  DecisionRow row = Row(false, 1, 3, 2);
  row.seed = 9;
  row.cores.resize(1);
  row.cores[0].ghz = 2.5;
  const DecisionLabels labels{"m", "r", "v"};
  const std::string line = DecisionCsvRow(row, /*decision=*/7, labels, /*num_cpus=*/3);
  int commas = 0;
  for (const char c : line) {
    commas += c == ',';
  }
  EXPECT_EQ(commas + 1, kNumFeatureColumns + 3 * kNumPerCoreColumns);
  EXPECT_EQ(line.rfind("7,m,r,v,9,", 0), 0u) << line;
}

}  // namespace
}  // namespace nestsim
