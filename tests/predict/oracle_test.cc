// The oracle warm-pool protocol (src/predict/oracle.h, docs/PREDICTION.md):
// plan windowing, record → replay → re-replay bit-determinism, explicit-plan
// reuse, and the nest_predict fallback guarantee (an empty model is
// bit-identical to plain Nest; the committed model actually predicts).

#include "src/predict/oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/obs/sched_counters.h"
#include "src/scenario/predict_io.h"
#include "src/workloads/micro.h"

namespace nestsim {
namespace {

constexpr char kModelPath[] = NESTSIM_REPO_DIR "/scenarios/models/tiny-predict.json";

TEST(OraclePlanTest, PoolSizeAtWindowsAndClamps) {
  OraclePlan plan;
  plan.window_ns = 5 * kMillisecond;
  plan.pool_sizes = {2, 0, 7};
  EXPECT_EQ(plan.PoolSizeAt(0), 2);
  EXPECT_EQ(plan.PoolSizeAt(5 * kMillisecond - 1), 2);
  EXPECT_EQ(plan.PoolSizeAt(5 * kMillisecond), 0);
  EXPECT_EQ(plan.PoolSizeAt(12 * kMillisecond), 7);
  // Past the recording's end the last window holds: the replay run may drift
  // slightly past the recorded makespan.
  EXPECT_EQ(plan.PoolSizeAt(400 * kSecond), 7);
}

TEST(OraclePlanTest, EmptyOrUnwindowedPlansAreAllCold) {
  OraclePlan plan;
  EXPECT_EQ(plan.PoolSizeAt(0), 0);
  plan.window_ns = kMillisecond;
  EXPECT_EQ(plan.PoolSizeAt(123), 0);  // no recorded windows
  plan.window_ns = 0;
  plan.pool_sizes = {4};
  EXPECT_EQ(plan.PoolSizeAt(123), 0);  // no window size
}

// The bursty wakeup workload the predict stack was built for, CI-sized.
SchbenchWorkload SmallSchbench() {
  SchbenchSpec spec;
  spec.message_threads = 1;
  spec.workers_per_thread = 3;
  spec.rounds = 30;
  spec.work_ms = 0.5;
  return SchbenchWorkload(spec);
}

ExperimentConfig BaseConfig(SchedulerKind kind, uint64_t seed = 5) {
  ExperimentConfig config;
  config.machine = "amd-4650g-1s";
  config.scheduler = kind;
  config.governor = "schedutil";
  config.seed = seed;
  config.predict.oracle_window_ms = 10.0;
  config.predict.oracle_margin = 1;
  return config;
}

uint64_t Placements(const ExperimentResult& r, PlacementPath path) {
  return r.counters.placements[static_cast<size_t>(path)];
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(SchedCountersJson(a.counters), SchedCountersJson(b.counters));
}

TEST(OracleExperimentTest, RecordReplayReplayIsByteIdentical) {
  // Each RunExperiment call performs record → replay internally; calling it
  // twice proves replay and re-replay agree bit-for-bit.
  const SchbenchWorkload workload = SmallSchbench();
  const ExperimentConfig config = BaseConfig(SchedulerKind::kNestOracle);
  const ExperimentResult first = RunExperiment(config, workload);
  const ExperimentResult second = RunExperiment(config, workload);
  ExpectBitIdentical(first, second);
  // The replay actually used the warm pool.
  EXPECT_GT(Placements(first, PlacementPath::kNestOracleWarm), 0u);
}

TEST(OracleExperimentTest, ExplicitPlanMatchesTheTwoPassProtocol) {
  // Record by hand (plain Nest + a recording sink), replay with the explicit
  // plan: the result must equal the automatic two-pass protocol's.
  const SchbenchWorkload workload = SmallSchbench();

  ExperimentConfig recording = BaseConfig(SchedulerKind::kNest);
  auto plan = std::make_shared<OraclePlan>();
  recording.predict.oracle_record_plan = plan;
  RunExperiment(recording, workload);
  EXPECT_GT(plan->window_ns, 0);
  EXPECT_FALSE(plan->pool_sizes.empty());

  ExperimentConfig replay = BaseConfig(SchedulerKind::kNestOracle);
  replay.predict.oracle_plan = plan;
  const ExperimentResult manual = RunExperiment(replay, workload);

  const ExperimentResult automatic =
      RunExperiment(BaseConfig(SchedulerKind::kNestOracle), workload);
  ExpectBitIdentical(manual, automatic);
}

TEST(OracleExperimentTest, RecordingSinkIsObservationallyPure) {
  // Attaching the OracleRecorder to a plain-Nest run must not change it.
  const SchbenchWorkload workload = SmallSchbench();
  const ExperimentResult bare = RunExperiment(BaseConfig(SchedulerKind::kNest), workload);
  ExperimentConfig recording = BaseConfig(SchedulerKind::kNest);
  recording.predict.oracle_record_plan = std::make_shared<OraclePlan>();
  const ExperimentResult recorded = RunExperiment(recording, workload);
  ExpectBitIdentical(bare, recorded);
}

TEST(OracleExperimentTest, DifferentSeedsProduceDifferentRuns) {
  const SchbenchWorkload workload = SmallSchbench();
  const ExperimentResult a =
      RunExperiment(BaseConfig(SchedulerKind::kNestOracle, /*seed=*/5), workload);
  const ExperimentResult b =
      RunExperiment(BaseConfig(SchedulerKind::kNestOracle, /*seed=*/6), workload);
  EXPECT_TRUE(a.makespan != b.makespan ||
              SchedCountersJson(a.counters) != SchedCountersJson(b.counters));
}

TEST(PredictPolicyTest, EmptyModelFallsBackBitIdenticallyToNest) {
  const SchbenchWorkload workload = SmallSchbench();
  const ExperimentResult nest = RunExperiment(BaseConfig(SchedulerKind::kNest), workload);

  // Null model.
  const ExperimentResult null_model =
      RunExperiment(BaseConfig(SchedulerKind::kNestPredict), workload);
  ExpectBitIdentical(nest, null_model);
  EXPECT_EQ(Placements(null_model, PlacementPath::kNestPredicted), 0u);

  // Present-but-empty model.
  ExperimentConfig empty_model = BaseConfig(SchedulerKind::kNestPredict);
  empty_model.predict.model = std::make_shared<TableModel>();
  ExpectBitIdentical(nest, RunExperiment(empty_model, workload));
}

TEST(PredictPolicyTest, CommittedModelTakesPredictedPlacements) {
  auto model = std::make_shared<TableModel>();
  ScenarioError err;
  ASSERT_TRUE(LoadTableModelFile(kModelPath, model.get(), &err)) << err.Join();
  ASSERT_FALSE(model->empty());

  ExperimentConfig config = BaseConfig(SchedulerKind::kNestPredict);
  config.predict.model = model;
  const SchbenchWorkload workload = SmallSchbench();
  const ExperimentResult first = RunExperiment(config, workload);
  EXPECT_GT(Placements(first, PlacementPath::kNestPredicted), 0u);
  // And the biased search is just as deterministic as everything else.
  ExpectBitIdentical(first, RunExperiment(config, workload));
}

}  // namespace
}  // namespace nestsim
