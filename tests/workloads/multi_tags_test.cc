// Composition invariants of MultiAppWorkload tagging (src/workloads/multi.cc):
// members are re-tagged with their index on Add, Tags() reports one unique
// tag per member, and spawned tasks carry exactly those tags through to the
// per-tag makespans.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/experiment.h"
#include "src/workloads/configure.h"
#include "src/workloads/micro.h"
#include "src/workloads/multi.h"
#include "src/workloads/nas.h"

namespace nestsim {
namespace {

std::unique_ptr<ConfigureWorkload> SmallConfigure(const std::string& package, int tests) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec(package);
  spec.num_tests = tests;
  return std::make_unique<ConfigureWorkload>(spec);
}

TEST(MultiAppTagsTest, SingleWorkloadDefaultsToTagZero) {
  const auto workload = SmallConfigure("gcc", 5);
  EXPECT_EQ(workload->tag(), 0);
  EXPECT_EQ(workload->Tags(), (std::vector<int>{0}));
}

TEST(MultiAppTagsTest, AddRetagsMembersByIndex) {
  MultiAppWorkload multi;
  for (int i = 0; i < 4; ++i) {
    auto member = SmallConfigure("gcc", 5);
    member->set_tag(99);  // whatever the member carried before, Add re-tags
    multi.Add(std::move(member));
  }
  EXPECT_EQ(multi.Tags(), (std::vector<int>{0, 1, 2, 3}));
  for (int i = 0; i < multi.size(); ++i) {
    EXPECT_EQ(multi.member(i).tag(), i);
  }
}

TEST(MultiAppTagsTest, TagsUniqueAcrossMixedFamilies) {
  MultiAppWorkload multi;
  multi.Add(SmallConfigure("gcc", 5));
  NasSpec nas = NasWorkload::KernelSpec("ep");
  nas.iterations = 5;
  nas.threads = 4;
  multi.Add(std::make_unique<NasWorkload>(nas));
  HackbenchSpec hb;
  hb.groups = 1;
  hb.fan = 2;
  hb.loops = 5;
  multi.Add(std::make_unique<HackbenchWorkload>(hb));

  const std::vector<int> tags = multi.Tags();
  const std::set<int> unique(tags.begin(), tags.end());
  EXPECT_EQ(unique.size(), tags.size());
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(multi.name(), "multi(configure-gcc+nas-ep+hackbench)");
}

TEST(MultiAppTagsTest, OuterTagDoesNotDisturbMembers) {
  MultiAppWorkload multi;
  multi.Add(SmallConfigure("gcc", 5));
  multi.Add(SmallConfigure("gdb", 5));
  multi.set_tag(7);  // the composition's own tag is unused by Tags()
  EXPECT_EQ(multi.Tags(), (std::vector<int>{0, 1}));
}

TEST(MultiAppTagsTest, SpawnedTasksCarryExactlyTheMemberTags) {
  MultiAppWorkload multi;
  multi.Add(SmallConfigure("gcc", 5));
  multi.Add(SmallConfigure("gdb", 5));
  multi.Add(SmallConfigure("php", 5));

  ExperimentConfig config;
  config.machine = "intel-6130-2s";
  config.scheduler = SchedulerKind::kNest;
  config.seed = 5;
  const ExperimentResult r = RunExperiment(config, multi);
  ASSERT_FALSE(r.hit_time_limit);

  // Exactly the member tags show up — no member ran untagged, none leaked an
  // extra tag.
  std::set<int> seen;
  for (const auto& [tag, makespan] : r.tag_makespan) {
    EXPECT_GT(makespan, 0);
    seen.insert(tag);
  }
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(std::max({r.tag_makespan.at(0), r.tag_makespan.at(1), r.tag_makespan.at(2)}),
            r.makespan);
}

}  // namespace
}  // namespace nestsim
