#include <gtest/gtest.h>

#include <memory>

#include "src/core/experiment.h"
#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"
#include "src/workloads/micro.h"
#include "src/workloads/multi.h"
#include "src/workloads/nas.h"
#include "src/workloads/phoronix.h"
#include "src/workloads/server.h"

namespace nestsim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.machine = "intel-6130-2s";
  config.scheduler = SchedulerKind::kCfs;
  config.governor = "performance";
  config.seed = 3;
  return config;
}

TEST(ConfigureWorkloadTest, AllPackagesHaveSpecs) {
  for (const std::string& name : ConfigureWorkload::PackageNames()) {
    const ConfigureSpec spec = ConfigureWorkload::PackageSpec(name);
    EXPECT_EQ(spec.package, name);
    EXPECT_GT(spec.num_tests, 0);
    EXPECT_GT(spec.child_work_ms, 0.0);
  }
  EXPECT_EQ(ConfigureWorkload::PackageNames().size(), 11u);  // Figure 4-7 set
}

TEST(ConfigureWorkloadTest, RunsToCompletionAndForksProbes) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 20;
  ConfigureWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_FALSE(r.hit_time_limit);
  // Root + at least one child per test.
  EXPECT_GE(r.tasks_created, 21);
  EXPECT_GT(r.seconds(), 0.0);
}

TEST(ConfigureWorkloadTest, DeterministicPerSeed) {
  ConfigureWorkload workload("gdb");
  const ExperimentResult a = RunExperiment(SmallConfig(), workload);
  const ExperimentResult b = RunExperiment(SmallConfig(), workload);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

TEST(ConfigureWorkloadDeathTest, UnknownPackageAborts) {
  EXPECT_DEATH((void)ConfigureWorkload::PackageSpec("notapackage"), "unknown configure package");
}

TEST(DacapoWorkloadTest, AllAppsHaveSpecs) {
  for (const std::string& name : DacapoWorkload::AppNames()) {
    const DacapoSpec spec = DacapoWorkload::AppSpec(name);
    EXPECT_EQ(spec.app, name);
  }
  EXPECT_EQ(DacapoWorkload::AppNames().size(), 21u);  // Figure 10 set
}

TEST(DacapoWorkloadTest, WorkerCountMatchesSpec) {
  DacapoSpec spec = DacapoWorkload::AppSpec("h2");
  spec.iterations = 5;
  spec.aux_threads = 0;  // isolate the worker population
  DacapoWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_EQ(r.tasks_created, 1 + spec.workers);  // jvm + workers
}

TEST(DacapoWorkloadTest, HelperBatchesSpawnPerRound) {
  DacapoSpec spec = DacapoWorkload::AppSpec("h2");
  spec.iterations = 5;
  DacapoWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  // jvm + workers + coordinator + at least one helper batch.
  EXPECT_GE(r.tasks_created, 1 + spec.workers + 1 + spec.aux_threads);
}

TEST(DacapoWorkloadTest, ChurnSpawnsBatches) {
  DacapoSpec spec = DacapoWorkload::AppSpec("tradebeans");
  spec.churn_batches = 4;
  DacapoWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_GE(r.tasks_created, 1 + 4 * spec.workers);
}

TEST(NasWorkloadTest, AllKernelsHaveSpecs) {
  for (const std::string& name : NasWorkload::KernelNames()) {
    EXPECT_EQ(NasWorkload::KernelSpec(name).kernel_name, name);
  }
  EXPECT_EQ(NasWorkload::KernelNames().size(), 9u);  // Figure 12 set
}

TEST(NasWorkloadTest, OneTaskPerCpuPlusMaster) {
  NasSpec spec = NasWorkload::KernelSpec("is");
  spec.iterations = 3;
  NasWorkload workload(spec);
  ExperimentConfig config = SmallConfig();
  const ExperimentResult r = RunExperiment(config, workload);
  const MachineSpec& m = MachineByName(config.machine);
  EXPECT_EQ(r.tasks_created, 1 + m.num_sockets * m.physical_cores_per_socket * m.threads_per_core);
}

TEST(NasWorkloadTest, ExplicitThreadCountHonoured) {
  NasSpec spec = NasWorkload::KernelSpec("is");
  spec.iterations = 3;
  spec.threads = 8;
  NasWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_EQ(r.tasks_created, 9);
}

TEST(PhoronixWorkloadTest, Figure13TestsResolve) {
  for (const std::string& name : PhoronixWorkload::Figure13TestNames()) {
    EXPECT_EQ(PhoronixWorkload::TestSpec(name).test, name);
  }
  EXPECT_EQ(PhoronixWorkload::Figure13TestNames().size(), 27u);
}

TEST(PhoronixWorkloadTest, SyntheticSpecsAreDeterministic) {
  const PhoronixSpec a = PhoronixWorkload::SyntheticSpec(42);
  const PhoronixSpec b = PhoronixWorkload::SyntheticSpec(42);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_DOUBLE_EQ(a.item_ms, b.item_ms);
  EXPECT_EQ(a.items, b.items);
}

TEST(PhoronixWorkloadTest, EveryStyleRuns) {
  for (PhoronixStyle style :
       {PhoronixStyle::kPool, PhoronixStyle::kOpenMp, PhoronixStyle::kPipeline,
        PhoronixStyle::kFullParallel, PhoronixStyle::kSerialBursts}) {
    PhoronixSpec spec;
    spec.test = "style-test";
    spec.style = style;
    spec.threads = 4;
    spec.items = 6;
    spec.item_ms = 0.5;
    PhoronixWorkload workload(spec);
    const ExperimentResult r = RunExperiment(SmallConfig(), workload);
    EXPECT_FALSE(r.hit_time_limit) << "style " << static_cast<int>(style);
    EXPECT_GE(r.tasks_created, 4);
  }
}

TEST(HackbenchWorkloadTest, AllMessagesDelivered) {
  HackbenchSpec spec;
  spec.groups = 2;
  spec.fan = 3;
  spec.loops = 10;
  HackbenchWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_FALSE(r.hit_time_limit);  // receivers all got their messages
  EXPECT_EQ(r.tasks_created, 1 + 2 * 2 * 3);
}

TEST(SchbenchWorkloadTest, RoundsComplete) {
  SchbenchSpec spec;
  spec.message_threads = 2;
  spec.workers_per_thread = 3;
  spec.rounds = 5;
  SchbenchWorkload workload(spec);
  ExperimentConfig config = SmallConfig();
  config.record_latency = true;
  const ExperimentResult r = RunExperiment(config, workload);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_GT(r.p99_wakeup_latency_us, 0.0);
}

TEST(MultiAppWorkloadTest, TagsSeparateMembers) {
  MultiAppWorkload multi;
  ConfigureSpec a = ConfigureWorkload::PackageSpec("gcc");
  a.num_tests = 5;
  ConfigureSpec b = ConfigureWorkload::PackageSpec("gdb");
  b.num_tests = 5;
  multi.Add(std::make_unique<ConfigureWorkload>(a));
  multi.Add(std::make_unique<ConfigureWorkload>(b));
  EXPECT_EQ(multi.Tags(), (std::vector<int>{0, 1}));

  const ExperimentResult r = RunExperiment(SmallConfig(), multi);
  ASSERT_EQ(r.tag_makespan.size(), 2u);
  EXPECT_GT(r.tag_makespan.at(0), 0);
  EXPECT_GT(r.tag_makespan.at(1), 0);
  EXPECT_EQ(std::max(r.tag_makespan.at(0), r.tag_makespan.at(1)), r.makespan);
}

TEST(ServerWorkloadTest, AllTestsHaveSpecs) {
  for (const std::string& name : ServerWorkload::TestNames()) {
    EXPECT_EQ(ServerWorkload::TestSpec(name).name, name);
  }
  EXPECT_EQ(ServerWorkload::TestNames().size(), 8u);  // the §5.6 server set
}

TEST(ServerWorkloadTest, EventLoopCompletesAllRequests) {
  ServerSpec spec = ServerWorkload::TestSpec("nginx");
  spec.clients = 6;
  spec.requests_per_client = 10;
  ServerWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_FALSE(r.hit_time_limit);  // every request served, every client done
  EXPECT_EQ(r.tasks_created, 1 + spec.workers + spec.clients);
}

TEST(ServerWorkloadTest, ThreadPerRequestForksHandlers) {
  ServerSpec spec = ServerWorkload::TestSpec("apache-siege-64");
  spec.clients = 4;
  spec.requests_per_client = 5;
  ServerWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_FALSE(r.hit_time_limit);
  // main + listener + clients + one handler per request.
  EXPECT_EQ(r.tasks_created, 1 + 1 + 4 + 4 * 5);
}

TEST(ServerWorkloadTest, UnevenWorkerSplitStillDrainsQueue) {
  ServerSpec spec = ServerWorkload::TestSpec("leveldb");
  spec.workers = 3;
  spec.clients = 5;
  spec.requests_per_client = 7;  // 35 requests over 3 workers: 12/12/11
  ServerWorkload workload(spec);
  const ExperimentResult r = RunExperiment(SmallConfig(), workload);
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(ServerWorkloadDeathTest, UnknownTestAborts) {
  EXPECT_DEATH((void)ServerWorkload::TestSpec("gopher"), "unknown server test");
}

TEST(WorkloadScalingTest, ConfigureWorkIsProportionalToTests) {
  // Sanity of the generator: twice the tests, roughly twice the makespan.
  ConfigureSpec small = ConfigureWorkload::PackageSpec("gcc");
  small.num_tests = 20;
  ConfigureSpec big = small;
  big.num_tests = 40;
  const double t_small = RunExperiment(SmallConfig(), ConfigureWorkload(small)).seconds();
  const double t_big = RunExperiment(SmallConfig(), ConfigureWorkload(big)).seconds();
  EXPECT_GT(t_big, 1.5 * t_small);
  EXPECT_LT(t_big, 2.6 * t_small);
}

}  // namespace
}  // namespace nestsim
