#include "src/hw/hardware.h"

#include <gtest/gtest.h>

#include <vector>

namespace nestsim {
namespace {

// A small fixture with a governor-free hardware model (hardware runs free,
// i.e. autonomy drives everything) on the 5218.
class HardwareTest : public ::testing::Test {
 protected:
  HardwareTest() : hw_(&engine_, MachineByName("intel-5218-2s")) {}

  void StartWithRequest(double request_ghz) {
    hw_.set_freq_request_fn([request_ghz](int) { return request_ghz; });
    hw_.Start();
  }

  Engine engine_;
  HardwareModel hw_;
};

TEST_F(HardwareTest, StartsAtMinFrequency) {
  EXPECT_DOUBLE_EQ(hw_.FreqGhz(0), 1.0);
}

TEST_F(HardwareTest, BusyCoreClimbsToSingleCoreTurbo) {
  StartWithRequest(1.0);
  hw_.SetThreadBusy(0, true);
  engine_.RunUntil(100 * kMillisecond);
  EXPECT_NEAR(hw_.FreqGhz(0), 3.9, 0.01);
}

TEST_F(HardwareTest, ArrivalGrantIsImmediate) {
  StartWithRequest(1.0);
  engine_.RunUntil(50 * kMillisecond);  // settle idle
  hw_.SetThreadBusy(0, true);
  // The instant P-state grant applies without waiting for an update period.
  EXPECT_GT(hw_.FreqGhz(0), 2.0);
}

TEST_F(HardwareTest, LadderCapsManyBusyCores) {
  StartWithRequest(3.9);
  const auto& firsts = hw_.topology().FirstThreadsOnSocket(0);
  for (int i = 0; i < 13; ++i) {
    hw_.SetThreadBusy(firsts[i], true);
  }
  engine_.RunUntil(100 * kMillisecond);
  // 13 active cores on a 5218 socket: cap 2.8 (Table 3).
  for (int i = 0; i < 13; ++i) {
    EXPECT_LE(hw_.FreqGhz(firsts[i]), 2.8 + 1e-9);
  }
}

TEST_F(HardwareTest, TurboLicensePersistsBrieflyAfterIdle) {
  StartWithRequest(3.9);
  const auto& firsts = hw_.topology().FirstThreadsOnSocket(0);
  for (int i = 0; i < 6; ++i) {
    hw_.SetThreadBusy(firsts[i], true);
  }
  engine_.RunUntil(20 * kMillisecond);
  EXPECT_EQ(hw_.TurboLicensesOnSocket(0), 6);
  // Going idle keeps the license for turbo_license_window.
  hw_.SetThreadBusy(firsts[5], false);
  engine_.RunUntil(engine_.Now() + 1 * kMillisecond);
  EXPECT_EQ(hw_.TurboLicensesOnSocket(0), 6);
  engine_.RunUntil(engine_.Now() + 10 * kMillisecond);
  EXPECT_EQ(hw_.TurboLicensesOnSocket(0), 5);
}

TEST_F(HardwareTest, IdleCoreDriftsBackToMin) {
  StartWithRequest(3.9);
  hw_.SetThreadBusy(0, true);
  engine_.RunUntil(50 * kMillisecond);
  hw_.SetThreadBusy(0, false);
  engine_.RunUntil(engine_.Now() + 300 * kMillisecond);
  EXPECT_NEAR(hw_.FreqGhz(0), 1.0, 0.01);
}

TEST_F(HardwareTest, RecentlyIdleCoreStaysWarm) {
  StartWithRequest(3.9);
  hw_.SetThreadBusy(0, true);
  engine_.RunUntil(50 * kMillisecond);
  const double warm = hw_.FreqGhz(0);
  hw_.SetThreadBusy(0, false);
  engine_.RunUntil(engine_.Now() + 1 * kMillisecond);  // < idle_decay_delay
  EXPECT_NEAR(hw_.FreqGhz(0), warm, 0.1);
}

TEST_F(HardwareTest, SmtSharingReducesEffectiveSpeed) {
  StartWithRequest(3.9);
  const int cpu = 0;
  const int sibling = hw_.topology().SiblingOf(cpu);
  hw_.SetThreadBusy(cpu, true);
  engine_.RunUntil(20 * kMillisecond);
  const double alone = hw_.EffectiveSpeedGhz(cpu);
  hw_.SetThreadBusy(sibling, true);
  const double shared = hw_.EffectiveSpeedGhz(cpu);
  EXPECT_NEAR(shared / alone, hw_.spec().smt_throughput, 0.01);
}

TEST_F(HardwareTest, SpeedChangeCallbackOnSiblingActivity) {
  StartWithRequest(3.9);
  std::vector<int> changed;
  hw_.set_speed_change_fn([&](int cpu) { changed.push_back(cpu); });
  hw_.SetThreadBusy(0, true);
  changed.clear();
  hw_.SetThreadBusy(hw_.topology().SiblingOf(0), true);
  // The already-busy thread 0 must be told its speed changed.
  EXPECT_NE(std::find(changed.begin(), changed.end(), 0), changed.end());
}

TEST_F(HardwareTest, EnergyIsMonotonic) {
  StartWithRequest(2.0);
  double last = hw_.EnergyJoules();
  for (int i = 0; i < 10; ++i) {
    engine_.RunUntil(engine_.Now() + 10 * kMillisecond);
    const double now = hw_.EnergyJoules();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST_F(HardwareTest, BusyMachineDrawsMoreThanIdle) {
  StartWithRequest(3.9);
  engine_.RunUntil(20 * kMillisecond);
  const double idle_watts = hw_.TotalPowerWatts();
  for (int cpu : hw_.topology().FirstThreadsOnSocket(0)) {
    hw_.SetThreadBusy(cpu, true);
  }
  engine_.RunUntil(engine_.Now() + 20 * kMillisecond);
  EXPECT_GT(hw_.TotalPowerWatts(), idle_watts * 1.5);
}

TEST_F(HardwareTest, IdleSocketDrawsPackageIdle) {
  StartWithRequest(3.9);
  engine_.RunUntil(100 * kMillisecond);
  EXPECT_DOUBLE_EQ(hw_.SocketPowerWatts(1), hw_.spec().package_idle_watts);
}

TEST_F(HardwareTest, TickSampleIsStaleWhileIdle) {
  StartWithRequest(3.9);
  // Never-busy core shows the warm-boot nominal sample.
  EXPECT_DOUBLE_EQ(hw_.FreqAtLastTickGhz(4), hw_.spec().nominal_freq_ghz);

  hw_.SetThreadBusy(0, true);
  engine_.RunUntil(40 * kMillisecond);
  hw_.SampleTick();
  const double sampled = hw_.FreqAtLastTickGhz(0);
  EXPECT_GT(sampled, 3.5);
  // Core goes idle and decays, but the sample does not move.
  hw_.SetThreadBusy(0, false);
  engine_.RunUntil(engine_.Now() + 200 * kMillisecond);
  hw_.SampleTick();
  EXPECT_DOUBLE_EQ(hw_.FreqAtLastTickGhz(0), sampled);
  EXPECT_LT(hw_.FreqGhz(0), sampled);
}

TEST_F(HardwareTest, ActiveCountTracksBusyPhysicalCores) {
  StartWithRequest(1.0);
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 0);
  hw_.SetThreadBusy(0, true);
  hw_.SetThreadBusy(hw_.topology().SiblingOf(0), true);  // same physical core
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 1);
  hw_.SetThreadBusy(1, true);
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 2);
  hw_.SetThreadBusy(0, false);
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 2);  // sibling still busy
}

TEST_F(HardwareTest, RedundantBusyTransitionsAreNoops) {
  StartWithRequest(1.0);
  hw_.SetThreadBusy(0, true);
  hw_.SetThreadBusy(0, true);
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 1);
  hw_.SetThreadBusy(0, false);
  hw_.SetThreadBusy(0, false);
  EXPECT_EQ(hw_.ActivePhysCoresOnSocket(0), 0);
}

TEST(HardwareE7Test, SpeedStepReactsSlowly) {
  Engine engine;
  HardwareModel hw(&engine, MachineByName("intel-e78870v4-4s"));
  hw.set_freq_request_fn([](int) { return 1.2; });  // governor asks nothing
  hw.Start();
  hw.SetThreadBusy(0, true);
  engine.RunUntil(3 * kMillisecond);
  // With a 10 ms decision quantum and weak autonomy, 3 ms of activity has not
  // raised the frequency much.
  EXPECT_LT(hw.FreqGhz(0), 1.8);
}

TEST(HardwareE7Test, SustainedActivityEventuallyReachesTurbo) {
  Engine engine;
  HardwareModel hw(&engine, MachineByName("intel-e78870v4-4s"));
  hw.set_freq_request_fn([](int) { return 1.2; });
  hw.Start();
  hw.SetThreadBusy(0, true);
  engine.RunUntil(300 * kMillisecond);
  // Even pre-HWP hardware turbo-boosts a continuously busy core — the E7's
  // signature is the *slow approach* (see SpeedStepReactsSlowly), not a
  // lower ceiling.
  EXPECT_NEAR(hw.FreqGhz(0), 3.0, 0.05);
}

TEST(HardwareE7Test, HighRequestReachesTurbo) {
  Engine engine;
  HardwareModel hw(&engine, MachineByName("intel-e78870v4-4s"));
  hw.set_freq_request_fn([](int) { return 3.0; });
  hw.Start();
  hw.SetThreadBusy(0, true);
  engine.RunUntil(300 * kMillisecond);
  EXPECT_NEAR(hw.FreqGhz(0), 3.0, 0.01);
}

}  // namespace
}  // namespace nestsim
