// CacheParams / WarmSpeedupFactor unit tests (src/hw/cache_model.h). The
// load-bearing property is the exact identities: default parameters must be
// a disabled model, and a neutral speedup must multiply by an exact 1.0 so
// the pre-model golden baselines stay byte-identical.

#include "src/hw/cache_model.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(CacheModelTest, DefaultsAreADisabledModel) {
  CacheParams params;
  EXPECT_EQ(params.warm_speedup, 1.0);
  EXPECT_EQ(params.migration_cost_work, 0.0);
  EXPECT_FALSE(params.enabled());
}

TEST(CacheModelTest, EitherBehaviouralKnobEnablesTheModel) {
  CacheParams params;
  params.warm_speedup = 1.2;
  EXPECT_TRUE(params.enabled());

  params = CacheParams{};
  params.migration_cost_work = 1.0;
  EXPECT_TRUE(params.enabled());

  // warm_threshold is observability-only and deliberately does not count.
  params = CacheParams{};
  params.warm_threshold = 0.01;
  EXPECT_FALSE(params.enabled());
}

TEST(CacheModelTest, SpeedupFactorInterpolatesLinearly) {
  CacheParams params;
  params.warm_speedup = 2.0;
  EXPECT_EQ(WarmSpeedupFactor(params, 0.0), 1.0);
  EXPECT_EQ(WarmSpeedupFactor(params, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(WarmSpeedupFactor(params, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(WarmSpeedupFactor(params, 0.25), 1.25);
}

TEST(CacheModelTest, NeutralSpeedupIsAnExactIdentity) {
  CacheParams params;  // warm_speedup == 1.0
  for (double w : {0.0, 0.123456789, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(WarmSpeedupFactor(params, w), 1.0);
  }
}

}  // namespace
}  // namespace nestsim
