#include "src/hw/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "src/hw/machine_spec.h"

namespace nestsim {
namespace {

TEST(TopologyTest, CountsSmall) {
  Topology topo(2, 4, 2);
  EXPECT_EQ(topo.num_cpus(), 16);
  EXPECT_EQ(topo.num_physical_cores(), 8);
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.threads_per_core(), 2);
}

TEST(TopologyTest, FirstThreadsComeFirst) {
  Topology topo(2, 4, 2);
  for (int cpu = 0; cpu < 8; ++cpu) {
    EXPECT_TRUE(topo.IsFirstThread(cpu));
  }
  for (int cpu = 8; cpu < 16; ++cpu) {
    EXPECT_FALSE(topo.IsFirstThread(cpu));
  }
}

TEST(TopologyTest, SiblingPairsAreSymmetric) {
  Topology topo(2, 4, 2);
  for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    const int sibling = topo.SiblingOf(cpu);
    ASSERT_GE(sibling, 0);
    EXPECT_NE(sibling, cpu);
    EXPECT_EQ(topo.SiblingOf(sibling), cpu);
    EXPECT_EQ(topo.PhysCoreOf(sibling), topo.PhysCoreOf(cpu));
  }
}

TEST(TopologyTest, SmtOffHasNoSiblings) {
  Topology topo(1, 4, 1);
  for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    EXPECT_EQ(topo.SiblingOf(cpu), -1);
  }
}

TEST(TopologyTest, SocketsAreBlocked) {
  // CPUs on the same socket are adjacent (paper's renumbering).
  Topology topo(2, 4, 2);
  EXPECT_EQ(topo.SocketOf(0), 0);
  EXPECT_EQ(topo.SocketOf(3), 0);
  EXPECT_EQ(topo.SocketOf(4), 1);
  EXPECT_EQ(topo.SocketOf(7), 1);
  // Sibling block mirrors the socket layout.
  EXPECT_EQ(topo.SocketOf(8), 0);
  EXPECT_EQ(topo.SocketOf(12), 1);
}

class TopologyMachineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TopologyMachineTest, CpusPartitionAcrossSockets) {
  const MachineSpec& spec = MachineByName(GetParam());
  Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
  std::set<int> seen;
  for (int s = 0; s < topo.num_sockets(); ++s) {
    for (int cpu : topo.CpusOnSocket(s)) {
      EXPECT_EQ(topo.SocketOf(cpu), s);
      EXPECT_TRUE(seen.insert(cpu).second) << "cpu in two sockets";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_cpus());
}

TEST_P(TopologyMachineTest, PhysCoresPartitionCpus) {
  const MachineSpec& spec = MachineByName(GetParam());
  Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
  std::set<int> seen;
  for (int phys = 0; phys < topo.num_physical_cores(); ++phys) {
    const auto& cpus = topo.CpusOfPhysCore(phys);
    EXPECT_EQ(static_cast<int>(cpus.size()), topo.threads_per_core());
    for (int cpu : cpus) {
      EXPECT_EQ(topo.PhysCoreOf(cpu), phys);
      EXPECT_TRUE(seen.insert(cpu).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.num_cpus());
}

TEST_P(TopologyMachineTest, FirstThreadsEnumeratePhysicalCores) {
  const MachineSpec& spec = MachineByName(GetParam());
  Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
  for (int s = 0; s < topo.num_sockets(); ++s) {
    const auto& firsts = topo.FirstThreadsOnSocket(s);
    EXPECT_EQ(static_cast<int>(firsts.size()), spec.physical_cores_per_socket);
    std::set<int> phys;
    for (int cpu : firsts) {
      EXPECT_TRUE(topo.IsFirstThread(cpu));
      EXPECT_EQ(topo.SocketOf(cpu), s);
      EXPECT_TRUE(phys.insert(topo.PhysCoreOf(cpu)).second);
    }
  }
}

TEST_P(TopologyMachineTest, SameSocketSamePhysCoreRelations) {
  const MachineSpec& spec = MachineByName(GetParam());
  Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
  if (topo.threads_per_core() == 2) {
    for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      const int sib = topo.SiblingOf(cpu);
      EXPECT_TRUE(topo.SamePhysCore(cpu, sib));
      EXPECT_TRUE(topo.SameSocket(cpu, sib));
    }
  }
}

std::vector<std::string> AllMachineNames() {
  std::vector<std::string> names;
  for (const MachineSpec& m : AllMachines()) {
    names.push_back(m.name);
  }
  return names;
}

std::string MachineTestName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, TopologyMachineTest, ::testing::ValuesIn(AllMachineNames()),
                         MachineTestName);

}  // namespace
}  // namespace nestsim
