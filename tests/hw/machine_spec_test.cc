#include "src/hw/machine_spec.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(TurboLadderTest, LookupMatchesTable) {
  TurboLadder ladder({3.7, 3.7, 3.5, 3.5, 3.4});
  EXPECT_DOUBLE_EQ(ladder.CapGhz(1), 3.7);
  EXPECT_DOUBLE_EQ(ladder.CapGhz(2), 3.7);
  EXPECT_DOUBLE_EQ(ladder.CapGhz(3), 3.5);
  EXPECT_DOUBLE_EQ(ladder.CapGhz(5), 3.4);
}

TEST(TurboLadderTest, BeyondTableUsesLastEntry) {
  TurboLadder ladder({3.0, 2.8});
  EXPECT_DOUBLE_EQ(ladder.CapGhz(10), 2.8);
}

TEST(TurboLadderTest, ZeroActiveReportsSingleCoreCap) {
  TurboLadder ladder({3.9, 3.7});
  EXPECT_DOUBLE_EQ(ladder.CapGhz(0), 3.9);
}

TEST(TurboLadderTest, EmptyLadderIsZero) {
  TurboLadder ladder;
  EXPECT_DOUBLE_EQ(ladder.CapGhz(1), 0.0);
  EXPECT_DOUBLE_EQ(ladder.MaxTurboGhz(), 0.0);
}

// --- Paper Table 2 values ---

TEST(MachineSpecTest, Xeon6130MatchesTable2) {
  const MachineSpec& m = MachineByName("intel-6130-2s");
  EXPECT_EQ(m.num_sockets, 2);
  EXPECT_EQ(m.physical_cores_per_socket, 16);
  EXPECT_EQ(m.threads_per_core, 2);
  EXPECT_DOUBLE_EQ(m.min_freq_ghz, 1.0);
  EXPECT_DOUBLE_EQ(m.nominal_freq_ghz, 2.1);
  EXPECT_DOUBLE_EQ(m.turbo.MaxTurboGhz(), 3.7);
  EXPECT_EQ(m.power_management, PowerManagement::kSpeedShift);
}

TEST(MachineSpecTest, Xeon6130FourSocket) {
  const MachineSpec& m = MachineByName("intel-6130-4s");
  EXPECT_EQ(m.num_sockets, 4);
  EXPECT_EQ(m.num_sockets * m.physical_cores_per_socket * m.threads_per_core, 128);
}

TEST(MachineSpecTest, Xeon5218MatchesTable2) {
  const MachineSpec& m = MachineByName("intel-5218-2s");
  EXPECT_DOUBLE_EQ(m.nominal_freq_ghz, 2.3);
  EXPECT_DOUBLE_EQ(m.turbo.MaxTurboGhz(), 3.9);
  EXPECT_EQ(m.microarch, "Cascade Lake");
}

TEST(MachineSpecTest, E78870v4MatchesTable2) {
  const MachineSpec& m = MachineByName("intel-e78870v4-4s");
  EXPECT_EQ(m.num_sockets * m.physical_cores_per_socket * m.threads_per_core, 160);
  EXPECT_DOUBLE_EQ(m.min_freq_ghz, 1.2);
  EXPECT_DOUBLE_EQ(m.nominal_freq_ghz, 2.1);
  EXPECT_DOUBLE_EQ(m.turbo.MaxTurboGhz(), 3.0);
  EXPECT_EQ(m.power_management, PowerManagement::kSpeedStep);
}

// --- Paper Table 3 ladders ---

TEST(MachineSpecTest, Xeon6130LadderMatchesTable3) {
  const TurboLadder& t = MachineByName("intel-6130-2s").turbo;
  EXPECT_DOUBLE_EQ(t.CapGhz(1), 3.7);
  EXPECT_DOUBLE_EQ(t.CapGhz(2), 3.7);
  EXPECT_DOUBLE_EQ(t.CapGhz(3), 3.5);
  EXPECT_DOUBLE_EQ(t.CapGhz(4), 3.5);
  EXPECT_DOUBLE_EQ(t.CapGhz(5), 3.4);
  EXPECT_DOUBLE_EQ(t.CapGhz(8), 3.4);
  EXPECT_DOUBLE_EQ(t.CapGhz(9), 3.1);
  EXPECT_DOUBLE_EQ(t.CapGhz(12), 3.1);
  EXPECT_DOUBLE_EQ(t.CapGhz(13), 2.8);
  EXPECT_DOUBLE_EQ(t.CapGhz(16), 2.8);
}

TEST(MachineSpecTest, Xeon5218LadderMatchesTable3) {
  const TurboLadder& t = MachineByName("intel-5218-2s").turbo;
  EXPECT_DOUBLE_EQ(t.CapGhz(1), 3.9);
  EXPECT_DOUBLE_EQ(t.CapGhz(3), 3.7);
  EXPECT_DOUBLE_EQ(t.CapGhz(5), 3.6);
  EXPECT_DOUBLE_EQ(t.CapGhz(9), 3.1);
  EXPECT_DOUBLE_EQ(t.CapGhz(13), 2.8);
}

TEST(MachineSpecTest, E78870v4LadderMatchesTable3) {
  const TurboLadder& t = MachineByName("intel-e78870v4-4s").turbo;
  EXPECT_DOUBLE_EQ(t.CapGhz(1), 3.0);
  EXPECT_DOUBLE_EQ(t.CapGhz(2), 3.0);
  EXPECT_DOUBLE_EQ(t.CapGhz(3), 2.8);
  EXPECT_DOUBLE_EQ(t.CapGhz(4), 2.7);
  EXPECT_DOUBLE_EQ(t.CapGhz(5), 2.6);
  EXPECT_DOUBLE_EQ(t.CapGhz(20), 2.6);
}

// --- Properties across all machines ---

class MachinePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MachinePropertyTest, LadderIsMonotoneNonIncreasing) {
  const MachineSpec& m = MachineByName(GetParam());
  for (int c = 1; c < m.physical_cores_per_socket; ++c) {
    EXPECT_GE(m.turbo.CapGhz(c), m.turbo.CapGhz(c + 1)) << "active=" << c;
  }
}

TEST_P(MachinePropertyTest, FrequencyOrdering) {
  const MachineSpec& m = MachineByName(GetParam());
  EXPECT_LT(m.min_freq_ghz, m.nominal_freq_ghz);
  EXPECT_LE(m.nominal_freq_ghz, m.turbo.MaxTurboGhz());
  EXPECT_GE(m.turbo.AllCoresTurboGhz(), m.min_freq_ghz);
}

TEST_P(MachinePropertyTest, DvfsParametersSane) {
  const MachineSpec& m = MachineByName(GetParam());
  EXPECT_GT(m.ramp_up_ghz_per_ms, 0.0);
  EXPECT_GT(m.ramp_down_ghz_per_ms, 0.0);
  EXPECT_GT(m.freq_update_period, 0);
  EXPECT_GE(m.autonomy_weight, 0.0);
  EXPECT_LE(m.autonomy_weight, 1.0);
  EXPECT_GE(m.arrival_activity_floor, 0.0);
  EXPECT_LE(m.arrival_activity_floor, 1.0);
  EXPECT_GT(m.smt_throughput, 0.5);
  EXPECT_LE(m.smt_throughput, 1.0);
}

TEST_P(MachinePropertyTest, PowerParametersSane) {
  const MachineSpec& m = MachineByName(GetParam());
  EXPECT_GT(m.uncore_watts, 0.0);
  EXPECT_GT(m.package_idle_watts, 0.0);
  EXPECT_GT(m.core_dyn_coeff, 0.0);
  EXPECT_GT(m.volt_base, 0.0);
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const MachineSpec& m : AllMachines()) {
    names.push_back(m.name);
  }
  return names;
}

std::string ParamName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachinePropertyTest, ::testing::ValuesIn(AllNames()),
                         ParamName);

TEST(MachineSpecTest, PaperMachineNamesResolve) {
  for (const std::string& name : PaperMachineNames()) {
    EXPECT_NO_FATAL_FAILURE(MachineByName(name));
  }
  EXPECT_EQ(PaperMachineNames().size(), 4u);
}

}  // namespace
}  // namespace nestsim
