// Simulation-wide invariant sweeps: run a mixed workload on every machine
// under every scheduler and validate structural invariants at every
// scheduling event. These are the "nothing is ever silently corrupt"
// guarantees the rest of the test suite builds on.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "src/metrics/stats.h"
#include "src/nest/nest_policy.h"
#include "src/nest/nest_predict_policy.h"
#include "src/smove/smove_policy.h"
#include "src/core/experiment.h"
#include "src/workloads/dacapo.h"

namespace nestsim {
namespace {

class InvariantObserver : public KernelObserver {
 public:
  InvariantObserver(Kernel* kernel, HardwareModel* hw, NestPolicy* nest)
      : kernel_(kernel), hw_(hw), nest_(nest) {}

  void OnContextSwitch(SimTime now, int cpu, const Task* prev, const Task* next) override {
    (void)prev;
    ++checks_;
    // The running task must not also be queued.
    if (next != nullptr) {
      ASSERT_FALSE(kernel_->rq(cpu).Queued(next)) << "curr is queued, cpu " << cpu;
      ASSERT_EQ(next->state, TaskState::kRunning);
      ASSERT_EQ(next->cpu, cpu);
    }
    CheckGlobal(now);
  }

  void OnTick(SimTime now) override { CheckGlobal(now); }

  int64_t checks() const { return checks_; }

 private:
  void CheckGlobal(SimTime now) {
    (void)now;
    // Runnable counter matches reality.
    int runnable = 0;
    for (const auto& task : kernel_->tasks()) {
      switch (task->state) {
        case TaskState::kRunnable:
        case TaskState::kRunning:
        case TaskState::kPlacing:
          ++runnable;
          break;
        default:
          break;
      }
    }
    ASSERT_EQ(runnable, kernel_->runnable_tasks());

    // Frequencies stay within the machine's physical envelope.
    const MachineSpec& spec = hw_->spec();
    for (int cpu = 0; cpu < kernel_->topology().num_cpus(); ++cpu) {
      const double f = hw_->FreqGhz(cpu);
      ASSERT_GE(f, spec.min_freq_ghz - 1e-9);
      ASSERT_LE(f, spec.turbo.MaxTurboGhz() + 1e-9);
    }

    // Nest-specific: nests disjoint, reserve bounded.
    if (nest_ != nullptr) {
      int reserve = 0;
      for (int cpu = 0; cpu < kernel_->topology().num_cpus(); ++cpu) {
        ASSERT_FALSE(nest_->InPrimary(cpu) && nest_->InReserve(cpu));
        reserve += nest_->InReserve(cpu) ? 1 : 0;
      }
      ASSERT_EQ(reserve, nest_->ReserveSize());
      ASSERT_LE(reserve, nest_->params().r_max);
    }
  }

  Kernel* kernel_;
  HardwareModel* hw_;
  NestPolicy* nest_;
  int64_t checks_ = 0;
};

struct Case {
  std::string machine;
  SchedulerKind scheduler;
};

class InvariantSweep : public ::testing::TestWithParam<Case> {};

TEST_P(InvariantSweep, HoldsThroughoutABusyRun) {
  const Case& c = GetParam();
  Engine engine;
  HardwareModel hw(&engine, MachineByName(c.machine));
  std::unique_ptr<SchedulerPolicy> policy;
  NestPolicy* nest = nullptr;
  switch (c.scheduler) {
    case SchedulerKind::kCfs:
      policy = std::make_unique<CfsPolicy>();
      break;
    case SchedulerKind::kNest: {
      auto owned = std::make_unique<NestPolicy>();
      nest = owned.get();
      policy = std::move(owned);
      break;
    }
    case SchedulerKind::kSmove:
      policy = std::make_unique<SmovePolicy>();
      break;
    case SchedulerKind::kNestCache: {
      auto owned = std::make_unique<NestCachePolicy>(NestParams{}, NestCacheParams{});
      nest = owned.get();
      policy = std::move(owned);
      break;
    }
    case SchedulerKind::kNestPredict: {
      // Model-less: the fallback path is plain Nest, so the nest invariants
      // apply unchanged.
      auto owned = std::make_unique<NestPredictPolicy>(NestParams{}, nullptr);
      nest = owned.get();
      policy = std::move(owned);
      break;
    }
    default:
      FAIL() << "scheduler kind not wired into the sweep";
  }
  SchedutilGovernor governor;
  Kernel kernel(&engine, &hw, policy.get(), &governor);
  InvariantObserver observer(&kernel, &hw, nest);
  kernel.AddObserver(&observer);
  kernel.Start();

  // A churny workload: fork/exit, sleeps, lock handoffs, gang wakes.
  DacapoSpec spec = DacapoWorkload::AppSpec("tradebeans");
  spec.churn_batches = 10;
  DacapoWorkload workload(spec);
  Rng rng(13);
  workload.Setup(kernel, rng);
  while (kernel.live_tasks() > 0 && engine.Now() < 30 * kSecond) {
    ASSERT_TRUE(engine.Step());
  }
  EXPECT_EQ(kernel.live_tasks(), 0);
  EXPECT_GT(observer.checks(), 500);

  // Energy is finite and positive; the accounting never went backwards.
  const double joules = hw.EnergyJoules();
  EXPECT_GT(joules, 0.0);
  EXPECT_LT(joules, 1e7);
}

std::vector<Case> Cases() {
  std::vector<Case> cases;
  for (const MachineSpec& m : AllMachines()) {
    for (SchedulerKind kind : {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove,
                               SchedulerKind::kNestCache, SchedulerKind::kNestPredict}) {
      cases.push_back({m.name, kind});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.machine + "_" + SchedulerKindName(info.param.scheduler);
  for (char& ch : name) {
    if (ch == '-') {
      ch = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMachinesAllSchedulers, InvariantSweep, ::testing::ValuesIn(Cases()),
                         CaseName);

}  // namespace
}  // namespace nestsim
