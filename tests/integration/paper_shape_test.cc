// Integration tests asserting the paper's headline claims hold in the
// simulation (shapes, not absolute numbers — see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/experiment.h"
#include "src/metrics/stats.h"
#include "src/workloads/configure.h"
#include "src/workloads/dacapo.h"
#include "src/workloads/micro.h"
#include "src/workloads/nas.h"

namespace nestsim {
namespace {

double MeanSeconds(const ExperimentConfig& config, const Workload& workload, int reps = 2) {
  return RunRepeated(config, workload, reps).mean_seconds;
}

ExperimentConfig Cfg(const std::string& machine, SchedulerKind sched,
                     const std::string& governor = "schedutil") {
  ExperimentConfig config;
  config.machine = machine;
  config.scheduler = sched;
  config.governor = governor;
  return config;
}

TEST(PaperShapeTest, NestSpeedsUpConfigureOn5218) {
  // §5.2 / Figure 5: configure workloads gain well over 5% with Nest.
  ConfigureWorkload workload("llvm_ninja");
  const double cfs = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const double nest = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kNest), workload);
  EXPECT_GT(SpeedupPercent(cfs, nest), 8.0);
}

TEST(PaperShapeTest, NestSpeedsUpConfigureOnE7) {
  ConfigureWorkload workload("mplayer");
  const double cfs = MeanSeconds(Cfg("intel-e78870v4-4s", SchedulerKind::kCfs), workload);
  const double nest = MeanSeconds(Cfg("intel-e78870v4-4s", SchedulerKind::kNest), workload);
  EXPECT_GT(SpeedupPercent(cfs, nest), 10.0);
}

TEST(PaperShapeTest, NestAlmostEliminatesConfigureUnderload) {
  // §5.2 / Figures 3-4.
  ConfigureWorkload workload("llvm_ninja");
  const ExperimentResult cfs =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const ExperimentResult nest =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kNest), workload);
  EXPECT_GT(cfs.underload_per_s, 10.0 * std::max(1.0, nest.underload_per_s));
}

TEST(PaperShapeTest, NestUsesFarFewerCores) {
  // Figure 2: CFS disperses configure probes; Nest stays on a couple of
  // cores.
  ConfigureWorkload workload("llvm_ninja");
  const ExperimentResult cfs =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const ExperimentResult nest =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kNest), workload);
  EXPECT_LE(nest.cpus_used.size(), 6u);
  EXPECT_GE(cfs.cpus_used.size(), 3 * nest.cpus_used.size());
}

TEST(PaperShapeTest, NestLiftsFrequenciesToTopBuckets) {
  // Figure 2/6: Nest spends the bulk of execution in the top two frequency
  // buckets; CFS does not.
  ConfigureWorkload workload("llvm_ninja");
  const ExperimentResult cfs =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const ExperimentResult nest =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kNest), workload);
  EXPECT_GT(nest.freq_hist.TopShare(2), 0.55);
  EXPECT_GT(nest.freq_hist.TopShare(2), cfs.freq_hist.TopShare(2) + 0.15);
}

TEST(PaperShapeTest, NestSavesEnergyOnConfigure) {
  // §5.2 / Figure 7: faster completion also reduces CPU energy.
  ConfigureWorkload workload("llvm_ninja");
  const ExperimentResult cfs =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const ExperimentResult nest =
      RunExperiment(Cfg("intel-5218-2s", SchedulerKind::kNest), workload);
  EXPECT_LT(nest.energy_joules, cfs.energy_joules);
}

TEST(PaperShapeTest, CfsPerformanceGovernorBarelyHelpsOnSpeedShift) {
  // §5.2: CFS-schedutil already reaches turbo on the 6130/5218, so the
  // performance governor gives < ~8%.
  ConfigureWorkload workload("llvm_ninja");
  const double sched = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs, "schedutil"), workload);
  const double perf =
      MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs, "performance"), workload);
  EXPECT_LT(SpeedupPercent(sched, perf), 8.0);
}

TEST(PaperShapeTest, CfsPerformanceGovernorHelpsOnE7) {
  // §5.2: the E7 is prone to subturbo under schedutil; performance helps.
  ConfigureWorkload workload("llvm_ninja");
  const double sched =
      MeanSeconds(Cfg("intel-e78870v4-4s", SchedulerKind::kCfs, "schedutil"), workload);
  const double perf =
      MeanSeconds(Cfg("intel-e78870v4-4s", SchedulerKind::kCfs, "performance"), workload);
  EXPECT_GT(SpeedupPercent(sched, perf), 5.0);
}

TEST(PaperShapeTest, SmoveIsNearCfsOnSpeedShiftMachines) {
  // §5.2: Smove's heuristic rarely fires on the 6130/5218 because stale tick
  // samples look high.
  ConfigureWorkload workload("llvm_ninja");
  const double cfs = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs), workload);
  const double smove = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kSmove), workload);
  EXPECT_LT(std::abs(SpeedupPercent(cfs, smove)), 5.0);
}

TEST(PaperShapeTest, SmoveStaysFarBelowNest) {
  ConfigureWorkload workload("llvm_ninja");
  for (const char* machine : {"intel-5218-2s", "intel-e78870v4-4s"}) {
    const double cfs = MeanSeconds(Cfg(machine, SchedulerKind::kCfs), workload);
    const double nest = MeanSeconds(Cfg(machine, SchedulerKind::kNest), workload);
    const double smove = MeanSeconds(Cfg(machine, SchedulerKind::kSmove), workload);
    EXPECT_GT(SpeedupPercent(cfs, nest), SpeedupPercent(cfs, smove) + 5.0) << machine;
  }
}

TEST(PaperShapeTest, NasIsNeutralOnTwoSocketMachines) {
  // §5.4 / Figure 12: one task per core; Nest must not get in the way. The
  // run must be long enough to amortise the nest's absorption of all cores
  // (startup churn), as the paper's multi-second runs are.
  NasSpec spec = NasWorkload::KernelSpec("is");
  spec.iterations = 600;
  NasWorkload workload(spec);
  const double cfs = MeanSeconds(Cfg("intel-6130-2s", SchedulerKind::kCfs), workload, 1);
  const double nest = MeanSeconds(Cfg("intel-6130-2s", SchedulerKind::kNest), workload, 1);
  EXPECT_LT(std::abs(SpeedupPercent(cfs, nest)), 10.0);
}

TEST(PaperShapeTest, DacapoSingleTaskAppsAreNeutral) {
  // Figure 10, blue apps: one task — nothing for Nest to improve or hurt.
  DacapoSpec spec = DacapoWorkload::AppSpec("jython");
  spec.iterations = 60;
  DacapoWorkload workload(spec);
  const double cfs = MeanSeconds(Cfg("intel-6130-2s", SchedulerKind::kCfs), workload);
  const double nest = MeanSeconds(Cfg("intel-6130-2s", SchedulerKind::kNest), workload);
  EXPECT_LT(std::abs(SpeedupPercent(cfs, nest)), 8.0);
}

TEST(PaperShapeTest, H2DoesNotRegressAndConcentrates) {
  // §5.3 / Figures 8-10: in the paper h2 gains 10-40% with Nest. Our DVFS
  // model reproduces the *placement* contrast (Nest uses roughly half the
  // cores) but only performance parity, not the gain — see EXPERIMENTS.md
  // for why the 6130's flat upper turbo ladder hides the win here.
  DacapoSpec spec = DacapoWorkload::AppSpec("h2");
  spec.iterations = 150;
  DacapoWorkload workload(spec);
  ExperimentConfig cfs_cfg = Cfg("intel-6130-4s", SchedulerKind::kCfs);
  ExperimentConfig nest_cfg = Cfg("intel-6130-4s", SchedulerKind::kNest);
  const ExperimentResult cfs = RunExperiment(cfs_cfg, workload);
  const ExperimentResult nest = RunExperiment(nest_cfg, workload);
  EXPECT_GT(SpeedupPercent(cfs.seconds(), nest.seconds()), -5.0);
  EXPECT_LT(nest.cpus_used.size() * 3, cfs.cpus_used.size() * 2);  // >= 1.5x fewer
}

TEST(PaperShapeTest, NestKeepsH2OnOneSocket) {
  // Figure 8: Nest concentrates h2 on a single socket.
  DacapoSpec spec = DacapoWorkload::AppSpec("h2");
  spec.iterations = 100;
  DacapoWorkload workload(spec);
  ExperimentConfig config = Cfg("intel-6130-4s", SchedulerKind::kNest);
  const ExperimentResult r = RunExperiment(config, workload);
  const MachineSpec& m = MachineByName(config.machine);
  Topology topo(m.num_sockets, m.physical_cores_per_socket, m.threads_per_core);
  std::set<int> sockets;
  for (int cpu : r.cpus_used) {
    sockets.insert(topo.SocketOf(cpu));
  }
  EXPECT_EQ(sockets.size(), 1u);
}

TEST(PaperShapeTest, HackbenchIsNestsWorstWorkload) {
  // §5.6: hackbench (pure wakeups) is the paper's pathological case for
  // Nest. Our model does not charge Nest's longer core-selection code paths,
  // so the absolute slowdown is not reproduced (see EXPERIMENTS.md); what
  // must hold is the ordering: hackbench is a far worse workload for Nest
  // than the configure scripts Nest was designed for.
  // The full-size configuration: enough tasks that the machine is saturated
  // with wakeups (small instances fit inside the nest and lose the point).
  HackbenchSpec spec;
  HackbenchWorkload hackbench(spec);
  ConfigureWorkload configure("gcc");
  const double hb_cfs = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs), hackbench);
  const double hb_nest = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kNest), hackbench);
  const double cfg_cfs = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kCfs), configure);
  const double cfg_nest = MeanSeconds(Cfg("intel-5218-2s", SchedulerKind::kNest), configure);
  EXPECT_LT(SpeedupPercent(hb_cfs, hb_nest), SpeedupPercent(cfg_cfs, cfg_nest));
}

TEST(PaperShapeTest, RemovingSpinHurtsPauseHeavyWorkloads) {
  // §5.3 ablation: warm spinning matters for tasks whose pauses outlast the
  // hardware's own frequency hold-off (2-8 ms gaps) — the DaCapo pattern.
  DacapoSpec spec = DacapoWorkload::AppSpec("kafka-eval");
  spec.iterations = 250;
  DacapoWorkload workload(spec);
  ExperimentConfig with = Cfg("intel-5218-2s", SchedulerKind::kNest);
  ExperimentConfig without = with;
  without.nest.enable_spin = false;
  EXPECT_GT(MeanSeconds(without, workload), MeanSeconds(with, workload));
}

}  // namespace
}  // namespace nestsim
