#include "src/perf/bench_harness.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/json_check.h"
#include "src/perf/core_benches.h"

namespace nestsim {
namespace {

BenchRecord MakeRecord(const std::string& name, uint64_t ops, double median_s) {
  BenchRecord r;
  r.name = name;
  r.ops = ops;
  r.samples = 5;
  r.median_s = median_s;
  r.ns_per_op = median_s * 1e9 / static_cast<double>(ops);
  r.ops_per_sec = static_cast<double>(ops) / median_s;
  return r;
}

// Renders PrintTable through a temp file (it writes to a FILE*).
std::string RenderTable(const BenchReport& report) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  report.PrintTable(f);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out(static_cast<size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(BenchReportTest, EmptyReportPrintsHeaderOnly) {
  BenchReport report;
  const std::vector<std::string> lines = SplitLines(RenderTable(report));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("benchmark"), std::string::npos);
  EXPECT_NE(lines[0].find("ops/sec"), std::string::npos);
}

TEST(BenchReportTest, TableColumnsStayAligned) {
  // Names of very different lengths must not shift the numeric columns: every
  // row is fixed-width, so each column starts at the same offset in each line.
  BenchReport report;
  report.Add(MakeRecord("a", 1000, 0.001));
  report.Add(MakeRecord("grid/a_rather_long_benchmark_name", 123456789, 12.5));
  const std::vector<std::string> lines = SplitLines(RenderTable(report));
  ASSERT_EQ(lines.size(), 3u);
  const size_t header_ops = lines[0].find("ops");
  ASSERT_NE(header_ops, std::string::npos);
  for (const std::string& line : lines) {
    // Fixed format "%-36s %14s ..." -> the name field ends at column 36.
    ASSERT_GE(line.size(), 37u);
  }
  // The right edge of the first numeric column is identical in every row.
  const size_t ops_end = 36 + 1 + 14;
  EXPECT_EQ(lines[1][ops_end - 1], '0');  // 1000 right-aligned
  EXPECT_EQ(lines[2][ops_end - 1], '9');  // 123456789 right-aligned
  EXPECT_EQ(lines[1][36], ' ');
  EXPECT_EQ(lines[2][36], ' ');
}

TEST(BenchReportTest, FindLocatesRecordsByName) {
  BenchReport report;
  report.Add(MakeRecord("x", 10, 0.1));
  report.Add(MakeRecord("y", 20, 0.1));
  ASSERT_NE(report.Find("y"), nullptr);
  EXPECT_EQ(report.Find("y")->ops, 20u);
  EXPECT_EQ(report.Find("missing"), nullptr);
}

TEST(BenchReportTest, JsonDoublesRoundTripExactly) {
  // %.17g is the shortest format guaranteed to round-trip any finite double.
  // Use an ops/sec value with no short decimal representation and require the
  // parsed JSON to give back the bit-identical value.
  BenchRecord r = MakeRecord("grid/x", 61820290, 22.43671234567891);
  BenchReport report;
  report.Add(r);
  const std::string json = report.ToJson("full", "");
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonParse(json, &parsed, &error)) << error;
  const JsonValue* records = parsed.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items.size(), 1u);
  const JsonValue* ops_per_sec = records->items[0].Find("ops_per_sec");
  ASSERT_NE(ops_per_sec, nullptr);
  EXPECT_EQ(ops_per_sec->number, r.ops_per_sec);  // exact, not NEAR
  const JsonValue* median = records->items[0].Find("median_s");
  ASSERT_NE(median, nullptr);
  EXPECT_EQ(median->number, r.median_s);
}

TEST(BenchReportTest, BenchFormatDoubleRoundTrips) {
  const double values[] = {0.1, 1.0 / 3.0, 22.43671234567891, 1406274.123, 1e-300};
  for (double v : values) {
    const std::string s = BenchFormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(BenchReportTest, JsonEmbedsReferenceAndSpeedup) {
  BenchReport reference;
  reference.Add(MakeRecord("grid/x", 1000, 1.0));  // 1000 ops/sec
  const std::string reference_json = reference.ToJson("full", "");

  BenchReport current;
  current.Add(MakeRecord("grid/x", 2000, 1.0));  // 2000 ops/sec -> 2x
  const std::string json = current.ToJson("full", reference_json);

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonParse(json, &parsed, &error)) << error;
  const JsonValue* records = parsed.Find("records");
  ASSERT_NE(records, nullptr);
  const JsonValue* speedup = records->items[0].Find("speedup_vs_reference");
  ASSERT_NE(speedup, nullptr);
  EXPECT_DOUBLE_EQ(speedup->number, 2.0);
  EXPECT_NE(parsed.Find("reference"), nullptr);
}

TEST(PerfFloorTest, PassesWithinBand) {
  BenchReport report;
  report.Add(MakeRecord("grid/table4:quick", 800, 1.0));  // 800 ops/sec
  std::string problems;
  // Floor 1000 with 25% band -> minimum 750; 800 passes.
  const std::string floor =
      R"({"schema":"nestsim-perf-floor-v1","max_regression_pct":25,"floors":{"grid/table4:quick":1000}})";
  EXPECT_TRUE(CheckPerfFloor(report, floor, &problems)) << problems;
  EXPECT_TRUE(problems.empty());
}

TEST(PerfFloorTest, FailsBelowBandAndNamesTheBenchmark) {
  BenchReport report;
  report.Add(MakeRecord("grid/table4:quick", 700, 1.0));  // below 750 minimum
  std::string problems;
  const std::string floor =
      R"({"schema":"nestsim-perf-floor-v1","max_regression_pct":25,"floors":{"grid/table4:quick":1000}})";
  EXPECT_FALSE(CheckPerfFloor(report, floor, &problems));
  EXPECT_NE(problems.find("grid/table4:quick"), std::string::npos);
  EXPECT_NE(problems.find("regressed"), std::string::npos);
}

TEST(PerfFloorTest, FailsWhenFlooredBenchmarkMissing) {
  BenchReport report;  // empty: the floored benchmark never ran
  std::string problems;
  const std::string floor = R"({"floors":{"grid/table4:quick":1000}})";
  EXPECT_FALSE(CheckPerfFloor(report, floor, &problems));
  EXPECT_NE(problems.find("was not run"), std::string::npos);
}

TEST(PerfFloorTest, RejectsMalformedFloorFile) {
  BenchReport report;
  std::string problems;
  EXPECT_FALSE(CheckPerfFloor(report, "not json", &problems));
  EXPECT_FALSE(problems.empty());
  problems.clear();
  EXPECT_FALSE(CheckPerfFloor(report, R"({"no_floors":true})", &problems));
  EXPECT_NE(problems.find("floors"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
