// The PDES scaling curve (docs/PARALLEL.md): record shape produced by
// RunScalingBench and the ratio-floor arm of CheckPerfFloor that gates it.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/perf/bench_harness.h"
#include "src/perf/core_benches.h"

namespace nestsim {
namespace {

// Tests run from the build tree, so name committed scenarios by full path.
std::string CommittedScenario(const std::string& stem) {
  return std::string(NESTSIM_REPO_DIR) + "/scenarios/" + stem + ".json";
}

BenchRecord MakeRecord(const std::string& name, uint64_t ops, double median_s) {
  BenchRecord r;
  r.name = name;
  r.ops = ops;
  r.samples = 5;
  r.median_s = median_s;
  r.ns_per_op = median_s * 1e9 / static_cast<double>(ops);
  r.ops_per_sec = static_cast<double>(ops) / median_s;
  return r;
}

// One curve point per worker count, named "pdes/scaling[:quick]@wN", all
// counting the identical event population (results are worker-invariant, so
// ops must match across the curve).
TEST(ScalingBenchTest, RecordsOneCurvePointPerWorkerCount) {
  CoreBenchOptions options;
  options.quick = true;
  options.grid_samples = 1;
  BenchReport report;
  ASSERT_TRUE(RunScalingBench(CommittedScenario("cluster_smoke"), {0, 2}, options, &report));

  const BenchRecord* serial = report.Find("pdes/scaling:quick@w0");
  const BenchRecord* parallel = report.Find("pdes/scaling:quick@w2");
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_GT(serial->ops, 0u);
  EXPECT_EQ(serial->ops, parallel->ops);
  EXPECT_GT(serial->ops_per_sec, 0.0);
  EXPECT_GT(parallel->ops_per_sec, 0.0);
}

TEST(ScalingBenchTest, FullModeDropsTheQuickSuffix) {
  CoreBenchOptions options;
  options.quick = false;
  options.grid_samples = 1;
  BenchReport report;
  ASSERT_TRUE(RunScalingBench(CommittedScenario("cluster_smoke"), {0}, options, &report));
  EXPECT_NE(report.Find("pdes/scaling@w0"), nullptr);
  EXPECT_EQ(report.Find("pdes/scaling:quick@w0"), nullptr);
}

TEST(ScalingBenchTest, UnknownScenarioFails) {
  CoreBenchOptions options;
  BenchReport report;
  EXPECT_FALSE(RunScalingBench("no_such_scenario.json", {0}, options, &report));
}

TEST(RatioFloorTest, PassesWhenTheRatioClearsTheFloor) {
  BenchReport report;
  report.Add(MakeRecord("pdes/scaling:quick@w0", 1000, 1.0));  // 1000 ops/sec
  report.Add(MakeRecord("pdes/scaling:quick@w4", 1000, 0.5));  // 2000 ops/sec
  std::string problems;
  const std::string floor =
      R"({"max_regression_pct":25,"floors":{},
          "ratio_floors":{"pdes/scaling:quick@w4 / pdes/scaling:quick@w0":1.0}})";
  EXPECT_TRUE(CheckPerfFloor(report, floor, &problems)) << problems;
  EXPECT_TRUE(problems.empty());
}

TEST(RatioFloorTest, AllowsTheRegressionBandBelowTheFloor) {
  BenchReport report;
  report.Add(MakeRecord("pdes/scaling:quick@w0", 1000, 1.0));  // 1000 ops/sec
  report.Add(MakeRecord("pdes/scaling:quick@w4", 800, 1.0));   // ratio 0.8
  std::string problems;
  // Floor 1.0 with the 25% band -> minimum 0.75; 0.8 passes.
  const std::string floor =
      R"({"max_regression_pct":25,"floors":{},
          "ratio_floors":{"pdes/scaling:quick@w4 / pdes/scaling:quick@w0":1.0}})";
  EXPECT_TRUE(CheckPerfFloor(report, floor, &problems)) << problems;
}

TEST(RatioFloorTest, FailsBelowTheBandAndNamesTheRatio) {
  BenchReport report;
  report.Add(MakeRecord("pdes/scaling:quick@w0", 1000, 1.0));  // 1000 ops/sec
  report.Add(MakeRecord("pdes/scaling:quick@w4", 700, 1.0));   // ratio 0.7 < 0.75
  std::string problems;
  const std::string floor =
      R"({"max_regression_pct":25,"floors":{},
          "ratio_floors":{"pdes/scaling:quick@w4 / pdes/scaling:quick@w0":1.0}})";
  EXPECT_FALSE(CheckPerfFloor(report, floor, &problems));
  EXPECT_NE(problems.find("pdes/scaling:quick@w4 / pdes/scaling:quick@w0"), std::string::npos);
  EXPECT_NE(problems.find("regressed"), std::string::npos);
}

TEST(RatioFloorTest, FailsWhenACurvePointIsMissing) {
  BenchReport report;
  report.Add(MakeRecord("pdes/scaling:quick@w0", 1000, 1.0));
  std::string problems;
  const std::string floor =
      R"({"floors":{},"ratio_floors":{"pdes/scaling:quick@w4 / pdes/scaling:quick@w0":1.0}})";
  EXPECT_FALSE(CheckPerfFloor(report, floor, &problems));
  EXPECT_NE(problems.find("was not run"), std::string::npos);
}

TEST(RatioFloorTest, RejectsMalformedKeysAndValues) {
  BenchReport report;
  report.Add(MakeRecord("a", 10, 1.0));
  std::string problems;
  EXPECT_FALSE(CheckPerfFloor(report, R"({"floors":{},"ratio_floors":{"a":1.0}})", &problems));
  EXPECT_NE(problems.find("A / B"), std::string::npos);
  problems.clear();
  EXPECT_FALSE(CheckPerfFloor(report, R"({"floors":{},"ratio_floors":{"a / a":-1}})", &problems));
  EXPECT_NE(problems.find("positive"), std::string::npos);
}

// The committed floor file must gate the curve CI actually produces.
TEST(RatioFloorTest, CommittedFloorFileNamesTheQuickCurvePoints) {
  const std::string path = std::string(NESTSIM_REPO_DIR) + "/baselines/perf_floor.json";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  std::string floor;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    floor.append(buf, n);
  }
  std::fclose(f);
  EXPECT_NE(floor.find("pdes/scaling:quick@w4 / pdes/scaling:quick@w0"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
