#include "src/cfs/cfs_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

struct CfsRig {
  explicit CfsRig(MachineSpec spec = FixedFreqMachine(2, 4, 2))
      : hw(&engine, spec), kernel(&engine, &hw, &cfs, &governor) {
    kernel.Start();
  }

  // Makes `cpu` busy by spawning an endless-ish compute task pinned there.
  Task* Occupy(int cpu) {
    ProgramBuilder b("hog");
    b.Compute(1e12);
    return kernel.SpawnInitial(b.Build(), "hog", 0, cpu);
  }

  Engine engine;
  HardwareModel hw;
  CfsPolicy cfs;
  PerformanceGovernor governor;
  Kernel kernel;
};

TEST(CfsForkTest, IdleMachineKeepsChildNearParent) {
  CfsRig rig;
  Task child;
  const int cpu = rig.cfs.SelectCpuFork(child, 2);
  // Everything idle: the local group wins at every level, and the numerical
  // scan starts at the parent.
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), rig.kernel.topology().SocketOf(2));
}

TEST(CfsForkTest, AvoidsBusyParentCpu) {
  CfsRig rig;
  rig.Occupy(2);
  Task child;
  const int cpu = rig.cfs.SelectCpuFork(child, 2);
  EXPECT_NE(cpu, 2);
  EXPECT_TRUE(rig.kernel.CpuIdle(cpu));
}

TEST(CfsForkTest, RecentlyUsedIdleCpuLosesToColdCpu) {
  // The paper's dispersal bias (§2.1): a CPU that just hosted a task carries
  // residual load and loses to a fully idle CPU.
  CfsRig rig;
  ProgramBuilder b("short");
  b.Compute(3e6);
  rig.kernel.SpawnInitial(b.Build(), "short", 0, 1);
  rig.engine.RunUntil(5 * kMillisecond);  // task done; cpu 1 idle but warm
  ASSERT_TRUE(rig.kernel.CpuIdle(1));
  Task child;
  const int cpu = rig.cfs.SelectCpuFork(child, 0);
  EXPECT_NE(cpu, 1);
}

TEST(CfsForkTest, InfluenceOfRecentUseTimesOut) {
  CfsRig rig;
  ProgramBuilder b("short");
  b.Compute(1e6);
  rig.kernel.SpawnInitial(b.Build(), "short", 0, 1);
  // After a long decay the recently-used CPU ties with cold ones and the
  // numerical order from the forking CPU wins again (§5.2 case study).
  rig.engine.RunUntil(300 * kMillisecond);
  Task child;
  const int cpu = rig.cfs.SelectCpuFork(child, 0);
  EXPECT_TRUE(rig.kernel.CpuIdle(cpu));
  EXPECT_LE(cpu, 1);  // back near the start of the socket
}

TEST(CfsForkTest, PrefersIdlerRemoteSocketWhenLocalLoaded) {
  CfsRig rig;
  // Load most of socket 0 (cpus 0..3 and 8..11 are socket 0 in the 2x4x2
  // test topology).
  for (int cpu : {0, 1, 2, 3, 8}) {
    rig.Occupy(cpu);
  }
  Task child;
  const int cpu = rig.cfs.SelectCpuFork(child, 0);
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), 1);
}

TEST(CfsWakeTest, IdlePrevCpuWins) {
  CfsRig rig;
  Task t;
  t.prev_cpu = 3;
  WakeContext ctx;
  ctx.waker_cpu = 0;
  EXPECT_EQ(rig.cfs.SelectCpuWake(t, ctx), 3);
}

TEST(CfsWakeTest, BusyPrevFallsBackToIdleCoreOnSameDie) {
  CfsRig rig;
  rig.Occupy(3);
  Task t;
  t.prev_cpu = 3;
  WakeContext ctx;
  ctx.waker_cpu = 3;
  const int cpu = rig.cfs.SelectCpuWake(t, ctx);
  EXPECT_NE(cpu, 3);
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), rig.kernel.topology().SocketOf(3));
  EXPECT_TRUE(rig.kernel.CpuIdle(cpu));
}

TEST(CfsWakeTest, SyncWakeupPrefersWakerWhenItWillBlock) {
  CfsRig rig;
  rig.Occupy(3);  // prev busy
  Task t;
  t.prev_cpu = 3;
  // Waker on the other socket, about to block, only itself running.
  Task* waker = rig.Occupy(4);
  (void)waker;
  WakeContext ctx;
  ctx.waker_cpu = 4;
  ctx.sync = true;
  const int cpu = rig.cfs.SelectCpuWake(t, ctx);
  // Target becomes the waker; its die provides the idle CPU.
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), 1);
}

TEST(CfsWakeTest, NotWorkConservingAcrossDies) {
  CfsRig rig;
  // Fill the whole of socket 0.
  for (int cpu : rig.kernel.topology().CpusOnSocket(0)) {
    rig.Occupy(cpu);
  }
  Task t;
  t.prev_cpu = 0;
  WakeContext ctx;
  ctx.waker_cpu = 0;
  const int cpu = rig.cfs.WakePath(t, ctx, /*work_conserving_ext=*/false);
  // Plain CFS stays on the full die even though socket 1 is idle (§2.1).
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), 0);
}

TEST(CfsWakeTest, WorkConservingExtensionFindsOtherDie) {
  CfsRig rig;
  for (int cpu : rig.kernel.topology().CpusOnSocket(0)) {
    rig.Occupy(cpu);
  }
  Task t;
  t.prev_cpu = 0;
  WakeContext ctx;
  ctx.waker_cpu = 0;
  const int cpu = rig.cfs.WakePath(t, ctx, /*work_conserving_ext=*/true);
  // Nest's §3.4 extension scans the other dies.
  EXPECT_EQ(rig.kernel.topology().SocketOf(cpu), 1);
  EXPECT_TRUE(rig.kernel.CpuIdle(cpu));
}

TEST(CfsWakeTest, PrefersFullyIdlePhysicalCore) {
  CfsRig rig;
  // Make cpu 1 busy so physical core 1 is half-busy; its sibling (9) is idle.
  rig.Occupy(1);
  rig.Occupy(2);  // prev will be busy
  Task t;
  t.prev_cpu = 2;
  WakeContext ctx;
  ctx.waker_cpu = 2;
  const int cpu = rig.cfs.SelectCpuWake(t, ctx);
  // Must pick a CPU whose sibling is idle too (cpu 3 or 0), not cpu 9 whose
  // sibling is busy.
  const int sibling = rig.kernel.topology().SiblingOf(cpu);
  EXPECT_TRUE(rig.kernel.CpuIdle(cpu));
  EXPECT_TRUE(rig.kernel.CpuIdle(sibling));
}

TEST(CfsWakeTest, FallsBackToTargetWhenDieFull) {
  CfsRig rig;
  for (int cpu : rig.kernel.topology().CpusOnSocket(0)) {
    rig.Occupy(cpu);
  }
  Task t;
  t.prev_cpu = 1;
  WakeContext ctx;
  ctx.waker_cpu = 1;
  const int cpu = rig.cfs.WakePath(t, ctx, false);
  EXPECT_EQ(cpu, 1);  // queues behind prev
}

}  // namespace
}  // namespace nestsim
