#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// A stub policy that always selects a scripted CPU; used to force placements.
class PinnedPolicy : public SchedulerPolicy {
 public:
  explicit PinnedPolicy(int cpu, bool reservation = false, int spin_ticks = 0)
      : cpu_(cpu), reservation_(reservation), spin_ticks_(spin_ticks) {}

  const char* name() const override { return "pinned"; }
  int SelectCpuFork(Task&, int) override { return cpu_; }
  int SelectCpuWake(Task&, const WakeContext&) override { return cpu_; }
  int IdleSpinTicks(int) override { return spin_ticks_; }
  bool UsesPlacementReservation() const override { return reservation_; }

  void set_cpu(int cpu) { cpu_ = cpu; }

 private:
  int cpu_;
  bool reservation_;
  int spin_ticks_;
};

// Common rig: fixed 1 GHz machine, so work W (GHz-ns) takes exactly W ns.
struct Rig {
  explicit Rig(MachineSpec spec = FixedFreqMachine(),
               Kernel::Params params = ZeroCostParams(),
               std::unique_ptr<SchedulerPolicy> custom_policy = nullptr)
      : hw(&engine, spec),
        policy(custom_policy != nullptr ? std::move(custom_policy)
                                        : std::make_unique<CfsPolicy>()),
        kernel(&engine, &hw, policy.get(), &governor, params) {
    kernel.Start();
  }

  static Kernel::Params ZeroCostParams() {
    Kernel::Params p;
    p.placement_latency = 0;
    p.fork_cost_work = 0;
    p.send_cost_work = 0;
    p.recv_cost_work = 0;
    p.migration_cost_work = 0;
    p.cross_die_migration_cost_work = 0;
    return p;
  }

  // Pumps until no workload task is alive (hardware events keep the queue
  // non-empty forever).
  void RunToCompletion(SimDuration limit = 10 * kSecond) {
    while (kernel.live_tasks() > 0 && engine.Now() < limit) {
      ASSERT_TRUE(engine.Step());
    }
    ASSERT_EQ(kernel.live_tasks(), 0) << "workload did not finish";
  }

  Engine engine;
  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  PerformanceGovernor governor;
  Kernel kernel;
};

TEST(KernelTest, SingleComputeTaskRunsExactly) {
  Rig rig;
  ProgramBuilder b("t");
  b.Compute(2e6);  // 2 ms at 1 GHz
  Task* task = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.RunToCompletion();
  EXPECT_EQ(task->exited_at, 2 * kMillisecond);
  EXPECT_EQ(task->total_runtime, 2 * kMillisecond);
}

TEST(KernelTest, TaskStateTransitions) {
  Rig rig;
  ProgramBuilder b("t");
  b.Compute(1e6).Sleep(Milliseconds(1)).Compute(1e6);
  Task* task = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  EXPECT_EQ(task->state, TaskState::kRunning);
  rig.engine.RunUntil(MillisecondsF(1.5));
  EXPECT_EQ(task->state, TaskState::kBlocked);
  EXPECT_EQ(task->block_reason, BlockReason::kSleep);
  rig.RunToCompletion();
  EXPECT_EQ(task->state, TaskState::kDead);
  EXPECT_EQ(task->exited_at, 3 * kMillisecond);
}

TEST(KernelTest, ForkAndJoinCompletes) {
  Rig rig;
  ProgramBuilder child("c");
  child.Compute(3e6);
  ProgramBuilder parent("p");
  parent.Compute(1e6).Fork(child.Build()).JoinChildren().Compute(1e6);
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  // Parent: 1 ms, fork at t=1ms, child runs 3 ms in parallel, parent joins
  // at 4 ms, final 1 ms -> 5 ms total.
  EXPECT_EQ(rig.engine.Now(), 5 * kMillisecond);
  EXPECT_EQ(rig.kernel.tasks().size(), 2u);
}

TEST(KernelTest, ForkCostIsCharged) {
  Kernel::Params params = Rig::ZeroCostParams();
  params.fork_cost_work = 50e3;  // 50 us at 1 GHz
  Rig rig(FixedFreqMachine(), params);
  ProgramBuilder child("c");
  child.Compute(1e6);
  ProgramBuilder parent("p");
  parent.Fork(child.Build()).JoinChildren();
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  // fork cost 50 us + child 1 ms.
  EXPECT_EQ(rig.engine.Now(), Microseconds(1050));
}

TEST(KernelTest, PlacementLatencyDelaysEnqueue) {
  Kernel::Params params = Rig::ZeroCostParams();
  params.placement_latency = 5 * kMicrosecond;
  Rig rig(FixedFreqMachine(), params);
  ProgramBuilder child("c");
  child.Compute(1e6);
  ProgramBuilder parent("p");
  parent.Fork(child.Build()).JoinChildren();
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  // Two placements pay the latency: the fork and the parent's join wakeup.
  EXPECT_EQ(rig.engine.Now(), Microseconds(1010));
}

TEST(KernelTest, SleepWakesAfterDuration) {
  Rig rig;
  ProgramBuilder b("t");
  b.Sleep(Milliseconds(7)).Compute(1e6);
  Task* task = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.RunToCompletion();
  EXPECT_EQ(task->exited_at, 8 * kMillisecond);
  EXPECT_EQ(task->wakeups, 1);
}

TEST(KernelTest, ExecutionHistoryTracksLastTwoStints) {
  Rig rig;
  ProgramBuilder b("t");
  b.Compute(1e6).Sleep(Milliseconds(1)).Compute(1e6).Sleep(Milliseconds(1)).Compute(1e6);
  Task* task = rig.kernel.SpawnInitial(b.Build(), "t", 0, 2);
  rig.RunToCompletion();
  // Ran on cpu 2 every time (prev == prev_prev: "attached", paper §3.3).
  EXPECT_EQ(task->prev_cpu, 2);
  EXPECT_EQ(task->prev_prev_cpu, 2);
}

TEST(KernelTest, TwoCpuBoundTasksShareOneCpuFairly) {
  // Mono-CPU machine: both tasks must interleave by tick preemption.
  Rig rig(FixedFreqMachine(1, 1, 1));
  for (int i = 0; i < 2; ++i) {
    ProgramBuilder b("t");
    b.Compute(20e6);  // 20 ms each
    rig.kernel.SpawnInitial(b.Build(), "t" + std::to_string(i), 0, 0);
  }
  rig.RunToCompletion();
  EXPECT_EQ(rig.engine.Now(), 40 * kMillisecond);
  // Fairness: both ran, and neither finished absurdly early.
  const auto& tasks = rig.kernel.tasks();
  EXPECT_GT(tasks[0]->exited_at, 30 * kMillisecond);
  EXPECT_GT(tasks[1]->exited_at, 30 * kMillisecond);
  EXPECT_GT(rig.kernel.context_switches(), 4u);
}

TEST(KernelTest, WakeupPreemptsLongRunner) {
  Rig rig(FixedFreqMachine(1, 1, 1));
  ProgramBuilder hog("hog");
  hog.Compute(50e6);
  ProgramBuilder sleeper("sleeper");
  sleeper.Sleep(Milliseconds(10)).Compute(1e6);
  rig.kernel.SpawnInitial(hog.Build(), "hog", 0, 0);
  Task* s = rig.kernel.SpawnInitial(sleeper.Build(), "sleeper", 0, 0);
  rig.RunToCompletion();
  // The sleeper woke at 10 ms with a vruntime credit and must have finished
  // long before the hog's 51 ms completion.
  EXPECT_LT(s->exited_at, 20 * kMillisecond);
}

TEST(KernelTest, BarrierReleasesAllParties) {
  Rig rig;
  rig.kernel.CreateBarrier(1, 3);
  ProgramBuilder b("w");
  b.Compute(1e6).Barrier(1).Compute(1e6);
  for (int i = 0; i < 3; ++i) {
    rig.kernel.SpawnInitial(b.Build(), "w" + std::to_string(i), 0, i);
  }
  rig.RunToCompletion();
  EXPECT_EQ(rig.engine.Now(), 2 * kMillisecond);
}

TEST(KernelTest, BarrierIsCyclic) {
  Rig rig;
  rig.kernel.CreateBarrier(1, 2);
  ProgramBuilder b("w");
  b.Loop(5).Compute(1e6).Barrier(1).EndLoop();
  rig.kernel.SpawnInitial(b.Build(), "a", 0, 0);
  rig.kernel.SpawnInitial(b.Build(), "b", 0, 1);
  rig.RunToCompletion();
  EXPECT_EQ(rig.engine.Now(), 5 * kMillisecond);
}

TEST(KernelTest, ChannelHandoffWakesReceiver) {
  Rig rig;
  ProgramBuilder receiver("r");
  receiver.Recv(9).Compute(1e6);
  ProgramBuilder sender("s");
  sender.Compute(2e6).Send(9);
  Task* r = rig.kernel.SpawnInitial(receiver.Build(), "r", 0, 0);
  rig.kernel.SpawnInitial(sender.Build(), "s", 0, 1);
  rig.RunToCompletion();
  // Receiver blocked immediately, woke at t=2ms, computed 1ms.
  EXPECT_EQ(r->exited_at, 3 * kMillisecond);
}

TEST(KernelTest, ChannelBuffersMessages) {
  Rig rig;
  ProgramBuilder sender("s");
  sender.Send(9).Send(9);
  ProgramBuilder receiver("r");
  receiver.Sleep(Milliseconds(5)).Recv(9).Recv(9).Compute(1e6);
  Task* r = rig.kernel.SpawnInitial(receiver.Build(), "r", 0, 0);
  rig.kernel.SpawnInitial(sender.Build(), "s", 0, 1);
  rig.RunToCompletion();
  // Both messages were pending; no blocking on recv.
  EXPECT_EQ(r->exited_at, 6 * kMillisecond);
}

TEST(KernelTest, JoinThresholdReapsBatchOnly) {
  Rig rig;
  ProgramBuilder service("svc");
  service.Sleep(Milliseconds(50));
  ProgramBuilder batch("batch");
  batch.Compute(1e6);
  ProgramBuilder parent("p");
  parent.Fork(service.Build()).Fork(batch.Build()).JoinChildren(1).Compute(1e6);
  Task* p = rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  // Parent resumed when the batch child (1 ms) exited, not the 50 ms service.
  EXPECT_EQ(p->exited_at, 2 * kMillisecond);
  EXPECT_EQ(rig.engine.Now(), 50 * kMillisecond);
}

TEST(KernelTest, ExitingChildWakesJoiningParent) {
  Rig rig;
  ProgramBuilder child("c");
  child.Compute(4e6);
  ProgramBuilder parent("p");
  parent.Fork(child.Build()).JoinChildren();
  Task* p = rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.engine.RunUntil(2 * kMillisecond);
  EXPECT_EQ(p->state, TaskState::kBlocked);
  EXPECT_EQ(p->block_reason, BlockReason::kJoin);
  rig.RunToCompletion();
  EXPECT_EQ(p->state, TaskState::kDead);
}

TEST(KernelTest, RunnableCountTracksLifecycle) {
  Rig rig;
  EXPECT_EQ(rig.kernel.runnable_tasks(), 0);
  ProgramBuilder b("t");
  b.Compute(1e6).Sleep(Milliseconds(2)).Compute(1e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  EXPECT_EQ(rig.kernel.runnable_tasks(), 1);
  rig.engine.RunUntil(MillisecondsF(1.5));  // sleeping
  EXPECT_EQ(rig.kernel.runnable_tasks(), 0);
  rig.engine.RunUntil(MillisecondsF(3.5));  // woke, computing
  EXPECT_EQ(rig.kernel.runnable_tasks(), 1);
  rig.RunToCompletion();
  EXPECT_EQ(rig.kernel.runnable_tasks(), 0);
}

TEST(KernelTest, OverloadedQueueDrainsViaLoadBalancing) {
  // Pin all placements to cpu 0, then let the balancer spread them.
  auto policy = std::make_unique<PinnedPolicy>(0);
  Rig rig(FixedFreqMachine(1, 4, 1), Rig::ZeroCostParams(), std::move(policy));
  ProgramBuilder worker("w");
  worker.Compute(10e6);
  ProgramBuilder parent("p");
  for (int i = 0; i < 3; ++i) {
    parent.Fork(worker.Build());
  }
  parent.JoinChildren();
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  // Without balancing this serialises on cpu 0 (~30 ms); stealing should
  // bring it close to the 10 ms parallel optimum.
  EXPECT_LT(rig.engine.Now(), 16 * kMillisecond);
  EXPECT_GT(rig.kernel.total_migrations(), 0u);
}

TEST(KernelTest, NoBalancingKeepsOverloadSerial) {
  auto policy = std::make_unique<PinnedPolicy>(0);
  Kernel::Params params = Rig::ZeroCostParams();
  params.enable_newidle_balance = false;
  params.enable_periodic_balance = false;
  Rig rig(FixedFreqMachine(1, 4, 1), params, std::move(policy));
  ProgramBuilder worker("w");
  worker.Compute(10e6);
  ProgramBuilder parent("p");
  for (int i = 0; i < 3; ++i) {
    parent.Fork(worker.Build());
  }
  parent.JoinChildren();
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.RunToCompletion();
  EXPECT_GE(rig.engine.Now(), 30 * kMillisecond);
}

TEST(KernelTest, IdleSpinKeepsHardwareBusy) {
  auto policy = std::make_unique<PinnedPolicy>(0, /*reservation=*/false, /*spin_ticks=*/2);
  Rig rig(FixedFreqMachine(1, 2, 2), Rig::ZeroCostParams(), std::move(policy));
  ProgramBuilder b("t");
  b.Compute(1e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.engine.RunUntil(2 * kMillisecond);  // task done at 1 ms, spin active
  EXPECT_TRUE(rig.kernel.CpuIdle(0));
  EXPECT_TRUE(rig.hw.ThreadBusy(0));  // warm spin
  rig.engine.RunUntil(12 * kMillisecond);  // spin (8 ms) expired
  EXPECT_FALSE(rig.hw.ThreadBusy(0));
}

TEST(KernelTest, SpinStopsWhenSiblingGetsTask) {
  auto owned = std::make_unique<PinnedPolicy>(0, false, /*spin_ticks=*/10);
  PinnedPolicy* policy = owned.get();
  Rig rig(FixedFreqMachine(1, 2, 2), Rig::ZeroCostParams(), std::move(owned));
  ProgramBuilder b("t");
  b.Compute(1e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.engine.RunUntil(2 * kMillisecond);
  ASSERT_TRUE(rig.hw.ThreadBusy(0));  // spinning
  // Start a task on the SMT sibling of cpu 0.
  const int sibling = rig.kernel.topology().SiblingOf(0);
  policy->set_cpu(sibling);
  ProgramBuilder b2("t2");
  b2.Compute(1e6);
  rig.kernel.SpawnInitial(b2.Build(), "t2", 0, sibling);
  rig.engine.RunUntil(rig.engine.Now() + 100 * kMicrosecond);
  // The spin must have yielded to the sibling (paper §3.2).
  EXPECT_FALSE(rig.hw.ThreadBusy(0));
  EXPECT_TRUE(rig.hw.ThreadBusy(sibling));
}

TEST(KernelTest, ClaimedCpuVisibleThroughKernel) {
  Rig rig;
  EXPECT_TRUE(rig.kernel.CpuIdleUnclaimed(3));
  EXPECT_TRUE(rig.kernel.TryClaimCpu(3));
  EXPECT_FALSE(rig.kernel.CpuIdleUnclaimed(3));
  EXPECT_FALSE(rig.kernel.TryClaimCpu(3));
  rig.kernel.rq(3).ClearClaim();
  EXPECT_TRUE(rig.kernel.CpuIdleUnclaimed(3));
}

TEST(KernelTest, PlacementCollisionWithoutReservation) {
  // Both tasks select cpu 0 inside the placement window: the second must
  // queue behind the first (the §3.4 collision).
  auto policy = std::make_unique<PinnedPolicy>(0, /*reservation=*/false);
  Kernel::Params params = Rig::ZeroCostParams();
  params.placement_latency = 10 * kMicrosecond;
  Rig rig(FixedFreqMachine(1, 4, 1), params, std::move(policy));
  ProgramBuilder w("w");
  w.Compute(5e6);
  ProgramBuilder parent("p");
  parent.Fork(w.Build()).Fork(w.Build()).Compute(20e6);
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 1);
  rig.engine.RunUntil(1 * kMillisecond);
  // Before any balancing tick, cpu 0 has one running and one queued.
  EXPECT_EQ(rig.kernel.rq(0).NrRunning(), 2);
}

TEST(KernelTest, MigrateQueuedMovesTaskAndKickWorks) {
  auto policy = std::make_unique<PinnedPolicy>(0);
  Kernel::Params params = Rig::ZeroCostParams();
  params.enable_newidle_balance = false;
  params.enable_periodic_balance = false;
  Rig rig(FixedFreqMachine(1, 2, 1), params, std::move(policy));
  ProgramBuilder w("w");
  w.Compute(10e6);
  ProgramBuilder parent("p");
  parent.Fork(w.Build()).Compute(30e6);
  rig.kernel.SpawnInitial(parent.Build(), "p", 0, 0);
  rig.engine.RunUntil(1 * kMillisecond);
  Task* queued = rig.kernel.rq(0).Leftmost();
  ASSERT_NE(queued, nullptr);
  rig.kernel.MigrateQueued(queued, 1);
  EXPECT_EQ(queued->cpu, 1);
  EXPECT_TRUE(rig.kernel.rq(1).Queued(queued));
  rig.kernel.KickIfIdle(1);
  EXPECT_EQ(rig.kernel.rq(1).curr(), queued);
}

TEST(KernelTest, SmtSharingSlowsBothThreads) {
  MachineSpec spec = FixedFreqMachine(1, 1, 2, 1.0);
  spec.smt_throughput = 0.5;
  auto policy = std::make_unique<PinnedPolicy>(0);
  Rig rig(spec, Rig::ZeroCostParams(), std::move(policy));
  ProgramBuilder b("t");
  b.Compute(10e6);
  rig.kernel.SpawnInitial(b.Build(), "a", 0, 0);
  rig.kernel.SpawnInitial(b.Build(), "b", 0, 1);  // the SMT sibling
  rig.RunToCompletion();
  // Both threads at half speed: 10 ms of work takes 20 ms.
  EXPECT_EQ(rig.engine.Now(), 20 * kMillisecond);
}

TEST(KernelTest, LiveTasksPerTag) {
  Rig rig;
  ProgramBuilder b("t");
  b.Sleep(Milliseconds(5));
  rig.kernel.SpawnInitial(b.Build(), "a", /*tag=*/1, 0);
  rig.kernel.SpawnInitial(b.Build(), "b", /*tag=*/2, 1);
  EXPECT_EQ(rig.kernel.live_tasks_for_tag(1), 1);
  EXPECT_EQ(rig.kernel.live_tasks_for_tag(2), 1);
  EXPECT_EQ(rig.kernel.live_tasks_for_tag(3), 0);
  rig.RunToCompletion();
  EXPECT_EQ(rig.kernel.live_tasks_for_tag(1), 0);
}

TEST(KernelTest, RootCpuIsFirstSpawnCpu) {
  Rig rig;
  EXPECT_EQ(rig.kernel.root_cpu(), -1);
  ProgramBuilder b("t");
  b.Compute(1e6);
  rig.kernel.SpawnInitial(b.Build(), "t", 0, 5);
  EXPECT_EQ(rig.kernel.root_cpu(), 5);
}

TEST(KernelTest, EmptyLoopBodySkipsCleanly) {
  Rig rig;
  ProgramBuilder b("t");
  b.Loop(0).Compute(1e6).EndLoop().Compute(2e6);
  Task* t = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.RunToCompletion();
  EXPECT_EQ(t->exited_at, 2 * kMillisecond);
}

TEST(KernelTest, NestedLoopsExecuteFully) {
  Rig rig;
  ProgramBuilder b("t");
  b.Loop(3).Loop(2).Compute(1e6).EndLoop().EndLoop();
  Task* t = rig.kernel.SpawnInitial(b.Build(), "t", 0, 0);
  rig.RunToCompletion();
  EXPECT_EQ(t->exited_at, 6 * kMillisecond);
}

}  // namespace
}  // namespace nestsim
