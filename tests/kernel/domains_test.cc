#include "src/kernel/domains.h"

#include <gtest/gtest.h>

#include <set>

#include "src/hw/machine_spec.h"

namespace nestsim {
namespace {

TEST(DomainTreeTest, MultiSocketTopIsNuma) {
  Topology topo(2, 4, 2);
  DomainTree tree(topo);
  EXPECT_EQ(tree.Top().level, DomainLevel::kNuma);
  EXPECT_EQ(tree.Top().groups.size(), 2u);  // one group per socket
  EXPECT_EQ(tree.Top().span.size(), 16u);
}

TEST(DomainTreeTest, MonoSocketTopIsDie) {
  Topology topo(1, 4, 2);
  DomainTree tree(topo);
  EXPECT_EQ(tree.Top().level, DomainLevel::kDie);
  EXPECT_EQ(tree.DomainFor(0, DomainLevel::kNuma), nullptr);
}

TEST(DomainTreeTest, DieGroupsArePhysicalCores) {
  Topology topo(2, 4, 2);
  DomainTree tree(topo);
  const SchedDomain* die = tree.DomainFor(0, DomainLevel::kDie);
  ASSERT_NE(die, nullptr);
  EXPECT_EQ(die->groups.size(), 4u);
  for (const SchedGroup& group : die->groups) {
    EXPECT_EQ(group.cpus.size(), 2u);  // thread pair
    EXPECT_EQ(topo.PhysCoreOf(group.cpus[0]), topo.PhysCoreOf(group.cpus[1]));
  }
}

TEST(DomainTreeTest, SmtGroupsAreSingleCpus) {
  Topology topo(2, 4, 2);
  DomainTree tree(topo);
  const SchedDomain* smt = tree.DomainFor(3, DomainLevel::kSmt);
  ASSERT_NE(smt, nullptr);
  EXPECT_EQ(smt->span.size(), 2u);
  EXPECT_EQ(smt->groups.size(), 2u);
  for (const SchedGroup& group : smt->groups) {
    EXPECT_EQ(group.cpus.size(), 1u);
  }
}

TEST(DomainTreeTest, DomainForMatchesCpu) {
  Topology topo(2, 4, 2);
  DomainTree tree(topo);
  for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
    const SchedDomain* die = tree.DomainFor(cpu, DomainLevel::kDie);
    ASSERT_NE(die, nullptr);
    EXPECT_NE(std::find(die->span.begin(), die->span.end(), cpu), die->span.end());
    const SchedDomain* smt = tree.DomainFor(cpu, DomainLevel::kSmt);
    ASSERT_NE(smt, nullptr);
    EXPECT_NE(std::find(smt->span.begin(), smt->span.end(), cpu), smt->span.end());
  }
}

TEST(DomainTreeTest, ChildContainingDescendsLevels) {
  Topology topo(2, 4, 2);
  DomainTree tree(topo);
  const SchedDomain& top = tree.Top();
  const SchedDomain* die = tree.ChildContaining(top, 5);
  ASSERT_NE(die, nullptr);
  EXPECT_EQ(die->level, DomainLevel::kDie);
  const SchedDomain* smt = tree.ChildContaining(*die, 5);
  ASSERT_NE(smt, nullptr);
  EXPECT_EQ(smt->level, DomainLevel::kSmt);
  EXPECT_EQ(tree.ChildContaining(*smt, 5), nullptr);
}

class DomainMachineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DomainMachineTest, GroupsPartitionEachDomainSpan) {
  const MachineSpec& spec = MachineByName(GetParam());
  Topology topo(spec.num_sockets, spec.physical_cores_per_socket, spec.threads_per_core);
  DomainTree tree(topo);
  for (const SchedDomain& domain : tree.all()) {
    std::set<int> covered;
    for (const SchedGroup& group : domain.groups) {
      for (int cpu : group.cpus) {
        EXPECT_TRUE(covered.insert(cpu).second) << "cpu " << cpu << " in two groups";
      }
    }
    EXPECT_EQ(covered.size(), domain.span.size());
    for (int cpu : domain.span) {
      EXPECT_TRUE(covered.count(cpu));
    }
  }
}

std::vector<std::string> AllNames() {
  std::vector<std::string> names;
  for (const MachineSpec& m : AllMachines()) {
    names.push_back(m.name);
  }
  return names;
}

std::string ParamName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, DomainMachineTest, ::testing::ValuesIn(AllNames()),
                         ParamName);

}  // namespace
}  // namespace nestsim
