#include "src/kernel/pelt.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(PeltTest, StartsAtZero) {
  PeltSignal signal;
  EXPECT_DOUBLE_EQ(signal.raw(), 0.0);
  EXPECT_DOUBLE_EQ(signal.ValueAt(100 * kMillisecond), 0.0);
}

TEST(PeltTest, SaturatesTowardOneWhenAlwaysActive) {
  PeltSignal signal;
  for (int i = 1; i <= 100; ++i) {
    signal.Update(i * 10 * kMillisecond, 1.0);
  }
  EXPECT_GT(signal.raw(), 0.99);
  EXPECT_LE(signal.raw(), 1.0);
}

TEST(PeltTest, HalfLifeIsRespected) {
  PeltSignal signal;
  signal.Set(0, 1.0);
  EXPECT_NEAR(signal.ValueAt(PeltSignal::kHalfLife), 0.5, 1e-9);
  EXPECT_NEAR(signal.ValueAt(2 * PeltSignal::kHalfLife), 0.25, 1e-9);
}

TEST(PeltTest, UpdateWithInactivityDecays) {
  PeltSignal signal;
  signal.Set(0, 0.8);
  signal.Update(PeltSignal::kHalfLife, 0.0);
  EXPECT_NEAR(signal.raw(), 0.4, 1e-9);
}

TEST(PeltTest, PartialActivityConverges) {
  // Alternating busy/idle in equal shares converges near 0.5.
  PeltSignal signal;
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += kMillisecond;
    signal.Update(t, 1.0);
    t += kMillisecond;
    signal.Update(t, 0.0);
  }
  EXPECT_NEAR(signal.raw(), 0.5, 0.03);
}

TEST(PeltTest, ZeroElapsedIsNoop) {
  PeltSignal signal;
  signal.Set(10, 0.6);
  signal.Update(10, 1.0);
  EXPECT_DOUBLE_EQ(signal.raw(), 0.6);
}

TEST(PeltTest, ValueAtDoesNotMutate) {
  PeltSignal signal;
  signal.Set(0, 1.0);
  (void)signal.ValueAt(64 * kMillisecond);
  EXPECT_DOUBLE_EQ(signal.raw(), 1.0);
  EXPECT_EQ(signal.last_update(), 0);
}

TEST(PeltTest, SetOverridesState) {
  PeltSignal signal;
  signal.Set(5 * kMillisecond, 0.42);
  EXPECT_DOUBLE_EQ(signal.raw(), 0.42);
  EXPECT_EQ(signal.last_update(), 5 * kMillisecond);
}

}  // namespace
}  // namespace nestsim
