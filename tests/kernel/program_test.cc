#include "src/kernel/program.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(ProgramBuilderTest, EmptyProgram) {
  ProgramPtr p = ProgramBuilder("empty").Build();
  EXPECT_EQ(p->name, "empty");
  EXPECT_TRUE(p->ops.empty());
}

TEST(ProgramBuilderTest, ComputeWorkUnits) {
  ProgramBuilder b("c");
  b.Compute(5e6);
  ProgramPtr p = b.Build();
  ASSERT_EQ(p->ops.size(), 1u);
  EXPECT_EQ(p->ops[0].kind, OpKind::kCompute);
  EXPECT_DOUBLE_EQ(p->ops[0].work, 5e6);
}

TEST(ProgramBuilderTest, ZeroComputeIsDropped) {
  ProgramBuilder b("c");
  b.Compute(0.0).ComputeMs(0.0);
  EXPECT_TRUE(b.Build()->ops.empty());
}

TEST(ProgramBuilderTest, ComputeMsAtScalesWithFrequency) {
  ProgramBuilder b("c");
  b.ComputeMsAt(2.0, 3.0);  // 2 ms at 3 GHz = 6e6 GHz-ns
  EXPECT_DOUBLE_EQ(b.Build()->ops[0].work, 6e6);
}

TEST(ProgramBuilderTest, ComputeMsUsesCalibrationFrequency) {
  ProgramBuilder b("c");
  b.ComputeMs(1.0);
  EXPECT_DOUBLE_EQ(b.Build()->ops[0].work, 1e6 * ProgramBuilder::kCalibrationGhz);
}

TEST(ProgramBuilderTest, FluentChainBuildsAllOps) {
  ProgramBuilder child("child");
  child.ComputeMs(1.0);
  ProgramBuilder b("main");
  b.ComputeMs(0.5)
      .Sleep(Milliseconds(2))
      .Fork(child.Build())
      .JoinChildren()
      .Barrier(3)
      .Send(4)
      .Recv(4)
      .Exit();
  ProgramPtr p = b.Build();
  ASSERT_EQ(p->ops.size(), 8u);
  EXPECT_EQ(p->ops[0].kind, OpKind::kCompute);
  EXPECT_EQ(p->ops[1].kind, OpKind::kSleep);
  EXPECT_EQ(p->ops[1].duration, Milliseconds(2));
  EXPECT_EQ(p->ops[2].kind, OpKind::kFork);
  ASSERT_NE(p->ops[2].child, nullptr);
  EXPECT_EQ(p->ops[3].kind, OpKind::kJoinChildren);
  EXPECT_EQ(p->ops[3].id, 0);
  EXPECT_EQ(p->ops[4].kind, OpKind::kBarrier);
  EXPECT_EQ(p->ops[4].id, 3);
  EXPECT_EQ(p->ops[5].kind, OpKind::kSend);
  EXPECT_EQ(p->ops[6].kind, OpKind::kRecv);
  EXPECT_EQ(p->ops[7].kind, OpKind::kExit);
}

TEST(ProgramBuilderTest, JoinThreshold) {
  ProgramBuilder b("j");
  b.JoinChildren(3);
  EXPECT_EQ(b.Build()->ops[0].id, 3);
}

TEST(ProgramBuilderTest, LoopsBalance) {
  ProgramBuilder b("loop");
  b.Loop(10).ComputeMs(1.0).EndLoop();
  ProgramPtr p = b.Build();
  ASSERT_EQ(p->ops.size(), 3u);
  EXPECT_EQ(p->ops[0].kind, OpKind::kLoopBegin);
  EXPECT_EQ(p->ops[0].count, 10);
  EXPECT_EQ(p->ops[2].kind, OpKind::kLoopEnd);
}

TEST(ProgramBuilderDeathTest, UnbalancedLoopAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder b("bad");
        b.Loop(2).ComputeMs(1.0);
        b.Build();
      },
      "unbalanced Loop");
}

TEST(ProgramBuilderDeathTest, EndLoopWithoutLoopAborts) {
  EXPECT_DEATH(
      {
        ProgramBuilder b("bad");
        b.EndLoop();
      },
      "EndLoop without Loop");
}

TEST(TotalWorkTest, SumsComputeOps) {
  ProgramBuilder b("w");
  b.Compute(100).Sleep(kMillisecond).Compute(200);
  EXPECT_DOUBLE_EQ(TotalWork(*b.Build()), 300.0);
}

TEST(TotalWorkTest, LoopsMultiply) {
  ProgramBuilder b("w");
  b.Loop(5).Compute(10).EndLoop();
  EXPECT_DOUBLE_EQ(TotalWork(*b.Build()), 50.0);
}

TEST(TotalWorkTest, NestedLoopsMultiply) {
  ProgramBuilder b("w");
  b.Loop(3).Loop(4).Compute(2).EndLoop().Compute(1).EndLoop();
  EXPECT_DOUBLE_EQ(TotalWork(*b.Build()), 3 * (4 * 2 + 1));
}

TEST(TotalWorkTest, DescendsIntoForkedChildren) {
  ProgramBuilder child("child");
  child.Compute(7);
  ProgramBuilder b("w");
  b.Compute(1).Fork(child.Build()).Fork(ProgramBuilder("e").Compute(2).Build());
  EXPECT_DOUBLE_EQ(TotalWork(*b.Build()), 10.0);
}

TEST(TotalWorkTest, ForkInsideLoopMultiplies) {
  ProgramBuilder child("child");
  child.Compute(3);
  ProgramBuilder b("w");
  b.Loop(4).Fork(child.Build()).JoinChildren().EndLoop();
  EXPECT_DOUBLE_EQ(TotalWork(*b.Build()), 12.0);
}

}  // namespace
}  // namespace nestsim
