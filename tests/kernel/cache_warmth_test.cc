// Kernel-level tests of the cache/NUMA warmth model (src/hw/cache_model.h,
// docs/MODEL.md §5): PELT-exact accrual and decay of per-task LLC warmth,
// the cross-die reset + refill charge, the warm/cold counter classification,
// and the guarantee that a disabled model changes nothing.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cfs/cfs_policy.h"
#include "src/governors/governors.h"
#include "src/kernel/kernel.h"
#include "src/nest/nest_cache_policy.h"
#include "src/nest/nest_policy.h"
#include "src/obs/sched_counters.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// A 2-socket, 4-core, SMT-2 machine pinned at exactly 1.0 GHz everywhere:
// 1 GHz-ns of work takes exactly 1 ns, so warmth timestamps and migration
// charges can be asserted in closed form.
struct WarmthRig {
  explicit WarmthRig(SchedulerPolicy* policy, CacheParams cache)
      : hw(&engine, FixedFreqMachine(2, 4, 2)),
        kernel(&engine, &hw, policy, &governor, MakeParams(cache)),
        recorder(&kernel) {
    kernel.AddObserver(&recorder);
    kernel.Start();
  }

  static Kernel::Params MakeParams(CacheParams cache) {
    Kernel::Params params;
    params.cache = cache;
    return params;
  }

  Task* Spawn(ProgramPtr program, int cpu) {
    return kernel.SpawnInitial(std::move(program), "t", 0, cpu);
  }

  Task* Occupy(int cpu) {
    ProgramBuilder b("hog");
    b.Compute(1e12);
    return kernel.SpawnInitial(b.Build(), "hog", 0, cpu);
  }

  Engine engine;
  HardwareModel hw;
  PerformanceGovernor governor;
  Kernel kernel;
  SchedCounterRecorder recorder;
};

double ExpectedAccrual(double active_ms) {
  // PELT with full activity from a cold start: 1 - 2^(-t / half-life).
  return 1.0 - std::exp2(-active_ms / 32.0);
}

TEST(CacheWarmthTest, TrackingRequiresEnabledModelOrPolicyWish) {
  {
    CfsPolicy cfs;
    WarmthRig rig(&cfs, CacheParams{});  // defaults: disabled
    EXPECT_FALSE(rig.kernel.TracksCacheWarmth());
    Task* t = rig.Occupy(0);
    EXPECT_TRUE(t->llc_warmth.empty());
    EXPECT_EQ(rig.kernel.LlcWarmth(*t, 0), 0.0);
  }
  {
    CfsPolicy cfs;
    CacheParams cache;
    cache.migration_cost_work = 1.0;
    WarmthRig rig(&cfs, cache);
    EXPECT_TRUE(rig.kernel.TracksCacheWarmth());
  }
  {
    // The policy's wish alone turns tracking on, even with a neutral model.
    NestCachePolicy nest_cache{NestParams{}, NestCacheParams{}};
    WarmthRig rig(&nest_cache, CacheParams{});
    EXPECT_TRUE(rig.kernel.TracksCacheWarmth());
    Task* t = rig.Occupy(0);
    EXPECT_EQ(t->llc_warmth.size(),
              static_cast<size_t>(rig.kernel.topology().num_sockets()));
  }
}

TEST(CacheWarmthTest, WarmthAccruesWithThePeltHalfLifeWhileRunning) {
  CfsPolicy cfs;
  CacheParams cache;
  cache.warm_speedup = 1.25;
  WarmthRig rig(&cfs, cache);

  ProgramBuilder b("worker");
  b.Compute(1e9);  // runs well past the test horizon
  Task* t = rig.Spawn(b.Build(), 0);

  rig.engine.RunUntil(10 * kMillisecond);
  const double w10 = rig.kernel.LlcWarmth(*t, 0);
  rig.engine.RunUntil(20 * kMillisecond);
  const double w20 = rig.kernel.LlcWarmth(*t, 0);
  rig.engine.RunUntil(46 * kMillisecond);
  const double w46 = rig.kernel.LlcWarmth(*t, 0);

  EXPECT_GT(w10, 0.0);
  EXPECT_GT(w20, w10);
  EXPECT_GT(w46, w20);
  EXPECT_LT(w46, 1.0);

  // Exact closed form: accrual is updated at every 4 ms tick (last at 44 ms)
  // and LlcWarmth decays the remaining 2 ms lazily. PELT's geometric updates
  // compose exactly, so the cadence drops out of the math.
  const double expected = ExpectedAccrual(44.0) * std::exp2(-2.0 / 32.0);
  EXPECT_NEAR(w46, expected, 1e-9);

  // The other socket never saw the task.
  const int other = rig.kernel.topology().CpusOnSocket(1).front();
  EXPECT_EQ(rig.kernel.LlcWarmth(*t, other), 0.0);
}

TEST(CacheWarmthTest, IdleWarmthDecaysWithTheExactHalfLife) {
  CfsPolicy cfs;
  CacheParams cache;
  cache.migration_cost_work = 1e3;  // enables tracking; never triggered here
  WarmthRig rig(&cfs, cache);

  ProgramBuilder b("worker");
  b.Compute(20e6);  // exactly 20 ms at the pinned 1 GHz
  b.SleepMs(200);
  Task* t = rig.Spawn(b.Build(), 0);

  rig.engine.RunUntil(25 * kMillisecond);
  const double w25 = rig.kernel.LlcWarmth(*t, 0);
  EXPECT_NEAR(w25, ExpectedAccrual(20.0) * std::exp2(-5.0 / 32.0), 1e-9);

  // One half-life later the blocked task's warmth has exactly halved.
  rig.engine.RunUntil(57 * kMillisecond);
  const double w57 = rig.kernel.LlcWarmth(*t, 0);
  EXPECT_NEAR(w57 / w25, 0.5, 1e-12);
}

TEST(CacheWarmthTest, CrossDieResumeResetsWarmthAndCountsEvents) {
  // Nest's work-conserving wake path pushes the sleeper across the
  // interconnect once its whole home die is busy — the move the model bills.
  NestPolicy nest;
  CacheParams cache;
  cache.migration_cost_work = 5e6;
  cache.warm_threshold = 0.1;
  WarmthRig rig(&nest, cache);
  const Topology& topo = rig.kernel.topology();

  // The sleeper's first stint (2 ms) ends before the first tick, so it
  // blocks on cpu 0 — recording the stint — rather than getting preempted
  // and stolen while queued (a move with no stint history behind it).
  ProgramBuilder b("sleeper");
  b.Compute(2e6);
  b.SleepMs(50);
  b.Compute(10e6);
  Task* t = rig.Spawn(b.Build(), 0);
  // cpu 0's hog dozes through that first stint, then computes forever; the
  // rest of socket 0 is hogged from the start. At wake time the whole home
  // die is busy and Nest's fallback crosses the interconnect.
  ProgramBuilder hog0("hog");
  hog0.SleepMs(3);
  hog0.Compute(1e12);
  rig.kernel.SpawnInitial(hog0.Build(), "hog", 0, 0);
  for (const int cpu : topo.CpusOnSocket(0)) {
    if (cpu != 0) {
      rig.Occupy(cpu);
    }
  }

  // Run until the sleeper resumes on the remote socket.
  while (t->state != TaskState::kDead &&
         !(t->state == TaskState::kRunning && topo.SocketOf(t->cpu) == 1) &&
         rig.engine.Now() < kSecond) {
    ASSERT_TRUE(rig.engine.Step());
  }
  ASSERT_EQ(t->state, TaskState::kRunning);
  ASSERT_EQ(topo.SocketOf(t->cpu), 1);

  // The lines left on socket 0 are dead: warmth there reset to exactly zero.
  EXPECT_EQ(rig.kernel.LlcWarmth(*t, topo.CpusOnSocket(0).front()), 0.0);

  const SchedCounters& c = rig.recorder.counters();
  EXPECT_GE(c.cache_cross_die_migrations, 1u);
  // Arriving on a socket it never ran on is a cold miss by definition.
  EXPECT_GE(c.cache_cold_misses, 1u);

  // Warmth then accrues on the new home.
  rig.engine.RunUntil(rig.engine.Now() + 4 * kMillisecond);
  EXPECT_GT(rig.kernel.LlcWarmth(*t, t->cpu), 0.0);
}

TEST(CacheWarmthTest, MigrationCostDelaysCompletionByExactlyTheCharge) {
  // Two identical runs differing only in cache.migration_cost_work: the
  // placements are the same (cost is charged after the decision), so the
  // sleeper's exit shifts by exactly cost / 1 GHz.
  auto RunOnce = [](double cost_work) {
    NestPolicy nest;
    CacheParams cache;
    cache.migration_cost_work = cost_work;
    cache.warm_speedup = 1.0;
    WarmthRig rig(&nest, cache);
    const Topology& topo = rig.kernel.topology();
    ProgramBuilder b("sleeper");
    b.Compute(2e6);
    b.SleepMs(50);
    b.Compute(10e6);
    Task* t = rig.Spawn(b.Build(), 0);
    ProgramBuilder hog0("hog");
    hog0.SleepMs(3);
    hog0.Compute(1e12);
    rig.kernel.SpawnInitial(hog0.Build(), "hog", 0, 0);
    for (const int cpu : topo.CpusOnSocket(0)) {
      if (cpu != 0) {
        rig.Occupy(cpu);
      }
    }
    while (t->state != TaskState::kDead && rig.engine.Now() < kSecond) {
      rig.engine.Step();
    }
    EXPECT_EQ(t->state, TaskState::kDead);
    return rig.engine.Now();
  };

  const SimTime base = RunOnce(0.0);
  const SimTime charged = RunOnce(5e6);
  EXPECT_NEAR(static_cast<double>(charged - base), 5e6, 1.0);
}

}  // namespace
}  // namespace nestsim
