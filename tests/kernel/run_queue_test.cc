#include "src/kernel/run_queue.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

Task MakeTask(int tid, double vruntime) {
  Task t;
  t.tid = tid;
  t.vruntime = vruntime;
  return t;
}

TEST(RunQueueTest, StartsIdle) {
  RunQueue rq;
  EXPECT_TRUE(rq.Idle());
  EXPECT_EQ(rq.NrRunning(), 0);
  EXPECT_EQ(rq.Leftmost(), nullptr);
  EXPECT_EQ(rq.Rightmost(), nullptr);
}

TEST(RunQueueTest, LeftmostIsSmallestVruntime) {
  RunQueue rq;
  Task a = MakeTask(1, 30);
  Task b = MakeTask(2, 10);
  Task c = MakeTask(3, 20);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  rq.Enqueue(&c);
  EXPECT_EQ(rq.Leftmost(), &b);
  EXPECT_EQ(rq.Rightmost(), &a);
  EXPECT_EQ(rq.QueuedCount(), 3);
}

TEST(RunQueueTest, TiesBreakByTid) {
  RunQueue rq;
  Task a = MakeTask(2, 10);
  Task b = MakeTask(1, 10);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  EXPECT_EQ(rq.Leftmost(), &b);
}

TEST(RunQueueTest, DequeueRemoves) {
  RunQueue rq;
  Task a = MakeTask(1, 5);
  rq.Enqueue(&a);
  EXPECT_TRUE(rq.Queued(&a));
  rq.Dequeue(&a);
  EXPECT_FALSE(rq.Queued(&a));
  EXPECT_TRUE(rq.Idle());
}

TEST(RunQueueTest, CurrCountsAsRunning) {
  RunQueue rq;
  Task a = MakeTask(1, 5);
  rq.set_curr(&a);
  EXPECT_EQ(rq.NrRunning(), 1);
  EXPECT_FALSE(rq.Idle());
  EXPECT_EQ(rq.QueuedCount(), 0);
}

TEST(RunQueueTest, MinVruntimeIsMonotone) {
  RunQueue rq;
  Task a = MakeTask(1, 100);
  rq.Enqueue(&a);
  const double v1 = rq.min_vruntime();
  rq.Dequeue(&a);
  Task b = MakeTask(2, 50);
  rq.Enqueue(&b);
  // min_vruntime never goes backwards even if a smaller task arrives.
  EXPECT_GE(rq.min_vruntime(), v1);
}

TEST(RunQueueTest, ClaimBlocksSecondClaim) {
  RunQueue rq;
  EXPECT_TRUE(rq.TryClaim(0));
  EXPECT_FALSE(rq.TryClaim(10));
  rq.ClearClaim();
  EXPECT_TRUE(rq.TryClaim(20));
}

TEST(RunQueueTest, ClaimExpires) {
  RunQueue rq;
  EXPECT_TRUE(rq.TryClaim(0));
  // An abandoned claim times out so the CPU is not leaked.
  EXPECT_TRUE(rq.TryClaim(Milliseconds(1)));
}

TEST(RunQueueTest, PlacementLoadDecays) {
  RunQueue rq;
  rq.BumpPlacement(0);
  EXPECT_DOUBLE_EQ(rq.PlacementLoad(0), 1.0);
  const double later = rq.PlacementLoad(10 * kMillisecond);
  EXPECT_NEAR(later, 0.5, 0.01);  // 10 ms half-life
  EXPECT_LT(rq.PlacementLoad(100 * kMillisecond), 0.001);
}

TEST(RunQueueTest, PlacementLoadAccumulates) {
  RunQueue rq;
  rq.BumpPlacement(0);
  rq.BumpPlacement(0);
  EXPECT_DOUBLE_EQ(rq.PlacementLoad(0), 2.0);
}

}  // namespace
}  // namespace nestsim
