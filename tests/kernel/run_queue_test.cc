#include "src/kernel/run_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "src/sim/random.h"

namespace nestsim {
namespace {

Task MakeTask(int tid, double vruntime) {
  Task t;
  t.tid = tid;
  t.vruntime = vruntime;
  return t;
}

TEST(RunQueueTest, StartsIdle) {
  RunQueue rq;
  EXPECT_TRUE(rq.Idle());
  EXPECT_EQ(rq.NrRunning(), 0);
  EXPECT_EQ(rq.Leftmost(), nullptr);
  EXPECT_EQ(rq.Rightmost(), nullptr);
}

TEST(RunQueueTest, LeftmostIsSmallestVruntime) {
  RunQueue rq;
  Task a = MakeTask(1, 30);
  Task b = MakeTask(2, 10);
  Task c = MakeTask(3, 20);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  rq.Enqueue(&c);
  EXPECT_EQ(rq.Leftmost(), &b);
  EXPECT_EQ(rq.Rightmost(), &a);
  EXPECT_EQ(rq.QueuedCount(), 3);
}

TEST(RunQueueTest, TiesBreakByTid) {
  RunQueue rq;
  Task a = MakeTask(2, 10);
  Task b = MakeTask(1, 10);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  EXPECT_EQ(rq.Leftmost(), &b);
}

TEST(RunQueueTest, DequeueRemoves) {
  RunQueue rq;
  Task a = MakeTask(1, 5);
  rq.Enqueue(&a);
  EXPECT_TRUE(rq.Queued(&a));
  rq.Dequeue(&a);
  EXPECT_FALSE(rq.Queued(&a));
  EXPECT_TRUE(rq.Idle());
}

TEST(RunQueueTest, CurrCountsAsRunning) {
  RunQueue rq;
  Task a = MakeTask(1, 5);
  rq.set_curr(&a);
  EXPECT_EQ(rq.NrRunning(), 1);
  EXPECT_FALSE(rq.Idle());
  EXPECT_EQ(rq.QueuedCount(), 0);
}

TEST(RunQueueTest, MinVruntimeIsMonotone) {
  RunQueue rq;
  Task a = MakeTask(1, 100);
  rq.Enqueue(&a);
  const double v1 = rq.min_vruntime();
  rq.Dequeue(&a);
  Task b = MakeTask(2, 50);
  rq.Enqueue(&b);
  // min_vruntime never goes backwards even if a smaller task arrives.
  EXPECT_GE(rq.min_vruntime(), v1);
}

TEST(RunQueueTest, ClaimBlocksSecondClaim) {
  RunQueue rq;
  EXPECT_TRUE(rq.TryClaim(0));
  EXPECT_FALSE(rq.TryClaim(10));
  rq.ClearClaim();
  EXPECT_TRUE(rq.TryClaim(20));
}

TEST(RunQueueTest, ClaimExpires) {
  RunQueue rq;
  EXPECT_TRUE(rq.TryClaim(0));
  // An abandoned claim times out so the CPU is not leaked.
  EXPECT_TRUE(rq.TryClaim(Milliseconds(1)));
}

TEST(RunQueueTest, PlacementLoadDecays) {
  RunQueue rq;
  rq.BumpPlacement(0);
  EXPECT_DOUBLE_EQ(rq.PlacementLoad(0), 1.0);
  const double later = rq.PlacementLoad(10 * kMillisecond);
  EXPECT_NEAR(later, 0.5, 0.01);  // 10 ms half-life
  EXPECT_LT(rq.PlacementLoad(100 * kMillisecond), 0.001);
}

TEST(RunQueueTest, PlacementLoadAccumulates) {
  RunQueue rq;
  rq.BumpPlacement(0);
  rq.BumpPlacement(0);
  EXPECT_DOUBLE_EQ(rq.PlacementLoad(0), 2.0);
}

TEST(RunQueueTest, LeftmostCacheSurvivesDequeueOfLeftmost) {
  RunQueue rq;
  Task a = MakeTask(1, 10);
  Task b = MakeTask(2, 20);
  Task c = MakeTask(3, 30);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  rq.Enqueue(&c);
  ASSERT_EQ(rq.Leftmost(), &a);
  rq.Dequeue(&a);
  EXPECT_EQ(rq.Leftmost(), &b);
  rq.Dequeue(&b);
  EXPECT_EQ(rq.Leftmost(), &c);
  rq.Dequeue(&c);
  EXPECT_EQ(rq.Leftmost(), nullptr);
}

TEST(RunQueueTest, LeftmostCacheSurvivesDequeueOfNonLeftmost) {
  RunQueue rq;
  Task a = MakeTask(1, 10);
  Task b = MakeTask(2, 20);
  rq.Enqueue(&a);
  rq.Enqueue(&b);
  rq.Dequeue(&b);  // not the leftmost; the cache must be untouched
  EXPECT_EQ(rq.Leftmost(), &a);
}

TEST(RunQueueTest, LeftmostTieBreaksByTid) {
  // Equal vruntimes order by tid (the ByVruntime comparator); the cache must
  // agree with the tree on that tie-break.
  RunQueue rq;
  Task high = MakeTask(7, 5);
  Task low = MakeTask(2, 5);
  rq.Enqueue(&high);
  rq.Enqueue(&low);
  EXPECT_EQ(rq.Leftmost(), &low);
  rq.Dequeue(&low);
  EXPECT_EQ(rq.Leftmost(), &high);
}

// The cached leftmost pointer is redundant state (== queue_.begin()); drive
// the queue through random enqueue/dequeue/curr churn and require the cache,
// Rightmost, and min_vruntime to match an independently maintained model.
TEST(RunQueueTest, LeftmostCacheCoherenceUnderRandomOps) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    RunQueue rq;
    std::deque<Task> storage;  // stable addresses
    std::vector<Task*> model;  // queued tasks, unordered
    double model_min_vruntime = 0.0;
    int next_tid = 1;

    const auto before = [](const Task* a, const Task* b) {
      if (a->vruntime != b->vruntime) {
        return a->vruntime < b->vruntime;
      }
      return a->tid < b->tid;
    };

    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.45 || model.empty()) {
        // Clustered vruntimes so ties and near-ties are common.
        storage.push_back(MakeTask(next_tid++, static_cast<double>(rng.NextBounded(32))));
        rq.Enqueue(&storage.back());
        model.push_back(&storage.back());
      } else if (roll < 0.85) {
        const size_t pick = rng.NextBounded(model.size());
        rq.Dequeue(model[pick]);
        model.erase(model.begin() + static_cast<long>(pick));
      } else if (rq.curr() == nullptr) {
        storage.push_back(MakeTask(next_tid++, static_cast<double>(rng.NextBounded(32))));
        rq.set_curr(&storage.back());
        rq.UpdateMinVruntime();
      } else {
        rq.set_curr(nullptr);
        rq.UpdateMinVruntime();
      }

      // Model update mirroring UpdateMinVruntime's contract: monotone, and
      // advancing to the smallest runnable vruntime.
      Task* expect_left = nullptr;
      Task* expect_right = nullptr;
      for (Task* t : model) {
        if (expect_left == nullptr || before(t, expect_left)) {
          expect_left = t;
        }
        if (expect_right == nullptr || before(expect_right, t)) {
          expect_right = t;
        }
      }
      if (rq.curr() != nullptr) {
        model_min_vruntime =
            std::max(model_min_vruntime,
                     expect_left == nullptr
                         ? rq.curr()->vruntime
                         : std::min(rq.curr()->vruntime, expect_left->vruntime));
      } else if (expect_left != nullptr) {
        model_min_vruntime = std::max(model_min_vruntime, expect_left->vruntime);
      }

      ASSERT_EQ(rq.Leftmost(), expect_left) << "seed " << seed << " step " << step;
      ASSERT_EQ(rq.Rightmost(), expect_right) << "seed " << seed << " step " << step;
      ASSERT_EQ(rq.QueuedCount(), static_cast<int>(model.size()));
      ASSERT_EQ(rq.min_vruntime(), model_min_vruntime) << "seed " << seed << " step " << step;
      if (!model.empty()) {
        // The cache must also agree with the tree's own ordering.
        ASSERT_EQ(rq.Leftmost(), rq.QueuedTasks().front());
      }
    }
  }
}

}  // namespace
}  // namespace nestsim
