#include "src/kernel/cpu_mask.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/sim/random.h"

namespace nestsim {
namespace {

std::vector<int> Collect(const CpuMask& mask) {
  std::vector<int> out;
  for (int cpu : mask) {
    out.push_back(cpu);
  }
  return out;
}

TEST(CpuMaskTest, StartsEmpty) {
  CpuMask mask;
  EXPECT_TRUE(mask.Empty());
  EXPECT_FALSE(mask.Any());
  EXPECT_EQ(mask.Count(), 0);
  EXPECT_EQ(Collect(mask), std::vector<int>{});
}

TEST(CpuMaskTest, SetTestClearAtWordBoundaries) {
  // The mask is four 64-bit words; exercise the first/last bit of each word.
  CpuMask mask;
  const std::vector<int> boundary = {0, 63, 64, 127, 128, 191, 192, 255};
  for (int cpu : boundary) {
    EXPECT_FALSE(mask.Test(cpu));
    mask.Set(cpu);
    EXPECT_TRUE(mask.Test(cpu)) << "cpu " << cpu;
  }
  EXPECT_EQ(mask.Count(), static_cast<int>(boundary.size()));
  EXPECT_EQ(Collect(mask), boundary);  // ascending order across words
  for (int cpu : boundary) {
    mask.Clear(cpu);
    EXPECT_FALSE(mask.Test(cpu)) << "cpu " << cpu;
  }
  EXPECT_TRUE(mask.Empty());
}

TEST(CpuMaskTest, SetIsIdempotent) {
  CpuMask mask;
  mask.Set(5);
  mask.Set(5);
  EXPECT_EQ(mask.Count(), 1);
  mask.Clear(5);
  EXPECT_TRUE(mask.Empty());
  mask.Clear(5);  // clearing a clear bit is a no-op
  EXPECT_TRUE(mask.Empty());
}

TEST(CpuMaskTest, AssignMatchesSetAndClear) {
  CpuMask mask;
  mask.Assign(42, true);
  EXPECT_TRUE(mask.Test(42));
  mask.Assign(42, false);
  EXPECT_FALSE(mask.Test(42));
  EXPECT_TRUE(mask.Empty());
}

TEST(CpuMaskTest, IterationSkipsEmptyWords) {
  CpuMask mask;
  mask.Set(200);  // only the last word is populated
  EXPECT_EQ(Collect(mask), std::vector<int>{200});
}

// The mask replaced std::set<int> in the kernel; load balancing depends on
// identical membership and identical (ascending) iteration order. Drive both
// through random Set/Clear/Assign and require them to stay indistinguishable.
TEST(CpuMaskTest, RandomizedDifferentialAgainstStdSet) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    CpuMask mask;
    std::set<int> model;
    for (int step = 0; step < 4000; ++step) {
      const int cpu = static_cast<int>(rng.NextBounded(CpuMask::kMaxCpus));
      const double roll = rng.NextDouble();
      if (roll < 0.4) {
        mask.Set(cpu);
        model.insert(cpu);
      } else if (roll < 0.8) {
        mask.Clear(cpu);
        model.erase(cpu);
      } else {
        const bool value = rng.NextDouble() < 0.5;
        mask.Assign(cpu, value);
        if (value) {
          model.insert(cpu);
        } else {
          model.erase(cpu);
        }
      }
      ASSERT_EQ(mask.Test(cpu), model.count(cpu) != 0) << "seed " << seed << " step " << step;
      ASSERT_EQ(mask.Count(), static_cast<int>(model.size()));
      ASSERT_EQ(mask.Any(), !model.empty());
      ASSERT_EQ(mask.Empty(), model.empty());
      if (step % 64 == 0) {
        // Full sweep: membership of every cpu plus iteration order.
        for (int c = 0; c < CpuMask::kMaxCpus; ++c) {
          ASSERT_EQ(mask.Test(c), model.count(c) != 0) << "cpu " << c;
        }
        ASSERT_EQ(Collect(mask), std::vector<int>(model.begin(), model.end()));
      }
    }
    ASSERT_EQ(Collect(mask), std::vector<int>(model.begin(), model.end()));
  }
}

}  // namespace
}  // namespace nestsim
