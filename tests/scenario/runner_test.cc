// Expansion and execution invariants of the scenario runner: grid order
// mirrors GridCampaign, sweep points cross-product with stable labels, and
// pooled execution is deterministic (outcomes independent of worker count).

#include "src/scenario/runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace nestsim {
namespace {

Scenario SmokeScenario() {
  const char* json = R"({
    "name": "runner_test",
    "machines": ["intel-5218-2s", "amd-4650g-1s"],
    "variants": [
      {"label": "CFS sched", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "Nest sched", "scheduler": "nest", "governor": "schedutil"}
    ],
    "workload": {"family": "configure", "rows": [
      {"label": "tiny-gcc", "params": {"preset": "gcc", "num_tests": 8}},
      {"label": "tiny-php", "params": {"preset": "php", "num_tests": 8}}
    ]},
    "repetitions": 1,
    "base_seed": 3
  })";
  JsonValue root;
  std::string json_error;
  EXPECT_TRUE(JsonParse(json, &root, &json_error)) << json_error;
  Scenario scenario;
  ScenarioError err;
  EXPECT_TRUE(ParseScenario(root, "runner_test", &scenario, &err)) << err.Join();
  return scenario;
}

ScenarioRunOptions QuietOptions(int jobs = 1) {
  ScenarioRunOptions options;
  options.campaign = CampaignOptions{};
  options.campaign.jobs = jobs;
  options.campaign.progress = false;
  options.campaign.jsonl_path.clear();
  return options;
}

TEST(ScenarioRunnerTest, ExpansionOrderIsMachineRowVariant) {
  const Scenario scenario = SmokeScenario();
  ScenarioRun run;
  ScenarioError err;
  ASSERT_TRUE(ExpandScenario(scenario, QuietOptions(), &run, &err)) << err.Join();

  ASSERT_EQ(run.jobs.size(), 8u);  // 2 machines x 2 rows x 2 variants
  EXPECT_EQ(run.num_machines(), 2u);
  EXPECT_EQ(run.num_rows(), 2u);
  EXPECT_EQ(run.num_variants(), 2u);
  EXPECT_EQ(run.num_sweeps(), 1u);
  EXPECT_EQ(run.sweep_labels[0], "");

  // Variant is the innermost non-sweep axis; machine the outermost.
  EXPECT_EQ(run.jobs[0].config.machine, "intel-5218-2s");
  EXPECT_EQ(run.jobs[0].workload, "tiny-gcc");
  EXPECT_EQ(run.jobs[0].variant, "CFS sched");
  EXPECT_EQ(run.jobs[1].variant, "Nest sched");
  EXPECT_EQ(run.jobs[2].workload, "tiny-php");
  EXPECT_EQ(run.jobs[4].config.machine, "amd-4650g-1s");

  // Index() agrees with the flat order.
  for (size_t m = 0; m < 2; ++m) {
    for (size_t r = 0; r < 2; ++r) {
      for (size_t v = 0; v < 2; ++v) {
        const size_t i = run.Index(m, r, v);
        EXPECT_EQ(&run.job(m, r, v), &run.jobs[i]);
      }
    }
  }

  // One model per (machine, row), shared across variants.
  EXPECT_EQ(run.job(0, 0, 0).model.get(), run.job(0, 0, 1).model.get());
  EXPECT_NE(run.job(0, 0, 0).model.get(), run.job(0, 1, 0).model.get());
  EXPECT_NE(run.job(0, 0, 0).model.get(), run.job(1, 0, 0).model.get());

  // Seeds and config flow into every job.
  for (const Job& job : run.jobs) {
    EXPECT_EQ(job.base_seed, 3u);
    EXPECT_EQ(job.repetitions, 1);
  }
  EXPECT_EQ(run.job(0, 0, 1).config.scheduler, SchedulerKind::kNest);
}

TEST(ScenarioRunnerTest, OptionOverridesWin) {
  const Scenario scenario = SmokeScenario();
  ScenarioRunOptions options = QuietOptions();
  options.repetitions_override = 4;
  options.has_base_seed = true;
  options.base_seed = 77;
  options.timeout_override_s = 9.5;
  ScenarioRun run;
  ScenarioError err;
  ASSERT_TRUE(ExpandScenario(scenario, options, &run, &err)) << err.Join();
  EXPECT_EQ(run.repetitions, 4);
  EXPECT_EQ(run.base_seed, 77u);
  EXPECT_DOUBLE_EQ(run.timeout_s, 9.5);
  for (const Job& job : run.jobs) {
    EXPECT_EQ(job.repetitions, 4);
    EXPECT_EQ(job.base_seed, 77u);
    EXPECT_DOUBLE_EQ(job.timeout_s, 9.5);
  }
}

TEST(ScenarioRunnerTest, SweepCrossProductAndLabels) {
  Scenario scenario = SmokeScenario();
  scenario.machines = {"intel-5218-2s"};
  scenario.rows.resize(1);
  scenario.variants.resize(1);
  {
    SweepAxis axis;
    axis.key = "nest.r_max";
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = 1;
    axis.values.push_back(v);
    v.number = 3;
    axis.values.push_back(v);
    scenario.sweep.push_back(axis);
  }
  {
    SweepAxis axis;
    axis.key = "nest.enable_spin";
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = false;
    axis.values.push_back(v);
    v.boolean = true;
    axis.values.push_back(v);
    scenario.sweep.push_back(axis);
  }

  ScenarioRun run;
  ScenarioError err;
  ASSERT_TRUE(ExpandScenario(scenario, QuietOptions(), &run, &err)) << err.Join();
  ASSERT_EQ(run.num_sweeps(), 4u);
  ASSERT_EQ(run.jobs.size(), 4u);
  // Last axis is innermost.
  EXPECT_EQ(run.sweep_labels[0], "nest.r_max=1,nest.enable_spin=false");
  EXPECT_EQ(run.sweep_labels[1], "nest.r_max=1,nest.enable_spin=true");
  EXPECT_EQ(run.sweep_labels[2], "nest.r_max=3,nest.enable_spin=false");
  EXPECT_EQ(run.sweep_labels[3], "nest.r_max=3,nest.enable_spin=true");
  // Jobs carry the sweep label in the variant name and the override in config.
  EXPECT_EQ(run.job(0, 0, 0, 2).variant, "CFS sched [nest.r_max=3,nest.enable_spin=false]");
  EXPECT_EQ(run.job(0, 0, 0, 2).config.nest.r_max, 3);
  EXPECT_FALSE(run.job(0, 0, 0, 2).config.nest.enable_spin);
  EXPECT_TRUE(run.job(0, 0, 0, 3).config.nest.enable_spin);
}

TEST(ScenarioRunnerTest, ExecutionIsDeterministicAcrossWorkerCounts) {
  const Scenario scenario = SmokeScenario();
  auto run_with = [&](int jobs) {
    ScenarioRun run;
    ScenarioError err;
    EXPECT_TRUE(ExpandScenario(scenario, QuietOptions(jobs), &run, &err)) << err.Join();
    ExecuteScenario(&run);
    return run;
  };
  const ScenarioRun serial = run_with(1);
  const ScenarioRun pooled = run_with(4);

  ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    ASSERT_TRUE(serial.outcomes[i].ok());
    ASSERT_TRUE(pooled.outcomes[i].ok());
    const RepeatedResult& a = serial.outcomes[i].result;
    const RepeatedResult& b = pooled.outcomes[i].result;
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t j = 0; j < a.runs.size(); ++j) {
      EXPECT_EQ(a.runs[j].makespan, b.runs[j].makespan) << i << "/" << j;
      EXPECT_EQ(a.runs[j].context_switches, b.runs[j].context_switches);
      EXPECT_DOUBLE_EQ(a.runs[j].energy_joules, b.runs[j].energy_joules);
    }
  }

  // result() hands back the aggregate; a failed job would throw instead.
  EXPECT_GT(serial.result(0, 0, 0).runs[0].makespan, 0);
}

TEST(ScenarioRunnerTest, ResultThrowsOnFailedJobs) {
  Scenario scenario = SmokeScenario();
  scenario.machines = {"intel-5218-2s"};
  scenario.rows.resize(1);
  scenario.variants.resize(1);
  ScenarioRun run;
  ScenarioError err;
  ASSERT_TRUE(ExpandScenario(scenario, QuietOptions(), &run, &err)) << err.Join();
  run.outcomes.resize(run.jobs.size());
  run.outcomes[0].status = JobStatus::kFailed;
  run.outcomes[0].message = "boom";
  EXPECT_THROW(run.result(0, 0, 0), std::runtime_error);
  EXPECT_EQ(run.outcome(0, 0, 0).message, "boom");
}

TEST(ScenarioRunnerTest, ResolveScenarioPathFindsTheScenarioDir) {
  const std::string dir = testing::TempDir() + "/scenario_dir_test";
  std::string mkdir_cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(mkdir_cmd.c_str()), 0);
  const std::string path = dir + "/resolve_me.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{}";
  }

  // An existing path is returned as-is.
  EXPECT_EQ(ResolveScenarioPath(path), path);

  // Otherwise NESTSIM_SCENARIO_DIR is consulted.
  setenv("NESTSIM_SCENARIO_DIR", dir.c_str(), 1);
  EXPECT_EQ(ResolveScenarioPath("resolve_me.json"), path);
  unsetenv("NESTSIM_SCENARIO_DIR");

  // Nothing found: the name comes back unchanged so the open error names it.
  EXPECT_EQ(ResolveScenarioPath("no_such_scenario.json"), "no_such_scenario.json");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nestsim
