// Golden-baseline gate: record/check round-trips pass, any perturbation of a
// deterministic field fails with a problem that names the job and field, and
// the wall-clock tolerance band only bites when enabled.

#include "src/scenario/baseline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/json_check.h"

namespace nestsim {
namespace {

ScenarioRun ExecutedSmokeRun(uint64_t base_seed = 3) {
  const char* json = R"({
    "name": "baseline_test",
    "machines": ["intel-5218-2s"],
    "variants": [
      {"label": "CFS sched", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "Nest sched", "scheduler": "nest", "governor": "schedutil"}
    ],
    "workload": {"family": "configure", "rows": [
      {"label": "tiny-gcc", "params": {"preset": "gcc", "num_tests": 8}}
    ]},
    "repetitions": 2
  })";
  JsonValue root;
  std::string json_error;
  EXPECT_TRUE(JsonParse(json, &root, &json_error)) << json_error;
  Scenario scenario;
  ScenarioError err;
  EXPECT_TRUE(ParseScenario(root, "baseline_test", &scenario, &err)) << err.Join();

  ScenarioRunOptions options;
  options.campaign = CampaignOptions{};
  options.campaign.jobs = 1;
  options.campaign.progress = false;
  options.campaign.jsonl_path.clear();
  options.has_base_seed = true;
  options.base_seed = base_seed;

  ScenarioRun run;
  EXPECT_TRUE(ExpandScenario(scenario, options, &run, &err)) << err.Join();
  ExecuteScenario(&run);
  return run;
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  const std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

TEST(BaselineTest, Fnv1a64MatchesKnownVectors) {
  // Reference values for the 64-bit FNV-1a parameters.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(BaselineTest, DigestIsStableAndHexFormatted) {
  SchedCounters counters;
  counters.wake_placements = 3;
  const std::string digest = SchedCountersDigest(counters);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, SchedCountersDigest(counters));
  counters.wake_placements = 4;
  EXPECT_NE(digest, SchedCountersDigest(counters));
}

TEST(BaselineTest, JsonlIsParseableAndOrdered) {
  const ScenarioRun run = ExecutedSmokeRun();
  const std::string jsonl = BaselineJsonl(run);

  std::istringstream in(jsonl);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 1u + run.jobs.size());
  for (const std::string& l : lines) {
    std::string error;
    EXPECT_TRUE(JsonValid(l, &error)) << l << ": " << error;
  }
  EXPECT_NE(lines[0].find("\"baseline\":\"baseline_test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"base_seed\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"variant\":\"CFS sched\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"variant\":\"Nest sched\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"makespan_ns\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"counters\":\""), std::string::npos);
}

TEST(BaselineTest, RecordThenCheckPasses) {
  const std::string dir = FreshDir("baseline_roundtrip");
  const ScenarioRun run = ExecutedSmokeRun();
  std::string error;
  ASSERT_TRUE(RecordBaseline(run, dir, &error)) << error;

  // A second identically-seeded execution matches the golden exactly.
  const ScenarioRun again = ExecutedSmokeRun();
  const BaselineCheck check = CheckBaseline(again, dir);
  EXPECT_TRUE(check.ok()) << (check.problems.empty() ? "" : check.problems[0]);
  EXPECT_EQ(check.jobs, 2);
  EXPECT_EQ(check.compared, 2);
  EXPECT_EQ(check.baseline_path, BaselinePath(dir, "baseline_test"));
}

TEST(BaselineTest, PerturbedSeedFails) {
  const std::string dir = FreshDir("baseline_perturbed");
  std::string error;
  ASSERT_TRUE(RecordBaseline(ExecutedSmokeRun(3), dir, &error)) << error;

  const BaselineCheck check = CheckBaseline(ExecutedSmokeRun(99), dir);
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.problems.empty());
  EXPECT_NE(check.problems[0].find("base_seed"), std::string::npos) << check.problems[0];
}

TEST(BaselineTest, TamperedGoldenFieldFails) {
  const std::string dir = FreshDir("baseline_tampered");
  const ScenarioRun run = ExecutedSmokeRun();
  std::string error;
  ASSERT_TRUE(RecordBaseline(run, dir, &error)) << error;

  // Flip one digit of the first makespan in the golden file.
  const std::string path = BaselinePath(dir, "baseline_test");
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const size_t pos = text.find("\"makespan_ns\":");
  ASSERT_NE(pos, std::string::npos);
  const size_t digit = pos + std::string("\"makespan_ns\":").size();
  text[digit] = text[digit] == '9' ? '8' : '9';
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }

  const BaselineCheck check = CheckBaseline(run, dir);
  EXPECT_FALSE(check.ok());
  bool names_field = false;
  for (const std::string& problem : check.problems) {
    if (problem.find("makespan_ns") != std::string::npos) {
      names_field = true;
    }
  }
  EXPECT_TRUE(names_field) << (check.problems.empty() ? "" : check.problems[0]);
}

TEST(BaselineTest, MissingBaselineFails) {
  const std::string dir = FreshDir("baseline_missing");
  const BaselineCheck check = CheckBaseline(ExecutedSmokeRun(), dir);
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.problems.empty());
  EXPECT_NE(check.problems[0].find("no golden baseline"), std::string::npos)
      << check.problems[0];
}

TEST(BaselineTest, WallToleranceOnlyBitesWhenEnabled) {
  const std::string dir = FreshDir("baseline_wall");
  ScenarioRun run = ExecutedSmokeRun();
  std::string error;
  ASSERT_TRUE(RecordBaseline(run, dir, &error)) << error;

  // Inflate the fresh run's wall clock far past any real variance.
  for (JobOutcome& outcome : run.outcomes) {
    outcome.wall_seconds = outcome.wall_seconds * 1000.0 + 10.0;
  }
  // Default: wall clock is not checked at all.
  EXPECT_TRUE(CheckBaseline(run, dir).ok());
  // With a ±25% band the inflated wall clock fails.
  const BaselineCheck strict = CheckBaseline(run, dir, 0.25);
  EXPECT_FALSE(strict.ok());
  ASSERT_FALSE(strict.problems.empty());
  EXPECT_NE(strict.problems[0].find("wall_s"), std::string::npos) << strict.problems[0];
}

TEST(BaselineTest, VerdictJsonIsValidAndCarriesProblems) {
  BaselineCheck pass;
  pass.scenario = "a";
  pass.baseline_path = "baselines/a.jsonl";
  pass.jobs = 2;
  pass.compared = 2;
  BaselineCheck fail;
  fail.scenario = "b";
  fail.baseline_path = "baselines/b.jsonl";
  fail.jobs = 1;
  fail.problems.push_back("job 0: makespan_ns mismatch \"quoted\"");

  const std::string verdict = BaselineVerdictJson({pass, fail});
  std::string error;
  ASSERT_TRUE(JsonValid(verdict, &error)) << verdict << ": " << error;
  EXPECT_NE(verdict.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(verdict.find("\"scenario\":\"a\""), std::string::npos);
  EXPECT_NE(verdict.find("makespan_ns mismatch"), std::string::npos);

  const std::string all_pass = BaselineVerdictJson({pass});
  EXPECT_NE(all_pass.find("\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
