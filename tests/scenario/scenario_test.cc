// Parser strictness for declarative scenarios: every unknown key, bad enum,
// and out-of-range value must surface as an actionable error naming the JSON
// path and the allowed alternatives.

#include "src/scenario/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/scenario/registry.h"

namespace nestsim {
namespace {

Scenario MustParse(const std::string& json) {
  JsonValue root;
  std::string json_error;
  EXPECT_TRUE(JsonParse(json, &root, &json_error)) << json_error;
  Scenario scenario;
  ScenarioError err;
  EXPECT_TRUE(ParseScenario(root, "test", &scenario, &err)) << err.Join();
  return scenario;
}

ScenarioError MustFail(const std::string& json) {
  JsonValue root;
  std::string json_error;
  EXPECT_TRUE(JsonParse(json, &root, &json_error)) << json_error;
  Scenario scenario;
  ScenarioError err;
  EXPECT_FALSE(ParseScenario(root, "test", &scenario, &err)) << "accepted: " << json;
  return err;
}

bool Mentions(const ScenarioError& err, const std::string& needle) {
  return err.Join().find(needle) != std::string::npos;
}

TEST(ScenarioParseTest, MinimalScenarioGetsDefaults) {
  const Scenario s = MustParse(R"({"name":"t","workload":{"family":"configure"}})");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.machines.size(), 4u);  // paper machines
  EXPECT_EQ(s.variants.size(), 4u);  // standard set
  EXPECT_EQ(s.variants[0].label, "CFS sched");
  EXPECT_EQ(s.variants[0].column, "CFS sched (s)");
  EXPECT_EQ(s.rows.size(), 11u);  // all configure packages
  EXPECT_EQ(s.repetitions, 2);
  EXPECT_EQ(s.base_seed, 1u);
  EXPECT_TRUE(s.sweep.empty());
  EXPECT_EQ(s.table.style, TableSpec::Style::kSpeedup);
}

TEST(ScenarioParseTest, StandardPlusSmoveAddsTheFifthColumn) {
  const Scenario s = MustParse(
      R"({"name":"t","variants":"standard+smove","workload":{"family":"nas"}})");
  ASSERT_EQ(s.variants.size(), 5u);
  EXPECT_EQ(s.variants[4].label, "Smove sched");
  EXPECT_EQ(s.variants[4].column, "Smove sch");
  EXPECT_EQ(s.variants[4].scheduler, SchedulerKind::kSmove);
}

TEST(ScenarioParseTest, ExplicitMachinesVariantsRows) {
  const Scenario s = MustParse(R"({
    "name":"t",
    "machines":["intel-5218-2s","amd-4650g-1s"],
    "variants":[{"label":"Nest","scheduler":"nest","governor":"performance","column":"N"}],
    "workload":{"family":"configure","presets":["gcc","php"]},
    "base_seed":42,"repetitions":3,"timeout_s":10.5
  })");
  EXPECT_EQ(s.machines, (std::vector<std::string>{"intel-5218-2s", "amd-4650g-1s"}));
  ASSERT_EQ(s.variants.size(), 1u);
  EXPECT_EQ(s.variants[0].scheduler, SchedulerKind::kNest);
  EXPECT_EQ(s.variants[0].governor, "performance");
  EXPECT_EQ(s.variants[0].column, "N");
  EXPECT_EQ(s.variants[0].band_label, "Nest");  // defaults to label
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_EQ(s.rows[0].label, "gcc");
  EXPECT_EQ(s.base_seed, 42u);
  EXPECT_EQ(s.repetitions, 3);
  EXPECT_DOUBLE_EQ(s.timeout_s, 10.5);
}

TEST(ScenarioParseTest, UnknownTopLevelKeyListsTheKnownOnes) {
  const ScenarioError err =
      MustFail(R"({"name":"t","workload":{"family":"nas"},"mystery":1})");
  EXPECT_TRUE(Mentions(err, "unknown key \"mystery\"")) << err.Join();
  EXPECT_TRUE(Mentions(err, "workload")) << err.Join();  // the known-keys list
}

TEST(ScenarioParseTest, BadEnumNamesTheAlternatives) {
  const ScenarioError err = MustFail(
      R"({"name":"t","variants":[{"label":"x","scheduler":"nests","governor":"schedutil"}],
          "workload":{"family":"nas"}})");
  EXPECT_TRUE(Mentions(err, "unknown value \"nests\"")) << err.Join();
  EXPECT_TRUE(Mentions(err, "cfs, nest, smove")) << err.Join();
}

TEST(ScenarioParseTest, OutOfRangeValueNamesTheRange) {
  const ScenarioError err =
      MustFail(R"({"name":"t","workload":{"family":"nas"},"repetitions":0})");
  EXPECT_TRUE(Mentions(err, "\"repetitions\" out of range")) << err.Join();
  EXPECT_TRUE(Mentions(err, "[1, 1000000]")) << err.Join();
}

TEST(ScenarioParseTest, EveryProblemIsReportedAtOnce) {
  const ScenarioError err = MustFail(R"({
    "name":"Bad Name",
    "machines":["nope"],
    "workload":{"family":"wat"},
    "repetitions":-1,
    "mystery":true
  })");
  EXPECT_GE(err.errors.size(), 5u) << err.Join();
  EXPECT_TRUE(Mentions(err, "[a-z0-9_-]+"));
  EXPECT_TRUE(Mentions(err, "unknown machine \"nope\""));
  EXPECT_TRUE(Mentions(err, "unknown workload family \"wat\""));
}

TEST(ScenarioParseTest, UnknownPresetListsFamilyPresets) {
  const ScenarioError err =
      MustFail(R"({"name":"t","workload":{"family":"nas","presets":["bt","zz"]}})");
  EXPECT_TRUE(Mentions(err, "no preset \"zz\"")) << err.Join();
  EXPECT_TRUE(Mentions(err, "bt, cg, ep")) << err.Join();
}

TEST(ScenarioParseTest, PresetGroupsResolve) {
  const Scenario fig13 =
      MustParse(R"({"name":"t","workload":{"family":"phoronix","presets":"fig13"}})");
  EXPECT_EQ(fig13.rows.size(), 27u);
  const Scenario table4 =
      MustParse(R"({"name":"t","workload":{"family":"phoronix","presets":"table4"}})");
  EXPECT_EQ(table4.rows.size(), 222u);
  EXPECT_EQ(table4.rows.back().label, "synthetic-221");
}

TEST(ScenarioParseTest, RowParamsAreValidatedAtParseTime) {
  const ScenarioError err = MustFail(R"({
    "name":"t",
    "workload":{"family":"configure","rows":[
      {"label":"x","params":{"preset":"gcc","num_tests":0,"colour":"red"}}]}
  })");
  EXPECT_TRUE(Mentions(err, "\"num_tests\" out of range")) << err.Join();
  EXPECT_TRUE(Mentions(err, "unknown key \"colour\"")) << err.Join();
}

TEST(ScenarioParseTest, ParamlessRowMustBeAPreset) {
  const ScenarioError err = MustFail(
      R"({"name":"t","workload":{"family":"configure","rows":[{"label":"made-up"}]}})");
  EXPECT_TRUE(Mentions(err, "not a \"configure\" preset")) << err.Join();
}

TEST(ScenarioParseTest, DuplicateRowAndVariantLabelsAreRejected) {
  EXPECT_TRUE(Mentions(
      MustFail(R"({"name":"t","workload":{"family":"nas","presets":["bt","bt"]}})"),
      "duplicate row label \"bt\""));
  EXPECT_TRUE(Mentions(
      MustFail(R"({"name":"t","workload":{"family":"nas"},"variants":[
        {"label":"a","scheduler":"cfs","governor":"schedutil"},
        {"label":"a","scheduler":"nest","governor":"schedutil"}]})"),
      "duplicate label \"a\""));
}

TEST(ScenarioParseTest, MultiFamilyRequiresMembers) {
  EXPECT_TRUE(Mentions(MustFail(R"({"name":"t","workload":{"family":"multi"}})"),
                       "needs \"params\""));
  EXPECT_TRUE(Mentions(
      MustFail(R"({"name":"t","workload":{"family":"multi","params":{"members":[
        {"family":"multi","params":{"members":[]}},
        {"family":"configure","preset":"gcc"}]}}})"),
      "cannot nest another \"multi\""));
}

TEST(ScenarioParseTest, MultiCompositionParses) {
  const Scenario s = MustParse(R"({
    "name":"t",
    "workload":{"family":"multi","params":{"members":[
      {"family":"configure","preset":"gcc"},
      {"family":"hackbench","params":{"groups":2,"fan":2,"loops":10}}]}}
  })");
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_TRUE(s.rows[0].has_params);
}

TEST(ScenarioParseTest, ConfigOverridesAreValidated) {
  const Scenario ok = MustParse(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"nest.r_max":5,"record_trace":true,"time_limit_s":30}
  })");
  EXPECT_TRUE(ok.has_config);

  const ScenarioError bad = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"nest.r_max":99999,"nest.unknown":1}
  })");
  EXPECT_TRUE(Mentions(bad, "expects integer in [0, 4096]")) << bad.Join();
  EXPECT_TRUE(Mentions(bad, "unknown config key \"nest.unknown\"")) << bad.Join();
  EXPECT_TRUE(Mentions(bad, "nest.p_remove_ticks")) << bad.Join();  // known-keys list
}

TEST(ScenarioParseTest, FaultAndPowerOverridesAreValidated) {
  // The fault/replica/budget family (docs/FAULTS.md §8) rides the same
  // override table as every other key: accepted in config and sweep, range-
  // checked per value, unknown spellings rejected with the known-keys list.
  const Scenario ok = MustParse(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"fault.core_fail_rate_per_s":20.0,"fault.core_downtime_ms":30.0,
              "fault.machine_fail_rate_per_s":1.0,"fault.machine_downtime_ms":50.0,
              "fault.horizon_s":10.0,"replicas":2,"fault.quorum":1,
              "power.headroom_fraction":0.9,"nest_budget.min_primary":2},
    "sweep":{"power.budget_w":[0.0,35.0,20.0]}
  })");
  EXPECT_TRUE(ok.has_config);
  ASSERT_EQ(ok.sweep.size(), 1u);
  EXPECT_EQ(ok.sweep[0].key, "power.budget_w");

  const ScenarioError rate = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"fault.core_fail_rate_per_s":5000.0}
  })");
  EXPECT_TRUE(Mentions(rate, "fault.core_fail_rate_per_s")) << rate.Join();
  EXPECT_TRUE(Mentions(rate, "expects number in [0, 1000]")) << rate.Join();

  const ScenarioError replicas = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"replicas":0}
  })");
  EXPECT_TRUE(Mentions(replicas, "expects integer in [1, 16]")) << replicas.Join();

  const ScenarioError headroom = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"power.headroom_fraction":0.0}
  })");
  EXPECT_TRUE(Mentions(headroom, "power.headroom_fraction")) << headroom.Join();

  const ScenarioError unknown = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "config":{"fault.core_fail_rate":1.0}
  })");
  EXPECT_TRUE(Mentions(unknown, "unknown config key \"fault.core_fail_rate\"")) << unknown.Join();
  EXPECT_TRUE(Mentions(unknown, "fault.core_fail_rate_per_s")) << unknown.Join();  // known-keys list
}

TEST(ScenarioParseTest, SweepAxesAreValidatedPerValue) {
  const Scenario s = MustParse(R"({
    "name":"t","workload":{"family":"nas"},
    "sweep":{"nest.r_max":[1,3],"smove.low_freq_fraction":[0.1,0.5]}
  })");
  ASSERT_EQ(s.sweep.size(), 2u);
  EXPECT_EQ(s.sweep[0].key, "nest.r_max");
  EXPECT_EQ(s.sweep[0].values.size(), 2u);

  const ScenarioError bad = MustFail(R"({
    "name":"t","workload":{"family":"nas"},
    "sweep":{"nest.r_max":[1,"three"]}
  })");
  EXPECT_TRUE(Mentions(bad, "nest.r_max")) << bad.Join();
}

TEST(ScenarioParseTest, ClusterBlockParses) {
  const Scenario s = MustParse(R"({
    "name":"t","workload":{"family":"requests"},
    "cluster":{"machines":3,"router":"least-loaded"}
  })");
  EXPECT_TRUE(s.has_cluster);
  EXPECT_EQ(s.cluster_machines, 3);
  EXPECT_EQ(s.cluster_router, "least-loaded");
}

TEST(ScenarioParseTest, ClusterDefaultsWhenKeysOmitted) {
  const Scenario s = MustParse(R"({"name":"t","workload":{"family":"requests"},"cluster":{}})");
  EXPECT_TRUE(s.has_cluster);
  EXPECT_EQ(s.cluster_machines, 2);
  EXPECT_EQ(s.cluster_router, "round-robin");
}

TEST(ScenarioParseTest, ClusterUnknownKeyNamesThePath) {
  const ScenarioError err = MustFail(R"({
    "name":"t","workload":{"family":"requests"},
    "cluster":{"machnies":2}
  })");
  EXPECT_TRUE(Mentions(err, "/cluster")) << err.Join();
  EXPECT_TRUE(Mentions(err, "unknown key \"machnies\"")) << err.Join();
  EXPECT_TRUE(Mentions(err, "machines")) << err.Join();  // the known-keys list
}

TEST(ScenarioParseTest, ClusterMachinesOutOfRange) {
  const ScenarioError err = MustFail(R"({
    "name":"t","workload":{"family":"requests"},
    "cluster":{"machines":0}
  })");
  EXPECT_TRUE(Mentions(err, "/cluster")) << err.Join();
  EXPECT_TRUE(Mentions(err, "\"machines\" out of range")) << err.Join();
}

TEST(ScenarioParseTest, ClusterRouterListsTheAlternatives) {
  const ScenarioError err = MustFail(R"({
    "name":"t","workload":{"family":"requests"},
    "cluster":{"router":"random"}
  })");
  EXPECT_TRUE(Mentions(err, "/cluster")) << err.Join();
  EXPECT_TRUE(Mentions(err, "unknown value \"random\"")) << err.Join();
  EXPECT_TRUE(Mentions(err, "round-robin")) << err.Join();
}

TEST(ScenarioParseTest, ClusterRequiresTheRequestsFamily) {
  const ScenarioError err = MustFail(R"({
    "name":"t","workload":{"family":"configure"},
    "cluster":{"machines":2}
  })");
  EXPECT_TRUE(Mentions(err, "requests")) << err.Join();
  EXPECT_TRUE(Mentions(err, "configure")) << err.Join();
}

TEST(ScenarioParseTest, ApplyConfigOverrideTouchesTheConfig) {
  ExperimentConfig config;
  ScenarioError err;
  JsonValue v;
  v.type = JsonValue::Type::kNumber;
  v.number = 7;
  EXPECT_TRUE(ApplyConfigOverride(&config, "nest.r_max", v, "p", &err));
  EXPECT_EQ(config.nest.r_max, 7);
  v.number = 2.5;
  EXPECT_TRUE(ApplyConfigOverride(&config, "time_limit_s", v, "p", &err));
  EXPECT_EQ(config.time_limit, SecondsF(2.5));
  JsonValue b;
  b.type = JsonValue::Type::kBool;
  b.boolean = true;
  EXPECT_TRUE(ApplyConfigOverride(&config, "nest.enable_spin", b, "p", &err));
  EXPECT_TRUE(config.nest.enable_spin);
  EXPECT_TRUE(err.ok()) << err.Join();
}

TEST(ScenarioParseTest, ConfigOverrideKeysAreStable) {
  const std::vector<std::string> keys = ConfigOverrideKeys();
  EXPECT_GE(keys.size(), 19u);
  ExperimentConfig config;
  // Every advertised key must actually apply (with a value of the right type).
  for (const std::string& key : keys) {
    ScenarioError err;
    JsonValue num;
    num.type = JsonValue::Type::kNumber;
    num.number = 1;
    JsonValue flag;
    flag.type = JsonValue::Type::kBool;
    flag.boolean = true;
    JsonValue text;
    text.type = JsonValue::Type::kString;
    // A governor name, so the domain-checked "governor" key applies too;
    // the free-form string keys accept it like any other text. The PDES sync
    // key only admits its own enum, so it gets a member of that set, and the
    // eagerly-loaded model path gets the committed model (resolved like a
    // scenario path, so it is found from the repo root and from build/).
    text.string = key == "parallel.sync"        ? "lockstep"
                  : key == "predict.model_file" ? "models/tiny-predict.json"
                                                : "schedutil";
    const bool applied = ApplyConfigOverride(&config, key, num, "p", &err) ||
                         ApplyConfigOverride(&config, key, flag, "p", &err) ||
                         ApplyConfigOverride(&config, key, text, "p", &err);
    EXPECT_TRUE(applied) << key;
  }
}

TEST(ScenarioParseTest, LoadScenarioReadsAFile) {
  const std::string path = testing::TempDir() + "/scenario_load_test.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << R"({"name":"from-file","workload":{"family":"nas","presets":["bt"]}})";
  }
  Scenario s;
  ScenarioError err;
  ASSERT_TRUE(LoadScenario(path, &s, &err)) << err.Join();
  EXPECT_EQ(s.name, "from-file");

  ScenarioError missing;
  EXPECT_FALSE(LoadScenario(path + ".nope", &s, &missing));
  EXPECT_TRUE(Mentions(missing, "cannot open"));

  {
    std::ofstream out(path, std::ios::trunc);
    out << "{not json";
  }
  ScenarioError invalid;
  EXPECT_FALSE(LoadScenario(path, &s, &invalid));
  EXPECT_TRUE(Mentions(invalid, "invalid JSON"));
  std::remove(path.c_str());
}

TEST(ScenarioRegistryTest, NineFamiliesRegistered) {
  EXPECT_EQ(WorkloadFamilies().size(), 9u);
  for (const char* name : {"configure", "dacapo", "nas", "phoronix", "server", "requests",
                           "hackbench", "schbench", "multi"}) {
    EXPECT_NE(FindWorkloadFamily(name), nullptr) << name;
  }
  EXPECT_EQ(FindWorkloadFamily("nope"), nullptr);
}

TEST(ScenarioRegistryTest, BuildersProduceWorkingWorkloads) {
  ScenarioError err;
  for (const WorkloadFamily& family : WorkloadFamilies()) {
    if (family.presets.empty()) {
      continue;
    }
    auto workload = family.build(family.presets.front(), nullptr, "p", err);
    ASSERT_NE(workload, nullptr) << family.name << ": " << err.Join();
    EXPECT_FALSE(workload->name().empty());
  }
  EXPECT_TRUE(err.ok()) << err.Join();
}

TEST(ScenarioRegistryTest, PhoronixSyntheticRowsBuild) {
  ScenarioError err;
  const WorkloadFamily* family = FindWorkloadFamily("phoronix");
  ASSERT_NE(family, nullptr);
  EXPECT_TRUE(family->is_preset("synthetic-100"));
  EXPECT_FALSE(family->is_preset("synthetic-x"));
  auto workload = family->build("synthetic-100", nullptr, "p", err);
  ASSERT_NE(workload, nullptr) << err.Join();
  EXPECT_EQ(workload->name(), "phoronix-synthetic-100");
}

}  // namespace
}  // namespace nestsim
