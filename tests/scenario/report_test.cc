#include "src/scenario/report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nestsim {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(ReportPrintersTest, PrintHeaderFramesTitleAndDescription) {
  ::testing::internal::CaptureStdout();
  PrintHeader("Table 4", "per-machine skips/sec");
  const std::vector<std::string> lines = SplitLines(::testing::internal::GetCapturedStdout());
  ASSERT_EQ(lines.size(), 4u);
  // The frame rules are equal-length and identical; title and description
  // sit between them on their own lines.
  EXPECT_EQ(lines[0], lines[3]);
  EXPECT_EQ(lines[0], std::string(62, '='));
  EXPECT_EQ(lines[1], "Table 4");
  EXPECT_EQ(lines[2], "per-machine skips/sec");
}

TEST(ReportPrintersTest, MachineBannerShowsTopologyTriple) {
  MachineSpec spec;
  spec.name = "dual_socket_xeon";
  spec.cpu_model = "Xeon Gold 6130";
  spec.num_sockets = 2;
  spec.physical_cores_per_socket = 16;
  spec.threads_per_core = 2;
  ::testing::internal::CaptureStdout();
  PrintMachineBanner(spec);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("dual_socket_xeon"), std::string::npos);
  EXPECT_NE(out.find("Xeon Gold 6130"), std::string::npos);
  EXPECT_NE(out.find("2x16x2"), std::string::npos);
}

TEST(ReportPrintersTest, FormatSpeedupMarksOutsideNoiseBand) {
  // Within the paper's +/-5% band: padded, no marker (two trailing spaces so
  // table cells stay the same width in all three cases).
  EXPECT_EQ(FormatSpeedup(0.0), "  +0.0%  ");
  EXPECT_EQ(FormatSpeedup(4.9), "  +4.9%  ");
  EXPECT_EQ(FormatSpeedup(-5.0), "  -5.0%  ");
  // Outside the band: improvement gets '*', regression gets '!'.
  EXPECT_EQ(FormatSpeedup(12.3), " +12.3% *");
  EXPECT_EQ(FormatSpeedup(-9.1), "  -9.1% !");
}

TEST(ReportPrintersTest, FormatSpeedupCellsShareWidth) {
  for (double pct : {-123.4, -5.1, -0.1, 0.0, 4.2, 5.1, 99.9}) {
    EXPECT_EQ(FormatSpeedup(pct).size(), 9u) << pct;
  }
}

}  // namespace
}  // namespace nestsim
