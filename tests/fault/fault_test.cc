// Fault-injection engine (src/fault/, docs/FAULTS.md): plan determinism, the
// kernel's offline/online + evacuation mechanics driven directly, and
// end-to-end runs that keep every scheduler deterministic under fire.

#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/cfs/cfs_policy.h"
#include "src/check/invariant_checker.h"
#include "src/core/experiment.h"
#include "src/governors/governors.h"
#include "src/nest/nest_policy.h"
#include "src/obs/sched_counters.h"
#include "src/workloads/configure.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

// ---- plan construction ----------------------------------------------------

FaultSpec BothProcesses() {
  FaultSpec spec;
  spec.core_fail_rate_per_s = 50.0;
  spec.core_downtime_ms = 10.0;
  spec.machine_fail_rate_per_s = 2.0;
  spec.machine_downtime_ms = 20.0;
  return spec;
}

TEST(FaultPlanTest, PureFunctionOfSpecAndSeed) {
  Rng a(42);
  Rng b(42);
  const FaultPlan pa = BuildFaultPlan(BothProcesses(), a, 3, 8, kSecond);
  const FaultPlan pb = BuildFaultPlan(BothProcesses(), b, 3, 8, kSecond);
  ASSERT_FALSE(pa.empty());
  ASSERT_EQ(pa.events.size(), pb.events.size());
  for (size_t i = 0; i < pa.events.size(); ++i) {
    EXPECT_EQ(pa.events[i].time, pb.events[i].time);
    EXPECT_EQ(pa.events[i].kind, pb.events[i].kind);
    EXPECT_EQ(pa.events[i].machine, pb.events[i].machine);
    EXPECT_EQ(pa.events[i].cpu, pb.events[i].cpu);
    EXPECT_EQ(pa.events[i].seq, pb.events[i].seq);
  }
}

TEST(FaultPlanTest, SortedInBoundsWithPairedRepairs) {
  Rng rng(7);
  const FaultPlan plan = BuildFaultPlan(BothProcesses(), rng, 2, 4, kSecond);
  ASSERT_FALSE(plan.empty());
  size_t core_fails = 0, core_repairs = 0, machine_fails = 0, machine_repairs = 0;
  for (size_t i = 0; i < plan.events.size(); ++i) {
    const FaultPlanEvent& e = plan.events[i];
    if (i > 0) {
      const FaultPlanEvent& prev = plan.events[i - 1];
      EXPECT_LE(prev.time, e.time);
      if (prev.time == e.time) {
        EXPECT_LT(prev.seq, e.seq);  // the draw order breaks time ties
      }
    }
    EXPECT_GE(e.machine, 0);
    EXPECT_LT(e.machine, 2);
    switch (e.kind) {
      case FaultPlanEvent::Kind::kCoreFail:
        ++core_fails;
        EXPECT_LT(e.time, kSecond);
        EXPECT_GE(e.cpu, 0);
        EXPECT_LT(e.cpu, 4);
        break;
      case FaultPlanEvent::Kind::kCoreRepair:
        ++core_repairs;
        EXPECT_GE(e.cpu, 0);
        break;
      case FaultPlanEvent::Kind::kMachineFail:
        ++machine_fails;
        EXPECT_LT(e.time, kSecond);
        EXPECT_EQ(e.cpu, -1);
        break;
      case FaultPlanEvent::Kind::kMachineRepair:
        ++machine_repairs;
        break;
    }
  }
  // Nonzero downtimes: every failure has its repair in the plan.
  EXPECT_GT(core_fails, 0u);
  EXPECT_EQ(core_fails, core_repairs);
  EXPECT_EQ(machine_fails, machine_repairs);
}

TEST(FaultPlanTest, DisabledSpecDrawsNothingAndLeavesTheRngUntouched) {
  FaultSpec off;  // defaults: everything disabled
  Rng rng(11);
  const FaultPlan plan = BuildFaultPlan(off, rng, 1, 8, kSecond);
  EXPECT_TRUE(plan.empty());
  Rng fresh(11);
  EXPECT_EQ(rng.NextBounded(1 << 20), fresh.NextBounded(1 << 20));
}

TEST(FaultPlanTest, ZeroDowntimeIsPermanent) {
  FaultSpec spec;
  spec.core_fail_rate_per_s = 200.0;
  spec.core_downtime_ms = 0.0;
  Rng rng(3);
  const FaultPlan plan = BuildFaultPlan(spec, rng, 1, 4, kSecond);
  ASSERT_FALSE(plan.empty());
  for (const FaultPlanEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultPlanEvent::Kind::kCoreFail);
  }
}

// ---- kernel offline/online mechanics --------------------------------------

// Kernel + checker + counters over a 1-socket fixed-frequency machine,
// driven directly so tests control the exact moment a core dies.
struct FaultRig {
  explicit FaultRig(std::unique_ptr<SchedulerPolicy> pol, int phys = 2)
      : hw(&engine, FixedFreqMachine(/*sockets=*/1, phys, /*threads_per_core=*/1)),
        policy(std::move(pol)),
        kernel(&engine, &hw, policy.get(), &governor, Kernel::Params{}),
        checker(&kernel),
        counters(&kernel) {
    kernel.AddObserver(&checker);
    kernel.AddObserver(&counters);
    kernel.Start();
  }

  void Run(SimTime limit) {
    while (kernel.live_tasks() > 0 && engine.Now() < limit) {
      ASSERT_TRUE(engine.Step());
    }
  }

  Engine engine;
  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  PerformanceGovernor governor;
  Kernel kernel;
  InvariantChecker checker;
  SchedCounterRecorder counters;
};

ProgramPtr FanOutProgram(int children, double child_ms) {
  ProgramBuilder parent("p");
  parent.ComputeMs(0.1);
  for (int i = 0; i < children; ++i) {
    ProgramBuilder child("c");
    child.ComputeMs(child_ms);
    parent.Fork(child.Build());
  }
  parent.JoinChildren();
  return parent.Build();
}

TEST(OfflineCpuTest, RefusesTheLastOnlineCore) {
  FaultRig rig(std::make_unique<CfsPolicy>());
  ASSERT_TRUE(rig.kernel.OfflineCpu(0));
  EXPECT_FALSE(rig.kernel.OfflineCpu(1));  // last online core machine-wide
  EXPECT_TRUE(rig.kernel.CpuOnline(1));
  EXPECT_FALSE(rig.kernel.OfflineCpu(0));  // already offline: a no-op
  rig.kernel.OnlineCpu(0);
  EXPECT_TRUE(rig.kernel.OfflineCpu(1));  // CPU 0 carries the machine now
}

TEST(OfflineCpuTest, EvacuatesRunningAndQueuedWork) {
  FaultRig rig(std::make_unique<CfsPolicy>());
  rig.kernel.SpawnInitial(FanOutProgram(6, 2.0), "p", 0, 0);
  // Step until CPU 0 is running one task with more queued behind it, so the
  // offline drains both the curr slot and the tree.
  while (!(rig.kernel.rq(0).curr() != nullptr && rig.kernel.rq(0).QueuedCount() > 0)) {
    ASSERT_TRUE(rig.engine.Step());
  }
  ASSERT_TRUE(rig.kernel.OfflineCpu(0));
  EXPECT_FALSE(rig.kernel.CpuOnline(0));
  const SchedCounters& c = rig.counters.counters();
  EXPECT_EQ(c.faults_injected, 1u);
  EXPECT_GE(c.tasks_evacuated, 2u);
  EXPECT_GE(c.placements[static_cast<int>(PlacementPath::kFaultEvacuate)], 2u);
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.Report();
}

// A core dies while it holds an active §3.4 placement reservation: the claim
// must be cancelled with the core, and the in-flight task's delayed enqueue
// redirects to an online CPU instead of landing on the corpse.
TEST(OfflineCpuTest, CancelsAnInFlightReservationOnTheVictim) {
  FaultRig rig(std::make_unique<NestPolicy>());
  rig.kernel.SpawnInitial(FanOutProgram(1, 1.0), "p", 0, 0);
  int claimed_cpu = -1;
  while (claimed_cpu < 0) {
    ASSERT_TRUE(rig.engine.Step());
    for (int cpu = 0; cpu < 2; ++cpu) {
      if (rig.kernel.rq(cpu).claimed()) {
        claimed_cpu = cpu;
        break;
      }
    }
  }
  ASSERT_TRUE(rig.kernel.OfflineCpu(claimed_cpu));
  EXPECT_FALSE(rig.kernel.rq(claimed_cpu).claimed());
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.Report();
}

// Nest loses every core but one: the primary mask shrinks with the machine
// and the whole gang completes on the survivor.
TEST(OfflineCpuTest, NestSurvivesLosingAllButOneCore) {
  FaultRig rig(std::make_unique<NestPolicy>(), /*phys=*/4);
  for (int cpu = 1; cpu < 4; ++cpu) {
    ASSERT_TRUE(rig.kernel.OfflineCpu(cpu));
  }
  EXPECT_FALSE(rig.kernel.OfflineCpu(0));
  rig.kernel.SpawnInitial(FanOutProgram(4, 1.0), "p", 0, 0);
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.Report();
}

TEST(OfflineCpuTest, RepairedCoreRunsFreshWork) {
  FaultRig rig(std::make_unique<NestPolicy>());
  ASSERT_TRUE(rig.kernel.OfflineCpu(1));
  rig.kernel.OnlineCpu(1);
  EXPECT_TRUE(rig.kernel.CpuOnline(1));
  rig.kernel.SpawnInitial(FanOutProgram(3, 1.0), "p", 0, 0);
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.Report();
}

TEST(FaultInjectorTest, ReplaysThePlanAndRepairsRestoreEveryCore) {
  FaultRig rig(std::make_unique<CfsPolicy>(), /*phys=*/4);
  FaultSpec spec;
  spec.core_fail_rate_per_s = 300.0;
  spec.core_downtime_ms = 1.0;
  Rng rng(9);
  FaultPlan plan = BuildFaultPlan(spec, rng, 1, 4, 100 * kMillisecond);
  ASSERT_FALSE(plan.empty());
  FaultInjector injector(&rig.engine, &rig.kernel, &plan, /*machine=*/0);
  injector.Arm();
  // The kernel's periodic tick re-arms itself forever, so drain by simulated
  // time: past 200 ms every planned fail (< 100 ms) and its +1 ms repair has
  // executed.
  while (rig.engine.Now() < 200 * kMillisecond) {
    ASSERT_TRUE(rig.engine.Step());
  }
  EXPECT_GT(rig.counters.counters().faults_injected, 0u);
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_TRUE(rig.kernel.CpuOnline(cpu)) << cpu;
  }
  EXPECT_TRUE(rig.checker.ok()) << rig.checker.Report();
}

// ---- end-to-end runs under fire -------------------------------------------

ConfigureSpec SmallBuild() {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 12;
  return spec;
}

// High kill rate, every scheduler, run twice: identical results prove the
// plan replay and the evacuation path are deterministic. Smove runs with a
// long move delay so armed migrations are routinely in flight when their
// destination core dies (MigrateQueued's fallback redirect).
TEST(FaultRunTest, EverySchedulerSurvivesCoreKillsDeterministically) {
  for (const SchedulerKind kind :
       {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove,
        SchedulerKind::kNestCache, SchedulerKind::kNestBudget}) {
    ExperimentConfig config;
    config.scheduler = kind;
    config.seed = 21;
    config.fault.core_fail_rate_per_s = 400.0;
    config.fault.core_downtime_ms = 5.0;
    config.smove.move_delay = 500 * kMicrosecond;
    const ConfigureWorkload workload(SmallBuild());
    const ExperimentResult a = RunExperiment(config, workload);
    const ExperimentResult b = RunExperiment(config, workload);
    SCOPED_TRACE(SchedulerKindKey(kind));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_TRUE(a.counters == b.counters);
    EXPECT_GT(a.counters.faults_injected, 0u);
  }
}

// The disabled spec is the golden-gate contract: a run with the default
// FaultSpec must be bit-identical to one that never heard of faults.
TEST(FaultRunTest, DefaultSpecIsByteIdenticalToNoFaults) {
  ExperimentConfig plain;
  plain.scheduler = SchedulerKind::kNest;
  plain.seed = 4;
  ExperimentConfig with_default_fault = plain;
  with_default_fault.fault = FaultSpec{};
  const ConfigureWorkload workload(SmallBuild());
  const ExperimentResult a = RunExperiment(plain, workload);
  const ExperimentResult b = RunExperiment(with_default_fault, workload);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.counters.faults_injected, 0u);
  EXPECT_FALSE(a.resilience.any());
}

}  // namespace
}  // namespace nestsim
