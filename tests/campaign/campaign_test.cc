#include "src/campaign/campaign.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/kernel/program.h"
#include "src/workloads/configure.h"

namespace nestsim {
namespace {

// A small but non-trivial workload for determinism checks.
std::shared_ptr<const Workload> SmallConfigure() {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  return std::make_shared<ConfigureWorkload>(spec);
}

// Millions of tiny compute slices: cheap in simulated time but expensive in
// events, so the run takes real wall-clock time and a timeout can fire.
class SlowWorkload : public Workload {
 public:
  std::string name() const override { return "slow"; }
  void Setup(Kernel& kernel, Rng&) const override {
    ProgramBuilder b("spinner");
    b.Loop(50'000'000).Compute(100.0).EndLoop();
    kernel.SpawnInitial(b.Build(), "spinner", tag(), 0);
  }
};

class ThrowingWorkload : public Workload {
 public:
  std::string name() const override { return "throwing"; }
  void Setup(Kernel&, Rng&) const override {
    throw std::runtime_error("synthetic workload failure");
  }
};

CampaignOptions QuietOptions(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.progress = false;
  return options;
}

Campaign MakeGridCampaign(int jobs) {
  Campaign campaign("test", QuietOptions(jobs));
  const auto model = SmallConfigure();
  for (SchedulerKind kind : {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove}) {
    for (uint64_t base_seed : {1, 5}) {
      Job job;
      job.workload = "gcc-small";
      job.variant = SchedulerKindName(kind);
      job.config.scheduler = kind;
      job.model = model;
      job.repetitions = 2;
      job.base_seed = base_seed;
      campaign.Add(job);
    }
  }
  return campaign;
}

TEST(CampaignTest, OutcomesComeBackInSubmissionOrder) {
  Campaign campaign = MakeGridCampaign(/*jobs=*/4);
  const std::vector<Job>& jobs = campaign.jobs();
  const std::vector<JobOutcome> outcomes = campaign.Run();
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].message;
    EXPECT_EQ(outcomes[i].result.runs.size(), 2u);
    EXPECT_GT(outcomes[i].wall_seconds, 0.0);
  }
}

TEST(CampaignTest, ResultsIdenticalAcrossWorkerCounts) {
  const std::vector<JobOutcome> serial = MakeGridCampaign(1).Run();
  const std::vector<JobOutcome> pooled = MakeGridCampaign(8).Run();
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].status, pooled[i].status);
    ASSERT_EQ(serial[i].result.runs.size(), pooled[i].result.runs.size());
    EXPECT_DOUBLE_EQ(serial[i].result.mean_seconds, pooled[i].result.mean_seconds);
    EXPECT_DOUBLE_EQ(serial[i].result.stddev_seconds, pooled[i].result.stddev_seconds);
    EXPECT_DOUBLE_EQ(serial[i].result.mean_energy_j, pooled[i].result.mean_energy_j);
    for (size_t r = 0; r < serial[i].result.runs.size(); ++r) {
      const ExperimentResult& a = serial[i].result.runs[r];
      const ExperimentResult& b = pooled[i].result.runs[r];
      EXPECT_EQ(a.makespan, b.makespan);
      EXPECT_EQ(a.context_switches, b.context_switches);
      EXPECT_EQ(a.migrations, b.migrations);
      EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
      EXPECT_EQ(a.cpus_used, b.cpus_used);
    }
  }
}

TEST(CampaignTest, MatchesRunRepeatedBitwise) {
  const auto model = SmallConfigure();
  Campaign campaign("test", QuietOptions(4));
  Job job;
  job.model = model;
  job.repetitions = 3;
  job.base_seed = 7;
  campaign.Add(job);
  const std::vector<JobOutcome> outcomes = campaign.Run();
  ASSERT_TRUE(outcomes[0].ok());

  const RepeatedResult direct = RunRepeated(ExperimentConfig{}, *model, 3, /*base_seed=*/7);
  EXPECT_EQ(outcomes[0].result.mean_seconds, direct.mean_seconds);
  EXPECT_EQ(outcomes[0].result.stddev_seconds, direct.stddev_seconds);
  ASSERT_EQ(outcomes[0].result.runs.size(), direct.runs.size());
  for (size_t r = 0; r < direct.runs.size(); ++r) {
    EXPECT_EQ(outcomes[0].result.runs[r].makespan, direct.runs[r].makespan);
  }
}

TEST(CampaignTest, TimeoutJobReportsTimeoutAndSparesOthers) {
  for (int jobs : {1, 8}) {
    Campaign campaign("test", QuietOptions(jobs));
    Job slow;
    slow.workload = "slow";
    slow.model = std::make_shared<SlowWorkload>();
    slow.timeout_s = 0.05;
    campaign.Add(slow);
    Job fine;
    fine.workload = "gcc-small";
    fine.model = SmallConfigure();
    campaign.Add(fine);

    const std::vector<JobOutcome> outcomes = campaign.Run();
    EXPECT_EQ(outcomes[0].status, JobStatus::kTimeout) << "jobs=" << jobs;
    EXPECT_LT(outcomes[0].wall_seconds, 30.0);
    EXPECT_TRUE(outcomes[1].ok()) << "jobs=" << jobs;
  }
}

TEST(CampaignTest, ThrownExceptionIsCapturedPerJob) {
  for (int jobs : {1, 8}) {
    Campaign campaign("test", QuietOptions(jobs));
    Job bad;
    bad.workload = "throwing";
    bad.model = std::make_shared<ThrowingWorkload>();
    campaign.Add(bad);
    Job fine;
    fine.workload = "gcc-small";
    fine.model = SmallConfigure();
    campaign.Add(fine);

    const std::vector<JobOutcome> outcomes = campaign.Run();
    EXPECT_EQ(outcomes[0].status, JobStatus::kFailed) << "jobs=" << jobs;
    EXPECT_EQ(outcomes[0].message, "synthetic workload failure");
    EXPECT_TRUE(outcomes[1].ok()) << "jobs=" << jobs;
  }
}

TEST(CampaignTest, ExecuteJobHonoursRepetitionSeeds) {
  Job job;
  job.model = SmallConfigure();
  job.repetitions = 2;
  job.base_seed = 3;
  const JobOutcome outcome = ExecuteJob(job);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.result.runs.size(), 2u);
  // Distinct seeds produce distinct runs.
  EXPECT_NE(outcome.result.runs[0].makespan, outcome.result.runs[1].makespan);
}

TEST(CampaignTest, AbortHookStopsExperimentQuickly) {
  ExperimentConfig config;
  config.should_abort = [] { return true; };
  const ExperimentResult r = RunExperiment(config, SlowWorkload());
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(CampaignTest, MoreWorkersThanJobsIsFine) {
  Campaign campaign("test", QuietOptions(16));
  Job job;
  job.model = SmallConfigure();
  campaign.Add(job);
  const std::vector<JobOutcome> outcomes = campaign.Run();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok());
}

TEST(CampaignTest, EmptyCampaignRuns) {
  Campaign campaign("test", QuietOptions(4));
  EXPECT_TRUE(campaign.Run().empty());
}

TEST(CampaignTest, JobStatusNames) {
  EXPECT_STREQ(JobStatusName(JobStatus::kOk), "ok");
  EXPECT_STREQ(JobStatusName(JobStatus::kTimeout), "timeout");
  EXPECT_STREQ(JobStatusName(JobStatus::kFailed), "failed");
}

}  // namespace
}  // namespace nestsim
