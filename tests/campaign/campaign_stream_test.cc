// Streaming behaviour of the campaign JSONL sink: records are written in
// Add() order *while the campaign runs* (flushed per record), and a job that
// dies still leaves an outcome row — so a killed campaign leaves a parseable
// partial file.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/obs/json_check.h"
#include "src/workloads/configure.h"

namespace nestsim {
namespace {

std::shared_ptr<const Workload> SmallConfigure() {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 5;
  return std::make_shared<ConfigureWorkload>(spec);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

// Blanks the "wall_s" value — the one legitimately nondeterministic field —
// so records can be compared across runs.
std::string StripWallClock(const std::string& line) {
  const std::string key = "\"wall_s\":";
  const size_t start = line.find(key);
  if (start == std::string::npos) {
    return line;
  }
  size_t end = start + key.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  return line.substr(0, start + key.size()) + "?" + line.substr(end);
}

std::vector<std::string> ReadLinesNoWallClock(const std::string& path) {
  std::vector<std::string> lines = ReadLines(path);
  for (std::string& line : lines) {
    line = StripWallClock(line);
  }
  return lines;
}

// Counts the sink file's lines from *inside* a later job, then aborts by
// throwing — the probe that proves earlier records were already flushed
// mid-campaign, not in a post-run loop.
class SinkProbeWorkload : public Workload {
 public:
  SinkProbeWorkload(std::string sink_path, std::atomic<int>* observed)
      : sink_path_(std::move(sink_path)), observed_(observed) {}

  std::string name() const override { return "sink-probe"; }
  void Setup(Kernel&, Rng&) const override {
    observed_->store(static_cast<int>(ReadLines(sink_path_).size()));
    throw std::runtime_error("forced abort after probing the sink");
  }

 private:
  std::string sink_path_;
  std::atomic<int>* observed_;
};

std::string TempSinkPath(const char* name) {
  return testing::TempDir() + "/" + name + ".jsonl";
}

TEST(CampaignStreamTest, RecordsAreFlushedWhileTheCampaignRuns) {
  const std::string path = TempSinkPath("stream_flush");
  std::remove(path.c_str());

  CampaignOptions options;
  options.jobs = 1;  // serial: job 0 must be streamed before job 1 starts
  options.progress = false;
  options.jsonl_path = path;

  std::atomic<int> observed{-1};
  Campaign campaign("stream_test", options);
  Job ok_job;
  ok_job.workload = "gcc-small";
  ok_job.variant = "CFS";
  ok_job.model = SmallConfigure();
  campaign.Add(ok_job);
  Job probe_job;
  probe_job.workload = "probe";
  probe_job.variant = "CFS";
  probe_job.model = std::make_shared<SinkProbeWorkload>(path, &observed);
  campaign.Add(probe_job);

  const std::vector<JobOutcome> outcomes = campaign.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_EQ(outcomes[1].status, JobStatus::kFailed);

  // The probe saw the first job's record already on disk mid-campaign.
  EXPECT_EQ(observed.load(), 1);
}

TEST(CampaignStreamTest, AbortedJobStillGetsAParseableOutcomeRow) {
  const std::string path = TempSinkPath("stream_abort");
  std::remove(path.c_str());

  CampaignOptions options;
  options.jobs = 1;
  options.progress = false;
  options.jsonl_path = path;

  std::atomic<int> observed{-1};
  Campaign campaign("abort_test", options);
  Job probe_job;
  probe_job.workload = "probe";
  probe_job.variant = "CFS";
  probe_job.model = std::make_shared<SinkProbeWorkload>(path, &observed);
  campaign.Add(probe_job);
  Job ok_job;
  ok_job.workload = "gcc-small";
  ok_job.variant = "CFS";
  ok_job.model = SmallConfigure();
  campaign.Add(ok_job);
  campaign.Run();

  // Both rows present — the failed one first — and every line is valid JSON
  // (the partial-file contract for killed campaigns).
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(JsonValid(line, &error)) << line << ": " << error;
  }
  EXPECT_NE(lines[0].find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(lines[0].find("forced abort"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"ok\""), std::string::npos);
}

TEST(CampaignStreamTest, PooledRunStreamsInAddOrder) {
  const std::string serial = TempSinkPath("stream_serial");
  const std::string pooled = TempSinkPath("stream_pooled");
  std::remove(serial.c_str());
  std::remove(pooled.c_str());

  auto run_with = [&](int jobs, const std::string& sink) {
    CampaignOptions options;
    options.jobs = jobs;
    options.progress = false;
    options.jsonl_path = sink;
    Campaign campaign("order_test", options);
    const auto model = SmallConfigure();
    for (uint64_t seed : {1, 2, 3, 4, 5, 6}) {
      Job job;
      job.workload = "gcc-small";
      job.variant = "seed-" + std::to_string(seed);
      job.model = model;
      job.base_seed = seed;
      campaign.Add(job);
    }
    campaign.Run();
  };
  run_with(1, serial);
  run_with(4, pooled);

  // Streamed-while-running output matches the serial file byte-for-byte in
  // every deterministic field (only the measured wall clock may differ).
  EXPECT_EQ(ReadLinesNoWallClock(serial), ReadLinesNoWallClock(pooled));
}

}  // namespace
}  // namespace nestsim
