#include "src/campaign/grid.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/workloads/configure.h"

namespace nestsim {
namespace {

std::shared_ptr<const Workload> SmallConfigure(const std::string& package) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec(package);
  spec.num_tests = 10;
  return std::make_shared<ConfigureWorkload>(spec);
}

GridCampaign MakeGrid(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.progress = false;
  return GridCampaign(
      "grid-test", {"intel-5218-2s", "intel-6130-2s"}, {"gcc", "llvm_ninja"},
      {{"CFS sched", SchedulerKind::kCfs, "schedutil"},
       {"Nest sched", SchedulerKind::kNest, "schedutil"}},
      [](size_t, const std::string& package) { return SmallConfigure(package); }, options);
}

TEST(GridCampaignTest, IndexesResultsByMachineRowVariant) {
  GridCampaign grid = MakeGrid(4);
  grid.set_repetitions(2);
  grid.Run();
  for (size_t m = 0; m < grid.machines().size(); ++m) {
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      for (size_t v = 0; v < grid.variants().size(); ++v) {
        ASSERT_TRUE(grid.outcome(m, r, v).ok());
        EXPECT_EQ(grid.result(m, r, v).runs.size(), 2u);
      }
    }
  }
  // Different cells really are different experiments.
  EXPECT_NE(grid.result(0, 0, 0).runs[0].makespan, grid.result(1, 0, 0).runs[0].makespan);
  EXPECT_NE(grid.result(0, 0, 0).runs[0].makespan, grid.result(0, 1, 0).runs[0].makespan);
}

TEST(GridCampaignTest, PooledGridMatchesSerialRunRepeatedBitwise) {
  GridCampaign grid = MakeGrid(8);
  grid.set_repetitions(2);
  grid.set_base_seed(21);
  grid.Run();
  for (size_t m = 0; m < grid.machines().size(); ++m) {
    for (size_t r = 0; r < grid.rows().size(); ++r) {
      for (size_t v = 0; v < grid.variants().size(); ++v) {
        ExperimentConfig config;
        config.machine = grid.machines()[m];
        config.scheduler = grid.variants()[v].scheduler;
        config.governor = grid.variants()[v].governor;
        const RepeatedResult direct =
            RunRepeated(config, *SmallConfigure(grid.rows()[r]), 2, /*base_seed=*/21);
        const RepeatedResult& pooled = grid.result(m, r, v);
        EXPECT_EQ(pooled.mean_seconds, direct.mean_seconds);
        EXPECT_EQ(pooled.stddev_seconds, direct.stddev_seconds);
        EXPECT_EQ(pooled.mean_energy_j, direct.mean_energy_j);
        ASSERT_EQ(pooled.runs.size(), direct.runs.size());
        for (size_t i = 0; i < direct.runs.size(); ++i) {
          EXPECT_EQ(pooled.runs[i].makespan, direct.runs[i].makespan);
          EXPECT_EQ(pooled.runs[i].context_switches, direct.runs[i].context_switches);
        }
      }
    }
  }
}

TEST(GridCampaignTest, ConfigHookApplies) {
  CampaignOptions options;
  options.jobs = 2;
  options.progress = false;
  GridCampaign grid(
      "grid-test", {"intel-5218-2s"}, {"gcc"},
      {{"CFS sched", SchedulerKind::kCfs, "schedutil"}},
      [](size_t, const std::string& package) { return SmallConfigure(package); }, options);
  grid.set_config_hook([](ExperimentConfig& config) { config.record_trace = true; });
  grid.Run();
  EXPECT_FALSE(grid.result(0, 0, 0).runs[0].trace.empty());
}

TEST(GridCampaignTest, ResultThrowsOnFailedJob) {
  class Bad : public Workload {
   public:
    std::string name() const override { return "bad"; }
    void Setup(Kernel&, Rng&) const override { throw std::runtime_error("boom"); }
  };
  CampaignOptions options;
  options.jobs = 1;
  options.progress = false;
  GridCampaign grid(
      "grid-test", {"intel-5218-2s"}, {"bad"},
      {{"CFS sched", SchedulerKind::kCfs, "schedutil"}},
      [](size_t, const std::string&) { return std::make_shared<Bad>(); }, options);
  grid.Run();
  EXPECT_EQ(grid.outcome(0, 0, 0).status, JobStatus::kFailed);
  EXPECT_THROW(grid.result(0, 0, 0), std::runtime_error);
}

}  // namespace
}  // namespace nestsim
