#include "src/campaign/jsonl_sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/campaign/campaign.h"
#include "src/workloads/configure.h"

namespace nestsim {
namespace {

Job SampleJob() {
  Job job;
  job.workload = "gcc";
  job.variant = "Nest sched";
  job.config.machine = "intel-5218-2s";
  job.config.scheduler = SchedulerKind::kNest;
  job.config.governor = "schedutil";
  job.repetitions = 2;
  job.base_seed = 9;
  return job;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JobRecordJsonTest, OkRecordCarriesConfigAndMetrics) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  Job job = SampleJob();
  job.model = std::make_shared<ConfigureWorkload>(spec);
  const JobOutcome outcome = ExecuteJob(job);
  ASSERT_TRUE(outcome.ok());

  const std::string record = JobRecordJson("unit", job, outcome);
  EXPECT_NE(record.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(record.find("\"workload\":\"gcc\""), std::string::npos);
  EXPECT_NE(record.find("\"variant\":\"Nest sched\""), std::string::npos);
  EXPECT_NE(record.find("\"machine\":\"intel-5218-2s\""), std::string::npos);
  EXPECT_NE(record.find("\"scheduler\":\"Nest\""), std::string::npos);
  EXPECT_NE(record.find("\"governor\":\"schedutil\""), std::string::npos);
  EXPECT_NE(record.find("\"base_seed\":9"), std::string::npos);
  EXPECT_NE(record.find("\"repetitions\":2"), std::string::npos);
  EXPECT_NE(record.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(record.find("\"mean_s\":"), std::string::npos);
  EXPECT_NE(record.find("\"runs\":[{\"seed\":9,"), std::string::npos);
  EXPECT_NE(record.find("{\"seed\":10,"), std::string::npos);
  EXPECT_EQ(record.find('\n'), std::string::npos);  // one line per record
}

// Fault-free records must look exactly like they did before the fault
// subsystem existed: no resilience fields, no fault/budget counters
// (docs/FAULTS.md §5 omission convention).
TEST(JobRecordJsonTest, FaultFreeRecordOmitsResilienceAndFaultCounters) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  Job job = SampleJob();
  job.model = std::make_shared<ConfigureWorkload>(spec);
  const JobOutcome outcome = ExecuteJob(job);
  ASSERT_TRUE(outcome.ok());
  const std::string record = JobRecordJson("unit", job, outcome);
  for (const char* field :
       {"tasks_killed", "replicas_reaped", "evacuations", "work_lost_ms", "wasted_replica_ms",
        "requests_failed", "faults_injected", "tasks_evacuated", "replica_quorum_joins",
        "budget_throttle_ticks", "fault_evacuate"}) {
    EXPECT_EQ(record.find(field), std::string::npos) << field;
  }
}

TEST(JobRecordJsonTest, FaultRunCarriesTheResilienceBlock) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  Job job = SampleJob();
  job.model = std::make_shared<ConfigureWorkload>(spec);
  // A small machine and a high kill rate so some kill certainly lands on the
  // (often lone) busy core and an evacuation makes it into the record.
  job.config.machine = "amd-4650g-1s";
  job.config.fault.core_fail_rate_per_s = 1000.0;
  job.config.fault.core_downtime_ms = 5.0;
  job.config.fault.horizon_s = 2.0;  // keep the pre-drawn plan small
  const JobOutcome outcome = ExecuteJob(job);
  ASSERT_TRUE(outcome.ok());
  const std::string record = JobRecordJson("unit", job, outcome);
  EXPECT_NE(record.find("\"evacuations\":"), std::string::npos);
  EXPECT_NE(record.find("\"faults_injected\":"), std::string::npos);
  EXPECT_NE(record.find("\"tasks_evacuated\":"), std::string::npos);
}

TEST(JobRecordJsonTest, FailedRecordCarriesError) {
  const Job job = SampleJob();
  JobOutcome outcome;
  outcome.status = JobStatus::kFailed;
  outcome.message = "went \"bang\"";
  const std::string record = JobRecordJson("unit", job, outcome);
  EXPECT_NE(record.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(record.find("\"error\":\"went \\\"bang\\\"\""), std::string::npos);
  EXPECT_EQ(record.find("\"runs\""), std::string::npos);
}

TEST(JsonlSinkTest, WritesOneLinePerJob) {
  const std::string path = ::testing::TempDir() + "/nestsim_sink_test.jsonl";
  std::remove(path.c_str());
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.enabled());
    const Job job = SampleJob();
    JobOutcome outcome;
    outcome.status = JobStatus::kTimeout;
    sink.Write("unit", job, outcome);
    sink.Write("unit", job, outcome);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"status\":\"timeout\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, EmptyPathDisables) {
  JsonlSink sink("");
  EXPECT_FALSE(sink.enabled());
  sink.Write("unit", SampleJob(), JobOutcome{});  // must not crash
}

TEST(JsonlSinkTest, CampaignWritesRecordsInSubmissionOrder) {
  const std::string path = ::testing::TempDir() + "/nestsim_campaign_sink.jsonl";
  std::remove(path.c_str());
  CampaignOptions options;
  options.jobs = 4;
  options.progress = false;
  options.jsonl_path = path;
  Campaign campaign("sink-order", options);
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  const auto model = std::make_shared<ConfigureWorkload>(spec);
  for (int i = 0; i < 6; ++i) {
    Job job;
    job.workload = "job-" + std::to_string(i);
    job.model = model;
    campaign.Add(job);
  }
  campaign.Run();

  std::ifstream in(path);
  std::string line;
  int i = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"workload\":\"job-" + std::to_string(i) + "\""), std::string::npos)
        << line;
    ++i;
  }
  EXPECT_EQ(i, 6);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nestsim
