#include "src/check/shrink.h"

#include <gtest/gtest.h>

#include "src/obs/json_check.h"

namespace nestsim {
namespace {

JsonValue ParseSpec(const std::string& text) {
  JsonValue spec;
  std::string error;
  EXPECT_TRUE(JsonParse(text, &spec, &error)) << error;
  return spec;
}

// Fault injection shared by every oracle call: the lost-wakeup mutation with
// the balancers disabled so it cannot self-heal.
DifferentialOptions FaultyOracle() {
  DifferentialOptions options;
  options.mutate_config = [](ExperimentConfig* config) {
    config->kernel.enable_newidle_balance = false;
    config->kernel.enable_periodic_balance = false;
    config->kernel.test_skip_enqueue_dispatch_every = 50;
  };
  return options;
}

// A deliberately baggy failing scenario: extra variant, sweep axis, spare
// config overrides, and a three-member composition. The shrinker must strip
// the baggage while keeping the failure alive.
JsonValue BaggyFailingSpec() {
  return ParseSpec(R"({
    "name": "shrinkme",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"},
      {"label": "smove", "scheduler": "smove", "governor": "schedutil"}
    ],
    "workload": {"family": "multi", "params": {"members": [
      {"family": "hackbench", "params": {"groups": 2, "fan": 2, "loops": 8}},
      {"family": "schbench",
       "params": {"message_threads": 1, "workers_per_thread": 2, "rounds": 5, "work_ms": 0.5}},
      {"family": "configure", "params": {"num_tests": 10, "child_work_ms": 0.5}}
    ]}},
    "repetitions": 1,
    "base_seed": 7,
    "config": {"time_limit_s": 20, "nest.r_max": 5, "nest.enable_spin": false},
    "sweep": {"nest.r_impatient": [0, 2]},
    "table": {"style": "none"}
  })");
}

TEST(ShrinkTest, MinimisesAnInjectedFailureBelowThreeApps) {
  ShrinkOptions options;
  options.diff = FaultyOracle();
  const JsonValue input = BaggyFailingSpec();
  const ShrinkOutcome outcome = ShrinkScenario(input, /*full_load=*/false, options);

  EXPECT_GE(outcome.accepted, 3) << outcome.json;
  EXPECT_LT(outcome.json.size(), JsonSerialize(input, 2).size()) << outcome.json;

  // Still a failing, parseable repro.
  EXPECT_FALSE(RunDifferential(outcome.spec, false, options.diff).ok()) << outcome.json;

  // The baggage is gone: no sweep, at most two variants, at most three apps.
  EXPECT_EQ(outcome.spec.Find("sweep"), nullptr) << outcome.json;
  const JsonValue* variants = outcome.spec.Find("variants");
  ASSERT_NE(variants, nullptr);
  EXPECT_LE(variants->items.size(), 2u) << outcome.json;
  const JsonValue* workload = outcome.spec.Find("workload");
  ASSERT_NE(workload, nullptr);
  size_t apps = 1;
  if (workload->Find("family")->string == "multi") {
    apps = workload->Find("params")->Find("members")->items.size();
  }
  EXPECT_LE(apps, 3u) << outcome.json;
}

TEST(ShrinkTest, NonFailingSpecReturnsUnshrunk) {
  const JsonValue spec = ParseSpec(R"({
    "name": "healthy",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 1, "fan": 2, "loops": 5}},
    "repetitions": 1,
    "config": {"time_limit_s": 20},
    "table": {"style": "none"}
  })");
  const ShrinkOutcome outcome = ShrinkScenario(spec, false);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.accepted, 0);
  EXPECT_EQ(outcome.json, JsonSerialize(spec, 2) + "\n");
}

}  // namespace
}  // namespace nestsim
