#include "src/check/differential.h"

#include <gtest/gtest.h>

#include "src/obs/json_check.h"

namespace nestsim {
namespace {

JsonValue ParseSpec(const std::string& text) {
  JsonValue spec;
  std::string error;
  EXPECT_TRUE(JsonParse(text, &spec, &error)) << error;
  return spec;
}

// A small wakeup-heavy scenario: hackbench drives enough enqueues that a
// dispatch fault trips quickly, and the three variants exercise every policy.
JsonValue HackbenchSpecJson() {
  return ParseSpec(R"({
    "name": "diff-hackbench",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"},
      {"label": "smove", "scheduler": "smove", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 2, "fan": 2, "loops": 8}},
    "repetitions": 1,
    "base_seed": 11,
    "config": {"time_limit_s": 20},
    "table": {"style": "none"}
  })");
}

TEST(DifferentialTest, CleanScenarioPassesAllCrossChecks) {
  const DifferentialReport report = RunDifferential(HackbenchSpecJson(), /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
  EXPECT_EQ(report.jobs, 3u);
}

TEST(DifferentialTest, FullLoadNasIsCfsNestNeutral) {
  const JsonValue spec = ParseSpec(R"({
    "name": "diff-nas",
    "machines": ["intel-5220-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "performance"},
      {"label": "nest", "scheduler": "nest", "governor": "performance"}
    ],
    "workload": {"family": "nas",
                 "params": {"threads": 0, "iter_compute_ms": 1.0, "iterations": 10}},
    "repetitions": 1,
    "base_seed": 3,
    "config": {"time_limit_s": 20},
    "table": {"style": "none"}
  })");
  const DifferentialReport report = RunDifferential(spec, /*full_load=*/true);
  EXPECT_TRUE(report.ok()) << report.Join();
}

// Fault injection (docs/FAULTS.md) pre-draws its plan from the run seed, so
// the serial and pooled passes must stay digest-identical even while cores
// die, tasks evacuate, and replica quorums race to JOIN.
TEST(DifferentialTest, FaultInjectionStaysDeterministicAcrossWorkerCounts) {
  const JsonValue spec = ParseSpec(R"({
    "name": "diff-faults",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"},
      {"label": "nest_cache", "scheduler": "nest_cache", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 2, "fan": 2, "loops": 8}},
    "repetitions": 2,
    "base_seed": 17,
    "config": {
      "time_limit_s": 20,
      "fault.core_fail_rate_per_s": 40.0,
      "fault.core_downtime_ms": 10.0,
      "replicas": 2,
      "fault.quorum": 1
    },
    "table": {"style": "none"}
  })");
  const DifferentialReport report = RunDifferential(spec, /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
  EXPECT_EQ(report.jobs, 3u);
}

// Same property under a per-socket power cap: the budget governor's windowed
// power reading folds lazily per experiment, never across the worker pool.
TEST(DifferentialTest, PowerCapStaysDeterministicAcrossWorkerCounts) {
  const JsonValue spec = ParseSpec(R"({
    "name": "diff-budget",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "budget"},
      {"label": "nest", "scheduler": "nest", "governor": "budget"},
      {"label": "nest_budget", "scheduler": "nest_budget", "governor": "budget"}
    ],
    "workload": {"family": "nas",
                 "params": {"threads": 8, "iter_compute_ms": 1.0, "iterations": 10}},
    "repetitions": 1,
    "base_seed": 5,
    "config": {"time_limit_s": 20, "power.budget_w": 25.0},
    "table": {"style": "none"}
  })");
  const DifferentialReport report = RunDifferential(spec, /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
}

// Mutation self-test, differential flavour: inject the lost-wakeup fault into
// every job (balancers off so nothing rescues it) and the invariant checker
// must fail the runs, which the differential report surfaces.
TEST(DifferentialTest, InjectedLostWakeupFailsTheReport) {
  DifferentialOptions options;
  options.mutate_config = [](ExperimentConfig* config) {
    config->kernel.enable_newidle_balance = false;
    config->kernel.enable_periodic_balance = false;
    config->kernel.test_skip_enqueue_dispatch_every = 50;
  };
  const DifferentialReport report =
      RunDifferential(HackbenchSpecJson(), /*full_load=*/false, options);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Join().find("invariant"), std::string::npos) << report.Join();
}

TEST(DifferentialTest, InvalidSpecIsReportedNotCrashed) {
  const JsonValue spec = ParseSpec(R"({"name": "broken"})");
  const DifferentialReport report = RunDifferential(spec, false);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Join().find("does not parse"), std::string::npos);
}

}  // namespace
}  // namespace nestsim
