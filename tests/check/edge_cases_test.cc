// Edge-case coverage riding on the differential harness (docs/TESTING.md):
// degenerate configurations that exercise rarely-hit paths — zero-delay
// Smove, a single-core machine, time-limit expiry with migrations in flight,
// and governor selection through a sweep axis.

#include <gtest/gtest.h>

#include <memory>

#include "src/check/differential.h"
#include "src/check/invariant_checker.h"
#include "src/governors/governors.h"
#include "src/nest/nest_policy.h"
#include "src/obs/json_check.h"
#include "src/scenario/runner.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

JsonValue ParseSpec(const std::string& text) {
  JsonValue spec;
  std::string error;
  EXPECT_TRUE(JsonParse(text, &spec, &error)) << error;
  return spec;
}

// Smove with move_delay_us = 0: the park-then-move window collapses to the
// same instant, so arm and fire land on one timestamp. The run must stay
// deterministic and invariant-clean.
TEST(EdgeCaseTest, ZeroDelaySmoveIsCleanAndDeterministic) {
  const JsonValue spec = ParseSpec(R"({
    "name": "edge-smove-zero",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "smove", "scheduler": "smove", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 2, "fan": 2, "loops": 8}},
    "repetitions": 1,
    "base_seed": 5,
    "config": {"time_limit_s": 20, "smove.move_delay_us": 0},
    "table": {"style": "none"}
  })");

  // The override must actually reach the policy params.
  Scenario scenario;
  ScenarioError err;
  ASSERT_TRUE(ParseScenario(spec, "edge", &scenario, &err)) << err.Join();
  ScenarioRun run;
  ASSERT_TRUE(ExpandScenario(scenario, ScenarioRunOptions(), &run, &err)) << err.Join();
  EXPECT_EQ(run.job(0, 0, 1).config.smove.move_delay, 0);

  const DifferentialReport report = RunDifferential(spec, /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
}

// Nest on a single-core machine: the primary mask can never expand beyond
// CPU 0 and every wakeup lands on the one core. Fork/join must still
// complete with the checker attached and silent.
TEST(EdgeCaseTest, NestOnSingleCoreMachineCompletesClean) {
  Engine engine;
  HardwareModel hw(&engine, FixedFreqMachine(/*sockets=*/1, /*phys_per_socket=*/1,
                                             /*threads_per_core=*/1));
  NestPolicy policy;
  SchedutilGovernor governor;
  Kernel kernel(&engine, &hw, &policy, &governor);
  InvariantChecker checker(&kernel);
  kernel.AddObserver(&checker);
  kernel.Start();

  ProgramBuilder worker("w");
  worker.ComputeMs(1.0).SleepMs(0.5).ComputeMs(1.0);
  ProgramBuilder parent("p");
  parent.ComputeMs(0.5).Fork(worker.Build()).Fork(worker.Build()).JoinChildren();
  kernel.SpawnInitial(parent.Build(), "p", 0, 0);

  while (kernel.live_tasks() > 0 && engine.Now() < kSecond) {
    ASSERT_TRUE(engine.Step());
  }
  EXPECT_EQ(kernel.live_tasks(), 0);
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

// A workload far larger than the time limit, under Smove with a long move
// delay so armed migrations are routinely in flight when the limit expires.
// Expiry must be reported per-repetition, not as a job failure, and the
// cross-checks must still hold (accounting skips time-limited cells).
TEST(EdgeCaseTest, TimeLimitExpiryWithMigrationsInFlightIsAccounted) {
  const JsonValue spec = ParseSpec(R"({
    "name": "edge-time-limit",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "smove", "scheduler": "smove", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 4, "fan": 4, "loops": 20000}},
    "repetitions": 1,
    "base_seed": 9,
    "config": {"time_limit_s": 0.05, "smove.move_delay_us": 500},
    "table": {"style": "none"}
  })");

  Scenario scenario;
  ScenarioError err;
  ASSERT_TRUE(ParseScenario(spec, "edge", &scenario, &err)) << err.Join();
  ScenarioRunOptions options;
  options.campaign.progress = false;
  options.campaign.jsonl_path.clear();
  ScenarioRun run;
  ASSERT_TRUE(ExpandScenario(scenario, options, &run, &err)) << err.Join();
  for (Job& job : run.jobs) {
    job.config.check_invariants = true;
  }
  ExecuteScenario(&run);
  for (size_t v = 0; v < run.num_variants(); ++v) {
    const JobOutcome& outcome = run.outcome(0, 0, v);
    ASSERT_TRUE(outcome.ok()) << outcome.message;
    EXPECT_TRUE(outcome.result.runs[0].hit_time_limit)
        << "variant " << v << " should run out of simulated time";
  }

  const DifferentialReport report = RunDifferential(spec, /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
}

// The governor override key works as a sweep axis: one grid covers both
// governors and each job's config carries the right one.
TEST(EdgeCaseTest, GovernorSweepOverrideSelectsPerSweepPoint) {
  const JsonValue spec = ParseSpec(R"({
    "name": "edge-governor-sweep",
    "machines": ["amd-4650g-1s"],
    "variants": [
      {"label": "cfs", "scheduler": "cfs", "governor": "schedutil"},
      {"label": "nest", "scheduler": "nest", "governor": "schedutil"}
    ],
    "workload": {"family": "hackbench", "params": {"groups": 1, "fan": 2, "loops": 6}},
    "repetitions": 1,
    "base_seed": 2,
    "config": {"time_limit_s": 20},
    "sweep": {"governor": ["schedutil", "performance"]},
    "table": {"style": "none"}
  })");

  Scenario scenario;
  ScenarioError err;
  ASSERT_TRUE(ParseScenario(spec, "edge", &scenario, &err)) << err.Join();
  ScenarioRun run;
  ASSERT_TRUE(ExpandScenario(scenario, ScenarioRunOptions(), &run, &err)) << err.Join();
  ASSERT_EQ(run.num_sweeps(), 2u);
  EXPECT_EQ(run.job(0, 0, 0, 0).config.governor, "schedutil");
  EXPECT_EQ(run.job(0, 0, 0, 1).config.governor, "performance");

  const DifferentialReport report = RunDifferential(spec, /*full_load=*/false);
  EXPECT_TRUE(report.ok()) << report.Join();
}

}  // namespace
}  // namespace nestsim
