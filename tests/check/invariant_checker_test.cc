#include "src/check/invariant_checker.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/cfs/cfs_policy.h"
#include "src/core/experiment.h"
#include "src/governors/governors.h"
#include "src/nest/nest_policy.h"
#include "src/workloads/micro.h"
#include "tests/testing/test_machine.h"

namespace nestsim {
namespace {

TEST(InvariantNamesTest, OnePerEnumeratorAllDistinct) {
  const std::vector<std::string> names = InvariantNames();
  ASSERT_EQ(names.size(), static_cast<size_t>(kNumInvariants));
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(), names.size());
  EXPECT_EQ(names.front(), "work_conservation");
  EXPECT_EQ(names.back(), "time_monotonicity");
}

// Kernel + checker over a tiny fixed-frequency machine, driven directly so
// tests control Kernel::Params (RunExperiment only accepts preset machines).
struct CheckerRig {
  explicit CheckerRig(Kernel::Params params, int sockets = 1, int phys = 1)
      : hw(&engine, FixedFreqMachine(sockets, phys, /*threads_per_core=*/1)),
        policy(std::make_unique<CfsPolicy>()),
        kernel(&engine, &hw, policy.get(), &governor, params),
        checker(&kernel) {
    kernel.AddObserver(&checker);
    kernel.Start();
  }

  // Steps until every task exited or simulated time passes `limit`.
  void Run(SimTime limit) {
    while (kernel.live_tasks() > 0 && engine.Now() < limit) {
      ASSERT_TRUE(engine.Step());
    }
  }

  Engine engine;
  HardwareModel hw;
  std::unique_ptr<SchedulerPolicy> policy;
  PerformanceGovernor governor;
  Kernel kernel;
  InvariantChecker checker;
};

Kernel::Params NoBalanceParams() {
  Kernel::Params p;
  p.enable_newidle_balance = false;
  p.enable_periodic_balance = false;
  return p;
}

ProgramPtr ForkJoinProgram() {
  ProgramBuilder worker("w");
  worker.ComputeMs(2.0);
  ProgramBuilder parent("p");
  parent.ComputeMs(1.0).Fork(worker.Build()).JoinChildren().ComputeMs(1.0);
  return parent.Build();
}

TEST(InvariantCheckerTest, CleanForkJoinRunReportsNothing) {
  CheckerRig rig(NoBalanceParams());
  rig.kernel.SpawnInitial(ForkJoinProgram(), "p", 0, 0);
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_TRUE(rig.checker.ok());
  EXPECT_EQ(rig.checker.Report(), "");
}

TEST(InvariantCheckerTest, WorkConservationAutoDisablesWithoutBalancers) {
  CheckerRig no_balance(NoBalanceParams());
  EXPECT_FALSE(no_balance.checker.work_conservation_enabled());
  CheckerRig balanced(Kernel::Params{});
  EXPECT_TRUE(balanced.checker.work_conservation_enabled());
}

// The mutation self-test: a deliberately broken kernel (every 3rd enqueue
// skips its dispatch step — a lost wakeup) must be caught. On one CPU with
// the balancers off nothing can rescue the stuck queue, so the failure is
// deterministic: the join-blocked parent's wakeup is the 3rd enqueue.
TEST(InvariantCheckerTest, InjectedLostWakeupIsCaught) {
  Kernel::Params params = NoBalanceParams();
  params.test_skip_enqueue_dispatch_every = 3;
  CheckerRig rig(params);
  rig.kernel.SpawnInitial(ForkJoinProgram(), "p", 0, 0);
  rig.Run(kSecond);
  EXPECT_GT(rig.kernel.live_tasks(), 0) << "the fault injection should wedge the run";
  EXPECT_FALSE(rig.checker.ok());
  EXPECT_GT(rig.checker.violations(Invariant::kQueueLiveness), 0u);
  EXPECT_NE(rig.checker.Report().find("queue_liveness"), std::string::npos);
}

// The same fault with the balancers on self-heals (the stuck CPU is a steal
// source), so the multi-core differential tests must disable balancing to
// make the mutation stick — this pins that reasoning down.
TEST(InvariantCheckerTest, BalancersRescueTheLostWakeupOnMultiCore) {
  Kernel::Params params;  // balancers on
  params.test_skip_enqueue_dispatch_every = 3;
  CheckerRig rig(params, /*sockets=*/1, /*phys=*/4);
  rig.kernel.SpawnInitial(ForkJoinProgram(), "p", 0, 0);
  rig.Run(kSecond);
  EXPECT_EQ(rig.kernel.live_tasks(), 0);
  EXPECT_EQ(rig.checker.violations(Invariant::kQueueLiveness), 0u);
}

// Observer callbacks can be driven directly: time running backwards.
TEST(InvariantCheckerTest, TimeMonotonicityViolationIsReported) {
  CheckerRig rig(NoBalanceParams());
  rig.checker.OnTaskExit(100, *rig.kernel.SpawnInitial(ForkJoinProgram(), "p", 0, 0));
  rig.checker.OnIdleSpinStart(40, 0, 1);
  EXPECT_FALSE(rig.checker.ok());
  EXPECT_GT(rig.checker.violations(Invariant::kTimeMonotonicity), 0u);
  EXPECT_NE(rig.checker.Report().find("time_monotonicity"), std::string::npos);
}

TEST(InvariantCheckerTest, OutOfEnvelopeFrequencyIsReported) {
  CheckerRig rig(NoBalanceParams());
  rig.checker.OnCoreFreqChange(0, 0, 99.0);  // FixedFreqMachine tops out at 1 GHz
  EXPECT_GT(rig.checker.violations(Invariant::kTurboAccounting), 0u);
}

TEST(InvariantCheckerTest, ReportTruncatesMessagesButCountsAll) {
  InvariantChecker::Options options;
  options.max_messages = 2;
  Engine engine;
  HardwareModel hw(&engine, FixedFreqMachine(1, 1, 1));
  CfsPolicy policy;
  PerformanceGovernor governor;
  Kernel kernel(&engine, &hw, &policy, &governor, NoBalanceParams());
  InvariantChecker checker(&kernel, options);
  for (int i = 0; i < 5; ++i) {
    checker.OnCoreFreqChange(0, 0, 99.0);
  }
  EXPECT_EQ(checker.total_violations(), 5u);
  EXPECT_EQ(checker.messages().size(), 2u);
  EXPECT_NE(checker.Report().find("and 3 more"), std::string::npos);
}

// Regression: Nest's §3.4 placement race produces claim collisions on idle
// cores under wakeup-heavy load; those are legitimate and must not fire the
// reservation-exclusivity invariant (only claim-bookkeeping disagreements do).
TEST(InvariantCheckerTest, NestCollisionsUnderChurnAreNotViolations) {
  ExperimentConfig config;
  config.machine = "intel-5220-1s";
  config.scheduler = SchedulerKind::kNest;
  config.check_invariants = true;
  HackbenchWorkload workload(HackbenchSpec{/*groups=*/2, /*fan=*/3, /*loops=*/10});
  const ExperimentResult result = RunExperiment(config, workload);  // throws on violation
  EXPECT_GT(result.tasks_created, 0);
}

}  // namespace
}  // namespace nestsim
