#include "src/check/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/scenario/scenario.h"

namespace nestsim {
namespace {

TEST(GeneratorTest, EverySeedYieldsAValidScenario) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const GeneratedScenario gen = GenerateScenario(seed);
    Scenario scenario;
    ScenarioError err;
    ASSERT_TRUE(ParseScenario(gen.spec, "gen", &scenario, &err))
        << "seed " << seed << ":\n" << err.Join() << "\n" << gen.json;
    EXPECT_EQ(scenario.name, "fuzz-" + std::to_string(seed));
    EXPECT_EQ(scenario.machines.size(), 1u);
    EXPECT_GE(scenario.variants.size(), 2u);
    EXPECT_EQ(scenario.repetitions, 1);
    EXPECT_TRUE(scenario.has_config);
  }
}

TEST(GeneratorTest, DeterministicPerSeedAndDiverseAcrossSeeds) {
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const GeneratedScenario a = GenerateScenario(seed);
    const GeneratedScenario b = GenerateScenario(seed);
    EXPECT_EQ(a.json, b.json) << "seed " << seed;
    EXPECT_EQ(a.full_load, b.full_load);
    distinct.insert(a.json);
  }
  EXPECT_EQ(distinct.size(), 50u) << "seeds should not collide";
}

// The serialized form is a standard scenario file: it re-parses to the same
// tree (spot-checked through a second serialization).
TEST(GeneratorTest, JsonRoundTrips) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const GeneratedScenario gen = GenerateScenario(seed);
    JsonValue reparsed;
    std::string error;
    ASSERT_TRUE(JsonParse(gen.json, &reparsed, &error)) << "seed " << seed << ": " << error;
    EXPECT_EQ(JsonSerialize(reparsed, 2) + "\n", gen.json) << "seed " << seed;
  }
}

TEST(GeneratorTest, FullLoadFlagMarksSaturatingNasRows) {
  bool saw_full_load = false;
  bool saw_partial = false;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const GeneratedScenario gen = GenerateScenario(seed);
    if (gen.full_load) {
      saw_full_load = true;
      const JsonValue* workload = gen.spec.Find("workload");
      ASSERT_NE(workload, nullptr);
      EXPECT_EQ(workload->Find("family")->string, "nas");
      EXPECT_EQ(workload->Find("params")->Find("threads")->number, 0);
    } else {
      saw_partial = true;
    }
  }
  EXPECT_TRUE(saw_full_load);
  EXPECT_TRUE(saw_partial);
}

TEST(GeneratorTest, ClusterDrawsForceRequestsTrafficAndStaySmall) {
  int clusters = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const GeneratedScenario gen = GenerateScenario(seed);
    const JsonValue* cluster = gen.spec.Find("cluster");
    if (cluster == nullptr) {
      continue;
    }
    ++clusters;
    // Mostly 1-4 machines; an occasional rack-sized draw (up to 8) keeps the
    // cross-machine PDES paths fuzzed without blowing the runtime budget.
    const double machines = cluster->Find("machines")->number;
    EXPECT_GE(machines, 1) << "seed " << seed;
    EXPECT_LE(machines, 8) << "seed " << seed;
    const std::string router = cluster->Find("router")->string;
    EXPECT_TRUE(router == "passthrough" || router == "round-robin" ||
                router == "least-loaded" || router == "power-aware")
        << "seed " << seed << ": " << router;
    // The fleet only serves the open-loop family, and a cluster run never
    // claims full load (the neutrality band is calibrated for NAS rows).
    EXPECT_EQ(gen.spec.Find("workload")->Find("family")->string, "requests")
        << "seed " << seed;
    EXPECT_FALSE(gen.full_load) << "seed " << seed;
  }
  // ~25% draw rate over 200 seeds; wide band so the test pins the feature,
  // not the exact Rng stream.
  EXPECT_GT(clusters, 20);
  EXPECT_LT(clusters, 100);
}

TEST(GeneratorTest, PredictionVariantsAreDrawnWithTheirConstraints) {
  int predicts = 0;
  int oracles = 0;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const GeneratedScenario gen = GenerateScenario(seed);
    bool has_predict = false;
    bool has_oracle = false;
    for (const JsonValue& v : gen.spec.Find("variants")->items) {
      const std::string& scheduler = v.Find("scheduler")->string;
      has_predict = has_predict || scheduler == "nest_predict";
      has_oracle = has_oracle || scheduler == "nest_oracle";
    }
    if (has_predict) {
      ++predicts;
      // The predictor always loads the committed tiny model, so the biased
      // first step actually fires under fuzzing.
      const JsonValue* model = gen.spec.Find("config")->Find("predict.model_file");
      ASSERT_NE(model, nullptr) << "seed " << seed;
      EXPECT_EQ(model->string, "models/tiny-predict.json") << "seed " << seed;
    }
    if (has_oracle) {
      ++oracles;
      // The parser rejects nest_oracle under cluster; the generator must
      // never pair them.
      EXPECT_EQ(gen.spec.Find("cluster"), nullptr) << "seed " << seed;
    }
  }
  // ~15% each over 300 seeds (the oracle thinned by the cluster gate); wide
  // bands so the test pins the feature, not the exact Rng stream.
  EXPECT_GT(predicts, 15);
  EXPECT_LT(predicts, 120);
  EXPECT_GT(oracles, 10);
  EXPECT_LT(oracles, 100);
}

}  // namespace
}  // namespace nestsim
