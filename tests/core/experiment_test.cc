#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/kernel/program.h"
#include "src/workloads/configure.h"
#include "src/workloads/nas.h"

namespace nestsim {
namespace {

// A trivial inline workload for focused experiment tests.
class OneTaskWorkload : public Workload {
 public:
  explicit OneTaskWorkload(double work_ghz_ns) : work_(work_ghz_ns) {}
  std::string name() const override { return "one-task"; }
  void Setup(Kernel& kernel, Rng&) const override {
    ProgramBuilder b("t");
    b.Compute(work_);
    kernel.SpawnInitial(b.Build(), "t", tag(), 0);
  }

 private:
  double work_;
};

TEST(ExperimentTest, LabelsAreReadable) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kNest;
  config.governor = "schedutil";
  EXPECT_EQ(config.Label(), "Nest sched");
  config.scheduler = SchedulerKind::kCfs;
  config.governor = "performance";
  EXPECT_EQ(config.Label(), "CFS perf");
}

TEST(ExperimentTest, SchedulerKindNames) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kCfs), "CFS");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kNest), "Nest");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kSmove), "Smove");
}

TEST(ExperimentTest, BasicMetricsPopulated) {
  ExperimentConfig config;
  config.machine = "intel-6130-2s";
  const ExperimentResult r = RunExperiment(config, OneTaskWorkload(10e6));
  EXPECT_GT(r.makespan, 0);
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_EQ(r.tasks_created, 1);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_FALSE(r.freq_hist.edges.empty());
  EXPECT_EQ(r.cpus_used.size(), 1u);
}

TEST(ExperimentTest, MakespanRespectsComputeLowerBound) {
  // 10e6 GHz-ns at the 6130's max turbo (3.7 GHz) takes at least 2.7 ms.
  ExperimentConfig config;
  config.machine = "intel-6130-2s";
  const ExperimentResult r = RunExperiment(config, OneTaskWorkload(10e6));
  EXPECT_GE(r.makespan, MillisecondsF(10.0 / 3.7));
}

TEST(ExperimentTest, SameSeedIsBitReproducible) {
  ExperimentConfig config;
  config.seed = 77;
  ConfigureWorkload workload("gcc");
  const ExperimentResult a = RunExperiment(config, workload);
  const ExperimentResult b = RunExperiment(config, workload);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.cpus_used, b.cpus_used);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig a;
  a.seed = 1;
  ExperimentConfig b;
  b.seed = 2;
  ConfigureWorkload workload("gcc");
  EXPECT_NE(RunExperiment(a, workload).makespan, RunExperiment(b, workload).makespan);
}

TEST(ExperimentTest, AllSchedulersRun) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  for (SchedulerKind kind : {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove}) {
    ExperimentConfig config;
    config.scheduler = kind;
    const ExperimentResult r = RunExperiment(config, workload);
    EXPECT_FALSE(r.hit_time_limit) << SchedulerKindName(kind);
    EXPECT_GT(r.makespan, 0) << SchedulerKindName(kind);
  }
}

TEST(ExperimentTest, BothGovernorsRun) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  for (const char* gov : {"schedutil", "performance"}) {
    ExperimentConfig config;
    config.governor = gov;
    const ExperimentResult r = RunExperiment(config, workload);
    EXPECT_FALSE(r.hit_time_limit) << gov;
  }
}

TEST(ExperimentTest, TimeLimitStopsRunaway) {
  ExperimentConfig config;
  config.time_limit = 10 * kMillisecond;
  const ExperimentResult r = RunExperiment(config, OneTaskWorkload(1e12));  // ~5 min of work
  EXPECT_TRUE(r.hit_time_limit);
}

TEST(ExperimentTest, TraceOnlyWhenRequested) {
  ExperimentConfig config;
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 5;
  ConfigureWorkload workload(spec);
  EXPECT_TRUE(RunExperiment(config, workload).trace.empty());
  config.record_trace = true;
  EXPECT_FALSE(RunExperiment(config, workload).trace.empty());
}

TEST(ExperimentTest, UnderloadSeriesOnlyWhenRequested) {
  ExperimentConfig config;
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 5;
  ConfigureWorkload workload(spec);
  EXPECT_TRUE(RunExperiment(config, workload).underload_series.empty());
  config.record_underload_series = true;
  EXPECT_FALSE(RunExperiment(config, workload).underload_series.empty());
}

TEST(RunRepeatedTest, AggregatesAcrossSeeds) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  ExperimentConfig config;
  const RepeatedResult rr = RunRepeated(config, workload, 3, /*base_seed=*/10);
  EXPECT_EQ(rr.runs.size(), 3u);
  EXPECT_GT(rr.mean_seconds, 0.0);
  EXPECT_GE(rr.stddev_seconds, 0.0);
  EXPECT_GT(rr.mean_energy_j, 0.0);
  // Mean matches the runs.
  double sum = 0;
  for (const auto& run : rr.runs) {
    sum += run.seconds();
  }
  EXPECT_NEAR(rr.mean_seconds, sum / 3.0, 1e-12);
  EXPECT_FALSE(rr.mean_freq_hist.edges.empty());
}

TEST(RunRepeatedTest, MeanAndStddevMatchHandComputation) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  ExperimentConfig config;
  const RepeatedResult rr = RunRepeated(config, workload, 4, /*base_seed=*/5);
  ASSERT_EQ(rr.runs.size(), 4u);

  double sum = 0.0;
  double sum_energy = 0.0;
  double sum_underload = 0.0;
  for (const ExperimentResult& run : rr.runs) {
    sum += run.seconds();
    sum_energy += run.energy_joules;
    sum_underload += run.underload_per_s;
  }
  const double mean = sum / 4.0;
  double var = 0.0;
  for (const ExperimentResult& run : rr.runs) {
    var += (run.seconds() - mean) * (run.seconds() - mean);
  }
  EXPECT_NEAR(rr.mean_seconds, mean, 1e-12);
  EXPECT_NEAR(rr.mean_energy_j, sum_energy / 4.0, 1e-9);
  EXPECT_NEAR(rr.mean_underload_per_s, sum_underload / 4.0, 1e-9);
  // Stddev is the sample (n-1) form, as paper-style variance annotations are.
  EXPECT_NEAR(rr.stddev_seconds, std::sqrt(var / 3.0), 1e-12);
  EXPECT_NEAR(rr.stddev_pct(), 100.0 * rr.stddev_seconds / rr.mean_seconds, 1e-12);
}

TEST(RunRepeatedTest, StddevPctZeroWhenMeanZero) {
  RepeatedResult rr;
  EXPECT_EQ(rr.stddev_pct(), 0.0);
}

TEST(RunRepeatedTest, FreqHistSumsSecondsAcrossRuns) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  ExperimentConfig config;
  const RepeatedResult rr = RunRepeated(config, workload, 3);
  ASSERT_EQ(rr.runs.size(), 3u);
  ASSERT_FALSE(rr.mean_freq_hist.edges.empty());
  EXPECT_EQ(rr.mean_freq_hist.edges, rr.runs[0].freq_hist.edges);
  for (size_t b = 0; b < rr.mean_freq_hist.seconds.size(); ++b) {
    double sum = 0.0;
    for (const ExperimentResult& run : rr.runs) {
      sum += run.freq_hist.seconds[b];
    }
    EXPECT_NEAR(rr.mean_freq_hist.seconds[b], sum, 1e-9) << "bucket " << b;
  }
}

TEST(RunRepeatedTest, AggregateRunsMatchesRunRepeated) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  ExperimentConfig config;

  std::vector<ExperimentResult> runs;
  for (int i = 0; i < 3; ++i) {
    ExperimentConfig c = config;
    c.seed = 1 + static_cast<uint64_t>(i);
    runs.push_back(RunExperiment(c, workload));
  }
  const RepeatedResult direct = AggregateRuns(std::move(runs));
  const RepeatedResult repeated = RunRepeated(config, workload, 3);
  EXPECT_EQ(direct.mean_seconds, repeated.mean_seconds);
  EXPECT_EQ(direct.stddev_seconds, repeated.stddev_seconds);
  EXPECT_EQ(direct.mean_energy_j, repeated.mean_energy_j);
  EXPECT_EQ(direct.mean_underload_per_s, repeated.mean_underload_per_s);
  EXPECT_EQ(direct.mean_freq_hist.seconds, repeated.mean_freq_hist.seconds);
}

TEST(RunRepeatedTest, DistinctSeedsUsed) {
  ConfigureSpec spec = ConfigureWorkload::PackageSpec("gcc");
  spec.num_tests = 10;
  ConfigureWorkload workload(spec);
  ExperimentConfig config;
  const RepeatedResult rr = RunRepeated(config, workload, 3);
  EXPECT_GT(rr.stddev_seconds, 0.0);  // seeds produced different runs
}

TEST(ExperimentTest, NestParamsReachThePolicy) {
  // An extreme Nest configuration must change behaviour: disabling every
  // feature plus a tiny reserve degenerates toward CFS-like dispersal.
  ConfigureWorkload workload("gcc");
  ExperimentConfig nest;
  nest.scheduler = SchedulerKind::kNest;
  const ExperimentResult full = RunExperiment(nest, workload);

  ExperimentConfig crippled = nest;
  crippled.nest.enable_spin = false;
  crippled.nest.enable_reserve = false;
  crippled.nest.enable_attach = false;
  crippled.nest.enable_compaction = false;
  const ExperimentResult stripped = RunExperiment(crippled, workload);
  EXPECT_NE(full.makespan, stripped.makespan);
}

TEST(ExperimentTest, EnergyScalesWithMachineSize) {
  OneTaskWorkload workload(50e6);
  ExperimentConfig small;
  small.machine = "intel-6130-2s";
  ExperimentConfig big;
  big.machine = "intel-6130-4s";
  // Same work, twice the sockets idling: more total energy.
  EXPECT_GT(RunExperiment(big, workload).energy_joules,
            RunExperiment(small, workload).energy_joules);
}

}  // namespace
}  // namespace nestsim
