// Behaviour-invariance guarantees of the cache/NUMA warmth model
// (docs/MODEL.md §5): a disabled model is byte-identical to the pre-model
// simulator for every scheduler, NestCache with its three switches off makes
// the same decisions as plain Nest, and an enabled model actually moves the
// metrics. These are the experiment-level counterparts of the golden-digest
// gate on scenarios/cache_ablation.json.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/workloads/nas.h"

namespace nestsim {
namespace {

NasWorkload SmallGang(int threads) {
  NasSpec spec;
  spec.kernel_name = "cg";
  spec.threads = threads;
  spec.iter_compute_ms = 0.3;
  spec.iterations = 2;
  spec.jitter = 0.3;
  spec.serial_setup_ms = 0.2;
  return NasWorkload(spec);
}

TEST(CacheInvarianceTest, DisabledModelIsByteIdenticalForEveryScheduler) {
  for (SchedulerKind kind :
       {SchedulerKind::kCfs, SchedulerKind::kNest, SchedulerKind::kSmove}) {
    ExperimentConfig base;
    base.scheduler = kind;

    ExperimentConfig tweaked = base;
    // Neutral knobs (speedup 1.0, cost 0) leave the model disabled, so even
    // a shifted warm_threshold must be invisible: no tracking, no counters.
    tweaked.kernel.cache.warm_speedup = 1.0;
    tweaked.kernel.cache.migration_cost_work = 0.0;
    tweaked.kernel.cache.warm_threshold = 0.9;

    const NasWorkload workload = SmallGang(40);
    const ExperimentResult a = RunExperiment(base, workload);
    const ExperimentResult b = RunExperiment(tweaked, workload);
    EXPECT_EQ(a.makespan, b.makespan) << SchedulerKindName(kind);
    EXPECT_EQ(a.energy_joules, b.energy_joules) << SchedulerKindName(kind);
    EXPECT_EQ(a.context_switches, b.context_switches) << SchedulerKindName(kind);
    EXPECT_EQ(a.migrations, b.migrations) << SchedulerKindName(kind);
    EXPECT_EQ(SchedCountersJson(a.counters), SchedCountersJson(b.counters))
        << SchedulerKindName(kind);
    EXPECT_EQ(a.counters.cache_warm_hits, 0u);
    EXPECT_EQ(a.counters.cache_cold_misses, 0u);
  }
}

TEST(CacheInvarianceTest, NestCacheAllSwitchesOffMatchesNestBehaviour) {
  ExperimentConfig nest;
  nest.scheduler = SchedulerKind::kNest;

  ExperimentConfig nest_cache = nest;
  nest_cache.scheduler = SchedulerKind::kNestCache;
  nest_cache.nest_cache.enable_warm_anchor = false;
  nest_cache.nest_cache.enable_cost_aware_expansion = false;
  nest_cache.nest_cache.enable_compaction_grace = false;

  // Oversubscribed so wakes actually contend and reach the common ladder.
  const NasWorkload workload = SmallGang(96);
  const ExperimentResult a = RunExperiment(nest, workload);
  const ExperimentResult b = RunExperiment(nest_cache, workload);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.migrations, b.migrations);
  for (int i = 0; i < kNumPlacementPaths; ++i) {
    EXPECT_EQ(a.counters.placements[i], b.counters.placements[i])
        << PlacementPathName(static_cast<PlacementPath>(i));
  }

  // The only residue: NestCache keeps warmth tracking on (WantsCacheWarmth),
  // so the purely observational warm/cold classification still fires.
  EXPECT_EQ(a.counters.cache_warm_hits + a.counters.cache_cold_misses, 0u);
  EXPECT_GT(b.counters.cache_warm_hits + b.counters.cache_cold_misses, 0u);
  SchedCounters scrubbed = b.counters;
  scrubbed.cache_warm_hits = 0;
  scrubbed.cache_cold_misses = 0;
  scrubbed.cache_cross_die_migrations = 0;
  EXPECT_EQ(SchedCountersJson(a.counters), SchedCountersJson(scrubbed));
}

TEST(CacheInvarianceTest, WarmSpeedupShortensTheRun) {
  ExperimentConfig base;
  base.scheduler = SchedulerKind::kNest;
  ExperimentConfig sped = base;
  sped.kernel.cache.warm_speedup = 1.5;

  const NasWorkload workload = SmallGang(40);
  const ExperimentResult slow = RunExperiment(base, workload);
  const ExperimentResult fast = RunExperiment(sped, workload);
  EXPECT_LT(fast.makespan, slow.makespan);
}

TEST(CacheInvarianceTest, ContendedNestCacheRunUsesTheWarmPath) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kNestCache;
  config.kernel.cache.warm_speedup = 1.3;
  config.kernel.cache.migration_cost_work = 2e6;
  config.kernel.cache.warm_threshold = 0.1;
  config.nest_cache.warm_bias_threshold = 0.1;

  NasSpec spec;
  spec.kernel_name = "cg";
  spec.threads = 100;
  spec.iter_compute_ms = 1.0;
  spec.iterations = 6;
  spec.jitter = 0.4;
  spec.serial_setup_ms = 0.5;
  const ExperimentResult r = RunExperiment(config, NasWorkload(spec));

  const SchedCounters& c = r.counters;
  EXPECT_GT(c.placements[static_cast<int>(PlacementPath::kNestCacheWarm)], 0u);
  EXPECT_GT(c.cache_warm_hits, 0u);
  EXPECT_GT(c.cache_cross_die_migrations, 0u);
}

}  // namespace
}  // namespace nestsim
