// The serial-vs-parallel differential layer (docs/PARALLEL.md): every
// committed scenario golden replayed under the windowed PDES executor at
// 1/2/4/8 workers must produce bit-identical results to the serial
// reference loop, and randomized parallel.* knob draws (sync algorithm,
// lookahead caps) must never be observable either. This is the in-process
// half of the acceptance bar; CI additionally gates `nestsim_run
// --check-baseline --parallel 4` against the committed golden files.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/sched_counters.h"
#include "src/scenario/baseline.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/sim/random.h"

namespace nestsim {
namespace {

// Everything a golden record pins, per repetition of per job.
struct RunFingerprint {
  SimDuration makespan = 0;
  int tasks_created = 0;
  uint64_t migrations = 0;
  std::string digest;

  bool operator==(const RunFingerprint& o) const {
    return makespan == o.makespan && tasks_created == o.tasks_created &&
           migrations == o.migrations && digest == o.digest;
  }
};

std::vector<std::vector<RunFingerprint>> ExecuteAt(const Scenario& scenario, int workers) {
  ScenarioRunOptions options;
  options.repetitions_override = 1;  // one seed per job keeps the suite fast
  options.parallel_workers = workers;
  options.campaign.jobs = 1;
  options.campaign.progress = false;
  options.campaign.jsonl_path.clear();
  ScenarioRun run;
  ScenarioError err;
  if (!ExpandScenario(scenario, options, &run, &err)) {
    ADD_FAILURE() << scenario.name << " does not expand: " << err.Join();
    return {};
  }
  ExecuteScenario(&run);

  std::vector<std::vector<RunFingerprint>> out;
  for (const JobOutcome& outcome : run.outcomes) {
    EXPECT_TRUE(outcome.ok()) << scenario.name << " at " << workers
                              << " workers: " << outcome.message;
    std::vector<RunFingerprint> reps;
    for (const ExperimentResult& r : outcome.result.runs) {
      RunFingerprint fp;
      fp.makespan = r.makespan;
      fp.tasks_created = r.tasks_created;
      fp.migrations = r.migrations;
      fp.digest = SchedCountersDigest(r.counters);
      reps.push_back(fp);
    }
    out.push_back(std::move(reps));
  }
  return out;
}

Scenario LoadCommitted(const std::string& stem) {
  const std::string path = std::string(NESTSIM_REPO_DIR) + "/scenarios/" + stem + ".json";
  Scenario scenario;
  ScenarioError err;
  EXPECT_TRUE(LoadScenario(path, &scenario, &err)) << err.Join();
  return scenario;
}

// Every scenario with a committed golden under baselines/.
const char* kGoldenScenarios[] = {
    "smoke",          "cache_ablation",     "cluster_smoke", "cluster_util_sweep",
    "energy_cap",     "fault_blast_radius", "pdes_scaling",
};

TEST(PdesDifferentialTest, CommittedGoldensAreByteIdenticalAtEveryWorkerCount) {
  for (const char* stem : kGoldenScenarios) {
    SCOPED_TRACE(stem);
    const Scenario scenario = LoadCommitted(stem);
    const auto reference = ExecuteAt(scenario, /*workers=*/0);
    ASSERT_FALSE(reference.empty());
    for (const int workers : {1, 2, 4, 8}) {
      const auto parallel = ExecuteAt(scenario, workers);
      EXPECT_TRUE(reference == parallel)
          << stem << " diverged from the serial reference at " << workers << " PDES workers";
    }
  }
}

// Randomized knob fuzz: sync mode and lookahead cap are pure execution
// policy, so random draws — including sub-window lookaheads that chop every
// arrival gap into heartbeats — must reproduce the serial history exactly.
TEST(PdesDifferentialTest, RandomParallelKnobDrawsNeverChangeResults) {
  const Scenario base = LoadCommitted("cluster_smoke");
  const auto reference = ExecuteAt(base, /*workers=*/0);
  ASSERT_FALSE(reference.empty());

  Rng rng(20260807);
  static const char* kSync[] = {"auto", "window", "lockstep"};
  for (int draw = 0; draw < 8; ++draw) {
    Scenario scenario = base;
    const int workers = 1 + static_cast<int>(rng.NextBounded(8));
    const char* sync = kSync[rng.NextBounded(3)];
    // Spans "tiny heartbeat" (10 us) to "wider than any arrival gap".
    const double lookahead_us = rng.NextBool(0.5) ? 0.0 : rng.NextDouble(10.0, 50000.0);

    ScenarioRunOptions options;
    options.repetitions_override = 1;
    options.parallel_workers = workers;
    options.campaign.jobs = 1;
    options.campaign.progress = false;
    options.campaign.jsonl_path.clear();
    ScenarioRun run;
    ScenarioError err;
    ASSERT_TRUE(ExpandScenario(scenario, options, &run, &err)) << err.Join();
    for (Job& job : run.jobs) {
      job.config.parallel.sync = sync;
      job.config.parallel.lookahead_us = lookahead_us;
    }
    ExecuteScenario(&run);

    ASSERT_EQ(run.outcomes.size(), reference.size());
    for (size_t j = 0; j < run.outcomes.size(); ++j) {
      const JobOutcome& outcome = run.outcomes[j];
      ASSERT_TRUE(outcome.ok()) << outcome.message;
      ASSERT_EQ(outcome.result.runs.size(), reference[j].size());
      for (size_t i = 0; i < outcome.result.runs.size(); ++i) {
        const ExperimentResult& r = outcome.result.runs[i];
        EXPECT_EQ(r.makespan, reference[j][i].makespan)
            << workers << " workers, sync " << sync << ", lookahead " << lookahead_us;
        EXPECT_EQ(SchedCountersDigest(r.counters), reference[j][i].digest)
            << workers << " workers, sync " << sync << ", lookahead " << lookahead_us;
      }
    }
  }
}

}  // namespace
}  // namespace nestsim
