// DomainGroup (src/sim/parallel.h): the canonical (timestamp, domain id,
// insertion seq) total order, merged-vs-windowed equivalence, and the
// executor controls (lockstep, lookahead caps, abort, fail-fast).

#include "src/sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace nestsim {
namespace {

TEST(EngineClockTest, NextEventTimeReportsTheEarliestPendingEvent) {
  Engine engine;
  EXPECT_EQ(engine.NextEventTime(), Engine::kNoEvent);

  engine.ScheduleAt(30, [] {});
  const EventId early = engine.ScheduleAt(10, [] {});
  EXPECT_EQ(engine.NextEventTime(), 10);

  // Cancelling the head lazily reclaims it.
  engine.Cancel(early);
  EXPECT_EQ(engine.NextEventTime(), 30);

  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(engine.Now(), 30);
  EXPECT_EQ(engine.NextEventTime(), Engine::kNoEvent);
}

TEST(EngineClockTest, AdvanceToMovesTheClockWithoutFiring) {
  Engine engine;
  bool fired = false;
  engine.ScheduleAt(50, [&fired] { fired = true; });
  engine.AdvanceTo(40);
  EXPECT_EQ(engine.Now(), 40);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.NextEventTime(), 50);
}

// Runs `options` against a group built by `build`, which appends "<who>@<t>"
// labels to `log` from every event. Returns the log. The log is only written
// from contexts the canonical order serializes (all tests below use either
// the merged loop or coordinator-instant events), so it is race-free and
// must come out identical at every worker count.
using GroupBuilder = std::function<void(DomainGroup&, std::vector<std::string>&)>;

std::vector<std::string> RunGroup(int domains, const GroupBuilder& build, int workers,
                                  bool lockstep = false, SimDuration max_window = 0) {
  DomainGroup group(domains);
  std::vector<std::string> log;
  build(group, log);
  DomainGroup::RunOptions options;
  options.time_limit = 1 * kSecond;
  options.workers = workers;
  options.lockstep = lockstep;
  options.max_window = max_window;
  options.live = [] { return true; };
  DomainGroup::RunResult result = group.Run(options);
  EXPECT_FALSE(result.aborted);
  return log;
}

std::string Label(const char* who, SimTime t) {
  return std::string(who) + "@" + std::to_string(t);
}

// Same timestamp across three domains and the coordinator: the canonical
// order fires domains in id order, the coordinator last.
TEST(DomainGroupOrderTest, EqualTimestampsFireDomainsInIdOrderThenCoordinator) {
  const GroupBuilder build = [](DomainGroup& group, std::vector<std::string>& log) {
    // Scheduled in scrambled order: insertion order must not matter across
    // queues, only within one queue.
    group.domain(2).ScheduleAt(100, [&log] { log.push_back(Label("d2", 100)); });
    group.ScheduleCoordinator(100, [&log] { log.push_back(Label("coord", 100)); });
    group.domain(0).ScheduleAt(100, [&log] { log.push_back(Label("d0", 100)); });
    group.domain(1).ScheduleAt(100, [&log] { log.push_back(Label("d1", 100)); });
  };
  const std::vector<std::string> expected = {"d0@100", "d1@100", "d2@100", "coord@100"};
  EXPECT_EQ(RunGroup(3, build, /*workers=*/0), expected);
  // The same order must hold under the pool at any worker count: the order
  // is a property of the event data, not of thread scheduling.
  EXPECT_EQ(RunGroup(3, build, /*workers=*/2), expected);
  EXPECT_EQ(RunGroup(3, build, /*workers=*/4), expected);
  EXPECT_EQ(RunGroup(3, build, /*workers=*/2, /*lockstep=*/true), expected);
}

// Within one queue, same-timestamp events keep insertion order (the seq
// component of the canonical order).
TEST(DomainGroupOrderTest, InsertionSeqBreaksTiesWithinOneDomain) {
  const GroupBuilder build = [](DomainGroup& group, std::vector<std::string>& log) {
    group.domain(0).ScheduleAt(5, [&log] { log.push_back("first"); });
    group.domain(0).ScheduleAt(5, [&log] { log.push_back("second"); });
    group.domain(0).ScheduleAt(5, [&log] { log.push_back("third"); });
  };
  const std::vector<std::string> expected = {"first", "second", "third"};
  EXPECT_EQ(RunGroup(2, build, /*workers=*/0), expected);
  EXPECT_EQ(RunGroup(2, build, /*workers=*/4), expected);
}

// A coordinator event that fans work out to domains at its own timestamp:
// the spawned domain events fire before the next coordinator event at that
// instant (domains sort below the coordinator at equal time), so a
// same-instant second arrival observes the first arrival's effects.
TEST(DomainGroupOrderTest, SameInstantFanoutInterleavesBeforeTheNextCoordinatorEvent) {
  const GroupBuilder build = [](DomainGroup& group, std::vector<std::string>& log) {
    group.ScheduleCoordinator(40, [&group, &log] {
      log.push_back("arrival1");
      group.domain(0).ScheduleAt(40, [&log] { log.push_back("inject-d0"); });
      group.domain(1).ScheduleAt(40, [&log] { log.push_back("inject-d1"); });
    });
    group.ScheduleCoordinator(40, [&log] { log.push_back("arrival2"); });
  };
  const std::vector<std::string> expected = {"arrival1", "inject-d0", "inject-d1", "arrival2"};
  EXPECT_EQ(RunGroup(2, build, /*workers=*/0), expected);
  EXPECT_EQ(RunGroup(2, build, /*workers=*/2), expected);
  EXPECT_EQ(RunGroup(2, build, /*workers=*/8), expected);
}

// Clock semantics at a cross-domain event: every domain clock reaches the
// coordinator timestamp before the event runs (lazy integrators read those
// clocks), and Now() tracks the last fired event.
TEST(DomainGroupTest, DomainClocksReachTheCoordinatorTimestampBeforeItFires) {
  for (const int workers : {0, 2}) {
    DomainGroup group(2);
    SimTime d0_at_arrival = -1;
    SimTime d1_at_arrival = -1;
    group.domain(0).ScheduleAt(10, [] {});
    group.ScheduleCoordinator(25, [&] {
      d0_at_arrival = group.domain(0).Now();
      d1_at_arrival = group.domain(1).Now();
    });
    DomainGroup::RunOptions options;
    options.time_limit = 1 * kSecond;
    options.workers = workers;
    options.live = [] { return true; };
    group.Run(options);
    EXPECT_EQ(d0_at_arrival, 25) << workers << " workers";
    EXPECT_EQ(d1_at_arrival, 25) << workers << " workers";
    EXPECT_EQ(group.Now(), 25) << workers << " workers";
    EXPECT_EQ(group.TotalEventsFired(), 2u) << workers << " workers";
  }
}

TEST(DomainGroupTest, TimeLimitFiresOneEventAtOrPastTheLimitLikeTheSerialLoop) {
  for (const int workers : {0, 4}) {
    DomainGroup group(2);
    std::vector<std::string> log;
    group.domain(0).ScheduleAt(10, [&log] { log.push_back("before"); });
    group.domain(1).ScheduleAt(200, [&log] { log.push_back("at-limit"); });
    group.domain(0).ScheduleAt(300, [&log] { log.push_back("never"); });
    DomainGroup::RunOptions options;
    options.time_limit = 200;
    options.workers = workers;
    options.live = [] { return true; };
    group.Run(options);
    const std::vector<std::string> expected = {"before", "at-limit"};
    EXPECT_EQ(log, expected) << workers << " workers";
  }
}

TEST(DomainGroupTest, ShouldAbortStopsTheRunAndMarksTheResult) {
  for (const int workers : {0, 2}) {
    DomainGroup group(2);
    // Enough events that every executor's polling stride trips.
    for (int i = 0; i < 10000; ++i) {
      group.domain(i % 2).ScheduleAt(i + 1, [] {});
    }
    std::atomic<bool> abort{true};
    DomainGroup::RunOptions options;
    options.time_limit = 1 * kSecond;
    options.workers = workers;
    options.live = [] { return true; };
    options.should_abort = [&abort] { return abort.load(); };
    const DomainGroup::RunResult result = group.Run(options);
    EXPECT_TRUE(result.aborted) << workers << " workers";
  }
}

TEST(DomainGroupTest, UnhealthyStopsTheRunWithoutAborting) {
  for (const int workers : {0, 2}) {
    DomainGroup group(1);
    for (int i = 0; i < 10000; ++i) {
      group.domain(0).ScheduleAt(i + 1, [] {});
    }
    DomainGroup::RunOptions options;
    options.time_limit = 1 * kSecond;
    options.workers = workers;
    options.live = [] { return true; };
    options.healthy = [] { return false; };
    const DomainGroup::RunResult result = group.Run(options);
    EXPECT_FALSE(result.aborted) << workers << " workers";
    EXPECT_GT(group.domain(0).pending_events(), 0u) << workers << " workers";
  }
}

// The randomized property behind the acceptance bar: a pre-drawn traffic
// plan (coordinator arrivals fanning service chains into random domains,
// each chain rescheduling itself domain-locally) executed under every
// combination of worker count, sync mode, and lookahead cap must produce
// the identical per-domain event history, final clock, and event count.
TEST(DomainGroupPropertyTest, EveryExecutorProducesTheSerialHistory) {
  constexpr int kDomains = 4;

  struct Arrival {
    SimTime time = 0;
    int domain = 0;
    int chain = 0;      // events in the local service chain
    SimDuration gap = 0;  // spacing between chain events
  };

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    std::vector<Arrival> plan;
    SimTime t = 0;
    for (int i = 0; i < 200; ++i) {
      // Clustered timestamps: ~1/4 of arrivals share the previous instant,
      // fuzzing the same-instant drain; the rest fuzz window boundaries with
      // gaps from 0 to ~3 ms.
      if (i == 0 || !rng.NextBool(0.25)) {
        t += static_cast<SimDuration>(rng.NextBounded(3 * kMillisecond));
      }
      Arrival a;
      a.time = t;
      a.domain = static_cast<int>(rng.NextBounded(kDomains));
      a.chain = 1 + static_cast<int>(rng.NextBounded(5));
      a.gap = 1 + static_cast<SimDuration>(rng.NextBounded(500 * kMicrosecond));
      plan.push_back(a);
    }

    struct History {
      std::vector<std::vector<std::string>> domain_log;
      SimTime end = 0;
      uint64_t events = 0;
    };
    auto execute = [&plan](int workers, bool lockstep, SimDuration max_window) {
      DomainGroup group(kDomains);
      History h;
      h.domain_log.resize(kDomains);
      // One log per domain: a domain's events are serialized by construction
      // (one worker pumps a domain per window), so appends never race.
      std::function<void(int, int, int, SimDuration)> chain_step =
          [&](int domain, int id, int remaining, SimDuration gap) {
            Engine& engine = group.domain(domain);
            h.domain_log[static_cast<size_t>(domain)].push_back(
                Label(("c" + std::to_string(id)).c_str(), engine.Now()));
            if (remaining > 0) {
              engine.ScheduleAfter(gap, [&chain_step, domain, id, remaining, gap] {
                chain_step(domain, id, remaining - 1, gap);
              });
            }
          };
      for (size_t i = 0; i < plan.size(); ++i) {
        const Arrival& a = plan[i];
        const int id = static_cast<int>(i);
        group.ScheduleCoordinator(a.time, [&group, &chain_step, a, id] {
          group.domain(a.domain).ScheduleAt(group.coordinator().Now(), [&chain_step, a, id] {
            chain_step(a.domain, id, a.chain - 1, a.gap);
          });
        });
      }
      DomainGroup::RunOptions options;
      options.time_limit = 10 * kSecond;
      options.workers = workers;
      options.lockstep = lockstep;
      options.max_window = max_window;
      options.live = [] { return true; };
      group.Run(options);
      h.end = group.Now();
      h.events = group.TotalEventsFired();
      return h;
    };

    const History reference = execute(/*workers=*/0, /*lockstep=*/false, /*max_window=*/0);
    ASSERT_GT(reference.events, 200u);
    for (const int workers : {1, 2, 4, 8}) {
      for (const bool lockstep : {false, true}) {
        // 37 us sits below most arrival gaps (heartbeat-dominated windows);
        // 700 us spans several chain steps per window.
        for (const SimDuration max_window :
             {SimDuration{0}, 37 * kMicrosecond, 700 * kMicrosecond}) {
          const History h = execute(workers, lockstep, max_window);
          EXPECT_EQ(h.domain_log, reference.domain_log)
              << "seed " << seed << ", " << workers << " workers, lockstep " << lockstep
              << ", max_window " << max_window;
          EXPECT_EQ(h.end, reference.end) << "seed " << seed;
          EXPECT_EQ(h.events, reference.events) << "seed " << seed;
        }
      }
    }
  }
}

}  // namespace
}  // namespace nestsim
