#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace nestsim {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(TimeTest, TickPeriodIs4Ms) {
  // The paper's kernels run at 250 Hz; thresholds like "2 ticks = 8 ms"
  // depend on this.
  EXPECT_EQ(kTickPeriod, 4 * kMillisecond);
  EXPECT_EQ(2 * kTickPeriod, 8 * kMillisecond);
}

TEST(TimeTest, IntegerConstructors) {
  EXPECT_EQ(Nanoseconds(7), 7);
  EXPECT_EQ(Microseconds(3), 3000);
  EXPECT_EQ(Milliseconds(2), 2 * kMillisecond);
  EXPECT_EQ(Seconds(5), 5 * kSecond);
}

TEST(TimeTest, FractionalConstructors) {
  EXPECT_EQ(MillisecondsF(1.5), 1500 * kMicrosecond);
  EXPECT_EQ(MicrosecondsF(0.5), 500);
  EXPECT_EQ(SecondsF(0.25), 250 * kMillisecond);
}

TEST(TimeTest, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToSeconds(SecondsF(3.5)), 3.5);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(FormatTime(12), "12ns");
  EXPECT_EQ(FormatTime(Microseconds(890)), "890.000us");
  EXPECT_EQ(FormatTime(MillisecondsF(56.7)), "56.700ms");
  EXPECT_EQ(FormatTime(SecondsF(1.234)), "1.234s");
}

TEST(TimeTest, FormatNegative) {
  EXPECT_EQ(FormatTime(-Milliseconds(3)), "-3.000ms");
  EXPECT_EQ(FormatTime(-5), "-5ns");
}

TEST(TimeTest, FormatZero) { EXPECT_EQ(FormatTime(0), "0ns"); }

}  // namespace
}  // namespace nestsim
