#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nestsim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, ZeroSeedWorks) {
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng.NextU64());
  }
  EXPECT_GT(values.size(), 95u);  // not stuck
}

TEST(RandomTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, BoundedOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RandomTest, DoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, BoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RandomTest, BoolEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_FALSE(rng.NextBool(-1.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  EXPECT_TRUE(rng.NextBool(2.0));
}

TEST(RandomTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(2.5);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RandomTest, NormalMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RandomTest, LogNormalMedian) {
  Rng rng(29);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) {
    const double v = rng.NextLogNormal(3.0, 0.8);
    ASSERT_GT(v, 0.0);
    values.push_back(v);
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
  EXPECT_NEAR(values[values.size() / 2], 3.0, 0.15);
}

TEST(RandomTest, ParetoMinimum) {
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 1.5);
  }
}

TEST(RandomTest, ForkIsIndependentAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Children of equal parents match.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.NextU64(), child2.NextU64());
  }
  // Forking does not perturb the parent's stream.
  Rng fresh(99);
  fresh.Fork();
  Rng untouched(99);
  untouched.Fork();
  EXPECT_EQ(fresh.NextU64(), untouched.NextU64());
}

TEST(RandomTest, SuccessiveForksDiffer) {
  Rng parent(5);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, SplitMix64KnownValue) {
  // Reference value from the splitmix64 reference implementation.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace nestsim
